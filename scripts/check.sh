#!/usr/bin/env bash
# Full verification: regular build + tests, then sanitizer passes over the
# test suite — ThreadSanitizer for the concurrency-heavy layers (partitioned
# exchanges, worker pools, metrics shards, query journal) and
# AddressSanitizer for the page/exchange ownership handoffs.
#
# Usage: scripts/check.sh [--tsan-only|--asan-only]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
MODE="${1:-}"

if [[ "$MODE" != "--tsan-only" && "$MODE" != "--asan-only" ]]; then
  echo "== regular build =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  echo "== regular tests =="
  (cd build && ctest --output-on-failure)
fi

if [[ "$MODE" != "--asan-only" ]]; then
  echo "== tsan build =="
  cmake -B build-tsan -S . -DPRESTO_TSAN=ON >/dev/null
  cmake --build build-tsan -j "$JOBS"
  echo "== tsan tests =="
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" ctest --output-on-failure)
fi

if [[ "$MODE" != "--tsan-only" ]]; then
  echo "== asan build =="
  cmake -B build-asan -S . -DPRESTO_ASAN=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  echo "== asan tests =="
  (cd build-asan && ASAN_OPTIONS="halt_on_error=1" ctest --output-on-failure)
fi

echo "OK: requested suites passed"
