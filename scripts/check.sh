#!/usr/bin/env bash
# Full verification: regular build + tests, then a ThreadSanitizer pass over
# the test suite (exchange buffers, worker pools, metrics shards, and the
# query journal are the concurrency-heavy layers TSan watches).
#
# Usage: scripts/check.sh [--tsan-only]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

if [[ "${1:-}" != "--tsan-only" ]]; then
  echo "== regular build =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  echo "== regular tests =="
  (cd build && ctest --output-on-failure)
fi

echo "== tsan build =="
cmake -B build-tsan -S . -DPRESTO_TSAN=ON >/dev/null
cmake --build build-tsan -j "$JOBS"
echo "== tsan tests =="
(cd build-tsan && TSAN_OPTIONS="halt_on_error=1" ctest --output-on-failure)
echo "OK: regular + tsan suites passed"
