#!/usr/bin/env bash
# Full verification: regular build + tests, then sanitizer passes over the
# test suite — ThreadSanitizer for the concurrency-heavy layers (partitioned
# exchanges, worker pools, metrics shards, query journal) and
# AddressSanitizer for the page/exchange ownership handoffs.
#
# Usage: scripts/check.sh [--tsan-only|--asan-only]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
MODE="${1:-}"

if [[ "$MODE" != "--tsan-only" && "$MODE" != "--asan-only" ]]; then
  echo "== regular build =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  echo "== regular tests =="
  (cd build && ctest --output-on-failure)
fi

# Chaos stage: an amplified fault-injection sweep on top of the normal suite
# (which already runs each chaos test once at default settings). Seeds and
# iteration counts are env knobs so CI can rotate fault schedules:
#   PRESTO_CHAOS_SEED   base seed for fault schedules (default 20260806)
#   PRESTO_CHAOS_ITERS  fault-schedule iterations     (default 8 here)
CHAOS_FILTER='ChaosQueryTest.*:QueryTimeoutTest.*:ExchangeFaultFuzzTest.*'
CHAOS_SEED="${PRESTO_CHAOS_SEED:-20260806}"
CHAOS_ITERS="${PRESTO_CHAOS_ITERS:-8}"

# Memory-pressure stage: the spill / admission / low-memory-killer paths all
# run with tiny query_max_memory caps, so re-running them under the
# sanitizers shakes out races in reservation walks, revocation, and the
# killer's cross-thread cancellation. The acceptance-scale spill test is
# shrunk for sanitizer speed (full 10M rows runs in the regular suite).
MEMORY_FILTER='MemoryPoolTest.*:SpillDifferentialTest.*:SpillLargeScaleTest.*'
MEMORY_FILTER="$MEMORY_FILTER:AdmissionTest.*:LowMemoryKillerTest.*"
MEMORY_FILTER="$MEMORY_FILTER:ExchangeMemoryTest.*:MemoryCountersTest.*"
MEMORY_SCALE_ROWS="${PRESTO_SPILL_SCALE_ROWS:-2000000}"

# Morsel stage: the work-stealing pool and the differential tests that drive
# parallel operator chains at 2 and 8 threads — the paths where a hot-path
# lock would hide and a missed happens-before would race (thread-local radix
# tables merged at finalize, claim-slot protocol, batched reservations).
MORSEL_FILTER='WorkStealingPoolTest.*:RunParallelTest.*:MorselDifferentialTest.*'

# Lazy-scan stage: the v2 page reader (page skipping, dictionary-code
# predicates, late materialization), the legacy-vs-lazy differential sweep,
# the page-read chaos iteration, and the scan-stats plumbing through morsel
# chains into EXPLAIN ANALYZE — the handoffs where a stale selection vector
# or a racing stats fold would hide.
LAZY_SCAN_FILTER='LakeFilePagesTest.*:LakeFileTest.LazyReadsDecodeOnlyMatchingRows'
LAZY_SCAN_FILTER="$LAZY_SCAN_FILTER:DifferentialTest.*"
LAZY_SCAN_FILTER="$LAZY_SCAN_FILTER:ChaosQueryTest.LazyScanPageReadFaultsNeverCorruptResults"
LAZY_SCAN_FILTER="$LAZY_SCAN_FILTER:ObservabilityTest.ExplainAnalyzeShowsLazyScanStatsAndEnforcedPushdown"

# Workload stage: resource-group admission under concurrency — the DRR
# promotion loop racing TryAdmit/Wait/Release from many session threads, the
# group memory-pool layer, gateway shed failover, and the chaos worker-kill
# reconciliation. Plus a --quick pass of the multi-tenant workload driver
# (ratio floors are skipped under sanitizers; accounting reconciliation and
# the zero-interactive-shed floor still hold).
WORKLOAD_FILTER='ResourceGroupManagerTest.*:WorkloadClusterTest.*'
WORKLOAD_FILTER="$WORKLOAD_FILTER:GatewayShedTest.*:WorkloadChaosTest.*"

# Tracing stage: a traced spilling query recorded from many threads at once
# (span shards, blocked-time carry across the morsel pool, lazy operator-span
# opening) plus the Chrome trace JSON round-trip validation — the spots where
# a recorder race or a context-scope leak would hide.
TRACE_FILTER='TraceTest.*:TraceClusterTest.*'

# Recovery stage: the stage-level recovery ladder — spool tee/replay racing
# exchange consumers, attempt-id fencing under concurrent speculative
# commits, graceful drain racing in-flight submits, and probation heartbeats
# racing the scheduler. These paths hand pages and task slots across threads
# at failure boundaries, exactly where a use-after-free or a missed
# happens-before would hide.
RECOVERY_FILTER='ExchangeSpoolTest.*:ExchangeFenceTest.*:RecoveryClusterTest.*'
RECOVERY_FILTER="$RECOVERY_FILTER:WorkerDrainTest.*"
RECOVERY_FILTER="$RECOVERY_FILTER:ChaosQueryTest.RetryBackoffHonorsQueryDeadline"
RECOVERY_FILTER="$RECOVERY_FILTER:WorkloadChaosTest.RestartOnceReentersGroupQueueAndReconciles"

if [[ "$MODE" != "--asan-only" ]]; then
  echo "== tsan build =="
  cmake -B build-tsan -S . -DPRESTO_TSAN=ON >/dev/null
  cmake --build build-tsan -j "$JOBS"
  echo "== tsan tests =="
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      PRESTO_SPILL_SCALE_ROWS="$MEMORY_SCALE_ROWS" ctest --output-on-failure)
  echo "== tsan chaos (seed=$CHAOS_SEED iters=$CHAOS_ITERS) =="
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      PRESTO_CHAOS_SEED="$CHAOS_SEED" PRESTO_CHAOS_ITERS="$CHAOS_ITERS" \
      ./tests/presto_tests --gtest_filter="$CHAOS_FILTER")
  echo "== tsan memory pressure (scale_rows=$MEMORY_SCALE_ROWS) =="
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      PRESTO_SPILL_SCALE_ROWS="$MEMORY_SCALE_ROWS" \
      ./tests/presto_tests --gtest_filter="$MEMORY_FILTER")
  echo "== tsan morsel parallelism =="
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      ./tests/presto_tests --gtest_filter="$MORSEL_FILTER")
  echo "== tsan tracing =="
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      ./tests/presto_tests --gtest_filter="$TRACE_FILTER")
  echo "== tsan lazy scan =="
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      ./tests/presto_tests --gtest_filter="$LAZY_SCAN_FILTER")
  echo "== tsan workload =="
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      ./tests/presto_tests --gtest_filter="$WORKLOAD_FILTER")
  echo "== tsan recovery =="
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      ./tests/presto_tests --gtest_filter="$RECOVERY_FILTER")
  (cd build-tsan && TSAN_OPTIONS="halt_on_error=1" \
      ./bench/bench_workload /tmp/BENCH_workload_tsan.json --quick)
fi

if [[ "$MODE" != "--tsan-only" ]]; then
  echo "== asan build =="
  cmake -B build-asan -S . -DPRESTO_ASAN=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  echo "== asan tests =="
  (cd build-asan && ASAN_OPTIONS="halt_on_error=1" \
      PRESTO_SPILL_SCALE_ROWS="$MEMORY_SCALE_ROWS" ctest --output-on-failure)
  echo "== asan chaos (seed=$CHAOS_SEED iters=$CHAOS_ITERS) =="
  (cd build-asan && ASAN_OPTIONS="halt_on_error=1" \
      PRESTO_CHAOS_SEED="$CHAOS_SEED" PRESTO_CHAOS_ITERS="$CHAOS_ITERS" \
      ./tests/presto_tests --gtest_filter="$CHAOS_FILTER")
  echo "== asan memory pressure (scale_rows=$MEMORY_SCALE_ROWS) =="
  (cd build-asan && ASAN_OPTIONS="halt_on_error=1" \
      PRESTO_SPILL_SCALE_ROWS="$MEMORY_SCALE_ROWS" \
      ./tests/presto_tests --gtest_filter="$MEMORY_FILTER")
  echo "== asan morsel parallelism =="
  (cd build-asan && ASAN_OPTIONS="halt_on_error=1" \
      ./tests/presto_tests --gtest_filter="$MORSEL_FILTER")
  echo "== asan tracing =="
  (cd build-asan && ASAN_OPTIONS="halt_on_error=1" \
      ./tests/presto_tests --gtest_filter="$TRACE_FILTER")
  echo "== asan lazy scan =="
  (cd build-asan && ASAN_OPTIONS="halt_on_error=1" \
      ./tests/presto_tests --gtest_filter="$LAZY_SCAN_FILTER")
  echo "== asan workload =="
  (cd build-asan && ASAN_OPTIONS="halt_on_error=1" \
      ./tests/presto_tests --gtest_filter="$WORKLOAD_FILTER")
  echo "== asan recovery =="
  (cd build-asan && ASAN_OPTIONS="halt_on_error=1" \
      ./tests/presto_tests --gtest_filter="$RECOVERY_FILTER")
  (cd build-asan && ASAN_OPTIONS="halt_on_error=1" \
      ./bench/bench_workload /tmp/BENCH_workload_asan.json --quick)
fi

echo "OK: requested suites passed"
