// Reproduces Figures 18, 19, 20: "Writer Throughput Comparison" for Snappy,
// Gzip, and no compression. For each of the paper's twelve datasets we write
// a list of pages through the legacy (row-reconstructing) writer and the
// native (columnar) writer and report MB/s.
//
// Expected shape (paper): the native writer consistently improves throughput
// by >=20%, with the largest gains on cheap-to-encode columns (bigint) where
// the row-materialization overhead dominates.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "presto/common/clock.h"
#include "presto/lakefile/writer.h"
#include "presto/tpch/workloads.h"

namespace presto {
namespace {

struct Measurement {
  double legacy_mbps = 0;
  double native_mbps = 0;
  size_t file_bytes = 0;
};

// Uncompressed logical size of a page (what "throughput" is measured over).
size_t LogicalBytes(const Page& page) {
  size_t bytes = 0;
  for (size_t r = 0; r < page.num_rows(); ++r) {
    for (size_t c = 0; c < page.num_columns(); ++c) {
      Value v = page.column(c)->GetValue(r);
      if (v.is_null()) {
        bytes += 1;
      } else if (v.is_string()) {
        bytes += v.string_value().size();
      } else if (v.is_row() || v.is_array()) {
        bytes += 8 * v.children().size();
      } else if (v.is_map()) {
        bytes += 16 * v.map_entries().size();
      } else {
        bytes += 8;
      }
    }
  }
  return bytes;
}

double RunWriterOnce(const workloads::WriterDataset& dataset,
                     lakefile::WriterMode mode, CompressionKind compression,
                     int repetitions, size_t* file_bytes) {
  lakefile::WriterOptions options;
  options.compression = compression;
  options.row_group_rows = 1 << 20;  // single row group: pure write path
  size_t logical = LogicalBytes(dataset.page) * repetitions;
  Stopwatch watch;
  auto writer = lakefile::LakeFileWriter::Create(dataset.schema, options, mode);
  if (!writer.ok()) {
    std::fprintf(stderr, "writer create failed: %s\n",
                 writer.status().ToString().c_str());
    return 0;
  }
  for (int i = 0; i < repetitions; ++i) {
    Status st = (*writer)->Append(dataset.page);
    if (!st.ok()) {
      std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
      return 0;
    }
  }
  auto bytes = (*writer)->Finish();
  if (!bytes.ok()) {
    std::fprintf(stderr, "finish failed: %s\n", bytes.status().ToString().c_str());
    return 0;
  }
  double seconds = watch.ElapsedSeconds();
  *file_bytes = bytes->size();
  return static_cast<double>(logical) / (1024.0 * 1024.0) / seconds;
}

// Median of five trials: this box's timings jitter by tens of percent for
// identical work, and medians resist the lucky/unlucky outliers that
// min/max-of-N pick up.
double RunWriter(const workloads::WriterDataset& dataset,
                 lakefile::WriterMode mode, CompressionKind compression,
                 int repetitions, size_t* file_bytes) {
  std::vector<double> trials;
  for (int trial = 0; trial < 5; ++trial) {
    trials.push_back(
        RunWriterOnce(dataset, mode, compression, repetitions, file_bytes));
  }
  std::sort(trials.begin(), trials.end());
  return trials[trials.size() / 2];
}

void RunFigure(const char* figure, CompressionKind compression,
               const std::vector<workloads::WriterDataset>& datasets,
               int repetitions) {
  std::printf("\n%s: Writer Throughput Comparison: %s\n", figure,
              CompressionKindToString(compression));
  std::printf("%-28s %14s %14s %10s %12s\n", "dataset", "old MB/s",
              "native MB/s", "gain", "file KB");
  double min_gain = 1e9, max_gain = 0;
  for (const auto& dataset : datasets) {
    Measurement m;
    m.legacy_mbps = RunWriter(dataset, lakefile::WriterMode::kLegacy,
                              compression, repetitions, &m.file_bytes);
    m.native_mbps = RunWriter(dataset, lakefile::WriterMode::kNative,
                              compression, repetitions, &m.file_bytes);
    double gain = m.legacy_mbps > 0 ? (m.native_mbps / m.legacy_mbps - 1) * 100 : 0;
    min_gain = std::min(min_gain, gain);
    max_gain = std::max(max_gain, gain);
    std::printf("%-28s %14.1f %14.1f %+9.0f%% %12zu\n", dataset.name.c_str(),
                m.legacy_mbps, m.native_mbps, gain, m.file_bytes / 1024);
  }
  std::printf("  -> native writer gain range: %+.0f%% .. %+.0f%% "
              "(paper: consistently > +20%%)\n", min_gain, max_gain);
}

}  // namespace
}  // namespace presto

int main() {
  using namespace presto;
  std::printf("=== Native vs legacy lakefile writer (paper Figures 18-20) ===\n");
  std::printf("Both writers produce byte-identical files; the difference is\n");
  std::printf("the CPU spent reconstructing rows in the legacy path.\n");

  auto datasets = workloads::WriterBenchDatasets(/*rows_per_dataset=*/20000);
  RunFigure("Figure 18", CompressionKind::kSnappy, datasets, 4);
  RunFigure("Figure 19", CompressionKind::kGzip, datasets, 4);
  RunFigure("Figure 20", CompressionKind::kNone, datasets, 4);
  return 0;
}
