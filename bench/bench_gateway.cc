// Reproduces Figure 14 / Section VIII: the Presto gateway dispatching user
// traffic across dedicated and shared clusters based on the user/group
// routing table stored in (mini-)MySQL, including a zero-downtime
// maintenance drain mid-traffic.

#include <cstdio>

#include "presto/cluster/gateway.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/tpch/workloads.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

void AddSalesTable(PrestoCluster* cluster) {
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr t = Type::Row({"region", "amount"}, {Type::Varchar(), Type::Double()});
  (void)memory->CreateTable("default", "sales", t);
  Random rng(3);
  VectorBuilder region(Type::Varchar()), amount(Type::Double());
  const char* regions[] = {"us", "eu", "ap"};
  for (int i = 0; i < 20000; ++i) {
    region.AppendString(regions[rng.NextBelow(3)]);
    amount.AppendDouble(rng.NextDouble() * 100);
  }
  (void)memory->AppendPage("default", "sales",
                           Page({region.Build(), amount.Build()}));
  (void)cluster->catalogs().RegisterCatalog("memory", memory);
}

}  // namespace
}  // namespace presto

int main() {
  using namespace presto;
  std::printf("=== Presto gateway federation (paper Figure 14, Section VIII) ===\n\n");

  mysqlite::MySqlLite routing_db;
  PrestoGateway gateway(&routing_db);

  PrestoCluster dedicated_a("dedicated-pricing", 2, 2);
  PrestoCluster dedicated_b("dedicated-ml", 2, 2);
  PrestoCluster shared("shared", 2, 2);
  AddSalesTable(&dedicated_a);
  AddSalesTable(&dedicated_b);
  AddSalesTable(&shared);
  (void)gateway.RegisterCluster("dedicated-pricing", &dedicated_a);
  (void)gateway.RegisterCluster("dedicated-ml", &dedicated_b);
  (void)gateway.RegisterCluster("shared", &shared);
  (void)gateway.SetDefaultRoute("shared");
  (void)gateway.SetGroupRoute("pricing", "dedicated-pricing");
  (void)gateway.SetGroupRoute("ml", "dedicated-ml");
  (void)gateway.SetUserRoute("vip-analyst", "dedicated-pricing");

  const std::string kQuery =
      "SELECT region, sum(amount) FROM memory.default.sales GROUP BY region";

  // ---- Phase 1: mixed traffic ----------------------------------------------------
  Random rng(41);
  const char* groups[] = {"pricing", "ml", "adhoc", "growth"};
  int failures = 0;
  Stopwatch watch;
  constexpr int kPhase1 = 300;
  for (int i = 0; i < kPhase1; ++i) {
    Session session;
    session.user = i % 17 == 0 ? "vip-analyst" : "user" + std::to_string(rng.NextBelow(50));
    session.group = groups[rng.NextBelow(4)];
    auto result = gateway.Submit(kQuery, session);
    if (!result.ok()) ++failures;
  }
  double phase1_ms = watch.ElapsedMillis();

  auto metric = [&](const std::string& name) {
    return static_cast<long long>(gateway.metrics().Get(name));
  };
  std::printf("Phase 1: %d queries from 4 groups + a VIP user, %d failures, "
              "%.0f ms (%.1f q/s)\n",
              kPhase1, failures, phase1_ms, kPhase1 / (phase1_ms / 1000.0));
  std::printf("  redirects: dedicated-pricing=%lld dedicated-ml=%lld shared=%lld\n\n",
              metric("gateway.redirects.dedicated-pricing"),
              metric("gateway.redirects.dedicated-ml"),
              metric("gateway.redirects.shared"));

  // ---- Phase 2: maintenance drain, no downtime -------------------------------------
  std::printf("Phase 2: drain dedicated-pricing for maintenance "
              "(routes rewritten in MySQL) ...\n");
  if (!gateway.DrainClusterRoutes("dedicated-pricing", "shared").ok()) return 1;
  int failures2 = 0;
  constexpr int kPhase2 = 200;
  for (int i = 0; i < kPhase2; ++i) {
    Session session;
    session.user = i % 17 == 0 ? "vip-analyst" : "user" + std::to_string(rng.NextBelow(50));
    session.group = groups[rng.NextBelow(4)];
    auto result = gateway.Submit(kQuery, session);
    if (!result.ok()) ++failures2;
  }
  std::printf("  %d queries during maintenance, %d failures "
              "(paper: no downtime for end users)\n",
              kPhase2, failures2);
  std::printf("  pricing traffic now served by: shared "
              "(redirects shared=%lld)\n\n", metric("gateway.redirects.shared"));

  // ---- Phase 3: per-cluster query counts (the dispatch picture of Fig. 14) ----------
  std::printf("Per-cluster queries completed:\n");
  std::printf("  dedicated-pricing: %lld\n",
              static_cast<long long>(dedicated_a.coordinator().queries_completed()));
  std::printf("  dedicated-ml     : %lld\n",
              static_cast<long long>(dedicated_b.coordinator().queries_completed()));
  std::printf("  shared           : %lld\n",
              static_cast<long long>(shared.coordinator().queries_completed()));
  return failures + failures2 > 0 ? 1 : 0;
}
