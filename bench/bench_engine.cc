// Engine hot-path bench: typed columnar kernels vs the Value-boxed fallback
// on TPC-H-shaped aggregation and join queries, run end-to-end through the
// coordinator (parse -> plan -> fragment -> partial/final aggregation).
// The only knob flipped between runs is the session property
// vectorized_kernels, so the delta isolates the kernel layer: normalized-key
// group tables and columnar accumulators vs per-row Value boxing.
//
// Emits machine-readable results to BENCH_engine.json (path overridable via
// argv[1]).

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "presto/cluster/cluster.h"
#include "presto/common/fault_injection.h"
#include "presto/common/random.h"
#include "presto/connectors/hive/hive_connector.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/fs/simulated_hdfs.h"
#include "presto/lakefile/writer.h"

namespace presto {
namespace {

constexpr size_t kPageRows = 65536;

// Appends `num_rows` of (k BIGINT, v BIGINT, v_d DOUBLE) fact data with
// `num_keys` distinct keys.
Status FillFacts(MemoryConnector* memory, const std::string& table,
                 size_t num_rows, int64_t num_keys, uint64_t seed) {
  Random rng(seed);
  for (size_t done = 0; done < num_rows;) {
    size_t n = std::min(kPageRows, num_rows - done);
    std::vector<int64_t> k(n), v(n);
    std::vector<double> vd(n);
    for (size_t i = 0; i < n; ++i) {
      k[i] = static_cast<int64_t>(rng.NextBelow(num_keys));
      v[i] = static_cast<int64_t>(rng.NextBelow(10000));
      vd[i] = static_cast<double>(rng.NextBelow(100000)) / 100.0;
    }
    std::vector<VectorPtr> columns = {
        std::make_shared<Int64Vector>(Type::Bigint(), std::move(k),
                                      std::vector<uint8_t>{}),
        std::make_shared<Int64Vector>(Type::Bigint(), std::move(v),
                                      std::vector<uint8_t>{}),
        std::make_shared<DoubleVector>(Type::Double(), std::move(vd),
                                       std::vector<uint8_t>{})};
    RETURN_IF_ERROR(memory->AppendPage("raw", table, Page(std::move(columns), n)));
    done += n;
  }
  return Status::OK();
}

struct BenchResult {
  std::string query_name;
  std::string sql;
  size_t input_rows = 0;
  double kernel_millis = 0;
  double boxed_millis = 0;
  int64_t result_rows = 0;
  int64_t groups_created = 0;
  int64_t hash_probes = 0;
};

}  // namespace
}  // namespace presto

int main(int argc, char** argv) {
  using namespace presto;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_engine.json";

  const size_t kGroupByRows = 10'000'000;
  const size_t kJoinFactRows = 4'000'000;
  const size_t kDimRows = 100'000;

  auto memory = std::make_shared<MemoryConnector>();
  TypePtr fact_type =
      Type::Row({"k", "v", "v_d"}, {Type::Bigint(), Type::Bigint(), Type::Double()});
  if (!memory->CreateTable("raw", "facts", fact_type).ok()) return 1;
  if (!FillFacts(memory.get(), "facts", kGroupByRows, 100'000, 11).ok()) return 1;
  if (!memory->CreateTable("raw", "orders", fact_type).ok()) return 1;
  if (!FillFacts(memory.get(), "orders", kJoinFactRows, kDimRows, 12).ok()) return 1;

  // Dimension table for the join: every key once, plus a bucket column with
  // 32 distinct values for the post-join GROUP BY.
  TypePtr dim_type = Type::Row({"k", "bucket"}, {Type::Bigint(), Type::Bigint()});
  if (!memory->CreateTable("raw", "dim", dim_type).ok()) return 1;
  {
    Random rng(13);
    for (size_t done = 0; done < kDimRows;) {
      size_t n = std::min(kPageRows, kDimRows - done);
      std::vector<int64_t> k(n), bucket(n);
      for (size_t i = 0; i < n; ++i) {
        k[i] = static_cast<int64_t>(done + i);
        bucket[i] = static_cast<int64_t>(rng.NextBelow(32));
      }
      std::vector<VectorPtr> columns = {
          std::make_shared<Int64Vector>(Type::Bigint(), std::move(k),
                                        std::vector<uint8_t>{}),
          std::make_shared<Int64Vector>(Type::Bigint(), std::move(bucket),
                                        std::vector<uint8_t>{})};
      if (!memory->AppendPage("raw", "dim", Page(std::move(columns), n)).ok()) {
        return 1;
      }
      done += n;
    }
  }

  PrestoCluster cluster("engine-bench", 2, 4);
  (void)cluster.catalogs().RegisterCatalog("mem", memory);

  struct QuerySpec {
    const char* name;
    std::string sql;
    size_t input_rows;
  };
  // TPC-H shapes: Q1-style wide aggregation, low- and high-cardinality
  // group-bys, and a Q3/Q12-style join + aggregate.
  std::vector<QuerySpec> queries = {
      {"groupby_int64_100k_groups",
       "SELECT k, count(*), sum(v), min(v), max(v), avg(v_d) "
       "FROM mem.raw.facts GROUP BY k",
       kGroupByRows},
      {"groupby_int64_mod7",
       "SELECT k % 7, count(*), sum(v_d) FROM mem.raw.facts GROUP BY k % 7",
       kGroupByRows},
      {"global_agg",
       "SELECT count(*), sum(v), avg(v_d), min(v), max(v) FROM mem.raw.facts",
       kGroupByRows},
      {"join_int64_then_agg",
       "SELECT d.bucket, count(*), sum(o.v) FROM mem.raw.orders o "
       "JOIN mem.raw.dim d ON o.k = d.k GROUP BY d.bucket",
       kJoinFactRows},
  };

  auto best_of = [&](const std::string& sql,
                     std::map<std::string, std::string> props, int reps,
                     QueryResult* out) {
    double best = 1e18;
    for (int rep = 0; rep < reps; ++rep) {
      Session session;
      session.properties = props;
      auto result = cluster.Execute(sql, session);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n%s\n", sql.c_str(),
                     result.status().ToString().c_str());
        std::exit(1);
      }
      if (result->wall_millis < best) {
        best = result->wall_millis;
        *out = std::move(*result);
      }
    }
    return best;
  };

  std::printf("=== Engine kernels vs boxed fallback ===\n\n");
  std::vector<BenchResult> results;
  for (const QuerySpec& q : queries) {
    BenchResult r;
    r.query_name = q.name;
    r.sql = q.sql;
    r.input_rows = q.input_rows;
    QueryResult kernel_result, boxed_result;
    r.kernel_millis =
        best_of(q.sql, {{"vectorized_kernels", "true"}}, 3, &kernel_result);
    r.boxed_millis =
        best_of(q.sql, {{"vectorized_kernels", "false"}}, 2, &boxed_result);
    r.result_rows = kernel_result.total_rows;
    r.groups_created = kernel_result.exec_metrics["exec.agg.groups_created"];
    r.hash_probes = kernel_result.exec_metrics["exec.agg.hash_probes"] +
                    kernel_result.exec_metrics["exec.join.hash_probes"];
    if (kernel_result.exec_metrics["exec.agg.fallback_pages"] +
            kernel_result.exec_metrics["exec.join.fallback_pages"] !=
        0) {
      std::fprintf(stderr, "kernel run fell back on %s\n", q.name);
      return 1;
    }
    double speedup = r.boxed_millis / r.kernel_millis;
    double kernel_mrps = static_cast<double>(q.input_rows) / 1e3 / r.kernel_millis;
    std::printf("%-28s kernel %8.1f ms (%6.1f Mrows/s)  boxed %8.1f ms  speedup %.2fx\n",
                q.name, r.kernel_millis, kernel_mrps, r.boxed_millis, speedup);
    results.push_back(std::move(r));
  }

  // -- Observability overhead: per-operator stats collection on vs off -------
  // The stats path adds two clock reads + byte estimation per Next() call;
  // with pre-registered sharded counters the 10M-row group-by must stay
  // within 2% of the uninstrumented run.
  std::printf("\n=== Operator stats instrumentation overhead ===\n\n");
  // Interleaved reps, not two back-to-back blocks: allocator / page-cache
  // warmup drift between blocks otherwise reads as fake overhead.
  QueryResult instrumented, uninstrumented;
  double stats_on_millis = 1e18, stats_off_millis = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    stats_on_millis = std::min(
        stats_on_millis,
        best_of(queries[0].sql, {}, 1, &instrumented));  // stats default on
    stats_off_millis =
        std::min(stats_off_millis, best_of(queries[0].sql,
                                           {{"query_stats", "false"}}, 1,
                                           &uninstrumented));
  }
  double overhead_pct =
      (stats_on_millis - stats_off_millis) / stats_off_millis * 100.0;
  std::printf(
      "%-28s stats-on %8.1f ms  stats-off %8.1f ms  overhead %+.2f%%\n",
      queries[0].name, stats_on_millis, stats_off_millis, overhead_pct);
  if (instrumented.stats.output_rows != instrumented.total_rows) {
    std::fprintf(stderr, "stats/result row mismatch: %lld vs %lld\n",
                 static_cast<long long>(instrumented.stats.output_rows),
                 static_cast<long long>(instrumented.total_rows));
    return 1;
  }

  // -- Distributed shuffle: hash-partitioned stages vs coordinator-inline ----
  // The same join + group-by runs with multi_stage_execution on (leaf scans
  // hash-partition into a worker-side join stage, then a final-aggregation
  // stage) and off (the legacy plan executes joins and final aggregation
  // inline on the coordinator thread). The delta is the win from spreading
  // the join/aggregation work across worker tasks, minus the exchange cost.
  std::printf("\n=== Multi-stage shuffle vs coordinator-inline ===\n\n");
  struct ShuffleResult {
    const char* name;
    std::string sql;
    double staged_millis = 0;
    double inline_millis = 0;
    int64_t exchanged_bytes = 0;
    int64_t exchange_pages = 0;
    int num_fragments = 0;
  };
  std::vector<ShuffleResult> shuffles = {
      {"shuffle_join_then_agg",
       "SELECT d.bucket, count(*), sum(o.v) FROM mem.raw.orders o "
       "JOIN mem.raw.dim d ON o.k = d.k GROUP BY d.bucket"},
      {"shuffle_groupby_100k_groups",
       "SELECT k, count(*), sum(v), avg(v_d) FROM mem.raw.facts GROUP BY k"},
  };
  for (ShuffleResult& s : shuffles) {
    QueryResult staged, inlined;
    s.staged_millis =
        best_of(s.sql, {{"multi_stage_execution", "true"}}, 3, &staged);
    s.inline_millis =
        best_of(s.sql, {{"multi_stage_execution", "false"}}, 3, &inlined);
    s.exchanged_bytes = staged.exec_metrics["exchange.byte.pushed"];
    s.exchange_pages = staged.exec_metrics["exchange.page.pushed"];
    s.num_fragments = staged.num_fragments;
    if (staged.total_rows != inlined.total_rows) {
      std::fprintf(stderr, "shuffle row mismatch on %s: %lld vs %lld\n",
                   s.name, static_cast<long long>(staged.total_rows),
                   static_cast<long long>(inlined.total_rows));
      return 1;
    }
    std::printf(
        "%-28s staged %8.1f ms (%d fragments, %.1f MB shuffled)  "
        "inline %8.1f ms  speedup %.2fx\n",
        s.name, s.staged_millis, s.num_fragments,
        s.exchanged_bytes / 1048576.0, s.inline_millis,
        s.inline_millis / s.staged_millis);
  }

  // -- Morsel-driven intra-task parallelism: task_threads scaling ------------
  // The group-by and the join re-run with morsel execution off (one operator
  // chain per task, the pre-morsel path) and then at task_threads 1/2/4/8.
  // On a single-core host the scaling curve is expected to be flat — the
  // interesting deltas are morsel-on-at-1-thread vs the legacy chain (radix
  // partitioning + reservation batching with zero added parallelism) and
  // that N threads cost at most linear memory (thread-local tables).
  std::printf("\n=== Morsel-driven parallelism (task_threads scaling) ===\n\n");
  struct ParallelResult {
    const char* name;
    std::string sql;
    size_t input_rows = 0;
    double single_chain_millis = 0;  // morsel_execution=false
    std::vector<int> threads;
    std::vector<double> millis;
    int64_t peak_bytes_at_1 = 0;
    int64_t peak_bytes_at_max = 0;
  };
  const std::vector<int> kThreadCounts = {1, 2, 4, 8};
  std::vector<ParallelResult> parallel_results;
  for (size_t qi : {size_t{0}, size_t{3}}) {
    ParallelResult p;
    p.name = queries[qi].name;
    p.sql = queries[qi].sql;
    p.input_rows = queries[qi].input_rows;
    QueryResult legacy;
    p.single_chain_millis =
        best_of(p.sql, {{"morsel_execution", "false"}}, 3, &legacy);
    std::printf("%-28s single-chain %8.1f ms\n", p.name,
                p.single_chain_millis);
    for (int t : kThreadCounts) {
      QueryResult r;
      double ms = best_of(
          p.sql, {{"task_threads", std::to_string(t)}}, 3, &r);
      if (r.total_rows != legacy.total_rows) {
        std::fprintf(stderr, "parallelism row mismatch on %s at %d threads: "
                     "%lld vs %lld\n", p.name, t,
                     static_cast<long long>(r.total_rows),
                     static_cast<long long>(legacy.total_rows));
        return 1;
      }
      p.threads.push_back(t);
      p.millis.push_back(ms);
      int64_t peak = r.exec_metrics["memory.query.peak_bytes"];
      if (t == 1) p.peak_bytes_at_1 = peak;
      if (t == kThreadCounts.back()) p.peak_bytes_at_max = peak;
      std::printf(
          "%-28s %2d threads %10.1f ms (%6.1f Mrows/s)  vs single-chain "
          "%.2fx  peak %.1f MB\n",
          p.name, t, ms, static_cast<double>(p.input_rows) / 1e3 / ms,
          p.single_chain_millis / ms, peak / 1048576.0);
    }
    // Memory budget: thread-local radix tables may cost at most linear
    // memory in task_threads, plus one reservation quantum of batching
    // slack per chain (64 MiB covers both with room for allocator noise).
    // A violation means per-chain state is being duplicated superlinearly
    // or reservation batching stopped returning shrunk reservations.
    int64_t budget = p.peak_bytes_at_1 * kThreadCounts.back() + (64LL << 20);
    if (p.peak_bytes_at_max > budget) {
      std::fprintf(stderr,
                   "memory budget violated on %s: peak at %d threads %lld "
                   "exceeds %lld (peak at 1 thread %lld)\n",
                   p.name, kThreadCounts.back(),
                   static_cast<long long>(p.peak_bytes_at_max),
                   static_cast<long long>(budget),
                   static_cast<long long>(p.peak_bytes_at_1));
      return 1;
    }
    parallel_results.push_back(std::move(p));
  }

  // -- Fault-tolerance overhead: recovery armed, fault rate zero -------------
  // Arming retries wraps every leaf task in the retry/backoff/deadline
  // machinery (attempt bookkeeping, buffered leaf output, heartbeat sweeps,
  // deadline checks at batch boundaries). With no faults injected the whole
  // apparatus must stay within a 2% budget of the bare run — fault tolerance
  // that taxes the happy path gets turned off in production.
  std::printf("\n=== Fault-tolerance machinery overhead (fault rate 0) ===\n\n");
  // Interleaved reps, not two back-to-back blocks: allocator / page-cache
  // warmup drift between blocks otherwise reads as fake overhead.
  QueryResult armed_result, bare_result;
  double armed_millis = 1e18, bare_millis = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    armed_millis = std::min(armed_millis,
                            best_of(queries[0].sql,
                                    {{"query_max_task_retries", "3"},
                                     {"query_timeout_millis", "600000"}},
                                    1, &armed_result));
    bare_millis =
        std::min(bare_millis, best_of(queries[0].sql, {}, 1, &bare_result));
  }
  double retry_overhead_pct = (armed_millis - bare_millis) / bare_millis * 100.0;
  std::printf(
      "%-28s armed %8.1f ms  bare %8.1f ms  overhead %+.2f%% (budget 2%%)\n",
      queries[0].name, armed_millis, bare_millis, retry_overhead_pct);
  if (armed_result.total_rows != bare_result.total_rows) {
    std::fprintf(stderr, "fault-tolerance row mismatch: %lld vs %lld\n",
                 static_cast<long long>(armed_result.total_rows),
                 static_cast<long long>(bare_result.total_rows));
    return 1;
  }
  if (armed_result.exec_metrics["task.retry.count"] != 0) {
    std::fprintf(stderr, "spurious retry at fault rate 0\n");
    return 1;
  }

  // -- Spooled-exchange overhead: tee on, fault rate zero --------------------
  // exchange_spool=true tees every page accepted into an exchange through the
  // snappy spill codec into a worker-local spool file. The budget is 2% of
  // the same recovery-armed run without spooling: stage-level recovery that
  // taxes the fault-free path gets turned off in production. The tee's cost
  // is the snappy compression of the shuffled bytes — serialize/compress run
  // outside the spool lock, so on a multi-core worker they overlap operator
  // work, but on a single-core host they are pure added wall time
  // proportional to exchanged bytes (the JSON records both so the budget is
  // judged against the byte volume). Shuffle-raw-rows shapes like the join
  // pay the most; that cost shows up in the recovery section below, where
  // its baselines have the tee on.
  std::printf("\n=== Spooled-exchange tee overhead (fault rate 0) ===\n\n");
  QueryResult spool_on_result, spool_off_result;
  double spool_on_millis = 1e18, spool_off_millis = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    spool_on_millis =
        std::min(spool_on_millis,
                 best_of(queries[0].sql,
                         {{"query_max_task_retries", "1"},
                          {"exchange_spool", "true"}},
                         1, &spool_on_result));
    spool_off_millis =
        std::min(spool_off_millis,
                 best_of(queries[0].sql, {{"query_max_task_retries", "1"}}, 1,
                         &spool_off_result));
  }
  double spool_overhead_pct =
      (spool_on_millis - spool_off_millis) / spool_off_millis * 100.0;
  int64_t spool_pages_written =
      spool_on_result.exec_metrics["exchange.spool.page.written"];
  int64_t spool_bytes_written =
      spool_on_result.exec_metrics["exchange.spool.byte.written"];
  int64_t spool_bytes_raw =
      spool_on_result.exec_metrics["exchange.spool.byte.raw"];
  std::printf(
      "%-28s spool-on %7.1f ms  spool-off %7.1f ms  overhead %+.2f%% "
      "(budget 2%%), %lld pages / %.1f MB spooled\n",
      queries[0].name, spool_on_millis, spool_off_millis, spool_overhead_pct,
      static_cast<long long>(spool_pages_written),
      spool_bytes_written / 1048576.0);
  if (spool_on_result.total_rows != spool_off_result.total_rows) {
    std::fprintf(stderr, "spool row mismatch: %lld vs %lld\n",
                 static_cast<long long>(spool_on_result.total_rows),
                 static_cast<long long>(spool_off_result.total_rows));
    return 1;
  }
  if (spool_pages_written == 0) {
    std::fprintf(stderr, "spool-on run spooled no pages\n");
    return 1;
  }

  // -- Kill-one-worker recovery time: stage re-run vs restart-once -----------
  // A fresh 3-worker cluster runs the join while a scripted fault kills one
  // worker host roughly two thirds of the way through the query — late
  // enough that real upstream work is lost. With exchange_spool on, the lost
  // intermediate tasks are re-run against the surviving upstream spools
  // (stage re-run); without it, recovery falls through to restarting the
  // whole query. Each mode is compared against its own fault-free baseline on
  // the same cluster shape, so the spool tee cost cancels out and the delta
  // isolates pure recovery time. Both must produce the fault-free row count.
  std::printf("\n=== Kill-one-worker recovery (stage re-run vs restart) ===\n\n");
  struct RecoveryRun {
    double millis = 0;
    int64_t rows = 0;
    int64_t stage_reruns = 0;
    int64_t restarts = 0;
    int64_t spool_pages_replayed = 0;
    int64_t kill_point_calls = 0;  // worker.kill evaluations during the run
  };
  auto run_with_kill = [&](bool spool_on, int64_t kill_at, RecoveryRun* out) {
    PrestoCluster recovery_cluster("recovery-bench", 3, 2);
    (void)recovery_cluster.catalogs().RegisterCatalog("mem", memory);
    FaultInjector::Global().Reset();
    if (kill_at > 0) {
      FaultInjector::Global().ArmScripted("worker.kill", {kill_at});
    } else {
      // Arm at probability 0 so the injector stays enabled and counts
      // worker.kill evaluations: the baseline's call count is how the kill
      // point for the faulted runs is placed mid-query.
      FaultInjector::Global().ArmProbabilistic("worker.kill", 0.0);
    }
    Session session;
    session.properties = {{"query_max_task_retries", "2"},
                          {"query_timeout_millis", "600000"}};
    if (spool_on) session.properties["exchange_spool"] = "true";
    auto result = recovery_cluster.Execute(queries[3].sql, session);
    out->kill_point_calls = FaultInjector::Global().CallCount("worker.kill");
    FaultInjector::Global().Reset();
    if (!result.ok()) {
      std::fprintf(stderr, "recovery run (spool=%d kill_at=%lld) failed: %s\n",
                   spool_on ? 1 : 0, static_cast<long long>(kill_at),
                   result.status().ToString().c_str());
      std::exit(1);
    }
    out->millis = result->wall_millis;
    out->rows = result->total_rows;
    out->stage_reruns = result->exec_metrics["stage.rerun.count"];
    out->spool_pages_replayed =
        result->exec_metrics["exchange.spool.page.replayed"];
    out->restarts =
        recovery_cluster.coordinator().metrics().Get("query.restarted");
  };
  RecoveryRun baseline_bare, baseline_spooled, recovery_spooled,
      recovery_restart;
  run_with_kill(/*spool_on=*/false, /*kill_at=*/0, &baseline_bare);
  run_with_kill(/*spool_on=*/true, /*kill_at=*/0, &baseline_spooled);
  const int64_t kill_at = std::max<int64_t>(
      3, baseline_bare.kill_point_calls * 2 / 3);
  run_with_kill(/*spool_on=*/true, kill_at, &recovery_spooled);
  run_with_kill(/*spool_on=*/false, kill_at, &recovery_restart);
  double spooled_recovery_millis =
      recovery_spooled.millis - baseline_spooled.millis;
  double restart_recovery_millis =
      recovery_restart.millis - baseline_bare.millis;
  std::printf(
      "%-28s kill at call %lld of ~%lld\n"
      "%-28s spooled  %8.1f ms vs baseline %8.1f ms  recovery %+8.1f ms "
      "(%lld stage re-runs, %lld pages replayed, %lld restarts)\n"
      "%-28s restart  %8.1f ms vs baseline %8.1f ms  recovery %+8.1f ms "
      "(%lld stage re-runs, %lld restarts)\n",
      queries[3].name, static_cast<long long>(kill_at),
      static_cast<long long>(baseline_bare.kill_point_calls), "",
      recovery_spooled.millis, baseline_spooled.millis,
      spooled_recovery_millis,
      static_cast<long long>(recovery_spooled.stage_reruns),
      static_cast<long long>(recovery_spooled.spool_pages_replayed),
      static_cast<long long>(recovery_spooled.restarts), "",
      recovery_restart.millis, baseline_bare.millis, restart_recovery_millis,
      static_cast<long long>(recovery_restart.stage_reruns),
      static_cast<long long>(recovery_restart.restarts));
  if (recovery_spooled.rows != baseline_bare.rows ||
      recovery_restart.rows != baseline_bare.rows ||
      baseline_spooled.rows != baseline_bare.rows) {
    std::fprintf(stderr, "recovery row mismatch: %lld / %lld vs %lld\n",
                 static_cast<long long>(recovery_spooled.rows),
                 static_cast<long long>(recovery_restart.rows),
                 static_cast<long long>(baseline_bare.rows));
    return 1;
  }
  if (recovery_spooled.restarts != 0) {
    std::fprintf(stderr,
                 "spooled run restarted the query instead of re-running the "
                 "lost stage\n");
    return 1;
  }

  // -- Memory management: spill throughput and reservation overhead ----------
  // The same 10M-row group-by runs unconstrained (hash tables fully
  // in memory) and under a query_max_memory cap small enough that the
  // aggregation revokes itself into sorted spill runs and merge-reads them on
  // output. Row counts must match exactly; the slowdown is the price of
  // running a query that does not fit. Separately, memory_accounting=false
  // strips every pool reservation out of the hot path — with lock-free
  // per-level atomics the accounted run must stay within a 2% budget.
  std::printf("\n=== Spill vs in-memory, reservation overhead ===\n\n");
  QueryResult in_memory_result, spilled_result;
  double in_memory_millis = best_of(queries[0].sql, {}, 3, &in_memory_result);
  double spilled_millis =
      best_of(queries[0].sql,
              {{"query_max_memory", "16777216"},
               {"spill_path", "/tmp/presto_spill_bench"}},
              3, &spilled_result);
  int64_t spill_runs = spilled_result.exec_metrics["spill.run.written"];
  int64_t spill_bytes = spilled_result.exec_metrics["spill.byte.written"];
  if (spilled_result.total_rows != in_memory_result.total_rows) {
    std::fprintf(stderr, "spill row mismatch: %lld vs %lld\n",
                 static_cast<long long>(spilled_result.total_rows),
                 static_cast<long long>(in_memory_result.total_rows));
    return 1;
  }
  if (spill_runs == 0) {
    std::fprintf(stderr, "16 MiB cap did not force a spill\n");
    return 1;
  }
  std::printf(
      "%-28s in-memory %8.1f ms  spilled %8.1f ms (%lld runs, %.1f MB)  "
      "slowdown %.2fx\n",
      queries[0].name, in_memory_millis, spilled_millis,
      static_cast<long long>(spill_runs), spill_bytes / 1048576.0,
      spilled_millis / in_memory_millis);

  // Interleave the accounted / unaccounted reps: running them as two
  // back-to-back blocks lets allocator and page-cache warmup from the spill
  // runs above systematically favor whichever block goes second, which reads
  // as fake reservation overhead (or a fake speedup).
  QueryResult accounted_result, unaccounted_result;
  double accounted_millis = 1e18, unaccounted_millis = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    accounted_millis = std::min(
        accounted_millis, best_of(queries[0].sql, {}, 1, &accounted_result));
    unaccounted_millis =
        std::min(unaccounted_millis,
                 best_of(queries[0].sql, {{"memory_accounting", "false"}}, 1,
                         &unaccounted_result));
  }
  double memory_overhead_pct =
      (accounted_millis - unaccounted_millis) / unaccounted_millis * 100.0;
  std::printf(
      "%-28s accounted %7.1f ms  unaccounted %7.1f ms  overhead %+.2f%% "
      "(budget 2%%), query peak %.1f MB\n",
      queries[0].name, accounted_millis, unaccounted_millis,
      memory_overhead_pct,
      accounted_result.exec_metrics["memory.query.peak_bytes"] / 1048576.0);
  if (accounted_result.total_rows != unaccounted_result.total_rows) {
    std::fprintf(stderr, "memory-accounting row mismatch: %lld vs %lld\n",
                 static_cast<long long>(accounted_result.total_rows),
                 static_cast<long long>(unaccounted_result.total_rows));
    return 1;
  }

  // -- Tracing overhead: query_trace on vs off ------------------------------
  // query_trace=true records the full span tree (stage / task / operator /
  // exchange / spill spans) through the sharded TraceRecorder and renders it
  // to Chrome trace JSON at the end. Spans are opened lazily and blocked-time
  // deltas ride the existing stats clock reads, so the traced run must stay
  // within a 2% budget of the untraced run (stats on in both).
  std::printf("\n=== Tracing overhead (query_trace on vs off) ===\n\n");
  // Interleaved reps, not two back-to-back blocks: allocator / page-cache
  // warmup drift between blocks otherwise reads as fake overhead.
  QueryResult traced_result, untraced_result;
  double traced_millis = 1e18, untraced_millis = 1e18;
  for (int rep = 0; rep < 9; ++rep) {
    traced_millis =
        std::min(traced_millis, best_of(queries[0].sql,
                                        {{"query_trace", "true"}}, 1,
                                        &traced_result));
    untraced_millis = std::min(
        untraced_millis, best_of(queries[0].sql, {}, 1, &untraced_result));
  }
  double tracing_overhead_pct =
      (traced_millis - untraced_millis) / untraced_millis * 100.0;
  int64_t trace_spans = static_cast<int64_t>(traced_result.trace_spans.size());
  std::printf(
      "%-28s traced %8.1f ms  untraced %8.1f ms  overhead %+.2f%% "
      "(budget 2%%), %lld spans\n",
      queries[0].name, traced_millis, untraced_millis, tracing_overhead_pct,
      static_cast<long long>(trace_spans));
  if (traced_result.total_rows != untraced_result.total_rows) {
    std::fprintf(stderr, "tracing row mismatch: %lld vs %lld\n",
                 static_cast<long long>(traced_result.total_rows),
                 static_cast<long long>(untraced_result.total_rows));
    return 1;
  }
  if (trace_spans == 0 || traced_result.trace_json.empty()) {
    std::fprintf(stderr, "traced run produced no spans\n");
    return 1;
  }

  // -- Lazy vectorized scan: page skipping + late materialization ------------
  // A 2M-row hive lakefile (one file, 65536-row groups, 8192-row pages,
  // sorted key) scanned at 1% selectivity with the production reader vs the
  // same scan with page_skipping and lazy_reads off. The pruned run must
  // skip >= 60% of the examined pages and read measurably fewer bytes.
  std::printf("\n=== Lazy scan pruning (1%% selectivity) ===\n\n");
  SimulatedClock scan_clock;
  SimulatedHdfs scan_hdfs(&scan_clock);
  auto hive = std::make_shared<HiveConnector>(&scan_hdfs, "warehouse");
  const size_t kScanRows = 2'000'000;
  {
    TypePtr pts_type = Type::Row({"k", "v"}, {Type::Bigint(), Type::Bigint()});
    if (!hive->CreateTable("raw", "pts", pts_type).ok()) return 1;
    Random rng(14);
    std::vector<Page> pages;
    for (size_t done = 0; done < kScanRows;) {
      size_t n = std::min(kPageRows, kScanRows - done);
      std::vector<int64_t> k(n), v(n);
      for (size_t i = 0; i < n; ++i) {
        k[i] = static_cast<int64_t>(done + i);  // sorted: tight page stats
        v[i] = static_cast<int64_t>(rng.NextBelow(10000));
      }
      pages.push_back(Page({std::make_shared<Int64Vector>(
                                Type::Bigint(), std::move(k),
                                std::vector<uint8_t>{}),
                            std::make_shared<Int64Vector>(
                                Type::Bigint(), std::move(v),
                                std::vector<uint8_t>{})}));
      done += n;
    }
    lakefile::WriterOptions writer_options;
    writer_options.row_group_rows = 65536;
    writer_options.page_rows = 8192;
    if (!hive->WriteDataFile("raw", "pts", "", pages, writer_options).ok()) {
      return 1;
    }
  }
  (void)cluster.catalogs().RegisterCatalog("lake", hive);
  const int64_t kScanThreshold = static_cast<int64_t>(kScanRows / 100);  // 1%
  const std::string scan_sql =
      "SELECT count(*), sum(v) FROM lake.raw.pts WHERE k < " +
      std::to_string(kScanThreshold);

  QueryResult pruned_result, unpruned_result;
  double pruned_millis = best_of(scan_sql, {}, 3, &pruned_result);
  HiveConnectorOptions no_prune;
  no_prune.reader.page_skipping = false;
  no_prune.reader.lazy_reads = false;
  hive->set_options(no_prune);
  double unpruned_millis = best_of(scan_sql, {}, 3, &unpruned_result);
  hive->set_options(HiveConnectorOptions());

  if (pruned_result.Row(0) != unpruned_result.Row(0)) {
    std::fprintf(stderr, "scan pruning changed the query result\n");
    return 1;
  }
  int64_t scan_pages_read = pruned_result.exec_metrics["lakefile.pages.read"];
  int64_t scan_pages_skipped =
      pruned_result.exec_metrics["lakefile.pages.skipped_stats"] +
      pruned_result.exec_metrics["lakefile.pages.skipped_lazy"];
  int64_t scan_rows_pruned =
      pruned_result.exec_metrics["lakefile.rows.pruned_late"];
  int64_t pruned_bytes = pruned_result.exec_metrics["lakefile.bytes.read"];
  int64_t unpruned_bytes = unpruned_result.exec_metrics["lakefile.bytes.read"];
  double pages_skipped_pct =
      100.0 * static_cast<double>(scan_pages_skipped) /
      static_cast<double>(std::max<int64_t>(1, scan_pages_read + scan_pages_skipped));
  std::printf(
      "%-28s pruned %8.1f ms  unpruned %8.1f ms  speedup %.2fx\n"
      "%-28s pages %lld read / %lld skipped (%.1f%%), rows_pruned %lld, "
      "bytes %.1f MB vs %.1f MB\n",
      "scan_1pct_selectivity", pruned_millis, unpruned_millis,
      unpruned_millis / pruned_millis, "", static_cast<long long>(scan_pages_read),
      static_cast<long long>(scan_pages_skipped), pages_skipped_pct,
      static_cast<long long>(scan_rows_pruned), pruned_bytes / 1048576.0,
      unpruned_bytes / 1048576.0);
  if (pages_skipped_pct < 60.0) {
    std::fprintf(stderr,
                 "1%%-selectivity scan skipped only %.1f%% of pages "
                 "(acceptance floor: 60%%)\n",
                 pages_skipped_pct);
    return 1;
  }
  if (pruned_bytes >= unpruned_bytes) {
    std::fprintf(stderr, "pruning did not reduce bytes read: %lld vs %lld\n",
                 static_cast<long long>(pruned_bytes),
                 static_cast<long long>(unpruned_bytes));
    return 1;
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"engine_kernels\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(
        f,
        "    {\"query\": \"%s\", \"input_rows\": %zu, \"result_rows\": %lld,\n"
        "     \"kernel_millis\": %.2f, \"boxed_millis\": %.2f, "
        "\"speedup\": %.2f,\n"
        "     \"kernel_mrows_per_sec\": %.1f, \"groups_created\": %lld, "
        "\"hash_probes\": %lld}%s\n",
        r.query_name.c_str(), r.input_rows,
        static_cast<long long>(r.result_rows), r.kernel_millis, r.boxed_millis,
        r.boxed_millis / r.kernel_millis,
        static_cast<double>(r.input_rows) / 1e3 / r.kernel_millis,
        static_cast<long long>(r.groups_created),
        static_cast<long long>(r.hash_probes),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"stats_overhead\": {\"query\": \"%s\", "
               "\"stats_on_millis\": %.2f, \"stats_off_millis\": %.2f, "
               "\"overhead_pct\": %.2f},\n",
               queries[0].name, stats_on_millis, stats_off_millis,
               overhead_pct);
  std::fprintf(f, "  \"shuffle\": [\n");
  for (size_t i = 0; i < shuffles.size(); ++i) {
    const ShuffleResult& s = shuffles[i];
    std::fprintf(
        f,
        "    {\"query\": \"%s\", \"staged_millis\": %.2f, "
        "\"inline_millis\": %.2f, \"speedup\": %.2f,\n"
        "     \"num_fragments\": %d, \"exchanged_bytes\": %lld, "
        "\"exchange_pages\": %lld}%s\n",
        s.name, s.staged_millis, s.inline_millis,
        s.inline_millis / s.staged_millis, s.num_fragments,
        static_cast<long long>(s.exchanged_bytes),
        static_cast<long long>(s.exchange_pages),
        i + 1 < shuffles.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"parallelism\": [\n");
  for (size_t i = 0; i < parallel_results.size(); ++i) {
    const ParallelResult& p = parallel_results[i];
    std::fprintf(f,
                 "    {\"query\": \"%s\", \"single_chain_millis\": %.2f,\n"
                 "     \"peak_bytes_at_1_thread\": %lld, "
                 "\"peak_bytes_at_%d_threads\": %lld,\n"
                 "     \"runs\": [",
                 p.name, p.single_chain_millis,
                 static_cast<long long>(p.peak_bytes_at_1),
                 kThreadCounts.back(),
                 static_cast<long long>(p.peak_bytes_at_max));
    for (size_t j = 0; j < p.threads.size(); ++j) {
      std::fprintf(
          f,
          "{\"threads\": %d, \"millis\": %.2f, \"mrows_per_sec\": %.1f}%s",
          p.threads[j], p.millis[j],
          static_cast<double>(p.input_rows) / 1e3 / p.millis[j],
          j + 1 < p.threads.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n",
                 i + 1 < parallel_results.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"fault_tolerance\": {\"query\": \"%s\", "
               "\"recovery_armed_millis\": %.2f, \"bare_millis\": %.2f, "
               "\"overhead_pct\": %.2f, \"budget_pct\": 2.0,\n"
               "    \"spool_overhead\": {\"query\": \"%s\", "
               "\"spool_on_millis\": %.2f, \"spool_off_millis\": %.2f, "
               "\"overhead_pct\": %.2f, \"budget_pct\": 2.0, "
               "\"spool_pages_written\": %lld, "
               "\"spool_bytes_written\": %lld, \"spool_bytes_raw\": %lld},\n"
               "    \"worker_kill_recovery\": {\"query\": \"%s\", "
               "\"baseline_bare_millis\": %.2f, "
               "\"baseline_spooled_millis\": %.2f, "
               "\"stage_rerun_millis\": %.2f, \"restart_millis\": %.2f, "
               "\"stage_rerun_recovery_millis\": %.2f, "
               "\"restart_recovery_millis\": %.2f, \"stage_reruns\": %lld, "
               "\"spool_pages_replayed\": %lld, \"restarts\": %lld}},\n",
               queries[0].name, armed_millis, bare_millis,
               retry_overhead_pct, queries[0].name, spool_on_millis,
               spool_off_millis, spool_overhead_pct,
               static_cast<long long>(spool_pages_written),
               static_cast<long long>(spool_bytes_written),
               static_cast<long long>(spool_bytes_raw), queries[3].name,
               baseline_bare.millis, baseline_spooled.millis,
               recovery_spooled.millis, recovery_restart.millis,
               spooled_recovery_millis, restart_recovery_millis,
               static_cast<long long>(recovery_spooled.stage_reruns),
               static_cast<long long>(recovery_spooled.spool_pages_replayed),
               static_cast<long long>(recovery_restart.restarts));
  std::fprintf(
      f,
      "  \"memory\": {\"query\": \"%s\",\n"
      "    \"spill\": {\"in_memory_millis\": %.2f, \"spilled_millis\": %.2f, "
      "\"slowdown\": %.2f, \"runs_written\": %lld, \"bytes_written\": %lld},\n"
      "    \"reservation_overhead\": {\"accounted_millis\": %.2f, "
      "\"unaccounted_millis\": %.2f, \"overhead_pct\": %.2f, "
      "\"budget_pct\": 2.0, \"query_peak_bytes\": %lld}},\n",
      queries[0].name, in_memory_millis, spilled_millis,
      spilled_millis / in_memory_millis, static_cast<long long>(spill_runs),
      static_cast<long long>(spill_bytes), accounted_millis,
      unaccounted_millis, memory_overhead_pct,
      static_cast<long long>(
          accounted_result.exec_metrics["memory.query.peak_bytes"]));
  std::fprintf(f,
               "  \"tracing_overhead\": {\"query\": \"%s\", "
               "\"traced_millis\": %.2f, \"untraced_millis\": %.2f, "
               "\"overhead_pct\": %.2f, \"budget_pct\": 2.0, "
               "\"spans_recorded\": %lld},\n",
               queries[0].name, traced_millis, untraced_millis,
               tracing_overhead_pct, static_cast<long long>(trace_spans));
  std::fprintf(
      f,
      "  \"scan_pruning\": {\"query\": \"scan_1pct_selectivity\", "
      "\"input_rows\": %zu, \"selectivity_pct\": 1.0,\n"
      "    \"pruned_millis\": %.2f, \"unpruned_millis\": %.2f, "
      "\"speedup\": %.2f,\n"
      "    \"pages_read\": %lld, \"pages_skipped\": %lld, "
      "\"pages_skipped_pct\": %.1f, \"floor_pct\": 60.0,\n"
      "    \"rows_pruned_late\": %lld, \"pruned_bytes_read\": %lld, "
      "\"unpruned_bytes_read\": %lld}\n}\n",
      kScanRows, pruned_millis, unpruned_millis,
      unpruned_millis / pruned_millis, static_cast<long long>(scan_pages_read),
      static_cast<long long>(scan_pages_skipped), pages_skipped_pct,
      static_cast<long long>(scan_rows_pruned),
      static_cast<long long>(pruned_bytes),
      static_cast<long long>(unpruned_bytes));
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
