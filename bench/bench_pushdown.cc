// Reproduces Figure 2 / Section IV.B: what aggregation pushdown buys.
// Without pushdown, the connector streams (filtered) raw rows into the
// engine which aggregates them; with pushdown, "only aggregated results are
// streamed into the Presto engine". We measure latency and rows crossing
// the connector boundary, plus a reader-feature ablation for the hive
// connector (each Section V optimization toggled on top of the previous).

#include <cstdio>

#include "presto/cluster/cluster.h"
#include "presto/connectors/druid/druid_connector.h"
#include "presto/connectors/hive/hive_connector.h"
#include "presto/fs/simulated_hdfs.h"
#include "presto/tpch/workloads.h"

namespace presto {
namespace {

// A connector wrapper that disables aggregation pushdown (ablation).
class NoAggPushdownDruid : public DruidConnector {
 public:
  using DruidConnector::DruidConnector;

  Result<AcceptedPushdown> NegotiatePushdown(
      const std::string& schema, const std::string& table,
      const PushdownRequest& desired) override {
    PushdownRequest stripped = desired;
    stripped.group_by.clear();
    stripped.aggregations.clear();
    return DruidConnector::NegotiatePushdown(schema, table, stripped);
  }
};


}  // namespace
}  // namespace presto

int main() {
  using namespace presto;
  std::printf("=== Pushdown ablations (paper Figure 2, Sections IV-V) ===\n\n");

  // ---- Part 1: aggregation pushdown through the Druid connector --------------
  druid::DruidStore store;
  druid::DatasourceSchema schema;
  schema.dimensions = {"country", "device"};
  schema.metrics = {"revenue"};
  schema.granularity_millis = 1000;  // fine rollup: real row volume survives
  if (!store.CreateDatasource("events", schema).ok()) return 1;
  {
    Random rng(31);
    const char* countries[] = {"us", "jp", "de", "br", "in"};
    const char* devices[] = {"ios", "android", "web"};
    std::vector<druid::DruidRow> events;
    for (int i = 0; i < 400000; ++i) {
      events.push_back({static_cast<int64_t>(rng.NextBelow(6 * 3600000)),
                        {countries[rng.NextBelow(5)], devices[rng.NextBelow(3)]},
                        {rng.NextDouble() * 20.0}});
    }
    if (!store.Ingest("events", events).ok()) return 1;
  }

  const std::string kAggQuery =
      "SELECT country, max(revenue) FROM druid.default.events "
      "WHERE device = 'ios' GROUP BY country";

  PrestoCluster with_push("push-on", 1, 1);
  (void)with_push.catalogs().RegisterCatalog(
      "druid", std::make_shared<DruidConnector>(&store));
  PrestoCluster without_push("push-off", 1, 1);
  (void)without_push.catalogs().RegisterCatalog(
      "druid", std::make_shared<NoAggPushdownDruid>(&store));

  Session session;
  auto best_of = [&](PrestoCluster* cluster, int64_t* result_rows) {
    double best = 1e18;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch watch;
      auto result = cluster->Execute(kAggQuery, session);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return -1.0;
      }
      *result_rows = result->total_rows;
      best = std::min(best, watch.ElapsedMillis());
    }
    return best;
  };
  int64_t scanned0 = 0, ignored = 0;
  double on_ms = best_of(&with_push, &scanned0);
  double off_ms = best_of(&without_push, &ignored);
  if (on_ms < 0 || off_ms < 0) return 1;
  (void)ignored;

  // Rows streamed into the engine: with pushdown = group count; without =
  // all filtered rolled-up rows.
  druid::DruidQuery probe;
  probe.datasource = "events";
  probe.filters = {{"device", {"ios"}}};
  auto filtered = store.Execute(probe);
  int64_t rows_without = filtered.ok() ? static_cast<int64_t>(filtered->rows.size()) : -1;

  std::printf("Part 1: aggregation pushdown (Presto-Druid connector)\n");
  std::printf("  query: %s\n", kAggQuery.c_str());
  std::printf("  %-34s %12s %18s\n", "mode", "latency ms", "rows into engine");
  std::printf("  %-34s %12.1f %18lld\n", "aggregation pushed to Druid", on_ms,
              static_cast<long long>(scanned0));
  std::printf("  %-34s %12.1f %18lld\n", "engine-side aggregation", off_ms,
              static_cast<long long>(rows_without));
  std::printf("  -> pushdown streams %.0fx fewer rows and runs %.1fx faster\n\n",
              static_cast<double>(rows_without) / std::max<int64_t>(1, scanned0),
              off_ms / on_ms);

  // ---- Part 2: reader-feature ablation (Section V) ------------------------------
  SimulatedClock clock;
  SimulatedHdfs hdfs(&clock);
  auto hive = std::make_shared<HiveConnector>(&hdfs, "warehouse");
  if (!hive->CreateTable("raw", "trips", workloads::TripsType()).ok()) return 1;
  for (int f = 0; f < 4; ++f) {
    workloads::TripsOptions options;
    options.num_rows = 20000;
    options.city_cluster_run = 500;
    options.first_id = f * 20000;
    options.seed = 40 + f;
    lakefile::WriterOptions writer_options;
    writer_options.row_group_rows = 4000;
    if (!hive->WriteDataFile("raw", "trips", "",
                             {workloads::GenerateTrips(options)}, writer_options)
             .ok()) {
      return 1;
    }
  }
  PrestoCluster hive_cluster("ablation", 1, 1);
  (void)hive_cluster.catalogs().RegisterCatalog("hive", hive);
  const std::string kNeedle =
      "SELECT base.driver_uuid FROM hive.raw.trips WHERE base.city_id = 17";

  struct Step {
    const char* name;
    HiveConnectorOptions options;
  };
  std::vector<Step> steps;
  {
    HiveConnectorOptions legacy;
    legacy.use_legacy_reader = true;
    steps.push_back({"original reader (row by row)", legacy});
    HiveConnectorOptions base;
    base.use_legacy_reader = false;
    base.reader.nested_column_pruning = false;
    base.reader.predicate_pushdown = false;
    base.reader.dictionary_pushdown = false;
    base.reader.lazy_reads = false;
    base.reader.vectorized = false;
    steps.push_back({"+ columnar reads", base});
    base.reader.nested_column_pruning = true;
    steps.push_back({"+ nested column pruning", base});
    base.reader.predicate_pushdown = true;
    steps.push_back({"+ predicate pushdown (stats)", base});
    base.reader.dictionary_pushdown = true;
    steps.push_back({"+ dictionary pushdown", base});
    base.reader.lazy_reads = true;
    steps.push_back({"+ lazy reads", base});
    base.reader.vectorized = true;
    steps.push_back({"+ vectorized reader", base});
  }

  std::printf("Part 2: Section V reader features, enabled cumulatively\n");
  std::printf("  needle-in-a-haystack query: %s\n", kNeedle.c_str());
  std::printf("  %-34s %12s %10s\n", "configuration", "latency ms", "speedup");
  double baseline_ms = -1;
  for (const Step& step : steps) {
    hive->set_options(step.options);
    double best = 1e18;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch watch;
      auto result = hive_cluster.Execute(kNeedle, session);
      if (!result.ok()) {
        std::fprintf(stderr, "ablation query failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      best = std::min(best, watch.ElapsedMillis());
    }
    if (baseline_ms < 0) baseline_ms = best;
    std::printf("  %-34s %12.2f %9.1fx\n", step.name, best, baseline_ms / best);
  }
  std::printf("  (paper: the combined optimizations give 2-10x, and the new\n"
              "   reader made P90 latency drop from 5 minutes to 40 seconds)\n");
  return 0;
}
