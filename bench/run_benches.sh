#!/usr/bin/env bash
# Builds and runs the engine benches, leaving machine-readable results at the
# repo root (BENCH_engine.json). Usage: bench/run_benches.sh [build_dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake --build "$build_dir" --target bench -j

echo "== bench_engine =="
"$build_dir/bench/bench_engine" "$repo_root/BENCH_engine.json"

echo
echo "== bench_pushdown =="
"$build_dir/bench/bench_pushdown"

echo
echo "== bench_workload =="
"$build_dir/bench/bench_workload" "$repo_root/BENCH_workload.json"
