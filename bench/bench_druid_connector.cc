// Reproduces Figure 16: "Druid and Presto Druid Connector performance
// comparison" — 20 production-shaped queries (14 with predicates, 5 with
// limits, 12 aggregations) run directly against mini-Druid and through the
// Presto-Druid connector with predicate/limit/aggregation pushdown.
//
// Expected shape: with pushdown the connector adds <15% overhead on average
// and most queries stay within real-time latency.

#include <cstdio>
#include <functional>
#include <vector>

#include "presto/cluster/cluster.h"
#include "presto/connectors/druid/druid_connector.h"
#include "presto/tpch/workloads.h"

namespace presto {
namespace {

constexpr int kNumEvents = 1'000'000;

struct BenchQuery {
  std::string name;
  bool has_predicate;
  bool has_limit;
  bool is_aggregation;
  std::string sql;
  std::function<druid::DruidQuery()> native;
};

druid::DruidQuery BaseQuery() {
  druid::DruidQuery q;
  q.datasource = "events";
  return q;
}

std::vector<BenchQuery> BuildQueries() {
  const char* kCountries[] = {"us", "jp", "de", "br", "in"};
  std::vector<BenchQuery> out;

  // ---- 12 aggregation queries -------------------------------------------------
  for (int i = 0; i < 5; ++i) {
    std::string country = kCountries[i];
    out.push_back(
        {"agg_country_" + country, true, false, true,
         "SELECT device, sum(revenue) AS rev, count(*) AS n "
         "FROM druid.default.events WHERE country = '" + country +
             "' GROUP BY device",
         [country] {
           druid::DruidQuery q = BaseQuery();
           q.filters = {{"country", {country}}};
           q.dimensions = {"device"};
           q.aggregations = {{"rev", druid::AggKind::kSum, "revenue"},
                             {"n", druid::AggKind::kCount, ""}};
           return q;
         }});
  }
  for (int i = 0; i < 2; ++i) {
    int64_t hour = i * 2;
    out.push_back(
        {"agg_timeslice_" + std::to_string(i), true, false, true,
         "SELECT country, max(revenue) AS peak FROM druid.default.events "
         "WHERE __time >= " + std::to_string(hour * 3600000) +
             " AND __time < " + std::to_string((hour + 1) * 3600000) +
             " GROUP BY country",
         [hour] {
           druid::DruidQuery q = BaseQuery();
           q.interval = {hour * 3600000, (hour + 1) * 3600000};
           q.dimensions = {"country"};
           q.aggregations = {{"peak", druid::AggKind::kMax, "revenue"}};
           return q;
         }});
  }
  out.push_back({"agg_all_hours", false, false, true,
                 "SELECT country, max(revenue) AS peak FROM druid.default.events "
                 "GROUP BY country",
                 [] {
                   druid::DruidQuery q = BaseQuery();
                   q.dimensions = {"country"};
                   q.aggregations = {{"peak", druid::AggKind::kMax, "revenue"}};
                   return q;
                 }});
  out.push_back({"agg_global", false, false, true,
                 "SELECT sum(revenue) AS rev, count(*) AS n FROM druid.default.events",
                 [] {
                   druid::DruidQuery q = BaseQuery();
                   q.aggregations = {{"rev", druid::AggKind::kSum, "revenue"},
                                     {"n", druid::AggKind::kCount, ""}};
                   return q;
                 }});
  out.push_back({"agg_two_dims", false, false, true,
                 "SELECT country, device, sum(revenue) AS rev "
                 "FROM druid.default.events GROUP BY country, device",
                 [] {
                   druid::DruidQuery q = BaseQuery();
                   q.dimensions = {"country", "device"};
                   q.aggregations = {{"rev", druid::AggKind::kSum, "revenue"}};
                   return q;
                 }});
  out.push_back({"agg_in_filter", true, false, true,
                 "SELECT device, min(revenue) AS lo FROM druid.default.events "
                 "WHERE country IN ('us', 'jp') GROUP BY device",
                 [] {
                   druid::DruidQuery q = BaseQuery();
                   q.filters = {{"country", {"us", "jp"}}};
                   q.dimensions = {"device"};
                   q.aggregations = {{"lo", druid::AggKind::kMin, "revenue"}};
                   return q;
                 }});
  out.push_back({"agg_limit", true, true, true,
                 "SELECT country, count(*) AS n FROM druid.default.events "
                 "WHERE device = 'ios' GROUP BY country LIMIT 3",
                 [] {
                   druid::DruidQuery q = BaseQuery();
                   q.filters = {{"device", {"ios"}}};
                   q.dimensions = {"country"};
                   q.aggregations = {{"n", druid::AggKind::kCount, ""}};
                   q.limit = 3;
                   return q;
                 }});

  // ---- 8 scan queries (predicates and/or limits) --------------------------------
  for (int i = 0; i < 2; ++i) {
    std::string country = kCountries[i];
    out.push_back(
        {"scan_" + country, true, true, false,
         "SELECT __time, device, revenue FROM druid.default.events "
         "WHERE country = '" + country + "' LIMIT 500",
         [country] {
           druid::DruidQuery q = BaseQuery();
           q.filters = {{"country", {country}}};
           q.scan_columns = {"__time", "device", "revenue"};
           q.limit = 500;
           return q;
         }});
  }
  // Unlimited scans target the small "recent events" datasource, as
  // production dashboards do.
  for (int i = 0; i < 2; ++i) {
    std::string column = i == 0 ? "revenue" : "device";
    out.push_back(
        {"scan_recent_" + std::to_string(i), false, false, false,
         "SELECT " + column + " FROM druid.default.events_recent",
         [column] {
           druid::DruidQuery q = BaseQuery();
           q.datasource = "events_recent";
           q.scan_columns = {column};
           return q;
         }});
  }
  out.push_back({"scan_device_and", true, false, false,
                 "SELECT __time, revenue FROM druid.default.events "
                 "WHERE device = 'android' AND country = 'in'",
                 [] {
                   druid::DruidQuery q = BaseQuery();
                   q.filters = {{"device", {"android"}}, {"country", {"in"}}};
                   q.scan_columns = {"__time", "revenue"};
                   return q;
                 }});
  out.push_back({"scan_time_range", true, false, false,
                 "SELECT country, revenue FROM druid.default.events "
                 "WHERE __time >= 3600000 AND __time < 7200000",
                 [] {
                   druid::DruidQuery q = BaseQuery();
                   q.interval = {3600000, 7200000};
                   q.scan_columns = {"country", "revenue"};
                   return q;
                 }});
  out.push_back({"scan_limit_only", false, true, false,
                 "SELECT country, device FROM druid.default.events LIMIT 1000",
                 [] {
                   druid::DruidQuery q = BaseQuery();
                   q.scan_columns = {"country", "device"};
                   q.limit = 1000;
                   return q;
                 }});
  out.push_back({"scan_in_limit", true, true, false,
                 "SELECT device, revenue FROM druid.default.events "
                 "WHERE country IN ('de', 'br') LIMIT 800",
                 [] {
                   druid::DruidQuery q = BaseQuery();
                   q.filters = {{"country", {"de", "br"}}};
                   q.scan_columns = {"device", "revenue"};
                   q.limit = 800;
                   return q;
                 }});
  return out;
}

}  // namespace
}  // namespace presto

int main() {
  using namespace presto;
  std::printf("=== Druid vs Presto-Druid connector (paper Figure 16) ===\n");

  druid::DruidStore store;
  druid::DatasourceSchema schema;
  schema.dimensions = {"country", "device", "campaign"};
  schema.metrics = {"revenue"};
  schema.granularity_millis = 60000;  // per-minute rollup keeps rows plentiful
  if (!store.CreateDatasource("events", schema).ok()) return 1;
  if (!store.CreateDatasource("events_recent", schema).ok()) return 1;

  {
    Random rng(17);
    const char* countries[] = {"us", "jp", "de", "br", "in"};
    const char* devices[] = {"ios", "android", "web"};
    std::vector<druid::DruidRow> events;
    events.reserve(kNumEvents);
    for (int i = 0; i < kNumEvents; ++i) {
      events.push_back(
          {static_cast<int64_t>(rng.NextBelow(6 * 3600000)),  // 6 hours
           {countries[rng.NextBelow(5)], devices[rng.NextBelow(3)],
            "camp-" + std::to_string(rng.NextBelow(400))},
           {rng.NextDouble() * 20.0}});
    }
    if (!store.Ingest("events", events).ok()) return 1;
    std::vector<druid::DruidRow> recent(events.begin(), events.begin() + 50000);
    if (!store.Ingest("events_recent", recent).ok()) return 1;
  }
  std::printf("%d events ingested, %lld rows after rollup\n\n", kNumEvents,
              static_cast<long long>(store.metrics().Get("druid.ingest.rows_after_rollup")));

  PrestoCluster cluster("druidbench", 1, 1);
  (void)cluster.catalogs().RegisterCatalog(
      "druid", std::make_shared<DruidConnector>(&store));
  Session session;

  auto queries = BuildQueries();
  int with_predicates = 0, with_limits = 0, aggregations = 0;
  for (const auto& q : queries) {
    with_predicates += q.has_predicate;
    with_limits += q.has_limit;
    aggregations += q.is_aggregation;
  }
  std::printf("%zu queries: %d with predicates, %d with limits, %d aggregations "
              "(paper: 20 / 14 / 5 / 12)\n\n",
              queries.size(), with_predicates, with_limits, aggregations);

  std::printf("%-22s %12s %14s %10s\n", "query", "druid ms", "connector ms",
              "overhead");
  double total_native = 0, total_connector = 0;
  double agg_native = 0, agg_connector = 0;
  int within_second = 0;
  constexpr int kReps = 5;
  for (const auto& query : queries) {
    // Native path.
    double native_ms = 1e18;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch watch;
      auto result = store.Execute(query.native());
      if (!result.ok()) {
        std::fprintf(stderr, "native failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      native_ms = std::min(native_ms, watch.ElapsedMillis());
    }
    // Connector path.
    double connector_ms = 1e18;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch watch;
      auto result = cluster.Execute(query.sql, session);
      if (!result.ok()) {
        std::fprintf(stderr, "connector failed: %s\n%s\n", query.sql.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      connector_ms = std::min(connector_ms, watch.ElapsedMillis());
    }
    double overhead = native_ms > 0 ? (connector_ms / native_ms - 1) * 100 : 0;
    total_native += native_ms;
    total_connector += connector_ms;
    if (query.is_aggregation) {
      agg_native += native_ms;
      agg_connector += connector_ms;
    }
    if (connector_ms < 1000) ++within_second;
    std::printf("%-22s %12.2f %14.2f %+9.0f%%\n", query.name.c_str(), native_ms,
                connector_ms, overhead);
  }
  std::printf("\nTotals: druid %.0f ms, connector %.0f ms -> overall overhead "
              "%+.1f%% (paper: <15%%)\n",
              total_native, total_connector,
              (total_connector / total_native - 1) * 100);
  std::printf("Aggregation-pushdown queries only: druid %.0f ms, connector "
              "%.0f ms -> overhead %+.1f%%\n",
              agg_native, agg_connector,
              (agg_connector / agg_native - 1) * 100);
  std::printf("%d/%zu connector queries complete within 1 second "
              "(paper: most within 1s)\n",
              within_second, queries.size());
  return 0;
}
