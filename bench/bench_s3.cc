// Reproduces Section IX: PrestoS3FileSystem optimizations on the simulated
// S3 object store — (1) lazy seek, (2) exponential backoff under transient
// 503s, (3) S3 Select projection pushdown, (4) multipart upload — plus
// reading a hive table straight off S3. All request latencies run in
// virtual time (SimulatedClock), so reported times are model times.

#include <cstdio>

#include "presto/cluster/cluster.h"
#include "presto/connectors/hive/hive_connector.h"
#include "presto/fs/presto_s3_file_system.h"
#include "presto/tpch/workloads.h"

namespace presto {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

}  // namespace
}  // namespace presto

int main() {
  using namespace presto;
  std::printf("=== PrestoS3FileSystem optimizations (paper Section IX) ===\n");
  std::printf("S3 model: 15 ms first byte + 10 ns/byte per request; "
              "virtual time.\n\n");

  // ---- 1. Lazy seek -----------------------------------------------------------
  {
    SimulatedClock clock;
    S3ObjectStore s3(&clock);
    std::vector<uint8_t> object(8 << 20);
    for (size_t i = 0; i < object.size(); ++i) {
      object[i] = static_cast<uint8_t>(i * 131);
    }
    if (!s3.PutObject("bucket/file.lake", object).ok()) return 1;

    auto footer_style_reads = [&](bool lazy) -> std::pair<double, int64_t> {
      PrestoS3Options options;
      options.lazy_seek = lazy;
      PrestoS3FileSystem fs(&s3, &clock, options);
      auto stream = fs.OpenStream("bucket/file.lake");
      if (!stream.ok()) return {-1, -1};
      int64_t start = clock.NowNanos();
      uint8_t buf[256];
      // A columnar reader's access pattern: seek storms over footer and
      // column chunks, interleaved with short reads.
      Random rng(9);
      for (int i = 0; i < 200; ++i) {
        // A couple of speculative seeks before each actual read.
        (void)(*stream)->Seek(rng.NextBelow(object.size() - 4096));
        (void)(*stream)->Seek(rng.NextBelow(object.size() - 4096));
        uint64_t pos = rng.NextBelow(object.size() - 4096);
        (void)(*stream)->Seek(pos);
        (void)(*stream)->Read(buf, sizeof(buf));
      }
      return {(clock.NowNanos() - start) / 1e6,
              fs.metrics().Get("s3fs.stream.reopens")};
    };
    auto [eager_ms, eager_reopens] = footer_style_reads(false);
    auto [lazy_ms, lazy_reopens] = footer_style_reads(true);
    std::printf("1. Lazy seek (200 random reads, 2 speculative seeks each):\n");
    std::printf("   eager seek: %8.1f ms, %lld stream reopens\n", eager_ms,
                static_cast<long long>(eager_reopens));
    std::printf("   lazy seek : %8.1f ms, %lld stream reopens  (%.1fx faster)\n\n",
                lazy_ms, static_cast<long long>(lazy_reopens), eager_ms / lazy_ms);
  }

  // ---- 2. Exponential backoff ---------------------------------------------------
  {
    SimulatedClock clock;
    S3Config config;
    config.transient_failure_rate = 0.3;
    S3ObjectStore s3(&clock, config);
    PrestoS3FileSystem fs(&s3, &clock);
    int failures = 0;
    for (int i = 0; i < 500; ++i) {
      if (!fs.WriteFile("k" + std::to_string(i), Bytes("payload")).ok()) {
        ++failures;
      }
    }
    std::printf("2. Exponential backoff under 30%% transient 503s:\n");
    std::printf("   500 writes -> %d failures surfaced; %lld retries, "
                "%lld 503s absorbed, %.1f ms total backoff\n\n",
                failures, static_cast<long long>(fs.metrics().Get("s3fs.request.retries")),
                static_cast<long long>(s3.metrics().Get("s3.request.throttled")),
                fs.metrics().Get("s3fs.backoff.nanos") / 1e6);
  }

  // ---- 3. S3 Select projection pushdown -------------------------------------------
  {
    SimulatedClock clock;
    S3ObjectStore s3(&clock);
    // A wide CSV object: 16 columns, we need 2 of them.
    std::string csv;
    Random rng(13);
    for (int r = 0; r < 20000; ++r) {
      for (int c = 0; c < 16; ++c) {
        csv += (c ? "," : "") + rng.NextString(8);
      }
      csv += '\n';
    }
    if (!s3.PutObject("wide.csv", Bytes(csv)).ok()) return 1;

    int64_t t0 = clock.NowNanos();
    auto full = s3.GetObject("wide.csv");
    if (!full.ok()) return 1;
    double full_ms = (clock.NowNanos() - t0) / 1e6;
    int64_t full_bytes = static_cast<int64_t>((*full)->size());

    t0 = clock.NowNanos();
    auto selected = s3.SelectCsv("wide.csv", {0, 7}, std::nullopt);
    if (!selected.ok()) return 1;
    double select_ms = (clock.NowNanos() - t0) / 1e6;
    std::printf("3. S3 Select projection pushdown (16-column CSV, 2 needed):\n");
    std::printf("   full GET : %8.1f ms, %lld bytes over the wire\n", full_ms,
                static_cast<long long>(full_bytes));
    std::printf("   S3 Select: %8.1f ms, %lld bytes over the wire "
                "(%.1fx less transfer)\n\n",
                select_ms, static_cast<long long>(selected->size()),
                static_cast<double>(full_bytes) / selected->size());
  }

  // ---- 4. Multipart upload ---------------------------------------------------------
  {
    SimulatedClock clock;
    S3ObjectStore s3(&clock);
    std::vector<uint8_t> big(32 << 20);
    for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i);

    PrestoS3Options single;
    single.multipart_threshold = 1 << 30;  // force single PUT
    PrestoS3FileSystem single_fs(&s3, &clock, single);
    int64_t t0 = clock.NowNanos();
    if (!single_fs.WriteFile("big-single", big).ok()) return 1;
    double single_ms = (clock.NowNanos() - t0) / 1e6;

    PrestoS3Options multi;
    multi.multipart_threshold = 4 << 20;
    multi.part_size = 4 << 20;
    multi.upload_parallelism = 8;
    PrestoS3FileSystem multi_fs(&s3, &clock, multi);
    t0 = clock.NowNanos();
    if (!multi_fs.WriteFile("big-multi", big).ok()) return 1;
    double multi_ms = (clock.NowNanos() - t0) / 1e6;
    std::printf("4. Multipart upload (32 MiB object, 4 MiB parts, 8-way):\n");
    std::printf("   single PUT: %8.1f ms\n", single_ms);
    std::printf("   multipart : %8.1f ms  (%.1fx upload throughput)\n\n",
                multi_ms, single_ms / multi_ms);
  }

  // ---- 5. End to end: hive table on S3 ------------------------------------------------
  {
    SimulatedClock clock;
    S3ObjectStore s3(&clock);
    PrestoS3FileSystem fs(&s3, &clock);
    auto hive = std::make_shared<HiveConnector>(&fs, "bucket/warehouse");
    if (!hive->CreateTable("cloud", "trips", workloads::TripsType()).ok()) return 1;
    workloads::TripsOptions options;
    options.num_rows = 30000;
    options.city_cluster_run = 500;
    lakefile::WriterOptions writer_options;
    writer_options.row_group_rows = 5000;
    if (!hive->WriteDataFile("cloud", "trips", "",
                             {workloads::GenerateTrips(options)}, writer_options)
             .ok()) {
      return 1;
    }
    PrestoCluster cluster("s3bench", 1, 1);
    (void)cluster.catalogs().RegisterCatalog("hive", hive);
    Session session;
    int64_t t0 = clock.NowNanos();
    int64_t requests0 = s3.metrics().Get("s3.request.calls");
    auto result = cluster.Execute(
        "SELECT base.city_id, count(*) FROM hive.cloud.trips "
        "WHERE base.city_id < 10 GROUP BY base.city_id", session);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("5. SQL over a lakefile table stored in S3 "
                "(%lld rows matched, %lld groups):\n",
                static_cast<long long>(30000), static_cast<long long>(result->total_rows));
    std::printf("   %lld S3 requests, %.1f MiB read, %.1f ms virtual S3 time\n",
                static_cast<long long>(s3.metrics().Get("s3.request.calls") - requests0),
                s3.metrics().Get("s3.object.bytes_read") / 1048576.0,
                (clock.NowNanos() - t0) / 1e6);
  }
  return 0;
}
