// Multi-tenant workload driver: closed-loop concurrent sessions in three
// tenant classes (interactive point lookups, batch group-bys, adhoc medium
// aggregations) driven against one embedded cluster, three phases:
//
//   baseline  interactive sessions alone (groups enabled, no competing load)
//   wfq       the full mix under weighted-fair resource groups
//   fifo      the same mix with groups disabled (the single-FIFO admission
//             this PR replaces) — the degradation control
//
// Emits per-group p50/p95/p99 latency, QPS, shed/queued/killed/degraded
// counts to BENCH_workload.json and enforces the workload-isolation
// acceptance floors: under batch saturation, weighted-fair keeps interactive
// p95 within 2x of its unloaded baseline while FIFO degrades it >= 5x, with
// zero interactive sheds, and per-group accounting must reconcile exactly.
//
// Usage: bench_workload [out.json] [--quick]
//   --quick: tiny session/query counts for the sanitizer stage; ratio floors
//   are skipped (sanitizer scheduling distorts latency), accounting
//   reconciliation still enforced.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "presto/cluster/cluster.h"
#include "presto/cluster/resource_groups.h"
#include "presto/common/random.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/vector/vector.h"

namespace presto {
namespace {

double NowMillis() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1000.0;
}

Status FillFacts(MemoryConnector* memory, const std::string& table,
                 size_t num_rows, int64_t num_keys, uint64_t seed) {
  Random rng(seed);
  constexpr size_t kPageRows = 65536;
  for (size_t done = 0; done < num_rows;) {
    size_t n = std::min(kPageRows, num_rows - done);
    std::vector<int64_t> k(n), v(n);
    for (size_t i = 0; i < n; ++i) {
      k[i] = static_cast<int64_t>(rng.NextBelow(num_keys));
      v[i] = static_cast<int64_t>(rng.NextBelow(10000));
    }
    RETURN_IF_ERROR(memory->AppendPage(
        "raw", table,
        Page({MakeBigintVector(std::move(k)), MakeBigintVector(std::move(v))},
             n)));
    done += n;
  }
  return Status::OK();
}

struct SessionSpec {
  std::string group;
  std::string sql;
  int sessions = 0;
  // Closed-loop iterations for pacing sessions (interactive); 0 = run until
  // the stop flag (background load).
  int queries = 0;
};

struct GroupStats {
  int sessions = 0;
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t failed = 0;  // non-shed failures (killed, timeout, ...)
  std::vector<double> latencies_millis;  // successful queries only

  double Percentile(double q) const {
    if (latencies_millis.empty()) return 0;
    std::vector<double> sorted = latencies_millis;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
  }
};

struct PhaseResult {
  std::string name;
  bool groups_enabled = false;
  double wall_millis = 0;
  std::map<std::string, GroupStats> groups;
  std::map<std::string, int64_t> metrics;  // coordinator counter snapshot
};

// Runs one phase on a fresh cluster: pacing sessions run a fixed query
// count; background sessions hammer until the pacers finish. Returns false
// if accounting failed to reconcile.
PhaseResult RunPhase(const std::string& name, CoordinatorOptions options,
                     const std::shared_ptr<MemoryConnector>& data,
                     const std::vector<SessionSpec>& specs, bool* reconciled) {
  PhaseResult phase;
  phase.name = name;
  phase.groups_enabled = options.resource_groups.enabled;

  PrestoCluster cluster("workload-" + name, 2, 2, options);
  if (!cluster.catalogs().RegisterCatalog("mem", data).ok()) {
    std::fprintf(stderr, "catalog registration failed\n");
    *reconciled = false;
    return phase;
  }

  std::mutex mu;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Pre-create every group entry: threads only mutate existing entries
  // (under mu), so the map's structure is never racing with inserts.
  for (const SessionSpec& spec : specs) {
    phase.groups[spec.group].sessions += spec.sessions;
  }
  const double start = NowMillis();
  for (const SessionSpec& spec : specs) {
    for (int s = 0; s < spec.sessions; ++s) {
      threads.emplace_back([&, spec, s] {
        Session session;
        session.properties["resource_group"] = spec.group;
        session.properties["query_timeout_millis"] = "120000";
        Random backoff(static_cast<uint64_t>(s) * 7919 + 13);
        int64_t ok = 0, shed = 0, failed = 0;
        std::vector<double> latencies;
        for (int q = 0; spec.queries > 0 ? q < spec.queries : !stop.load();
             ++q) {
          const double t0 = NowMillis();
          auto result = cluster.Execute(spec.sql, session);
          const double elapsed = NowMillis() - t0;
          if (result.ok()) {
            ++ok;
            latencies.push_back(elapsed);
          } else if (result.status().code() == StatusCode::kRejected) {
            ++shed;
            // Overload backoff, jittered — what a well-behaved client does
            // on shed. Long enough that shed tenants stop burning
            // coordinator CPU on parse/plan for doomed retries.
            std::this_thread::sleep_for(std::chrono::milliseconds(
                backoff.NextInRange(150, 500)));
          } else {
            ++failed;
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        GroupStats& stats = phase.groups[spec.group];
        stats.ok += ok;
        stats.shed += shed;
        stats.failed += failed;
        stats.latencies_millis.insert(stats.latencies_millis.end(),
                                      latencies.begin(), latencies.end());
      });
    }
  }
  // Pacing sessions are the fixed-count ones; when they all finish, stop the
  // background load. Join in two waves: fixed-count threads first.
  size_t pacer_count = 0;
  for (const SessionSpec& spec : specs) {
    if (spec.queries > 0) pacer_count += static_cast<size_t>(spec.sessions);
  }
  // Threads were created in spec order; pacers are whichever specs have
  // queries > 0. Join those, flip stop, join the rest.
  {
    size_t index = 0;
    std::vector<size_t> background;
    for (const SessionSpec& spec : specs) {
      for (int s = 0; s < spec.sessions; ++s, ++index) {
        if (spec.queries > 0) {
          threads[index].join();
        } else {
          background.push_back(index);
        }
      }
    }
    stop.store(true);
    for (size_t i : background) threads[i].join();
  }
  phase.wall_millis = NowMillis() - start;

  // Accounting reconciliation: every slot released, every queue drained,
  // no leaked worker memory, admitted == completed per group.
  ResourceGroupManager& manager = cluster.coordinator().resource_groups();
  const MetricsRegistry& metrics = cluster.coordinator().metrics();
  bool clean = manager.total_running() == 0 &&
               cluster.coordinator().worker_pool()->reserved_bytes() == 0;
  for (const std::string& group : manager.GroupNames()) {
    clean = clean && manager.running(group) == 0 && manager.queued(group) == 0;
    clean = clean && metrics.Get("group." + group + ".admitted") ==
                         metrics.Get("group." + group + ".completed");
  }
  if (!clean) {
    std::fprintf(stderr, "[%s] group accounting did not reconcile\n",
                 name.c_str());
    *reconciled = false;
  }
  phase.metrics = metrics.Snapshot();
  return phase;
}

int64_t MetricOr0(const PhaseResult& phase, const std::string& name) {
  auto it = phase.metrics.find(name);
  return it == phase.metrics.end() ? 0 : it->second;
}

}  // namespace
}  // namespace presto

int main(int argc, char** argv) {
  using namespace presto;
  std::string out_path = "BENCH_workload.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }

  // Shared read-only data: a small interactive table and a larger batch one.
  const size_t small_rows = quick ? 20'000 : 100'000;
  const size_t big_rows = quick ? 60'000 : 250'000;
  auto data = std::make_shared<MemoryConnector>();
  TypePtr facts = Type::Row({"k", "v"}, {Type::Bigint(), Type::Bigint()});
  if (!data->CreateTable("raw", "small", facts).ok() ||
      !data->CreateTable("raw", "big", facts).ok() ||
      !FillFacts(data.get(), "small", small_rows, 64, 1).ok() ||
      !FillFacts(data.get(), "big", big_rows, 4096, 2).ok()) {
    std::fprintf(stderr, "data setup failed\n");
    return 1;
  }

  const std::string interactive_sql =
      "SELECT sum(v), count(*) FROM mem.raw.small WHERE k = 7";
  const std::string batch_sql =
      "SELECT k, count(*), sum(v), min(v), max(v) FROM mem.raw.big GROUP BY k";
  const std::string adhoc_sql =
      "SELECT k, count(*), sum(v) FROM mem.raw.small GROUP BY k";

  // The tenant tree under test: interactive gets weight and quota, batch is
  // narrow with a shallow queue (so saturation sheds), adhoc in between.
  ResourceGroupsOptions tree;
  tree.enabled = true;
  tree.total_concurrency = 12;
  tree.default_group = "adhoc";
  {
    ResourceGroupConfig interactive;
    interactive.name = "interactive";
    interactive.weight = 8;
    interactive.hard_concurrency = 8;
    interactive.max_queued = 64;
    ResourceGroupConfig batch;
    batch.name = "batch";
    batch.weight = 2;
    batch.hard_concurrency = 1;
    batch.max_queued = 4;
    batch.degradable = true;
    ResourceGroupConfig adhoc;
    adhoc.name = "adhoc";
    adhoc.weight = 1;
    adhoc.hard_concurrency = 1;
    adhoc.max_queued = 8;
    adhoc.degradable = true;
    tree.groups = {interactive, batch, adhoc};
  }

  CoordinatorOptions grouped;
  grouped.resource_groups = tree;
  grouped.journal_capacity = 64;  // the driver floods events; keep it small
  CoordinatorOptions fifo;  // groups disabled: the pre-PR single FIFO
  fifo.journal_capacity = 64;

  const int interactive_sessions = quick ? 2 : 8;
  const int interactive_queries = quick ? 6 : 60;
  const int fifo_interactive_queries = quick ? 4 : 15;
  const int batch_sessions = quick ? 4 : 24;
  const int adhoc_sessions = quick ? 2 : 8;

  SessionSpec interactive_spec{"interactive", interactive_sql,
                               interactive_sessions, interactive_queries};
  SessionSpec batch_spec{"batch", batch_sql, batch_sessions, 0};
  SessionSpec adhoc_spec{"adhoc", adhoc_sql, adhoc_sessions, 0};

  bool reconciled = true;
  std::printf("== phase baseline: %d interactive sessions alone ==\n",
              interactive_sessions);
  PhaseResult baseline =
      RunPhase("baseline", grouped, data, {interactive_spec}, &reconciled);
  std::printf("   p95 %.1f ms over %zu queries (%.0f ms wall)\n",
              baseline.groups["interactive"].Percentile(0.95),
              baseline.groups["interactive"].latencies_millis.size(),
              baseline.wall_millis);

  std::printf("== phase wfq: + %d batch / %d adhoc sessions, groups on ==\n",
              batch_sessions, adhoc_sessions);
  PhaseResult wfq = RunPhase("wfq", grouped, data,
                             {interactive_spec, batch_spec, adhoc_spec},
                             &reconciled);
  std::printf("   interactive p95 %.1f ms, batch ok %lld shed %lld\n",
              wfq.groups["interactive"].Percentile(0.95),
              static_cast<long long>(wfq.groups["batch"].ok),
              static_cast<long long>(wfq.groups["batch"].shed));

  std::printf("== phase fifo: same mix, groups disabled ==\n");
  SessionSpec fifo_interactive = interactive_spec;
  fifo_interactive.queries = fifo_interactive_queries;
  PhaseResult fifo_phase = RunPhase("fifo", fifo, data,
                                    {fifo_interactive, batch_spec, adhoc_spec},
                                    &reconciled);
  std::printf("   interactive p95 %.1f ms\n",
              fifo_phase.groups["interactive"].Percentile(0.95));

  const double baseline_p95 = baseline.groups["interactive"].Percentile(0.95);
  const double wfq_p95 = wfq.groups["interactive"].Percentile(0.95);
  const double fifo_p95 = fifo_phase.groups["interactive"].Percentile(0.95);
  const double wfq_ratio = baseline_p95 > 0 ? wfq_p95 / baseline_p95 : 0;
  const double fifo_ratio = baseline_p95 > 0 ? fifo_p95 / baseline_p95 : 0;
  std::printf(
      "== isolation: baseline %.1f ms, wfq %.1f ms (%.2fx), fifo %.1f ms "
      "(%.2fx) ==\n",
      baseline_p95, wfq_p95, wfq_ratio, fifo_p95, fifo_ratio);

  std::vector<PhaseResult*> phases = {&baseline, &wfq, &fifo_phase};
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"multi_tenant_workload\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"phases\": [\n");
  for (size_t p = 0; p < phases.size(); ++p) {
    const PhaseResult& phase = *phases[p];
    std::fprintf(f,
                 "    {\"phase\": \"%s\", \"groups_enabled\": %s, "
                 "\"wall_millis\": %.1f, \"groups\": [\n",
                 phase.name.c_str(), phase.groups_enabled ? "true" : "false",
                 phase.wall_millis);
    size_t g = 0;
    for (const auto& [group, stats] : phase.groups) {
      const double qps = phase.wall_millis > 0
                             ? static_cast<double>(stats.ok) * 1000.0 /
                                   phase.wall_millis
                             : 0;
      std::fprintf(
          f,
          "      {\"group\": \"%s\", \"sessions\": %d, \"ok\": %lld, "
          "\"shed\": %lld, \"failed\": %lld,\n"
          "       \"qps\": %.1f, \"p50_millis\": %.2f, \"p95_millis\": %.2f, "
          "\"p99_millis\": %.2f,\n"
          "       \"queued\": %lld, \"killed\": %lld, \"degraded\": %lld}%s\n",
          group.c_str(), stats.sessions, static_cast<long long>(stats.ok),
          static_cast<long long>(stats.shed),
          static_cast<long long>(stats.failed), qps, stats.Percentile(0.5),
          stats.Percentile(0.95), stats.Percentile(0.99),
          static_cast<long long>(MetricOr0(phase, "group." + group + ".queued")),
          static_cast<long long>(MetricOr0(phase, "group." + group + ".killed")),
          static_cast<long long>(
              MetricOr0(phase, "group." + group + ".degraded")),
          ++g < phase.groups.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", p + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"isolation\": {\"baseline_p95_millis\": %.2f, "
               "\"wfq_p95_millis\": %.2f, \"fifo_p95_millis\": %.2f,\n"
               "    \"wfq_over_baseline\": %.2f, \"fifo_over_baseline\": %.2f, "
               "\"interactive_sheds_wfq\": %lld, \"batch_sheds_wfq\": %lld}\n}\n",
               baseline_p95, wfq_p95, fifo_p95, wfq_ratio, fifo_ratio,
               static_cast<long long>(wfq.groups["interactive"].shed),
               static_cast<long long>(wfq.groups["batch"].shed));
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // Acceptance floors.
  int rc = 0;
  if (!reconciled) {
    std::fprintf(stderr, "FAIL: group accounting did not reconcile\n");
    rc = 1;
  }
  if (wfq.groups["interactive"].shed != 0) {
    std::fprintf(stderr, "FAIL: interactive was load-shed under wfq\n");
    rc = 1;
  }
  if (!quick) {
    if (wfq.groups["batch"].shed == 0) {
      std::fprintf(stderr,
                   "FAIL: batch saturation never shed (overload protection "
                   "untested)\n");
      rc = 1;
    }
    if (wfq_ratio > 2.0) {
      std::fprintf(stderr,
                   "FAIL: weighted-fair interactive p95 %.2fx baseline "
                   "(floor: <= 2x)\n",
                   wfq_ratio);
      rc = 1;
    }
    if (fifo_ratio < 5.0) {
      std::fprintf(stderr,
                   "FAIL: FIFO control degraded interactive only %.2fx "
                   "(expected >= 5x)\n",
                   fifo_ratio);
      rc = 1;
    }
  }
  return rc;
}
