// Reproduces Section VII: file-list cache and file-handle/footer cache.
// Paper numbers: with the file list cache enabled for the most popular
// tables, "overall listFile calls reduced to less than 40%"; with the file
// handle and footer cache, "almost 90% of getFileInfo calls could be
// reduced". Also shows the query-latency effect of a degraded NameNode
// (Section XII.D) with and without the caches.

#include <cstdio>

#include "presto/cluster/cluster.h"
#include "presto/connectors/hive/hive_connector.h"
#include "presto/common/random.h"
#include "presto/fs/simulated_hdfs.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

constexpr int kNumTables = 8;     // 5 popular + 3 unpopular
constexpr int kPopularTables = 5; // "file list cache enabled for 5 of our most
                                  // popular tables"
constexpr int kPartitionsPerTable = 8;
constexpr int kQueriesPerPopularTable = 100;
constexpr int kQueriesPerColdTable = 4;

}  // namespace
}  // namespace presto

int main() {
  using namespace presto;
  std::printf("=== File list cache & footer cache (paper Section VII) ===\n\n");

  SimulatedClock clock;
  NameNodeLatency latency;
  latency.list_files_nanos = 2'000'000;      // 2 ms per listFiles RPC
  latency.get_file_info_nanos = 1'000'000;   // 1 ms per getFileInfo RPC
  SimulatedHdfs hdfs(&clock, latency);

  auto setup_tables = [&](HiveConnector* hive) {
    TypePtr type = Type::Row({"datestr", "id", "v"},
                             {Type::Varchar(), Type::Bigint(), Type::Double()});
    for (int t = 0; t < kNumTables; ++t) {
      std::string table = "table" + std::to_string(t);
      if (!hive->CreateTable("wh", table, type, "datestr").ok()) return false;
      Random rng(t);
      for (int p = 0; p < kPartitionsPerTable; ++p) {
        VectorBuilder date(Type::Varchar()), id(Type::Bigint()), v(Type::Double());
        for (int64_t r = 0; r < 50; ++r) {
          date.AppendString("d" + std::to_string(p));
          id.AppendBigint(r);
          v.AppendDouble(rng.NextDouble());
        }
        if (!hive->WriteDataFile("wh", table, "d" + std::to_string(p),
                                 {Page({date.Build(), id.Build(), v.Build()})})
                 .ok()) {
          return false;
        }
      }
      // One near-real-time open partition per table: never cached.
      (void)hive->SetPartitionSealed("wh", table, "d0", false);
    }
    return true;
  };

  auto run_traffic = [&](PrestoCluster* cluster, HiveConnector* hive) -> double {
    Session session;
    (void)hive;
    double virtual_start = static_cast<double>(clock.NowNanos());
    for (int t = 0; t < kNumTables; ++t) {
      int queries =
          t < kPopularTables ? kQueriesPerPopularTable : kQueriesPerColdTable;
      std::string table = "wh.table" + std::to_string(t);
      for (int q = 0; q < queries; ++q) {
        auto result = cluster->Execute(
            "SELECT sum(v) FROM hive." + table + " WHERE datestr = 'd" +
                std::to_string(q % kPartitionsPerTable) + "'",
            session);
        if (!result.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       result.status().ToString().c_str());
          return -1;
        }
      }
    }
    return (static_cast<double>(clock.NowNanos()) - virtual_start) / 1e6;
  };

  // ---- Baseline: caches disabled ----------------------------------------------
  hdfs.metrics().Reset();
  PrestoCluster baseline_cluster("cachebench-off", 1, 1);
  auto hive_off = std::make_shared<HiveConnector>(&hdfs, "wh-off");
  HiveConnectorOptions off;
  off.enable_file_list_cache = false;
  off.enable_footer_cache = false;
  hive_off->set_options(off);
  if (!setup_tables(hive_off.get())) return 1;
  (void)baseline_cluster.catalogs().RegisterCatalog("hive", hive_off);
  int64_t setup_lists = hdfs.metrics().Get("fs.dir.list");
  int64_t setup_opens = hdfs.metrics().Get("fs.file.open_read");
  double off_virtual_ms = run_traffic(&baseline_cluster, hive_off.get());
  int64_t off_lists = hdfs.metrics().Get("fs.dir.list") - setup_lists;
  int64_t off_opens = hdfs.metrics().Get("fs.file.open_read") - setup_opens;

  // ---- Caches enabled -----------------------------------------------------------
  hdfs.metrics().Reset();
  PrestoCluster cached_cluster("cachebench-on", 1, 1);
  auto hive_on = std::make_shared<HiveConnector>(&hdfs, "wh-on");
  if (!setup_tables(hive_on.get())) return 1;
  (void)cached_cluster.catalogs().RegisterCatalog("hive", hive_on);
  setup_lists = hdfs.metrics().Get("fs.dir.list");
  setup_opens = hdfs.metrics().Get("fs.file.open_read");
  double on_virtual_ms = run_traffic(&cached_cluster, hive_on.get());
  int64_t on_lists = hdfs.metrics().Get("fs.dir.list") - setup_lists;
  int64_t on_opens = hdfs.metrics().Get("fs.file.open_read") - setup_opens;

  std::printf("Traffic: %d tables (%d popular), %d partitions each "
              "(1 open partition per table), %d+%d queries/table\n\n",
              kNumTables, kPopularTables, kPartitionsPerTable,
              kQueriesPerPopularTable, kQueriesPerColdTable);

  std::printf("Section VII.A — coordinator file list cache (sealed partitions only):\n");
  std::printf("  NameNode listFiles calls: %lld -> %lld  (%.0f%% of baseline; "
              "paper: <40%%)\n",
              static_cast<long long>(off_lists), static_cast<long long>(on_lists),
              100.0 * on_lists / off_lists);

  std::printf("\nSection VII.B — worker file handle + footer cache:\n");
  std::printf("  file open / getFileInfo round trips: %lld -> %lld  "
              "(%.0f%% eliminated; paper: ~90%%)\n",
              static_cast<long long>(off_opens), static_cast<long long>(on_opens),
              100.0 * (off_opens - on_opens) / off_opens);
  std::printf("  footer cache hit rate: %lld hits / %lld misses\n",
              static_cast<long long>(hive_on->footer_cache().footer_metrics().Get("cache.footer.hits")),
              static_cast<long long>(
                  hive_on->footer_cache().footer_metrics().Get("cache.footer.misses")));

  std::printf("\nVirtual NameNode time charged to queries "
              "(listFiles 2ms, getFileInfo 1ms per RPC):\n");
  std::printf("  caches off: %.1f ms    caches on: %.1f ms    (%.1fx less "
              "NameNode pressure)\n",
              off_virtual_ms, on_virtual_ms, off_virtual_ms / on_virtual_ms);
  return 0;
}
