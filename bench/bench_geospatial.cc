// Reproduces Section VI.E: the Presto Geospatial plugin's QuadTree rewrite
// (Figure 13) vs brute-force st_contains evaluation. The paper reports the
// plugin is "more than 50X faster" than brute-force execution.
//
// Two levels are measured:
//   1. GeoIndex microbenchmark: QuadTree-filtered point lookup vs testing
//      every geofence (the algorithmic 50x).
//   2. Full engine: the trips-per-city SQL query from Section VI.C with the
//      build_geo_index/geo_contains rewrite on vs off.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "presto/cluster/cluster.h"
#include "presto/common/random.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/geo/geo_index.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

// Irregular polygon with `points` vertices around (cx, cy) — real geofences
// have "hundreds or thousands of points", which is what makes st_contains
// expensive.
std::string GeofenceWkt(Random* rng, double cx, double cy, double radius,
                        int points) {
  std::string wkt = "POLYGON ((";
  std::string first;
  for (int i = 0; i < points; ++i) {
    double angle = 2 * 3.14159265358979 * i / points;
    double r = radius * (0.7 + 0.3 * rng->NextDouble());
    double x = cx + r * std::cos(angle);
    double y = cy + r * std::sin(angle);
    std::string p = std::to_string(x) + " " + std::to_string(y);
    if (i == 0) first = p;
    wkt += p + ", ";
  }
  wkt += first + "))";
  return wkt;
}

}  // namespace
}  // namespace presto

int main() {
  using namespace presto;
  std::printf("=== QuadTree geospatial plugin vs brute force "
              "(paper Section VI, Figure 13 rewrite) ===\n\n");

  Random rng(23);
  constexpr int kNumCities = 300;
  constexpr int kVerticesPerFence = 300;
  constexpr int kNumTrips = 20000;

  // ---- Part 1: GeoIndex point lookups ---------------------------------------
  std::vector<std::pair<int64_t, std::string>> shapes;
  for (int64_t c = 0; c < kNumCities; ++c) {
    double cx = rng.NextDouble() * 1000.0;
    double cy = rng.NextDouble() * 1000.0;
    shapes.emplace_back(c, GeofenceWkt(&rng, cx, cy, 6.0, kVerticesPerFence));
  }
  auto index = geo::GeoIndex::Build(shapes);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::vector<geo::GeoPoint> probes(kNumTrips);
  for (auto& p : probes) {
    p = {rng.NextDouble() * 1000.0, rng.NextDouble() * 1000.0};
  }

  Stopwatch quad_watch;
  size_t quad_hits = 0;
  for (const auto& p : probes) quad_hits += index->FindContaining(p).size();
  double quad_ms = quad_watch.ElapsedMillis();
  int64_t quad_checks = index->contains_checks();

  Stopwatch brute_watch;
  size_t brute_hits = 0;
  for (const auto& p : probes) brute_hits += index->FindContainingBruteForce(p).size();
  double brute_ms = brute_watch.ElapsedMillis();
  int64_t brute_checks = index->contains_checks() - quad_checks;

  std::printf("Part 1: point-in-geofence lookups (%d geofences x %d vertices, "
              "%d trip points)\n", kNumCities, kVerticesPerFence, kNumTrips);
  std::printf("  brute force : %9.1f ms  (%lld st_contains calls)\n", brute_ms,
              static_cast<long long>(brute_checks));
  std::printf("  QuadTree    : %9.1f ms  (%lld st_contains calls)\n", quad_ms,
              static_cast<long long>(quad_checks));
  std::printf("  speedup     : %8.1fx  (paper: >50x)   [hits: %zu vs %zu]\n\n",
              brute_ms / quad_ms, quad_hits, brute_hits);
  if (quad_hits != brute_hits) {
    std::fprintf(stderr, "MISMATCH: results differ!\n");
    return 1;
  }

  // ---- Part 2: full SQL query with/without the Figure 13 rewrite ---------------
  PrestoCluster cluster("geobench", 1, 1);
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr cities_type = Type::Row({"city_id", "geo_shape"},
                                  {Type::Bigint(), Type::Varchar()});
  (void)memory->CreateTable("geo", "cities", cities_type);
  {
    VectorBuilder id(Type::Bigint()), shape(Type::Varchar());
    for (const auto& [city, wkt] : shapes) {
      id.AppendBigint(city);
      shape.AppendString(wkt);
    }
    (void)memory->AppendPage("geo", "cities", Page({id.Build(), shape.Build()}));
  }
  // A smaller trip table keeps the brute-force run tractable: it evaluates
  // |trips| x |cities| parsed st_contains calls inside the engine.
  constexpr int kSqlTrips = 500;
  TypePtr trips_type = Type::Row({"trip_id", "dest_lng", "dest_lat"},
                                 {Type::Bigint(), Type::Double(), Type::Double()});
  (void)memory->CreateTable("geo", "trips", trips_type);
  {
    VectorBuilder id(Type::Bigint()), lng(Type::Double()), lat(Type::Double());
    for (int64_t t = 0; t < kSqlTrips; ++t) {
      id.AppendBigint(t);
      lng.AppendDouble(rng.NextDouble() * 1000.0);
      lat.AppendDouble(rng.NextDouble() * 1000.0);
    }
    (void)memory->AppendPage("geo", "trips",
                             Page({id.Build(), lng.Build(), lat.Build()}));
  }
  (void)cluster.catalogs().RegisterCatalog("geomem", memory);

  const std::string kQuery =
      "SELECT c.city_id, count(*) FROM geomem.geo.trips t "
      "JOIN geomem.geo.cities c "
      "ON st_contains(c.geo_shape, st_point(t.dest_lng, t.dest_lat)) "
      "GROUP BY 1 ORDER BY 1";

  Session optimized;
  Stopwatch sql_fast;
  auto fast = cluster.Execute(kQuery, optimized);
  double fast_ms = sql_fast.ElapsedMillis();
  if (!fast.ok()) {
    std::fprintf(stderr, "optimized query failed: %s\n",
                 fast.status().ToString().c_str());
    return 1;
  }

  Session brute_session;
  brute_session.properties["geo_index_rewrite"] = "false";
  Stopwatch sql_slow;
  auto slow = cluster.Execute(kQuery, brute_session);
  double slow_ms = sql_slow.ElapsedMillis();
  if (!slow.ok()) {
    std::fprintf(stderr, "brute query failed: %s\n",
                 slow.status().ToString().c_str());
    return 1;
  }

  std::printf("Part 2: full SQL trips-per-city join (%d trips x %d geofences)\n",
              kSqlTrips, kNumCities);
  std::printf("  brute force st_contains join : %9.1f ms (%lld result rows)\n",
              slow_ms, static_cast<long long>(slow->total_rows));
  std::printf("  build_geo_index + geo_contains: %8.1f ms (%lld result rows)\n",
              fast_ms, static_cast<long long>(fast->total_rows));
  std::printf("  speedup                       : %8.1fx (paper: >50x)\n",
              slow_ms / fast_ms);
  if (fast->total_rows != slow->total_rows) {
    std::fprintf(stderr, "MISMATCH: result cardinality differs!\n");
    return 1;
  }
  return 0;
}
