// Reproduces Figure 17: "Parquet Readers for Presto" — 21 production-shaped
// queries over nested trip data, executed through the full engine with the
// original (row-materializing) reader vs the brand-new reader (nested column
// pruning, columnar reads, predicate pushdown, dictionary pushdown, lazy
// reads, vectorized decoding).
//
// Paper composition: 4 table scans (2 of them needle-in-a-haystack),
// 5 group-bys, 12 joins. Expected shape: 2-10x speedup, largest on the
// needle-in-a-haystack scans.

#include <cstdio>
#include <vector>

#include "presto/cluster/cluster.h"
#include "presto/connectors/hive/hive_connector.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/fs/simulated_hdfs.h"
#include "presto/tpch/workloads.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

constexpr size_t kRowsPerFile = 20000;
constexpr int kNumFiles = 6;
constexpr int64_t kNumCities = 200;

struct BenchQuery {
  const char* kind;
  std::string sql;
};

std::vector<BenchQuery> BuildQueries() {
  std::vector<BenchQuery> queries;
  // ---- 4 table scans, 2 needle-in-a-haystack -------------------------------
  queries.push_back({"scan", "SELECT base.driver_uuid, base.fare FROM hive.raw.trips "
                             "WHERE base.status = 'completed'"});
  queries.push_back({"scan", "SELECT base.driver_uuid, base.city_id FROM hive.raw.trips "
                             "WHERE base.city_id < 100"});
  // Needle 1: a single id (row-group stats skip everything but one group).
  queries.push_back({"needle", "SELECT base.driver_uuid FROM hive.raw.trips "
                               "WHERE id = 31337"});
  // Needle 2: one clustered city (stats skip most groups).
  queries.push_back({"needle", "SELECT base.driver_uuid, base.fare FROM hive.raw.trips "
                               "WHERE base.city_id = 12"});
  // ---- 5 group bys -------------------------------------------------------------
  queries.push_back({"groupBy", "SELECT base.city_id, count(*) FROM hive.raw.trips "
                                "GROUP BY base.city_id"});
  queries.push_back({"groupBy", "SELECT base.status, sum(base.fare) FROM hive.raw.trips "
                                "GROUP BY base.status"});
  queries.push_back({"groupBy", "SELECT base.city_id, avg(base.fare) FROM hive.raw.trips "
                                "WHERE base.status = 'completed' GROUP BY base.city_id"});
  queries.push_back({"groupBy", "SELECT base.status, approx_distinct(base.driver_uuid) "
                                "FROM hive.raw.trips GROUP BY base.status"});
  queries.push_back({"groupBy", "SELECT base.city_id, max(base.fare), min(base.fare) "
                                "FROM hive.raw.trips WHERE base.city_id < 50 "
                                "GROUP BY base.city_id"});
  // ---- 12 joins -----------------------------------------------------------------
  const char* join_filters[] = {
      "c.region = 'west'",  "c.region = 'east'",   "c.population > 500000",
      "c.population < 100000", "c.region = 'west' AND t.base.fare > 20.0",
      "c.region <> 'east'"};
  for (int i = 0; i < 6; ++i) {
    queries.push_back(
        {"join", std::string("SELECT c.region, count(*) FROM hive.raw.trips t "
                             "JOIN mem.dim.cities c ON t.base.city_id = c.city_id "
                             "WHERE ") +
                     join_filters[i] + " GROUP BY c.region"});
  }
  for (int i = 0; i < 6; ++i) {
    queries.push_back(
        {"join", std::string("SELECT c.region, sum(t.base.fare) FROM hive.raw.trips t "
                             "JOIN mem.dim.cities c ON t.base.city_id = c.city_id "
                             "WHERE t.base.city_id < ") +
                     std::to_string(40 + i * 25) + " GROUP BY c.region"});
  }
  return queries;
}

}  // namespace
}  // namespace presto

int main() {
  using namespace presto;
  std::printf("=== Old vs new Parquet(lakefile) reader, full engine "
              "(paper Figure 17) ===\n");
  std::printf("%d files x %zu rows of nested trip records; %d queries: "
              "4 scans (2 needle), 5 group-bys, 12 joins\n\n",
              kNumFiles, kRowsPerFile, 21);

  SimulatedClock clock;
  SimulatedHdfs hdfs(&clock);
  PrestoCluster cluster("bench", /*num_workers=*/1, /*slots_per_worker=*/1);

  auto hive = std::make_shared<HiveConnector>(&hdfs, "warehouse");
  TypePtr trips_type = workloads::TripsType();
  if (!hive->CreateTable("raw", "trips", trips_type).ok()) return 1;
  for (int f = 0; f < kNumFiles; ++f) {
    workloads::TripsOptions options;
    options.num_rows = kRowsPerFile;
    options.num_cities = kNumCities;
    options.city_cluster_run = 500;  // production-style city clustering
    options.first_id = f * static_cast<int64_t>(kRowsPerFile);
    options.seed = 100 + f;
    lakefile::WriterOptions writer_options;
    writer_options.row_group_rows = 4000;
    Status st = hive->WriteDataFile("raw", "trips", "",
                                    {workloads::GenerateTrips(options)},
                                    writer_options);
    if (!st.ok()) {
      std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Cities dimension in a memory catalog (joins probe it).
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr cities_type = Type::Row({"city_id", "region", "population"},
                                  {Type::Bigint(), Type::Varchar(), Type::Bigint()});
  (void)memory->CreateTable("dim", "cities", cities_type);
  {
    VectorBuilder id(Type::Bigint()), region(Type::Varchar()), pop(Type::Bigint());
    Random rng(5);
    const char* regions[] = {"west", "east", "south", "north"};
    for (int64_t c = 0; c < kNumCities; ++c) {
      id.AppendBigint(c);
      region.AppendString(regions[c % 4]);
      pop.AppendBigint(rng.NextInRange(10000, 9000000));
    }
    (void)memory->AppendPage("dim", "cities",
                             Page({id.Build(), region.Build(), pop.Build()}));
  }
  (void)cluster.catalogs().RegisterCatalog("hive", hive);
  (void)cluster.catalogs().RegisterCatalog("mem", memory);

  Session session;
  auto queries = BuildQueries();

  auto run_all = [&](bool legacy) {
    HiveConnectorOptions options;
    options.use_legacy_reader = legacy;
    options.enable_footer_cache = true;
    hive->set_options(options);
    std::vector<double> millis;
    for (const BenchQuery& query : queries) {
      Stopwatch watch;
      auto result = cluster.Execute(query.sql, session);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n%s\n", query.sql.c_str(),
                     result.status().ToString().c_str());
        millis.push_back(-1);
        continue;
      }
      millis.push_back(watch.ElapsedMillis());
    }
    return millis;
  };

  // Warm the footer caches so both modes measure decode, not metadata.
  (void)cluster.Execute("SELECT count(*) FROM hive.raw.trips", session);

  std::vector<double> old_ms = run_all(/*legacy=*/true);
  std::vector<double> new_ms = run_all(/*legacy=*/false);

  std::printf("%-4s %-8s %12s %12s %9s\n", "q", "kind", "old ms", "new ms",
              "speedup");
  double total_old = 0, total_new = 0, best = 0, worst = 1e9;
  for (size_t i = 0; i < queries.size(); ++i) {
    double speedup = new_ms[i] > 0 ? old_ms[i] / new_ms[i] : 0;
    best = std::max(best, speedup);
    worst = std::min(worst, speedup);
    total_old += old_ms[i];
    total_new += new_ms[i];
    std::printf("Q%-3zu %-8s %12.1f %12.1f %8.1fx\n", i + 1, queries[i].kind,
                old_ms[i], new_ms[i], speedup);
  }
  std::printf("\nTotal: old %.0f ms, new %.0f ms; speedups %.1fx .. %.1fx "
              "(paper: 2x-10x, best on needle-in-a-haystack)\n",
              total_old, total_new, worst, best);
  return 0;
}
