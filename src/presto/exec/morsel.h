#ifndef PRESTO_EXEC_MORSEL_H_
#define PRESTO_EXEC_MORSEL_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "presto/common/thread_pool.h"
#include "presto/connector/connector.h"
#include "presto/exec/exchange.h"
#include "presto/exec/operators.h"
#include "presto/vector/page.h"

namespace presto {

/// Thread-safe source of cache-sized row batches ("morsels") shared by the
/// replicated operator chains of one morsel-parallel task. Each chain pulls
/// its next morsel from the shared source whenever it finishes one, so work
/// distributes itself: a chain stuck on an expensive morsel simply claims
/// fewer, and a fast chain drains the tail (the scheduling half of
/// morsel-driven parallelism; the work-stealing pool supplies the threads).
class MorselSource {
 public:
  virtual ~MorselSource() = default;

  /// Next morsel, or nullopt when the source is exhausted. Thread-safe;
  /// morsels are handed out exactly once.
  virtual Result<std::optional<Page>> NextMorsel() = 0;

  /// Scan-side work counters accrued since the last call, handed out exactly
  /// once across all chains (so per-chain folds sum to the true totals).
  /// Non-scan sources return zeros.
  virtual ScanSourceStats TakeScanStats() { return {}; }
};

/// Morsels from a leaf scan: the task's split batch is opened split by split
/// and each page is handed out as one morsel (pages larger than
/// `morsel_rows` are sliced into zero-copy row-range wraps first). The lock
/// covers only the page fetch and slice bookkeeping — decoding, filtering
/// and aggregation of the morsel all run outside it.
class SplitMorselSource final : public MorselSource {
 public:
  SplitMorselSource(Connector* connector, AcceptedPushdown pushdown,
                    std::vector<SplitPtr> splits, size_t morsel_rows);

  Result<std::optional<Page>> NextMorsel() override;

  ScanSourceStats TakeScanStats() override;

 private:
  Connector* connector_;
  AcceptedPushdown pushdown_;
  std::vector<SplitPtr> splits_;
  size_t morsel_rows_;

  std::mutex mu_;
  size_t next_split_ = 0;
  std::unique_ptr<ConnectorPageSource> source_;
  std::vector<Page> chunks_;  // slices of an oversized page
  size_t next_chunk_ = 0;
  ScanSourceStats finished_sources_;  // stats of closed page sources
  ScanSourceStats handed_out_;        // totals already returned by Take
};

/// Morsels from one partition of an upstream exchange. PartitionedExchange's
/// consumer side is already thread-safe and pages arrive morsel-sized (the
/// producer chunked them), so this is a thin adapter.
class ExchangeMorselSource final : public MorselSource {
 public:
  ExchangeMorselSource(PartitionedExchange* exchange, int partition)
      : exchange_(exchange), partition_(partition) {}

  Result<std::optional<Page>> NextMorsel() override {
    return exchange_->Next(partition_);
  }

 private:
  PartitionedExchange* exchange_;
  int partition_;
};

/// Leaf of a replicated chain: pulls from the shared morsel source. Stamped
/// with the plan node id of the scan / remote source it replaces, so the
/// per-chain stats merge back into that node's record and EXPLAIN ANALYZE
/// totals reconcile exactly (each morsel is counted by exactly one chain).
class MorselScanOperator final : public Operator {
 public:
  explicit MorselScanOperator(std::shared_ptr<MorselSource> source)
      : source_(std::move(source)) {}

 protected:
  Result<std::optional<Page>> NextInternal() override {
    ASSIGN_OR_RETURN(std::optional<Page> page, source_->NextMorsel());
    if (!page.has_value()) {
      // Fold whatever scan work is still unclaimed into this chain's stats;
      // TakeScanStats hands out each increment exactly once, so the chains'
      // merged records sum to the true scan totals.
      ScanSourceStats d = source_->TakeScanStats();
      stats_.scan_row_groups_total += d.row_groups_total;
      stats_.scan_row_groups_skipped += d.row_groups_skipped;
      stats_.scan_pages_total += d.pages_total;
      stats_.scan_pages_read += d.pages_read;
      stats_.scan_pages_skipped_stats += d.pages_skipped_stats;
      stats_.scan_pages_skipped_lazy += d.pages_skipped_lazy;
      stats_.scan_rows_pruned_late += d.rows_pruned_late;
      stats_.scan_dict_code_hits += d.dict_code_filter_hits;
      stats_.scan_bytes_read += d.bytes_read;
    }
    return page;
  }

 private:
  std::shared_ptr<MorselSource> source_;
};

/// Runs `body(0) .. body(parallelism-1)` with the calling thread as the
/// first runner and pool threads as optional helpers. Runner slots are
/// claimed one at a time, so completion never depends on a helper actually
/// starting: if the pool is busy (or null) the caller claims every slot
/// itself. Returns the first non-OK status. `body` must be safe to call
/// concurrently for distinct indices.
Status RunParallel(WorkStealingPool* pool, int parallelism,
                   const std::function<Status(int)>& body);

}  // namespace presto

#endif  // PRESTO_EXEC_MORSEL_H_
