#ifndef PRESTO_EXEC_EXCHANGE_H_
#define PRESTO_EXEC_EXCHANGE_H_

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "presto/common/memory_pool.h"
#include "presto/common/metrics.h"
#include "presto/common/status.h"
#include "presto/exec/exchange_spool.h"
#include "presto/vector/page.h"

namespace presto {

/// In-memory exchange between plan fragments, standing in for Presto's
/// HTTP-based shuffle. One exchange per producing fragment; pages are routed
/// into per-partition queues (row-hash routing for hash-partitioned stages,
/// partition 0 for gather) and each consuming task drains exactly one
/// partition.
///
/// The buffer is bounded: the whole exchange shares a byte budget
/// (session property exchange_buffer_bytes) and Push() blocks the producer
/// while the budget is exhausted, so peak buffered bytes never exceed
/// capacity plus one page. Backpressure is released by consumers popping
/// pages, by partition close (ConsumerDone — e.g. a satisfied LIMIT), or by
/// failure.
///
/// Counters (per-query registry, may be null): exchange.page.pushed,
/// exchange.byte.pushed, exchange.page.dropped, exchange.producer.blocked.
class PartitionedExchange {
 public:
  PartitionedExchange(int num_partitions, int64_t capacity_bytes,
                      MetricsRegistry* metrics = nullptr);
  ~PartitionedExchange();

  int num_partitions() const { return static_cast<int>(partitions_.size()); }

  /// Attaches a memory pool (the query's system-memory subtree): every
  /// buffered entry's bytes are reserved on enqueue and released when the
  /// entry leaves the buffer, so exchange memory is visible to the worker cap
  /// alongside operator memory and the pool's peak reconciles with
  /// peak_buffered_bytes(). A failed reservation (worker full) latches the
  /// exchange with the classified kResourceExhausted. Must be set before
  /// producers start.
  void SetMemoryPool(std::shared_ptr<MemoryPool> pool);

  /// Must be called before producers start.
  void SetProducerCount(int n);

  /// Attaches a spool (session property exchange_spool): every page accepted
  /// into a partition is also appended to the spool, so a lost consumer task
  /// can be re-run against the complete partition history instead of
  /// restarting the query. Must be set before producers start.
  void SetSpool(std::shared_ptr<ExchangeSpool> spool);
  ExchangeSpool* spool() const { return spool_.get(); }

  /// Switches `partition` to replay mode for a stage re-run: queued pages are
  /// dropped (their bytes released, blocked producers woken), further pushes
  /// to it are spooled but not queued (no backpressure — the replacement
  /// consumer reads the spool, not the queue), and the next consumer's Next()
  /// streams the partition's full spool once all producers are done. Fails
  /// when no spool is attached or the partition's spool is broken — the
  /// caller then falls back to whole-query restart.
  Status ResetPartitionForReplay(int partition);

  /// Attempt-id fencing for exactly-once publication: the first attempt of a
  /// producer slot to commit (successfully or as the slot's terminal failure)
  /// wins; every later attempt of the same slot observes false and must
  /// discard its buffered output without touching the exchange. Used by task
  /// retries, stage re-runs, and straggler speculation — all of which hold
  /// output back (buffer_output) until they commit.
  bool TryCommitProducer(int slot, int attempt);

  /// Arms a cooperative real-time deadline (SteadyNowNanos epoch, 0 = none).
  /// Producers blocked on backpressure and consumers blocked waiting for
  /// pages wake at the deadline and the exchange latches a "query deadline
  /// exceeded" error, so a hung or fault-looping query can never wedge the
  /// stage scheduler's drain barrier.
  void SetDeadlineNanos(int64_t steady_deadline_nanos);

  /// Enqueues a whole page into one partition; blocks while the exchange is
  /// over budget. Pages pushed after Fail() or into a closed partition are
  /// dropped (counted in exchange.page.dropped).
  void Push(int partition, Page page);

  /// Routes each row of `page` to partition hash(channels) % num_partitions
  /// using the typed kernels' batch hashing, then pushes the per-partition
  /// slices (zero-copy dictionary wraps). A slice's buffered bytes are its
  /// amortized share of the base page (indices plus base * rows/total), so
  /// the fan-out does not multiply accounted shuffle bytes. When every row
  /// lands in one partition — always true for gather, common for clustered
  /// input — the original page is passed through by shared_ptr without
  /// rewrapping (counted in exchange.page.zero_copy).
  void PushPartitioned(const Page& page, const std::vector<int>& channels);

  /// Marks one producer finished; a partition reaches end-of-stream when all
  /// producers are done and its queue is drained.
  void ProducerDone();

  /// Propagates a task failure to every consumer and unblocks any producer
  /// waiting for buffer space (their pages are dropped from here on).
  void Fail(Status status);

  /// Blocks for the next page of `partition`; nullopt at end-of-stream
  /// (all producers done and queue drained, or the partition was closed).
  Result<std::optional<Page>> Next(int partition);

  /// Consumer-side cancellation: drops everything queued for `partition`,
  /// releases its bytes, and drops future pushes to it. Producers observe
  /// AllConsumersDone() to stop early (LIMIT-style early exit cascades
  /// upstream through this).
  void ConsumerDone(int partition);

  /// Closes every partition (query teardown / failure paths): unblocks all
  /// producers and turns their remaining output into drops.
  void CloseAllPartitions();

  /// True once every partition has been closed by its consumer.
  bool AllConsumersDone() const;

  int64_t buffered_bytes() const;
  /// High-water mark of buffered bytes; stays <= capacity + one page.
  int64_t peak_buffered_bytes() const;
  /// Total bytes accepted into the exchange (drops excluded).
  int64_t bytes_pushed() const;
  int64_t pages_pushed() const;

 private:
  struct Entry {
    Page page;
    int64_t bytes = 0;
  };
  struct Partition {
    std::deque<Entry> pages;
    bool closed = false;
    /// Replay mode (stage re-run): pushes bypass the queue — the spool holds
    /// the complete history — and Next() streams the sealed spool.
    bool replay = false;
    std::unique_ptr<ExchangeSpool::Reader> replay_reader;
    bool replay_open = false;
  };

  // Enqueue with precomputed accounted bytes (Push computes EstimateBytes;
  // PushPartitioned passes each slice's amortized share of the base page).
  void PushWithBytes(int partition, Page page, int64_t bytes);

  // Replay-mode Next(): waits for all producers, then streams the partition's
  // sealed spool. Enters holding `lock`, may drop it for spool I/O.
  Result<std::optional<Page>> ReplayNextLocked(
      std::unique_lock<std::mutex>& lock, int partition);

  // True when a push to `partition` should be discarded instead of queued.
  bool DropLocked(int partition) const {
    return !status_.ok() || partitions_[partition].closed;
  }

  // Latches `status` and clears buffered pages; caller holds mu_ and must
  // notify both condition variables after releasing it.
  void FailLocked(Status status);

  // Releases `bytes` back to the attached pool (caller holds mu_; pool ops
  // are lock-free atomics, safe under the lock).
  void ReleasePoolLocked(int64_t bytes);

  mutable std::mutex mu_;
  std::condition_variable producer_cv_;  // space freed / close / failure
  std::condition_variable consumer_cv_;  // page arrived / producers done / failure
  std::vector<Partition> partitions_;
  const int64_t capacity_bytes_;
  int64_t buffered_bytes_ = 0;
  int64_t peak_buffered_bytes_ = 0;
  int64_t bytes_pushed_ = 0;
  int64_t pages_pushed_ = 0;
  int open_partitions_ = 0;
  int producers_ = 0;
  int64_t deadline_steady_nanos_ = 0;  // 0 = no deadline
  Status status_;
  std::shared_ptr<MemoryPool> pool_;  // null = exchange memory unaccounted
  std::shared_ptr<ExchangeSpool> spool_;  // null = spooling disabled
  std::map<int, int> committed_slots_;  // producer slot -> winning attempt

  MetricsRegistry::Counter* pages_pushed_counter_ = nullptr;
  MetricsRegistry::Counter* bytes_pushed_counter_ = nullptr;
  MetricsRegistry::Counter* pages_dropped_counter_ = nullptr;
  MetricsRegistry::Counter* producer_blocked_counter_ = nullptr;
  MetricsRegistry::Counter* zero_copy_counter_ = nullptr;
};

}  // namespace presto

#endif  // PRESTO_EXEC_EXCHANGE_H_
