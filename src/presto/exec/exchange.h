#ifndef PRESTO_EXEC_EXCHANGE_H_
#define PRESTO_EXEC_EXCHANGE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "presto/common/status.h"
#include "presto/vector/page.h"

namespace presto {

/// In-memory exchange between plan fragments: leaf tasks push pages, the
/// downstream fragment pulls them. Stands in for Presto's HTTP-based
/// exchange; multiple producers (one per task), single consumer.
class ExchangeBuffer {
 public:
  /// Must be called before producers start.
  void SetProducerCount(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    producers_ = n;
  }

  void Push(Page page) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pages_.push_back(std::move(page));
    }
    cv_.notify_one();
  }

  /// Marks one producer finished; the buffer closes when all are done.
  void ProducerDone() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --producers_;
    }
    cv_.notify_all();
  }

  /// Propagates a task failure to the consumer.
  void Fail(Status status) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (status_.ok()) status_ = std::move(status);
    }
    cv_.notify_all();
  }

  /// Blocks for the next page; nullopt when all producers finished.
  Result<std::optional<Page>> Next() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return !pages_.empty() || producers_ <= 0 || !status_.ok();
    });
    if (!status_.ok()) return status_;
    if (pages_.empty()) return std::optional<Page>();
    Page page = std::move(pages_.front());
    pages_.pop_front();
    return std::optional<Page>(std::move(page));
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Page> pages_;
  int producers_ = 0;
  Status status_;
};

}  // namespace presto

#endif  // PRESTO_EXEC_EXCHANGE_H_
