#ifndef PRESTO_EXEC_SPILL_H_
#define PRESTO_EXEC_SPILL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "presto/common/bytes.h"
#include "presto/common/metrics.h"
#include "presto/fs/file_system.h"
#include "presto/vector/page.h"

namespace presto {

/// Self-describing page block in the spill column encoding, shared by spill
/// runs and the exchange spool: varint num_rows, varint num_columns, per
/// column a Type::ToString() string followed by the typed/boxed column data.
/// (SpillFile runs factor the types into a per-run header instead; the spool
/// appends pages incrementally, so each block carries its own types.)
Status SerializeSpillPage(const Page& page, ByteBuffer* out);
Result<Page> DeserializeSpillPage(ByteReader* reader);

/// Revocable-memory spill area for a single operator. When an operator's
/// memory reservation fails, it revokes itself: the in-memory state is
/// sorted, written out as one run file, and memory is released; on output
/// the sorted runs are merge-read back. Runs live behind the `fs` layer
/// (LocalFileSystem in production, MemoryFileSystem in tests) so the fault
/// injector's spill.write / spill.read points cover disk trouble the same
/// way they cover connector I/O.
///
/// Run file format (columnar, self-describing):
///   header:  u32 magic, varint num_columns, per column a Type::ToString()
///            string (parsed back on read)
///   blocks:  varint block_bytes, then one page: varint num_rows, per
///            column u8 tag (typed flat or boxed), nulls, then raw typed
///            data or per-row serialized Values
///   trailer: varint 0 (end of run)
///
/// Counters (per-query registry, may be null): spill.run.written,
/// spill.byte.written, spill.byte.read.
class SpillFile {
 public:
  SpillFile(FileSystem* fs, std::string path, MetricsRegistry* metrics);

  /// Writes `pages` (already in run order) as one run and closes the file.
  /// All pages must share the column types of the first.
  Status WriteRun(const std::vector<Page>& pages);

  /// Bytes written by WriteRun.
  int64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

  /// Sequential page reader over a written run.
  class Reader {
   public:
    /// Returns the next page, or nullopt at end of run.
    Result<std::optional<Page>> Next();

   private:
    friend class SpillFile;
    std::shared_ptr<RandomAccessFile> file_;
    std::vector<TypePtr> types_;
    uint64_t offset_ = 0;
    MetricsRegistry::Counter* bytes_read_counter_ = nullptr;
  };

  Result<std::unique_ptr<Reader>> OpenReader() const;

  /// Deletes the run file (best effort; called by the owning Spiller).
  void Remove();

 private:
  FileSystem* fs_;
  std::string path_;
  int64_t bytes_written_ = 0;
  MetricsRegistry::Counter* runs_written_counter_ = nullptr;
  MetricsRegistry::Counter* bytes_written_counter_ = nullptr;
  MetricsRegistry::Counter* bytes_read_counter_ = nullptr;
};

/// Owns the spill files of one operator instance: hands out uniquely named
/// run files under `<dir>/` and deletes them all on destruction.
class Spiller {
 public:
  Spiller(FileSystem* fs, std::string dir, MetricsRegistry* metrics);
  ~Spiller();

  Spiller(const Spiller&) = delete;
  Spiller& operator=(const Spiller&) = delete;

  /// Spills `pages` as one sorted run.
  Status SpillRun(const std::vector<Page>& pages);

  int num_runs() const { return static_cast<int>(runs_.size()); }
  int64_t total_bytes() const { return total_bytes_; }

  /// Opens a reader per run, in spill order.
  Result<std::vector<std::unique_ptr<SpillFile::Reader>>> OpenAllRuns() const;

 private:
  FileSystem* fs_;
  std::string dir_;
  MetricsRegistry* metrics_;
  std::vector<std::unique_ptr<SpillFile>> runs_;
  int64_t total_bytes_ = 0;
};

/// Streaming k-way merge over sorted spill runs (plus optionally one final
/// in-memory run). `Comparator(page_a, row_a, page_b, row_b)` returns <0,
/// 0, >0 and must match the order the runs were written in. The cursor
/// yields globally ordered rows one at a time; callers batch them back into
/// pages.
class SpillMergeCursor {
 public:
  using Comparator = std::function<int(const Page&, size_t, const Page&, size_t)>;

  SpillMergeCursor(std::vector<std::unique_ptr<SpillFile::Reader>> readers,
                   std::vector<Page> in_memory_run, Comparator cmp);

  /// Multi-memory-run overload: each inner vector is one independently
  /// sorted in-memory run (one per morsel chain of a parallel aggregation).
  SpillMergeCursor(std::vector<std::unique_ptr<SpillFile::Reader>> readers,
                   std::vector<std::vector<Page>> in_memory_runs,
                   Comparator cmp);

  /// Positions on the smallest remaining row. Returns false at end of data.
  Result<bool> Advance();

  /// Current row (valid after Advance() returned true).
  const Page& page() const { return sources_[current_].page; }
  size_t row() const { return sources_[current_].row; }

 private:
  struct Source {
    std::unique_ptr<SpillFile::Reader> reader;  // null for the memory run
    std::vector<Page> memory_pages;             // memory-run backing
    size_t memory_index = 0;
    Page page;
    size_t row = 0;
    bool exhausted = false;
    bool loaded = false;
  };

  Status LoadIfNeeded(Source* s);

  std::vector<Source> sources_;
  Comparator cmp_;
  size_t current_ = 0;
  bool started_ = false;
};

}  // namespace presto

#endif  // PRESTO_EXEC_SPILL_H_
