#include "presto/exec/operators.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "presto/common/clock.h"
#include "presto/common/thread_pool.h"
#include "presto/exec/kernels/kernels.h"
#include "presto/exec/morsel.h"
#include "presto/exec/spill.h"
#include "presto/vector/vector_builder.h"

namespace presto {

Result<std::optional<Page>> Operator::Next() {
  if (deadline_steady_nanos_ > 0 && SteadyNowNanos() >= deadline_steady_nanos_) {
    return Status::Unavailable(
        "query deadline exceeded (query_timeout_millis)");
  }
  if (kill_flag_ != nullptr && kill_flag_->load(std::memory_order_relaxed)) {
    return Status::ResourceExhausted(
        "Query killed: worker memory exhausted (low-memory killer)");
  }
  if (!collect_stats_) {
    // Row/page counts stay on (the engine and tests rely on rows_produced);
    // only the clock reads and byte estimation are skipped.
    ASSIGN_OR_RETURN(std::optional<Page> page, NextInternal());
    if (page.has_value()) {
      stats_.output_rows += static_cast<int64_t>(page->num_rows());
      stats_.output_pages += 1;
    }
    return page;
  }
  // Lazily open this instance's trace span at the first stats-collecting
  // Next() under a live context: by then the enclosing (parent/task/chain)
  // span is installed, so the tree nests naturally with the pull order.
  if (trace_recorder_ == nullptr && trace_span_id_ == 0) {
    TraceContext& ctx = ThreadTraceContext();
    if (ctx.recorder != nullptr) {
      trace_recorder_ = ctx.recorder;
      trace_span_id_ = trace_recorder_->BeginSpan(
          TraceKind::kOperator,
          stats_.operator_type + "#" + std::to_string(stats_.plan_node_id),
          ctx.span_id);
    }
  }
  // Children pulled inside NextInternal parent their spans under this one.
  TraceContextScope trace_scope(trace_recorder_, trace_span_id_);
  Stopwatch wall;
  int64_t cpu_start = CpuStopwatch::NowNanos();
  BlockedCounters blocked_start = ThreadBlockedCounters();
  Result<std::optional<Page>> result = NextInternal();
  stats_.wall_nanos += wall.ElapsedNanos();
  stats_.cpu_nanos += CpuStopwatch::NowNanos() - cpu_start;
  BlockedCounters delta = ThreadBlockedCounters().Delta(blocked_start);
  stats_.exchange_wait_nanos +=
      delta.nanos[static_cast<int>(BlockedKind::kExchangeWait)];
  stats_.spill_io_nanos += delta.nanos[static_cast<int>(BlockedKind::kSpillIo)];
  stats_.memory_wait_nanos +=
      delta.nanos[static_cast<int>(BlockedKind::kMemoryWait)];
  stats_.queued_nanos += delta.nanos[static_cast<int>(BlockedKind::kQueued)];
  stats_.scan_io_nanos += delta.nanos[static_cast<int>(BlockedKind::kScanIo)];
  stats_.spill_write_bytes += delta.spill_write_bytes;
  stats_.spill_read_bytes += delta.spill_read_bytes;
  if (!result.ok()) {
    FinishTraceSpan();
    return result;
  }
  const std::optional<Page>& page = result.value();
  if (page.has_value()) {
    stats_.output_rows += static_cast<int64_t>(page->num_rows());
    stats_.output_pages += 1;
    stats_.output_bytes += page->EstimateBytes();
  } else {
    FinishTraceSpan();
  }
  return result;
}

void Operator::FinishTraceSpan() {
  if (trace_recorder_ == nullptr) return;
  TraceRecorder* recorder = trace_recorder_;
  trace_recorder_ = nullptr;  // idempotent: exhaustion then destruction
  recorder->EndSpanWithArgs(
      trace_span_id_,
      {{"plan_node_id", stats_.plan_node_id},
       {"output_rows", stats_.output_rows},
       {"wall_nanos", stats_.wall_nanos},
       {"cpu_nanos", stats_.cpu_nanos},
       {"exchange_wait_nanos", stats_.exchange_wait_nanos},
       {"spill_io_nanos", stats_.spill_io_nanos},
       {"memory_wait_nanos", stats_.memory_wait_nanos},
       {"queued_nanos", stats_.queued_nanos},
       {"scan_io_nanos", stats_.scan_io_nanos},
       {"spill_write_bytes", stats_.spill_write_bytes},
       {"spill_read_bytes", stats_.spill_read_bytes},
       {"scan_pages_read", stats_.scan_pages_read},
       {"scan_pages_skipped",
        stats_.scan_pages_skipped_stats + stats_.scan_pages_skipped_lazy},
       {"scan_rows_pruned_late", stats_.scan_rows_pruned_late}});
}

void Operator::CollectStats(std::vector<OperatorStats>* out) const {
  OperatorStats s = stats_;
  if (children_.empty()) {
    // Leaves (scan, values, remote source) pass pages through: what they
    // read is what they emit.
    s.input_rows = s.output_rows;
    s.input_bytes = s.output_bytes;
    s.input_pages = s.output_pages;
  } else {
    for (const Operator* child : children_) {
      const OperatorStats& c = child->stats();
      s.input_rows += c.output_rows;
      s.input_bytes += c.output_bytes;
      s.input_pages += c.output_pages;
    }
  }
  s.num_instances = 1;
  out->push_back(std::move(s));
  for (const Operator* child : children_) child->CollectStats(out);
}

namespace {

// Pre-registered hot-path counter bump: a single relaxed atomic add, no
// lock or name lookup per page (counters are resolved once at operator
// construction via MetricsRegistry::FindOrRegister).
void Bump(MetricsRegistry::Counter* counter, int64_t delta) {
  if (counter != nullptr && delta != 0) counter->Add(delta);
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// Per-operator memory accounting: owns a leaf pool under the task pool and a
// running reservation equal to the operator's estimated footprint. Growing
// the footprint can fail at two capped levels of the pool tree; callers
// degrade differently per level:
//   - query user cap (session query_max_memory): the query outgrew its own
//     budget -> revoke self (spill) if enabled, else fail the query;
//   - worker cap: the whole worker is full -> ask the arbiter (the
//     coordinator's low-memory killer) to free memory elsewhere and retry.
// When limits.task_pool is null (memory_accounting=false) every call is a
// no-op, which is also the bench baseline for reservation overhead.
class OperatorMemory {
 public:
  void Init(const ExecutionLimits& limits, const std::string& name) {
    if (limits.task_pool == nullptr) return;
    pool_ = limits.task_pool->AddChild(name);
    query_user_pool_ = limits.query_user_pool;
    query_group_pool_ = limits.query_group_pool;
    arbiter_ = limits.arbiter;
    query_id_ = limits.query_id;
    killed_ = limits.query_killed;
    quantum_ = limits.memory_quantum > 0 ? limits.memory_quantum : 0;
    if (limits.metrics != nullptr) {
      revoked_counter_ = limits.metrics->FindOrRegister("memory.revoked.bytes");
    }
  }

  ~OperatorMemory() { ReleaseAll(); }

  bool enabled() const { return pool_ != nullptr; }
  int64_t bytes() const { return bytes_; }

  void ReleaseAll() {
    if (pool_ != nullptr && bytes_ > 0) pool_->Release(bytes_);
    bytes_ = 0;
  }

  /// Revocation released `bytes` of previously-reserved operator state
  /// (counted once per spill, before the footprint is re-estimated).
  void RecordRevoked(int64_t bytes) { Bump(revoked_counter_, bytes); }

  /// Moves the reservation to `bytes` total. Shrinking always succeeds;
  /// growing may fail, in which case `*at_query_cap` tells whether the
  /// failure was the query's own cap (true) or the worker cap (false).
  Status ReserveTotal(int64_t bytes, bool* at_query_cap) {
    *at_query_cap = false;
    if (pool_ == nullptr) return Status::OK();
    if (bytes < 0) bytes = 0;
    // Reservations move in quantum steps: the target is rounded up to the
    // next multiple, so a steadily growing operator touches the shared pool
    // tree once per quantum instead of once per page, and shrinks smaller
    // than a quantum are kept (they are reused a page later). Cap accuracy
    // degrades by at most one quantum per operator.
    if (quantum_ > 0 && bytes > 0) {
      bytes += quantum_ - 1 - (bytes + quantum_ - 1) % quantum_;
    }
    if (bytes == bytes_) return Status::OK();
    if (bytes <= bytes_) {
      pool_->Release(bytes_ - bytes);
      bytes_ = bytes;
      return Status::OK();
    }
    const MemoryPool* failed = nullptr;
    Status st = pool_->Reserve(bytes - bytes_, &failed);
    if (st.ok()) {
      bytes_ = bytes;
      return st;
    }
    *at_query_cap =
        (failed == query_user_pool_ && query_user_pool_ != nullptr) ||
        (failed == query_group_pool_ && query_group_pool_ != nullptr);
    return st;
  }

  /// ReserveTotal plus worker-cap arbitration: on a worker-cap failure asks
  /// the arbiter (low-memory killer) to free memory and retries for up to
  /// ~2s, checking the query's own kill flag each round (the killer may pick
  /// *this* query as the victim).
  Status ReserveTotalWithArbiter(int64_t bytes, bool* at_query_cap) {
    Status st = ReserveTotal(bytes, at_query_cap);
    if (st.ok() || *at_query_cap || arbiter_ == nullptr) return st;
    // Only reached once the reservation actually failed at the worker cap:
    // everything below is arbiter-wait time, attributed to the operator that
    // is growing (and to a memory_wait span when tracing).
    BlockedTimer blocked(BlockedKind::kMemoryWait);
    TraceEventScope span(TraceKind::kMemoryWait, "arbiter_wait");
    span.SetArg("requested_bytes", bytes - bytes_);
    for (int attempt = 0; attempt < 500; ++attempt) {
      if (killed_ != nullptr && killed_->load(std::memory_order_relaxed)) {
        return Status::ResourceExhausted(
            "Query killed: worker memory exhausted (low-memory killer)");
      }
      if (!arbiter_->OnMemoryPressure(query_id_, bytes - bytes_)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
      st = ReserveTotal(bytes, at_query_cap);
      if (st.ok() || *at_query_cap) return st;
    }
    if (killed_ != nullptr && killed_->load(std::memory_order_relaxed)) {
      return Status::ResourceExhausted(
          "Query killed: worker memory exhausted (low-memory killer)");
    }
    return st;
  }

 private:
  std::shared_ptr<MemoryPool> pool_;
  MemoryPool* query_user_pool_ = nullptr;
  MemoryPool* query_group_pool_ = nullptr;
  MemoryArbiter* arbiter_ = nullptr;
  int64_t query_id_ = 0;
  std::shared_ptr<const std::atomic<bool>> killed_;
  MetricsRegistry::Counter* revoked_counter_ = nullptr;
  int64_t quantum_ = 0;
  int64_t bytes_ = 0;
};

// Compares the leading `num_keys` columns of two spill-run rows with a
// nulls-first total order. GROUP BY treats NULL as an ordinary key value, so
// unlike ORDER BY there is no per-key direction — any total order works as
// long as spill and merge agree.
int CompareRunKeys(const Page& a, size_t a_row, const Page& b, size_t b_row,
                   size_t num_keys) {
  for (size_t k = 0; k < num_keys; ++k) {
    const Vector& ca = *a.column(k);
    const Vector& cb = *b.column(k);
    bool null_a = ca.IsNull(a_row);
    bool null_b = cb.IsNull(b_row);
    if (null_a || null_b) {
      if (null_a == null_b) continue;
      return null_a ? -1 : 1;
    }
    int cmp = ca.CompareAt(a_row, cb, b_row);
    if (cmp != 0) return cmp;
  }
  return 0;
}

// Splits `page` into ~4096-row slices so k-way merge readers hold bounded
// memory per run instead of one table-sized page.
std::vector<Page> ChunkPage(const Page& page, size_t chunk_rows = 4096) {
  std::vector<Page> out;
  size_t n = page.num_rows();
  for (size_t start = 0; start < n; start += chunk_rows) {
    size_t count = std::min(chunk_rows, n - start);
    std::vector<int32_t> rows(count);
    for (size_t i = 0; i < count; ++i) {
      rows[i] = static_cast<int32_t>(start + i);
    }
    out.push_back(page.SliceRows(rows));
  }
  return out;
}

// Concatenates vectors of the same type (fast paths for flat scalars).
Result<VectorPtr> ConcatVectors(const TypePtr& type,
                                const std::vector<VectorPtr>& parts) {
  if (parts.size() == 1) return parts[0];
  bool all_flat_scalar = type->IsScalar();
  for (const VectorPtr& part : parts) {
    if (part->encoding() != VectorEncoding::kFlat) all_flat_scalar = false;
  }
  if (all_flat_scalar) {
    switch (type->kind()) {
      case TypeKind::kDouble: {
        std::vector<double> values;
        std::vector<uint8_t> nulls;
        bool any_null = false;
        for (const VectorPtr& part : parts) {
          const auto* flat = static_cast<const DoubleVector*>(part.get());
          for (size_t i = 0; i < flat->size(); ++i) {
            values.push_back(flat->ValueAt(i));
            bool is_null = flat->IsNull(i);
            nulls.push_back(is_null ? 1 : 0);
            any_null = any_null || is_null;
          }
        }
        if (!any_null) nulls.clear();
        return VectorPtr(std::make_shared<DoubleVector>(type, std::move(values),
                                                        std::move(nulls)));
      }
      case TypeKind::kVarchar: {
        std::vector<std::string> values;
        std::vector<uint8_t> nulls;
        bool any_null = false;
        for (const VectorPtr& part : parts) {
          const auto* flat = static_cast<const StringVector*>(part.get());
          for (size_t i = 0; i < flat->size(); ++i) {
            values.push_back(flat->ValueAt(i));
            bool is_null = flat->IsNull(i);
            nulls.push_back(is_null ? 1 : 0);
            any_null = any_null || is_null;
          }
        }
        if (!any_null) nulls.clear();
        return VectorPtr(std::make_shared<StringVector>(type, std::move(values),
                                                        std::move(nulls)));
      }
      case TypeKind::kBoolean: {
        std::vector<uint8_t> values;
        std::vector<uint8_t> nulls;
        bool any_null = false;
        for (const VectorPtr& part : parts) {
          const auto* flat = static_cast<const BoolVector*>(part.get());
          for (size_t i = 0; i < flat->size(); ++i) {
            values.push_back(flat->ValueAt(i));
            bool is_null = flat->IsNull(i);
            nulls.push_back(is_null ? 1 : 0);
            any_null = any_null || is_null;
          }
        }
        if (!any_null) nulls.clear();
        return VectorPtr(std::make_shared<BoolVector>(type, std::move(values),
                                                      std::move(nulls)));
      }
      default: {  // integer-like
        std::vector<int64_t> values;
        std::vector<uint8_t> nulls;
        bool any_null = false;
        for (const VectorPtr& part : parts) {
          const auto* flat = static_cast<const Int64Vector*>(part.get());
          for (size_t i = 0; i < flat->size(); ++i) {
            values.push_back(flat->ValueAt(i));
            bool is_null = flat->IsNull(i);
            nulls.push_back(is_null ? 1 : 0);
            any_null = any_null || is_null;
          }
        }
        if (!any_null) nulls.clear();
        return VectorPtr(std::make_shared<Int64Vector>(type, std::move(values),
                                                       std::move(nulls)));
      }
    }
  }
  // Generic path (nested types, mixed encodings).
  VectorBuilder builder(type);
  for (const VectorPtr& part : parts) {
    for (size_t i = 0; i < part->size(); ++i) {
      RETURN_IF_ERROR(builder.Append(part->GetValue(i)));
    }
  }
  return builder.Build();
}

// Concatenates pages (types derived from the given output variables).
Result<Page> ConcatPages(const std::vector<VariablePtr>& variables,
                         const std::vector<Page>& pages) {
  size_t rows = 0;
  for (const Page& page : pages) rows += page.num_rows();
  std::vector<VectorPtr> columns;
  for (size_t c = 0; c < variables.size(); ++c) {
    std::vector<VectorPtr> parts;
    for (const Page& page : pages) {
      if (page.num_rows() == 0) continue;
      ASSIGN_OR_RETURN(VectorPtr flat, Vector::Flatten(page.column(c)));
      parts.push_back(std::move(flat));
    }
    if (parts.empty()) {
      ASSIGN_OR_RETURN(VectorPtr empty,
                       MakeAllNullVector(variables[c]->type(), 0));
      columns.push_back(std::move(empty));
    } else {
      ASSIGN_OR_RETURN(VectorPtr merged,
                       ConcatVectors(variables[c]->type(), parts));
      columns.push_back(std::move(merged));
    }
  }
  return Page(std::move(columns), rows);
}

bool RowsEqual(const Page& a, const std::vector<int>& a_channels, size_t a_row,
               const Page& b, const std::vector<int>& b_channels, size_t b_row) {
  for (size_t i = 0; i < a_channels.size(); ++i) {
    if (a.column(a_channels[i])->CompareAt(a_row, *b.column(b_channels[i]), b_row) != 0) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Leaf operators
// ---------------------------------------------------------------------------

class TableScanOperator final : public Operator {
 public:
  TableScanOperator(Connector* connector, AcceptedPushdown pushdown,
                    std::vector<SplitPtr> splits, MetricsRegistry* metrics)
      : connector_(connector),
        pushdown_(std::move(pushdown)),
        splits_(std::move(splits)) {
    if (metrics != nullptr) {
      pages_read_counter_ = metrics->FindOrRegister("lakefile.pages.read");
      pages_skipped_stats_counter_ =
          metrics->FindOrRegister("lakefile.pages.skipped_stats");
      pages_skipped_lazy_counter_ =
          metrics->FindOrRegister("lakefile.pages.skipped_lazy");
      rows_pruned_counter_ =
          metrics->FindOrRegister("lakefile.rows.pruned_late");
      dict_code_hits_counter_ =
          metrics->FindOrRegister("lakefile.dict_code.filter_hits");
      bytes_read_counter_ = metrics->FindOrRegister("lakefile.bytes.read");
    }
  }

 protected:
  Result<std::optional<Page>> NextInternal() override {
    while (true) {
      if (source_ == nullptr) {
        if (next_split_ >= splits_.size()) return std::optional<Page>();
        ASSIGN_OR_RETURN(source_, connector_->CreatePageSource(
                                      splits_[next_split_++], pushdown_));
        source_seen_ = ScanSourceStats();
      }
      ASSIGN_OR_RETURN(std::optional<Page> page, source_->NextPage());
      HarvestScanStats();
      if (!page.has_value()) {
        source_.reset();
        continue;
      }
      if (page->num_rows() == 0) continue;
      return page;
    }
  }

 private:
  /// Folds the source's counters-since-last-harvest into OperatorStats and
  /// the lakefile.* metrics. Incremental (per NextPage) so EXPLAIN ANALYZE
  /// and metrics stay live even for long splits, and exact at exhaustion.
  void HarvestScanStats() {
    if (source_ == nullptr) return;
    ScanSourceStats now = source_->scan_stats();
    ScanSourceStats d = now.Delta(source_seen_);
    source_seen_ = now;
    stats_.scan_row_groups_total += d.row_groups_total;
    stats_.scan_row_groups_skipped += d.row_groups_skipped;
    stats_.scan_pages_total += d.pages_total;
    stats_.scan_pages_read += d.pages_read;
    stats_.scan_pages_skipped_stats += d.pages_skipped_stats;
    stats_.scan_pages_skipped_lazy += d.pages_skipped_lazy;
    stats_.scan_rows_pruned_late += d.rows_pruned_late;
    stats_.scan_dict_code_hits += d.dict_code_filter_hits;
    stats_.scan_bytes_read += d.bytes_read;
    Bump(pages_read_counter_, d.pages_read);
    Bump(pages_skipped_stats_counter_, d.pages_skipped_stats);
    Bump(pages_skipped_lazy_counter_, d.pages_skipped_lazy);
    Bump(rows_pruned_counter_, d.rows_pruned_late);
    Bump(dict_code_hits_counter_, d.dict_code_filter_hits);
    Bump(bytes_read_counter_, d.bytes_read);
  }

  Connector* connector_;
  AcceptedPushdown pushdown_;
  std::vector<SplitPtr> splits_;
  size_t next_split_ = 0;
  std::unique_ptr<ConnectorPageSource> source_;
  ScanSourceStats source_seen_;  // last harvested snapshot of source_
  MetricsRegistry::Counter* pages_read_counter_ = nullptr;
  MetricsRegistry::Counter* pages_skipped_stats_counter_ = nullptr;
  MetricsRegistry::Counter* pages_skipped_lazy_counter_ = nullptr;
  MetricsRegistry::Counter* rows_pruned_counter_ = nullptr;
  MetricsRegistry::Counter* dict_code_hits_counter_ = nullptr;
  MetricsRegistry::Counter* bytes_read_counter_ = nullptr;
};

class ValuesOperator final : public Operator {
 public:
  ValuesOperator(std::vector<VariablePtr> outputs,
                 const std::vector<std::vector<Value>>* rows)
      : outputs_(std::move(outputs)), rows_(rows) {}

 protected:
  Result<std::optional<Page>> NextInternal() override {
    if (done_) return std::optional<Page>();
    done_ = true;
    std::vector<VectorBuilder> builders;
    for (const VariablePtr& v : outputs_) builders.emplace_back(v->type());
    for (const auto& row : *rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        RETURN_IF_ERROR(builders[c].Append(row[c]));
      }
    }
    std::vector<VectorPtr> columns;
    for (auto& b : builders) columns.push_back(b.Build());
    return std::optional<Page>(Page(std::move(columns), rows_->size()));
  }

 private:
  std::vector<VariablePtr> outputs_;
  const std::vector<std::vector<Value>>* rows_;
  bool done_ = false;
};

class RemoteSourceOperator final : public Operator {
 public:
  RemoteSourceOperator(PartitionedExchange* exchange, int partition)
      : exchange_(exchange), partition_(partition) {}

 protected:
  Result<std::optional<Page>> NextInternal() override {
    return exchange_->Next(partition_);
  }

 private:
  PartitionedExchange* exchange_;
  int partition_;
};

// ---------------------------------------------------------------------------
// Row-preserving operators
// ---------------------------------------------------------------------------

class FilterOperator final : public Operator {
 public:
  FilterOperator(OperatorPtr child, ExprPtr predicate,
                 std::map<std::string, int> layout, FunctionRegistry* functions)
      : child_(std::move(child)),
        predicate_(std::move(predicate)),
        layout_(std::move(layout)),
        functions_(functions) {
    AddChild(child_.get());
  }

 protected:
  Result<std::optional<Page>> NextInternal() override {
    while (true) {
      ASSIGN_OR_RETURN(std::optional<Page> page, child_->Next());
      if (!page.has_value()) return std::optional<Page>();
      ASSIGN_OR_RETURN(std::vector<int32_t> rows,
                       EvalPredicate(*predicate_, *page, layout_, functions_));
      if (rows.empty()) continue;
      // Surviving rows travel as a selection vector (dictionary wrap) rather
      // than a materialized copy; lazy columns load only the selected rows.
      Page out = rows.size() == page->num_rows() ? std::move(*page)
                                                 : page->WrapRows(rows);
      return std::optional<Page>(std::move(out));
    }
  }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
  std::map<std::string, int> layout_;
  FunctionRegistry* functions_;
};

class ProjectOperator final : public Operator {
 public:
  ProjectOperator(OperatorPtr child, std::vector<ProjectNode::Assignment> assignments,
                  std::map<std::string, int> layout, FunctionRegistry* functions)
      : child_(std::move(child)),
        assignments_(std::move(assignments)),
        layout_(std::move(layout)),
        functions_(functions) {
    AddChild(child_.get());
  }

 protected:
  Result<std::optional<Page>> NextInternal() override {
    ASSIGN_OR_RETURN(std::optional<Page> page, child_->Next());
    if (!page.has_value()) return std::optional<Page>();
    std::vector<VectorPtr> columns;
    columns.reserve(assignments_.size());
    for (const ProjectNode::Assignment& a : assignments_) {
      ASSIGN_OR_RETURN(VectorPtr column,
                       Evaluator::EvalExpression(*a.expression, *page, layout_,
                                                 functions_));
      columns.push_back(std::move(column));
    }
    return std::optional<Page>(Page(std::move(columns), page->num_rows()));
  }

 private:
  OperatorPtr child_;
  std::vector<ProjectNode::Assignment> assignments_;
  std::map<std::string, int> layout_;
  FunctionRegistry* functions_;
};

class LimitOperator final : public Operator {
 public:
  LimitOperator(OperatorPtr child, int64_t count)
      : child_(std::move(child)), remaining_(count) {
    AddChild(child_.get());
  }

 protected:
  Result<std::optional<Page>> NextInternal() override {
    if (remaining_ <= 0) return std::optional<Page>();
    ASSIGN_OR_RETURN(std::optional<Page> page, child_->Next());
    if (!page.has_value()) return std::optional<Page>();
    if (static_cast<int64_t>(page->num_rows()) > remaining_) {
      std::vector<int32_t> rows(remaining_);
      for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<int32_t>(i);
      *page = page->WrapRows(rows);
    }
    remaining_ -= static_cast<int64_t>(page->num_rows());
    return page;
  }

 private:
  OperatorPtr child_;
  int64_t remaining_;
};

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

class HashAggregationOperator final : public Operator {
 public:
  struct AggSpec {
    const AggregateFunction* function;
    std::vector<int> arg_channels;
    TypePtr output_type;
  };

  /// `extra_chains` are the replicated morsel chains beyond `child` (empty
  /// for a classic single-threaded task): each chain consumes into its own
  /// thread-local radix-partitioned state, merged partition-wise after every
  /// chain finishes — the hot consume path never takes a lock.
  HashAggregationOperator(OperatorPtr child, std::vector<int> key_channels,
                          std::vector<TypePtr> key_types,
                          std::vector<AggSpec> aggs, AggregationStep step,
                          const ExecutionLimits& limits,
                          std::vector<OperatorPtr> extra_chains = {})
      : child_(std::move(child)),
        extra_chains_(std::move(extra_chains)),
        key_channels_(std::move(key_channels)),
        key_types_(std::move(key_types)),
        aggs_(std::move(aggs)),
        step_(step) {
    AddChild(child_.get());
    for (const OperatorPtr& chain : extra_chains_) AddChild(chain.get());
    if (limits.metrics != nullptr) {
      kernel_pages_counter_ =
          limits.metrics->FindOrRegister("exec.agg.kernel_pages");
      fallback_pages_counter_ =
          limits.metrics->FindOrRegister("exec.agg.fallback_pages");
      hash_probes_counter_ =
          limits.metrics->FindOrRegister("exec.agg.hash_probes");
      groups_created_counter_ =
          limits.metrics->FindOrRegister("exec.agg.groups_created");
      table_bytes_counter_ =
          limits.metrics->FindOrRegister("exec.agg.table_bytes");
    }
    InitKernel(limits);
    for (size_t k = 0; k < key_channels_.size(); ++k) {
      inter_key_channels_.push_back(static_cast<int>(k));
    }
    radix_target_bits_ = key_channels_.empty() ? 0 : kRadixBits;
    for (size_t k = 0; k < key_types_.size(); ++k) {
      run_vars_.push_back(VariableReferenceExpression::Make(
          "k" + std::to_string(k), key_types_[k]));
    }
    for (size_t a = 0; a < aggs_.size(); ++a) {
      run_vars_.push_back(VariableReferenceExpression::Make(
          "a" + std::to_string(a), aggs_[a].function->intermediate_type));
    }
    metrics_ = limits.metrics;
    morsel_pool_ = limits.morsel_pool;
    size_t num_chains = 1 + extra_chains_.size();
    for (size_t i = 0; i < num_chains; ++i) {
      auto s = std::make_unique<LocalState>();
      s->chain = i == 0 ? child_.get() : extra_chains_[i - 1].get();
      s->memory.Init(limits, num_chains == 1
                                 ? "op.HashAggregation"
                                 : "op.HashAggregation.t" + std::to_string(i));
      if (use_kernel_) s->parts.push_back(MakePartition());
      locals_.push_back(std::move(s));
    }
    if (locals_[0]->memory.enabled() && limits.spill_enabled &&
        limits.spill_fs != nullptr && !limits.spill_dir.empty()) {
      spill_fs_ = limits.spill_fs;
      spill_dir_ = limits.spill_dir;
    }
  }

 protected:
  Result<std::optional<Page>> NextInternal() override {
    if (!consumed_) {
      consumed_ = true;
      RETURN_IF_ERROR(ConsumeAllChains());
      if (spiller_ != nullptr && spiller_->num_runs() > 0) {
        // Spilled: every chain's remainder joins the sorted merge as its own
        // in-memory run, so no cross-chain table merge is needed.
        RETURN_IF_ERROR(StartMerge());
      } else if (locals_.size() > 1) {
        if (use_kernel_) {
          RETURN_IF_ERROR(MergeLocalStatesKernel());
        } else {
          MergeLocalStatesBoxed();
        }
        RETURN_IF_ERROR(SettleAfterMerge());
      }
    }
    if (merge_ != nullptr) return NextMergedPage();
    if (use_kernel_) return ProduceOutputKernel();
    if (produced_) return std::optional<Page>();
    produced_ = true;
    return ProduceOutput();
  }

 private:
  struct Group {
    std::vector<Value> keys;
    std::vector<std::unique_ptr<Accumulator>> accumulators;
  };

  /// One radix partition of a chain's kernel-path state: a cache-sized
  /// normalized-key table plus its grouped accumulators.
  struct KernelPartition {
    std::unique_ptr<kernels::NormalizedKeyTable> table;
    std::vector<std::unique_ptr<kernels::GroupedAccumulator>> grouped;
  };

  /// Per-chain state: everything a consuming thread touches is confined to
  /// its own LocalState (tables, scratch, memory reservation, counters), so
  /// the parallel consume needs no synchronization beyond the morsel source.
  /// Counters fold into the operator's stats after the chains join.
  struct LocalState {
    Operator* chain = nullptr;
    // Kernel path: 2^radix_bits partitions routed by the high hash bits;
    // starts at one partition and upgrades past kRadixUpgradeGroups.
    int radix_bits = 0;
    std::vector<KernelPartition> parts;
    // Boxed fallback.
    std::unordered_map<uint64_t, std::vector<Group>> groups;
    size_t num_groups = 0;
    // Chain-confined scratch.
    std::vector<int32_t> group_ids;
    std::vector<uint64_t> hash_scratch;
    std::vector<std::vector<int32_t>> part_rows;
    // Accounting & counters.
    OperatorMemory memory;
    int64_t kernel_pages = 0;
    int64_t fallback_pages = 0;
    int64_t spilled_bytes = 0;
    int64_t spilled_runs = 0;
  };

  // The kernel path is chosen statically per operator: every key kind must
  // normalize to a fixed-width slot and every aggregate must have a grouped
  // (columnar) implementation. Otherwise the Value-boxed path runs.
  void InitKernel(const ExecutionLimits& limits) {
    if (!limits.vectorized_kernels) return;
    std::vector<TypeKind> kinds;
    kinds.reserve(key_types_.size());
    for (const TypePtr& t : key_types_) kinds.push_back(t->kind());
    if (!kernels::NormalizedKeyTable::SupportsKeyKinds(kinds)) return;
    for (const AggSpec& agg : aggs_) {
      if (agg.arg_channels.size() > 1) return;
      if (step_ == AggregationStep::kFinal && agg.arg_channels.size() != 1) {
        return;
      }
      auto g = kernels::MakeGroupedAccumulator(*agg.function, agg.output_type);
      if (g == nullptr) return;
    }
    key_kinds_ = std::move(kinds);
    use_kernel_ = true;
  }

  KernelPartition MakePartition() const {
    KernelPartition part;
    part.table = std::make_unique<kernels::NormalizedKeyTable>(key_kinds_);
    for (const AggSpec& agg : aggs_) {
      part.grouped.push_back(
          kernels::MakeGroupedAccumulator(*agg.function, agg.output_type));
    }
    return part;
  }

  int64_t NumGroups(const LocalState& s) const {
    if (!use_kernel_) return static_cast<int64_t>(s.num_groups);
    int64_t total = 0;
    for (const KernelPartition& part : s.parts) {
      total += static_cast<int64_t>(part.table->num_groups());
    }
    return total;
  }

  Status ConsumeAllChains() {
    // Each chain runs under its own kChain span (parented to this
    // operator's span) with the trace context installed on whichever thread
    // executes it, so the chain's replicated operators self-register their
    // spans in the right subtree.
    auto consume_traced = [this](int i) {
      int64_t chain_span = 0;
      if (trace_recorder_ != nullptr) {
        chain_span = trace_recorder_->BeginSpan(
            TraceKind::kChain, "chain#" + std::to_string(i), trace_span_id_);
      }
      TraceContextScope scope(trace_recorder_, chain_span);
      Status st = ConsumeChain(*locals_[i]);
      if (trace_recorder_ != nullptr) trace_recorder_->EndSpan(chain_span);
      return st;
    };
    Status st;
    if (locals_.size() == 1) {
      st = consume_traced(0);
    } else {
      st = RunParallel(morsel_pool_, static_cast<int>(locals_.size()),
                       consume_traced);
    }
    // Fold per-chain counters into the shared stats record after the chains
    // join; consuming threads never touch stats_ directly.
    int64_t total_groups = 0;
    int64_t table_bytes = 0;
    for (const auto& s : locals_) {
      stats_.kernel_pages += s->kernel_pages;
      stats_.fallback_pages += s->fallback_pages;
      stats_.spilled_bytes += s->spilled_bytes;
      stats_.spilled_runs += s->spilled_runs;
      total_groups += NumGroups(*s);
      if (use_kernel_) {
        for (const KernelPartition& part : s->parts) {
          table_bytes += part.table->EstimateBytes();
        }
      }
    }
    RecordPeakBuffered(total_groups);
    if (use_kernel_) Bump(table_bytes_counter_, table_bytes);
    return st;
  }

  Status ConsumeChain(LocalState& s) {
    while (true) {
      ASSIGN_OR_RETURN(std::optional<Page> page, s.chain->Next());
      if (!page.has_value()) break;
      if (use_kernel_) {
        RETURN_IF_ERROR(ConsumePageKernel(s, *page));
      } else {
        RETURN_IF_ERROR(ConsumePageBoxed(s, *page));
      }
      if (s.memory.enabled()) RETURN_IF_ERROR(GrowFootprint(s));
    }
    return Status::OK();
  }

  Status ConsumePageKernel(LocalState& s, const Page& page) {
    size_t n = page.num_rows();
    // Load lazy columns / simplify encodings once per page; dictionaries
    // stay dictionaries (kernels gather through the indices).
    std::vector<VectorPtr> columns = page.columns();
    for (int c : key_channels_) {
      ASSIGN_OR_RETURN(columns[c], kernels::PrepareColumn(columns[c]));
    }
    for (const AggSpec& agg : aggs_) {
      for (int c : agg.arg_channels) {
        ASSIGN_OR_RETURN(columns[c], kernels::PrepareColumn(columns[c]));
      }
    }
    Page prepared(std::move(columns), n);
    s.kernel_pages += 1;
    Bump(kernel_pages_counter_, 1);
    if (s.radix_bits == 0) {
      RETURN_IF_ERROR(ConsumeIntoPartition(&s, s.parts[0], prepared,
                                           key_channels_,
                                           /*merge_mode=*/false));
      if (radix_target_bits_ > 0 &&
          s.parts[0].table->num_groups() >= kRadixUpgradeGroups) {
        RETURN_IF_ERROR(UpgradeRadix(s));
      }
      return Status::OK();
    }
    return RouteToPartitions(s, prepared, key_channels_, /*merge_mode=*/false);
  }

  // Feeds `page` into one partition's table and accumulators. In merge mode
  // the page is an intermediate-state page ([keys..., intermediates...]) and
  // every aggregate folds via MergeBatch; otherwise the page is raw input
  // and the step decides. `s` supplies reusable scratch when the caller has
  // a chain-confined state (finalize-time merges pass null).
  Status ConsumeIntoPartition(LocalState* s, KernelPartition& part,
                              const Page& page, const std::vector<int>& keys,
                              bool merge_mode) {
    size_t n = page.num_rows();
    size_t groups_before = part.table->num_groups();
    std::vector<int32_t> scratch_ids;
    std::vector<int32_t>& gids = s != nullptr ? s->group_ids : scratch_ids;
    gids.clear();
    ASSIGN_OR_RETURN(int64_t probes,
                     part.table->MapRows(page, keys,
                                         /*insert_missing=*/true,
                                         /*skip_null_keys=*/false, &gids));
    Bump(hash_probes_counter_, probes);
    Bump(groups_created_counter_,
         static_cast<int64_t>(part.table->num_groups() - groups_before));
    for (auto& g : part.grouped) g->EnsureGroups(part.table->num_groups());
    for (size_t a = 0; a < aggs_.size(); ++a) {
      if (merge_mode) {
        RETURN_IF_ERROR(part.grouped[a]->MergeBatch(
            page.column(keys.size() + a), gids.data(), n));
      } else if (step_ == AggregationStep::kFinal) {
        RETURN_IF_ERROR(part.grouped[a]->MergeBatch(
            page.column(aggs_[a].arg_channels[0]), gids.data(), n));
      } else if (aggs_[a].arg_channels.empty()) {
        RETURN_IF_ERROR(part.grouped[a]->AddBatch(nullptr, gids.data(), n));
      } else {
        RETURN_IF_ERROR(part.grouped[a]->AddBatch(
            &page.column(aggs_[a].arg_channels[0]), gids.data(), n));
      }
    }
    return Status::OK();
  }

  // Routes each row of `page` to its radix partition — the high bits of the
  // content hash, disjoint from the low bits the exchange's hash routing
  // uses — and consumes each partition's rows as a zero-copy row wrap.
  Status RouteToPartitions(LocalState& s, const Page& page,
                           const std::vector<int>& keys, bool merge_mode) {
    size_t n = page.num_rows();
    kernels::HashPage(page, keys, &s.hash_scratch);
    size_t num_parts = s.parts.size();
    s.part_rows.resize(num_parts);
    for (auto& rows : s.part_rows) rows.clear();
    int shift = 64 - s.radix_bits;
    for (size_t i = 0; i < n; ++i) {
      s.part_rows[s.hash_scratch[i] >> shift].push_back(
          static_cast<int32_t>(i));
    }
    for (size_t p = 0; p < num_parts; ++p) {
      if (s.part_rows[p].empty()) continue;
      if (s.part_rows[p].size() == n) {
        RETURN_IF_ERROR(
            ConsumeIntoPartition(&s, s.parts[p], page, keys, merge_mode));
      } else {
        Page sub = page.WrapRows(s.part_rows[p]);
        RETURN_IF_ERROR(
            ConsumeIntoPartition(&s, s.parts[p], sub, keys, merge_mode));
      }
    }
    return Status::OK();
  }

  // Builds one partition's state as a [keys..., intermediates...] page (one
  // row per group), the common currency of radix upgrade, cross-chain merge
  // and spill runs.
  Result<std::optional<Page>> BuildStatePage(KernelPartition& part) {
    size_t rows = part.table->num_groups();
    if (rows == 0) return std::optional<Page>();
    ASSIGN_OR_RETURN(std::vector<VectorPtr> columns,
                     part.table->BuildKeyColumns(key_types_));
    for (auto& g : part.grouped) {
      ASSIGN_OR_RETURN(VectorPtr column, g->Build(/*intermediate=*/true));
      columns.push_back(std::move(column));
    }
    return std::optional<Page>(Page(std::move(columns), rows));
  }

  // Once a chain's table crosses the upgrade threshold, cache misses start
  // to dominate, so the state re-hashes into 2^kRadixBits cache-sized
  // partitions. Carried groups re-enter through the intermediate-merge path:
  // each folds into a zero-initialized fresh accumulator, which is bit-exact
  // (0 + S == S), so results never depend on when the upgrade happens.
  Status UpgradeRadix(LocalState& s) {
    ASSIGN_OR_RETURN(std::optional<Page> carried, BuildStatePage(s.parts[0]));
    s.radix_bits = radix_target_bits_;
    s.parts.clear();
    for (int p = 0; p < (1 << s.radix_bits); ++p) {
      s.parts.push_back(MakePartition());
    }
    if (carried.has_value()) {
      RETURN_IF_ERROR(RouteToPartitions(s, *carried, inter_key_channels_,
                                        /*merge_mode=*/true));
    }
    return Status::OK();
  }

  // Cross-chain finalize: every chain's state folds into locals_[0]
  // partition-wise, each partition by (potentially) a different pool thread.
  // Partitions are radix-disjoint, so no two merge tasks touch the same
  // table.
  Status MergeLocalStatesKernel() {
    if (key_channels_.empty()) return MergeGlobalStatesKernel();
    int target_bits = 0;
    for (const auto& s : locals_) {
      target_bits = std::max(target_bits, s->radix_bits);
    }
    for (const auto& s : locals_) {
      if (s->radix_bits < target_bits) {
        s->radix_bits = radix_target_bits_;  // == target_bits when > 0
        std::vector<KernelPartition> old_parts = std::move(s->parts);
        s->parts.clear();
        for (int p = 0; p < (1 << s->radix_bits); ++p) {
          s->parts.push_back(MakePartition());
        }
        ASSIGN_OR_RETURN(std::optional<Page> carried,
                         BuildStatePage(old_parts[0]));
        if (carried.has_value()) {
          RETURN_IF_ERROR(RouteToPartitions(*s, *carried, inter_key_channels_,
                                            /*merge_mode=*/true));
        }
      }
    }
    size_t num_parts = locals_[0]->parts.size();
    return RunParallel(
        morsel_pool_, static_cast<int>(num_parts), [this](int p) -> Status {
          for (size_t t = 1; t < locals_.size(); ++t) {
            ASSIGN_OR_RETURN(std::optional<Page> page,
                             BuildStatePage(locals_[t]->parts[p]));
            if (!page.has_value()) continue;
            RETURN_IF_ERROR(ConsumeIntoPartition(
                nullptr, locals_[0]->parts[p], *page, inter_key_channels_,
                /*merge_mode=*/true));
          }
          return Status::OK();
        });
  }

  // Keyless (global) aggregation: each chain holds at most one group; fold
  // their intermediates into the first chain's global group.
  Status MergeGlobalStatesKernel() {
    KernelPartition& target = locals_[0]->parts[0];
    for (size_t t = 1; t < locals_.size(); ++t) {
      KernelPartition& src = locals_[t]->parts[0];
      if (src.table->num_groups() == 0) continue;
      ASSIGN_OR_RETURN(std::optional<Page> page, BuildStatePage(src));
      target.table->EnsureGlobalGroup();
      for (auto& g : target.grouped) g->EnsureGroups(target.table->num_groups());
      std::vector<int32_t> gids(page->num_rows(), 0);
      for (size_t a = 0; a < aggs_.size(); ++a) {
        RETURN_IF_ERROR(target.grouped[a]->MergeBatch(
            page->column(a), gids.data(), page->num_rows()));
      }
    }
    return Status::OK();
  }

  // After the merge, the extra chains' states are dead: drop them, release
  // their reservations, and re-reserve the first chain's (merged) footprint.
  Status SettleAfterMerge() {
    for (size_t t = 1; t < locals_.size(); ++t) {
      ResetState(*locals_[t]);
      locals_[t]->memory.ReleaseAll();
    }
    if (locals_[0]->memory.enabled()) {
      bool at_query_cap = false;
      return locals_[0]->memory.ReserveTotalWithArbiter(
          EstimateStateBytes(*locals_[0]), &at_query_cap);
    }
    return Status::OK();
  }

  void MergeLocalStatesBoxed() {
    LocalState& dst = *locals_[0];
    for (size_t t = 1; t < locals_.size(); ++t) {
      LocalState& src = *locals_[t];
      for (auto& [hash, bucket] : src.groups) {
        for (Group& group : bucket) {
          Group* target = FindBoxedGroup(dst, hash, group.keys);
          if (target == nullptr) {
            dst.groups[hash].push_back(std::move(group));
            ++dst.num_groups;
            continue;
          }
          for (size_t a = 0; a < aggs_.size(); ++a) {
            target->accumulators[a]->MergeIntermediate(
                group.accumulators[a]->Intermediate());
          }
        }
      }
      src.groups.clear();
      src.num_groups = 0;
    }
  }

  Group* FindBoxedGroup(LocalState& s, uint64_t hash,
                        const std::vector<Value>& keys) {
    auto it = s.groups.find(hash);
    if (it == s.groups.end()) return nullptr;
    for (Group& group : it->second) {
      bool equal = true;
      for (size_t k = 0; k < keys.size(); ++k) {
        if (!group.keys[k].Equals(keys[k])) {
          equal = false;
          break;
        }
      }
      if (equal) return &group;
    }
    return nullptr;
  }

  Result<std::optional<Page>> ProduceOutputKernel() {
    LocalState& s = *locals_[0];
    if (key_channels_.empty() && !global_group_ensured_) {
      // Global aggregations emit exactly one row even over empty input.
      global_group_ensured_ = true;
      s.parts[0].table->EnsureGlobalGroup();
      for (auto& g : s.parts[0].grouped) {
        g->EnsureGroups(s.parts[0].table->num_groups());
      }
    }
    while (produce_partition_ < s.parts.size()) {
      KernelPartition& part = s.parts[produce_partition_++];
      size_t rows = part.table->num_groups();
      if (rows == 0) continue;
      ASSIGN_OR_RETURN(std::vector<VectorPtr> columns,
                       part.table->BuildKeyColumns(key_types_));
      for (auto& g : part.grouped) {
        ASSIGN_OR_RETURN(
            VectorPtr column,
            g->Build(/*intermediate=*/step_ == AggregationStep::kPartial));
        columns.push_back(std::move(column));
      }
      return std::optional<Page>(Page(std::move(columns), rows));
    }
    return std::optional<Page>();
  }

  Status ConsumePageBoxed(LocalState& s, const Page& page) {
    // Flatten needed columns once per page.
    std::vector<VectorPtr> flat(page.num_columns());
    auto flat_column = [&](int c) -> Result<VectorPtr> {
      if (flat[c] == nullptr) {
        ASSIGN_OR_RETURN(flat[c], Vector::Flatten(page.column(c)));
      }
      return flat[c];
    };
    // Pre-flatten aggregate argument channels.
    std::vector<std::vector<VectorPtr>> agg_args(aggs_.size());
    for (size_t a = 0; a < aggs_.size(); ++a) {
      for (int c : aggs_[a].arg_channels) {
        ASSIGN_OR_RETURN(VectorPtr v, flat_column(c));
        agg_args[a].push_back(std::move(v));
      }
    }
    for (int c : key_channels_) {
      RETURN_IF_ERROR(flat_column(c).status());
    }
    Page flat_page(flat, page.num_rows());

    // Batch-hash the key columns (one virtual call per column per page)
    // even on the boxed path; only group lookup boxes Values.
    if (!key_channels_.empty()) {
      kernels::HashPage(flat_page, key_channels_, &s.hash_scratch);
    }
    s.fallback_pages += 1;
    Bump(fallback_pages_counter_, 1);
    size_t groups_before = s.num_groups;

    for (size_t row = 0; row < page.num_rows(); ++row) {
      uint64_t h = key_channels_.empty() ? 0 : s.hash_scratch[row];
      Group* group = FindOrCreateGroup(s, flat_page, row, h);
      for (size_t a = 0; a < aggs_.size(); ++a) {
        if (step_ == AggregationStep::kFinal) {
          group->accumulators[a]->MergeIntermediate(
              agg_args[a][0]->GetValue(row));
        } else {
          group->accumulators[a]->Add(agg_args[a], row);
        }
      }
    }
    Bump(groups_created_counter_,
         static_cast<int64_t>(s.num_groups - groups_before));
    return Status::OK();
  }

  Group* FindOrCreateGroup(LocalState& s, const Page& page, size_t row,
                           uint64_t hash) {
    auto& bucket = s.groups[hash];
    for (auto& group : bucket) {
      bool equal = true;
      for (size_t k = 0; k < key_channels_.size(); ++k) {
        if (!group.keys[k].Equals(page.column(key_channels_[k])->GetValue(row))) {
          equal = false;
          break;
        }
      }
      if (equal) return &group;
    }
    Group group;
    for (int c : key_channels_) {
      group.keys.push_back(page.column(c)->GetValue(row));
    }
    for (const AggSpec& agg : aggs_) {
      group.accumulators.push_back(agg.function->factory());
    }
    bucket.push_back(std::move(group));
    ++s.num_groups;
    return &bucket.back();
  }

  Result<std::optional<Page>> ProduceOutput() {
    LocalState& s = *locals_[0];
    // Global aggregations emit exactly one row even over empty input.
    if (key_channels_.empty() && s.num_groups == 0) {
      Group group;
      for (const AggSpec& agg : aggs_) {
        group.accumulators.push_back(agg.function->factory());
      }
      s.groups[0].push_back(std::move(group));
      ++s.num_groups;
    }
    std::vector<VectorBuilder> builders;
    for (const TypePtr& t : key_types_) builders.emplace_back(t);
    for (const AggSpec& agg : aggs_) {
      builders.emplace_back(step_ == AggregationStep::kPartial
                                ? agg.function->intermediate_type
                                : agg.output_type);
    }
    size_t rows = 0;
    for (auto& [hash, bucket] : s.groups) {
      for (Group& group : bucket) {
        for (size_t k = 0; k < group.keys.size(); ++k) {
          RETURN_IF_ERROR(builders[k].Append(group.keys[k]));
        }
        for (size_t a = 0; a < aggs_.size(); ++a) {
          Value value = step_ == AggregationStep::kPartial
                            ? group.accumulators[a]->Intermediate()
                            : group.accumulators[a]->Final();
          RETURN_IF_ERROR(builders[group.keys.size() + a].Append(value));
        }
        ++rows;
      }
    }
    if (rows == 0) return std::optional<Page>();
    std::vector<VectorPtr> columns;
    for (auto& b : builders) columns.push_back(b.Build());
    return std::optional<Page>(Page(std::move(columns), rows));
  }

  // -- Memory accounting & revocable spill ----------------------------------

  // Estimated in-memory footprint of one chain's hash table state. The
  // kernel tables self-report; grouped/boxed accumulator state is a
  // fixed-width per-group approximation.
  int64_t EstimateStateBytes(const LocalState& s) const {
    if (use_kernel_) {
      int64_t total = 0;
      for (const KernelPartition& part : s.parts) {
        total += part.table->EstimateBytes() +
                 static_cast<int64_t>(part.table->num_groups()) * 32 *
                     static_cast<int64_t>(aggs_.size() + 1);
      }
      return total;
    }
    return static_cast<int64_t>(s.num_groups) *
           (64 + 48 * static_cast<int64_t>(key_channels_.size() + aggs_.size()));
  }

  // Degradation ladder for a failed reservation: revoke self (spill the
  // chain's tables as a sorted run) when spill is enabled; otherwise a
  // query-cap failure is terminal and a worker-cap failure asks the arbiter
  // (the low-memory killer) before giving up.
  Status GrowFootprint(LocalState& s) {
    bool at_query_cap = false;
    Status st = s.memory.ReserveTotal(EstimateStateBytes(s), &at_query_cap);
    if (st.ok()) return st;
    if (spill_fs_ != nullptr) {
      RETURN_IF_ERROR(SpillPartial(s));
      return s.memory.ReserveTotalWithArbiter(EstimateStateBytes(s),
                                              &at_query_cap);
    }
    if (at_query_cap) return st;  // outgrew query_max_memory, spill disabled
    return s.memory.ReserveTotalWithArbiter(EstimateStateBytes(s),
                                            &at_query_cap);
  }

  // Materializes one chain's groups as one [keys..., intermediates...] page
  // sorted by key (nulls-first) — the run format spill and merge agree on.
  Result<std::optional<Page>> BuildIntermediatePage(LocalState& s) {
    size_t rows = 0;
    std::vector<VectorPtr> columns;
    if (use_kernel_) {
      std::vector<Page> part_pages;
      for (KernelPartition& part : s.parts) {
        ASSIGN_OR_RETURN(std::optional<Page> page, BuildStatePage(part));
        if (page.has_value()) part_pages.push_back(std::move(*page));
      }
      if (part_pages.empty()) return std::optional<Page>();
      Page merged;
      if (part_pages.size() == 1) {
        merged = std::move(part_pages[0]);
      } else {
        ASSIGN_OR_RETURN(merged, ConcatPages(run_vars_, part_pages));
      }
      rows = merged.num_rows();
      columns = merged.columns();
    } else {
      rows = s.num_groups;
      if (rows == 0) return std::optional<Page>();
      std::vector<VectorBuilder> builders;
      for (const TypePtr& t : key_types_) builders.emplace_back(t);
      for (const AggSpec& agg : aggs_) {
        builders.emplace_back(agg.function->intermediate_type);
      }
      for (auto& [hash, bucket] : s.groups) {
        for (Group& group : bucket) {
          for (size_t k = 0; k < group.keys.size(); ++k) {
            RETURN_IF_ERROR(builders[k].Append(group.keys[k]));
          }
          for (size_t a = 0; a < aggs_.size(); ++a) {
            RETURN_IF_ERROR(builders[key_channels_.size() + a].Append(
                group.accumulators[a]->Intermediate()));
          }
        }
      }
      for (auto& b : builders) columns.push_back(b.Build());
    }
    Page page(std::move(columns), rows);
    std::vector<int32_t> order(rows);
    for (size_t i = 0; i < rows; ++i) order[i] = static_cast<int32_t>(i);
    size_t num_keys = key_channels_.size();
    std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
      return CompareRunKeys(page, a, page, b, num_keys) < 0;
    });
    return std::optional<Page>(page.SliceRows(order));
  }

  // Revokes one chain: writes its sorted intermediate state as one spill
  // run, releases its accounted footprint, and starts empty tables. Sorting
  // and state rebuilding are chain-local; only the spiller append is shared
  // (and rare), so it hides behind a mutex.
  Status SpillPartial(LocalState& s) {
    ASSIGN_OR_RETURN(std::optional<Page> run, BuildIntermediatePage(s));
    if (!run.has_value()) return Status::OK();
    int64_t delta = 0;
    {
      std::lock_guard<std::mutex> lock(spill_mu_);
      if (spiller_ == nullptr) {
        spiller_ = std::make_unique<Spiller>(spill_fs_, spill_dir_, metrics_);
      }
      int64_t before = spiller_->total_bytes();
      RETURN_IF_ERROR(spiller_->SpillRun(ChunkPage(*run)));
      delta = spiller_->total_bytes() - before;
    }
    s.memory.RecordRevoked(s.memory.bytes());
    s.spilled_bytes += delta;
    s.spilled_runs += 1;
    ResetState(s);
    return Status::OK();
  }

  void ResetState(LocalState& s) {
    if (use_kernel_) {
      size_t num_parts = s.parts.size();
      s.parts.clear();
      for (size_t p = 0; p < num_parts; ++p) s.parts.push_back(MakePartition());
    } else {
      s.groups.clear();
      s.num_groups = 0;
    }
  }

  Status StartMerge() {
    // Every chain's not-yet-spilled remainder participates as its own
    // in-memory run — no extra I/O, and already within the query's cap.
    std::vector<std::vector<Page>> memory_runs;
    for (auto& s : locals_) {
      ASSIGN_OR_RETURN(std::optional<Page> last, BuildIntermediatePage(*s));
      if (last.has_value()) memory_runs.push_back(ChunkPage(*last));
    }
    ASSIGN_OR_RETURN(std::vector<std::unique_ptr<SpillFile::Reader>> readers,
                     spiller_->OpenAllRuns());
    size_t num_keys = key_channels_.size();
    merge_ = std::make_unique<SpillMergeCursor>(
        std::move(readers), std::move(memory_runs),
        [num_keys](const Page& a, size_t ar, const Page& b, size_t br) {
          return CompareRunKeys(a, ar, b, br, num_keys);
        });
    return Status::OK();
  }

  // Streaming group-merge over the sorted runs: equal-key rows are adjacent,
  // so each output group folds one run of rows through fresh accumulators
  // via MergeIntermediate, then emits Intermediate() (partial step) or
  // Final(). Output is batched into ~4096-row pages.
  Result<std::optional<Page>> NextMergedPage() {
    if (merge_done_) return std::optional<Page>();
    std::vector<VectorBuilder> builders;
    for (const TypePtr& t : key_types_) builders.emplace_back(t);
    for (const AggSpec& agg : aggs_) {
      builders.emplace_back(step_ == AggregationStep::kPartial
                                ? agg.function->intermediate_type
                                : agg.output_type);
    }
    size_t num_keys = key_channels_.size();
    size_t rows = 0;
    while (rows < 4096 && !merge_done_) {
      if (!merge_has_row_) {
        ASSIGN_OR_RETURN(merge_has_row_, merge_->Advance());
        if (!merge_has_row_) {
          merge_done_ = true;
          break;
        }
      }
      std::vector<Value> keys;
      keys.reserve(num_keys);
      for (size_t k = 0; k < num_keys; ++k) {
        keys.push_back(merge_->page().column(k)->GetValue(merge_->row()));
      }
      std::vector<std::unique_ptr<Accumulator>> accs;
      for (const AggSpec& agg : aggs_) accs.push_back(agg.function->factory());
      while (true) {
        for (size_t a = 0; a < aggs_.size(); ++a) {
          accs[a]->MergeIntermediate(
              merge_->page().column(num_keys + a)->GetValue(merge_->row()));
        }
        ASSIGN_OR_RETURN(bool more, merge_->Advance());
        if (!more) {
          merge_has_row_ = false;
          merge_done_ = true;
          break;
        }
        bool same = true;
        for (size_t k = 0; k < num_keys; ++k) {
          if (!keys[k].Equals(
                  merge_->page().column(k)->GetValue(merge_->row()))) {
            same = false;
            break;
          }
        }
        if (!same) break;  // merge_has_row_ stays true: next group starts here
      }
      for (size_t k = 0; k < num_keys; ++k) {
        RETURN_IF_ERROR(builders[k].Append(keys[k]));
      }
      for (size_t a = 0; a < aggs_.size(); ++a) {
        Value value = step_ == AggregationStep::kPartial
                          ? accs[a]->Intermediate()
                          : accs[a]->Final();
        RETURN_IF_ERROR(builders[num_keys + a].Append(value));
      }
      ++rows;
    }
    if (rows == 0) return std::optional<Page>();
    std::vector<VectorPtr> columns;
    for (auto& b : builders) columns.push_back(b.Build());
    return std::optional<Page>(Page(std::move(columns), rows));
  }

  // A chain upgrades from one table to 2^kRadixBits radix partitions once
  // it crosses kRadixUpgradeGroups groups: below that a single table fits in
  // cache and partitioning is pure overhead (a modular-key or global
  // aggregate never upgrades).
  static constexpr int kRadixBits = 5;
  static constexpr size_t kRadixUpgradeGroups = 8192;

  OperatorPtr child_;
  std::vector<OperatorPtr> extra_chains_;
  std::vector<int> key_channels_;
  std::vector<TypePtr> key_types_;
  std::vector<AggSpec> aggs_;
  AggregationStep step_;
  MetricsRegistry::Counter* kernel_pages_counter_ = nullptr;
  MetricsRegistry::Counter* fallback_pages_counter_ = nullptr;
  MetricsRegistry::Counter* hash_probes_counter_ = nullptr;
  MetricsRegistry::Counter* groups_created_counter_ = nullptr;
  MetricsRegistry::Counter* table_bytes_counter_ = nullptr;
  bool consumed_ = false;
  bool produced_ = false;  // boxed path emits one page
  bool global_group_ensured_ = false;
  size_t produce_partition_ = 0;  // kernel output cursor

  // Kernel path.
  bool use_kernel_ = false;
  std::vector<TypeKind> key_kinds_;
  std::vector<int> inter_key_channels_;  // 0..num_keys-1 (state pages)
  int radix_target_bits_ = 0;            // 0 = keyless, never partitions
  std::vector<VariablePtr> run_vars_;    // [keys..., intermediates...] types

  // Per-chain states; locals_[0] belongs to child_ and survives the merge.
  WorkStealingPool* morsel_pool_ = nullptr;
  std::vector<std::unique_ptr<LocalState>> locals_;

  // Memory accounting & spill (the spiller is shared across chains).
  MetricsRegistry* metrics_ = nullptr;
  FileSystem* spill_fs_ = nullptr;  // null = spill disabled
  std::string spill_dir_;
  std::mutex spill_mu_;
  std::unique_ptr<Spiller> spiller_;
  std::unique_ptr<SpillMergeCursor> merge_;
  bool merge_has_row_ = false;
  bool merge_done_ = false;
};

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

// Hash join for equi-criteria joins; the build (right) side is fully
// materialized into a hash table (broadcast-style).
class HashJoinOperator final : public Operator {
 public:
  /// `extra_build_chains` are replicated morsel chains for the build side
  /// (empty for a classic single-threaded task): the chains drain the shared
  /// build source in parallel, then the concatenated rows are
  /// radix-partitioned into per-partition hash tables built in parallel.
  HashJoinOperator(OperatorPtr probe, OperatorPtr build, JoinKind kind,
                   std::vector<int> probe_keys, std::vector<int> build_keys,
                   std::vector<TypePtr> probe_key_types,
                   std::vector<TypePtr> build_key_types,
                   std::vector<VariablePtr> build_vars, ExprPtr filter,
                   std::map<std::string, int> combined_layout,
                   FunctionRegistry* functions, const ExecutionLimits& limits,
                   std::vector<OperatorPtr> extra_build_chains = {})
      : probe_(std::move(probe)),
        build_(std::move(build)),
        extra_build_(std::move(extra_build_chains)),
        kind_(kind),
        probe_keys_(std::move(probe_keys)),
        build_keys_(std::move(build_keys)),
        build_vars_(std::move(build_vars)),
        filter_(std::move(filter)),
        combined_layout_(std::move(combined_layout)),
        functions_(functions),
        max_build_rows_(limits.max_join_build_rows),
        morsel_pool_(limits.morsel_pool) {
    AddChild(probe_.get());
    AddChild(build_.get());
    for (const OperatorPtr& chain : extra_build_) AddChild(chain.get());
    memory_.Init(limits, "op.HashJoin");
    if (limits.metrics != nullptr) {
      build_rows_counter_ = limits.metrics->FindOrRegister("exec.join.build_rows");
      hash_probes_counter_ =
          limits.metrics->FindOrRegister("exec.join.hash_probes");
      kernel_pages_counter_ =
          limits.metrics->FindOrRegister("exec.join.kernel_pages");
      fallback_pages_counter_ =
          limits.metrics->FindOrRegister("exec.join.fallback_pages");
      table_bytes_counter_ =
          limits.metrics->FindOrRegister("exec.join.table_bytes");
    }
    InitKernel(limits, probe_key_types, build_key_types);
  }

 protected:
  Result<std::optional<Page>> NextInternal() override {
    if (!built_) {
      RETURN_IF_ERROR(BuildTable());
      built_ = true;
      RecordPeakBuffered(null_row_index_);
      int64_t table_bytes = 0;
      for (const BuildPartition& part : parts_) {
        if (part.table != nullptr) table_bytes += part.table->EstimateBytes();
      }
      Bump(table_bytes_counter_, table_bytes);
    }
    while (true) {
      ASSIGN_OR_RETURN(std::optional<Page> page, probe_->Next());
      if (!page.has_value()) return std::optional<Page>();
      ASSIGN_OR_RETURN(std::optional<Page> out, ProbePage(*page));
      if (!out.has_value()) continue;
      return out;
    }
  }

 private:
  // Kernel eligibility is static: every build/probe key pair must share a
  // normalized representation (identical kind, or both integer-like — they
  // normalize to the same int64 bit pattern).
  void InitKernel(const ExecutionLimits& limits,
                  const std::vector<TypePtr>& probe_key_types,
                  const std::vector<TypePtr>& build_key_types) {
    if (!limits.vectorized_kernels) return;
    std::vector<TypeKind> kinds;
    kinds.reserve(build_key_types.size());
    for (size_t i = 0; i < build_key_types.size(); ++i) {
      TypeKind b = build_key_types[i]->kind();
      TypeKind p = probe_key_types[i]->kind();
      if (b != p && !(IsIntegerLike(b) && IsIntegerLike(p))) return;
      kinds.push_back(b);
    }
    if (!kernels::NormalizedKeyTable::SupportsKeyKinds(kinds)) return;
    build_key_kinds_ = std::move(kinds);
    use_kernel_ = true;
  }

  Status BuildTable() {
    // Drain the build side; with replicated morsel chains every chain
    // collects pages thread-locally and only the row/byte bookkeeping (and
    // its reservation ladder) is serialized, once per page.
    size_t num_chains = 1 + extra_build_.size();
    std::vector<std::vector<Page>> chain_pages(num_chains);
    std::mutex mu;
    int64_t build_rows = 0;   // guarded by mu when parallel
    int64_t build_bytes = 0;  // guarded by mu when parallel
    auto consume_chain = [&](int i) -> Status {
      Operator* chain = i == 0 ? build_.get() : extra_build_[i - 1].get();
      while (true) {
        ASSIGN_OR_RETURN(std::optional<Page> page, chain->Next());
        if (!page.has_value()) return Status::OK();
        int64_t page_rows = static_cast<int64_t>(page->num_rows());
        int64_t page_bytes = page->EstimateBytes();
        chain_pages[i].push_back(std::move(*page));
        std::lock_guard<std::mutex> lock(mu);
        build_rows += page_rows;
        if (build_rows > max_build_rows_) {
          // Section XII.C: the error users translate Hive/Spark queries over.
          return Status::ResourceExhausted(
              "Insufficient Resource: join build side exceeds " +
              std::to_string(max_build_rows_) +
              " rows (set session property max_join_build_rows, or rewrite "
              "the query for Presto-on-Spark)");
        }
        build_bytes += page_bytes;
        // Build tables are not revocable: a query-cap failure is terminal, a
        // worker-cap failure asks the low-memory killer before giving up.
        if (memory_.enabled()) {
          bool at_query_cap = false;
          Status st = memory_.ReserveTotal(build_bytes, &at_query_cap);
          if (!st.ok() && !at_query_cap) {
            st = memory_.ReserveTotalWithArbiter(build_bytes, &at_query_cap);
          }
          RETURN_IF_ERROR(st);
        }
      }
    };
    // As in aggregation: each build chain runs under its own kChain span
    // with the trace context installed on the executing thread.
    auto consume = [&, this](int i) -> Status {
      int64_t chain_span = 0;
      if (trace_recorder_ != nullptr) {
        chain_span = trace_recorder_->BeginSpan(
            TraceKind::kChain, "build_chain#" + std::to_string(i),
            trace_span_id_);
      }
      TraceContextScope trace_scope(trace_recorder_, chain_span);
      Status st = consume_chain(i);
      if (trace_recorder_ != nullptr) trace_recorder_->EndSpan(chain_span);
      return st;
    };
    if (num_chains == 1) {
      RETURN_IF_ERROR(consume(0));
    } else {
      RETURN_IF_ERROR(RunParallel(morsel_pool_,
                                  static_cast<int>(num_chains), consume));
    }
    std::vector<Page> pages;
    for (auto& collected : chain_pages) {
      for (Page& page : collected) pages.push_back(std::move(page));
    }
    ASSIGN_OR_RETURN(build_page_, ConcatPages(build_vars_, pages));
    // Append one all-null row used to null-extend LEFT-join misses.
    std::vector<VectorPtr> with_null;
    for (size_t c = 0; c < build_vars_.size(); ++c) {
      ASSIGN_OR_RETURN(VectorPtr null_row,
                       MakeAllNullVector(build_vars_[c]->type(), 1));
      ASSIGN_OR_RETURN(VectorPtr merged,
                       ConcatVectors(build_vars_[c]->type(),
                                     {build_page_.column(c), null_row}));
      with_null.push_back(std::move(merged));
    }
    null_row_index_ = static_cast<int32_t>(build_page_.num_rows());
    build_page_ = Page(std::move(with_null), build_page_.num_rows() + 1);
    Bump(build_rows_counter_, null_row_index_);

    if (use_kernel_) {
      // Normalized-key tables map each distinct key to a key id; duplicate
      // build rows chain through head/next_. NULL keys never enter (SQL
      // equality). Chains are threaded in reverse so traversal yields
      // ascending build-row order. Large build sides radix-partition on the
      // high bits of the content hash: each partition's table stays
      // cache-sized and the partitions build in parallel (their row sets are
      // disjoint, so the shared next_ array is written at disjoint indices).
      radix_bits_ = null_row_index_ >= (1 << 16) ? kJoinRadixBits : 0;
      if (radix_bits_ == 0) {
        parts_.resize(1);
        BuildPartition& part = parts_[0];
        part.table =
            std::make_unique<kernels::NormalizedKeyTable>(build_key_kinds_);
        std::vector<int32_t> key_ids;
        ASSIGN_OR_RETURN(int64_t probes,
                         part.table->MapRows(build_page_, build_keys_,
                                             /*insert_missing=*/true,
                                             /*skip_null_keys=*/true,
                                             &key_ids));
        Bump(hash_probes_counter_, probes);
        part.head.assign(part.table->num_groups(), -1);
        next_.assign(key_ids.size(), -1);
        for (int32_t r = null_row_index_ - 1; r >= 0; --r) {
          int32_t k = key_ids[r];
          if (k == kernels::NormalizedKeyTable::kNoGroup) continue;
          next_[r] = part.head[k];
          part.head[k] = r;
        }
        return Status::OK();
      }
      kernels::HashPage(build_page_, build_keys_, &hash_scratch_);
      parts_.clear();
      parts_.resize(static_cast<size_t>(1) << radix_bits_);
      int shift = 64 - radix_bits_;
      for (int32_t r = 0; r < null_row_index_; ++r) {
        parts_[hash_scratch_[r] >> shift].rows.push_back(r);
      }
      next_.assign(build_page_.num_rows(), -1);
      std::atomic<int64_t> total_probes{0};
      Status st = RunParallel(
          morsel_pool_, static_cast<int>(parts_.size()),
          [&](int p) -> Status {
            BuildPartition& part = parts_[p];
            part.table =
                std::make_unique<kernels::NormalizedKeyTable>(build_key_kinds_);
            if (part.rows.empty()) return Status::OK();
            Page sub = build_page_.WrapRows(part.rows);
            std::vector<int32_t> key_ids;
            ASSIGN_OR_RETURN(int64_t probes,
                             part.table->MapRows(sub, build_keys_,
                                                 /*insert_missing=*/true,
                                                 /*skip_null_keys=*/true,
                                                 &key_ids));
            total_probes.fetch_add(probes, std::memory_order_relaxed);
            part.head.assign(part.table->num_groups(), -1);
            for (size_t idx = part.rows.size(); idx-- > 0;) {
              int32_t k = key_ids[idx];
              if (k == kernels::NormalizedKeyTable::kNoGroup) continue;
              int32_t r = part.rows[idx];
              next_[r] = part.head[k];
              part.head[k] = r;
            }
            return Status::OK();
          });
      RETURN_IF_ERROR(st);
      Bump(hash_probes_counter_,
           total_probes.load(std::memory_order_relaxed));
      return Status::OK();
    }

    // Boxed fallback: batch-hash the key columns, then bucket row ids.
    kernels::HashPage(build_page_, build_keys_, &hash_scratch_);
    for (int32_t r = 0; r < null_row_index_; ++r) {
      // SQL equality: NULL keys never match anything, so they never enter
      // the table.
      bool has_null_key = false;
      for (int c : build_keys_) {
        if (build_page_.column(c)->IsNull(r)) {
          has_null_key = true;
          break;
        }
      }
      if (has_null_key) continue;
      table_[hash_scratch_[r]].push_back(r);
    }
    return Status::OK();
  }

  // Fills the matching (probe_row, build_row) pairs via the normalized-key
  // tables: one MapRows pass per touched partition, then chain traversal —
  // no per-pair RowsEqual. With radix partitioning, each probe row's chain
  // head is first scattered into match_head_ and the pairs are then emitted
  // in probe-row order, so the output is identical to the single-table path.
  Status ProbeKernel(const Page& probe_page, std::vector<int32_t>* probe_rows,
                     std::vector<int32_t>* build_rows) {
    size_t n = probe_page.num_rows();
    std::vector<VectorPtr> columns = probe_page.columns();
    for (int c : probe_keys_) {
      ASSIGN_OR_RETURN(columns[c], kernels::PrepareColumn(columns[c]));
    }
    Page prepared(std::move(columns), n);
    stats_.kernel_pages += 1;
    Bump(kernel_pages_counter_, 1);
    if (radix_bits_ == 0) {
      std::vector<int32_t> key_ids;
      ASSIGN_OR_RETURN(int64_t probes,
                       parts_[0].table->MapRows(prepared, probe_keys_,
                                                /*insert_missing=*/false,
                                                /*skip_null_keys=*/true,
                                                &key_ids));
      Bump(hash_probes_counter_, probes);
      match_head_.assign(n, -1);
      for (size_t r = 0; r < n; ++r) {
        if (key_ids[r] != kernels::NormalizedKeyTable::kNoGroup) {
          match_head_[r] = parts_[0].head[key_ids[r]];
        }
      }
    } else {
      kernels::HashPage(prepared, probe_keys_, &hash_scratch_);
      probe_part_rows_.resize(parts_.size());
      for (auto& rows : probe_part_rows_) rows.clear();
      int shift = 64 - radix_bits_;
      for (size_t r = 0; r < n; ++r) {
        probe_part_rows_[hash_scratch_[r] >> shift].push_back(
            static_cast<int32_t>(r));
      }
      match_head_.assign(n, -1);
      for (size_t p = 0; p < parts_.size(); ++p) {
        if (probe_part_rows_[p].empty() || parts_[p].head.empty()) continue;
        Page sub = prepared.WrapRows(probe_part_rows_[p]);
        std::vector<int32_t> key_ids;
        ASSIGN_OR_RETURN(int64_t probes,
                         parts_[p].table->MapRows(sub, probe_keys_,
                                                  /*insert_missing=*/false,
                                                  /*skip_null_keys=*/true,
                                                  &key_ids));
        Bump(hash_probes_counter_, probes);
        for (size_t idx = 0; idx < key_ids.size(); ++idx) {
          if (key_ids[idx] != kernels::NormalizedKeyTable::kNoGroup) {
            match_head_[probe_part_rows_[p][idx]] = parts_[p].head[key_ids[idx]];
          }
        }
      }
    }
    for (size_t r = 0; r < n; ++r) {
      size_t before = build_rows->size();
      for (int32_t b = match_head_[r]; b >= 0; b = next_[b]) {
        probe_rows->push_back(static_cast<int32_t>(r));
        build_rows->push_back(b);
      }
      if (kind_ == JoinKind::kLeft && build_rows->size() == before) {
        probe_rows->push_back(static_cast<int32_t>(r));
        build_rows->push_back(null_row_index_);
      }
    }
    return Status::OK();
  }

  Status ProbeBoxed(const Page& probe_page, std::vector<int32_t>* probe_rows,
                    std::vector<int32_t>* build_rows) {
    kernels::HashPage(probe_page, probe_keys_, &hash_scratch_);
    stats_.fallback_pages += 1;
    Bump(fallback_pages_counter_, 1);
    for (size_t r = 0; r < probe_page.num_rows(); ++r) {
      bool has_null_key = false;
      for (int c : probe_keys_) {
        if (probe_page.column(c)->IsNull(r)) {
          has_null_key = true;
          break;
        }
      }
      auto it = has_null_key ? table_.end() : table_.find(hash_scratch_[r]);
      size_t before = build_rows->size();
      if (it != table_.end()) {
        for (int32_t b : it->second) {
          if (RowsEqual(probe_page, probe_keys_, r, build_page_, build_keys_, b)) {
            probe_rows->push_back(static_cast<int32_t>(r));
            build_rows->push_back(b);
          }
        }
      }
      if (kind_ == JoinKind::kLeft && build_rows->size() == before) {
        probe_rows->push_back(static_cast<int32_t>(r));
        build_rows->push_back(null_row_index_);
      }
    }
    return Status::OK();
  }

  Result<std::optional<Page>> ProbePage(const Page& probe_page) {
    std::vector<int32_t> probe_rows, build_rows;
    if (use_kernel_) {
      RETURN_IF_ERROR(ProbeKernel(probe_page, &probe_rows, &build_rows));
    } else {
      RETURN_IF_ERROR(ProbeBoxed(probe_page, &probe_rows, &build_rows));
    }
    if (probe_rows.empty()) return std::optional<Page>();
    // Matched pairs travel as selection vectors over the shared probe page /
    // build table rather than materialized copies.
    Page probe_slice = probe_page.WrapRows(probe_rows);
    Page build_slice = build_page_.WrapRows(build_rows);
    std::vector<VectorPtr> columns = probe_slice.columns();
    for (const VectorPtr& col : build_slice.columns()) columns.push_back(col);
    Page combined(std::move(columns), probe_rows.size());

    if (filter_ == nullptr) return std::optional<Page>(std::move(combined));

    ASSIGN_OR_RETURN(std::vector<int32_t> pass,
                     EvalPredicate(*filter_, combined, combined_layout_, functions_));
    if (kind_ != JoinKind::kLeft) {
      if (pass.empty()) return std::optional<Page>();
      return std::optional<Page>(combined.WrapRows(pass));
    }
    // LEFT join: matched pairs failing the filter fall back to null rows,
    // but only when the probe row has no surviving pair.
    std::vector<uint8_t> pass_mask(combined.num_rows(), 0);
    for (int32_t p : pass) pass_mask[p] = 1;
    std::map<int32_t, int> survivors;
    for (size_t i = 0; i < probe_rows.size(); ++i) {
      if (pass_mask[i] != 0 || build_rows[i] == null_row_index_) {
        survivors[probe_rows[i]] += pass_mask[i] != 0 ? 1 : 0;
      } else {
        survivors.try_emplace(probe_rows[i], 0);
      }
    }
    std::vector<int32_t> out_rows;
    std::vector<int32_t> extra_null_probe_rows;
    for (size_t i = 0; i < probe_rows.size(); ++i) {
      if (build_rows[i] == null_row_index_) {
        out_rows.push_back(static_cast<int32_t>(i));  // already null-extended
      } else if (pass_mask[i] != 0) {
        out_rows.push_back(static_cast<int32_t>(i));
      }
    }
    for (const auto& [probe_row, count] : survivors) {
      if (count == 0) {
        // Every matched pair was filtered out: null-extend this probe row.
        bool had_null = false;
        for (size_t i = 0; i < probe_rows.size(); ++i) {
          if (probe_rows[i] == probe_row && build_rows[i] == null_row_index_) {
            had_null = true;
          }
        }
        if (!had_null) extra_null_probe_rows.push_back(probe_row);
      }
    }
    if (out_rows.empty() && extra_null_probe_rows.empty()) {
      return std::optional<Page>();
    }
    Page filtered = combined.WrapRows(out_rows);
    if (extra_null_probe_rows.empty()) {
      return std::optional<Page>(std::move(filtered));
    }
    // Assemble the extra null-extended rows and append.
    Page extra_probe = probe_page.WrapRows(extra_null_probe_rows);
    std::vector<int32_t> nulls(extra_null_probe_rows.size(), null_row_index_);
    Page extra_build = build_page_.WrapRows(nulls);
    std::vector<VectorPtr> extra_columns = extra_probe.columns();
    for (const VectorPtr& col : extra_build.columns()) {
      extra_columns.push_back(col);
    }
    Page extra(std::move(extra_columns), extra_null_probe_rows.size());
    std::vector<Page> both = {std::move(filtered), std::move(extra)};
    std::vector<VariablePtr> all_vars;  // types only
    for (size_t c = 0; c < combined.num_columns(); ++c) {
      all_vars.push_back(VariableReferenceExpression::Make(
          "c" + std::to_string(c), both[0].column(c)->type()));
    }
    ASSIGN_OR_RETURN(Page merged, ConcatPages(all_vars, both));
    return std::optional<Page>(std::move(merged));
  }

  // Build sides at or above 2^16 rows radix-partition into 2^kJoinRadixBits
  // cache-sized tables; smaller ones use a single table (partitioning small
  // builds is pure overhead).
  static constexpr int kJoinRadixBits = 4;

  /// One radix partition of the build side: its normalized-key table, the
  /// per-key chain heads, and the (ascending) build rows it owns.
  struct BuildPartition {
    std::unique_ptr<kernels::NormalizedKeyTable> table;
    std::vector<int32_t> head;
    std::vector<int32_t> rows;
  };

  OperatorPtr probe_;
  OperatorPtr build_;
  std::vector<OperatorPtr> extra_build_;
  JoinKind kind_;
  std::vector<int> probe_keys_;
  std::vector<int> build_keys_;
  std::vector<VariablePtr> build_vars_;
  ExprPtr filter_;
  std::map<std::string, int> combined_layout_;
  FunctionRegistry* functions_;
  int64_t max_build_rows_;
  WorkStealingPool* morsel_pool_ = nullptr;
  OperatorMemory memory_;
  MetricsRegistry::Counter* build_rows_counter_ = nullptr;
  MetricsRegistry::Counter* hash_probes_counter_ = nullptr;
  MetricsRegistry::Counter* kernel_pages_counter_ = nullptr;
  MetricsRegistry::Counter* fallback_pages_counter_ = nullptr;
  MetricsRegistry::Counter* table_bytes_counter_ = nullptr;

  bool built_ = false;
  Page build_page_;
  int32_t null_row_index_ = 0;

  // Kernel path: per-partition key id -> chain of build rows (head/next_),
  // ascending; next_ is global (build rows are partition-disjoint).
  bool use_kernel_ = false;
  std::vector<TypeKind> build_key_kinds_;
  int radix_bits_ = 0;
  std::vector<BuildPartition> parts_;
  std::vector<int32_t> next_;
  std::vector<int32_t> match_head_;  // per-probe-row chain head scratch
  std::vector<std::vector<int32_t>> probe_part_rows_;

  // Boxed fallback.
  std::unordered_map<uint64_t, std::vector<int32_t>> table_;
  std::vector<uint64_t> hash_scratch_;
};

// Nested-loop join for joins without equi criteria (cross joins, st_contains
// joins in their brute-force form).
class NestedLoopJoinOperator final : public Operator {
 public:
  NestedLoopJoinOperator(OperatorPtr probe, OperatorPtr build, JoinKind kind,
                         std::vector<VariablePtr> build_vars, ExprPtr filter,
                         std::map<std::string, int> combined_layout,
                         FunctionRegistry* functions,
                         const ExecutionLimits& limits)
      : probe_(std::move(probe)),
        build_(std::move(build)),
        kind_(kind),
        build_vars_(std::move(build_vars)),
        filter_(std::move(filter)),
        combined_layout_(std::move(combined_layout)),
        functions_(functions),
        max_build_rows_(limits.max_join_build_rows) {
    AddChild(probe_.get());
    AddChild(build_.get());
    memory_.Init(limits, "op.NestedLoopJoin");
  }

 protected:
  Result<std::optional<Page>> NextInternal() override {
    if (!built_) {
      std::vector<Page> pages;
      int64_t build_rows = 0;
      int64_t build_bytes = 0;
      while (true) {
        ASSIGN_OR_RETURN(std::optional<Page> page, build_->Next());
        if (!page.has_value()) break;
        build_rows += static_cast<int64_t>(page->num_rows());
        if (build_rows > max_build_rows_) {
          return Status::ResourceExhausted(
              "Insufficient Resource: join build side exceeds " +
              std::to_string(max_build_rows_) + " rows");
        }
        build_bytes += page->EstimateBytes();
        pages.push_back(std::move(*page));
        if (memory_.enabled()) {
          bool at_query_cap = false;
          Status st = memory_.ReserveTotal(build_bytes, &at_query_cap);
          if (!st.ok() && !at_query_cap) {
            st = memory_.ReserveTotalWithArbiter(build_bytes, &at_query_cap);
          }
          RETURN_IF_ERROR(st);
        }
      }
      ASSIGN_OR_RETURN(build_page_, ConcatPages(build_vars_, pages));
      built_ = true;
      RecordPeakBuffered(static_cast<int64_t>(build_page_.num_rows()));
    }
    while (true) {
      if (!current_probe_.has_value()) {
        ASSIGN_OR_RETURN(current_probe_, probe_->Next());
        if (!current_probe_.has_value()) return std::optional<Page>();
        next_build_row_ = 0;
        probe_matched_.assign(current_probe_->num_rows(), 0);
      }
      if (next_build_row_ >= build_page_.num_rows()) {
        // LEFT join: emit unmatched probe rows with a null build side.
        if (kind_ == JoinKind::kLeft) {
          std::vector<int32_t> unmatched;
          for (size_t r = 0; r < current_probe_->num_rows(); ++r) {
            if (probe_matched_[r] == 0) unmatched.push_back(static_cast<int32_t>(r));
          }
          if (!unmatched.empty()) {
            Page probe_slice = current_probe_->SliceRows(unmatched);
            std::vector<VectorPtr> columns = probe_slice.columns();
            for (const VariablePtr& v : build_vars_) {
              ASSIGN_OR_RETURN(VectorPtr nulls,
                               MakeAllNullVector(v->type(), unmatched.size()));
              columns.push_back(std::move(nulls));
            }
            current_probe_.reset();
            Page out(std::move(columns), unmatched.size());
            return std::optional<Page>(std::move(out));
          }
        }
        current_probe_.reset();
        continue;
      }
      // Pair the whole probe page with one build row, replicated without
      // copying via dictionary encoding.
      int32_t b = static_cast<int32_t>(next_build_row_++);
      size_t n = current_probe_->num_rows();
      std::vector<VectorPtr> columns = current_probe_->columns();
      for (const VectorPtr& col : build_page_.columns()) {
        columns.push_back(std::make_shared<DictionaryVector>(
            col, std::vector<int32_t>(n, b)));
      }
      Page combined(std::move(columns), n);
      std::vector<int32_t> pass;
      if (filter_ == nullptr) {
        pass.resize(n);
        for (size_t i = 0; i < n; ++i) pass[i] = static_cast<int32_t>(i);
      } else {
        ASSIGN_OR_RETURN(pass, EvalPredicate(*filter_, combined, combined_layout_,
                                             functions_));
      }
      if (pass.empty()) continue;
      for (int32_t p : pass) probe_matched_[p] = 1;
      Page out = pass.size() == n ? std::move(combined) : combined.WrapRows(pass);
      return std::optional<Page>(std::move(out));
    }
  }

 private:
  OperatorPtr probe_;
  OperatorPtr build_;
  JoinKind kind_;
  std::vector<VariablePtr> build_vars_;
  ExprPtr filter_;
  std::map<std::string, int> combined_layout_;
  FunctionRegistry* functions_;
  int64_t max_build_rows_;
  OperatorMemory memory_;

  bool built_ = false;
  Page build_page_;
  std::optional<Page> current_probe_;
  size_t next_build_row_ = 0;
  std::vector<uint8_t> probe_matched_;
};

// ---------------------------------------------------------------------------
// Sorting
// ---------------------------------------------------------------------------

class SortOperator final : public Operator {
 public:
  SortOperator(OperatorPtr child, std::vector<VariablePtr> output_vars,
               std::vector<int> channels, std::vector<bool> ascending,
               int64_t limit, const ExecutionLimits& limits)
      : child_(std::move(child)),
        output_vars_(std::move(output_vars)),
        channels_(std::move(channels)),
        ascending_(std::move(ascending)),
        limit_(limit) {
    AddChild(child_.get());
    memory_.Init(limits, "op.Sort");
    metrics_ = limits.metrics;
    if (memory_.enabled() && limits.spill_enabled &&
        limits.spill_fs != nullptr && !limits.spill_dir.empty()) {
      spill_fs_ = limits.spill_fs;
      spill_dir_ = limits.spill_dir;
    }
  }

 protected:
  Result<std::optional<Page>> NextInternal() override {
    if (!consumed_) {
      consumed_ = true;
      while (true) {
        ASSIGN_OR_RETURN(std::optional<Page> page, child_->Next());
        if (!page.has_value()) break;
        buffered_bytes_ += page->EstimateBytes();
        buffered_rows_ += static_cast<int64_t>(page->num_rows());
        RecordPeakBuffered(buffered_rows_);
        pages_.push_back(std::move(*page));
        if (memory_.enabled()) RETURN_IF_ERROR(GrowFootprint());
      }
      if (spiller_ != nullptr && spiller_->num_runs() > 0) {
        RETURN_IF_ERROR(StartMerge());
      }
    }
    if (merge_ != nullptr) return NextMergedPage();
    if (produced_) return std::optional<Page>();
    produced_ = true;
    ASSIGN_OR_RETURN(std::optional<Page> sorted, SortBuffered());
    if (!sorted.has_value()) return std::optional<Page>();
    if (limit_ >= 0 && static_cast<int64_t>(sorted->num_rows()) > limit_) {
      std::vector<int32_t> head(limit_);
      for (int64_t i = 0; i < limit_; ++i) head[i] = static_cast<int32_t>(i);
      return std::optional<Page>(sorted->SliceRows(head));
    }
    return sorted;
  }

 private:
  // Presto default null ordering: NULLS LAST for ASC, FIRST for DESC. Both
  // the in-memory sort and the spill-run merge use this exact comparator,
  // so runs written sorted merge back in the same global order.
  int CompareSortKeys(const Page& a, size_t a_row, const Page& b,
                      size_t b_row) const {
    for (size_t k = 0; k < channels_.size(); ++k) {
      const Vector& ca = *a.column(channels_[k]);
      const Vector& cb = *b.column(channels_[k]);
      bool null_a = ca.IsNull(a_row);
      bool null_b = cb.IsNull(b_row);
      if (null_a || null_b) {
        if (null_a == null_b) continue;
        bool a_first = ascending_[k] ? !null_a : null_a;
        return a_first ? -1 : 1;
      }
      int cmp = ca.CompareAt(a_row, cb, b_row);
      if (cmp != 0) {
        if (!ascending_[k]) cmp = -cmp;
        return cmp < 0 ? -1 : 1;
      }
    }
    return 0;
  }

  // Concatenates and sorts the buffered pages, consuming them. Returns
  // nullopt when nothing is buffered.
  Result<std::optional<Page>> SortBuffered() {
    ASSIGN_OR_RETURN(Page all, ConcatPages(output_vars_, pages_));
    pages_.clear();
    buffered_rows_ = 0;
    if (all.num_rows() == 0) return std::optional<Page>();
    std::vector<int32_t> order(all.num_rows());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int32_t>(i);
    std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
      return CompareSortKeys(all, a, all, b) < 0;
    });
    return std::optional<Page>(all.SliceRows(order));
  }

  // Same degradation ladder as aggregation: revoke self (spill a sorted
  // run), else fail at the query cap / arbitrate at the worker cap.
  Status GrowFootprint() {
    bool at_query_cap = false;
    Status st = memory_.ReserveTotal(buffered_bytes_, &at_query_cap);
    if (st.ok()) return st;
    if (spill_fs_ != nullptr) {
      RETURN_IF_ERROR(SpillBuffered());
      return memory_.ReserveTotalWithArbiter(buffered_bytes_, &at_query_cap);
    }
    if (at_query_cap) return st;  // outgrew query_max_memory, spill disabled
    return memory_.ReserveTotalWithArbiter(buffered_bytes_, &at_query_cap);
  }

  Status SpillBuffered() {
    ASSIGN_OR_RETURN(std::optional<Page> sorted, SortBuffered());
    if (!sorted.has_value()) return Status::OK();
    if (spiller_ == nullptr) {
      spiller_ = std::make_unique<Spiller>(spill_fs_, spill_dir_, metrics_);
    }
    int64_t before = spiller_->total_bytes();
    RETURN_IF_ERROR(spiller_->SpillRun(ChunkPage(*sorted)));
    memory_.RecordRevoked(memory_.bytes());
    RecordSpill(spiller_->total_bytes() - before);
    buffered_bytes_ = 0;
    return Status::OK();
  }

  Status StartMerge() {
    ASSIGN_OR_RETURN(std::optional<Page> last, SortBuffered());
    std::vector<Page> memory_run;
    if (last.has_value()) memory_run = ChunkPage(*last);
    ASSIGN_OR_RETURN(std::vector<std::unique_ptr<SpillFile::Reader>> readers,
                     spiller_->OpenAllRuns());
    merge_ = std::make_unique<SpillMergeCursor>(
        std::move(readers), std::move(memory_run),
        [this](const Page& a, size_t ar, const Page& b, size_t br) {
          return CompareSortKeys(a, ar, b, br);
        });
    return Status::OK();
  }

  // Emits globally ordered rows from the k-way merge in ~4096-row pages,
  // honoring limit_ across the whole output.
  Result<std::optional<Page>> NextMergedPage() {
    if (merge_done_) return std::optional<Page>();
    std::vector<VectorBuilder> builders;
    for (const VariablePtr& v : output_vars_) builders.emplace_back(v->type());
    size_t rows = 0;
    while (rows < 4096) {
      if (limit_ >= 0 && emitted_ >= limit_) {
        merge_done_ = true;
        break;
      }
      ASSIGN_OR_RETURN(bool more, merge_->Advance());
      if (!more) {
        merge_done_ = true;
        break;
      }
      for (size_t c = 0; c < output_vars_.size(); ++c) {
        RETURN_IF_ERROR(builders[c].Append(
            merge_->page().column(c)->GetValue(merge_->row())));
      }
      ++rows;
      ++emitted_;
    }
    if (rows == 0) return std::optional<Page>();
    std::vector<VectorPtr> columns;
    for (auto& b : builders) columns.push_back(b.Build());
    return std::optional<Page>(Page(std::move(columns), rows));
  }

  OperatorPtr child_;
  std::vector<VariablePtr> output_vars_;
  std::vector<int> channels_;
  std::vector<bool> ascending_;
  int64_t limit_;
  bool consumed_ = false;
  bool produced_ = false;

  std::vector<Page> pages_;
  int64_t buffered_bytes_ = 0;
  int64_t buffered_rows_ = 0;

  // Memory accounting & spill.
  MetricsRegistry* metrics_ = nullptr;
  OperatorMemory memory_;
  FileSystem* spill_fs_ = nullptr;  // null = spill disabled
  std::string spill_dir_;
  std::unique_ptr<Spiller> spiller_;
  std::unique_ptr<SpillMergeCursor> merge_;
  bool merge_done_ = false;
  int64_t emitted_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

std::map<std::string, int> MakeLayout(const std::vector<VariablePtr>& variables) {
  std::map<std::string, int> layout;
  for (size_t i = 0; i < variables.size(); ++i) {
    layout[variables[i]->name()] = static_cast<int>(i);
  }
  return layout;
}

namespace {

const char* OperatorTypeName(PlanNodeKind kind) {
  switch (kind) {
    case PlanNodeKind::kTableScan:
      return "TableScan";
    case PlanNodeKind::kValues:
      return "Values";
    case PlanNodeKind::kFilter:
      return "Filter";
    case PlanNodeKind::kProject:
      return "Project";
    case PlanNodeKind::kAggregate:
      return "HashAggregation";
    case PlanNodeKind::kJoin:
      return "Join";
    case PlanNodeKind::kSort:
      return "Sort";
    case PlanNodeKind::kTopN:
      return "TopN";
    case PlanNodeKind::kLimit:
      return "Limit";
    case PlanNodeKind::kOutput:
      return "Output";
    case PlanNodeKind::kRemoteSource:
      return "RemoteSource";
  }
  return "?";
}

}  // namespace

Result<OperatorPtr> OperatorBuilder::Build(const PlanNodePtr& node) {
  // Output is a pure passthrough with no operator of its own; the stats
  // tree borrows its source's record at render time.
  if (node->kind() == PlanNodeKind::kOutput) {
    return Build(node->sources()[0]);
  }
  ASSIGN_OR_RETURN(OperatorPtr op, BuildNode(node));
  op->SetIdentity(node->id(), OperatorTypeName(node->kind()));
  op->set_collect_stats(limits_.collect_stats);
  op->set_deadline_nanos(limits_.deadline_steady_nanos);
  op->set_kill_flag(limits_.query_killed);
  return op;
}

Result<std::shared_ptr<MorselSource>> OperatorBuilder::MakeMorselSource(
    const PlanNodePtr& node) {
  // Walk through stateless row-preserving nodes; anything stateful (limit,
  // nested aggregation/join/sort) disqualifies the subtree — replicating it
  // across chains would change semantics.
  const PlanNode* cur = node.get();
  while (cur->kind() == PlanNodeKind::kFilter ||
         cur->kind() == PlanNodeKind::kProject) {
    cur = cur->sources()[0].get();
  }
  if (cur->kind() == PlanNodeKind::kTableScan) {
    const auto* scan = static_cast<const TableScanNode*>(cur);
    if (!scan->accepted().has_value() || splits_ == nullptr ||
        splits_->empty()) {
      return std::shared_ptr<MorselSource>();
    }
    ASSIGN_OR_RETURN(Connector * connector,
                     catalogs_->GetConnector(scan->catalog()));
    return std::shared_ptr<MorselSource>(new SplitMorselSource(
        connector, *scan->accepted(), *splits_, limits_.morsel_rows));
  }
  if (cur->kind() == PlanNodeKind::kRemoteSource) {
    const auto* remote = static_cast<const RemoteSourceNode*>(cur);
    auto it = exchanges_->find(remote->fragment_id());
    if (it == exchanges_->end()) return std::shared_ptr<MorselSource>();
    int partition =
        remote->source_partitioning() == PartitioningScheme::Kind::kHash
            ? task_partition_ % it->second->num_partitions()
            : 0;
    return std::shared_ptr<MorselSource>(
        new ExchangeMorselSource(it->second, partition));
  }
  return std::shared_ptr<MorselSource>();
}

Result<std::vector<OperatorPtr>> OperatorBuilder::BuildParallelChains(
    const PlanNodePtr& node) {
  std::vector<OperatorPtr> chains;
  if (limits_.task_threads <= 1 || morsel_source_override_ != nullptr) {
    return chains;
  }
  ASSIGN_OR_RETURN(std::shared_ptr<MorselSource> source,
                   MakeMorselSource(node));
  if (source == nullptr) return chains;
  // Every chain is a full copy of the subtree sharing one morsel source, so
  // each page is processed by exactly one chain and the per-node stats of
  // the replicas sum to the single-threaded totals.
  morsel_source_override_ = std::move(source);
  for (int i = 0; i < limits_.task_threads; ++i) {
    ASSIGN_OR_RETURN(OperatorPtr chain, Build(node));
    chains.push_back(std::move(chain));
  }
  morsel_source_override_.reset();
  return chains;
}

Result<OperatorPtr> OperatorBuilder::BuildNode(const PlanNodePtr& node) {
  switch (node->kind()) {
    case PlanNodeKind::kTableScan: {
      const auto* scan = static_cast<const TableScanNode*>(node.get());
      if (!scan->accepted().has_value()) {
        return Status::Internal("table scan was not negotiated: " + scan->Label());
      }
      if (morsel_source_override_ != nullptr) {
        return OperatorPtr(new MorselScanOperator(morsel_source_override_));
      }
      if (splits_ == nullptr) {
        return Status::Internal("no splits provided for leaf fragment");
      }
      ASSIGN_OR_RETURN(Connector * connector,
                       catalogs_->GetConnector(scan->catalog()));
      return OperatorPtr(new TableScanOperator(connector, *scan->accepted(),
                                               *splits_, limits_.metrics));
    }
    case PlanNodeKind::kValues: {
      const auto* values = static_cast<const ValuesNode*>(node.get());
      return OperatorPtr(new ValuesOperator(values->OutputVariables(),
                                            &values->rows()));
    }
    case PlanNodeKind::kRemoteSource: {
      if (morsel_source_override_ != nullptr) {
        return OperatorPtr(new MorselScanOperator(morsel_source_override_));
      }
      const auto* remote = static_cast<const RemoteSourceNode*>(node.get());
      auto it = exchanges_->find(remote->fragment_id());
      if (it == exchanges_->end()) {
        return Status::Internal("no exchange for fragment " +
                                std::to_string(remote->fragment_id()));
      }
      // Hash-partitioned upstream: this task consumes its own partition of
      // the exchange; gather upstreams are single-partition.
      int partition =
          remote->source_partitioning() == PartitioningScheme::Kind::kHash
              ? task_partition_ % it->second->num_partitions()
              : 0;
      return OperatorPtr(new RemoteSourceOperator(it->second, partition));
    }
    case PlanNodeKind::kFilter: {
      const auto* filter = static_cast<const FilterNode*>(node.get());
      ASSIGN_OR_RETURN(OperatorPtr child, Build(filter->sources()[0]));
      return OperatorPtr(new FilterOperator(
          std::move(child), filter->predicate(),
          MakeLayout(filter->sources()[0]->OutputVariables()), functions_));
    }
    case PlanNodeKind::kProject: {
      const auto* project = static_cast<const ProjectNode*>(node.get());
      ASSIGN_OR_RETURN(OperatorPtr child, Build(project->sources()[0]));
      return OperatorPtr(new ProjectOperator(
          std::move(child), project->assignments(),
          MakeLayout(project->sources()[0]->OutputVariables()), functions_));
    }
    case PlanNodeKind::kLimit: {
      const auto* limit = static_cast<const LimitNode*>(node.get());
      ASSIGN_OR_RETURN(OperatorPtr child, Build(limit->sources()[0]));
      return OperatorPtr(new LimitOperator(std::move(child), limit->count()));
    }
    case PlanNodeKind::kAggregate: {
      const auto* agg = static_cast<const AggregateNode*>(node.get());
      ASSIGN_OR_RETURN(std::vector<OperatorPtr> chains,
                       BuildParallelChains(agg->sources()[0]));
      OperatorPtr child;
      if (chains.empty()) {
        ASSIGN_OR_RETURN(child, Build(agg->sources()[0]));
      } else {
        child = std::move(chains.front());
        chains.erase(chains.begin());
      }
      auto layout = MakeLayout(agg->sources()[0]->OutputVariables());
      std::vector<int> key_channels;
      std::vector<TypePtr> key_types;
      for (const VariablePtr& key : agg->group_keys()) {
        auto it = layout.find(key->name());
        if (it == layout.end()) {
          return Status::Internal("group key not in input: " + key->name());
        }
        key_channels.push_back(it->second);
        key_types.push_back(key->type());
      }
      std::vector<HashAggregationOperator::AggSpec> specs;
      for (const auto& aggregation : agg->aggregations()) {
        ASSIGN_OR_RETURN(const AggregateFunction* impl,
                         functions_->FindAggregate(aggregation.handle));
        HashAggregationOperator::AggSpec spec;
        spec.function = impl;
        spec.output_type = aggregation.output->type();
        for (const VariablePtr& arg : aggregation.arguments) {
          auto it = layout.find(arg->name());
          if (it == layout.end()) {
            return Status::Internal("aggregate argument not in input: " +
                                    arg->name());
          }
          spec.arg_channels.push_back(it->second);
        }
        specs.push_back(std::move(spec));
      }
      return OperatorPtr(new HashAggregationOperator(
          std::move(child), std::move(key_channels), std::move(key_types),
          std::move(specs), agg->step(), limits_, std::move(chains)));
    }
    case PlanNodeKind::kJoin: {
      const auto* join = static_cast<const JoinNode*>(node.get());
      ASSIGN_OR_RETURN(OperatorPtr probe, Build(join->sources()[0]));
      auto probe_layout = MakeLayout(join->sources()[0]->OutputVariables());
      auto build_layout = MakeLayout(join->sources()[1]->OutputVariables());
      auto combined_layout = MakeLayout(join->OutputVariables());
      std::vector<VariablePtr> build_vars = join->sources()[1]->OutputVariables();
      if (join->criteria().empty()) {
        ASSIGN_OR_RETURN(OperatorPtr build, Build(join->sources()[1]));
        return OperatorPtr(new NestedLoopJoinOperator(
            std::move(probe), std::move(build), join->join_kind(),
            std::move(build_vars), join->filter(), std::move(combined_layout),
            functions_, limits_));
      }
      // The build side is merge-friendly (row sets concatenate), so it may
      // consume through replicated morsel chains; the probe side streams on
      // the task thread.
      ASSIGN_OR_RETURN(std::vector<OperatorPtr> build_chains,
                       BuildParallelChains(join->sources()[1]));
      OperatorPtr build;
      if (build_chains.empty()) {
        ASSIGN_OR_RETURN(build, Build(join->sources()[1]));
      } else {
        build = std::move(build_chains.front());
        build_chains.erase(build_chains.begin());
      }
      std::vector<int> probe_keys, build_keys;
      std::vector<TypePtr> probe_key_types, build_key_types;
      for (const auto& clause : join->criteria()) {
        auto l = probe_layout.find(clause.left->name());
        auto r = build_layout.find(clause.right->name());
        if (l == probe_layout.end() || r == build_layout.end()) {
          return Status::Internal("join criteria not in inputs");
        }
        probe_keys.push_back(l->second);
        build_keys.push_back(r->second);
        probe_key_types.push_back(clause.left->type());
        build_key_types.push_back(clause.right->type());
      }
      return OperatorPtr(new HashJoinOperator(
          std::move(probe), std::move(build), join->join_kind(),
          std::move(probe_keys), std::move(build_keys),
          std::move(probe_key_types), std::move(build_key_types),
          std::move(build_vars), join->filter(), std::move(combined_layout),
          functions_, limits_, std::move(build_chains)));
    }
    case PlanNodeKind::kSort:
    case PlanNodeKind::kTopN: {
      std::vector<OrderingTerm> ordering;
      int64_t limit = -1;
      if (node->kind() == PlanNodeKind::kSort) {
        ordering = static_cast<const SortNode*>(node.get())->ordering();
      } else {
        const auto* topn = static_cast<const TopNNode*>(node.get());
        ordering = topn->ordering();
        limit = topn->count();
      }
      ASSIGN_OR_RETURN(OperatorPtr child, Build(node->sources()[0]));
      auto layout = MakeLayout(node->sources()[0]->OutputVariables());
      std::vector<int> channels;
      std::vector<bool> ascending;
      for (const OrderingTerm& term : ordering) {
        auto it = layout.find(term.variable->name());
        if (it == layout.end()) {
          return Status::Internal("sort key not in input: " + term.variable->name());
        }
        channels.push_back(it->second);
        ascending.push_back(term.ascending);
      }
      return OperatorPtr(new SortOperator(std::move(child),
                                          node->sources()[0]->OutputVariables(),
                                          std::move(channels),
                                          std::move(ascending), limit, limits_));
    }
    case PlanNodeKind::kOutput:
      return Build(node->sources()[0]);
  }
  return Status::Internal("cannot build operator for node: " + node->Label());
}

}  // namespace presto
