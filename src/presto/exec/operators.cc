#include "presto/exec/operators.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>
#include <unordered_map>

#include "presto/common/clock.h"
#include "presto/exec/kernels/kernels.h"
#include "presto/exec/spill.h"
#include "presto/vector/vector_builder.h"

namespace presto {

Result<std::optional<Page>> Operator::Next() {
  if (deadline_steady_nanos_ > 0 && SteadyNowNanos() >= deadline_steady_nanos_) {
    return Status::Unavailable(
        "query deadline exceeded (query_timeout_millis)");
  }
  if (kill_flag_ != nullptr && kill_flag_->load(std::memory_order_relaxed)) {
    return Status::ResourceExhausted(
        "Query killed: worker memory exhausted (low-memory killer)");
  }
  if (!collect_stats_) {
    // Row/page counts stay on (the engine and tests rely on rows_produced);
    // only the clock reads and byte estimation are skipped.
    ASSIGN_OR_RETURN(std::optional<Page> page, NextInternal());
    if (page.has_value()) {
      stats_.output_rows += static_cast<int64_t>(page->num_rows());
      stats_.output_pages += 1;
    }
    return page;
  }
  Stopwatch wall;
  int64_t cpu_start = CpuStopwatch::NowNanos();
  Result<std::optional<Page>> result = NextInternal();
  stats_.wall_nanos += wall.ElapsedNanos();
  stats_.cpu_nanos += CpuStopwatch::NowNanos() - cpu_start;
  if (!result.ok()) return result;
  const std::optional<Page>& page = result.value();
  if (page.has_value()) {
    stats_.output_rows += static_cast<int64_t>(page->num_rows());
    stats_.output_pages += 1;
    stats_.output_bytes += page->EstimateBytes();
  }
  return result;
}

void Operator::CollectStats(std::vector<OperatorStats>* out) const {
  OperatorStats s = stats_;
  if (children_.empty()) {
    // Leaves (scan, values, remote source) pass pages through: what they
    // read is what they emit.
    s.input_rows = s.output_rows;
    s.input_bytes = s.output_bytes;
    s.input_pages = s.output_pages;
  } else {
    for (const Operator* child : children_) {
      const OperatorStats& c = child->stats();
      s.input_rows += c.output_rows;
      s.input_bytes += c.output_bytes;
      s.input_pages += c.output_pages;
    }
  }
  s.num_instances = 1;
  out->push_back(std::move(s));
  for (const Operator* child : children_) child->CollectStats(out);
}

namespace {

// Pre-registered hot-path counter bump: a single relaxed atomic add, no
// lock or name lookup per page (counters are resolved once at operator
// construction via MetricsRegistry::FindOrRegister).
void Bump(MetricsRegistry::Counter* counter, int64_t delta) {
  if (counter != nullptr && delta != 0) counter->Add(delta);
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// Per-operator memory accounting: owns a leaf pool under the task pool and a
// running reservation equal to the operator's estimated footprint. Growing
// the footprint can fail at two capped levels of the pool tree; callers
// degrade differently per level:
//   - query user cap (session query_max_memory): the query outgrew its own
//     budget -> revoke self (spill) if enabled, else fail the query;
//   - worker cap: the whole worker is full -> ask the arbiter (the
//     coordinator's low-memory killer) to free memory elsewhere and retry.
// When limits.task_pool is null (memory_accounting=false) every call is a
// no-op, which is also the bench baseline for reservation overhead.
class OperatorMemory {
 public:
  void Init(const ExecutionLimits& limits, const std::string& name) {
    if (limits.task_pool == nullptr) return;
    pool_ = limits.task_pool->AddChild(name);
    query_user_pool_ = limits.query_user_pool;
    arbiter_ = limits.arbiter;
    query_id_ = limits.query_id;
    killed_ = limits.query_killed;
    if (limits.metrics != nullptr) {
      revoked_counter_ = limits.metrics->FindOrRegister("memory.revoked.bytes");
    }
  }

  ~OperatorMemory() { ReleaseAll(); }

  bool enabled() const { return pool_ != nullptr; }
  int64_t bytes() const { return bytes_; }

  void ReleaseAll() {
    if (pool_ != nullptr && bytes_ > 0) pool_->Release(bytes_);
    bytes_ = 0;
  }

  /// Revocation released `bytes` of previously-reserved operator state
  /// (counted once per spill, before the footprint is re-estimated).
  void RecordRevoked(int64_t bytes) { Bump(revoked_counter_, bytes); }

  /// Moves the reservation to `bytes` total. Shrinking always succeeds;
  /// growing may fail, in which case `*at_query_cap` tells whether the
  /// failure was the query's own cap (true) or the worker cap (false).
  Status ReserveTotal(int64_t bytes, bool* at_query_cap) {
    *at_query_cap = false;
    if (pool_ == nullptr) return Status::OK();
    if (bytes < 0) bytes = 0;
    if (bytes <= bytes_) {
      pool_->Release(bytes_ - bytes);
      bytes_ = bytes;
      return Status::OK();
    }
    const MemoryPool* failed = nullptr;
    Status st = pool_->Reserve(bytes - bytes_, &failed);
    if (st.ok()) {
      bytes_ = bytes;
      return st;
    }
    *at_query_cap = failed == query_user_pool_ && query_user_pool_ != nullptr;
    return st;
  }

  /// ReserveTotal plus worker-cap arbitration: on a worker-cap failure asks
  /// the arbiter (low-memory killer) to free memory and retries for up to
  /// ~2s, checking the query's own kill flag each round (the killer may pick
  /// *this* query as the victim).
  Status ReserveTotalWithArbiter(int64_t bytes, bool* at_query_cap) {
    Status st = ReserveTotal(bytes, at_query_cap);
    if (st.ok() || *at_query_cap || arbiter_ == nullptr) return st;
    for (int attempt = 0; attempt < 500; ++attempt) {
      if (killed_ != nullptr && killed_->load(std::memory_order_relaxed)) {
        return Status::ResourceExhausted(
            "Query killed: worker memory exhausted (low-memory killer)");
      }
      if (!arbiter_->OnMemoryPressure(query_id_, bytes - bytes_)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
      st = ReserveTotal(bytes, at_query_cap);
      if (st.ok() || *at_query_cap) return st;
    }
    if (killed_ != nullptr && killed_->load(std::memory_order_relaxed)) {
      return Status::ResourceExhausted(
          "Query killed: worker memory exhausted (low-memory killer)");
    }
    return st;
  }

 private:
  std::shared_ptr<MemoryPool> pool_;
  MemoryPool* query_user_pool_ = nullptr;
  MemoryArbiter* arbiter_ = nullptr;
  int64_t query_id_ = 0;
  std::shared_ptr<const std::atomic<bool>> killed_;
  MetricsRegistry::Counter* revoked_counter_ = nullptr;
  int64_t bytes_ = 0;
};

// Compares the leading `num_keys` columns of two spill-run rows with a
// nulls-first total order. GROUP BY treats NULL as an ordinary key value, so
// unlike ORDER BY there is no per-key direction — any total order works as
// long as spill and merge agree.
int CompareRunKeys(const Page& a, size_t a_row, const Page& b, size_t b_row,
                   size_t num_keys) {
  for (size_t k = 0; k < num_keys; ++k) {
    const Vector& ca = *a.column(k);
    const Vector& cb = *b.column(k);
    bool null_a = ca.IsNull(a_row);
    bool null_b = cb.IsNull(b_row);
    if (null_a || null_b) {
      if (null_a == null_b) continue;
      return null_a ? -1 : 1;
    }
    int cmp = ca.CompareAt(a_row, cb, b_row);
    if (cmp != 0) return cmp;
  }
  return 0;
}

// Splits `page` into ~4096-row slices so k-way merge readers hold bounded
// memory per run instead of one table-sized page.
std::vector<Page> ChunkPage(const Page& page, size_t chunk_rows = 4096) {
  std::vector<Page> out;
  size_t n = page.num_rows();
  for (size_t start = 0; start < n; start += chunk_rows) {
    size_t count = std::min(chunk_rows, n - start);
    std::vector<int32_t> rows(count);
    for (size_t i = 0; i < count; ++i) {
      rows[i] = static_cast<int32_t>(start + i);
    }
    out.push_back(page.SliceRows(rows));
  }
  return out;
}

// Concatenates vectors of the same type (fast paths for flat scalars).
Result<VectorPtr> ConcatVectors(const TypePtr& type,
                                const std::vector<VectorPtr>& parts) {
  if (parts.size() == 1) return parts[0];
  bool all_flat_scalar = type->IsScalar();
  for (const VectorPtr& part : parts) {
    if (part->encoding() != VectorEncoding::kFlat) all_flat_scalar = false;
  }
  if (all_flat_scalar) {
    switch (type->kind()) {
      case TypeKind::kDouble: {
        std::vector<double> values;
        std::vector<uint8_t> nulls;
        bool any_null = false;
        for (const VectorPtr& part : parts) {
          const auto* flat = static_cast<const DoubleVector*>(part.get());
          for (size_t i = 0; i < flat->size(); ++i) {
            values.push_back(flat->ValueAt(i));
            bool is_null = flat->IsNull(i);
            nulls.push_back(is_null ? 1 : 0);
            any_null = any_null || is_null;
          }
        }
        if (!any_null) nulls.clear();
        return VectorPtr(std::make_shared<DoubleVector>(type, std::move(values),
                                                        std::move(nulls)));
      }
      case TypeKind::kVarchar: {
        std::vector<std::string> values;
        std::vector<uint8_t> nulls;
        bool any_null = false;
        for (const VectorPtr& part : parts) {
          const auto* flat = static_cast<const StringVector*>(part.get());
          for (size_t i = 0; i < flat->size(); ++i) {
            values.push_back(flat->ValueAt(i));
            bool is_null = flat->IsNull(i);
            nulls.push_back(is_null ? 1 : 0);
            any_null = any_null || is_null;
          }
        }
        if (!any_null) nulls.clear();
        return VectorPtr(std::make_shared<StringVector>(type, std::move(values),
                                                        std::move(nulls)));
      }
      case TypeKind::kBoolean: {
        std::vector<uint8_t> values;
        std::vector<uint8_t> nulls;
        bool any_null = false;
        for (const VectorPtr& part : parts) {
          const auto* flat = static_cast<const BoolVector*>(part.get());
          for (size_t i = 0; i < flat->size(); ++i) {
            values.push_back(flat->ValueAt(i));
            bool is_null = flat->IsNull(i);
            nulls.push_back(is_null ? 1 : 0);
            any_null = any_null || is_null;
          }
        }
        if (!any_null) nulls.clear();
        return VectorPtr(std::make_shared<BoolVector>(type, std::move(values),
                                                      std::move(nulls)));
      }
      default: {  // integer-like
        std::vector<int64_t> values;
        std::vector<uint8_t> nulls;
        bool any_null = false;
        for (const VectorPtr& part : parts) {
          const auto* flat = static_cast<const Int64Vector*>(part.get());
          for (size_t i = 0; i < flat->size(); ++i) {
            values.push_back(flat->ValueAt(i));
            bool is_null = flat->IsNull(i);
            nulls.push_back(is_null ? 1 : 0);
            any_null = any_null || is_null;
          }
        }
        if (!any_null) nulls.clear();
        return VectorPtr(std::make_shared<Int64Vector>(type, std::move(values),
                                                       std::move(nulls)));
      }
    }
  }
  // Generic path (nested types, mixed encodings).
  VectorBuilder builder(type);
  for (const VectorPtr& part : parts) {
    for (size_t i = 0; i < part->size(); ++i) {
      RETURN_IF_ERROR(builder.Append(part->GetValue(i)));
    }
  }
  return builder.Build();
}

// Concatenates pages (types derived from the given output variables).
Result<Page> ConcatPages(const std::vector<VariablePtr>& variables,
                         const std::vector<Page>& pages) {
  size_t rows = 0;
  for (const Page& page : pages) rows += page.num_rows();
  std::vector<VectorPtr> columns;
  for (size_t c = 0; c < variables.size(); ++c) {
    std::vector<VectorPtr> parts;
    for (const Page& page : pages) {
      if (page.num_rows() == 0) continue;
      ASSIGN_OR_RETURN(VectorPtr flat, Vector::Flatten(page.column(c)));
      parts.push_back(std::move(flat));
    }
    if (parts.empty()) {
      ASSIGN_OR_RETURN(VectorPtr empty,
                       MakeAllNullVector(variables[c]->type(), 0));
      columns.push_back(std::move(empty));
    } else {
      ASSIGN_OR_RETURN(VectorPtr merged,
                       ConcatVectors(variables[c]->type(), parts));
      columns.push_back(std::move(merged));
    }
  }
  return Page(std::move(columns), rows);
}

bool RowsEqual(const Page& a, const std::vector<int>& a_channels, size_t a_row,
               const Page& b, const std::vector<int>& b_channels, size_t b_row) {
  for (size_t i = 0; i < a_channels.size(); ++i) {
    if (a.column(a_channels[i])->CompareAt(a_row, *b.column(b_channels[i]), b_row) != 0) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Leaf operators
// ---------------------------------------------------------------------------

class TableScanOperator final : public Operator {
 public:
  TableScanOperator(Connector* connector, AcceptedPushdown pushdown,
                    std::vector<SplitPtr> splits)
      : connector_(connector),
        pushdown_(std::move(pushdown)),
        splits_(std::move(splits)) {}

 protected:
  Result<std::optional<Page>> NextInternal() override {
    while (true) {
      if (source_ == nullptr) {
        if (next_split_ >= splits_.size()) return std::optional<Page>();
        ASSIGN_OR_RETURN(source_, connector_->CreatePageSource(
                                      splits_[next_split_++], pushdown_));
      }
      ASSIGN_OR_RETURN(std::optional<Page> page, source_->NextPage());
      if (!page.has_value()) {
        source_.reset();
        continue;
      }
      if (page->num_rows() == 0) continue;
      return page;
    }
  }

 private:
  Connector* connector_;
  AcceptedPushdown pushdown_;
  std::vector<SplitPtr> splits_;
  size_t next_split_ = 0;
  std::unique_ptr<ConnectorPageSource> source_;
};

class ValuesOperator final : public Operator {
 public:
  ValuesOperator(std::vector<VariablePtr> outputs,
                 const std::vector<std::vector<Value>>* rows)
      : outputs_(std::move(outputs)), rows_(rows) {}

 protected:
  Result<std::optional<Page>> NextInternal() override {
    if (done_) return std::optional<Page>();
    done_ = true;
    std::vector<VectorBuilder> builders;
    for (const VariablePtr& v : outputs_) builders.emplace_back(v->type());
    for (const auto& row : *rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        RETURN_IF_ERROR(builders[c].Append(row[c]));
      }
    }
    std::vector<VectorPtr> columns;
    for (auto& b : builders) columns.push_back(b.Build());
    return std::optional<Page>(Page(std::move(columns), rows_->size()));
  }

 private:
  std::vector<VariablePtr> outputs_;
  const std::vector<std::vector<Value>>* rows_;
  bool done_ = false;
};

class RemoteSourceOperator final : public Operator {
 public:
  RemoteSourceOperator(PartitionedExchange* exchange, int partition)
      : exchange_(exchange), partition_(partition) {}

 protected:
  Result<std::optional<Page>> NextInternal() override {
    return exchange_->Next(partition_);
  }

 private:
  PartitionedExchange* exchange_;
  int partition_;
};

// ---------------------------------------------------------------------------
// Row-preserving operators
// ---------------------------------------------------------------------------

class FilterOperator final : public Operator {
 public:
  FilterOperator(OperatorPtr child, ExprPtr predicate,
                 std::map<std::string, int> layout, FunctionRegistry* functions)
      : child_(std::move(child)),
        predicate_(std::move(predicate)),
        layout_(std::move(layout)),
        functions_(functions) {
    AddChild(child_.get());
  }

 protected:
  Result<std::optional<Page>> NextInternal() override {
    while (true) {
      ASSIGN_OR_RETURN(std::optional<Page> page, child_->Next());
      if (!page.has_value()) return std::optional<Page>();
      ASSIGN_OR_RETURN(std::vector<int32_t> rows,
                       EvalPredicate(*predicate_, *page, layout_, functions_));
      if (rows.empty()) continue;
      // Surviving rows travel as a selection vector (dictionary wrap) rather
      // than a materialized copy; lazy columns load only the selected rows.
      Page out = rows.size() == page->num_rows() ? std::move(*page)
                                                 : page->WrapRows(rows);
      return std::optional<Page>(std::move(out));
    }
  }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
  std::map<std::string, int> layout_;
  FunctionRegistry* functions_;
};

class ProjectOperator final : public Operator {
 public:
  ProjectOperator(OperatorPtr child, std::vector<ProjectNode::Assignment> assignments,
                  std::map<std::string, int> layout, FunctionRegistry* functions)
      : child_(std::move(child)),
        assignments_(std::move(assignments)),
        layout_(std::move(layout)),
        functions_(functions) {
    AddChild(child_.get());
  }

 protected:
  Result<std::optional<Page>> NextInternal() override {
    ASSIGN_OR_RETURN(std::optional<Page> page, child_->Next());
    if (!page.has_value()) return std::optional<Page>();
    std::vector<VectorPtr> columns;
    columns.reserve(assignments_.size());
    for (const ProjectNode::Assignment& a : assignments_) {
      ASSIGN_OR_RETURN(VectorPtr column,
                       Evaluator::EvalExpression(*a.expression, *page, layout_,
                                                 functions_));
      columns.push_back(std::move(column));
    }
    return std::optional<Page>(Page(std::move(columns), page->num_rows()));
  }

 private:
  OperatorPtr child_;
  std::vector<ProjectNode::Assignment> assignments_;
  std::map<std::string, int> layout_;
  FunctionRegistry* functions_;
};

class LimitOperator final : public Operator {
 public:
  LimitOperator(OperatorPtr child, int64_t count)
      : child_(std::move(child)), remaining_(count) {
    AddChild(child_.get());
  }

 protected:
  Result<std::optional<Page>> NextInternal() override {
    if (remaining_ <= 0) return std::optional<Page>();
    ASSIGN_OR_RETURN(std::optional<Page> page, child_->Next());
    if (!page.has_value()) return std::optional<Page>();
    if (static_cast<int64_t>(page->num_rows()) > remaining_) {
      std::vector<int32_t> rows(remaining_);
      for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<int32_t>(i);
      *page = page->WrapRows(rows);
    }
    remaining_ -= static_cast<int64_t>(page->num_rows());
    return page;
  }

 private:
  OperatorPtr child_;
  int64_t remaining_;
};

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

class HashAggregationOperator final : public Operator {
 public:
  struct AggSpec {
    const AggregateFunction* function;
    std::vector<int> arg_channels;
    TypePtr output_type;
  };

  HashAggregationOperator(OperatorPtr child, std::vector<int> key_channels,
                          std::vector<TypePtr> key_types,
                          std::vector<AggSpec> aggs, AggregationStep step,
                          const ExecutionLimits& limits)
      : child_(std::move(child)),
        key_channels_(std::move(key_channels)),
        key_types_(std::move(key_types)),
        aggs_(std::move(aggs)),
        step_(step) {
    AddChild(child_.get());
    if (limits.metrics != nullptr) {
      kernel_pages_counter_ =
          limits.metrics->FindOrRegister("exec.agg.kernel_pages");
      fallback_pages_counter_ =
          limits.metrics->FindOrRegister("exec.agg.fallback_pages");
      hash_probes_counter_ =
          limits.metrics->FindOrRegister("exec.agg.hash_probes");
      groups_created_counter_ =
          limits.metrics->FindOrRegister("exec.agg.groups_created");
      table_bytes_counter_ =
          limits.metrics->FindOrRegister("exec.agg.table_bytes");
    }
    InitKernel(limits);
    memory_.Init(limits, "op.HashAggregation");
    metrics_ = limits.metrics;
    if (memory_.enabled() && limits.spill_enabled &&
        limits.spill_fs != nullptr && !limits.spill_dir.empty()) {
      spill_fs_ = limits.spill_fs;
      spill_dir_ = limits.spill_dir;
    }
  }

 protected:
  Result<std::optional<Page>> NextInternal() override {
    if (!consumed_) {
      consumed_ = true;
      if (use_kernel_) {
        RETURN_IF_ERROR(ConsumeInputKernel());
        RecordPeakBuffered(static_cast<int64_t>(key_table_->num_groups()));
        Bump(table_bytes_counter_, key_table_->EstimateBytes());
      } else {
        RETURN_IF_ERROR(ConsumeInput().status());
        RecordPeakBuffered(static_cast<int64_t>(num_groups_));
      }
      if (spiller_ != nullptr && spiller_->num_runs() > 0) {
        RETURN_IF_ERROR(StartMerge());
      }
    }
    if (merge_ != nullptr) return NextMergedPage();
    if (produced_) return std::optional<Page>();
    produced_ = true;
    if (use_kernel_) return ProduceOutputKernel();
    return ProduceOutput();
  }

 private:
  struct Group {
    std::vector<Value> keys;
    std::vector<std::unique_ptr<Accumulator>> accumulators;
  };

  // The kernel path is chosen statically per operator: every key kind must
  // normalize to a fixed-width slot and every aggregate must have a grouped
  // (columnar) implementation. Otherwise the Value-boxed path runs.
  void InitKernel(const ExecutionLimits& limits) {
    if (!limits.vectorized_kernels) return;
    std::vector<TypeKind> kinds;
    kinds.reserve(key_types_.size());
    for (const TypePtr& t : key_types_) kinds.push_back(t->kind());
    if (!kernels::NormalizedKeyTable::SupportsKeyKinds(kinds)) return;
    std::vector<std::unique_ptr<kernels::GroupedAccumulator>> grouped;
    for (const AggSpec& agg : aggs_) {
      if (agg.arg_channels.size() > 1) return;
      if (step_ == AggregationStep::kFinal && agg.arg_channels.size() != 1) {
        return;
      }
      auto g = kernels::MakeGroupedAccumulator(*agg.function, agg.output_type);
      if (g == nullptr) return;
      grouped.push_back(std::move(g));
    }
    key_table_ = std::make_unique<kernels::NormalizedKeyTable>(kinds);
    key_kinds_ = std::move(kinds);  // kept to rebuild the table after a spill
    grouped_ = std::move(grouped);
    use_kernel_ = true;
  }

  Status ConsumeInputKernel() {
    while (true) {
      ASSIGN_OR_RETURN(std::optional<Page> page, child_->Next());
      if (!page.has_value()) break;
      size_t n = page->num_rows();
      // Load lazy columns / simplify encodings once per page; dictionaries
      // stay dictionaries (kernels gather through the indices).
      std::vector<VectorPtr> columns = page->columns();
      for (int c : key_channels_) {
        ASSIGN_OR_RETURN(columns[c], kernels::PrepareColumn(columns[c]));
      }
      for (const AggSpec& agg : aggs_) {
        for (int c : agg.arg_channels) {
          ASSIGN_OR_RETURN(columns[c], kernels::PrepareColumn(columns[c]));
        }
      }
      Page prepared(std::move(columns), n);

      size_t groups_before = key_table_->num_groups();
      group_ids_.clear();
      ASSIGN_OR_RETURN(int64_t probes,
                       key_table_->MapRows(prepared, key_channels_,
                                           /*insert_missing=*/true,
                                           /*skip_null_keys=*/false,
                                           &group_ids_));
      stats_.kernel_pages += 1;
      Bump(kernel_pages_counter_, 1);
      Bump(hash_probes_counter_, probes);
      Bump(groups_created_counter_,
           static_cast<int64_t>(key_table_->num_groups() - groups_before));
      for (auto& g : grouped_) g->EnsureGroups(key_table_->num_groups());
      for (size_t a = 0; a < aggs_.size(); ++a) {
        if (step_ == AggregationStep::kFinal) {
          RETURN_IF_ERROR(grouped_[a]->MergeBatch(
              prepared.column(aggs_[a].arg_channels[0]), group_ids_.data(), n));
        } else if (aggs_[a].arg_channels.empty()) {
          RETURN_IF_ERROR(grouped_[a]->AddBatch(nullptr, group_ids_.data(), n));
        } else {
          RETURN_IF_ERROR(grouped_[a]->AddBatch(
              &prepared.column(aggs_[a].arg_channels[0]), group_ids_.data(),
              n));
        }
      }
      if (memory_.enabled()) RETURN_IF_ERROR(GrowFootprint());
    }
    return Status::OK();
  }

  Result<std::optional<Page>> ProduceOutputKernel() {
    if (key_channels_.empty()) {
      // Global aggregations emit exactly one row even over empty input.
      key_table_->EnsureGlobalGroup();
      for (auto& g : grouped_) g->EnsureGroups(key_table_->num_groups());
    }
    size_t rows = key_table_->num_groups();
    if (rows == 0) return std::optional<Page>();
    ASSIGN_OR_RETURN(std::vector<VectorPtr> columns,
                     key_table_->BuildKeyColumns(key_types_));
    for (auto& g : grouped_) {
      ASSIGN_OR_RETURN(
          VectorPtr column,
          g->Build(/*intermediate=*/step_ == AggregationStep::kPartial));
      columns.push_back(std::move(column));
    }
    return std::optional<Page>(Page(std::move(columns), rows));
  }

  Result<bool> ConsumeInput() {
    while (true) {
      ASSIGN_OR_RETURN(std::optional<Page> page, child_->Next());
      if (!page.has_value()) break;
      // Flatten needed columns once per page.
      std::vector<VectorPtr> flat(page->num_columns());
      auto flat_column = [&](int c) -> Result<VectorPtr> {
        if (flat[c] == nullptr) {
          ASSIGN_OR_RETURN(flat[c], Vector::Flatten(page->column(c)));
        }
        return flat[c];
      };
      // Pre-flatten aggregate argument channels.
      std::vector<std::vector<VectorPtr>> agg_args(aggs_.size());
      for (size_t a = 0; a < aggs_.size(); ++a) {
        for (int c : aggs_[a].arg_channels) {
          ASSIGN_OR_RETURN(VectorPtr v, flat_column(c));
          agg_args[a].push_back(std::move(v));
        }
      }
      for (int c : key_channels_) {
        RETURN_IF_ERROR(flat_column(c).status());
      }
      Page flat_page(flat, page->num_rows());

      // Batch-hash the key columns (one virtual call per column per page)
      // even on the boxed path; only group lookup boxes Values.
      if (!key_channels_.empty()) {
        kernels::HashPage(flat_page, key_channels_, &hash_scratch_);
      }
      stats_.fallback_pages += 1;
      Bump(fallback_pages_counter_, 1);
      size_t groups_before = num_groups_;

      for (size_t row = 0; row < page->num_rows(); ++row) {
        uint64_t h = key_channels_.empty() ? 0 : hash_scratch_[row];
        Group* group = FindOrCreateGroup(flat_page, row, h);
        for (size_t a = 0; a < aggs_.size(); ++a) {
          if (step_ == AggregationStep::kFinal) {
            group->accumulators[a]->MergeIntermediate(
                agg_args[a][0]->GetValue(row));
          } else {
            group->accumulators[a]->Add(agg_args[a], row);
          }
        }
      }
      Bump(groups_created_counter_,
           static_cast<int64_t>(num_groups_ - groups_before));
      if (memory_.enabled()) RETURN_IF_ERROR(GrowFootprint());
    }
    return true;
  }

  Group* FindOrCreateGroup(const Page& page, size_t row, uint64_t hash) {
    auto& bucket = groups_[hash];
    for (auto& group : bucket) {
      bool equal = true;
      for (size_t k = 0; k < key_channels_.size(); ++k) {
        if (!group.keys[k].Equals(page.column(key_channels_[k])->GetValue(row))) {
          equal = false;
          break;
        }
      }
      if (equal) return &group;
    }
    Group group;
    for (int c : key_channels_) {
      group.keys.push_back(page.column(c)->GetValue(row));
    }
    for (const AggSpec& agg : aggs_) {
      group.accumulators.push_back(agg.function->factory());
    }
    bucket.push_back(std::move(group));
    ++num_groups_;
    return &bucket.back();
  }

  Result<std::optional<Page>> ProduceOutput() {
    // Global aggregations emit exactly one row even over empty input.
    if (key_channels_.empty() && num_groups_ == 0) {
      Group group;
      for (const AggSpec& agg : aggs_) {
        group.accumulators.push_back(agg.function->factory());
      }
      groups_[0].push_back(std::move(group));
      ++num_groups_;
    }
    std::vector<VectorBuilder> builders;
    for (const TypePtr& t : key_types_) builders.emplace_back(t);
    for (const AggSpec& agg : aggs_) {
      builders.emplace_back(step_ == AggregationStep::kPartial
                                ? agg.function->intermediate_type
                                : agg.output_type);
    }
    size_t rows = 0;
    for (auto& [hash, bucket] : groups_) {
      for (Group& group : bucket) {
        for (size_t k = 0; k < group.keys.size(); ++k) {
          RETURN_IF_ERROR(builders[k].Append(group.keys[k]));
        }
        for (size_t a = 0; a < aggs_.size(); ++a) {
          Value value = step_ == AggregationStep::kPartial
                            ? group.accumulators[a]->Intermediate()
                            : group.accumulators[a]->Final();
          RETURN_IF_ERROR(builders[group.keys.size() + a].Append(value));
        }
        ++rows;
      }
    }
    if (rows == 0) return std::optional<Page>();
    std::vector<VectorPtr> columns;
    for (auto& b : builders) columns.push_back(b.Build());
    return std::optional<Page>(Page(std::move(columns), rows));
  }

  // -- Memory accounting & revocable spill ----------------------------------

  // Estimated in-memory footprint of the current hash table state. The
  // kernel table self-reports; grouped/boxed accumulator state is a
  // fixed-width per-group approximation.
  int64_t EstimateTableBytes() const {
    if (use_kernel_) {
      return key_table_->EstimateBytes() +
             static_cast<int64_t>(key_table_->num_groups()) * 32 *
                 static_cast<int64_t>(aggs_.size() + 1);
    }
    return static_cast<int64_t>(num_groups_) *
           (64 + 48 * static_cast<int64_t>(key_channels_.size() + aggs_.size()));
  }

  // Degradation ladder for a failed reservation: revoke self (spill the
  // table as a sorted run) when spill is enabled; otherwise a query-cap
  // failure is terminal and a worker-cap failure asks the arbiter (the
  // low-memory killer) before giving up.
  Status GrowFootprint() {
    bool at_query_cap = false;
    Status st = memory_.ReserveTotal(EstimateTableBytes(), &at_query_cap);
    if (st.ok()) return st;
    if (spill_fs_ != nullptr) {
      RETURN_IF_ERROR(SpillPartial());
      return memory_.ReserveTotalWithArbiter(EstimateTableBytes(),
                                             &at_query_cap);
    }
    if (at_query_cap) return st;  // outgrew query_max_memory, spill disabled
    return memory_.ReserveTotalWithArbiter(EstimateTableBytes(), &at_query_cap);
  }

  // Materializes the current groups as one [keys..., intermediates...] page
  // sorted by key (nulls-first) — the run format spill and merge agree on.
  Result<std::optional<Page>> BuildIntermediatePage() {
    size_t rows = 0;
    std::vector<VectorPtr> columns;
    if (use_kernel_) {
      rows = key_table_->num_groups();
      if (rows == 0) return std::optional<Page>();
      ASSIGN_OR_RETURN(columns, key_table_->BuildKeyColumns(key_types_));
      for (auto& g : grouped_) {
        ASSIGN_OR_RETURN(VectorPtr column, g->Build(/*intermediate=*/true));
        columns.push_back(std::move(column));
      }
    } else {
      rows = num_groups_;
      if (rows == 0) return std::optional<Page>();
      std::vector<VectorBuilder> builders;
      for (const TypePtr& t : key_types_) builders.emplace_back(t);
      for (const AggSpec& agg : aggs_) {
        builders.emplace_back(agg.function->intermediate_type);
      }
      for (auto& [hash, bucket] : groups_) {
        for (Group& group : bucket) {
          for (size_t k = 0; k < group.keys.size(); ++k) {
            RETURN_IF_ERROR(builders[k].Append(group.keys[k]));
          }
          for (size_t a = 0; a < aggs_.size(); ++a) {
            RETURN_IF_ERROR(builders[key_channels_.size() + a].Append(
                group.accumulators[a]->Intermediate()));
          }
        }
      }
      for (auto& b : builders) columns.push_back(b.Build());
    }
    Page page(std::move(columns), rows);
    std::vector<int32_t> order(rows);
    for (size_t i = 0; i < rows; ++i) order[i] = static_cast<int32_t>(i);
    size_t num_keys = key_channels_.size();
    std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
      return CompareRunKeys(page, a, page, b, num_keys) < 0;
    });
    return std::optional<Page>(page.SliceRows(order));
  }

  // Revokes this operator: writes the sorted intermediate state as one spill
  // run, releases its accounted footprint, and starts an empty table.
  Status SpillPartial() {
    ASSIGN_OR_RETURN(std::optional<Page> run, BuildIntermediatePage());
    if (!run.has_value()) return Status::OK();
    if (spiller_ == nullptr) {
      spiller_ = std::make_unique<Spiller>(spill_fs_, spill_dir_, metrics_);
    }
    int64_t before = spiller_->total_bytes();
    RETURN_IF_ERROR(spiller_->SpillRun(ChunkPage(*run)));
    memory_.RecordRevoked(memory_.bytes());
    RecordSpill(spiller_->total_bytes() - before);
    ResetTable();
    return Status::OK();
  }

  void ResetTable() {
    if (use_kernel_) {
      key_table_ = std::make_unique<kernels::NormalizedKeyTable>(key_kinds_);
      std::vector<std::unique_ptr<kernels::GroupedAccumulator>> grouped;
      for (const AggSpec& agg : aggs_) {
        grouped.push_back(
            kernels::MakeGroupedAccumulator(*agg.function, agg.output_type));
      }
      grouped_ = std::move(grouped);
    } else {
      groups_.clear();
      num_groups_ = 0;
    }
  }

  Status StartMerge() {
    // The not-yet-spilled remainder participates as an in-memory run — no
    // extra I/O, and it is already within the query's cap.
    ASSIGN_OR_RETURN(std::optional<Page> last, BuildIntermediatePage());
    std::vector<Page> memory_run;
    if (last.has_value()) memory_run = ChunkPage(*last);
    ASSIGN_OR_RETURN(std::vector<std::unique_ptr<SpillFile::Reader>> readers,
                     spiller_->OpenAllRuns());
    size_t num_keys = key_channels_.size();
    merge_ = std::make_unique<SpillMergeCursor>(
        std::move(readers), std::move(memory_run),
        [num_keys](const Page& a, size_t ar, const Page& b, size_t br) {
          return CompareRunKeys(a, ar, b, br, num_keys);
        });
    return Status::OK();
  }

  // Streaming group-merge over the sorted runs: equal-key rows are adjacent,
  // so each output group folds one run of rows through fresh accumulators
  // via MergeIntermediate, then emits Intermediate() (partial step) or
  // Final(). Output is batched into ~4096-row pages.
  Result<std::optional<Page>> NextMergedPage() {
    if (merge_done_) return std::optional<Page>();
    std::vector<VectorBuilder> builders;
    for (const TypePtr& t : key_types_) builders.emplace_back(t);
    for (const AggSpec& agg : aggs_) {
      builders.emplace_back(step_ == AggregationStep::kPartial
                                ? agg.function->intermediate_type
                                : agg.output_type);
    }
    size_t num_keys = key_channels_.size();
    size_t rows = 0;
    while (rows < 4096 && !merge_done_) {
      if (!merge_has_row_) {
        ASSIGN_OR_RETURN(merge_has_row_, merge_->Advance());
        if (!merge_has_row_) {
          merge_done_ = true;
          break;
        }
      }
      std::vector<Value> keys;
      keys.reserve(num_keys);
      for (size_t k = 0; k < num_keys; ++k) {
        keys.push_back(merge_->page().column(k)->GetValue(merge_->row()));
      }
      std::vector<std::unique_ptr<Accumulator>> accs;
      for (const AggSpec& agg : aggs_) accs.push_back(agg.function->factory());
      while (true) {
        for (size_t a = 0; a < aggs_.size(); ++a) {
          accs[a]->MergeIntermediate(
              merge_->page().column(num_keys + a)->GetValue(merge_->row()));
        }
        ASSIGN_OR_RETURN(bool more, merge_->Advance());
        if (!more) {
          merge_has_row_ = false;
          merge_done_ = true;
          break;
        }
        bool same = true;
        for (size_t k = 0; k < num_keys; ++k) {
          if (!keys[k].Equals(
                  merge_->page().column(k)->GetValue(merge_->row()))) {
            same = false;
            break;
          }
        }
        if (!same) break;  // merge_has_row_ stays true: next group starts here
      }
      for (size_t k = 0; k < num_keys; ++k) {
        RETURN_IF_ERROR(builders[k].Append(keys[k]));
      }
      for (size_t a = 0; a < aggs_.size(); ++a) {
        Value value = step_ == AggregationStep::kPartial
                          ? accs[a]->Intermediate()
                          : accs[a]->Final();
        RETURN_IF_ERROR(builders[num_keys + a].Append(value));
      }
      ++rows;
    }
    if (rows == 0) return std::optional<Page>();
    std::vector<VectorPtr> columns;
    for (auto& b : builders) columns.push_back(b.Build());
    return std::optional<Page>(Page(std::move(columns), rows));
  }

  OperatorPtr child_;
  std::vector<int> key_channels_;
  std::vector<TypePtr> key_types_;
  std::vector<AggSpec> aggs_;
  AggregationStep step_;
  MetricsRegistry::Counter* kernel_pages_counter_ = nullptr;
  MetricsRegistry::Counter* fallback_pages_counter_ = nullptr;
  MetricsRegistry::Counter* hash_probes_counter_ = nullptr;
  MetricsRegistry::Counter* groups_created_counter_ = nullptr;
  MetricsRegistry::Counter* table_bytes_counter_ = nullptr;
  bool consumed_ = false;
  bool produced_ = false;

  // Kernel path.
  bool use_kernel_ = false;
  std::unique_ptr<kernels::NormalizedKeyTable> key_table_;
  std::vector<std::unique_ptr<kernels::GroupedAccumulator>> grouped_;
  std::vector<int32_t> group_ids_;  // per-page scratch
  std::vector<TypeKind> key_kinds_;

  // Boxed fallback.
  std::unordered_map<uint64_t, std::vector<Group>> groups_;
  size_t num_groups_ = 0;
  std::vector<uint64_t> hash_scratch_;

  // Memory accounting & spill.
  MetricsRegistry* metrics_ = nullptr;
  OperatorMemory memory_;
  FileSystem* spill_fs_ = nullptr;  // null = spill disabled
  std::string spill_dir_;
  std::unique_ptr<Spiller> spiller_;
  std::unique_ptr<SpillMergeCursor> merge_;
  bool merge_has_row_ = false;
  bool merge_done_ = false;
};

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

// Hash join for equi-criteria joins; the build (right) side is fully
// materialized into a hash table (broadcast-style).
class HashJoinOperator final : public Operator {
 public:
  HashJoinOperator(OperatorPtr probe, OperatorPtr build, JoinKind kind,
                   std::vector<int> probe_keys, std::vector<int> build_keys,
                   std::vector<TypePtr> probe_key_types,
                   std::vector<TypePtr> build_key_types,
                   std::vector<VariablePtr> build_vars, ExprPtr filter,
                   std::map<std::string, int> combined_layout,
                   FunctionRegistry* functions, const ExecutionLimits& limits)
      : probe_(std::move(probe)),
        build_(std::move(build)),
        kind_(kind),
        probe_keys_(std::move(probe_keys)),
        build_keys_(std::move(build_keys)),
        build_vars_(std::move(build_vars)),
        filter_(std::move(filter)),
        combined_layout_(std::move(combined_layout)),
        functions_(functions),
        max_build_rows_(limits.max_join_build_rows) {
    AddChild(probe_.get());
    AddChild(build_.get());
    memory_.Init(limits, "op.HashJoin");
    if (limits.metrics != nullptr) {
      build_rows_counter_ = limits.metrics->FindOrRegister("exec.join.build_rows");
      hash_probes_counter_ =
          limits.metrics->FindOrRegister("exec.join.hash_probes");
      kernel_pages_counter_ =
          limits.metrics->FindOrRegister("exec.join.kernel_pages");
      fallback_pages_counter_ =
          limits.metrics->FindOrRegister("exec.join.fallback_pages");
      table_bytes_counter_ =
          limits.metrics->FindOrRegister("exec.join.table_bytes");
    }
    InitKernel(limits, probe_key_types, build_key_types);
  }

 protected:
  Result<std::optional<Page>> NextInternal() override {
    if (!built_) {
      RETURN_IF_ERROR(BuildTable());
      built_ = true;
      RecordPeakBuffered(null_row_index_);
      if (key_table_ != nullptr) {
        Bump(table_bytes_counter_, key_table_->EstimateBytes());
      }
    }
    while (true) {
      ASSIGN_OR_RETURN(std::optional<Page> page, probe_->Next());
      if (!page.has_value()) return std::optional<Page>();
      ASSIGN_OR_RETURN(std::optional<Page> out, ProbePage(*page));
      if (!out.has_value()) continue;
      return out;
    }
  }

 private:
  // Kernel eligibility is static: every build/probe key pair must share a
  // normalized representation (identical kind, or both integer-like — they
  // normalize to the same int64 bit pattern).
  void InitKernel(const ExecutionLimits& limits,
                  const std::vector<TypePtr>& probe_key_types,
                  const std::vector<TypePtr>& build_key_types) {
    if (!limits.vectorized_kernels) return;
    std::vector<TypeKind> kinds;
    kinds.reserve(build_key_types.size());
    for (size_t i = 0; i < build_key_types.size(); ++i) {
      TypeKind b = build_key_types[i]->kind();
      TypeKind p = probe_key_types[i]->kind();
      if (b != p && !(IsIntegerLike(b) && IsIntegerLike(p))) return;
      kinds.push_back(b);
    }
    if (!kernels::NormalizedKeyTable::SupportsKeyKinds(kinds)) return;
    build_key_kinds_ = std::move(kinds);
    use_kernel_ = true;
  }

  Status BuildTable() {
    std::vector<Page> pages;
    int64_t build_rows = 0;
    int64_t build_bytes = 0;
    while (true) {
      ASSIGN_OR_RETURN(std::optional<Page> page, build_->Next());
      if (!page.has_value()) break;
      build_rows += static_cast<int64_t>(page->num_rows());
      if (build_rows > max_build_rows_) {
        // Section XII.C: the error users translate Hive/Spark queries over.
        return Status::ResourceExhausted(
            "Insufficient Resource: join build side exceeds " +
            std::to_string(max_build_rows_) +
            " rows (set session property max_join_build_rows, or rewrite "
            "the query for Presto-on-Spark)");
      }
      build_bytes += page->EstimateBytes();
      pages.push_back(std::move(*page));
      // Build tables are not revocable: a query-cap failure is terminal, a
      // worker-cap failure asks the low-memory killer before giving up.
      if (memory_.enabled()) {
        bool at_query_cap = false;
        Status st = memory_.ReserveTotal(build_bytes, &at_query_cap);
        if (!st.ok() && !at_query_cap) {
          st = memory_.ReserveTotalWithArbiter(build_bytes, &at_query_cap);
        }
        RETURN_IF_ERROR(st);
      }
    }
    ASSIGN_OR_RETURN(build_page_, ConcatPages(build_vars_, pages));
    // Append one all-null row used to null-extend LEFT-join misses.
    std::vector<VectorPtr> with_null;
    for (size_t c = 0; c < build_vars_.size(); ++c) {
      ASSIGN_OR_RETURN(VectorPtr null_row,
                       MakeAllNullVector(build_vars_[c]->type(), 1));
      ASSIGN_OR_RETURN(VectorPtr merged,
                       ConcatVectors(build_vars_[c]->type(),
                                     {build_page_.column(c), null_row}));
      with_null.push_back(std::move(merged));
    }
    null_row_index_ = static_cast<int32_t>(build_page_.num_rows());
    build_page_ = Page(std::move(with_null), build_page_.num_rows() + 1);
    Bump(build_rows_counter_, null_row_index_);

    if (use_kernel_) {
      // Normalized-key table maps each distinct key to a key id; duplicate
      // build rows chain through head_/next_. NULL keys never enter (SQL
      // equality). Chains are threaded in reverse so traversal yields
      // ascending build-row order.
      key_table_ =
          std::make_unique<kernels::NormalizedKeyTable>(build_key_kinds_);
      std::vector<int32_t> key_ids;
      ASSIGN_OR_RETURN(int64_t probes,
                       key_table_->MapRows(build_page_, build_keys_,
                                           /*insert_missing=*/true,
                                           /*skip_null_keys=*/true, &key_ids));
      Bump(hash_probes_counter_, probes);
      head_.assign(key_table_->num_groups(), -1);
      next_.assign(key_ids.size(), -1);
      for (int32_t r = null_row_index_ - 1; r >= 0; --r) {
        int32_t k = key_ids[r];
        if (k == kernels::NormalizedKeyTable::kNoGroup) continue;
        next_[r] = head_[k];
        head_[k] = r;
      }
      return Status::OK();
    }

    // Boxed fallback: batch-hash the key columns, then bucket row ids.
    kernels::HashPage(build_page_, build_keys_, &hash_scratch_);
    for (int32_t r = 0; r < null_row_index_; ++r) {
      // SQL equality: NULL keys never match anything, so they never enter
      // the table.
      bool has_null_key = false;
      for (int c : build_keys_) {
        if (build_page_.column(c)->IsNull(r)) {
          has_null_key = true;
          break;
        }
      }
      if (has_null_key) continue;
      table_[hash_scratch_[r]].push_back(r);
    }
    return Status::OK();
  }

  // Fills the matching (probe_row, build_row) pairs via the normalized-key
  // table: one MapRows pass over the page, then chain traversal — no
  // per-pair RowsEqual.
  Status ProbeKernel(const Page& probe_page, std::vector<int32_t>* probe_rows,
                     std::vector<int32_t>* build_rows) {
    std::vector<VectorPtr> columns = probe_page.columns();
    for (int c : probe_keys_) {
      ASSIGN_OR_RETURN(columns[c], kernels::PrepareColumn(columns[c]));
    }
    Page prepared(std::move(columns), probe_page.num_rows());
    std::vector<int32_t> key_ids;
    ASSIGN_OR_RETURN(int64_t probes,
                     key_table_->MapRows(prepared, probe_keys_,
                                         /*insert_missing=*/false,
                                         /*skip_null_keys=*/true, &key_ids));
    stats_.kernel_pages += 1;
    Bump(kernel_pages_counter_, 1);
    Bump(hash_probes_counter_, probes);
    for (size_t r = 0; r < key_ids.size(); ++r) {
      size_t before = build_rows->size();
      if (key_ids[r] != kernels::NormalizedKeyTable::kNoGroup) {
        for (int32_t b = head_[key_ids[r]]; b >= 0; b = next_[b]) {
          probe_rows->push_back(static_cast<int32_t>(r));
          build_rows->push_back(b);
        }
      }
      if (kind_ == JoinKind::kLeft && build_rows->size() == before) {
        probe_rows->push_back(static_cast<int32_t>(r));
        build_rows->push_back(null_row_index_);
      }
    }
    return Status::OK();
  }

  Status ProbeBoxed(const Page& probe_page, std::vector<int32_t>* probe_rows,
                    std::vector<int32_t>* build_rows) {
    kernels::HashPage(probe_page, probe_keys_, &hash_scratch_);
    stats_.fallback_pages += 1;
    Bump(fallback_pages_counter_, 1);
    for (size_t r = 0; r < probe_page.num_rows(); ++r) {
      bool has_null_key = false;
      for (int c : probe_keys_) {
        if (probe_page.column(c)->IsNull(r)) {
          has_null_key = true;
          break;
        }
      }
      auto it = has_null_key ? table_.end() : table_.find(hash_scratch_[r]);
      size_t before = build_rows->size();
      if (it != table_.end()) {
        for (int32_t b : it->second) {
          if (RowsEqual(probe_page, probe_keys_, r, build_page_, build_keys_, b)) {
            probe_rows->push_back(static_cast<int32_t>(r));
            build_rows->push_back(b);
          }
        }
      }
      if (kind_ == JoinKind::kLeft && build_rows->size() == before) {
        probe_rows->push_back(static_cast<int32_t>(r));
        build_rows->push_back(null_row_index_);
      }
    }
    return Status::OK();
  }

  Result<std::optional<Page>> ProbePage(const Page& probe_page) {
    std::vector<int32_t> probe_rows, build_rows;
    if (use_kernel_) {
      RETURN_IF_ERROR(ProbeKernel(probe_page, &probe_rows, &build_rows));
    } else {
      RETURN_IF_ERROR(ProbeBoxed(probe_page, &probe_rows, &build_rows));
    }
    if (probe_rows.empty()) return std::optional<Page>();
    // Matched pairs travel as selection vectors over the shared probe page /
    // build table rather than materialized copies.
    Page probe_slice = probe_page.WrapRows(probe_rows);
    Page build_slice = build_page_.WrapRows(build_rows);
    std::vector<VectorPtr> columns = probe_slice.columns();
    for (const VectorPtr& col : build_slice.columns()) columns.push_back(col);
    Page combined(std::move(columns), probe_rows.size());

    if (filter_ == nullptr) return std::optional<Page>(std::move(combined));

    ASSIGN_OR_RETURN(std::vector<int32_t> pass,
                     EvalPredicate(*filter_, combined, combined_layout_, functions_));
    if (kind_ != JoinKind::kLeft) {
      if (pass.empty()) return std::optional<Page>();
      return std::optional<Page>(combined.WrapRows(pass));
    }
    // LEFT join: matched pairs failing the filter fall back to null rows,
    // but only when the probe row has no surviving pair.
    std::vector<uint8_t> pass_mask(combined.num_rows(), 0);
    for (int32_t p : pass) pass_mask[p] = 1;
    std::map<int32_t, int> survivors;
    for (size_t i = 0; i < probe_rows.size(); ++i) {
      if (pass_mask[i] != 0 || build_rows[i] == null_row_index_) {
        survivors[probe_rows[i]] += pass_mask[i] != 0 ? 1 : 0;
      } else {
        survivors.try_emplace(probe_rows[i], 0);
      }
    }
    std::vector<int32_t> out_rows;
    std::vector<int32_t> extra_null_probe_rows;
    for (size_t i = 0; i < probe_rows.size(); ++i) {
      if (build_rows[i] == null_row_index_) {
        out_rows.push_back(static_cast<int32_t>(i));  // already null-extended
      } else if (pass_mask[i] != 0) {
        out_rows.push_back(static_cast<int32_t>(i));
      }
    }
    for (const auto& [probe_row, count] : survivors) {
      if (count == 0) {
        // Every matched pair was filtered out: null-extend this probe row.
        bool had_null = false;
        for (size_t i = 0; i < probe_rows.size(); ++i) {
          if (probe_rows[i] == probe_row && build_rows[i] == null_row_index_) {
            had_null = true;
          }
        }
        if (!had_null) extra_null_probe_rows.push_back(probe_row);
      }
    }
    if (out_rows.empty() && extra_null_probe_rows.empty()) {
      return std::optional<Page>();
    }
    Page filtered = combined.WrapRows(out_rows);
    if (extra_null_probe_rows.empty()) {
      return std::optional<Page>(std::move(filtered));
    }
    // Assemble the extra null-extended rows and append.
    Page extra_probe = probe_page.WrapRows(extra_null_probe_rows);
    std::vector<int32_t> nulls(extra_null_probe_rows.size(), null_row_index_);
    Page extra_build = build_page_.WrapRows(nulls);
    std::vector<VectorPtr> extra_columns = extra_probe.columns();
    for (const VectorPtr& col : extra_build.columns()) {
      extra_columns.push_back(col);
    }
    Page extra(std::move(extra_columns), extra_null_probe_rows.size());
    std::vector<Page> both = {std::move(filtered), std::move(extra)};
    std::vector<VariablePtr> all_vars;  // types only
    for (size_t c = 0; c < combined.num_columns(); ++c) {
      all_vars.push_back(VariableReferenceExpression::Make(
          "c" + std::to_string(c), both[0].column(c)->type()));
    }
    ASSIGN_OR_RETURN(Page merged, ConcatPages(all_vars, both));
    return std::optional<Page>(std::move(merged));
  }

  OperatorPtr probe_;
  OperatorPtr build_;
  JoinKind kind_;
  std::vector<int> probe_keys_;
  std::vector<int> build_keys_;
  std::vector<VariablePtr> build_vars_;
  ExprPtr filter_;
  std::map<std::string, int> combined_layout_;
  FunctionRegistry* functions_;
  int64_t max_build_rows_;
  OperatorMemory memory_;
  MetricsRegistry::Counter* build_rows_counter_ = nullptr;
  MetricsRegistry::Counter* hash_probes_counter_ = nullptr;
  MetricsRegistry::Counter* kernel_pages_counter_ = nullptr;
  MetricsRegistry::Counter* fallback_pages_counter_ = nullptr;
  MetricsRegistry::Counter* table_bytes_counter_ = nullptr;

  bool built_ = false;
  Page build_page_;
  int32_t null_row_index_ = 0;

  // Kernel path: key id -> chain of build rows (head_/next_), ascending.
  bool use_kernel_ = false;
  std::vector<TypeKind> build_key_kinds_;
  std::unique_ptr<kernels::NormalizedKeyTable> key_table_;
  std::vector<int32_t> head_;
  std::vector<int32_t> next_;

  // Boxed fallback.
  std::unordered_map<uint64_t, std::vector<int32_t>> table_;
  std::vector<uint64_t> hash_scratch_;
};

// Nested-loop join for joins without equi criteria (cross joins, st_contains
// joins in their brute-force form).
class NestedLoopJoinOperator final : public Operator {
 public:
  NestedLoopJoinOperator(OperatorPtr probe, OperatorPtr build, JoinKind kind,
                         std::vector<VariablePtr> build_vars, ExprPtr filter,
                         std::map<std::string, int> combined_layout,
                         FunctionRegistry* functions,
                         const ExecutionLimits& limits)
      : probe_(std::move(probe)),
        build_(std::move(build)),
        kind_(kind),
        build_vars_(std::move(build_vars)),
        filter_(std::move(filter)),
        combined_layout_(std::move(combined_layout)),
        functions_(functions),
        max_build_rows_(limits.max_join_build_rows) {
    AddChild(probe_.get());
    AddChild(build_.get());
    memory_.Init(limits, "op.NestedLoopJoin");
  }

 protected:
  Result<std::optional<Page>> NextInternal() override {
    if (!built_) {
      std::vector<Page> pages;
      int64_t build_rows = 0;
      int64_t build_bytes = 0;
      while (true) {
        ASSIGN_OR_RETURN(std::optional<Page> page, build_->Next());
        if (!page.has_value()) break;
        build_rows += static_cast<int64_t>(page->num_rows());
        if (build_rows > max_build_rows_) {
          return Status::ResourceExhausted(
              "Insufficient Resource: join build side exceeds " +
              std::to_string(max_build_rows_) + " rows");
        }
        build_bytes += page->EstimateBytes();
        pages.push_back(std::move(*page));
        if (memory_.enabled()) {
          bool at_query_cap = false;
          Status st = memory_.ReserveTotal(build_bytes, &at_query_cap);
          if (!st.ok() && !at_query_cap) {
            st = memory_.ReserveTotalWithArbiter(build_bytes, &at_query_cap);
          }
          RETURN_IF_ERROR(st);
        }
      }
      ASSIGN_OR_RETURN(build_page_, ConcatPages(build_vars_, pages));
      built_ = true;
      RecordPeakBuffered(static_cast<int64_t>(build_page_.num_rows()));
    }
    while (true) {
      if (!current_probe_.has_value()) {
        ASSIGN_OR_RETURN(current_probe_, probe_->Next());
        if (!current_probe_.has_value()) return std::optional<Page>();
        next_build_row_ = 0;
        probe_matched_.assign(current_probe_->num_rows(), 0);
      }
      if (next_build_row_ >= build_page_.num_rows()) {
        // LEFT join: emit unmatched probe rows with a null build side.
        if (kind_ == JoinKind::kLeft) {
          std::vector<int32_t> unmatched;
          for (size_t r = 0; r < current_probe_->num_rows(); ++r) {
            if (probe_matched_[r] == 0) unmatched.push_back(static_cast<int32_t>(r));
          }
          if (!unmatched.empty()) {
            Page probe_slice = current_probe_->SliceRows(unmatched);
            std::vector<VectorPtr> columns = probe_slice.columns();
            for (const VariablePtr& v : build_vars_) {
              ASSIGN_OR_RETURN(VectorPtr nulls,
                               MakeAllNullVector(v->type(), unmatched.size()));
              columns.push_back(std::move(nulls));
            }
            current_probe_.reset();
            Page out(std::move(columns), unmatched.size());
            return std::optional<Page>(std::move(out));
          }
        }
        current_probe_.reset();
        continue;
      }
      // Pair the whole probe page with one build row, replicated without
      // copying via dictionary encoding.
      int32_t b = static_cast<int32_t>(next_build_row_++);
      size_t n = current_probe_->num_rows();
      std::vector<VectorPtr> columns = current_probe_->columns();
      for (const VectorPtr& col : build_page_.columns()) {
        columns.push_back(std::make_shared<DictionaryVector>(
            col, std::vector<int32_t>(n, b)));
      }
      Page combined(std::move(columns), n);
      std::vector<int32_t> pass;
      if (filter_ == nullptr) {
        pass.resize(n);
        for (size_t i = 0; i < n; ++i) pass[i] = static_cast<int32_t>(i);
      } else {
        ASSIGN_OR_RETURN(pass, EvalPredicate(*filter_, combined, combined_layout_,
                                             functions_));
      }
      if (pass.empty()) continue;
      for (int32_t p : pass) probe_matched_[p] = 1;
      Page out = pass.size() == n ? std::move(combined) : combined.WrapRows(pass);
      return std::optional<Page>(std::move(out));
    }
  }

 private:
  OperatorPtr probe_;
  OperatorPtr build_;
  JoinKind kind_;
  std::vector<VariablePtr> build_vars_;
  ExprPtr filter_;
  std::map<std::string, int> combined_layout_;
  FunctionRegistry* functions_;
  int64_t max_build_rows_;
  OperatorMemory memory_;

  bool built_ = false;
  Page build_page_;
  std::optional<Page> current_probe_;
  size_t next_build_row_ = 0;
  std::vector<uint8_t> probe_matched_;
};

// ---------------------------------------------------------------------------
// Sorting
// ---------------------------------------------------------------------------

class SortOperator final : public Operator {
 public:
  SortOperator(OperatorPtr child, std::vector<VariablePtr> output_vars,
               std::vector<int> channels, std::vector<bool> ascending,
               int64_t limit, const ExecutionLimits& limits)
      : child_(std::move(child)),
        output_vars_(std::move(output_vars)),
        channels_(std::move(channels)),
        ascending_(std::move(ascending)),
        limit_(limit) {
    AddChild(child_.get());
    memory_.Init(limits, "op.Sort");
    metrics_ = limits.metrics;
    if (memory_.enabled() && limits.spill_enabled &&
        limits.spill_fs != nullptr && !limits.spill_dir.empty()) {
      spill_fs_ = limits.spill_fs;
      spill_dir_ = limits.spill_dir;
    }
  }

 protected:
  Result<std::optional<Page>> NextInternal() override {
    if (!consumed_) {
      consumed_ = true;
      while (true) {
        ASSIGN_OR_RETURN(std::optional<Page> page, child_->Next());
        if (!page.has_value()) break;
        buffered_bytes_ += page->EstimateBytes();
        buffered_rows_ += static_cast<int64_t>(page->num_rows());
        RecordPeakBuffered(buffered_rows_);
        pages_.push_back(std::move(*page));
        if (memory_.enabled()) RETURN_IF_ERROR(GrowFootprint());
      }
      if (spiller_ != nullptr && spiller_->num_runs() > 0) {
        RETURN_IF_ERROR(StartMerge());
      }
    }
    if (merge_ != nullptr) return NextMergedPage();
    if (produced_) return std::optional<Page>();
    produced_ = true;
    ASSIGN_OR_RETURN(std::optional<Page> sorted, SortBuffered());
    if (!sorted.has_value()) return std::optional<Page>();
    if (limit_ >= 0 && static_cast<int64_t>(sorted->num_rows()) > limit_) {
      std::vector<int32_t> head(limit_);
      for (int64_t i = 0; i < limit_; ++i) head[i] = static_cast<int32_t>(i);
      return std::optional<Page>(sorted->SliceRows(head));
    }
    return sorted;
  }

 private:
  // Presto default null ordering: NULLS LAST for ASC, FIRST for DESC. Both
  // the in-memory sort and the spill-run merge use this exact comparator,
  // so runs written sorted merge back in the same global order.
  int CompareSortKeys(const Page& a, size_t a_row, const Page& b,
                      size_t b_row) const {
    for (size_t k = 0; k < channels_.size(); ++k) {
      const Vector& ca = *a.column(channels_[k]);
      const Vector& cb = *b.column(channels_[k]);
      bool null_a = ca.IsNull(a_row);
      bool null_b = cb.IsNull(b_row);
      if (null_a || null_b) {
        if (null_a == null_b) continue;
        bool a_first = ascending_[k] ? !null_a : null_a;
        return a_first ? -1 : 1;
      }
      int cmp = ca.CompareAt(a_row, cb, b_row);
      if (cmp != 0) {
        if (!ascending_[k]) cmp = -cmp;
        return cmp < 0 ? -1 : 1;
      }
    }
    return 0;
  }

  // Concatenates and sorts the buffered pages, consuming them. Returns
  // nullopt when nothing is buffered.
  Result<std::optional<Page>> SortBuffered() {
    ASSIGN_OR_RETURN(Page all, ConcatPages(output_vars_, pages_));
    pages_.clear();
    buffered_rows_ = 0;
    if (all.num_rows() == 0) return std::optional<Page>();
    std::vector<int32_t> order(all.num_rows());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int32_t>(i);
    std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
      return CompareSortKeys(all, a, all, b) < 0;
    });
    return std::optional<Page>(all.SliceRows(order));
  }

  // Same degradation ladder as aggregation: revoke self (spill a sorted
  // run), else fail at the query cap / arbitrate at the worker cap.
  Status GrowFootprint() {
    bool at_query_cap = false;
    Status st = memory_.ReserveTotal(buffered_bytes_, &at_query_cap);
    if (st.ok()) return st;
    if (spill_fs_ != nullptr) {
      RETURN_IF_ERROR(SpillBuffered());
      return memory_.ReserveTotalWithArbiter(buffered_bytes_, &at_query_cap);
    }
    if (at_query_cap) return st;  // outgrew query_max_memory, spill disabled
    return memory_.ReserveTotalWithArbiter(buffered_bytes_, &at_query_cap);
  }

  Status SpillBuffered() {
    ASSIGN_OR_RETURN(std::optional<Page> sorted, SortBuffered());
    if (!sorted.has_value()) return Status::OK();
    if (spiller_ == nullptr) {
      spiller_ = std::make_unique<Spiller>(spill_fs_, spill_dir_, metrics_);
    }
    int64_t before = spiller_->total_bytes();
    RETURN_IF_ERROR(spiller_->SpillRun(ChunkPage(*sorted)));
    memory_.RecordRevoked(memory_.bytes());
    RecordSpill(spiller_->total_bytes() - before);
    buffered_bytes_ = 0;
    return Status::OK();
  }

  Status StartMerge() {
    ASSIGN_OR_RETURN(std::optional<Page> last, SortBuffered());
    std::vector<Page> memory_run;
    if (last.has_value()) memory_run = ChunkPage(*last);
    ASSIGN_OR_RETURN(std::vector<std::unique_ptr<SpillFile::Reader>> readers,
                     spiller_->OpenAllRuns());
    merge_ = std::make_unique<SpillMergeCursor>(
        std::move(readers), std::move(memory_run),
        [this](const Page& a, size_t ar, const Page& b, size_t br) {
          return CompareSortKeys(a, ar, b, br);
        });
    return Status::OK();
  }

  // Emits globally ordered rows from the k-way merge in ~4096-row pages,
  // honoring limit_ across the whole output.
  Result<std::optional<Page>> NextMergedPage() {
    if (merge_done_) return std::optional<Page>();
    std::vector<VectorBuilder> builders;
    for (const VariablePtr& v : output_vars_) builders.emplace_back(v->type());
    size_t rows = 0;
    while (rows < 4096) {
      if (limit_ >= 0 && emitted_ >= limit_) {
        merge_done_ = true;
        break;
      }
      ASSIGN_OR_RETURN(bool more, merge_->Advance());
      if (!more) {
        merge_done_ = true;
        break;
      }
      for (size_t c = 0; c < output_vars_.size(); ++c) {
        RETURN_IF_ERROR(builders[c].Append(
            merge_->page().column(c)->GetValue(merge_->row())));
      }
      ++rows;
      ++emitted_;
    }
    if (rows == 0) return std::optional<Page>();
    std::vector<VectorPtr> columns;
    for (auto& b : builders) columns.push_back(b.Build());
    return std::optional<Page>(Page(std::move(columns), rows));
  }

  OperatorPtr child_;
  std::vector<VariablePtr> output_vars_;
  std::vector<int> channels_;
  std::vector<bool> ascending_;
  int64_t limit_;
  bool consumed_ = false;
  bool produced_ = false;

  std::vector<Page> pages_;
  int64_t buffered_bytes_ = 0;
  int64_t buffered_rows_ = 0;

  // Memory accounting & spill.
  MetricsRegistry* metrics_ = nullptr;
  OperatorMemory memory_;
  FileSystem* spill_fs_ = nullptr;  // null = spill disabled
  std::string spill_dir_;
  std::unique_ptr<Spiller> spiller_;
  std::unique_ptr<SpillMergeCursor> merge_;
  bool merge_done_ = false;
  int64_t emitted_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

std::map<std::string, int> MakeLayout(const std::vector<VariablePtr>& variables) {
  std::map<std::string, int> layout;
  for (size_t i = 0; i < variables.size(); ++i) {
    layout[variables[i]->name()] = static_cast<int>(i);
  }
  return layout;
}

namespace {

const char* OperatorTypeName(PlanNodeKind kind) {
  switch (kind) {
    case PlanNodeKind::kTableScan:
      return "TableScan";
    case PlanNodeKind::kValues:
      return "Values";
    case PlanNodeKind::kFilter:
      return "Filter";
    case PlanNodeKind::kProject:
      return "Project";
    case PlanNodeKind::kAggregate:
      return "HashAggregation";
    case PlanNodeKind::kJoin:
      return "Join";
    case PlanNodeKind::kSort:
      return "Sort";
    case PlanNodeKind::kTopN:
      return "TopN";
    case PlanNodeKind::kLimit:
      return "Limit";
    case PlanNodeKind::kOutput:
      return "Output";
    case PlanNodeKind::kRemoteSource:
      return "RemoteSource";
  }
  return "?";
}

}  // namespace

Result<OperatorPtr> OperatorBuilder::Build(const PlanNodePtr& node) {
  // Output is a pure passthrough with no operator of its own; the stats
  // tree borrows its source's record at render time.
  if (node->kind() == PlanNodeKind::kOutput) {
    return Build(node->sources()[0]);
  }
  ASSIGN_OR_RETURN(OperatorPtr op, BuildNode(node));
  op->SetIdentity(node->id(), OperatorTypeName(node->kind()));
  op->set_collect_stats(limits_.collect_stats);
  op->set_deadline_nanos(limits_.deadline_steady_nanos);
  op->set_kill_flag(limits_.query_killed);
  return op;
}

Result<OperatorPtr> OperatorBuilder::BuildNode(const PlanNodePtr& node) {
  switch (node->kind()) {
    case PlanNodeKind::kTableScan: {
      const auto* scan = static_cast<const TableScanNode*>(node.get());
      if (!scan->accepted().has_value()) {
        return Status::Internal("table scan was not negotiated: " + scan->Label());
      }
      if (splits_ == nullptr) {
        return Status::Internal("no splits provided for leaf fragment");
      }
      ASSIGN_OR_RETURN(Connector * connector,
                       catalogs_->GetConnector(scan->catalog()));
      return OperatorPtr(new TableScanOperator(connector, *scan->accepted(),
                                               *splits_));
    }
    case PlanNodeKind::kValues: {
      const auto* values = static_cast<const ValuesNode*>(node.get());
      return OperatorPtr(new ValuesOperator(values->OutputVariables(),
                                            &values->rows()));
    }
    case PlanNodeKind::kRemoteSource: {
      const auto* remote = static_cast<const RemoteSourceNode*>(node.get());
      auto it = exchanges_->find(remote->fragment_id());
      if (it == exchanges_->end()) {
        return Status::Internal("no exchange for fragment " +
                                std::to_string(remote->fragment_id()));
      }
      // Hash-partitioned upstream: this task consumes its own partition of
      // the exchange; gather upstreams are single-partition.
      int partition =
          remote->source_partitioning() == PartitioningScheme::Kind::kHash
              ? task_partition_ % it->second->num_partitions()
              : 0;
      return OperatorPtr(new RemoteSourceOperator(it->second, partition));
    }
    case PlanNodeKind::kFilter: {
      const auto* filter = static_cast<const FilterNode*>(node.get());
      ASSIGN_OR_RETURN(OperatorPtr child, Build(filter->sources()[0]));
      return OperatorPtr(new FilterOperator(
          std::move(child), filter->predicate(),
          MakeLayout(filter->sources()[0]->OutputVariables()), functions_));
    }
    case PlanNodeKind::kProject: {
      const auto* project = static_cast<const ProjectNode*>(node.get());
      ASSIGN_OR_RETURN(OperatorPtr child, Build(project->sources()[0]));
      return OperatorPtr(new ProjectOperator(
          std::move(child), project->assignments(),
          MakeLayout(project->sources()[0]->OutputVariables()), functions_));
    }
    case PlanNodeKind::kLimit: {
      const auto* limit = static_cast<const LimitNode*>(node.get());
      ASSIGN_OR_RETURN(OperatorPtr child, Build(limit->sources()[0]));
      return OperatorPtr(new LimitOperator(std::move(child), limit->count()));
    }
    case PlanNodeKind::kAggregate: {
      const auto* agg = static_cast<const AggregateNode*>(node.get());
      ASSIGN_OR_RETURN(OperatorPtr child, Build(agg->sources()[0]));
      auto layout = MakeLayout(agg->sources()[0]->OutputVariables());
      std::vector<int> key_channels;
      std::vector<TypePtr> key_types;
      for (const VariablePtr& key : agg->group_keys()) {
        auto it = layout.find(key->name());
        if (it == layout.end()) {
          return Status::Internal("group key not in input: " + key->name());
        }
        key_channels.push_back(it->second);
        key_types.push_back(key->type());
      }
      std::vector<HashAggregationOperator::AggSpec> specs;
      for (const auto& aggregation : agg->aggregations()) {
        ASSIGN_OR_RETURN(const AggregateFunction* impl,
                         functions_->FindAggregate(aggregation.handle));
        HashAggregationOperator::AggSpec spec;
        spec.function = impl;
        spec.output_type = aggregation.output->type();
        for (const VariablePtr& arg : aggregation.arguments) {
          auto it = layout.find(arg->name());
          if (it == layout.end()) {
            return Status::Internal("aggregate argument not in input: " +
                                    arg->name());
          }
          spec.arg_channels.push_back(it->second);
        }
        specs.push_back(std::move(spec));
      }
      return OperatorPtr(new HashAggregationOperator(
          std::move(child), std::move(key_channels), std::move(key_types),
          std::move(specs), agg->step(), limits_));
    }
    case PlanNodeKind::kJoin: {
      const auto* join = static_cast<const JoinNode*>(node.get());
      ASSIGN_OR_RETURN(OperatorPtr probe, Build(join->sources()[0]));
      ASSIGN_OR_RETURN(OperatorPtr build, Build(join->sources()[1]));
      auto probe_layout = MakeLayout(join->sources()[0]->OutputVariables());
      auto build_layout = MakeLayout(join->sources()[1]->OutputVariables());
      auto combined_layout = MakeLayout(join->OutputVariables());
      std::vector<VariablePtr> build_vars = join->sources()[1]->OutputVariables();
      if (join->criteria().empty()) {
        return OperatorPtr(new NestedLoopJoinOperator(
            std::move(probe), std::move(build), join->join_kind(),
            std::move(build_vars), join->filter(), std::move(combined_layout),
            functions_, limits_));
      }
      std::vector<int> probe_keys, build_keys;
      std::vector<TypePtr> probe_key_types, build_key_types;
      for (const auto& clause : join->criteria()) {
        auto l = probe_layout.find(clause.left->name());
        auto r = build_layout.find(clause.right->name());
        if (l == probe_layout.end() || r == build_layout.end()) {
          return Status::Internal("join criteria not in inputs");
        }
        probe_keys.push_back(l->second);
        build_keys.push_back(r->second);
        probe_key_types.push_back(clause.left->type());
        build_key_types.push_back(clause.right->type());
      }
      return OperatorPtr(new HashJoinOperator(
          std::move(probe), std::move(build), join->join_kind(),
          std::move(probe_keys), std::move(build_keys),
          std::move(probe_key_types), std::move(build_key_types),
          std::move(build_vars), join->filter(), std::move(combined_layout),
          functions_, limits_));
    }
    case PlanNodeKind::kSort:
    case PlanNodeKind::kTopN: {
      std::vector<OrderingTerm> ordering;
      int64_t limit = -1;
      if (node->kind() == PlanNodeKind::kSort) {
        ordering = static_cast<const SortNode*>(node.get())->ordering();
      } else {
        const auto* topn = static_cast<const TopNNode*>(node.get());
        ordering = topn->ordering();
        limit = topn->count();
      }
      ASSIGN_OR_RETURN(OperatorPtr child, Build(node->sources()[0]));
      auto layout = MakeLayout(node->sources()[0]->OutputVariables());
      std::vector<int> channels;
      std::vector<bool> ascending;
      for (const OrderingTerm& term : ordering) {
        auto it = layout.find(term.variable->name());
        if (it == layout.end()) {
          return Status::Internal("sort key not in input: " + term.variable->name());
        }
        channels.push_back(it->second);
        ascending.push_back(term.ascending);
      }
      return OperatorPtr(new SortOperator(std::move(child),
                                          node->sources()[0]->OutputVariables(),
                                          std::move(channels),
                                          std::move(ascending), limit, limits_));
    }
    case PlanNodeKind::kOutput:
      return Build(node->sources()[0]);
  }
  return Status::Internal("cannot build operator for node: " + node->Label());
}

}  // namespace presto
