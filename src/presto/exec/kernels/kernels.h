#ifndef PRESTO_EXEC_KERNELS_KERNELS_H_
#define PRESTO_EXEC_KERNELS_KERNELS_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "presto/common/hash.h"
#include "presto/expr/function_registry.h"
#include "presto/planner/plan.h"
#include "presto/vector/page.h"

namespace presto {
namespace kernels {

/// Hash of a NULL slot; matches FlatVector::HashAt and Value::Hash for NULL
/// so batch and row-at-a-time hashing agree.
inline constexpr uint64_t kNullHash = 0x5c5c5c5c5c5c5c5cULL;

// ---------------------------------------------------------------------------
// TypedColumn: zero-virtual-dispatch view over a flat or dict-of-flat column
// ---------------------------------------------------------------------------

/// Decoded view of a scalar column. Inner loops index raw arrays instead of
/// calling GetValue()/IsNull() virtually per row; dictionary indirection is
/// one gather, never a materialized copy.
template <typename T>
struct TypedColumn {
  const T* values = nullptr;            // base values
  const uint8_t* base_nulls = nullptr;  // base null flags (may be null)
  const int32_t* indices = nullptr;     // dictionary indices (null == flat)
  const uint8_t* top_nulls = nullptr;   // dictionary-level null flags

  bool IsNull(size_t row) const {
    if (indices == nullptr) return base_nulls != nullptr && base_nulls[row] != 0;
    if (top_nulls != nullptr && top_nulls[row] != 0) return true;
    return base_nulls != nullptr && base_nulls[indices[row]] != 0;
  }
  const T& At(size_t row) const {
    return values[indices == nullptr ? row : indices[row]];
  }
};

/// Loads lazy vectors and flattens exotic nestings (dictionary over
/// dictionary/lazy) so the result is flat, or a dictionary over a flat base —
/// the two shapes TypedColumn understands. Plain dictionaries are preserved
/// so kernels can work through the indirection.
Result<VectorPtr> PrepareColumn(const VectorPtr& vector);

/// Decodes a prepared scalar column into a typed view. Returns false when
/// the vector's physical storage does not use T slots.
template <typename T>
bool TryDecode(const Vector& vector, TypedColumn<T>* out);

/// Per-row null flags without boxing: fast array paths for flat and
/// dictionary encodings, a virtual IsNull loop for nested vectors.
void CollectNullFlags(const Vector& vector, std::vector<uint8_t>* out);

// ---------------------------------------------------------------------------
// StringPool: interning for VARCHAR keys
// ---------------------------------------------------------------------------

/// Maps distinct strings to dense uint32 ids so VARCHAR group-by / join keys
/// become fixed-width normalized slots (id equality == string equality).
class StringPool {
 public:
  uint32_t Intern(std::string_view s);
  /// Lookup without inserting (join probe side); nullopt == no such key in
  /// the table, i.e. a guaranteed miss.
  std::optional<uint32_t> Find(std::string_view s) const;
  const std::string& at(uint32_t id) const { return strings_[id]; }
  size_t size() const { return strings_.size(); }

  /// Approximate bytes held by the interned strings (operator memory stats).
  int64_t EstimateBytes() const;

 private:
  std::deque<std::string> strings_;  // deque: stable addresses for the views
  std::unordered_map<std::string_view, uint32_t> ids_;
};

// ---------------------------------------------------------------------------
// NormalizedKeyTable: flat open-addressing group table on fixed-width keys
// ---------------------------------------------------------------------------

/// Hash table used by both hash aggregation (group-by keys -> group id) and
/// hash join (build keys -> key id, with the caller chaining duplicate build
/// rows). Keys are normalized to fixed-width 64-bit slots (ints as-is,
/// doubles bit-cast with -0.0 folded to 0.0, booleans 0/1, strings interned
/// to pool ids) plus a per-row null bitmask, stored inline in one contiguous
/// arena — no std::vector<Value> per group, no per-row virtual dispatch.
class NormalizedKeyTable {
 public:
  static constexpr int32_t kNoGroup = -1;

  /// True when every key kind can be normalized (all scalar kinds).
  static bool SupportsKeyKinds(const std::vector<TypeKind>& kinds);

  explicit NormalizedKeyTable(std::vector<TypeKind> key_kinds);

  /// Maps every row of `page` (key columns given by `channels`, already run
  /// through PrepareColumn) to a group id, appended to `group_ids`.
  /// insert_missing: unseen keys create new groups (group-by, join build);
  /// otherwise they map to kNoGroup (join probe). skip_null_keys: rows with
  /// any NULL key map to kNoGroup without probing (SQL join equality);
  /// otherwise NULL is an ordinary key value (SQL GROUP BY).
  /// Returns the number of hash-table probes performed.
  Result<int64_t> MapRows(const Page& page, const std::vector<int>& channels,
                          bool insert_missing, bool skip_null_keys,
                          std::vector<int32_t>* group_ids);

  /// Inserts the zero-key group if the table is empty (global aggregation
  /// over empty input still emits one row).
  void EnsureGlobalGroup();

  size_t num_groups() const { return num_groups_; }

  /// Approximate bytes held by the table: group key arena, open-addressing
  /// slots, and interned strings. Feeds operator memory stats
  /// (exec.agg.table_bytes / exec.join.table_bytes).
  int64_t EstimateBytes() const;

  /// Rebuilds the key columns, one row per group in creation order.
  Result<std::vector<VectorPtr>> BuildKeyColumns(
      const std::vector<TypePtr>& key_types) const;

 private:
  void ReserveFor(size_t additional_groups);
  void Rehash(size_t new_capacity);

  std::vector<TypeKind> key_kinds_;
  size_t num_keys_;
  StringPool strings_;

  // Group storage: group g's keys live at key_data_[g*num_keys_ ..].
  std::vector<uint64_t> key_data_;
  std::vector<uint64_t> null_masks_;
  std::vector<uint64_t> group_hashes_;

  // Open-addressing slots holding group id + 1 (0 == empty).
  std::vector<int32_t> table_;
  size_t capacity_ = 0;

  size_t num_groups_ = 0;

  // Per-batch scratch (reused across pages).
  std::vector<uint64_t> scratch_slots_;
  std::vector<uint64_t> scratch_null_masks_;
  std::vector<uint64_t> scratch_hashes_;
  std::vector<uint8_t> scratch_miss_;
};

// ---------------------------------------------------------------------------
// Grouped accumulators: whole-column aggregation, one state array per table
// ---------------------------------------------------------------------------

/// Columnar counterpart of Accumulator: state for ALL groups lives in flat
/// arrays and a whole input column is folded in per call, driven by the
/// group-id vector the NormalizedKeyTable produced.
class GroupedAccumulator {
 public:
  virtual ~GroupedAccumulator() = default;

  /// Grows state to cover groups [0, num_groups).
  virtual void EnsureGroups(size_t num_groups) = 0;

  /// Folds in raw input rows: row i goes to group groups[i] (kNoGroup rows
  /// are skipped). `arg` is the prepared argument column, or nullptr for
  /// zero-argument aggregates (count(*)).
  virtual Status AddBatch(const VectorPtr* arg, const int32_t* groups,
                          size_t n) = 0;

  /// Folds in a column of Intermediate() values (final aggregation step).
  virtual Status MergeBatch(const VectorPtr& arg, const int32_t* groups,
                            size_t n) = 0;

  /// Builds the output column, one row per group in group-id order.
  /// intermediate=true produces the partial-step representation.
  virtual Result<VectorPtr> Build(bool intermediate) const = 0;
};

/// Returns the columnar implementation for a resolved aggregate, or nullptr
/// when the function/argument types are not covered (the operator then runs
/// the Value-boxed fallback path). `output_type` is the final output type
/// from the plan; the intermediate type comes from the registration.
std::unique_ptr<GroupedAccumulator> MakeGroupedAccumulator(
    const AggregateFunction& function, const TypePtr& output_type);

// ---------------------------------------------------------------------------
// Batch row hashing (used by the boxed fallback paths too)
// ---------------------------------------------------------------------------

/// Combined hash of the given channels for every row of the page, via the
/// vectors' HashBatch overrides (one virtual call per column per page
/// instead of one per row). `hashes` is resized and overwritten.
void HashPage(const Page& page, const std::vector<int>& channels,
              std::vector<uint64_t>* hashes);

}  // namespace kernels
}  // namespace presto

#endif  // PRESTO_EXEC_KERNELS_KERNELS_H_
