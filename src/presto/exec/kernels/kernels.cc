#include "presto/exec/kernels/kernels.h"

#include <cstring>

namespace presto {
namespace kernels {

namespace {

// Normalizes a double key slot: -0.0 folds to 0.0 so it groups/joins with
// 0.0, matching Value::Hash / Value::Compare semantics.
inline uint64_t NormalizeDouble(double d) {
  if (d == 0.0) d = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(d));
  return bits;
}

inline size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Column preparation and decoding
// ---------------------------------------------------------------------------

Result<VectorPtr> PrepareColumn(const VectorPtr& vector) {
  switch (vector->encoding()) {
    case VectorEncoding::kFlat:
      return vector;
    case VectorEncoding::kLazy: {
      const auto* lazy = static_cast<const LazyVector*>(vector.get());
      ASSIGN_OR_RETURN(VectorPtr loaded, lazy->Load());
      return PrepareColumn(loaded);
    }
    case VectorEncoding::kDictionary: {
      const auto* dict = static_cast<const DictionaryVector*>(vector.get());
      if (dict->base()->encoding() == VectorEncoding::kFlat) return vector;
      // Dictionary over dictionary/lazy: rare, flatten to a simple shape.
      return Vector::Flatten(vector);
    }
  }
  return Status::Internal("unknown vector encoding");
}

namespace {

template <typename T>
constexpr bool KindMatches(TypeKind kind) {
  if constexpr (std::is_same_v<T, uint8_t>) {
    return kind == TypeKind::kBoolean;
  } else if constexpr (std::is_same_v<T, int64_t>) {
    return IsIntegerLike(kind);
  } else if constexpr (std::is_same_v<T, double>) {
    return kind == TypeKind::kDouble;
  } else {
    return kind == TypeKind::kVarchar;
  }
}

}  // namespace

template <typename T>
bool TryDecode(const Vector& vector, TypedColumn<T>* out) {
  *out = TypedColumn<T>();
  if (vector.encoding() == VectorEncoding::kFlat) {
    if (!KindMatches<T>(vector.type()->kind())) return false;
    const auto& flat = static_cast<const FlatVector<T>&>(vector);
    out->values = flat.values().data();
    out->base_nulls = flat.raw_nulls();
    return true;
  }
  if (vector.encoding() == VectorEncoding::kDictionary) {
    const auto& dict = static_cast<const DictionaryVector&>(vector);
    if (dict.base()->encoding() != VectorEncoding::kFlat) return false;
    if (!KindMatches<T>(dict.base()->type()->kind())) return false;
    const auto& base = static_cast<const FlatVector<T>&>(*dict.base());
    out->values = base.values().data();
    out->base_nulls = base.raw_nulls();
    out->indices = dict.indices().data();
    out->top_nulls = dict.raw_nulls();
    return true;
  }
  return false;
}

template bool TryDecode<uint8_t>(const Vector&, TypedColumn<uint8_t>*);
template bool TryDecode<int64_t>(const Vector&, TypedColumn<int64_t>*);
template bool TryDecode<double>(const Vector&, TypedColumn<double>*);
template bool TryDecode<std::string>(const Vector&, TypedColumn<std::string>*);

void CollectNullFlags(const Vector& vector, std::vector<uint8_t>* out) {
  size_t n = vector.size();
  out->assign(n, 0);
  if (vector.encoding() == VectorEncoding::kFlat &&
      vector.type()->IsScalar()) {
    const uint8_t* nulls = nullptr;
    switch (vector.type()->kind()) {
      case TypeKind::kBoolean:
        nulls = static_cast<const BoolVector&>(vector).raw_nulls();
        break;
      case TypeKind::kDouble:
        nulls = static_cast<const DoubleVector&>(vector).raw_nulls();
        break;
      case TypeKind::kVarchar:
        nulls = static_cast<const StringVector&>(vector).raw_nulls();
        break;
      default:
        nulls = static_cast<const Int64Vector&>(vector).raw_nulls();
        break;
    }
    if (nulls != nullptr) std::memcpy(out->data(), nulls, n);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (vector.IsNull(i)) (*out)[i] = 1;
  }
}

// ---------------------------------------------------------------------------
// StringPool
// ---------------------------------------------------------------------------

uint32_t StringPool::Intern(std::string_view s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  strings_.emplace_back(s);
  uint32_t id = static_cast<uint32_t>(strings_.size() - 1);
  ids_.emplace(std::string_view(strings_.back()), id);
  return id;
}

int64_t StringPool::EstimateBytes() const {
  int64_t bytes = 0;
  for (const std::string& s : strings_) {
    bytes += static_cast<int64_t>(s.size()) + sizeof(std::string);
  }
  return bytes;
}

std::optional<uint32_t> StringPool::Find(std::string_view s) const {
  auto it = ids_.find(s);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

// ---------------------------------------------------------------------------
// NormalizedKeyTable
// ---------------------------------------------------------------------------

bool NormalizedKeyTable::SupportsKeyKinds(const std::vector<TypeKind>& kinds) {
  if (kinds.size() > 64) return false;  // null bitmask width
  for (TypeKind kind : kinds) {
    if (!IsScalarKind(kind)) return false;
  }
  return true;
}

NormalizedKeyTable::NormalizedKeyTable(std::vector<TypeKind> key_kinds)
    : key_kinds_(std::move(key_kinds)), num_keys_(key_kinds_.size()) {}

void NormalizedKeyTable::Rehash(size_t new_capacity) {
  capacity_ = new_capacity;
  table_.assign(capacity_, 0);
  size_t mask = capacity_ - 1;
  for (size_t g = 0; g < num_groups_; ++g) {
    size_t idx = group_hashes_[g] & mask;
    while (table_[idx] != 0) idx = (idx + 1) & mask;
    table_[idx] = static_cast<int32_t>(g) + 1;
  }
}

void NormalizedKeyTable::ReserveFor(size_t additional_groups) {
  size_t needed = num_groups_ + additional_groups;
  if (capacity_ == 0 || needed * 2 > capacity_) {
    Rehash(NextPowerOfTwo(std::max<size_t>(needed * 2, 1024)));
  }
}

int64_t NormalizedKeyTable::EstimateBytes() const {
  return static_cast<int64_t>(key_data_.size() * sizeof(uint64_t) +
                              null_masks_.size() * sizeof(uint64_t) +
                              group_hashes_.size() * sizeof(uint64_t) +
                              table_.size() * sizeof(int32_t)) +
         strings_.EstimateBytes();
}

void NormalizedKeyTable::EnsureGlobalGroup() {
  if (num_groups_ > 0) return;
  ReserveFor(1);
  for (size_t k = 0; k < num_keys_; ++k) key_data_.push_back(0);
  null_masks_.push_back(0);
  group_hashes_.push_back(0);
  size_t mask = capacity_ - 1;
  size_t idx = 0 & mask;
  while (table_[idx] != 0) idx = (idx + 1) & mask;
  table_[idx] = static_cast<int32_t>(num_groups_) + 1;
  ++num_groups_;
}

Result<int64_t> NormalizedKeyTable::MapRows(const Page& page,
                                            const std::vector<int>& channels,
                                            bool insert_missing,
                                            bool skip_null_keys,
                                            std::vector<int32_t>* group_ids) {
  const size_t n = page.num_rows();
  scratch_slots_.assign(n * num_keys_, 0);
  scratch_null_masks_.assign(n, 0);
  scratch_miss_.assign(n, 0);

  // -- Normalize every key column into fixed-width slots. ---------------------
  for (size_t k = 0; k < num_keys_; ++k) {
    const Vector& col = *page.column(channels[k]);
    uint64_t* slots = scratch_slots_.data() + k;  // strided by num_keys_
    const uint64_t null_bit = uint64_t{1} << k;
    auto set_null = [&](size_t i) { scratch_null_masks_[i] |= null_bit; };
    switch (key_kinds_[k]) {
      case TypeKind::kBoolean: {
        TypedColumn<uint8_t> tc;
        if (!TryDecode(col, &tc)) {
          return Status::Internal("kernel decode failed for BOOLEAN key");
        }
        for (size_t i = 0; i < n; ++i) {
          if (tc.IsNull(i)) {
            set_null(i);
          } else {
            slots[i * num_keys_] = tc.At(i) != 0 ? 1 : 0;
          }
        }
        break;
      }
      case TypeKind::kDouble: {
        TypedColumn<double> tc;
        if (!TryDecode(col, &tc)) {
          return Status::Internal("kernel decode failed for DOUBLE key");
        }
        for (size_t i = 0; i < n; ++i) {
          if (tc.IsNull(i)) {
            set_null(i);
          } else {
            slots[i * num_keys_] = NormalizeDouble(tc.At(i));
          }
        }
        break;
      }
      case TypeKind::kVarchar: {
        TypedColumn<std::string> tc;
        if (!TryDecode(col, &tc)) {
          return Status::Internal("kernel decode failed for VARCHAR key");
        }
        if (tc.indices != nullptr) {
          // Dictionary-encoded strings: intern each distinct base value
          // once, then the row loop is a pure index gather.
          const auto& dict = static_cast<const DictionaryVector&>(col);
          const auto& base_vec =
              static_cast<const StringVector&>(*dict.base());
          size_t base_n = base_vec.size();
          std::vector<uint64_t> base_ids(base_n, 0);
          std::vector<uint8_t> base_miss(base_n, 0);
          for (size_t b = 0; b < base_n; ++b) {
            if (base_vec.IsNull(b)) continue;
            if (insert_missing) {
              base_ids[b] = strings_.Intern(base_vec.ValueAt(b));
            } else if (auto id = strings_.Find(base_vec.ValueAt(b))) {
              base_ids[b] = *id;
            } else {
              base_miss[b] = 1;
            }
          }
          for (size_t i = 0; i < n; ++i) {
            if (tc.IsNull(i)) {
              set_null(i);
            } else if (base_miss[tc.indices[i]] != 0) {
              scratch_miss_[i] = 1;
            } else {
              slots[i * num_keys_] = base_ids[tc.indices[i]];
            }
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            if (tc.IsNull(i)) {
              set_null(i);
            } else if (insert_missing) {
              slots[i * num_keys_] = strings_.Intern(tc.At(i));
            } else if (auto id = strings_.Find(tc.At(i))) {
              slots[i * num_keys_] = *id;
            } else {
              scratch_miss_[i] = 1;
            }
          }
        }
        break;
      }
      default: {  // integer-like: INTEGER / BIGINT / TIMESTAMP
        TypedColumn<int64_t> tc;
        if (!TryDecode(col, &tc)) {
          return Status::Internal("kernel decode failed for BIGINT key");
        }
        for (size_t i = 0; i < n; ++i) {
          if (tc.IsNull(i)) {
            set_null(i);
          } else {
            slots[i * num_keys_] = static_cast<uint64_t>(tc.At(i));
          }
        }
        break;
      }
    }
  }

  // -- Hash the normalized rows. ----------------------------------------------
  scratch_hashes_.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = 0;
    const uint64_t* row_slots = scratch_slots_.data() + i * num_keys_;
    uint64_t null_mask = scratch_null_masks_[i];
    for (size_t k = 0; k < num_keys_; ++k) {
      uint64_t slot_hash = (null_mask >> k) & 1
                               ? kNullHash
                               : HashMix64(row_slots[k]);
      h = HashCombine(h, slot_hash);
    }
    scratch_hashes_[i] = h;
  }

  // -- Probe / insert. ---------------------------------------------------------
  if (insert_missing) ReserveFor(n);
  int64_t probes = 0;
  const size_t mask = capacity_ == 0 ? 0 : capacity_ - 1;
  group_ids->reserve(group_ids->size() + n);
  for (size_t i = 0; i < n; ++i) {
    if (scratch_miss_[i] != 0 ||
        (skip_null_keys && scratch_null_masks_[i] != 0)) {
      group_ids->push_back(kNoGroup);
      continue;
    }
    if (capacity_ == 0) {  // find-only on an empty table
      group_ids->push_back(kNoGroup);
      continue;
    }
    const uint64_t h = scratch_hashes_[i];
    const uint64_t* row_slots = scratch_slots_.data() + i * num_keys_;
    const uint64_t row_null_mask = scratch_null_masks_[i];
    size_t idx = h & mask;
    int32_t gid = kNoGroup;
    while (true) {
      ++probes;
      int32_t slot = table_[idx];
      if (slot == 0) {
        if (insert_missing) {
          gid = static_cast<int32_t>(num_groups_);
          key_data_.insert(key_data_.end(), row_slots, row_slots + num_keys_);
          null_masks_.push_back(row_null_mask);
          group_hashes_.push_back(h);
          table_[idx] = gid + 1;
          ++num_groups_;
        }
        break;
      }
      const int32_t g = slot - 1;
      if (group_hashes_[g] == h && null_masks_[g] == row_null_mask) {
        const uint64_t* group_slots = key_data_.data() + g * num_keys_;
        bool equal = true;
        for (size_t k = 0; k < num_keys_; ++k) {
          // Null slots hold 0 on both sides, so a plain compare is exact.
          if (group_slots[k] != row_slots[k]) {
            equal = false;
            break;
          }
        }
        if (equal) {
          gid = g;
          break;
        }
      }
      idx = (idx + 1) & mask;
    }
    group_ids->push_back(gid);
  }
  return probes;
}

Result<std::vector<VectorPtr>> NormalizedKeyTable::BuildKeyColumns(
    const std::vector<TypePtr>& key_types) const {
  std::vector<VectorPtr> out;
  out.reserve(num_keys_);
  for (size_t k = 0; k < num_keys_; ++k) {
    const uint64_t null_bit = uint64_t{1} << k;
    std::vector<uint8_t> nulls(num_groups_, 0);
    bool any_null = false;
    for (size_t g = 0; g < num_groups_; ++g) {
      if ((null_masks_[g] & null_bit) != 0) {
        nulls[g] = 1;
        any_null = true;
      }
    }
    if (!any_null) nulls.clear();
    switch (key_kinds_[k]) {
      case TypeKind::kBoolean: {
        std::vector<uint8_t> values(num_groups_);
        for (size_t g = 0; g < num_groups_; ++g) {
          values[g] = static_cast<uint8_t>(key_data_[g * num_keys_ + k]);
        }
        out.push_back(std::make_shared<BoolVector>(
            key_types[k], std::move(values), std::move(nulls)));
        break;
      }
      case TypeKind::kDouble: {
        std::vector<double> values(num_groups_);
        for (size_t g = 0; g < num_groups_; ++g) {
          uint64_t bits = key_data_[g * num_keys_ + k];
          double d;
          std::memcpy(&d, &bits, sizeof(d));
          values[g] = d;
        }
        out.push_back(std::make_shared<DoubleVector>(
            key_types[k], std::move(values), std::move(nulls)));
        break;
      }
      case TypeKind::kVarchar: {
        std::vector<std::string> values(num_groups_);
        for (size_t g = 0; g < num_groups_; ++g) {
          if (!nulls.empty() && nulls[g] != 0) continue;
          values[g] =
              strings_.at(static_cast<uint32_t>(key_data_[g * num_keys_ + k]));
        }
        out.push_back(std::make_shared<StringVector>(
            key_types[k], std::move(values), std::move(nulls)));
        break;
      }
      default: {
        std::vector<int64_t> values(num_groups_);
        for (size_t g = 0; g < num_groups_; ++g) {
          values[g] = static_cast<int64_t>(key_data_[g * num_keys_ + k]);
        }
        out.push_back(std::make_shared<Int64Vector>(
            key_types[k], std::move(values), std::move(nulls)));
        break;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Grouped accumulators
// ---------------------------------------------------------------------------

namespace {

class CountGrouped final : public GroupedAccumulator {
 public:
  explicit CountGrouped(bool count_non_null)
      : count_non_null_(count_non_null) {}

  void EnsureGroups(size_t num_groups) override {
    if (counts_.size() < num_groups) counts_.resize(num_groups, 0);
  }

  Status AddBatch(const VectorPtr* arg, const int32_t* groups,
                  size_t n) override {
    if (!count_non_null_ || arg == nullptr) {
      for (size_t i = 0; i < n; ++i) {
        if (groups[i] >= 0) ++counts_[groups[i]];
      }
      return Status::OK();
    }
    CollectNullFlags(**arg, &null_scratch_);
    for (size_t i = 0; i < n; ++i) {
      if (groups[i] >= 0 && null_scratch_[i] == 0) ++counts_[groups[i]];
    }
    return Status::OK();
  }

  Status MergeBatch(const VectorPtr& arg, const int32_t* groups,
                    size_t n) override {
    TypedColumn<int64_t> tc;
    if (!TryDecode(*arg, &tc)) {
      return Status::Internal("count merge: intermediate is not BIGINT");
    }
    for (size_t i = 0; i < n; ++i) {
      if (groups[i] >= 0 && !tc.IsNull(i)) counts_[groups[i]] += tc.At(i);
    }
    return Status::OK();
  }

  Result<VectorPtr> Build(bool) const override {
    std::vector<int64_t> values(counts_.begin(), counts_.end());
    return VectorPtr(std::make_shared<Int64Vector>(
        Type::Bigint(), std::move(values), std::vector<uint8_t>{}));
  }

 private:
  bool count_non_null_;
  std::vector<int64_t> counts_;
  std::vector<uint8_t> null_scratch_;
};

template <typename T>
class SumGrouped final : public GroupedAccumulator {
 public:
  explicit SumGrouped(TypePtr type) : type_(std::move(type)) {}

  void EnsureGroups(size_t num_groups) override {
    if (sums_.size() < num_groups) {
      sums_.resize(num_groups, T{});
      has_.resize(num_groups, 0);
    }
  }

  Status AddBatch(const VectorPtr* arg, const int32_t* groups,
                  size_t n) override {
    TypedColumn<T> tc;
    if (arg == nullptr || !TryDecode(**arg, &tc)) {
      return Status::Internal("sum kernel: argument decode failed");
    }
    for (size_t i = 0; i < n; ++i) {
      int32_t g = groups[i];
      if (g < 0 || tc.IsNull(i)) continue;
      sums_[g] += tc.At(i);
      has_[g] = 1;
    }
    return Status::OK();
  }

  Status MergeBatch(const VectorPtr& arg, const int32_t* groups,
                    size_t n) override {
    return AddBatch(&arg, groups, n);  // sum-of-sums
  }

  Result<VectorPtr> Build(bool) const override {
    std::vector<T> values(sums_.begin(), sums_.end());
    std::vector<uint8_t> nulls;
    bool any_null = false;
    nulls.resize(has_.size(), 0);
    for (size_t g = 0; g < has_.size(); ++g) {
      if (has_[g] == 0) {
        nulls[g] = 1;
        any_null = true;
      }
    }
    if (!any_null) nulls.clear();
    return VectorPtr(std::make_shared<FlatVector<T>>(type_, std::move(values),
                                                     std::move(nulls)));
  }

 private:
  TypePtr type_;
  std::vector<T> sums_;
  std::vector<uint8_t> has_;
};

template <typename T, bool kIsMin>
class MinMaxGrouped final : public GroupedAccumulator {
 public:
  explicit MinMaxGrouped(TypePtr type) : type_(std::move(type)) {}

  void EnsureGroups(size_t num_groups) override {
    if (best_.size() < num_groups) {
      best_.resize(num_groups, T{});
      has_.resize(num_groups, 0);
    }
  }

  Status AddBatch(const VectorPtr* arg, const int32_t* groups,
                  size_t n) override {
    TypedColumn<T> tc;
    if (arg == nullptr || !TryDecode(**arg, &tc)) {
      return Status::Internal("min/max kernel: argument decode failed");
    }
    for (size_t i = 0; i < n; ++i) {
      int32_t g = groups[i];
      if (g < 0 || tc.IsNull(i)) continue;
      const T& v = tc.At(i);
      if (has_[g] == 0 || (kIsMin ? v < best_[g] : best_[g] < v)) {
        best_[g] = v;
        has_[g] = 1;
      }
    }
    return Status::OK();
  }

  Status MergeBatch(const VectorPtr& arg, const int32_t* groups,
                    size_t n) override {
    return AddBatch(&arg, groups, n);
  }

  Result<VectorPtr> Build(bool) const override {
    std::vector<T> values(best_.begin(), best_.end());
    std::vector<uint8_t> nulls;
    bool any_null = false;
    nulls.resize(has_.size(), 0);
    for (size_t g = 0; g < has_.size(); ++g) {
      if (has_[g] == 0) {
        nulls[g] = 1;
        any_null = true;
      }
    }
    if (!any_null) nulls.clear();
    return VectorPtr(std::make_shared<FlatVector<T>>(type_, std::move(values),
                                                     std::move(nulls)));
  }

 private:
  TypePtr type_;
  std::vector<T> best_;
  std::vector<uint8_t> has_;
};

class AvgGrouped final : public GroupedAccumulator {
 public:
  explicit AvgGrouped(TypePtr intermediate_type)
      : intermediate_type_(std::move(intermediate_type)) {}

  void EnsureGroups(size_t num_groups) override {
    if (sums_.size() < num_groups) {
      sums_.resize(num_groups, 0.0);
      counts_.resize(num_groups, 0);
    }
  }

  Status AddBatch(const VectorPtr* arg, const int32_t* groups,
                  size_t n) override {
    if (arg == nullptr) return Status::Internal("avg kernel: missing argument");
    TypedColumn<double> td;
    if (TryDecode(**arg, &td)) {
      for (size_t i = 0; i < n; ++i) {
        int32_t g = groups[i];
        if (g < 0 || td.IsNull(i)) continue;
        sums_[g] += td.At(i);
        ++counts_[g];
      }
      return Status::OK();
    }
    TypedColumn<int64_t> ti;
    if (TryDecode(**arg, &ti)) {
      for (size_t i = 0; i < n; ++i) {
        int32_t g = groups[i];
        if (g < 0 || ti.IsNull(i)) continue;
        sums_[g] += static_cast<double>(ti.At(i));
        ++counts_[g];
      }
      return Status::OK();
    }
    return Status::Internal("avg kernel: argument decode failed");
  }

  Status MergeBatch(const VectorPtr& arg, const int32_t* groups,
                    size_t n) override {
    // Intermediate is ROW(sum DOUBLE, count BIGINT); the operator flattens
    // the column before merging, so a RowVector with flat children arrives.
    ASSIGN_OR_RETURN(VectorPtr flat, Vector::Flatten(arg));
    if (flat->type()->kind() != TypeKind::kRow) {
      return Status::Internal("avg merge: intermediate is not ROW");
    }
    const auto& row = static_cast<const RowVector&>(*flat);
    TypedColumn<double> sums;
    TypedColumn<int64_t> counts;
    if (row.NumChildren() != 2 || !TryDecode(*row.child(0), &sums) ||
        !TryDecode(*row.child(1), &counts)) {
      return Status::Internal("avg merge: intermediate decode failed");
    }
    for (size_t i = 0; i < n; ++i) {
      int32_t g = groups[i];
      if (g < 0 || row.IsNull(i)) continue;
      sums_[g] += sums.At(i);
      counts_[g] += counts.At(i);
    }
    return Status::OK();
  }

  Result<VectorPtr> Build(bool intermediate) const override {
    size_t n = sums_.size();
    if (intermediate) {
      std::vector<double> sums(sums_.begin(), sums_.end());
      std::vector<int64_t> counts(counts_.begin(), counts_.end());
      std::vector<VectorPtr> children = {
          std::make_shared<DoubleVector>(Type::Double(), std::move(sums),
                                         std::vector<uint8_t>{}),
          std::make_shared<Int64Vector>(Type::Bigint(), std::move(counts),
                                        std::vector<uint8_t>{})};
      return VectorPtr(std::make_shared<RowVector>(intermediate_type_, n,
                                                   std::move(children)));
    }
    std::vector<double> values(n, 0.0);
    std::vector<uint8_t> nulls(n, 0);
    bool any_null = false;
    for (size_t g = 0; g < n; ++g) {
      if (counts_[g] == 0) {
        nulls[g] = 1;
        any_null = true;
      } else {
        values[g] = sums_[g] / static_cast<double>(counts_[g]);
      }
    }
    if (!any_null) nulls.clear();
    return VectorPtr(std::make_shared<DoubleVector>(
        Type::Double(), std::move(values), std::move(nulls)));
  }

 private:
  TypePtr intermediate_type_;
  std::vector<double> sums_;
  std::vector<int64_t> counts_;
};

}  // namespace

std::unique_ptr<GroupedAccumulator> MakeGroupedAccumulator(
    const AggregateFunction& function, const TypePtr& output_type) {
  const std::string& name = function.handle.name;
  const std::vector<TypePtr>& args = function.handle.argument_types;
  if (name == "count" && args.size() <= 1) {
    return std::make_unique<CountGrouped>(!args.empty());
  }
  if (args.size() != 1) return nullptr;
  TypeKind arg_kind = args[0]->kind();
  if (name == "sum") {
    if (IsIntegerLike(arg_kind)) {
      return std::make_unique<SumGrouped<int64_t>>(output_type);
    }
    if (arg_kind == TypeKind::kDouble) {
      return std::make_unique<SumGrouped<double>>(output_type);
    }
    return nullptr;
  }
  if (name == "avg" &&
      (IsIntegerLike(arg_kind) || arg_kind == TypeKind::kDouble)) {
    return std::make_unique<AvgGrouped>(function.intermediate_type);
  }
  if (name == "min" || name == "max") {
    const bool is_min = name == "min";
    if (IsIntegerLike(arg_kind)) {
      if (is_min) return std::make_unique<MinMaxGrouped<int64_t, true>>(output_type);
      return std::make_unique<MinMaxGrouped<int64_t, false>>(output_type);
    }
    if (arg_kind == TypeKind::kDouble) {
      if (is_min) return std::make_unique<MinMaxGrouped<double, true>>(output_type);
      return std::make_unique<MinMaxGrouped<double, false>>(output_type);
    }
    if (arg_kind == TypeKind::kVarchar) {
      if (is_min) {
        return std::make_unique<MinMaxGrouped<std::string, true>>(output_type);
      }
      return std::make_unique<MinMaxGrouped<std::string, false>>(output_type);
    }
    return nullptr;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Batch row hashing
// ---------------------------------------------------------------------------

void HashPage(const Page& page, const std::vector<int>& channels,
              std::vector<uint64_t>* hashes) {
  hashes->assign(page.num_rows(), 0);
  if (hashes->empty()) return;
  for (int c : channels) {
    page.column(c)->HashBatch(hashes->data(), /*combine=*/true);
  }
}

}  // namespace kernels
}  // namespace presto
