#include "presto/exec/exchange.h"

#include <algorithm>
#include <chrono>

#include "presto/common/clock.h"
#include "presto/common/fault_injection.h"
#include "presto/common/trace.h"
#include "presto/exec/kernels/kernels.h"

namespace presto {

namespace {

Status DeadlineStatus() {
  return Status::Unavailable("query deadline exceeded (query_timeout_millis)");
}

std::chrono::steady_clock::time_point ToTimePoint(int64_t steady_nanos) {
  return std::chrono::steady_clock::time_point(
      std::chrono::nanoseconds(steady_nanos));
}

}  // namespace

PartitionedExchange::PartitionedExchange(int num_partitions,
                                         int64_t capacity_bytes,
                                         MetricsRegistry* metrics)
    : partitions_(std::max(1, num_partitions)),
      capacity_bytes_(std::max<int64_t>(1, capacity_bytes)) {
  open_partitions_ = static_cast<int>(partitions_.size());
  if (metrics != nullptr) {
    pages_pushed_counter_ = metrics->FindOrRegister("exchange.page.pushed");
    bytes_pushed_counter_ = metrics->FindOrRegister("exchange.byte.pushed");
    pages_dropped_counter_ = metrics->FindOrRegister("exchange.page.dropped");
    producer_blocked_counter_ =
        metrics->FindOrRegister("exchange.producer.blocked");
    zero_copy_counter_ = metrics->FindOrRegister("exchange.page.zero_copy");
  }
}

PartitionedExchange::~PartitionedExchange() {
  // Entries still queued at teardown (e.g. a LIMIT satisfied early) release
  // their reservation here.
  std::lock_guard<std::mutex> lock(mu_);
  ReleasePoolLocked(buffered_bytes_);
  buffered_bytes_ = 0;
}

void PartitionedExchange::SetProducerCount(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  producers_ = n;
}

void PartitionedExchange::SetMemoryPool(std::shared_ptr<MemoryPool> pool) {
  std::lock_guard<std::mutex> lock(mu_);
  pool_ = std::move(pool);
}

void PartitionedExchange::ReleasePoolLocked(int64_t bytes) {
  if (pool_ != nullptr && bytes > 0) pool_->Release(bytes);
}

void PartitionedExchange::SetDeadlineNanos(int64_t steady_deadline_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  deadline_steady_nanos_ = steady_deadline_nanos;
}

void PartitionedExchange::SetSpool(std::shared_ptr<ExchangeSpool> spool) {
  std::lock_guard<std::mutex> lock(mu_);
  spool_ = std::move(spool);
}

bool PartitionedExchange::TryCommitProducer(int slot, int attempt) {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_slots_.emplace(slot, attempt).second;
}

Status PartitionedExchange::ResetPartitionForReplay(int partition) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (spool_ == nullptr) {
      return Status::Unavailable(
          "exchange spool disabled; stage re-run unavailable");
    }
    if (!status_.ok()) return status_;
    Partition& part = partitions_[partition];
    if (part.closed) {
      return Status::Internal("cannot replay a closed exchange partition");
    }
    if (spool_->broken(partition)) {
      return Status::Unavailable(
          "exchange spool partition broken; stage re-run unavailable");
    }
    // Queued pages are dropped — the spool holds the complete history, so
    // the replacement consumer replays from the start. Releasing their bytes
    // wakes producers blocked on backpressure; from here their pushes to
    // this partition are spooled but never queued (no one will pop them).
    for (const Entry& entry : part.pages) {
      buffered_bytes_ -= entry.bytes;
      ReleasePoolLocked(entry.bytes);
    }
    part.pages.clear();
    part.replay = true;
    part.replay_reader = nullptr;
    part.replay_open = false;
  }
  producer_cv_.notify_all();
  consumer_cv_.notify_all();
  return Status::OK();
}

void PartitionedExchange::Push(int partition, Page page) {
  const int64_t bytes = page.EstimateBytes();
  PushWithBytes(partition, std::move(page), bytes);
}

void PartitionedExchange::PushWithBytes(int partition, Page page,
                                        int64_t bytes) {
  {
    // Chaos hook: a failed shuffle transfer latches the whole exchange, the
    // fail-fast path for intermediate stages (the coordinator restarts the
    // query once when the error is transient).
    Status fault = FaultInjector::Global().Hit("exchange.push");
    if (!fault.ok()) {
      Fail(std::move(fault));
      return;
    }
  }
  // Tee copy for the spool, taken before the page moves into the queue.
  // Pages share immutable vectors by shared_ptr, so the copy is cheap.
  Page spool_copy;
  bool spool_tee = false;
  bool queued = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto bypass_queue = [this, partition] {
      return partitions_[partition].replay;
    };
    if (buffered_bytes_ >= capacity_bytes_ && !DropLocked(partition) &&
        !bypass_queue()) {
      if (producer_blocked_counter_ != nullptr) {
        producer_blocked_counter_->Add(1);
      }
      // Backpressure: the producer is genuinely blocked from here on. Time
      // it into the thread's blocked cell (attributed at task level — the
      // push happens outside any operator's Next() frame) and record a span.
      BlockedTimer blocked(BlockedKind::kExchangeWait);
      TraceEventScope span(TraceKind::kExchangeWait, "exchange_produce_wait");
      auto have_room = [this, partition, &bypass_queue] {
        return buffered_bytes_ < capacity_bytes_ || DropLocked(partition) ||
               bypass_queue();
      };
      if (deadline_steady_nanos_ > 0) {
        if (!producer_cv_.wait_until(lock, ToTimePoint(deadline_steady_nanos_),
                                     have_room)) {
          // Deadline while blocked on backpressure: latch the timeout so the
          // whole query unwinds instead of wedging this producer forever.
          FailLocked(DeadlineStatus());
          producer_cv_.notify_all();
          consumer_cv_.notify_all();
        }
      } else {
        producer_cv_.wait(lock, have_room);
      }
    }
    if (DropLocked(partition)) {
      if (pages_dropped_counter_ != nullptr) pages_dropped_counter_->Add(1);
      return;
    }
    if (spool_ != nullptr) {
      spool_copy = page;
      spool_tee = true;
    }
    if (bypass_queue()) {
      // Replay mode: the replacement consumer reads the spool, not the queue,
      // so accepted pages skip buffering (and its backpressure/reservation)
      // but still count toward the push totals the stats reconcile against.
      bytes_pushed_ += bytes;
      pages_pushed_ += 1;
    } else {
      if (pool_ != nullptr) {
        Status st = pool_->Reserve(bytes);
        if (!st.ok()) {
          // Worker memory exhausted while buffering shuffle data: latch the
          // classified error so the whole query unwinds instead of queueing
          // pages the worker has no budget for.
          FailLocked(std::move(st));
          if (pages_dropped_counter_ != nullptr) pages_dropped_counter_->Add(1);
          lock.unlock();
          producer_cv_.notify_all();
          consumer_cv_.notify_all();
          return;
        }
      }
      partitions_[partition].pages.push_back(Entry{std::move(page), bytes});
      buffered_bytes_ += bytes;
      peak_buffered_bytes_ = std::max(peak_buffered_bytes_, buffered_bytes_);
      bytes_pushed_ += bytes;
      pages_pushed_ += 1;
      queued = true;
    }
  }
  if (pages_pushed_counter_ != nullptr) pages_pushed_counter_->Add(1);
  if (bytes_pushed_counter_ != nullptr) bytes_pushed_counter_->Add(bytes);
  if (queued) consumer_cv_.notify_all();
  if (spool_tee) {
    // Appended outside mu_ (the spool serializes, compresses, and writes
    // under its own lock). A failed append marks the partition broken inside
    // the spool; the exchange keeps flowing — spooling is insurance, and the
    // recovery ladder falls back to restart-once when the insurance lapses.
    (void)spool_->Append(partition, spool_copy);
  }
}

void PartitionedExchange::PushPartitioned(const Page& page,
                                          const std::vector<int>& channels) {
  if (page.num_rows() == 0) return;
  if (num_partitions() == 1 || channels.empty()) {
    if (zero_copy_counter_ != nullptr) zero_copy_counter_->Add(1);
    Push(0, page);
    return;
  }
  std::vector<uint64_t> hashes;
  kernels::HashPage(page, channels, &hashes);
  std::vector<std::vector<int32_t>> rows(partitions_.size());
  const auto n = static_cast<uint64_t>(partitions_.size());
  for (size_t r = 0; r < hashes.size(); ++r) {
    rows[hashes[r] % n].push_back(static_cast<int32_t>(r));
  }
  int only = -1;
  for (size_t p = 0; p < rows.size(); ++p) {
    if (rows[p].empty()) continue;
    only = only == -1 ? static_cast<int>(p) : -2;
  }
  if (only >= 0) {
    // Every row hashed to one partition (clustered input): pass the page
    // through as-is — the consumer shares the producer's vectors.
    if (zero_copy_counter_ != nullptr) zero_copy_counter_->Add(1);
    Push(only, page);
    return;
  }
  const int64_t base_bytes = page.EstimateBytes();
  const auto total_rows = static_cast<int64_t>(page.num_rows());
  for (size_t p = 0; p < rows.size(); ++p) {
    if (rows[p].empty()) continue;
    // Zero-copy for flat columns: each partition slice is a dictionary wrap
    // over the original page's vectors. Account each slice its row-share of
    // the base page plus its own indices — the wraps share one base, so
    // charging every slice the full base would multiply shuffle bytes by
    // the fan-out.
    const auto slice_rows = static_cast<int64_t>(rows[p].size());
    int64_t bytes =
        slice_rows * static_cast<int64_t>(sizeof(int32_t)) +
        base_bytes * slice_rows / total_rows;
    PushWithBytes(static_cast<int>(p), page.WrapRows(rows[p]), bytes);
  }
}

void PartitionedExchange::ProducerDone() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --producers_;
  }
  consumer_cv_.notify_all();
}

void PartitionedExchange::FailLocked(Status status) {
  if (status_.ok()) status_ = std::move(status);
  // The error wins over buffered pages; release their bytes so any blocked
  // producer wakes into the drop path.
  for (Partition& partition : partitions_) partition.pages.clear();
  ReleasePoolLocked(buffered_bytes_);
  buffered_bytes_ = 0;
}

void PartitionedExchange::Fail(Status status) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    FailLocked(std::move(status));
  }
  producer_cv_.notify_all();
  consumer_cv_.notify_all();
}

Result<std::optional<Page>> PartitionedExchange::Next(int partition) {
  Entry entry;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Partition& part = partitions_[partition];
    if (part.replay) return ReplayNextLocked(lock, partition);
    auto have_page = [this, &part] {
      return !part.pages.empty() || part.closed || producers_ <= 0 ||
             !status_.ok();
    };
    if (!have_page()) {
      // Nothing buffered: this consumer blocks on upstream producers. The
      // wait lands in the pulling operator's Next() frame (RemoteSource /
      // morsel exchange source), so it attributes to that operator.
      BlockedTimer blocked(BlockedKind::kExchangeWait);
      TraceEventScope span(TraceKind::kExchangeWait, "exchange_consume_wait");
      if (deadline_steady_nanos_ > 0) {
        if (!consumer_cv_.wait_until(lock, ToTimePoint(deadline_steady_nanos_),
                                     have_page)) {
          FailLocked(DeadlineStatus());
          producer_cv_.notify_all();
          consumer_cv_.notify_all();
          return status_;
        }
      } else {
        consumer_cv_.wait(lock, have_page);
      }
    }
    if (!status_.ok()) return status_;
    if (part.pages.empty()) return std::optional<Page>();  // end-of-stream
    entry = std::move(part.pages.front());
    part.pages.pop_front();
    buffered_bytes_ -= entry.bytes;
    ReleasePoolLocked(entry.bytes);
  }
  producer_cv_.notify_all();
  return std::optional<Page>(std::move(entry.page));
}

Result<std::optional<Page>> PartitionedExchange::ReplayNextLocked(
    std::unique_lock<std::mutex>& lock, int partition) {
  Partition& part = partitions_[partition];
  // The spool is complete only once every producer has committed: wait for
  // the producer barrier (deadline-aware, like the queue path) before
  // sealing and streaming it.
  auto sealed = [this, &part] {
    return producers_ <= 0 || part.closed || !status_.ok();
  };
  if (!sealed()) {
    BlockedTimer blocked(BlockedKind::kExchangeWait);
    TraceEventScope span(TraceKind::kExchangeWait, "exchange_replay_wait");
    if (deadline_steady_nanos_ > 0) {
      if (!consumer_cv_.wait_until(lock, ToTimePoint(deadline_steady_nanos_),
                                   sealed)) {
        FailLocked(DeadlineStatus());
        producer_cv_.notify_all();
        consumer_cv_.notify_all();
        return status_;
      }
    } else {
      consumer_cv_.wait(lock, sealed);
    }
  }
  if (!status_.ok()) return status_;
  if (part.closed) return std::optional<Page>();
  if (!part.replay_open) {
    // Seal + open does file I/O: drop mu_ for it. Safe — each partition has
    // a single consumer, and only that consumer reaches the replay reader.
    std::shared_ptr<ExchangeSpool> spool = spool_;
    lock.unlock();
    auto reader = spool->OpenReader(partition);
    if (!reader.ok()) {
      // Any replay failure (broken spool, I/O error, fault point) degrades
      // to a retryable error so the coordinator's ladder falls through to
      // restart-once instead of returning partial results.
      return Status::Unavailable("exchange spool replay failed: " +
                                 reader.status().message());
    }
    lock.lock();
    part.replay_reader = std::move(*reader);
    part.replay_open = true;
  }
  ExchangeSpool::Reader* reader = part.replay_reader.get();
  lock.unlock();
  auto page = reader->Next();
  if (!page.ok()) {
    return Status::Unavailable("exchange spool replay failed: " +
                               page.status().message());
  }
  return page;  // nullopt at spool end = end-of-stream
}

void PartitionedExchange::ConsumerDone(int partition) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Partition& part = partitions_[partition];
    if (part.closed) return;
    part.closed = true;
    --open_partitions_;
    for (const Entry& entry : part.pages) {
      buffered_bytes_ -= entry.bytes;
      ReleasePoolLocked(entry.bytes);
    }
    part.pages.clear();
  }
  producer_cv_.notify_all();
  consumer_cv_.notify_all();
}

void PartitionedExchange::CloseAllPartitions() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Partition& part : partitions_) {
      if (part.closed) continue;
      part.closed = true;
      --open_partitions_;
      for (const Entry& entry : part.pages) {
        buffered_bytes_ -= entry.bytes;
        ReleasePoolLocked(entry.bytes);
      }
      part.pages.clear();
    }
  }
  producer_cv_.notify_all();
  consumer_cv_.notify_all();
}

bool PartitionedExchange::AllConsumersDone() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_partitions_ == 0;
}

int64_t PartitionedExchange::buffered_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffered_bytes_;
}

int64_t PartitionedExchange::peak_buffered_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_buffered_bytes_;
}

int64_t PartitionedExchange::bytes_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_pushed_;
}

int64_t PartitionedExchange::pages_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_pushed_;
}

}  // namespace presto
