#ifndef PRESTO_EXEC_EXCHANGE_SPOOL_H_
#define PRESTO_EXEC_EXCHANGE_SPOOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "presto/common/memory_pool.h"
#include "presto/common/metrics.h"
#include "presto/fs/file_system.h"
#include "presto/vector/page.h"

namespace presto {

/// Worker-local spooled copy of an exchange's output (Presto's fault-tolerant
/// "materialized" exchange): every page accepted into a partition is also
/// appended — snappy-compressed, in the spill column encoding — to that
/// partition's spool file. When a downstream task is lost mid-stage, the
/// coordinator re-runs just that task against the spool instead of restarting
/// the whole query: the spool is the complete history of its input partition.
///
/// File format per partition: a sequence of frames, each u32 length followed
/// by a Compress(kSnappy, ...) frame of one SerializeSpillPage block. No
/// trailer — end of file is end of stream (appends are incremental; readers
/// only open sealed partitions, bounded by RandomAccessFile::Size()).
///
/// Spooling is insurance, never the query's critical path: any write failure
/// (fault injection, disk trouble, byte budget, memory pressure) marks the
/// partition broken and spooling stops — the recovery ladder then falls
/// through to whole-query restart, but the running query is unaffected.
/// Compressed spool bytes are charged to the attached pool (the query's
/// system subtree) and capped by `budget_bytes`.
///
/// Counters (per-query registry, may be null): exchange.spool.page.written,
/// exchange.spool.byte.written, exchange.spool.byte.raw,
/// exchange.spool.byte.read, exchange.spool.page.replayed,
/// exchange.spool.partition.broken.
class ExchangeSpool {
 public:
  ExchangeSpool(FileSystem* fs, std::string dir, int num_partitions,
                MetricsRegistry* metrics, std::shared_ptr<MemoryPool> pool,
                int64_t budget_bytes);
  /// Deletes the spool files (best effort) and releases the pool charge.
  ~ExchangeSpool();

  ExchangeSpool(const ExchangeSpool&) = delete;
  ExchangeSpool& operator=(const ExchangeSpool&) = delete;

  int num_partitions() const { return static_cast<int>(partitions_.size()); }

  /// Appends one page to the partition's spool. On any failure the partition
  /// is marked broken (further appends are dropped) and the error returned —
  /// callers treat it as degraded recovery coverage, not a query failure.
  Status Append(int partition, const Page& page);

  /// Closes the partition's writer; no further appends are accepted. Called
  /// implicitly by OpenReader.
  Status Seal(int partition);

  /// True once an append to the partition failed: its spool is incomplete
  /// and must never be replayed (a partial replay would silently drop rows).
  bool broken(int partition) const;

  int64_t pages_spooled(int partition) const;
  int64_t bytes_spooled() const;

  /// Sequential reader over one sealed partition, page by page.
  class Reader {
   public:
    /// Next replayed page, or nullopt at end of spool.
    Result<std::optional<Page>> Next();

   private:
    friend class ExchangeSpool;
    std::shared_ptr<RandomAccessFile> file_;  // null = empty partition
    uint64_t offset_ = 0;
    uint64_t size_ = 0;
    MetricsRegistry::Counter* bytes_read_counter_ = nullptr;
    MetricsRegistry::Counter* pages_replayed_counter_ = nullptr;
  };

  /// Seals the partition and opens a reader positioned at its first page.
  /// Fails on a broken partition — replaying an incomplete spool would be
  /// silent data loss, the one outcome recovery must never produce.
  Result<std::unique_ptr<Reader>> OpenReader(int partition);

 private:
  struct Partition {
    std::unique_ptr<WritableFile> file;  // open while appending
    bool opened = false;                 // file was ever created
    bool sealed = false;
    bool broken = false;
    int64_t pages = 0;
  };

  std::string PartitionPath(int partition) const;
  Status AppendFrameLocked(Partition* part, int partition,
                           const std::vector<uint8_t>& compressed,
                           int64_t raw_bytes);

  FileSystem* fs_;
  const std::string dir_;
  std::shared_ptr<MemoryPool> pool_;  // charged the compressed spool bytes
  const int64_t budget_bytes_;

  mutable std::mutex mu_;
  std::vector<Partition> partitions_;
  int64_t bytes_spooled_ = 0;
  int64_t pool_reserved_ = 0;

  MetricsRegistry::Counter* pages_written_counter_ = nullptr;
  MetricsRegistry::Counter* bytes_written_counter_ = nullptr;
  MetricsRegistry::Counter* bytes_raw_counter_ = nullptr;
  MetricsRegistry::Counter* bytes_read_counter_ = nullptr;
  MetricsRegistry::Counter* pages_replayed_counter_ = nullptr;
  MetricsRegistry::Counter* partition_broken_counter_ = nullptr;
};

}  // namespace presto

#endif  // PRESTO_EXEC_EXCHANGE_SPOOL_H_
