#include "presto/exec/spill.h"

#include <atomic>

#include "presto/common/bytes.h"
#include "presto/common/fault_injection.h"
#include "presto/common/trace.h"
#include "presto/expr/serialization.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

constexpr uint32_t kSpillMagic = 0x53504C31;  // "SPL1"

// Column encodings inside a spill block.
constexpr uint8_t kTagInt64 = 0;   // BIGINT / INTEGER / TIMESTAMP
constexpr uint8_t kTagDouble = 1;
constexpr uint8_t kTagBool = 2;
constexpr uint8_t kTagString = 3;
constexpr uint8_t kTagBoxed = 4;   // per-row SerializeValue (complex types)

// Uniquifies run file names across concurrently spilling operators (task
// retries can run two attempts of the same partition at once).
std::atomic<uint64_t> g_spill_file_seq{0};

template <typename T>
void WriteTypedColumn(const FlatVector<T>& vec, uint8_t tag, ByteBuffer* out) {
  out->PutU8(tag);
  size_t n = vec.size();
  out->PutU8(vec.has_nulls() ? 1 : 0);
  if (vec.has_nulls()) out->PutRaw(vec.raw_nulls(), n);
  if constexpr (std::is_same_v<T, std::string>) {
    for (size_t i = 0; i < n; ++i) out->PutString(vec.ValueAt(i));
  } else {
    out->PutRaw(vec.values().data(), n * sizeof(T));
  }
}

Status WriteColumn(const VectorPtr& raw, ByteBuffer* out) {
  ASSIGN_OR_RETURN(VectorPtr flat, Vector::Flatten(raw));
  TypeKind kind = flat->type()->kind();
  if (IsIntegerLike(kind)) {
    WriteTypedColumn(static_cast<const FlatVector<int64_t>&>(*flat), kTagInt64,
                     out);
  } else if (kind == TypeKind::kDouble) {
    WriteTypedColumn(static_cast<const FlatVector<double>&>(*flat), kTagDouble,
                     out);
  } else if (kind == TypeKind::kBoolean) {
    WriteTypedColumn(static_cast<const FlatVector<uint8_t>&>(*flat), kTagBool,
                     out);
  } else if (kind == TypeKind::kVarchar) {
    WriteTypedColumn(static_cast<const FlatVector<std::string>&>(*flat),
                     kTagString, out);
  } else {
    out->PutU8(kTagBoxed);
    for (size_t i = 0; i < flat->size(); ++i) {
      SerializeValue(flat->GetValue(i), out);
    }
  }
  return Status::OK();
}

template <typename T>
Result<VectorPtr> ReadTypedColumn(const TypePtr& type, size_t num_rows,
                                  ByteReader* reader) {
  ASSIGN_OR_RETURN(uint8_t has_nulls, reader->ReadU8());
  std::vector<uint8_t> nulls;
  if (has_nulls != 0) {
    nulls.resize(num_rows);
    RETURN_IF_ERROR(reader->ReadRaw(nulls.data(), num_rows));
  }
  std::vector<T> values;
  if constexpr (std::is_same_v<T, std::string>) {
    values.reserve(num_rows);
    for (size_t i = 0; i < num_rows; ++i) {
      ASSIGN_OR_RETURN(std::string s, reader->ReadString());
      values.push_back(std::move(s));
    }
  } else {
    values.resize(num_rows);
    RETURN_IF_ERROR(reader->ReadRaw(values.data(), num_rows * sizeof(T)));
  }
  return std::static_pointer_cast<Vector>(
      std::make_shared<FlatVector<T>>(type, std::move(values),
                                      std::move(nulls)));
}

Result<VectorPtr> ReadColumn(const TypePtr& type, size_t num_rows,
                             ByteReader* reader) {
  ASSIGN_OR_RETURN(uint8_t tag, reader->ReadU8());
  switch (tag) {
    case kTagInt64:
      return ReadTypedColumn<int64_t>(type, num_rows, reader);
    case kTagDouble:
      return ReadTypedColumn<double>(type, num_rows, reader);
    case kTagBool:
      return ReadTypedColumn<uint8_t>(type, num_rows, reader);
    case kTagString:
      return ReadTypedColumn<std::string>(type, num_rows, reader);
    case kTagBoxed: {
      VectorBuilder builder(type);
      for (size_t i = 0; i < num_rows; ++i) {
        ASSIGN_OR_RETURN(Value v, DeserializeValue(reader));
        RETURN_IF_ERROR(builder.Append(v));
      }
      return builder.Build();
    }
    default:
      return Status::Corruption("spill: unknown column tag " +
                                std::to_string(tag));
  }
}

}  // namespace

Status SerializeSpillPage(const Page& page, ByteBuffer* out) {
  out->PutVarint(page.num_rows());
  out->PutVarint(page.num_columns());
  for (size_t c = 0; c < page.num_columns(); ++c) {
    out->PutString(page.column(c)->type()->ToString());
    RETURN_IF_ERROR(WriteColumn(page.column(c), out));
  }
  return Status::OK();
}

Result<Page> DeserializeSpillPage(ByteReader* reader) {
  ASSIGN_OR_RETURN(uint64_t num_rows, reader->ReadVarint());
  ASSIGN_OR_RETURN(uint64_t num_columns, reader->ReadVarint());
  std::vector<VectorPtr> columns;
  columns.reserve(num_columns);
  for (uint64_t c = 0; c < num_columns; ++c) {
    ASSIGN_OR_RETURN(std::string text, reader->ReadString());
    ASSIGN_OR_RETURN(TypePtr type, Type::Parse(text));
    ASSIGN_OR_RETURN(VectorPtr col, ReadColumn(type, num_rows, reader));
    columns.push_back(std::move(col));
  }
  return Page(std::move(columns), num_rows);
}

SpillFile::SpillFile(FileSystem* fs, std::string path, MetricsRegistry* metrics)
    : fs_(fs), path_(std::move(path)) {
  if (metrics != nullptr) {
    runs_written_counter_ = metrics->FindOrRegister("spill.run.written");
    bytes_written_counter_ = metrics->FindOrRegister("spill.byte.written");
    bytes_read_counter_ = metrics->FindOrRegister("spill.byte.read");
  }
}

Status SpillFile::WriteRun(const std::vector<Page>& pages) {
  // The entire run write (serialization + appends) counts as spill I/O in
  // the writing thread's blocked cell; the bytes feed per-operator
  // spill_write_bytes through the Next() wrapper's cell snapshot.
  BlockedTimer blocked(BlockedKind::kSpillIo);
  TraceEventScope span(TraceKind::kSpillWrite, "spill_write_run");
  RETURN_IF_ERROR(FaultInjector::Global().Hit("spill.write"));
  ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                   fs_->OpenForWrite(path_));

  ByteBuffer buf;
  buf.PutU32(kSpillMagic);
  ByteBuffer header;
  size_t num_columns = pages.empty() ? 0 : pages[0].num_columns();
  header.PutVarint(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    header.PutString(pages[0].column(c)->type()->ToString());
  }
  buf.PutU32(static_cast<uint32_t>(header.size()));
  buf.PutRaw(header.data(), header.size());
  RETURN_IF_ERROR(file->Append(buf.bytes()));
  bytes_written_ += static_cast<int64_t>(buf.size());

  for (const Page& page : pages) {
    if (page.empty()) continue;
    RETURN_IF_ERROR(FaultInjector::Global().Hit("spill.write"));
    ByteBuffer block;
    block.PutVarint(page.num_rows());
    for (size_t c = 0; c < page.num_columns(); ++c) {
      RETURN_IF_ERROR(WriteColumn(page.column(c), &block));
    }
    ByteBuffer framed;
    framed.PutU32(static_cast<uint32_t>(block.size()));
    framed.PutRaw(block.data(), block.size());
    RETURN_IF_ERROR(file->Append(framed.bytes()));
    bytes_written_ += static_cast<int64_t>(framed.size());
  }

  ByteBuffer end;
  end.PutU32(0);
  RETURN_IF_ERROR(file->Append(end.bytes()));
  bytes_written_ += static_cast<int64_t>(end.size());
  RETURN_IF_ERROR(file->Close());

  if (runs_written_counter_ != nullptr) runs_written_counter_->Add(1);
  if (bytes_written_counter_ != nullptr) {
    bytes_written_counter_->Add(bytes_written_);
  }
  AddThreadSpillWriteBytes(bytes_written_);
  span.SetArg("bytes", bytes_written_);
  return Status::OK();
}

Result<std::unique_ptr<SpillFile::Reader>> SpillFile::OpenReader() const {
  BlockedTimer blocked(BlockedKind::kSpillIo);
  TraceEventScope span(TraceKind::kSpillRead, "spill_open_run");
  RETURN_IF_ERROR(FaultInjector::Global().Hit("spill.read"));
  ASSIGN_OR_RETURN(std::shared_ptr<RandomAccessFile> file,
                   fs_->OpenForRead(path_));
  auto reader = std::unique_ptr<Reader>(new Reader());
  reader->file_ = std::move(file);
  reader->bytes_read_counter_ = bytes_read_counter_;

  uint8_t fixed[8];
  ASSIGN_OR_RETURN(size_t n, reader->file_->Read(0, sizeof(fixed), fixed));
  if (n < sizeof(fixed)) return Status::Corruption("spill: truncated header");
  ByteReader head(fixed, sizeof(fixed));
  ASSIGN_OR_RETURN(uint32_t magic, head.ReadU32());
  if (magic != kSpillMagic) return Status::Corruption("spill: bad magic");
  ASSIGN_OR_RETURN(uint32_t header_len, head.ReadU32());

  std::vector<uint8_t> header_bytes(header_len);
  ASSIGN_OR_RETURN(n, reader->file_->Read(8, header_len, header_bytes.data()));
  if (n < header_len) return Status::Corruption("spill: truncated header");
  ByteReader header(header_bytes);
  ASSIGN_OR_RETURN(uint64_t num_columns, header.ReadVarint());
  for (uint64_t c = 0; c < num_columns; ++c) {
    ASSIGN_OR_RETURN(std::string text, header.ReadString());
    ASSIGN_OR_RETURN(TypePtr type, Type::Parse(text));
    reader->types_.push_back(std::move(type));
  }
  reader->offset_ = 8 + header_len;
  return reader;
}

Result<std::optional<Page>> SpillFile::Reader::Next() {
  // Per-block read+decode: cheap enough not to span individually, but every
  // nanosecond counts as spill I/O (the merge loop lives inside an
  // operator's Next() frame, so the cell delta attributes there).
  BlockedTimer blocked(BlockedKind::kSpillIo);
  RETURN_IF_ERROR(FaultInjector::Global().Hit("spill.read"));
  uint8_t len_bytes[4];
  ASSIGN_OR_RETURN(size_t n, file_->Read(offset_, 4, len_bytes));
  if (n < 4) return Status::Corruption("spill: truncated block length");
  ByteReader len_reader(len_bytes, 4);
  ASSIGN_OR_RETURN(uint32_t block_len, len_reader.ReadU32());
  offset_ += 4;
  if (block_len == 0) return std::optional<Page>();

  std::vector<uint8_t> block(block_len);
  ASSIGN_OR_RETURN(n, file_->Read(offset_, block_len, block.data()));
  if (n < block_len) return Status::Corruption("spill: truncated block");
  offset_ += block_len;
  if (bytes_read_counter_ != nullptr) {
    bytes_read_counter_->Add(static_cast<int64_t>(block_len) + 4);
  }
  AddThreadSpillReadBytes(static_cast<int64_t>(block_len) + 4);

  ByteReader reader(block);
  ASSIGN_OR_RETURN(uint64_t num_rows, reader.ReadVarint());
  std::vector<VectorPtr> columns;
  columns.reserve(types_.size());
  for (const TypePtr& type : types_) {
    ASSIGN_OR_RETURN(VectorPtr col, ReadColumn(type, num_rows, &reader));
    columns.push_back(std::move(col));
  }
  return std::optional<Page>(Page(std::move(columns), num_rows));
}

void SpillFile::Remove() {
  Status st = fs_->DeleteFile(path_);
  (void)st;  // best effort: a vanished spill file is fine on teardown
}

Spiller::Spiller(FileSystem* fs, std::string dir, MetricsRegistry* metrics)
    : fs_(fs), dir_(std::move(dir)), metrics_(metrics) {}

Spiller::~Spiller() {
  for (auto& run : runs_) run->Remove();
}

Status Spiller::SpillRun(const std::vector<Page>& pages) {
  uint64_t seq = g_spill_file_seq.fetch_add(1, std::memory_order_relaxed);
  std::string path = dir_ + "/run-" + std::to_string(runs_.size()) + "-" +
                     std::to_string(seq) + ".spill";
  auto file = std::make_unique<SpillFile>(fs_, std::move(path), metrics_);
  RETURN_IF_ERROR(file->WriteRun(pages));
  total_bytes_ += file->bytes_written();
  runs_.push_back(std::move(file));
  return Status::OK();
}

Result<std::vector<std::unique_ptr<SpillFile::Reader>>> Spiller::OpenAllRuns()
    const {
  std::vector<std::unique_ptr<SpillFile::Reader>> readers;
  readers.reserve(runs_.size());
  for (const auto& run : runs_) {
    ASSIGN_OR_RETURN(std::unique_ptr<SpillFile::Reader> reader,
                     run->OpenReader());
    readers.push_back(std::move(reader));
  }
  return readers;
}

namespace {
std::vector<std::vector<Page>> WrapSingleRun(std::vector<Page> run) {
  std::vector<std::vector<Page>> runs;
  if (!run.empty()) runs.push_back(std::move(run));
  return runs;
}
}  // namespace

SpillMergeCursor::SpillMergeCursor(
    std::vector<std::unique_ptr<SpillFile::Reader>> readers,
    std::vector<Page> in_memory_run, Comparator cmp)
    : SpillMergeCursor(std::move(readers),
                       WrapSingleRun(std::move(in_memory_run)),
                       std::move(cmp)) {}

SpillMergeCursor::SpillMergeCursor(
    std::vector<std::unique_ptr<SpillFile::Reader>> readers,
    std::vector<std::vector<Page>> in_memory_runs, Comparator cmp)
    : cmp_(std::move(cmp)) {
  for (auto& reader : readers) {
    Source s;
    s.reader = std::move(reader);
    sources_.push_back(std::move(s));
  }
  for (auto& run : in_memory_runs) {
    if (run.empty()) continue;
    Source s;
    s.memory_pages = std::move(run);
    sources_.push_back(std::move(s));
  }
}

Status SpillMergeCursor::LoadIfNeeded(Source* s) {
  while (!s->exhausted && (!s->loaded || s->row >= s->page.num_rows())) {
    if (s->reader != nullptr) {
      ASSIGN_OR_RETURN(std::optional<Page> page, s->reader->Next());
      if (!page.has_value()) {
        s->exhausted = true;
        break;
      }
      s->page = std::move(*page);
    } else {
      if (s->memory_index >= s->memory_pages.size()) {
        s->exhausted = true;
        break;
      }
      s->page = std::move(s->memory_pages[s->memory_index++]);
    }
    s->row = 0;
    s->loaded = true;
  }
  return Status::OK();
}

Result<bool> SpillMergeCursor::Advance() {
  if (started_) {
    sources_[current_].row++;
  }
  started_ = true;
  size_t best = sources_.size();
  for (size_t i = 0; i < sources_.size(); ++i) {
    Source* s = &sources_[i];
    RETURN_IF_ERROR(LoadIfNeeded(s));
    if (s->exhausted) continue;
    if (best == sources_.size() ||
        cmp_(s->page, s->row, sources_[best].page, sources_[best].row) < 0) {
      best = i;
    }
  }
  if (best == sources_.size()) return false;
  current_ = best;
  return true;
}

}  // namespace presto
