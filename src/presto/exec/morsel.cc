#include "presto/exec/morsel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>

#include "presto/common/trace.h"

namespace presto {

SplitMorselSource::SplitMorselSource(Connector* connector,
                                     AcceptedPushdown pushdown,
                                     std::vector<SplitPtr> splits,
                                     size_t morsel_rows)
    : connector_(connector),
      pushdown_(std::move(pushdown)),
      splits_(std::move(splits)),
      morsel_rows_(morsel_rows == 0 ? 65536 : morsel_rows) {}

Result<std::optional<Page>> SplitMorselSource::NextMorsel() {
  std::lock_guard<std::mutex> lock(mu_);
  while (true) {
    if (next_chunk_ < chunks_.size()) {
      return std::optional<Page>(chunks_[next_chunk_++]);
    }
    if (source_ == nullptr) {
      if (next_split_ >= splits_.size()) return std::optional<Page>();
      ASSIGN_OR_RETURN(source_, connector_->CreatePageSource(
                                    splits_[next_split_++], pushdown_));
    }
    ASSIGN_OR_RETURN(std::optional<Page> page, source_->NextPage());
    if (!page.has_value()) {
      finished_sources_.Accumulate(source_->scan_stats());
      source_.reset();
      continue;
    }
    size_t n = page->num_rows();
    if (n == 0) continue;
    if (n <= morsel_rows_) return page;
    // Slice an oversized page into morsel-sized zero-copy row-range wraps.
    chunks_.clear();
    next_chunk_ = 0;
    std::vector<int32_t> rows;
    for (size_t start = 0; start < n; start += morsel_rows_) {
      size_t end = std::min(n, start + morsel_rows_);
      rows.resize(end - start);
      for (size_t i = start; i < end; ++i) {
        rows[i - start] = static_cast<int32_t>(i);
      }
      chunks_.push_back(page->WrapRows(rows));
    }
  }
}

ScanSourceStats SplitMorselSource::TakeScanStats() {
  std::lock_guard<std::mutex> lock(mu_);
  ScanSourceStats total = finished_sources_;
  if (source_ != nullptr) total.Accumulate(source_->scan_stats());
  ScanSourceStats delta = total.Delta(handed_out_);
  handed_out_ = total;
  return delta;
}

Status RunParallel(WorkStealingPool* pool, int parallelism,
                   const std::function<Status(int)>& body) {
  if (parallelism <= 1) return parallelism == 1 ? body(0) : Status::OK();

  // Claim protocol: every runner (caller or helper) claims slots until none
  // remain. A helper that reaches the front of the pool's queue after the
  // caller claimed everything finds no slot and exits without touching
  // `body`, so the caller can safely return as soon as next_ == parallelism
  // and running_ == 0 — no handshake with unstarted helpers is needed.
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    int next = 0;
    int running = 0;
    int parallelism = 0;
    const std::function<Status(int)>* body = nullptr;
    Status error;

    bool TryClaim(int* slot) {
      std::lock_guard<std::mutex> lock(mu);
      if (next >= parallelism) return false;
      *slot = next++;
      ++running;
      return true;
    }
    void FinishSlot(Status st) {
      std::lock_guard<std::mutex> lock(mu);
      if (error.ok() && !st.ok()) error = std::move(st);
      if (--running == 0) cv.notify_all();
    }
  };
  auto shared = std::make_shared<Shared>();
  shared->parallelism = parallelism;
  shared->body = &body;

  auto drain = [](const std::shared_ptr<Shared>& s) {
    int slot = 0;
    while (s->TryClaim(&slot)) s->FinishSlot((*s->body)(slot));
  };

  // Blocked-time carry: helper threads accumulate their cells' deltas
  // (spill I/O, memory waits, exchange waits incurred while running `body`)
  // here, and the caller folds the total into its own cell after the join.
  // That preserves the cumulative attribution rule across the fan-out — the
  // operator whose Next() frame ran RunParallel absorbs the helpers' blocked
  // time exactly as if it had run every slot itself. Only the Submit path is
  // instrumented (the caller's own drain already writes its own cell), so
  // nothing is counted twice.
  struct Carry {
    std::atomic<int64_t> nanos[kNumBlockedKinds] = {};
    std::atomic<int64_t> spill_write_bytes{0};
    std::atomic<int64_t> spill_read_bytes{0};
  };
  auto carry = std::make_shared<Carry>();

  // Helper slots measure their cell delta around each body call and publish
  // it to the carry *before* FinishSlot, so the caller's cv join below
  // happens-after every contribution.
  auto helper_drain = [carry](const std::shared_ptr<Shared>& s) {
    int slot = 0;
    while (s->TryClaim(&slot)) {
      BlockedCounters before = ThreadBlockedCounters();
      Status st = (*s->body)(slot);
      BlockedCounters delta = ThreadBlockedCounters().Delta(before);
      for (int k = 0; k < kNumBlockedKinds; ++k) {
        carry->nanos[k].fetch_add(delta.nanos[k], std::memory_order_relaxed);
      }
      carry->spill_write_bytes.fetch_add(delta.spill_write_bytes,
                                         std::memory_order_relaxed);
      carry->spill_read_bytes.fetch_add(delta.spill_read_bytes,
                                        std::memory_order_relaxed);
      s->FinishSlot(std::move(st));
    }
  };

  int helpers = parallelism - 1;
  if (pool != nullptr) {
    helpers = std::min<int>(helpers, static_cast<int>(pool->num_threads()));
    for (int i = 0; i < helpers; ++i) {
      if (!pool->Submit([shared, helper_drain] { helper_drain(shared); })) {
        break;
      }
    }
  }
  drain(shared);

  std::unique_lock<std::mutex> lock(shared->mu);
  shared->cv.wait(lock, [&] {
    return shared->running == 0 && shared->next >= shared->parallelism;
  });
  lock.unlock();
  BlockedCounters carried;
  for (int k = 0; k < kNumBlockedKinds; ++k) {
    carried.nanos[k] = carry->nanos[k].load(std::memory_order_relaxed);
  }
  carried.spill_write_bytes =
      carry->spill_write_bytes.load(std::memory_order_relaxed);
  carried.spill_read_bytes =
      carry->spill_read_bytes.load(std::memory_order_relaxed);
  ThreadBlockedCounters().Accumulate(carried);
  return shared->error;
}

}  // namespace presto
