#ifndef PRESTO_EXEC_OPERATORS_H_
#define PRESTO_EXEC_OPERATORS_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "presto/common/metrics.h"
#include "presto/connector/connector.h"
#include "presto/exec/exchange.h"
#include "presto/expr/evaluator.h"
#include "presto/planner/plan.h"

namespace presto {

/// Pull-based vectorized operator: Next() produces the next page or nullopt
/// when exhausted. Single-threaded within a task; parallelism comes from
/// running tasks (one per split batch) concurrently.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual Result<std::optional<Page>> Next() = 0;

  /// Rows this operator has emitted (basic operator stats).
  int64_t rows_produced() const { return rows_produced_; }

 protected:
  int64_t rows_produced_ = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Maps variable names to channel indices for a node's input.
std::map<std::string, int> MakeLayout(const std::vector<VariablePtr>& variables);

/// Engine-side resource limits and execution options. The paper's Section
/// XII.C: big joins fail with "Insufficient Resource" when the build side
/// exceeds what a worker can hold in memory.
struct ExecutionLimits {
  int64_t max_join_build_rows = 10'000'000;
  /// Run aggregation/join through the typed columnar kernel layer when the
  /// key/aggregate types are covered; off forces the Value-boxed fallback
  /// (session property vectorized_kernels).
  bool vectorized_kernels = true;
  /// Optional per-query counters (groups created, hash probes, kernel vs
  /// fallback page counts). Not owned; may be null.
  MetricsRegistry* metrics = nullptr;
};

/// Builds operator trees from plan fragments. `exchanges` resolves
/// RemoteSourceNode fragment ids to their buffers; `splits` feeds the
/// (single) TableScanNode of a leaf fragment.
class OperatorBuilder {
 public:
  OperatorBuilder(const CatalogRegistry* catalogs, FunctionRegistry* functions,
                  const std::map<int, ExchangeBuffer*>* exchanges,
                  const std::vector<SplitPtr>* splits,
                  ExecutionLimits limits = ExecutionLimits())
      : catalogs_(catalogs),
        functions_(functions),
        exchanges_(exchanges),
        splits_(splits),
        limits_(limits) {}

  Result<OperatorPtr> Build(const PlanNodePtr& node);

 private:
  const CatalogRegistry* catalogs_;
  FunctionRegistry* functions_;
  const std::map<int, ExchangeBuffer*>* exchanges_;
  const std::vector<SplitPtr>* splits_;
  ExecutionLimits limits_;
};

}  // namespace presto

#endif  // PRESTO_EXEC_OPERATORS_H_
