#ifndef PRESTO_EXEC_OPERATORS_H_
#define PRESTO_EXEC_OPERATORS_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "presto/common/memory_pool.h"
#include "presto/common/metrics.h"
#include "presto/common/trace.h"
#include "presto/connector/connector.h"
#include "presto/exec/exchange.h"
#include "presto/exec/query_stats.h"
#include "presto/expr/evaluator.h"
#include "presto/fs/file_system.h"
#include "presto/planner/plan.h"

namespace presto {

class WorkStealingPool;
class MorselSource;

/// Pull-based vectorized operator: Next() produces the next page or nullopt
/// when exhausted. Each operator instance is driven by one thread at a time;
/// parallelism comes from running tasks concurrently and, within a task,
/// from morsel-driven replicated operator chains that share a morsel source
/// and merge in their parent (aggregation, join build).
///
/// Next() is a non-virtual wrapper that records OperatorStats (output
/// rows/bytes/pages, wall and thread-CPU time) around the subclass's
/// NextInternal(). Recorded time is cumulative: it includes time spent
/// pulling from children, so the root operator's wall time approximates the
/// task's. Input-side stats are derived at CollectStats() time from the
/// children's outputs.
class Operator {
 public:
  virtual ~Operator() {
    // An operator abandoned mid-stream (limit reached, error unwound the
    // task) still closes its trace span with whatever it accumulated.
    FinishTraceSpan();
  }

  /// Pulls the next page (or nullopt when exhausted), recording stats.
  Result<std::optional<Page>> Next();

  /// Rows this operator has emitted (basic operator stats).
  int64_t rows_produced() const { return stats_.output_rows; }

  const OperatorStats& stats() const { return stats_; }

  /// Ties this operator instance to its plan node for the query stats tree
  /// (set by OperatorBuilder right after construction).
  void SetIdentity(int plan_node_id, std::string operator_type) {
    stats_.plan_node_id = plan_node_id;
    stats_.operator_type = std::move(operator_type);
  }

  /// Registers `child` for input-stat derivation and recursive collection.
  /// Called by OperatorBuilder; `child` must outlive this operator (it is
  /// owned by a subclass member).
  void AddChild(const Operator* child) { children_.push_back(child); }

  /// Turns off the timing portion of stats recording (session property
  /// query_stats=false); row/page counts are always kept — the engine needs
  /// them anyway.
  void set_collect_stats(bool on) { collect_stats_ = on; }

  /// Arms the cooperative per-query deadline (SteadyNowNanos epoch, 0 =
  /// none): Next() checks it at every batch boundary and returns a clean
  /// kUnavailable once it passes, so a hung or fault-looping query unwinds
  /// instead of running forever (session property query_timeout_millis).
  void set_deadline_nanos(int64_t steady_nanos) {
    deadline_steady_nanos_ = steady_nanos;
  }

  /// Arms the low-memory-killer cancellation flag: Next() checks it at every
  /// batch boundary (same cadence as the deadline) and returns a classified
  /// kResourceExhausted once the coordinator sets it, so a killed query's
  /// tasks unwind cooperatively and release their reservations.
  void set_kill_flag(std::shared_ptr<const std::atomic<bool>> flag) {
    kill_flag_ = std::move(flag);
  }

  /// Appends this operator's stats (input side derived from children, or
  /// mirrored from output for leaves) and recursively every child's.
  void CollectStats(std::vector<OperatorStats>* out) const;

 protected:
  virtual Result<std::optional<Page>> NextInternal() = 0;

  /// Raises the buffered-rows high-water mark (hash table groups, join
  /// build rows, sort buffer).
  void RecordPeakBuffered(int64_t rows) {
    if (rows > stats_.peak_buffered_rows) stats_.peak_buffered_rows = rows;
  }

  /// Records one revocation: `bytes` of in-memory state written out as a
  /// spill run (surfaced in EXPLAIN ANALYZE per-operator spill stats).
  void RecordSpill(int64_t bytes) {
    stats_.spilled_bytes += bytes;
    stats_.spilled_runs += 1;
  }

  OperatorStats stats_;
  bool collect_stats_ = true;
  int64_t deadline_steady_nanos_ = 0;
  std::shared_ptr<const std::atomic<bool>> kill_flag_;

  /// This operator instance's trace span, lazily opened at the first Next()
  /// under a live TraceContext (the pull model guarantees the parent's span
  /// exists by then). Subclasses that fan work out to other threads
  /// (aggregation chains, join builds) use these to parent their sub-spans.
  TraceRecorder* trace_recorder_ = nullptr;
  int64_t trace_span_id_ = 0;

  /// Closes the operator span (idempotent), stamping the final stats as span
  /// args — the trace and OperatorStats reconcile exactly because both are
  /// the same integers.
  void FinishTraceSpan();

 private:
  std::vector<const Operator*> children_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Maps variable names to channel indices for a node's input.
std::map<std::string, int> MakeLayout(const std::vector<VariablePtr>& variables);

/// Engine-side resource limits and execution options. The paper's Section
/// XII.C: big joins fail with "Insufficient Resource" when the build side
/// exceeds what a worker can hold in memory.
struct ExecutionLimits {
  int64_t max_join_build_rows = 10'000'000;
  /// Run aggregation/join through the typed columnar kernel layer when the
  /// key/aggregate types are covered; off forces the Value-boxed fallback
  /// (session property vectorized_kernels).
  bool vectorized_kernels = true;
  /// Optional per-query counters (groups created, hash probes, kernel vs
  /// fallback page counts). Not owned; may be null.
  MetricsRegistry* metrics = nullptr;
  /// Record per-operator wall/CPU time and byte counts (session property
  /// query_stats). Row/page counts are recorded regardless.
  bool collect_stats = true;
  /// Absolute real-time deadline (SteadyNowNanos epoch, 0 = none) enforced
  /// cooperatively at operator batch boundaries; derived from the session
  /// property query_timeout_millis.
  int64_t deadline_steady_nanos = 0;

  // -- Morsel-driven intra-task parallelism ----------------------------------
  /// Number of replicated operator chains per eligible task subtree (session
  /// property task_threads). 1 = classic single-threaded task.
  int task_threads = 1;
  /// Worker-local work-stealing pool supplying helper threads for the
  /// replicated chains. Not owned; null means the calling thread runs every
  /// chain itself (correct, just serial).
  WorkStealingPool* morsel_pool = nullptr;
  /// Target morsel size in rows: leaf scans hand out pages at most this
  /// large so chains load-balance at cache-friendly granularity.
  size_t morsel_rows = 65536;
  /// Memory reservations move in steps of this many bytes (0 = byte-exact):
  /// per-chain operator state batches its pool-tree updates so accounting
  /// stays off the per-page hot path (session memory_reservation_quantum).
  int64_t memory_quantum = 1 << 20;

  // -- Memory accounting (null/defaults = accounting off) --------------------
  /// Task-level memory pool; memory-hungry operators (aggregation, sort,
  /// join builds) add child pools and reserve their EstimateBytes footprint
  /// as it grows. Null disables accounting (session memory_accounting=false).
  std::shared_ptr<MemoryPool> task_pool;
  /// The query's user-memory pool (the query_max_memory cap level), used to
  /// classify a reservation failure: failing at this level means the query
  /// outgrew its own cap (spill or fail); failing above it means the worker
  /// is full (ask the arbiter / low-memory killer).
  MemoryPool* query_user_pool = nullptr;
  /// The resource group's pool (the memory_fraction cap between query and
  /// worker); null when resource groups are disabled. A failure here is the
  /// tenant outgrowing its slice, classified like a query-cap failure (spill
  /// within the tenant) rather than a worker-cap one — the cross-tenant
  /// low-memory killer is reserved for genuine worker exhaustion.
  MemoryPool* query_group_pool = nullptr;
  /// Worker-level arbitration hook (the coordinator's low-memory killer);
  /// may be null. Invoked only after self-revocation could not free enough.
  MemoryArbiter* arbiter = nullptr;
  /// Coordinator-assigned id of the owning query (arbiter bookkeeping).
  int64_t query_id = 0;
  /// Low-memory-killer cancellation flag shared with the coordinator.
  std::shared_ptr<const std::atomic<bool>> query_killed;
  /// Revocable spill (session spill_enabled / spill_path): when a
  /// reservation fails at the query cap, HashAggregation and Sort write
  /// sorted runs to spill_dir behind spill_fs and merge them on output.
  bool spill_enabled = false;
  FileSystem* spill_fs = nullptr;
  std::string spill_dir;
};

/// Builds operator trees from plan fragments. `exchanges` resolves
/// RemoteSourceNode fragment ids to their partitioned exchanges; `splits`
/// feeds the (single) TableScanNode of a leaf fragment. `task_partition` is
/// the index of this task within its stage: a RemoteSource over a
/// hash-partitioned upstream consumes exactly that partition of the
/// exchange (gather upstreams always consume partition 0).
class OperatorBuilder {
 public:
  OperatorBuilder(const CatalogRegistry* catalogs, FunctionRegistry* functions,
                  const std::map<int, PartitionedExchange*>* exchanges,
                  const std::vector<SplitPtr>* splits,
                  ExecutionLimits limits = ExecutionLimits(),
                  int task_partition = 0)
      : catalogs_(catalogs),
        functions_(functions),
        exchanges_(exchanges),
        splits_(splits),
        limits_(limits),
        task_partition_(task_partition) {}

  /// Builds the operator tree for `node`, stamping each operator with its
  /// plan node id and type name for the query stats tree.
  Result<OperatorPtr> Build(const PlanNodePtr& node);

 private:
  Result<OperatorPtr> BuildNode(const PlanNodePtr& node);

  /// Builds `limits_.task_threads` copies of the subtree under `node`, all
  /// pulling from one shared morsel source, for a parent that merges their
  /// partial states (aggregation consume, join build). Returns an empty
  /// vector when the subtree is not eligible (stateful nodes, no splits) or
  /// parallelism is off.
  Result<std::vector<OperatorPtr>> BuildParallelChains(const PlanNodePtr& node);

  /// The shared morsel source for the subtree, or null if ineligible: the
  /// subtree must be a chain of stateless row-preserving nodes over a single
  /// negotiated table scan (with splits) or remote source.
  Result<std::shared_ptr<MorselSource>> MakeMorselSource(
      const PlanNodePtr& node);

  const CatalogRegistry* catalogs_;
  FunctionRegistry* functions_;
  const std::map<int, PartitionedExchange*>* exchanges_;
  const std::vector<SplitPtr>* splits_;
  ExecutionLimits limits_;
  int task_partition_ = 0;
  /// Non-null while building replicated chains: leaf scan / remote source
  /// nodes become MorselScanOperators over this shared source.
  std::shared_ptr<MorselSource> morsel_source_override_;
};

}  // namespace presto

#endif  // PRESTO_EXEC_OPERATORS_H_
