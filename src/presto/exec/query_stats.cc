#include "presto/exec/query_stats.h"

#include <algorithm>
#include <cstdio>

#include "presto/planner/fragmenter.h"

namespace presto {

void OperatorStats::Merge(const OperatorStats& other) {
  if (plan_node_id < 0) plan_node_id = other.plan_node_id;
  if (operator_type.empty()) operator_type = other.operator_type;
  input_rows += other.input_rows;
  input_bytes += other.input_bytes;
  input_pages += other.input_pages;
  output_rows += other.output_rows;
  output_bytes += other.output_bytes;
  output_pages += other.output_pages;
  wall_nanos += other.wall_nanos;
  cpu_nanos += other.cpu_nanos;
  exchange_wait_nanos += other.exchange_wait_nanos;
  spill_io_nanos += other.spill_io_nanos;
  memory_wait_nanos += other.memory_wait_nanos;
  queued_nanos += other.queued_nanos;
  scan_io_nanos += other.scan_io_nanos;
  spill_write_bytes += other.spill_write_bytes;
  spill_read_bytes += other.spill_read_bytes;
  peak_buffered_rows = std::max(peak_buffered_rows, other.peak_buffered_rows);
  kernel_pages += other.kernel_pages;
  fallback_pages += other.fallback_pages;
  spilled_bytes += other.spilled_bytes;
  spilled_runs += other.spilled_runs;
  scan_row_groups_total += other.scan_row_groups_total;
  scan_row_groups_skipped += other.scan_row_groups_skipped;
  scan_pages_total += other.scan_pages_total;
  scan_pages_read += other.scan_pages_read;
  scan_pages_skipped_stats += other.scan_pages_skipped_stats;
  scan_pages_skipped_lazy += other.scan_pages_skipped_lazy;
  scan_rows_pruned_late += other.scan_rows_pruned_late;
  scan_dict_code_hits += other.scan_dict_code_hits;
  scan_bytes_read += other.scan_bytes_read;
  num_instances += other.num_instances > 0 ? other.num_instances : 1;
}

std::string OperatorStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "rows: %lld (%.1f KB), wall: %.2f ms, cpu: %.2f ms",
                static_cast<long long>(output_rows), output_bytes / 1024.0,
                wall_nanos / 1e6, cpu_nanos / 1e6);
  std::string out = buf;
  std::snprintf(buf, sizeof(buf),
                ", blocked: exch %.2f / spill-io %.2f / mem %.2f / "
                "queued %.2f / scan-io %.2f ms",
                exchange_wait_nanos / 1e6, spill_io_nanos / 1e6,
                memory_wait_nanos / 1e6, queued_nanos / 1e6,
                scan_io_nanos / 1e6);
  out += buf;
  out += ", input: " + std::to_string(input_rows) + " rows";
  if (scan_pages_total > 0 || scan_row_groups_total > 0) {
    char scan_buf[256];
    std::snprintf(
        scan_buf, sizeof(scan_buf),
        ", scan: row_groups %lld (skipped %lld), pages %lld read / "
        "%lld pages_skipped (stats %lld, lazy %lld), rows_pruned %lld, "
        "dict_code_hits %lld, read %.1f KB",
        static_cast<long long>(scan_row_groups_total),
        static_cast<long long>(scan_row_groups_skipped),
        static_cast<long long>(scan_pages_read),
        static_cast<long long>(scan_pages_skipped_stats +
                               scan_pages_skipped_lazy),
        static_cast<long long>(scan_pages_skipped_stats),
        static_cast<long long>(scan_pages_skipped_lazy),
        static_cast<long long>(scan_rows_pruned_late),
        static_cast<long long>(scan_dict_code_hits), scan_bytes_read / 1024.0);
    out += scan_buf;
  }
  if (peak_buffered_rows > 0) {
    out += ", peak buffered: " + std::to_string(peak_buffered_rows) + " rows";
  }
  if (kernel_pages > 0 || fallback_pages > 0) {
    out += ", pages: " + std::to_string(kernel_pages) + " kernel / " +
           std::to_string(fallback_pages) + " fallback";
  }
  if (spilled_runs > 0 || spill_write_bytes > 0 || spill_read_bytes > 0) {
    char spill_buf[128];
    std::snprintf(spill_buf, sizeof(spill_buf),
                  ", spilled: %.1f KB (%lld runs, wrote %.1f KB, read %.1f KB)",
                  spilled_bytes / 1024.0, static_cast<long long>(spilled_runs),
                  spill_write_bytes / 1024.0, spill_read_bytes / 1024.0);
    out += spill_buf;
  }
  if (num_instances > 1) {
    out += ", instances: " + std::to_string(num_instances);
  }
  return out;
}

void QueryStatsCollector::AddTask(int fragment_id, int root_plan_node_id,
                                  const std::vector<OperatorStats>& operators,
                                  int64_t task_wall_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  StageStats& stage = stages_[fragment_id];
  stage.fragment_id = fragment_id;
  stage.num_tasks += 1;
  stage.wall_nanos += task_wall_nanos;
  for (const OperatorStats& op : operators) {
    stats_.operators[op.plan_node_id].Merge(op);
    stage.cpu_nanos += op.cpu_nanos;
    if (op.plan_node_id == root_plan_node_id) {
      stage.output_rows += op.output_rows;
      stage.output_bytes += op.output_bytes;
    }
  }
  stats_.total_tasks += 1;
  stats_.total_wall_nanos += task_wall_nanos;
}

void QueryStatsCollector::SetStageExchange(int fragment_id, int num_partitions,
                                           int64_t exchanged_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  StageStats& stage = stages_[fragment_id];
  stage.fragment_id = fragment_id;
  stage.num_partitions = num_partitions;
  stage.exchanged_bytes = exchanged_bytes;
}

QueryStats QueryStatsCollector::Finish() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryStats out = stats_;
  out.stages.clear();
  out.total_cpu_nanos = 0;
  for (const auto& [id, stage] : stages_) {
    out.stages.push_back(stage);
    out.total_cpu_nanos += stage.cpu_nanos;
    if (id == 0) {  // root fragment: its output is the query output
      out.output_rows = stage.output_rows;
      out.output_bytes = stage.output_bytes;
    }
  }
  return out;
}

namespace {

// Finds the stats record annotating `node`. Output nodes are pure
// passthroughs with no operator instance, so they borrow their source's
// stats for display.
const OperatorStats* StatsFor(const QueryStats& stats, const PlanNode& node) {
  auto it = stats.operators.find(node.id());
  if (it != stats.operators.end()) return &it->second;
  if (node.kind() == PlanNodeKind::kOutput && !node.sources().empty()) {
    return StatsFor(stats, *node.sources()[0]);
  }
  return nullptr;
}

void RenderNode(const PlanNode& node, const QueryStats& stats, int indent,
                std::string* out) {
  std::string pad(indent * 2, ' ');
  *out += pad + "- " + node.Label() + "\n";
  if (const OperatorStats* op = StatsFor(stats, node)) {
    *out += pad + "    " + op->ToString() + "\n";
  }
  for (const PlanNodePtr& source : node.sources()) {
    RenderNode(*source, stats, indent + 1, out);
  }
}

}  // namespace

std::string RenderPlanWithStats(const FragmentedPlan& plan,
                                const QueryStats& stats) {
  std::string out;
  if (stats.queued_nanos > 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "Queued: %.2f ms\n",
                  stats.queued_nanos / 1e6);
    out += buf;
  }
  for (const PlanFragment& fragment : plan.fragments) {
    out += "Fragment " + std::to_string(fragment.id) +
           (fragment.leaf ? " (leaf)"
                          : (fragment.id == 0 ? " (root)" : " (intermediate)"));
    for (const StageStats& stage : stats.stages) {
      if (stage.fragment_id == fragment.id) {
        char buf[224];
        std::snprintf(buf, sizeof(buf),
                      " [tasks: %d, output: %lld rows, wall: %.2f ms, "
                      "cpu: %.2f ms]",
                      stage.num_tasks,
                      static_cast<long long>(stage.output_rows),
                      stage.wall_nanos / 1e6, stage.cpu_nanos / 1e6);
        out += buf;
        if (stage.num_partitions > 0) {
          std::snprintf(buf, sizeof(buf),
                        " [%s -> %d partitions, exchanged: %.1f KB]",
                        fragment.output_partitioning.ToString().c_str(),
                        stage.num_partitions, stage.exchanged_bytes / 1024.0);
          out += buf;
        }
        break;
      }
    }
    out += "\n";
    RenderNode(*fragment.root, stats, 1, &out);
  }
  return out;
}

}  // namespace presto
