#include "presto/exec/exchange_spool.h"

#include "presto/common/bytes.h"
#include "presto/common/compression.h"
#include "presto/common/fault_injection.h"
#include "presto/common/trace.h"
#include "presto/exec/spill.h"

namespace presto {

ExchangeSpool::ExchangeSpool(FileSystem* fs, std::string dir,
                             int num_partitions, MetricsRegistry* metrics,
                             std::shared_ptr<MemoryPool> pool,
                             int64_t budget_bytes)
    : fs_(fs),
      dir_(std::move(dir)),
      pool_(std::move(pool)),
      budget_bytes_(budget_bytes > 0 ? budget_bytes : INT64_MAX),
      partitions_(std::max(1, num_partitions)) {
  if (metrics != nullptr) {
    pages_written_counter_ =
        metrics->FindOrRegister("exchange.spool.page.written");
    bytes_written_counter_ =
        metrics->FindOrRegister("exchange.spool.byte.written");
    bytes_raw_counter_ = metrics->FindOrRegister("exchange.spool.byte.raw");
    bytes_read_counter_ = metrics->FindOrRegister("exchange.spool.byte.read");
    pages_replayed_counter_ =
        metrics->FindOrRegister("exchange.spool.page.replayed");
    partition_broken_counter_ =
        metrics->FindOrRegister("exchange.spool.partition.broken");
  }
}

ExchangeSpool::~ExchangeSpool() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t p = 0; p < partitions_.size(); ++p) {
    Partition& part = partitions_[p];
    if (part.file != nullptr) {
      (void)part.file->Close();
      part.file = nullptr;
    }
    if (part.opened) {
      // Best effort: a spool file that outlives the query is just garbage.
      (void)fs_->DeleteFile(PartitionPath(static_cast<int>(p)));
    }
  }
  if (pool_ != nullptr && pool_reserved_ > 0) pool_->Release(pool_reserved_);
  pool_reserved_ = 0;
}

std::string ExchangeSpool::PartitionPath(int partition) const {
  return dir_ + "/part-" + std::to_string(partition) + ".spool";
}

Status ExchangeSpool::Append(int partition, const Page& page) {
  if (page.empty()) return Status::OK();
  // The whole append (serialize + compress + write) counts as spill I/O for
  // blocked-time attribution and records a spool-write span.
  BlockedTimer blocked(BlockedKind::kSpillIo);
  TraceEventScope span(TraceKind::kSpoolWrite, "spool_write_page");
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Partition& part = partitions_[partition];
    if (part.broken || part.sealed) {
      return part.broken
                 ? Status::Unavailable("exchange spool partition is broken")
                 : Status::Unavailable("exchange spool partition is sealed");
    }
  }
  // Serialize + compress outside the spool-wide lock: every producer task of
  // a stage tees through one spool, and compression dominates the append, so
  // doing it under mu_ would serialize the producers. Only the frame write
  // and accounting need the lock.
  Status st = FaultInjector::Global().Hit("exchange.spool.write");
  ByteBuffer block;
  std::vector<uint8_t> compressed;
  if (st.ok()) st = SerializeSpillPage(page, &block);
  if (st.ok()) {
    compressed = Compress(CompressionKind::kSnappy, block.data(), block.size());
  }
  std::lock_guard<std::mutex> lock(mu_);
  Partition& part = partitions_[partition];
  if (part.broken || part.sealed) {
    // Raced a concurrent poison/seal while compressing; nothing was written,
    // so this append neither breaks the partition nor double-counts it.
    return part.broken
               ? Status::Unavailable("exchange spool partition is broken")
               : Status::Unavailable("exchange spool partition is sealed");
  }
  if (st.ok()) {
    st = AppendFrameLocked(&part, partition, compressed,
                           static_cast<int64_t>(block.size()));
  }
  if (!st.ok()) {
    // One failed append poisons the partition: its spool is now incomplete,
    // and an incomplete spool replayed later would silently drop rows. The
    // coordinator's recovery ladder falls through to restart-once instead.
    part.broken = true;
    if (part.file != nullptr) {
      (void)part.file->Close();
      part.file = nullptr;
    }
    if (partition_broken_counter_ != nullptr) partition_broken_counter_->Add(1);
  } else {
    span.SetArg("bytes", static_cast<int64_t>(compressed.size()) + 4);
  }
  return st;
}

Status ExchangeSpool::AppendFrameLocked(Partition* part, int partition,
                                        const std::vector<uint8_t>& compressed,
                                        int64_t raw_bytes) {
  const int64_t frame_bytes =
      static_cast<int64_t>(compressed.size()) + static_cast<int64_t>(4);
  if (bytes_spooled_ + frame_bytes > budget_bytes_) {
    return Status::ResourceExhausted(
        "exchange spool byte budget exceeded (exchange_spool_budget_bytes)");
  }
  if (pool_ != nullptr) {
    RETURN_IF_ERROR(pool_->Reserve(frame_bytes));
    pool_reserved_ += frame_bytes;
  }
  if (part->file == nullptr) {
    ASSIGN_OR_RETURN(part->file, fs_->OpenForWrite(PartitionPath(partition)));
    part->opened = true;
  }
  ByteBuffer framed;
  framed.PutU32(static_cast<uint32_t>(compressed.size()));
  framed.PutRaw(compressed.data(), compressed.size());
  RETURN_IF_ERROR(part->file->Append(framed.bytes()));
  bytes_spooled_ += frame_bytes;
  part->pages += 1;
  if (pages_written_counter_ != nullptr) pages_written_counter_->Add(1);
  if (bytes_written_counter_ != nullptr) {
    bytes_written_counter_->Add(frame_bytes);
  }
  if (bytes_raw_counter_ != nullptr) bytes_raw_counter_->Add(raw_bytes);
  return Status::OK();
}

Status ExchangeSpool::Seal(int partition) {
  std::lock_guard<std::mutex> lock(mu_);
  Partition& part = partitions_[partition];
  if (part.sealed) return Status::OK();
  part.sealed = true;
  if (part.file != nullptr) {
    Status st = part.file->Close();
    part.file = nullptr;
    if (!st.ok()) {
      part.broken = true;
      if (partition_broken_counter_ != nullptr) {
        partition_broken_counter_->Add(1);
      }
      return st;
    }
  }
  return Status::OK();
}

bool ExchangeSpool::broken(int partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  return partitions_[partition].broken;
}

int64_t ExchangeSpool::pages_spooled(int partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  return partitions_[partition].pages;
}

int64_t ExchangeSpool::bytes_spooled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_spooled_;
}

Result<std::unique_ptr<ExchangeSpool::Reader>> ExchangeSpool::OpenReader(
    int partition) {
  RETURN_IF_ERROR(Seal(partition));
  bool opened = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Partition& part = partitions_[partition];
    if (part.broken) {
      return Status::Unavailable(
          "exchange spool partition is broken; replay unavailable");
    }
    opened = part.opened;
  }
  auto reader = std::unique_ptr<Reader>(new Reader());
  reader->bytes_read_counter_ = bytes_read_counter_;
  reader->pages_replayed_counter_ = pages_replayed_counter_;
  if (!opened) return reader;  // nothing was ever spooled: empty stream
  BlockedTimer blocked(BlockedKind::kSpillIo);
  TraceEventScope span(TraceKind::kSpoolRead, "spool_open_partition");
  RETURN_IF_ERROR(FaultInjector::Global().Hit("exchange.spool.read"));
  ASSIGN_OR_RETURN(reader->file_, fs_->OpenForRead(PartitionPath(partition)));
  ASSIGN_OR_RETURN(reader->size_, reader->file_->Size());
  return reader;
}

Result<std::optional<Page>> ExchangeSpool::Reader::Next() {
  if (file_ == nullptr || offset_ >= size_) return std::optional<Page>();
  BlockedTimer blocked(BlockedKind::kSpillIo);
  TraceEventScope span(TraceKind::kSpoolRead, "spool_read_page");
  RETURN_IF_ERROR(FaultInjector::Global().Hit("exchange.spool.read"));
  uint8_t len_bytes[4];
  ASSIGN_OR_RETURN(size_t n, file_->Read(offset_, 4, len_bytes));
  if (n < 4) return Status::Corruption("exchange spool: truncated frame length");
  ByteReader len_reader(len_bytes, 4);
  ASSIGN_OR_RETURN(uint32_t frame_len, len_reader.ReadU32());
  offset_ += 4;
  if (frame_len == 0 || offset_ + frame_len > size_) {
    return Status::Corruption("exchange spool: bad frame length");
  }
  std::vector<uint8_t> frame(frame_len);
  ASSIGN_OR_RETURN(n, file_->Read(offset_, frame_len, frame.data()));
  if (n < frame_len) return Status::Corruption("exchange spool: truncated frame");
  offset_ += frame_len;
  ASSIGN_OR_RETURN(
      std::vector<uint8_t> block,
      Decompress(CompressionKind::kSnappy, frame.data(), frame.size()));
  ByteReader reader(block);
  ASSIGN_OR_RETURN(Page page, DeserializeSpillPage(&reader));
  if (bytes_read_counter_ != nullptr) {
    bytes_read_counter_->Add(static_cast<int64_t>(frame_len) + 4);
  }
  if (pages_replayed_counter_ != nullptr) pages_replayed_counter_->Add(1);
  span.SetArg("bytes", static_cast<int64_t>(frame_len) + 4);
  return std::optional<Page>(std::move(page));
}

}  // namespace presto
