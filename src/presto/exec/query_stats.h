#ifndef PRESTO_EXEC_QUERY_STATS_H_
#define PRESTO_EXEC_QUERY_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace presto {

struct FragmentedPlan;

/// Runtime statistics of one operator instance (or the merge of every
/// instance of the same plan node across tasks). This is the per-node payload
/// of the query stats tree the coordinator attaches to QueryResult, and what
/// EXPLAIN ANALYZE renders next to each plan node.
struct OperatorStats {
  int plan_node_id = -1;
  std::string operator_type;  // "TableScan", "HashAggregation", ...

  /// Rows/bytes/pages pulled from child operators. For leaves (scan, values,
  /// remote source) this counts what the source handed the operator.
  int64_t input_rows = 0;
  int64_t input_bytes = 0;
  int64_t input_pages = 0;

  /// Rows/bytes/pages this operator emitted from Next().
  int64_t output_rows = 0;
  int64_t output_bytes = 0;
  int64_t output_pages = 0;

  /// Time spent inside Next() (self + children, like Presto's operator wall
  /// time) and the on-core share of it (CLOCK_THREAD_CPUTIME_ID).
  int64_t wall_nanos = 0;
  int64_t cpu_nanos = 0;

  /// Blocked-time breakdown of wall_nanos, attributed through the thread's
  /// BlockedCounters cell (see trace.h). Cumulative like wall/cpu: a parent
  /// includes children pulled on the same thread and work carried back from
  /// morsel-chain pool threads. queued_nanos is always 0 at operator level
  /// (admission queueing happens before operators exist); it exists so the
  /// breakdown vector is uniform across span kinds.
  int64_t exchange_wait_nanos = 0;
  int64_t spill_io_nanos = 0;
  int64_t memory_wait_nanos = 0;
  int64_t queued_nanos = 0;
  int64_t scan_io_nanos = 0;

  /// Spill I/O volume through this operator's Next() frames: bytes written
  /// as runs and bytes read back during merge.
  int64_t spill_write_bytes = 0;
  int64_t spill_read_bytes = 0;

  /// High-water mark of rows this operator held buffered (hash table groups,
  /// join build rows, sort buffer).
  int64_t peak_buffered_rows = 0;

  /// Pages processed through the typed columnar kernels vs the Value-boxed
  /// fallback (aggregation/join only; zero elsewhere).
  int64_t kernel_pages = 0;
  int64_t fallback_pages = 0;

  /// Revocable-memory spill activity (aggregation/sort only; zero
  /// elsewhere): bytes of in-memory state written out as sorted runs, and
  /// how many runs were written.
  int64_t spilled_bytes = 0;
  int64_t spilled_runs = 0;

  /// Lazy-scan work counters (TableScan only; zero elsewhere), harvested
  /// from the connector page sources feeding the scan.
  int64_t scan_row_groups_total = 0;
  int64_t scan_row_groups_skipped = 0;
  int64_t scan_pages_total = 0;
  int64_t scan_pages_read = 0;
  int64_t scan_pages_skipped_stats = 0;
  int64_t scan_pages_skipped_lazy = 0;
  int64_t scan_rows_pruned_late = 0;
  int64_t scan_dict_code_hits = 0;
  int64_t scan_bytes_read = 0;

  /// Number of operator instances merged into this record (tasks running the
  /// same plan node).
  int num_instances = 0;

  /// Accumulates `other` into this record: sums counts/time, maxes the peak.
  void Merge(const OperatorStats& other);

  /// One-line "rows=… bytes=… wall=…ms" rendering for EXPLAIN ANALYZE.
  std::string ToString() const;
};

/// Per-stage rollup: one entry per plan fragment that ran.
struct StageStats {
  int fragment_id = 0;
  int num_tasks = 0;
  int64_t output_rows = 0;   // rows the fragment root emitted
  int64_t output_bytes = 0;  // bytes the fragment root emitted
  int64_t wall_nanos = 0;    // summed task wall time
  int64_t cpu_nanos = 0;     // summed task CPU time
  /// Output-exchange shape: partition count of this fragment's exchange and
  /// bytes actually shuffled through it (0 for the root fragment, which
  /// returns pages directly to the client).
  int num_partitions = 0;
  int64_t exchanged_bytes = 0;
};

/// The task→stage→query aggregation result. `operators` is keyed by plan
/// node id and merges every task's instance of that node.
struct QueryStats {
  std::map<int, OperatorStats> operators;
  std::vector<StageStats> stages;  // sorted by fragment id
  int64_t total_tasks = 0;
  int64_t total_wall_nanos = 0;  // summed task wall time (not elapsed time)
  int64_t total_cpu_nanos = 0;

  /// Wall time the query spent in the coordinator's admission queue before
  /// any task ran (0 when admitted immediately).
  int64_t queued_nanos = 0;

  /// Total rows/bytes the root fragment's root operator produced — must
  /// reconcile with QueryResult::total_rows.
  int64_t output_rows = 0;
  int64_t output_bytes = 0;
};

/// Thread-safe sink the coordinator hands to every task of a query; each
/// task reports its operator stats once on completion and the collector
/// merges them into the query tree.
class QueryStatsCollector {
 public:
  /// Merges one finished task: per-operator records plus the task's wall
  /// time. `root_plan_node_id` identifies which operator's output counts as
  /// the fragment's output.
  void AddTask(int fragment_id, int root_plan_node_id,
               const std::vector<OperatorStats>& operators,
               int64_t task_wall_nanos);

  /// Records the fragment's output-exchange shape (partition count, bytes
  /// pushed through it); called once per fragment at query teardown.
  void SetStageExchange(int fragment_id, int num_partitions,
                        int64_t exchanged_bytes);

  /// Snapshot of the merged tree (stages sorted by fragment id). The root
  /// fragment is id 0; its stage output becomes the query output.
  QueryStats Finish() const;

 private:
  mutable std::mutex mu_;
  QueryStats stats_;
  std::map<int, StageStats> stages_;  // fragment id -> rollup
};

/// Renders the fragmented plan with each node annotated by its actual
/// runtime stats — the EXPLAIN ANALYZE output. Nodes that never executed
/// (e.g. pruned by the fragment result cache) render without an annotation.
std::string RenderPlanWithStats(const FragmentedPlan& plan,
                                const QueryStats& stats);

}  // namespace presto

#endif  // PRESTO_EXEC_QUERY_STATS_H_
