#ifndef PRESTO_LAKEFILE_READER_H_
#define PRESTO_LAKEFILE_READER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "presto/connector/pushdown.h"
#include "presto/fs/file_system.h"
#include "presto/lakefile/format.h"
#include "presto/lakefile/shred.h"
#include "presto/vector/page.h"

namespace presto {
namespace lakefile {

/// Feature toggles of the brand-new reader (Sections V.D–V.I). Disabling
/// individual toggles is how the ablation benches isolate each optimization;
/// all-on is the production configuration.
struct ReaderOptions {
  bool nested_column_pruning = true;  // read only required leaf columns
  bool predicate_pushdown = true;     // skip row groups via footer min/max
  bool dictionary_pushdown = true;    // skip row groups via dictionary pages
  bool page_skipping = true;          // skip data pages via per-page min/max (v2)
  bool lazy_reads = true;             // materialize projected cols for matching rows only
  bool vectorized = true;             // batch level/value decode
};

/// A single conjunct of a pushed-down scan predicate, bound to a leaf path
/// (maxrep==0 scalar leaves only, e.g. "base.city_id"). This is the same
/// struct the connector layer negotiates (`column` holds the dotted leaf
/// path), so accepted conjuncts flow into the reader without translation.
using LeafPredicate = SimplePredicate;

/// What to read: projected top-level columns (with optional nested pruning
/// to specific leaf paths) plus an AND-of-conjuncts predicate.
struct ScanSpec {
  /// Top-level field names in output order.
  std::vector<std::string> columns;
  /// Pruned leaf paths (dotted, e.g. "base.city_id"). Empty = all leaves of
  /// every projected column. Ignored when nested_column_pruning is off.
  std::vector<std::string> required_leaves;
  std::vector<LeafPredicate> predicates;
};

/// Observed work counters, reported by the reader benches and surfaced
/// through the scan operator into EXPLAIN ANALYZE / lakefile.* metrics.
struct ReaderStats {
  int64_t row_groups_total = 0;
  int64_t row_groups_scanned = 0;
  int64_t row_groups_skipped_stats = 0;
  int64_t row_groups_skipped_dictionary = 0;
  /// Page-granular pruning (format v2 multi-page chunks).
  int64_t pages_total = 0;          // data pages of all chunks examined
  int64_t pages_read = 0;           // pages actually read and decompressed
  int64_t pages_skipped_stats = 0;  // skipped via per-page min/max / null count
  int64_t pages_skipped_lazy = 0;   // skipped because no selected row needs them
  /// Rows excluded from late materialization of projected columns.
  int64_t rows_pruned_late = 0;
  /// Predicate row-evaluations answered on dictionary codes (no value
  /// materialization).
  int64_t dict_code_filter_hits = 0;
  int64_t bytes_read = 0;
  int64_t values_decoded = 0;
  int64_t rows_output = 0;
};

/// The brand-new reader: nested column pruning, columnar reads, predicate
/// pushdown, dictionary pushdown, lazy reads, vectorized decoding.
class NativeLakeFileReader {
 public:
  /// `footer` may come from a footer cache; when null it is parsed from the
  /// file tail.
  static Result<std::unique_ptr<NativeLakeFileReader>> Open(
      std::shared_ptr<RandomAccessFile> file, ReaderOptions options,
      std::shared_ptr<const FileFooter> footer = nullptr);

  /// Reads the next row group, returning only rows matching the predicate.
  /// Column types are pruned when nested_column_pruning is on. Returns
  /// nullopt after the last row group.
  Result<std::optional<Page>> NextBatch(const ScanSpec& spec);

  /// Output type of one projected column under this spec (pruning applied).
  Result<TypePtr> OutputColumnType(const ScanSpec& spec,
                                   const std::string& column) const;

  const FileFooter& footer() const { return *footer_; }
  const ReaderStats& stats() const { return stats_; }
  void ResetPosition() { next_group_ = 0; }

 private:
  NativeLakeFileReader(std::shared_ptr<RandomAccessFile> file,
                       std::shared_ptr<const FileFooter> footer,
                       ReaderOptions options)
      : file_(std::move(file)), footer_(std::move(footer)), options_(options) {}

  std::shared_ptr<RandomAccessFile> file_;
  std::shared_ptr<const FileFooter> footer_;
  ReaderOptions options_;
  size_t next_group_ = 0;
  ReaderStats stats_;
};

/// The original open-source reader baseline (Section V.C): reads ALL leaves
/// of every requested top-level column (no nested pruning, no stats or
/// dictionary skipping), materializes row-based records value by value, then
/// transforms the rows into columnar blocks. Predicates are left to the
/// engine.
class LegacyLakeFileReader {
 public:
  static Result<std::unique_ptr<LegacyLakeFileReader>> Open(
      std::shared_ptr<RandomAccessFile> file,
      std::shared_ptr<const FileFooter> footer = nullptr);

  /// Reads the next row group in full (all rows, full column types).
  Result<std::optional<Page>> NextBatch(const std::vector<std::string>& columns);

  const FileFooter& footer() const { return *footer_; }
  const ReaderStats& stats() const { return stats_; }

 private:
  LegacyLakeFileReader(std::shared_ptr<RandomAccessFile> file,
                       std::shared_ptr<const FileFooter> footer)
      : file_(std::move(file)), footer_(std::move(footer)) {}

  std::shared_ptr<RandomAccessFile> file_;
  std::shared_ptr<const FileFooter> footer_;
  size_t next_group_ = 0;
  ReaderStats stats_;
};

/// Parses a footer from the tail of a lakefile opened for random access
/// (two reads: the fixed trailer, then the footer body).
Result<FileFooter> ReadFooter(RandomAccessFile* file);

/// Applies nested column pruning to one column type: keeps only ROW fields
/// with at least one required leaf underneath (containers are kept whole).
/// `required_leaves` are dotted paths rooted at `column`; an empty list (or
/// no required leaf under the column) returns the full type.
Result<TypePtr> PruneColumnType(const std::string& column, const TypePtr& type,
                                const std::vector<std::string>& required_leaves);

}  // namespace lakefile
}  // namespace presto

#endif  // PRESTO_LAKEFILE_READER_H_
