#include "presto/lakefile/shred.h"

#include <algorithm>

namespace presto {
namespace lakefile {

namespace {

Status WalkLeaves(const std::string& path, const TypePtr& type, int def, int rep,
                  bool inside_repeated, std::vector<Leaf>* out) {
  switch (type->kind()) {
    case TypeKind::kRow: {
      for (size_t i = 0; i < type->NumChildren(); ++i) {
        RETURN_IF_ERROR(WalkLeaves(path + "." + type->field_name(i),
                                   type->child(i), def + 1, rep,
                                   inside_repeated, out));
      }
      return Status::OK();
    }
    case TypeKind::kArray: {
      if (inside_repeated) {
        return Status::Unimplemented(
            "nested repetition (ARRAY/MAP inside ARRAY/MAP) is not supported "
            "by the lakefile format: " + path);
      }
      return WalkLeaves(path + ".element", type->element(), def + 2, rep + 1,
                        true, out);
    }
    case TypeKind::kMap: {
      if (inside_repeated) {
        return Status::Unimplemented(
            "nested repetition (ARRAY/MAP inside ARRAY/MAP) is not supported "
            "by the lakefile format: " + path);
      }
      RETURN_IF_ERROR(WalkLeaves(path + ".key", type->map_key(), def + 2,
                                 rep + 1, true, out));
      return WalkLeaves(path + ".value", type->map_value(), def + 2, rep + 1,
                        true, out);
    }
    default:
      out->push_back(Leaf{path, type, def + 1, rep});
      return Status::OK();
  }
}

}  // namespace

Result<std::vector<Leaf>> EnumerateLeaves(const Type& schema) {
  if (schema.kind() != TypeKind::kRow) {
    return Status::InvalidArgument("lakefile schema must be a ROW type");
  }
  std::vector<Leaf> out;
  for (size_t i = 0; i < schema.NumChildren(); ++i) {
    RETURN_IF_ERROR(WalkLeaves(schema.field_name(i), schema.child(i), 0, 0,
                               false, &out));
  }
  return out;
}

Result<std::vector<Leaf>> EnumerateFieldLeaves(const std::string& field_name,
                                               const TypePtr& field_type) {
  std::vector<Leaf> out;
  RETURN_IF_ERROR(WalkLeaves(field_name, field_type, 0, 0, false, &out));
  return out;
}

size_t LeafBuffer::num_values(const Leaf& leaf) const {
  switch (leaf.type->kind()) {
    case TypeKind::kBoolean:
      return bools.size();
    case TypeKind::kDouble:
      return doubles.size();
    case TypeKind::kVarchar:
      return strings.size();
    default:
      return ints.size();
  }
}

void LeafBuffer::Clear() {
  rep.clear();
  def.clear();
  ints.clear();
  doubles.clear();
  bools.clear();
  strings.clear();
}

// ===========================================================================
// Writer-side shredding
// ===========================================================================

namespace {

// One shredding step's working set: parallel arrays describing the entries
// flowing into a node. `rows[i]` indexes into the node's vector; entries
// with defs[i] < base_def carry a null somewhere above and only propagate.
struct Entries {
  std::vector<int32_t> rows;
  std::vector<uint8_t> defs;
  std::vector<uint8_t> reps;
};

void AppendScalarEntry(const Leaf& leaf, const Vector& flat, int32_t row,
                       uint8_t def, uint8_t rep, int base_def, LeafBuffer* buf) {
  buf->rep.push_back(rep);
  if (def < base_def) {  // ancestor null: propagate
    buf->def.push_back(def);
    return;
  }
  if (flat.IsNull(row)) {
    buf->def.push_back(static_cast<uint8_t>(base_def));
    return;
  }
  buf->def.push_back(static_cast<uint8_t>(base_def + 1));
  switch (leaf.type->kind()) {
    case TypeKind::kBoolean:
      buf->bools.push_back(static_cast<const BoolVector&>(flat).ValueAt(row));
      break;
    case TypeKind::kDouble:
      buf->doubles.push_back(static_cast<const DoubleVector&>(flat).ValueAt(row));
      break;
    case TypeKind::kVarchar:
      buf->strings.push_back(static_cast<const StringVector&>(flat).ValueAt(row));
      break;
    default:
      buf->ints.push_back(static_cast<const Int64Vector&>(flat).ValueAt(row));
      break;
  }
}

// Recursive columnar shredder. `cursor` advances through the leaf/buffer
// arrays in EnumerateLeaves order.
Status ShredNode(const TypePtr& type, const VectorPtr& vector,
                 const Entries& entries, int base_def, const Leaf* leaves,
                 LeafBuffer* buffers, size_t* cursor) {
  ASSIGN_OR_RETURN(VectorPtr flat, Vector::Flatten(vector));
  switch (type->kind()) {
    case TypeKind::kRow: {
      // Compute the defs the children see.
      Entries child = entries;
      for (size_t i = 0; i < entries.rows.size(); ++i) {
        if (entries.defs[i] >= base_def && !flat->IsNull(entries.rows[i])) {
          child.defs[i] = static_cast<uint8_t>(base_def + 1);
        } else if (entries.defs[i] >= base_def) {
          child.defs[i] = static_cast<uint8_t>(base_def);  // struct null here
        }
      }
      const auto* row_vector = static_cast<const RowVector*>(flat.get());
      for (size_t f = 0; f < type->NumChildren(); ++f) {
        RETURN_IF_ERROR(ShredNode(type->child(f), row_vector->child(f), child,
                                  base_def + 1, leaves, buffers, cursor));
      }
      return Status::OK();
    }
    case TypeKind::kArray: {
      const auto* array = static_cast<const ArrayVector*>(flat.get());
      Entries expanded;
      for (size_t i = 0; i < entries.rows.size(); ++i) {
        int32_t row = entries.rows[i];
        if (entries.defs[i] < base_def) {  // ancestor null
          expanded.rows.push_back(0);
          expanded.defs.push_back(entries.defs[i]);
          expanded.reps.push_back(entries.reps[i]);
        } else if (flat->IsNull(row)) {
          expanded.rows.push_back(0);
          expanded.defs.push_back(static_cast<uint8_t>(base_def));
          expanded.reps.push_back(entries.reps[i]);
        } else if (array->LengthAt(row) == 0) {
          expanded.rows.push_back(0);
          expanded.defs.push_back(static_cast<uint8_t>(base_def + 1));
          expanded.reps.push_back(entries.reps[i]);
        } else {
          for (int32_t j = 0; j < array->LengthAt(row); ++j) {
            expanded.rows.push_back(array->OffsetAt(row) + j);
            expanded.defs.push_back(static_cast<uint8_t>(base_def + 2));
            expanded.reps.push_back(j == 0 ? entries.reps[i] : 1);
          }
        }
      }
      return ShredNode(type->element(), array->elements(), expanded,
                       base_def + 2, leaves, buffers, cursor);
    }
    case TypeKind::kMap: {
      const auto* map = static_cast<const MapVector*>(flat.get());
      Entries expanded;
      for (size_t i = 0; i < entries.rows.size(); ++i) {
        int32_t row = entries.rows[i];
        if (entries.defs[i] < base_def) {
          expanded.rows.push_back(0);
          expanded.defs.push_back(entries.defs[i]);
          expanded.reps.push_back(entries.reps[i]);
        } else if (flat->IsNull(row)) {
          expanded.rows.push_back(0);
          expanded.defs.push_back(static_cast<uint8_t>(base_def));
          expanded.reps.push_back(entries.reps[i]);
        } else if (map->LengthAt(row) == 0) {
          expanded.rows.push_back(0);
          expanded.defs.push_back(static_cast<uint8_t>(base_def + 1));
          expanded.reps.push_back(entries.reps[i]);
        } else {
          for (int32_t j = 0; j < map->LengthAt(row); ++j) {
            expanded.rows.push_back(map->OffsetAt(row) + j);
            expanded.defs.push_back(static_cast<uint8_t>(base_def + 2));
            expanded.reps.push_back(j == 0 ? entries.reps[i] : 1);
          }
        }
      }
      RETURN_IF_ERROR(ShredNode(type->map_key(), map->keys(), expanded,
                                base_def + 2, leaves, buffers, cursor));
      return ShredNode(type->map_value(), map->values(), expanded, base_def + 2,
                       leaves, buffers, cursor);
    }
    default: {
      const Leaf& leaf = leaves[*cursor];
      LeafBuffer* buf = &buffers[*cursor];
      ++*cursor;
      // Fast path: top-level scalar column with no propagated nulls.
      for (size_t i = 0; i < entries.rows.size(); ++i) {
        AppendScalarEntry(leaf, *flat, entries.rows[i], entries.defs[i],
                          entries.reps[i], base_def, buf);
      }
      return Status::OK();
    }
  }
}

// Row-at-a-time shredder (legacy writer). value == nullptr means "absent":
// some ancestor was null/empty and `absent_def` is the def to emit.
Status ShredValueNode(const TypePtr& type, const Value* value,
                      uint8_t absent_def, uint8_t rep, int base_def,
                      const Leaf* leaves, LeafBuffer* buffers, size_t* cursor) {
  bool absent = value == nullptr;
  bool is_null = !absent && value->is_null();
  switch (type->kind()) {
    case TypeKind::kRow: {
      const Value* child_absent = nullptr;
      uint8_t child_absent_def =
          absent ? absent_def : static_cast<uint8_t>(base_def);
      (void)child_absent;
      for (size_t f = 0; f < type->NumChildren(); ++f) {
        if (absent || is_null) {
          RETURN_IF_ERROR(ShredValueNode(type->child(f), nullptr,
                                         child_absent_def, rep, base_def + 1,
                                         leaves, buffers, cursor));
        } else {
          RETURN_IF_ERROR(ShredValueNode(type->child(f), &value->children()[f],
                                         0, rep, base_def + 1, leaves, buffers,
                                         cursor));
        }
      }
      return Status::OK();
    }
    case TypeKind::kArray: {
      if (absent || is_null || value->children().empty()) {
        uint8_t def = absent ? absent_def
                             : static_cast<uint8_t>(is_null ? base_def
                                                            : base_def + 1);
        return ShredValueNode(type->element(), nullptr, def, rep, base_def + 2,
                              leaves, buffers, cursor);
      }
      size_t saved = *cursor;
      for (size_t j = 0; j < value->children().size(); ++j) {
        *cursor = saved;
        RETURN_IF_ERROR(ShredValueNode(type->element(), &value->children()[j],
                                       0, j == 0 ? rep : 1, base_def + 2,
                                       leaves, buffers, cursor));
      }
      return Status::OK();
    }
    case TypeKind::kMap: {
      if (absent || is_null || value->map_entries().empty()) {
        uint8_t def = absent ? absent_def
                             : static_cast<uint8_t>(is_null ? base_def
                                                            : base_def + 1);
        RETURN_IF_ERROR(ShredValueNode(type->map_key(), nullptr, def, rep,
                                       base_def + 2, leaves, buffers, cursor));
        return ShredValueNode(type->map_value(), nullptr, def, rep,
                              base_def + 2, leaves, buffers, cursor);
      }
      size_t saved = *cursor;
      size_t after = saved;
      for (size_t j = 0; j < value->map_entries().size(); ++j) {
        *cursor = saved;
        uint8_t entry_rep = j == 0 ? rep : 1;
        RETURN_IF_ERROR(ShredValueNode(type->map_key(),
                                       &value->map_entries()[j].first, 0,
                                       entry_rep, base_def + 2, leaves, buffers,
                                       cursor));
        RETURN_IF_ERROR(ShredValueNode(type->map_value(),
                                       &value->map_entries()[j].second, 0,
                                       entry_rep, base_def + 2, leaves, buffers,
                                       cursor));
        after = *cursor;
      }
      *cursor = after;
      return Status::OK();
    }
    default: {
      const Leaf& leaf = leaves[*cursor];
      LeafBuffer* buf = &buffers[*cursor];
      ++*cursor;
      buf->rep.push_back(rep);
      if (absent) {
        buf->def.push_back(absent_def);
        return Status::OK();
      }
      if (is_null) {
        buf->def.push_back(static_cast<uint8_t>(base_def));
        return Status::OK();
      }
      buf->def.push_back(static_cast<uint8_t>(base_def + 1));
      switch (leaf.type->kind()) {
        case TypeKind::kBoolean:
          if (!value->is_bool()) return Status::InvalidArgument("expected BOOLEAN");
          buf->bools.push_back(value->bool_value() ? 1 : 0);
          break;
        case TypeKind::kDouble:
          if (!value->is_int() && !value->is_double()) {
            return Status::InvalidArgument("expected numeric");
          }
          buf->doubles.push_back(value->AsDouble());
          break;
        case TypeKind::kVarchar:
          if (!value->is_string()) return Status::InvalidArgument("expected VARCHAR");
          buf->strings.push_back(value->string_value());
          break;
        default:
          if (!value->is_int()) return Status::InvalidArgument("expected integer");
          buf->ints.push_back(value->int_value());
          break;
      }
      return Status::OK();
    }
  }
}

}  // namespace

Status ShredVector(const Leaf* leaves, size_t num_leaves, const TypePtr& type,
                   const VectorPtr& vector, LeafBuffer* buffers) {
  Entries entries;
  entries.rows.resize(vector->size());
  for (size_t i = 0; i < vector->size(); ++i) {
    entries.rows[i] = static_cast<int32_t>(i);
  }
  entries.defs.assign(vector->size(), 0);
  entries.reps.assign(vector->size(), 0);
  size_t cursor = 0;
  RETURN_IF_ERROR(ShredNode(type, vector, entries, 0, leaves, buffers, &cursor));
  if (cursor != num_leaves) {
    return Status::Internal("leaf cursor mismatch during shredding");
  }
  return Status::OK();
}

Status ShredRecord(const Leaf* leaves, size_t num_leaves, const TypePtr& type,
                   const Value& record, LeafBuffer* buffers) {
  if (type->kind() != TypeKind::kRow || !record.is_row() ||
      record.children().size() != type->NumChildren()) {
    return Status::InvalidArgument("record shape does not match schema");
  }
  // The record itself is not an optional level: top-level fields start at
  // definition level 0, exactly like the vector path.
  size_t cursor = 0;
  for (size_t f = 0; f < type->NumChildren(); ++f) {
    RETURN_IF_ERROR(ShredValueNode(type->child(f), &record.children()[f], 0, 0,
                                   0, leaves, buffers, &cursor));
  }
  if (cursor != num_leaves) {
    return Status::Internal("leaf cursor mismatch during record shredding");
  }
  return Status::OK();
}

// ===========================================================================
// Reader-side assembly
// ===========================================================================

namespace {

// Entry positions where a new top-level row starts (rep == 0).
std::vector<int32_t> RowStarts(const DecodedLeaf& leaf) {
  std::vector<int32_t> starts;
  if (leaf.leaf.max_rep == 0) {
    starts.resize(leaf.def.size());
    for (size_t i = 0; i < leaf.def.size(); ++i) starts[i] = static_cast<int32_t>(i);
    return starts;
  }
  for (size_t i = 0; i < leaf.rep.size(); ++i) {
    if (leaf.rep[i] == 0) starts.push_back(static_cast<int32_t>(i));
  }
  return starts;
}

// Extracts the scalar values of `leaf` for the given entry slots (ascending).
// A slot yields null when its def < max_def.
Result<VectorPtr> ExtractScalar(const DecodedLeaf& leaf,
                                const std::vector<int32_t>& slots) {
  const int max_def = leaf.leaf.max_def;
  size_t n = slots.size();
  std::vector<uint8_t> nulls(n, 0);
  bool any_null = false;

  // value_index[e] = index into the values array for entry e (valid when
  // def[e] == max_def).
  // Single pass with two pointers: entries are scanned once.
  auto build = [&](auto& values_in, auto& values_out) -> Status {
    using Vec = std::remove_reference_t<decltype(values_in)>;
    (void)sizeof(Vec);
    values_out.resize(n);
    size_t value_cursor = 0;
    size_t slot_cursor = 0;
    for (size_t e = 0; e < leaf.def.size() && slot_cursor < n; ++e) {
      bool has_value = leaf.def[e] == max_def;
      if (static_cast<int32_t>(e) == slots[slot_cursor]) {
        if (has_value) {
          values_out[slot_cursor] = values_in[value_cursor];
        } else {
          nulls[slot_cursor] = 1;
          any_null = true;
        }
        ++slot_cursor;
      }
      if (has_value) ++value_cursor;
    }
    if (slot_cursor != n) return Status::Corruption("slot out of range in leaf");
    return Status::OK();
  };

  switch (leaf.leaf.type->kind()) {
    case TypeKind::kBoolean: {
      std::vector<uint8_t> values;
      RETURN_IF_ERROR(build(leaf.bools, values));
      if (!any_null) nulls.clear();
      return VectorPtr(std::make_shared<BoolVector>(leaf.leaf.type,
                                                    std::move(values),
                                                    std::move(nulls)));
    }
    case TypeKind::kDouble: {
      std::vector<double> values;
      RETURN_IF_ERROR(build(leaf.doubles, values));
      if (!any_null) nulls.clear();
      return VectorPtr(std::make_shared<DoubleVector>(leaf.leaf.type,
                                                      std::move(values),
                                                      std::move(nulls)));
    }
    case TypeKind::kVarchar: {
      std::vector<std::string> values;
      RETURN_IF_ERROR(build(leaf.strings, values));
      if (!any_null) nulls.clear();
      return VectorPtr(std::make_shared<StringVector>(leaf.leaf.type,
                                                      std::move(values),
                                                      std::move(nulls)));
    }
    default: {
      std::vector<int64_t> values;
      RETURN_IF_ERROR(build(leaf.ints, values));
      if (!any_null) nulls.clear();
      return VectorPtr(std::make_shared<Int64Vector>(leaf.leaf.type,
                                                     std::move(values),
                                                     std::move(nulls)));
    }
  }
}

// Assembles a subtree that contains no repeated node. `slots` are entry
// indices into the subtree's leaves (which all share ancestor structure).
Result<VectorPtr> AssembleFlat(const TypePtr& type, int base_def,
                               const std::vector<const DecodedLeaf*>& leaves,
                               size_t* cursor, const std::vector<int32_t>& slots) {
  switch (type->kind()) {
    case TypeKind::kRow: {
      if (*cursor >= leaves.size()) return Status::Corruption("missing leaves");
      const DecodedLeaf& probe = *leaves[*cursor];
      std::vector<uint8_t> nulls(slots.size(), 0);
      bool any_null = false;
      for (size_t i = 0; i < slots.size(); ++i) {
        if (probe.def[slots[i]] <= base_def) {
          nulls[i] = 1;
          any_null = true;
        }
      }
      if (!any_null) nulls.clear();
      std::vector<VectorPtr> children;
      for (size_t f = 0; f < type->NumChildren(); ++f) {
        ASSIGN_OR_RETURN(VectorPtr child,
                         AssembleFlat(type->child(f), base_def + 1, leaves,
                                      cursor, slots));
        children.push_back(std::move(child));
      }
      return VectorPtr(std::make_shared<RowVector>(
          type, slots.size(), std::move(children), std::move(nulls)));
    }
    case TypeKind::kArray:
    case TypeKind::kMap:
      return Status::Internal("repeated node inside AssembleFlat");
    default: {
      if (*cursor >= leaves.size()) return Status::Corruption("missing leaves");
      const DecodedLeaf& leaf = *leaves[*cursor];
      ++*cursor;
      return ExtractScalar(leaf, slots);
    }
  }
}

// Counts how many leaves EnumerateFieldLeaves would produce for a type.
size_t LeafCount(const TypePtr& type) {
  switch (type->kind()) {
    case TypeKind::kRow: {
      size_t n = 0;
      for (size_t i = 0; i < type->NumChildren(); ++i) {
        n += LeafCount(type->child(i));
      }
      return n;
    }
    case TypeKind::kArray:
      return LeafCount(type->element());
    case TypeKind::kMap:
      return LeafCount(type->map_key()) + LeafCount(type->map_value());
    default:
      return 1;
  }
}

// Full assembly: handles subtrees that may contain (at most) one repeated
// node on each root-to-leaf path. `row_slots` index top-level rows.
Result<VectorPtr> AssembleNode(const TypePtr& type, int base_def,
                               const std::vector<const DecodedLeaf*>& leaves,
                               size_t* cursor, size_t num_rows) {
  switch (type->kind()) {
    case TypeKind::kRow: {
      if (*cursor >= leaves.size()) return Status::Corruption("missing leaves");
      const DecodedLeaf& probe = *leaves[*cursor];
      std::vector<int32_t> starts = RowStarts(probe);
      if (starts.size() != num_rows) {
        return Status::Corruption("row count mismatch in leaf " +
                                  probe.leaf.path);
      }
      std::vector<uint8_t> nulls(num_rows, 0);
      bool any_null = false;
      for (size_t r = 0; r < num_rows; ++r) {
        if (probe.def[starts[r]] <= base_def) {
          nulls[r] = 1;
          any_null = true;
        }
      }
      if (!any_null) nulls.clear();
      std::vector<VectorPtr> children;
      for (size_t f = 0; f < type->NumChildren(); ++f) {
        ASSIGN_OR_RETURN(VectorPtr child,
                         AssembleNode(type->child(f), base_def + 1, leaves,
                                      cursor, num_rows));
        children.push_back(std::move(child));
      }
      return VectorPtr(std::make_shared<RowVector>(type, num_rows,
                                                   std::move(children),
                                                   std::move(nulls)));
    }
    case TypeKind::kArray:
    case TypeKind::kMap: {
      if (*cursor >= leaves.size()) return Status::Corruption("missing leaves");
      const DecodedLeaf& probe = *leaves[*cursor];
      std::vector<int32_t> starts = RowStarts(probe);
      if (starts.size() != num_rows) {
        return Status::Corruption("row count mismatch in repeated leaf " +
                                  probe.leaf.path);
      }
      std::vector<int32_t> offsets(num_rows), lengths(num_rows);
      std::vector<uint8_t> nulls(num_rows, 0);
      std::vector<int32_t> element_slots;
      bool any_null = false;
      size_t total_entries = probe.def.size();
      for (size_t r = 0; r < num_rows; ++r) {
        size_t begin = starts[r];
        size_t end = r + 1 < num_rows ? starts[r + 1] : total_entries;
        offsets[r] = static_cast<int32_t>(element_slots.size());
        uint8_t d0 = probe.def[begin];
        if (d0 <= base_def) {
          nulls[r] = 1;
          any_null = true;
          lengths[r] = 0;
        } else if (d0 == base_def + 1) {
          lengths[r] = 0;  // empty container
        } else {
          lengths[r] = static_cast<int32_t>(end - begin);
          for (size_t e = begin; e < end; ++e) {
            element_slots.push_back(static_cast<int32_t>(e));
          }
        }
      }
      if (!any_null) nulls.clear();
      if (type->kind() == TypeKind::kArray) {
        ASSIGN_OR_RETURN(VectorPtr elements,
                         AssembleFlat(type->element(), base_def + 2, leaves,
                                      cursor, element_slots));
        return VectorPtr(std::make_shared<ArrayVector>(
            type, std::move(offsets), std::move(lengths), std::move(elements),
            std::move(nulls)));
      }
      ASSIGN_OR_RETURN(VectorPtr keys,
                       AssembleFlat(type->map_key(), base_def + 2, leaves,
                                    cursor, element_slots));
      ASSIGN_OR_RETURN(VectorPtr values,
                       AssembleFlat(type->map_value(), base_def + 2, leaves,
                                    cursor, element_slots));
      return VectorPtr(std::make_shared<MapVector>(
          type, std::move(offsets), std::move(lengths), std::move(keys),
          std::move(values), std::move(nulls)));
    }
    default: {
      if (*cursor >= leaves.size()) return Status::Corruption("missing leaves");
      const DecodedLeaf& leaf = *leaves[*cursor];
      ++*cursor;
      if (leaf.def.size() != num_rows) {
        return Status::Corruption("row count mismatch in leaf " + leaf.leaf.path);
      }
      std::vector<int32_t> slots(num_rows);
      for (size_t i = 0; i < num_rows; ++i) slots[i] = static_cast<int32_t>(i);
      return ExtractScalar(leaf, slots);
    }
  }
}

}  // namespace

Result<VectorPtr> AssembleColumn(const TypePtr& type,
                                 const std::vector<const DecodedLeaf*>& leaves,
                                 size_t num_rows) {
  if (leaves.size() != LeafCount(type)) {
    return Status::InvalidArgument("leaf count does not match column type");
  }
  size_t cursor = 0;
  ASSIGN_OR_RETURN(VectorPtr out,
                   AssembleNode(type, 0, leaves, &cursor, num_rows));
  if (cursor != leaves.size()) {
    return Status::Internal("leaf cursor mismatch during assembly");
  }
  return out;
}

size_t CountRows(const DecodedLeaf& leaf) {
  if (leaf.leaf.max_rep == 0) return leaf.def.size();
  size_t rows = 0;
  for (uint8_t r : leaf.rep) {
    if (r == 0) ++rows;
  }
  return rows;
}

}  // namespace lakefile
}  // namespace presto
