#ifndef PRESTO_LAKEFILE_FORMAT_H_
#define PRESTO_LAKEFILE_FORMAT_H_

#include <string>
#include <vector>

#include "presto/common/bytes.h"
#include "presto/common/compression.h"
#include "presto/types/type.h"
#include "presto/types/value.h"

namespace presto {
namespace lakefile {

/// Lakefile is this repo's Parquet-class columnar format (see DESIGN.md
/// substitutions). Layout:
///
///   [magic "LAKE1"]
///   row group 0: [dict page?][data page]+ per leaf column, column by column
///   row group 1: ...
///   [footer bytes]
///   [footer length u32]["LAKE1"]
///
/// Data is "first horizontally partitioned into groups of rows, then within
/// each group vertically partitioned into columns" (paper Fig. 3); the
/// footer stores codecs, encodings, and column-level min/max statistics.
///
/// Format v2 splits each column chunk into multiple data pages (~8k rows
/// each) and records per-page offsets, null counts, and min/max stats in the
/// footer, so a selective reader can range-read exactly the pages whose
/// stats may match. v1 files (one data page per chunk, no page list) remain
/// readable: the reader synthesizes a single-page list from the chunk meta.
inline constexpr char kMagic[] = "LAKE1";
inline constexpr size_t kMagicLen = 5;
inline constexpr uint32_t kFormatVersion = 2;
inline constexpr uint32_t kMinFormatVersion = 1;

/// Physical encodings of value data within a page.
enum class PageEncoding : uint8_t {
  kPlain = 0,
  kDictionary = 1,
};

/// Per-data-page metadata (format v2). Offsets are relative to the chunk
/// start so a page can be range-read without touching its neighbors; stats
/// cover only the page's values, enabling page-granular skipping.
struct DataPageMeta {
  uint64_t offset = 0;       // byte offset relative to ColumnChunkMeta::offset
  uint64_t total_bytes = 0;  // header + compressed body
  uint64_t num_entries = 0;  // rep/def entries in this page
  uint64_t num_rows = 0;     // rows whose entries start in this page
  uint64_t first_row = 0;    // row index within the row group
  int64_t null_count = 0;
  bool has_stats = false;
  Value min;                 // valid when has_stats
  Value max;
};

/// Per-column-chunk metadata stored in the footer.
struct ColumnChunkMeta {
  std::string leaf_path;      // dotted path, e.g. "base.city_id"
  uint64_t offset = 0;        // file offset of the chunk's first page
  uint64_t total_bytes = 0;   // bytes of all pages of this chunk
  uint64_t num_entries = 0;   // rep/def entries (>= num rows when repeated)
  uint64_t num_values = 0;    // non-null leaf values
  int64_t null_count = 0;
  PageEncoding encoding = PageEncoding::kPlain;
  uint64_t dictionary_offset = 0;  // 0 when not dictionary-encoded
  uint64_t dictionary_bytes = 0;
  uint32_t dictionary_cardinality = 0;
  bool has_stats = false;
  Value min;                  // valid when has_stats
  Value max;
  std::vector<DataPageMeta> pages;  // v2 page list; empty for v1 chunks
};

/// Per-row-group metadata.
struct RowGroupMeta {
  uint64_t num_rows = 0;
  std::vector<ColumnChunkMeta> columns;  // same order as footer leaf list
};

/// File footer.
struct FileFooter {
  uint32_t version = kFormatVersion;
  TypePtr schema;  // ROW type of the file
  CompressionKind compression = CompressionKind::kNone;
  uint64_t num_rows = 0;
  std::vector<RowGroupMeta> row_groups;
};

/// Serializes the footer body (without trailing length/magic).
void SerializeFooter(const FileFooter& footer, ByteBuffer* out);
Result<FileFooter> DeserializeFooter(const uint8_t* data, size_t size);

/// Extracts the footer from complete file bytes (validates both magics).
Result<FileFooter> ReadFooterFromFile(const uint8_t* data, size_t size);

/// Page header preceding every page's (compressed) body.
struct PageHeader {
  uint32_t num_entries = 0;      // rep/def entry count (data pages)
  uint32_t rep_bytes = 0;        // sizes within the UNCOMPRESSED body
  uint32_t def_bytes = 0;
  uint32_t value_bytes = 0;
  uint32_t compressed_bytes = 0;  // size of compressed body that follows
};

void SerializePageHeader(const PageHeader& header, ByteBuffer* out);
Result<PageHeader> DeserializePageHeader(ByteReader* reader);

}  // namespace lakefile
}  // namespace presto

#endif  // PRESTO_LAKEFILE_FORMAT_H_
