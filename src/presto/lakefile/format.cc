#include "presto/lakefile/format.h"

#include <cstring>

#include "presto/expr/serialization.h"

namespace presto {
namespace lakefile {

namespace {

void SerializeColumnChunk(const ColumnChunkMeta& chunk, uint32_t version,
                          ByteBuffer* out) {
  out->PutString(chunk.leaf_path);
  out->PutVarint(chunk.offset);
  out->PutVarint(chunk.total_bytes);
  out->PutVarint(chunk.num_entries);
  out->PutVarint(chunk.num_values);
  out->PutVarint(static_cast<uint64_t>(chunk.null_count));
  out->PutU8(static_cast<uint8_t>(chunk.encoding));
  out->PutVarint(chunk.dictionary_offset);
  out->PutVarint(chunk.dictionary_bytes);
  out->PutVarint(chunk.dictionary_cardinality);
  out->PutU8(chunk.has_stats ? 1 : 0);
  if (chunk.has_stats) {
    SerializeValue(chunk.min, out);
    SerializeValue(chunk.max, out);
  }
  if (version < 2) return;
  out->PutVarint(chunk.pages.size());
  for (const DataPageMeta& page : chunk.pages) {
    out->PutVarint(page.offset);
    out->PutVarint(page.total_bytes);
    out->PutVarint(page.num_entries);
    out->PutVarint(page.num_rows);
    out->PutVarint(page.first_row);
    out->PutVarint(static_cast<uint64_t>(page.null_count));
    out->PutU8(page.has_stats ? 1 : 0);
    if (page.has_stats) {
      SerializeValue(page.min, out);
      SerializeValue(page.max, out);
    }
  }
}

Result<ColumnChunkMeta> DeserializeColumnChunk(ByteReader* reader,
                                               uint32_t version) {
  ColumnChunkMeta chunk;
  ASSIGN_OR_RETURN(chunk.leaf_path, reader->ReadString());
  ASSIGN_OR_RETURN(chunk.offset, reader->ReadVarint());
  ASSIGN_OR_RETURN(chunk.total_bytes, reader->ReadVarint());
  ASSIGN_OR_RETURN(chunk.num_entries, reader->ReadVarint());
  ASSIGN_OR_RETURN(chunk.num_values, reader->ReadVarint());
  ASSIGN_OR_RETURN(uint64_t null_count, reader->ReadVarint());
  chunk.null_count = static_cast<int64_t>(null_count);
  ASSIGN_OR_RETURN(uint8_t encoding, reader->ReadU8());
  chunk.encoding = static_cast<PageEncoding>(encoding);
  ASSIGN_OR_RETURN(chunk.dictionary_offset, reader->ReadVarint());
  ASSIGN_OR_RETURN(chunk.dictionary_bytes, reader->ReadVarint());
  ASSIGN_OR_RETURN(uint64_t cardinality, reader->ReadVarint());
  chunk.dictionary_cardinality = static_cast<uint32_t>(cardinality);
  ASSIGN_OR_RETURN(uint8_t has_stats, reader->ReadU8());
  chunk.has_stats = has_stats != 0;
  if (chunk.has_stats) {
    ASSIGN_OR_RETURN(chunk.min, DeserializeValue(reader));
    ASSIGN_OR_RETURN(chunk.max, DeserializeValue(reader));
  }
  if (version < 2) return chunk;
  ASSIGN_OR_RETURN(uint64_t num_pages, reader->ReadVarint());
  for (uint64_t p = 0; p < num_pages; ++p) {
    DataPageMeta page;
    ASSIGN_OR_RETURN(page.offset, reader->ReadVarint());
    ASSIGN_OR_RETURN(page.total_bytes, reader->ReadVarint());
    ASSIGN_OR_RETURN(page.num_entries, reader->ReadVarint());
    ASSIGN_OR_RETURN(page.num_rows, reader->ReadVarint());
    ASSIGN_OR_RETURN(page.first_row, reader->ReadVarint());
    ASSIGN_OR_RETURN(uint64_t page_nulls, reader->ReadVarint());
    page.null_count = static_cast<int64_t>(page_nulls);
    ASSIGN_OR_RETURN(uint8_t page_stats, reader->ReadU8());
    page.has_stats = page_stats != 0;
    if (page.has_stats) {
      ASSIGN_OR_RETURN(page.min, DeserializeValue(reader));
      ASSIGN_OR_RETURN(page.max, DeserializeValue(reader));
    }
    chunk.pages.push_back(std::move(page));
  }
  return chunk;
}

}  // namespace

void SerializeFooter(const FileFooter& footer, ByteBuffer* out) {
  out->PutU32(footer.version);
  out->PutString(footer.schema->ToString());
  out->PutU8(static_cast<uint8_t>(footer.compression));
  out->PutVarint(footer.num_rows);
  out->PutVarint(footer.row_groups.size());
  for (const RowGroupMeta& group : footer.row_groups) {
    out->PutVarint(group.num_rows);
    out->PutVarint(group.columns.size());
    for (const ColumnChunkMeta& chunk : group.columns) {
      SerializeColumnChunk(chunk, footer.version, out);
    }
  }
}

Result<FileFooter> DeserializeFooter(const uint8_t* data, size_t size) {
  ByteReader reader(data, size);
  FileFooter footer;
  ASSIGN_OR_RETURN(footer.version, reader.ReadU32());
  if (footer.version < kMinFormatVersion || footer.version > kFormatVersion) {
    return Status::Corruption("unsupported lakefile version " +
                              std::to_string(footer.version));
  }
  ASSIGN_OR_RETURN(std::string schema_text, reader.ReadString());
  ASSIGN_OR_RETURN(footer.schema, Type::Parse(schema_text));
  ASSIGN_OR_RETURN(uint8_t compression, reader.ReadU8());
  footer.compression = static_cast<CompressionKind>(compression);
  ASSIGN_OR_RETURN(footer.num_rows, reader.ReadVarint());
  ASSIGN_OR_RETURN(uint64_t num_groups, reader.ReadVarint());
  for (uint64_t g = 0; g < num_groups; ++g) {
    RowGroupMeta group;
    ASSIGN_OR_RETURN(group.num_rows, reader.ReadVarint());
    ASSIGN_OR_RETURN(uint64_t num_cols, reader.ReadVarint());
    for (uint64_t c = 0; c < num_cols; ++c) {
      ASSIGN_OR_RETURN(ColumnChunkMeta chunk,
                       DeserializeColumnChunk(&reader, footer.version));
      group.columns.push_back(std::move(chunk));
    }
    footer.row_groups.push_back(std::move(group));
  }
  return footer;
}

Result<FileFooter> ReadFooterFromFile(const uint8_t* data, size_t size) {
  size_t trailer = kMagicLen + sizeof(uint32_t);
  if (size < 2 * kMagicLen + trailer) {
    return Status::Corruption("file too small to be a lakefile");
  }
  if (std::memcmp(data, kMagic, kMagicLen) != 0 ||
      std::memcmp(data + size - kMagicLen, kMagic, kMagicLen) != 0) {
    return Status::Corruption("bad lakefile magic");
  }
  uint32_t footer_len;
  std::memcpy(&footer_len, data + size - trailer, sizeof(uint32_t));
  if (footer_len + trailer + kMagicLen > size) {
    return Status::Corruption("bad lakefile footer length");
  }
  return DeserializeFooter(data + size - trailer - footer_len, footer_len);
}

void SerializePageHeader(const PageHeader& header, ByteBuffer* out) {
  out->PutU32(header.num_entries);
  out->PutU32(header.rep_bytes);
  out->PutU32(header.def_bytes);
  out->PutU32(header.value_bytes);
  out->PutU32(header.compressed_bytes);
}

Result<PageHeader> DeserializePageHeader(ByteReader* reader) {
  PageHeader header;
  ASSIGN_OR_RETURN(header.num_entries, reader->ReadU32());
  ASSIGN_OR_RETURN(header.rep_bytes, reader->ReadU32());
  ASSIGN_OR_RETURN(header.def_bytes, reader->ReadU32());
  ASSIGN_OR_RETURN(header.value_bytes, reader->ReadU32());
  ASSIGN_OR_RETURN(header.compressed_bytes, reader->ReadU32());
  return header;
}

}  // namespace lakefile
}  // namespace presto
