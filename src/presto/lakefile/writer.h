#ifndef PRESTO_LAKEFILE_WRITER_H_
#define PRESTO_LAKEFILE_WRITER_H_

#include <memory>
#include <vector>

#include "presto/lakefile/format.h"
#include "presto/lakefile/shred.h"
#include "presto/vector/page.h"

namespace presto {
namespace lakefile {

struct WriterOptions {
  CompressionKind compression = CompressionKind::kNone;
  size_t row_group_rows = 10000;
  /// Target rows per data page (format v2): chunks are split into pages at
  /// row boundaries so a selective reader can skip page ranges via per-page
  /// min/max stats.
  size_t page_rows = 8192;
  uint32_t dictionary_max_cardinality = 4096;
  bool enable_dictionary = true;
  /// File format version to emit. kFormatVersion (2) writes multi-page
  /// chunks with a per-page stats list; 1 writes the old single-page layout
  /// (used to exercise the reader's back-compat path).
  uint32_t format_version = kFormatVersion;
};

/// Which write path to use.
///
/// kNative — the paper's brand-new native Parquet writer: "writes directly
/// from Presto's in-memory data structure to Parquet's columnar file format,
/// including data values, repetition values, and definition values"
/// (Section V.J). Vectors are shredded column-wise.
///
/// kLegacy — the old writer baseline: "iterates each columnar block in a
/// page and reconstructs every single record, then consumes each individual
/// record" — pages are first boxed into row Values, then shredded
/// value-by-value. Same file bytes, measurably more CPU.
enum class WriterMode {
  kNative,
  kLegacy,
};

/// Streaming lakefile writer. Append pages, then Finish to obtain the file
/// bytes (row groups are flushed every `row_group_rows` rows).
class LakeFileWriter {
 public:
  static Result<std::unique_ptr<LakeFileWriter>> Create(
      TypePtr schema, WriterOptions options = WriterOptions(),
      WriterMode mode = WriterMode::kNative);

  /// Appends a page whose columns match the schema's top-level fields.
  Status Append(const Page& page);

  /// Flushes the last row group and returns the complete file bytes.
  Result<std::vector<uint8_t>> Finish();

  uint64_t rows_written() const { return total_rows_; }

 private:
  LakeFileWriter(TypePtr schema, std::vector<Leaf> leaves, WriterOptions options,
                 WriterMode mode);

  Status FlushRowGroup();

  TypePtr schema_;
  std::vector<Leaf> leaves_;
  WriterOptions options_;
  WriterMode mode_;

  std::vector<LeafBuffer> buffers_;
  size_t rows_in_group_ = 0;
  uint64_t total_rows_ = 0;

  ByteBuffer file_;
  std::vector<RowGroupMeta> row_groups_;
  bool finished_ = false;
};

/// One-shot convenience: writes a set of pages into file bytes.
Result<std::vector<uint8_t>> WriteLakeFile(
    const TypePtr& schema, const std::vector<Page>& pages,
    WriterOptions options = WriterOptions(), WriterMode mode = WriterMode::kNative);

}  // namespace lakefile
}  // namespace presto

#endif  // PRESTO_LAKEFILE_WRITER_H_
