#include "presto/lakefile/writer.h"

#include <algorithm>
#include <unordered_map>

namespace presto {
namespace lakefile {

namespace {

// Levels are RLE-encoded as (varint run_length, u8 value) pairs.
void EncodeLevels(const std::vector<uint8_t>& levels, ByteBuffer* out) {
  size_t i = 0;
  while (i < levels.size()) {
    size_t j = i + 1;
    while (j < levels.size() && levels[j] == levels[i]) ++j;
    out->PutVarint(j - i);
    out->PutU8(levels[i]);
    i = j;
  }
}

void EncodePlainInts(const std::vector<int64_t>& values, ByteBuffer* out) {
  out->PutRaw(values.data(), values.size() * sizeof(int64_t));
}

void EncodePlainDoubles(const std::vector<double>& values, ByteBuffer* out) {
  out->PutRaw(values.data(), values.size() * sizeof(double));
}

void EncodePlainBools(const std::vector<uint8_t>& values, ByteBuffer* out) {
  out->PutRaw(values.data(), values.size());
}

void EncodePlainStrings(const std::vector<std::string>& values, ByteBuffer* out) {
  for (const std::string& s : values) out->PutString(s);
}

struct DictionaryPlan {
  bool use_dictionary = false;
  std::vector<uint32_t> indices;
  std::vector<int64_t> int_dict;
  std::vector<std::string> string_dict;
};

DictionaryPlan PlanIntDictionary(const std::vector<int64_t>& values,
                                 uint32_t max_cardinality) {
  DictionaryPlan plan;
  std::unordered_map<int64_t, uint32_t> index;
  plan.indices.reserve(values.size());
  for (int64_t v : values) {
    auto [it, inserted] = index.emplace(v, static_cast<uint32_t>(plan.int_dict.size()));
    if (inserted) {
      if (plan.int_dict.size() >= max_cardinality) return DictionaryPlan{};
      plan.int_dict.push_back(v);
    }
    plan.indices.push_back(it->second);
  }
  plan.use_dictionary = !values.empty() && plan.int_dict.size() * 2 < values.size();
  return plan;
}

DictionaryPlan PlanStringDictionary(const std::vector<std::string>& values,
                                    uint32_t max_cardinality) {
  DictionaryPlan plan;
  std::unordered_map<std::string, uint32_t> index;
  plan.indices.reserve(values.size());
  for (const std::string& v : values) {
    auto [it, inserted] =
        index.emplace(v, static_cast<uint32_t>(plan.string_dict.size()));
    if (inserted) {
      if (plan.string_dict.size() >= max_cardinality) return DictionaryPlan{};
      plan.string_dict.push_back(v);
    }
    plan.indices.push_back(it->second);
  }
  plan.use_dictionary =
      !values.empty() && plan.string_dict.size() * 2 < values.size();
  return plan;
}

void EncodeIndices(const std::vector<uint32_t>& indices, ByteBuffer* out) {
  for (uint32_t idx : indices) out->PutVarint(idx);
}

// Writes one page: header (uncompressed) + compressed body.
void EmitPage(uint32_t num_entries, const ByteBuffer& rep, const ByteBuffer& def,
              const ByteBuffer& values, CompressionKind compression,
              ByteBuffer* file) {
  ByteBuffer body;
  body.Reserve(rep.size() + def.size() + values.size());
  body.PutRaw(rep.data(), rep.size());
  body.PutRaw(def.data(), def.size());
  body.PutRaw(values.data(), values.size());
  std::vector<uint8_t> compressed =
      Compress(compression, body.data(), body.size());
  PageHeader header;
  header.num_entries = num_entries;
  header.rep_bytes = static_cast<uint32_t>(rep.size());
  header.def_bytes = static_cast<uint32_t>(def.size());
  header.value_bytes = static_cast<uint32_t>(values.size());
  header.compressed_bytes = static_cast<uint32_t>(compressed.size());
  SerializePageHeader(header, file);
  file->PutRaw(compressed.data(), compressed.size());
}

// Computes min/max/null statistics for a leaf buffer.
void FillStats(const Leaf& leaf, const LeafBuffer& buffer, ColumnChunkMeta* meta) {
  meta->null_count =
      static_cast<int64_t>(buffer.num_entries() - buffer.num_values(leaf));
  if (leaf.max_rep != 0 || buffer.num_values(leaf) == 0) return;
  switch (leaf.type->kind()) {
    case TypeKind::kDouble: {
      auto [lo, hi] = std::minmax_element(buffer.doubles.begin(), buffer.doubles.end());
      meta->min = Value::Double(*lo);
      meta->max = Value::Double(*hi);
      meta->has_stats = true;
      return;
    }
    case TypeKind::kVarchar: {
      auto [lo, hi] = std::minmax_element(buffer.strings.begin(), buffer.strings.end());
      meta->min = Value::String(*lo);
      meta->max = Value::String(*hi);
      meta->has_stats = true;
      return;
    }
    case TypeKind::kBoolean:
      return;  // no useful min/max
    default: {
      auto [lo, hi] = std::minmax_element(buffer.ints.begin(), buffer.ints.end());
      meta->min = Value::Int(*lo);
      meta->max = Value::Int(*hi);
      meta->has_stats = true;
      return;
    }
  }
}

// Encodes one column chunk (optional dictionary page + one data page) into
// `file`, returning its metadata.
ColumnChunkMeta EncodeChunk(const Leaf& leaf, const LeafBuffer& buffer,
                            const WriterOptions& options, ByteBuffer* file) {
  ColumnChunkMeta meta;
  meta.leaf_path = leaf.path;
  meta.offset = file->size();
  meta.num_entries = buffer.num_entries();
  meta.num_values = buffer.num_values(leaf);
  FillStats(leaf, buffer, &meta);

  ByteBuffer rep, def;
  if (leaf.max_rep > 0) EncodeLevels(buffer.rep, &rep);
  EncodeLevels(buffer.def, &def);

  // Try dictionary encoding for integer and string leaves.
  DictionaryPlan plan;
  if (options.enable_dictionary) {
    switch (leaf.type->kind()) {
      case TypeKind::kVarchar:
        plan = PlanStringDictionary(buffer.strings,
                                    options.dictionary_max_cardinality);
        break;
      case TypeKind::kDouble:
      case TypeKind::kBoolean:
        break;
      default:
        plan = PlanIntDictionary(buffer.ints, options.dictionary_max_cardinality);
        break;
    }
  }

  if (plan.use_dictionary) {
    meta.encoding = PageEncoding::kDictionary;
    meta.dictionary_offset = file->size();
    // Dictionary page: PLAIN-encoded distinct values.
    ByteBuffer dict_values;
    uint32_t cardinality;
    if (leaf.type->kind() == TypeKind::kVarchar) {
      EncodePlainStrings(plan.string_dict, &dict_values);
      cardinality = static_cast<uint32_t>(plan.string_dict.size());
    } else {
      EncodePlainInts(plan.int_dict, &dict_values);
      cardinality = static_cast<uint32_t>(plan.int_dict.size());
    }
    meta.dictionary_cardinality = cardinality;
    ByteBuffer empty;
    EmitPage(cardinality, empty, empty, dict_values, options.compression, file);
    meta.dictionary_bytes = file->size() - meta.dictionary_offset;
    // Data page: varint indices.
    ByteBuffer indices;
    EncodeIndices(plan.indices, &indices);
    EmitPage(static_cast<uint32_t>(buffer.num_entries()), rep, def, indices,
             options.compression, file);
  } else {
    meta.encoding = PageEncoding::kPlain;
    ByteBuffer values;
    switch (leaf.type->kind()) {
      case TypeKind::kBoolean:
        EncodePlainBools(buffer.bools, &values);
        break;
      case TypeKind::kDouble:
        EncodePlainDoubles(buffer.doubles, &values);
        break;
      case TypeKind::kVarchar:
        EncodePlainStrings(buffer.strings, &values);
        break;
      default:
        EncodePlainInts(buffer.ints, &values);
        break;
    }
    EmitPage(static_cast<uint32_t>(buffer.num_entries()), rep, def, values,
             options.compression, file);
  }
  meta.total_bytes = file->size() - meta.offset;
  return meta;
}

}  // namespace

LakeFileWriter::LakeFileWriter(TypePtr schema, std::vector<Leaf> leaves,
                               WriterOptions options, WriterMode mode)
    : schema_(std::move(schema)),
      leaves_(std::move(leaves)),
      options_(options),
      mode_(mode),
      buffers_(leaves_.size()) {
  file_.PutRaw(kMagic, kMagicLen);
}

Result<std::unique_ptr<LakeFileWriter>> LakeFileWriter::Create(
    TypePtr schema, WriterOptions options, WriterMode mode) {
  if (schema == nullptr || schema->kind() != TypeKind::kRow) {
    return Status::InvalidArgument("lakefile schema must be a ROW type");
  }
  ASSIGN_OR_RETURN(std::vector<Leaf> leaves, EnumerateLeaves(*schema));
  if (options.row_group_rows == 0) {
    return Status::InvalidArgument("row_group_rows must be positive");
  }
  return std::unique_ptr<LakeFileWriter>(new LakeFileWriter(
      std::move(schema), std::move(leaves), options, mode));
}

Status LakeFileWriter::Append(const Page& page) {
  if (finished_) return Status::InvalidArgument("writer already finished");
  if (page.num_columns() != schema_->NumChildren()) {
    return Status::InvalidArgument("page column count does not match schema");
  }
  // Keep row groups bounded: split oversized pages at group boundaries.
  if (rows_in_group_ + page.num_rows() > options_.row_group_rows) {
    size_t pos = 0;
    while (pos < page.num_rows()) {
      size_t capacity = options_.row_group_rows - rows_in_group_;
      size_t take = std::min(capacity, page.num_rows() - pos);
      std::vector<int32_t> rows(take);
      for (size_t i = 0; i < take; ++i) {
        rows[i] = static_cast<int32_t>(pos + i);
      }
      RETURN_IF_ERROR(Append(page.SliceRows(rows)));
      pos += take;
    }
    return Status::OK();
  }
  if (mode_ == WriterMode::kNative) {
    // Native path: shred each top-level vector column-wise, straight from
    // the in-memory columnar representation.
    size_t leaf_base = 0;
    for (size_t c = 0; c < page.num_columns(); ++c) {
      ASSIGN_OR_RETURN(std::vector<Leaf> field_leaves,
                       EnumerateFieldLeaves(schema_->field_name(c),
                                            schema_->child(c)));
      RETURN_IF_ERROR(ShredVector(leaves_.data() + leaf_base,
                                  field_leaves.size(), schema_->child(c),
                                  page.column(c), buffers_.data() + leaf_base));
      leaf_base += field_leaves.size();
    }
  } else {
    // Legacy path: reconstruct every record from the columnar page, then
    // consume it value-by-value (the overhead the native writer removes).
    TypePtr record_type = schema_;
    for (size_t r = 0; r < page.num_rows(); ++r) {
      Value record = Value::Row(page.GetRow(r));
      RETURN_IF_ERROR(ShredRecord(leaves_.data(), leaves_.size(), record_type,
                                  record, buffers_.data()));
    }
  }
  rows_in_group_ += page.num_rows();
  total_rows_ += page.num_rows();
  if (rows_in_group_ >= options_.row_group_rows) {
    RETURN_IF_ERROR(FlushRowGroup());
  }
  return Status::OK();
}

Status LakeFileWriter::FlushRowGroup() {
  if (rows_in_group_ == 0) return Status::OK();
  RowGroupMeta group;
  group.num_rows = rows_in_group_;
  for (size_t i = 0; i < leaves_.size(); ++i) {
    group.columns.push_back(
        EncodeChunk(leaves_[i], buffers_[i], options_, &file_));
    buffers_[i].Clear();
  }
  row_groups_.push_back(std::move(group));
  rows_in_group_ = 0;
  return Status::OK();
}

Result<std::vector<uint8_t>> LakeFileWriter::Finish() {
  if (finished_) return Status::InvalidArgument("writer already finished");
  RETURN_IF_ERROR(FlushRowGroup());
  finished_ = true;
  FileFooter footer;
  footer.schema = schema_;
  footer.compression = options_.compression;
  footer.num_rows = total_rows_;
  footer.row_groups = std::move(row_groups_);
  ByteBuffer footer_bytes;
  SerializeFooter(footer, &footer_bytes);
  uint32_t footer_len = static_cast<uint32_t>(footer_bytes.size());
  file_.PutRaw(footer_bytes.data(), footer_bytes.size());
  file_.PutU32(footer_len);
  file_.PutRaw(kMagic, kMagicLen);
  return std::move(file_.bytes());
}

Result<std::vector<uint8_t>> WriteLakeFile(const TypePtr& schema,
                                           const std::vector<Page>& pages,
                                           WriterOptions options,
                                           WriterMode mode) {
  ASSIGN_OR_RETURN(std::unique_ptr<LakeFileWriter> writer,
                   LakeFileWriter::Create(schema, options, mode));
  for (const Page& page : pages) {
    RETURN_IF_ERROR(writer->Append(page));
  }
  return writer->Finish();
}

}  // namespace lakefile
}  // namespace presto
