#include "presto/lakefile/writer.h"

#include <algorithm>
#include <unordered_map>

namespace presto {
namespace lakefile {

namespace {

// Levels are RLE-encoded as (varint run_length, u8 value) pairs.

// Level/value encoders work on subranges so one chunk can emit several
// pages, each covering a row slice of the buffered column.
void EncodeLevels(const uint8_t* levels, size_t count, ByteBuffer* out) {
  size_t i = 0;
  while (i < count) {
    size_t j = i + 1;
    while (j < count && levels[j] == levels[i]) ++j;
    out->PutVarint(j - i);
    out->PutU8(levels[i]);
    i = j;
  }
}

void EncodePlainInts(const int64_t* values, size_t count, ByteBuffer* out) {
  out->PutRaw(values, count * sizeof(int64_t));
}

void EncodePlainDoubles(const double* values, size_t count, ByteBuffer* out) {
  out->PutRaw(values, count * sizeof(double));
}

void EncodePlainBools(const uint8_t* values, size_t count, ByteBuffer* out) {
  out->PutRaw(values, count);
}

void EncodePlainStrings(const std::string* values, size_t count,
                        ByteBuffer* out) {
  for (size_t i = 0; i < count; ++i) out->PutString(values[i]);
}

struct DictionaryPlan {
  bool use_dictionary = false;
  std::vector<uint32_t> indices;
  std::vector<int64_t> int_dict;
  std::vector<std::string> string_dict;
};

DictionaryPlan PlanIntDictionary(const std::vector<int64_t>& values,
                                 uint32_t max_cardinality) {
  DictionaryPlan plan;
  std::unordered_map<int64_t, uint32_t> index;
  plan.indices.reserve(values.size());
  for (int64_t v : values) {
    auto [it, inserted] = index.emplace(v, static_cast<uint32_t>(plan.int_dict.size()));
    if (inserted) {
      if (plan.int_dict.size() >= max_cardinality) return DictionaryPlan{};
      plan.int_dict.push_back(v);
    }
    plan.indices.push_back(it->second);
  }
  plan.use_dictionary = !values.empty() && plan.int_dict.size() * 2 < values.size();
  return plan;
}

DictionaryPlan PlanStringDictionary(const std::vector<std::string>& values,
                                    uint32_t max_cardinality) {
  DictionaryPlan plan;
  std::unordered_map<std::string, uint32_t> index;
  plan.indices.reserve(values.size());
  for (const std::string& v : values) {
    auto [it, inserted] =
        index.emplace(v, static_cast<uint32_t>(plan.string_dict.size()));
    if (inserted) {
      if (plan.string_dict.size() >= max_cardinality) return DictionaryPlan{};
      plan.string_dict.push_back(v);
    }
    plan.indices.push_back(it->second);
  }
  plan.use_dictionary =
      !values.empty() && plan.string_dict.size() * 2 < values.size();
  return plan;
}

void EncodeIndices(const uint32_t* indices, size_t count, ByteBuffer* out) {
  for (size_t i = 0; i < count; ++i) out->PutVarint(indices[i]);
}

// Writes one page: header (uncompressed) + compressed body.
void EmitPage(uint32_t num_entries, const ByteBuffer& rep, const ByteBuffer& def,
              const ByteBuffer& values, CompressionKind compression,
              ByteBuffer* file) {
  ByteBuffer body;
  body.Reserve(rep.size() + def.size() + values.size());
  body.PutRaw(rep.data(), rep.size());
  body.PutRaw(def.data(), def.size());
  body.PutRaw(values.data(), values.size());
  std::vector<uint8_t> compressed =
      Compress(compression, body.data(), body.size());
  PageHeader header;
  header.num_entries = num_entries;
  header.rep_bytes = static_cast<uint32_t>(rep.size());
  header.def_bytes = static_cast<uint32_t>(def.size());
  header.value_bytes = static_cast<uint32_t>(values.size());
  header.compressed_bytes = static_cast<uint32_t>(compressed.size());
  SerializePageHeader(header, file);
  file->PutRaw(compressed.data(), compressed.size());
}

// Computes min/max over a value subrange [first, first + count) of the leaf
// buffer; leaves `has_stats` false for repeated leaves, booleans, and empty
// ranges (same rules at chunk and page granularity).
template <typename Meta>
void FillMinMax(const Leaf& leaf, const LeafBuffer& buffer, size_t first,
                size_t count, Meta* meta) {
  if (leaf.max_rep != 0 || count == 0) return;
  switch (leaf.type->kind()) {
    case TypeKind::kDouble: {
      auto [lo, hi] = std::minmax_element(buffer.doubles.begin() + first,
                                          buffer.doubles.begin() + first + count);
      meta->min = Value::Double(*lo);
      meta->max = Value::Double(*hi);
      meta->has_stats = true;
      return;
    }
    case TypeKind::kVarchar: {
      auto [lo, hi] = std::minmax_element(buffer.strings.begin() + first,
                                          buffer.strings.begin() + first + count);
      meta->min = Value::String(*lo);
      meta->max = Value::String(*hi);
      meta->has_stats = true;
      return;
    }
    case TypeKind::kBoolean:
      return;  // no useful min/max
    default: {
      auto [lo, hi] = std::minmax_element(buffer.ints.begin() + first,
                                          buffer.ints.begin() + first + count);
      meta->min = Value::Int(*lo);
      meta->max = Value::Int(*hi);
      meta->has_stats = true;
      return;
    }
  }
}

// Encodes one column chunk (optional dictionary page + data pages) into
// `file`, returning its metadata. At format v2 the chunk is split into
// ~page_rows-row pages at row boundaries, each with its own footer stats so
// readers can skip page ranges; v1 keeps the old single-page layout. The
// dictionary (when used) spans the whole chunk — pages share it.
ColumnChunkMeta EncodeChunk(const Leaf& leaf, const LeafBuffer& buffer,
                            const WriterOptions& options, ByteBuffer* file) {
  ColumnChunkMeta meta;
  meta.leaf_path = leaf.path;
  meta.offset = file->size();
  meta.num_entries = buffer.num_entries();
  meta.num_values = buffer.num_values(leaf);
  meta.null_count =
      static_cast<int64_t>(buffer.num_entries() - buffer.num_values(leaf));
  FillMinMax(leaf, buffer, 0, buffer.num_values(leaf), &meta);

  // Try dictionary encoding for integer and string leaves.
  DictionaryPlan plan;
  if (options.enable_dictionary) {
    switch (leaf.type->kind()) {
      case TypeKind::kVarchar:
        plan = PlanStringDictionary(buffer.strings,
                                    options.dictionary_max_cardinality);
        break;
      case TypeKind::kDouble:
      case TypeKind::kBoolean:
        break;
      default:
        plan = PlanIntDictionary(buffer.ints, options.dictionary_max_cardinality);
        break;
    }
  }

  if (plan.use_dictionary) {
    meta.encoding = PageEncoding::kDictionary;
    meta.dictionary_offset = file->size();
    // Dictionary page: PLAIN-encoded distinct values.
    ByteBuffer dict_values;
    uint32_t cardinality;
    if (leaf.type->kind() == TypeKind::kVarchar) {
      EncodePlainStrings(plan.string_dict.data(), plan.string_dict.size(),
                         &dict_values);
      cardinality = static_cast<uint32_t>(plan.string_dict.size());
    } else {
      EncodePlainInts(plan.int_dict.data(), plan.int_dict.size(), &dict_values);
      cardinality = static_cast<uint32_t>(plan.int_dict.size());
    }
    meta.dictionary_cardinality = cardinality;
    ByteBuffer empty;
    EmitPage(cardinality, empty, empty, dict_values, options.compression, file);
    meta.dictionary_bytes = file->size() - meta.dictionary_offset;
  } else {
    meta.encoding = PageEncoding::kPlain;
  }

  // Entry index of every row start (an entry starts a row iff the leaf is
  // unrepeated or its repetition level is 0).
  const size_t total_entries = buffer.num_entries();
  std::vector<size_t> row_starts;
  if (leaf.max_rep == 0) {
    row_starts.resize(total_entries);
    for (size_t e = 0; e < total_entries; ++e) row_starts[e] = e;
  } else {
    for (size_t e = 0; e < total_entries; ++e) {
      if (buffer.rep[e] == 0) row_starts.push_back(e);
    }
  }
  const size_t total_rows = row_starts.size();
  const size_t rows_per_page =
      options.format_version >= 2 && options.page_rows > 0
          ? options.page_rows
          : (total_rows == 0 ? 1 : total_rows);

  size_t value_cursor = 0;
  for (size_t row = 0; row < total_rows; row += rows_per_page) {
    const size_t page_num_rows = std::min(rows_per_page, total_rows - row);
    const size_t first_entry = row_starts[row];
    const size_t end_entry = row + page_num_rows < total_rows
                                 ? row_starts[row + page_num_rows]
                                 : total_entries;
    const size_t page_entries = end_entry - first_entry;
    const size_t first_value = value_cursor;
    for (size_t e = first_entry; e < end_entry; ++e) {
      if (buffer.def[e] == leaf.max_def) ++value_cursor;
    }
    const size_t page_values = value_cursor - first_value;

    ByteBuffer rep, def;
    if (leaf.max_rep > 0) {
      EncodeLevels(buffer.rep.data() + first_entry, page_entries, &rep);
    }
    EncodeLevels(buffer.def.data() + first_entry, page_entries, &def);

    ByteBuffer values;
    if (plan.use_dictionary) {
      EncodeIndices(plan.indices.data() + first_value, page_values, &values);
    } else {
      switch (leaf.type->kind()) {
        case TypeKind::kBoolean:
          EncodePlainBools(buffer.bools.data() + first_value, page_values,
                           &values);
          break;
        case TypeKind::kDouble:
          EncodePlainDoubles(buffer.doubles.data() + first_value, page_values,
                             &values);
          break;
        case TypeKind::kVarchar:
          EncodePlainStrings(buffer.strings.data() + first_value, page_values,
                             &values);
          break;
        default:
          EncodePlainInts(buffer.ints.data() + first_value, page_values,
                          &values);
          break;
      }
    }

    DataPageMeta page_meta;
    page_meta.offset = file->size() - meta.offset;
    page_meta.num_entries = page_entries;
    page_meta.num_rows = page_num_rows;
    page_meta.first_row = row;
    page_meta.null_count = static_cast<int64_t>(page_entries - page_values);
    FillMinMax(leaf, buffer, first_value, page_values, &page_meta);
    EmitPage(static_cast<uint32_t>(page_entries), rep, def, values,
             options.compression, file);
    page_meta.total_bytes = file->size() - meta.offset - page_meta.offset;
    if (options.format_version >= 2) meta.pages.push_back(std::move(page_meta));
  }
  meta.total_bytes = file->size() - meta.offset;
  return meta;
}

}  // namespace

LakeFileWriter::LakeFileWriter(TypePtr schema, std::vector<Leaf> leaves,
                               WriterOptions options, WriterMode mode)
    : schema_(std::move(schema)),
      leaves_(std::move(leaves)),
      options_(options),
      mode_(mode),
      buffers_(leaves_.size()) {
  file_.PutRaw(kMagic, kMagicLen);
}

Result<std::unique_ptr<LakeFileWriter>> LakeFileWriter::Create(
    TypePtr schema, WriterOptions options, WriterMode mode) {
  if (schema == nullptr || schema->kind() != TypeKind::kRow) {
    return Status::InvalidArgument("lakefile schema must be a ROW type");
  }
  ASSIGN_OR_RETURN(std::vector<Leaf> leaves, EnumerateLeaves(*schema));
  if (options.row_group_rows == 0) {
    return Status::InvalidArgument("row_group_rows must be positive");
  }
  if (options.format_version < kMinFormatVersion ||
      options.format_version > kFormatVersion) {
    return Status::InvalidArgument("unsupported lakefile format version " +
                                   std::to_string(options.format_version));
  }
  return std::unique_ptr<LakeFileWriter>(new LakeFileWriter(
      std::move(schema), std::move(leaves), options, mode));
}

Status LakeFileWriter::Append(const Page& page) {
  if (finished_) return Status::InvalidArgument("writer already finished");
  if (page.num_columns() != schema_->NumChildren()) {
    return Status::InvalidArgument("page column count does not match schema");
  }
  // Keep row groups bounded: split oversized pages at group boundaries.
  if (rows_in_group_ + page.num_rows() > options_.row_group_rows) {
    size_t pos = 0;
    while (pos < page.num_rows()) {
      size_t capacity = options_.row_group_rows - rows_in_group_;
      size_t take = std::min(capacity, page.num_rows() - pos);
      std::vector<int32_t> rows(take);
      for (size_t i = 0; i < take; ++i) {
        rows[i] = static_cast<int32_t>(pos + i);
      }
      RETURN_IF_ERROR(Append(page.SliceRows(rows)));
      pos += take;
    }
    return Status::OK();
  }
  if (mode_ == WriterMode::kNative) {
    // Native path: shred each top-level vector column-wise, straight from
    // the in-memory columnar representation.
    size_t leaf_base = 0;
    for (size_t c = 0; c < page.num_columns(); ++c) {
      ASSIGN_OR_RETURN(std::vector<Leaf> field_leaves,
                       EnumerateFieldLeaves(schema_->field_name(c),
                                            schema_->child(c)));
      RETURN_IF_ERROR(ShredVector(leaves_.data() + leaf_base,
                                  field_leaves.size(), schema_->child(c),
                                  page.column(c), buffers_.data() + leaf_base));
      leaf_base += field_leaves.size();
    }
  } else {
    // Legacy path: reconstruct every record from the columnar page, then
    // consume it value-by-value (the overhead the native writer removes).
    TypePtr record_type = schema_;
    for (size_t r = 0; r < page.num_rows(); ++r) {
      Value record = Value::Row(page.GetRow(r));
      RETURN_IF_ERROR(ShredRecord(leaves_.data(), leaves_.size(), record_type,
                                  record, buffers_.data()));
    }
  }
  rows_in_group_ += page.num_rows();
  total_rows_ += page.num_rows();
  if (rows_in_group_ >= options_.row_group_rows) {
    RETURN_IF_ERROR(FlushRowGroup());
  }
  return Status::OK();
}

Status LakeFileWriter::FlushRowGroup() {
  if (rows_in_group_ == 0) return Status::OK();
  RowGroupMeta group;
  group.num_rows = rows_in_group_;
  for (size_t i = 0; i < leaves_.size(); ++i) {
    group.columns.push_back(
        EncodeChunk(leaves_[i], buffers_[i], options_, &file_));
    buffers_[i].Clear();
  }
  row_groups_.push_back(std::move(group));
  rows_in_group_ = 0;
  return Status::OK();
}

Result<std::vector<uint8_t>> LakeFileWriter::Finish() {
  if (finished_) return Status::InvalidArgument("writer already finished");
  RETURN_IF_ERROR(FlushRowGroup());
  finished_ = true;
  FileFooter footer;
  footer.version = options_.format_version;
  footer.schema = schema_;
  footer.compression = options_.compression;
  footer.num_rows = total_rows_;
  footer.row_groups = std::move(row_groups_);
  ByteBuffer footer_bytes;
  SerializeFooter(footer, &footer_bytes);
  uint32_t footer_len = static_cast<uint32_t>(footer_bytes.size());
  file_.PutRaw(footer_bytes.data(), footer_bytes.size());
  file_.PutU32(footer_len);
  file_.PutRaw(kMagic, kMagicLen);
  return std::move(file_.bytes());
}

Result<std::vector<uint8_t>> WriteLakeFile(const TypePtr& schema,
                                           const std::vector<Page>& pages,
                                           WriterOptions options,
                                           WriterMode mode) {
  ASSIGN_OR_RETURN(std::unique_ptr<LakeFileWriter> writer,
                   LakeFileWriter::Create(schema, options, mode));
  for (const Page& page : pages) {
    RETURN_IF_ERROR(writer->Append(page));
  }
  return writer->Finish();
}

}  // namespace lakefile
}  // namespace presto
