#include "presto/lakefile/reader.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "presto/vector/vector_builder.h"

namespace presto {
namespace lakefile {

namespace {

// ===========================================================================
// Low-level decoding
// ===========================================================================

// Vectorized level decode: whole RLE runs at a time (memset-style fills).
Status DecodeLevelsVectorized(ByteReader* reader, size_t count,
                              std::vector<uint8_t>* out) {
  out->resize(count);
  size_t filled = 0;
  while (filled < count) {
    ASSIGN_OR_RETURN(uint64_t run, reader->ReadVarint());
    ASSIGN_OR_RETURN(uint8_t value, reader->ReadU8());
    if (filled + run > count) return Status::Corruption("level run overflow");
    std::memset(out->data() + filled, value, run);
    filled += run;
  }
  return Status::OK();
}

// Per-entry level decode: re-enters the RLE state machine for every single
// entry (the per-triplet overhead the vectorized reader removes).
Status DecodeLevelsScalar(ByteReader* reader, size_t count,
                          std::vector<uint8_t>* out) {
  out->resize(count);
  uint64_t run_remaining = 0;
  uint8_t run_value = 0;
  for (size_t i = 0; i < count; ++i) {
    if (run_remaining == 0) {
      ASSIGN_OR_RETURN(run_remaining, reader->ReadVarint());
      ASSIGN_OR_RETURN(run_value, reader->ReadU8());
      if (run_remaining == 0) return Status::Corruption("empty level run");
    }
    (*out)[i] = run_value;
    --run_remaining;
  }
  if (run_remaining != 0) return Status::Corruption("level run underflow");
  return Status::OK();
}

Status DecodeLevels(ByteReader* reader, size_t count, bool vectorized,
                    std::vector<uint8_t>* out) {
  return vectorized ? DecodeLevelsVectorized(reader, count, out)
                    : DecodeLevelsScalar(reader, count, out);
}

// Raw (already decompressed) pages of one column chunk.
struct ChunkPages {
  PageHeader header;
  std::vector<uint8_t> body;  // rep | def | values
  bool has_dictionary = false;
  std::vector<int64_t> dict_ints;
  std::vector<std::string> dict_strings;
};

Result<std::vector<uint8_t>> ReadRegion(RandomAccessFile* file, uint64_t offset,
                                        size_t n, ReaderStats* stats) {
  std::vector<uint8_t> bytes(n);
  size_t done = 0;
  while (done < n) {
    ASSIGN_OR_RETURN(size_t got,
                     file->Read(offset + done, n - done, bytes.data() + done));
    if (got == 0) return Status::Corruption("unexpected EOF in lakefile");
    done += got;
  }
  stats->bytes_read += static_cast<int64_t>(n);
  return bytes;
}

Result<std::pair<PageHeader, std::vector<uint8_t>>> ParsePage(
    ByteReader* reader, CompressionKind compression) {
  ASSIGN_OR_RETURN(PageHeader header, DeserializePageHeader(reader));
  if (header.compressed_bytes > reader->remaining()) {
    return Status::Corruption("page body exceeds chunk bounds");
  }
  ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                   Decompress(compression, reader->current(),
                              header.compressed_bytes));
  RETURN_IF_ERROR(reader->Skip(header.compressed_bytes));
  if (body.size() !=
      static_cast<size_t>(header.rep_bytes) + header.def_bytes + header.value_bytes) {
    return Status::Corruption("page body size mismatch");
  }
  return std::make_pair(header, std::move(body));
}

Status DecodeDictionaryPage(const Leaf& leaf, const PageHeader& header,
                            const std::vector<uint8_t>& body, ChunkPages* pages) {
  pages->has_dictionary = true;
  ByteReader values(body.data(), body.size());
  if (leaf.type->kind() == TypeKind::kVarchar) {
    pages->dict_strings.reserve(header.num_entries);
    for (uint32_t i = 0; i < header.num_entries; ++i) {
      ASSIGN_OR_RETURN(std::string s, values.ReadString());
      pages->dict_strings.push_back(std::move(s));
    }
  } else {
    pages->dict_ints.resize(header.num_entries);
    RETURN_IF_ERROR(values.ReadRaw(pages->dict_ints.data(),
                                   header.num_entries * sizeof(int64_t)));
  }
  return Status::OK();
}

// Reads and decompresses all pages of a chunk with a single range read.
Result<ChunkPages> ReadChunk(RandomAccessFile* file, const Leaf& leaf,
                             const ColumnChunkMeta& meta,
                             CompressionKind compression, ReaderStats* stats) {
  ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                   ReadRegion(file, meta.offset, meta.total_bytes, stats));
  ByteReader reader(raw.data(), raw.size());
  ChunkPages pages;
  if (meta.encoding == PageEncoding::kDictionary) {
    ASSIGN_OR_RETURN(auto dict, ParsePage(&reader, compression));
    RETURN_IF_ERROR(DecodeDictionaryPage(leaf, dict.first, dict.second, &pages));
  }
  ASSIGN_OR_RETURN(auto data, ParsePage(&reader, compression));
  pages.header = data.first;
  pages.body = std::move(data.second);
  return pages;
}

// Reads only the dictionary page of a chunk (dictionary pushdown probe).
Result<ChunkPages> ReadDictionaryOnly(RandomAccessFile* file, const Leaf& leaf,
                                      const ColumnChunkMeta& meta,
                                      CompressionKind compression,
                                      ReaderStats* stats) {
  ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                   ReadRegion(file, meta.dictionary_offset,
                              meta.dictionary_bytes, stats));
  ByteReader reader(raw.data(), raw.size());
  ChunkPages pages;
  ASSIGN_OR_RETURN(auto dict, ParsePage(&reader, compression));
  RETURN_IF_ERROR(DecodeDictionaryPage(leaf, dict.first, dict.second, &pages));
  return pages;
}

// Decodes one leaf chunk into a DecodedLeaf. When `selected_entries` is
// non-null (sorted entry indices), only those entries' values are
// materialized (lazy reads); skipped string values are never copied.
Result<DecodedLeaf> DecodeLeafChunk(const Leaf& leaf, const ChunkPages& pages,
                                    bool vectorized,
                                    const std::vector<int32_t>* selected_entries,
                                    ReaderStats* stats) {
  DecodedLeaf out;
  out.leaf = leaf;
  const PageHeader& header = pages.header;
  size_t count = header.num_entries;

  ByteReader rep_reader(pages.body.data(), header.rep_bytes);
  ByteReader def_reader(pages.body.data() + header.rep_bytes, header.def_bytes);
  ByteReader value_reader(pages.body.data() + header.rep_bytes + header.def_bytes,
                          header.value_bytes);

  std::vector<uint8_t> all_rep, all_def;
  if (leaf.max_rep > 0) {
    RETURN_IF_ERROR(DecodeLevels(&rep_reader, count, vectorized, &all_rep));
  }
  RETURN_IF_ERROR(DecodeLevels(&def_reader, count, vectorized, &all_def));

  // Value presence per entry.
  auto has_value = [&](size_t e) { return all_def[e] == leaf.max_def; };

  // Entry subset view.
  const bool subset = selected_entries != nullptr;
  size_t out_entries = subset ? selected_entries->size() : count;
  out.def.reserve(out_entries);
  if (leaf.max_rep > 0) out.rep.reserve(out_entries);

  auto for_each_entry = [&](auto&& on_entry) -> Status {
    size_t sel_cursor = 0;
    for (size_t e = 0; e < count; ++e) {
      bool selected = true;
      if (subset) {
        selected = sel_cursor < selected_entries->size() &&
                   (*selected_entries)[sel_cursor] == static_cast<int32_t>(e);
        if (selected) ++sel_cursor;
      }
      RETURN_IF_ERROR(on_entry(e, selected));
    }
    return Status::OK();
  };

  auto append_levels = [&](size_t e) {
    out.def.push_back(all_def[e]);
    if (leaf.max_rep > 0) out.rep.push_back(all_rep[e]);
  };

  // -- Dictionary-encoded values ------------------------------------------
  if (pages.has_dictionary) {
    RETURN_IF_ERROR(for_each_entry([&](size_t e, bool selected) -> Status {
      uint64_t index = 0;
      if (has_value(e)) {
        ASSIGN_OR_RETURN(index, value_reader.ReadVarint());
        ++stats->values_decoded;
      }
      if (!selected) return Status::OK();
      append_levels(e);
      if (has_value(e)) {
        if (leaf.type->kind() == TypeKind::kVarchar) {
          if (index >= pages.dict_strings.size()) {
            return Status::Corruption("dictionary index out of range");
          }
          out.strings.push_back(pages.dict_strings[index]);
        } else {
          if (index >= pages.dict_ints.size()) {
            return Status::Corruption("dictionary index out of range");
          }
          out.ints.push_back(pages.dict_ints[index]);
        }
      }
      return Status::OK();
    }));
    return out;
  }

  // -- PLAIN values ----------------------------------------------------------
  switch (leaf.type->kind()) {
    case TypeKind::kVarchar: {
      RETURN_IF_ERROR(for_each_entry([&](size_t e, bool selected) -> Status {
        if (!has_value(e)) {
          if (selected) append_levels(e);
          return Status::OK();
        }
        ASSIGN_OR_RETURN(uint64_t len, value_reader.ReadVarint());
        if (selected) {
          append_levels(e);
          std::string s(len, '\0');
          RETURN_IF_ERROR(value_reader.ReadRaw(s.data(), len));
          out.strings.push_back(std::move(s));
          ++stats->values_decoded;
        } else {
          RETURN_IF_ERROR(value_reader.Skip(len));  // lazy: never copied
        }
        return Status::OK();
      }));
      return out;
    }
    case TypeKind::kBoolean: {
      RETURN_IF_ERROR(for_each_entry([&](size_t e, bool selected) -> Status {
        if (!has_value(e)) {
          if (selected) append_levels(e);
          return Status::OK();
        }
        ASSIGN_OR_RETURN(uint8_t b, value_reader.ReadU8());
        if (selected) {
          append_levels(e);
          out.bools.push_back(b);
          ++stats->values_decoded;
        }
        return Status::OK();
      }));
      return out;
    }
    case TypeKind::kDouble:
    default: {
      const bool is_double = leaf.type->kind() == TypeKind::kDouble;
      size_t width = 8;
      size_t total_values = header.value_bytes / width;
      if (!subset && vectorized && count == total_values) {
        // Fast path: dense column, bulk copy straight out of the page.
        out.def = std::move(all_def);
        out.rep = std::move(all_rep);
        if (is_double) {
          out.doubles.resize(total_values);
          RETURN_IF_ERROR(value_reader.ReadRaw(out.doubles.data(),
                                               total_values * width));
        } else {
          out.ints.resize(total_values);
          RETURN_IF_ERROR(value_reader.ReadRaw(out.ints.data(),
                                               total_values * width));
        }
        stats->values_decoded += static_cast<int64_t>(total_values);
        return out;
      }
      // General path: fixed-width values allow O(1) skips.
      size_t value_index = 0;
      RETURN_IF_ERROR(for_each_entry([&](size_t e, bool selected) -> Status {
        if (!has_value(e)) {
          if (selected) append_levels(e);
          return Status::OK();
        }
        size_t my_index = value_index++;
        if (!selected) return Status::OK();
        append_levels(e);
        RETURN_IF_ERROR(value_reader.Seek(my_index * width));
        if (is_double) {
          ASSIGN_OR_RETURN(double v, value_reader.ReadDouble());
          out.doubles.push_back(v);
        } else {
          ASSIGN_OR_RETURN(int64_t v, value_reader.ReadI64());
          out.ints.push_back(v);
        }
        ++stats->values_decoded;
        return Status::OK();
      }));
      return out;
    }
  }
}

// ===========================================================================
// Predicates
// ===========================================================================

bool CompareMatches(LeafPredicate::Op op, int cmp) {
  switch (op) {
    case LeafPredicate::Op::kEq:
      return cmp == 0;
    case LeafPredicate::Op::kNe:
      return cmp != 0;
    case LeafPredicate::Op::kLt:
      return cmp < 0;
    case LeafPredicate::Op::kLe:
      return cmp <= 0;
    case LeafPredicate::Op::kGt:
      return cmp > 0;
    case LeafPredicate::Op::kGe:
      return cmp >= 0;
    case LeafPredicate::Op::kIn:
      return cmp == 0;
  }
  return false;
}

/// Can any value in [min, max] satisfy the predicate? (row-group skipping)
bool StatsMayMatch(const ColumnChunkMeta& meta, const LeafPredicate& pred) {
  if (!meta.has_stats) return true;
  switch (pred.op) {
    case LeafPredicate::Op::kEq:
      return pred.operands[0].Compare(meta.min) >= 0 &&
             pred.operands[0].Compare(meta.max) <= 0;
    case LeafPredicate::Op::kIn: {
      for (const Value& v : pred.operands) {
        if (v.Compare(meta.min) >= 0 && v.Compare(meta.max) <= 0) return true;
      }
      return false;
    }
    case LeafPredicate::Op::kNe:
      // Only skippable when every value equals the operand.
      return !(meta.min.Compare(meta.max) == 0 &&
               meta.min.Compare(pred.operands[0]) == 0);
    case LeafPredicate::Op::kLt:
      return meta.min.Compare(pred.operands[0]) < 0;
    case LeafPredicate::Op::kLe:
      return meta.min.Compare(pred.operands[0]) <= 0;
    case LeafPredicate::Op::kGt:
      return meta.max.Compare(pred.operands[0]) > 0;
    case LeafPredicate::Op::kGe:
      return meta.max.Compare(pred.operands[0]) >= 0;
  }
  return true;
}

/// Does any dictionary value satisfy an equality/IN predicate?
bool DictionaryMayMatch(const ChunkPages& dict, const Leaf& leaf,
                        const LeafPredicate& pred) {
  if (pred.op != LeafPredicate::Op::kEq && pred.op != LeafPredicate::Op::kIn) {
    return true;
  }
  if (leaf.type->kind() == TypeKind::kVarchar) {
    for (const std::string& v : dict.dict_strings) {
      for (const Value& operand : pred.operands) {
        if (operand.is_string() && operand.string_value() == v) return true;
      }
    }
    return false;
  }
  for (int64_t v : dict.dict_ints) {
    for (const Value& operand : pred.operands) {
      if (operand.is_int() && operand.int_value() == v) return true;
    }
  }
  return false;
}

/// Evaluates one conjunct over a decoded (maxrep==0) leaf; clears non-matching
/// bits in `mask`.
void ApplyPredicate(const DecodedLeaf& leaf, const LeafPredicate& pred,
                    std::vector<uint8_t>* mask) {
  const int max_def = leaf.leaf.max_def;
  size_t value_cursor = 0;
  for (size_t e = 0; e < leaf.def.size(); ++e) {
    bool has_value = leaf.def[e] == max_def;
    if (!has_value) {
      (*mask)[e] = 0;  // NULL never matches
      continue;
    }
    size_t v = value_cursor++;
    if ((*mask)[e] == 0) continue;
    bool matches = false;
    switch (leaf.leaf.type->kind()) {
      case TypeKind::kVarchar: {
        const std::string& value = leaf.strings[v];
        for (const Value& operand : pred.operands) {
          int cmp = value.compare(operand.string_value());
          if (CompareMatches(pred.op, cmp)) {
            matches = true;
            break;
          }
        }
        break;
      }
      case TypeKind::kDouble: {
        double value = leaf.doubles[v];
        for (const Value& operand : pred.operands) {
          double o = operand.AsDouble();
          int cmp = value < o ? -1 : (value > o ? 1 : 0);
          if (CompareMatches(pred.op, cmp)) {
            matches = true;
            break;
          }
        }
        break;
      }
      case TypeKind::kBoolean: {
        bool value = leaf.bools[v] != 0;
        for (const Value& operand : pred.operands) {
          int cmp = static_cast<int>(value) - static_cast<int>(operand.bool_value());
          if (CompareMatches(pred.op, cmp)) {
            matches = true;
            break;
          }
        }
        break;
      }
      default: {
        int64_t value = leaf.ints[v];
        for (const Value& operand : pred.operands) {
          int64_t o = operand.is_int() ? operand.int_value()
                                       : static_cast<int64_t>(operand.AsDouble());
          int cmp = value < o ? -1 : (value > o ? 1 : 0);
          if (CompareMatches(pred.op, cmp)) {
            matches = true;
            break;
          }
        }
        break;
      }
    }
    if (!matches) (*mask)[e] = 0;
  }
  // A fully-consumed cursor is not required: trailing entries without values
  // were already masked out above.
}

// ===========================================================================
// Pruned type construction
// ===========================================================================

bool AnyLeafUnder(const std::set<std::string>& required, const std::string& prefix) {
  auto it = required.lower_bound(prefix);
  if (it == required.end()) return false;
  return *it == prefix || it->rfind(prefix + ".", 0) == 0;
}

Result<TypePtr> PruneType(const std::string& prefix, const TypePtr& type,
                          const std::set<std::string>& required) {
  switch (type->kind()) {
    case TypeKind::kRow: {
      std::vector<std::string> names;
      std::vector<TypePtr> children;
      for (size_t i = 0; i < type->NumChildren(); ++i) {
        std::string child_prefix = prefix + "." + type->field_name(i);
        if (!AnyLeafUnder(required, child_prefix)) continue;
        ASSIGN_OR_RETURN(TypePtr child,
                         PruneType(child_prefix, type->child(i), required));
        names.push_back(type->field_name(i));
        children.push_back(std::move(child));
      }
      if (children.empty()) {
        return Status::InvalidArgument("no required leaves under " + prefix);
      }
      return Type::Row(std::move(names), std::move(children));
    }
    // Containers are kept whole once any leaf under them is required.
    case TypeKind::kArray:
    case TypeKind::kMap:
    default:
      return type;
  }
}

}  // namespace

Result<TypePtr> PruneColumnType(const std::string& column, const TypePtr& type,
                                const std::vector<std::string>& required_leaves) {
  if (required_leaves.empty() || type->kind() != TypeKind::kRow) return type;
  std::set<std::string> required(required_leaves.begin(), required_leaves.end());
  if (!AnyLeafUnder(required, column)) return type;
  return PruneType(column, type, required);
}

// ===========================================================================
// Footer reading
// ===========================================================================

Result<FileFooter> ReadFooter(RandomAccessFile* file) {
  ASSIGN_OR_RETURN(uint64_t size, file->Size());
  size_t trailer = sizeof(uint32_t) + kMagicLen;
  if (size < trailer + kMagicLen) {
    return Status::Corruption("file too small to be a lakefile");
  }
  uint8_t tail[sizeof(uint32_t) + kMagicLen];
  ASSIGN_OR_RETURN(size_t got, file->Read(size - trailer, trailer, tail));
  if (got != trailer) return Status::Corruption("short read of lakefile trailer");
  if (std::memcmp(tail + sizeof(uint32_t), kMagic, kMagicLen) != 0) {
    return Status::Corruption("bad lakefile magic");
  }
  uint32_t footer_len;
  std::memcpy(&footer_len, tail, sizeof(uint32_t));
  if (footer_len + trailer + kMagicLen > size) {
    return Status::Corruption("bad lakefile footer length");
  }
  std::vector<uint8_t> footer_bytes(footer_len);
  ASSIGN_OR_RETURN(size_t footer_got, file->Read(size - trailer - footer_len,
                                                 footer_len, footer_bytes.data()));
  if (footer_got != footer_len) return Status::Corruption("short footer read");
  return DeserializeFooter(footer_bytes.data(), footer_bytes.size());
}

// ===========================================================================
// NativeLakeFileReader
// ===========================================================================

Result<std::unique_ptr<NativeLakeFileReader>> NativeLakeFileReader::Open(
    std::shared_ptr<RandomAccessFile> file, ReaderOptions options,
    std::shared_ptr<const FileFooter> footer) {
  if (footer == nullptr) {
    ASSIGN_OR_RETURN(FileFooter parsed, ReadFooter(file.get()));
    footer = std::make_shared<const FileFooter>(std::move(parsed));
  }
  auto reader = std::unique_ptr<NativeLakeFileReader>(
      new NativeLakeFileReader(std::move(file), std::move(footer), options));
  reader->stats_.row_groups_total =
      static_cast<int64_t>(reader->footer_->row_groups.size());
  return reader;
}

Result<TypePtr> NativeLakeFileReader::OutputColumnType(
    const ScanSpec& spec, const std::string& column) const {
  auto field = footer_->schema->FindField(column);
  if (!field.has_value()) {
    return Status::NotFound("no column '" + column + "' in file schema");
  }
  const TypePtr& full = footer_->schema->child(*field);
  if (!options_.nested_column_pruning || spec.required_leaves.empty()) {
    return full;
  }
  std::set<std::string> required(spec.required_leaves.begin(),
                                 spec.required_leaves.end());
  if (!AnyLeafUnder(required, column)) return full;
  if (full->kind() != TypeKind::kRow) return full;
  return PruneType(column, full, required);
}

Result<std::optional<Page>> NativeLakeFileReader::NextBatch(const ScanSpec& spec) {
  while (next_group_ < footer_->row_groups.size()) {
    const RowGroupMeta& group = footer_->row_groups[next_group_];
    ++next_group_;

    // ---- Resolve which leaves to read. -------------------------------------
    // chunk lookup by leaf path
    std::map<std::string, const ColumnChunkMeta*> chunk_by_path;
    for (const ColumnChunkMeta& chunk : group.columns) {
      chunk_by_path[chunk.leaf_path] = &chunk;
    }
    ASSIGN_OR_RETURN(std::vector<Leaf> all_leaves,
                     EnumerateLeaves(*footer_->schema));
    std::map<std::string, const Leaf*> leaf_by_path;
    for (const Leaf& leaf : all_leaves) leaf_by_path[leaf.path] = &leaf;

    // Projected leaves per output column (file order within each column).
    std::set<std::string> required(spec.required_leaves.begin(),
                                   spec.required_leaves.end());
    bool prune = options_.nested_column_pruning && !required.empty();
    std::vector<TypePtr> column_types;
    std::vector<std::vector<std::string>> column_leaf_paths;
    for (const std::string& column : spec.columns) {
      auto field = footer_->schema->FindField(column);
      if (!field.has_value()) {
        return Status::NotFound("no column '" + column + "' in file schema");
      }
      TypePtr out_type = footer_->schema->child(*field);
      if (prune && out_type->kind() == TypeKind::kRow &&
          AnyLeafUnder(required, column)) {
        ASSIGN_OR_RETURN(out_type, PruneType(column, out_type, required));
      }
      ASSIGN_OR_RETURN(std::vector<Leaf> leaves,
                       EnumerateFieldLeaves(column, out_type));
      std::vector<std::string> paths;
      for (const Leaf& leaf : leaves) paths.push_back(leaf.path);
      column_types.push_back(std::move(out_type));
      column_leaf_paths.push_back(std::move(paths));
    }

    // ---- Predicate pushdown: min/max stats. --------------------------------
    bool skipped = false;
    if (options_.predicate_pushdown) {
      for (const LeafPredicate& pred : spec.predicates) {
        auto chunk = chunk_by_path.find(pred.leaf_path);
        if (chunk == chunk_by_path.end()) {
          return Status::InvalidArgument("predicate on unknown leaf " +
                                         pred.leaf_path);
        }
        if (!StatsMayMatch(*chunk->second, pred)) {
          ++stats_.row_groups_skipped_stats;
          skipped = true;
          break;
        }
      }
    }
    if (skipped) continue;

    // ---- Dictionary pushdown. -----------------------------------------------
    if (options_.dictionary_pushdown) {
      for (const LeafPredicate& pred : spec.predicates) {
        const ColumnChunkMeta& chunk = *chunk_by_path.at(pred.leaf_path);
        if (chunk.encoding != PageEncoding::kDictionary) continue;
        auto leaf_it = leaf_by_path.find(pred.leaf_path);
        if (leaf_it == leaf_by_path.end()) {
          return Status::InvalidArgument("predicate on unknown leaf " +
                                         pred.leaf_path);
        }
        ASSIGN_OR_RETURN(ChunkPages dict,
                         ReadDictionaryOnly(file_.get(), *leaf_it->second, chunk,
                                            footer_->compression, &stats_));
        if (!DictionaryMayMatch(dict, *leaf_it->second, pred)) {
          ++stats_.row_groups_skipped_dictionary;
          skipped = true;
          break;
        }
      }
    }
    if (skipped) continue;

    ++stats_.row_groups_scanned;

    // ---- Decode predicate leaves and filter rows. ---------------------------
    std::map<std::string, DecodedLeaf> decoded;
    std::vector<uint8_t> mask(group.num_rows, 1);
    for (const LeafPredicate& pred : spec.predicates) {
      auto leaf_it = leaf_by_path.find(pred.leaf_path);
      if (leaf_it == leaf_by_path.end() || leaf_it->second->max_rep != 0) {
        return Status::InvalidArgument("predicate leaf must be non-repeated: " +
                                       pred.leaf_path);
      }
      if (decoded.count(pred.leaf_path) == 0) {
        const ColumnChunkMeta& chunk = *chunk_by_path.at(pred.leaf_path);
        ASSIGN_OR_RETURN(ChunkPages pages,
                         ReadChunk(file_.get(), *leaf_it->second, chunk,
                                   footer_->compression, &stats_));
        ASSIGN_OR_RETURN(DecodedLeaf leaf,
                         DecodeLeafChunk(*leaf_it->second, pages,
                                         options_.vectorized, nullptr, &stats_));
        decoded.emplace(pred.leaf_path, std::move(leaf));
      }
      ApplyPredicate(decoded.at(pred.leaf_path), pred, &mask);
    }
    std::vector<int32_t> selected;
    bool all_selected = spec.predicates.empty();
    if (all_selected) {
      selected.resize(group.num_rows);
      for (size_t i = 0; i < group.num_rows; ++i) {
        selected[i] = static_cast<int32_t>(i);
      }
    } else {
      for (size_t i = 0; i < group.num_rows; ++i) {
        if (mask[i] != 0) selected.push_back(static_cast<int32_t>(i));
      }
    }
    if (selected.empty()) continue;

    bool lazy = options_.lazy_reads && !all_selected;

    // ---- Decode projected leaves. -------------------------------------------
    // With lazy reads: decode only the selected rows of each remaining leaf.
    // Note: selected row indices equal entry indices only for maxrep==0
    // leaves; repeated leaves expand to entry ranges via their rep levels.
    auto decode_projected = [&](const std::string& path) -> Status {
      if (decoded.count(path) > 0) return Status::OK();
      auto leaf_it = leaf_by_path.find(path);
      auto chunk_it = chunk_by_path.find(path);
      if (leaf_it == leaf_by_path.end() || chunk_it == chunk_by_path.end()) {
        return Status::NotFound("leaf not present in file: " + path);
      }
      const Leaf& leaf = *leaf_it->second;
      ASSIGN_OR_RETURN(ChunkPages pages,
                       ReadChunk(file_.get(), leaf, *chunk_it->second,
                                 footer_->compression, &stats_));
      const std::vector<int32_t>* selection = nullptr;
      std::vector<int32_t> entry_selection;
      if (lazy) {
        if (leaf.max_rep == 0) {
          selection = &selected;
        } else {
          // Map selected rows to entry ranges via rep levels.
          ByteReader rep_reader(pages.body.data(), pages.header.rep_bytes);
          std::vector<uint8_t> rep;
          RETURN_IF_ERROR(DecodeLevels(&rep_reader, pages.header.num_entries,
                                       options_.vectorized, &rep));
          std::vector<int32_t> starts;
          for (size_t e = 0; e < rep.size(); ++e) {
            if (rep[e] == 0) starts.push_back(static_cast<int32_t>(e));
          }
          for (int32_t row : selected) {
            int32_t begin = starts[row];
            int32_t end = row + 1 < static_cast<int32_t>(starts.size())
                              ? starts[row + 1]
                              : static_cast<int32_t>(rep.size());
            for (int32_t e = begin; e < end; ++e) entry_selection.push_back(e);
          }
          selection = &entry_selection;
        }
      }
      ASSIGN_OR_RETURN(DecodedLeaf decoded_leaf,
                       DecodeLeafChunk(leaf, pages, options_.vectorized,
                                       selection, &stats_));
      decoded.emplace(path, std::move(decoded_leaf));
      return Status::OK();
    };

    for (const auto& paths : column_leaf_paths) {
      for (const std::string& path : paths) {
        RETURN_IF_ERROR(decode_projected(path));
      }
    }

    // Predicate leaves were decoded in full; subset them if assembling lazily.
    if (lazy) {
      for (auto& [path, leaf] : decoded) {
        if (leaf.def.size() == group.num_rows && leaf.leaf.max_rep == 0 &&
            leaf.def.size() != selected.size()) {
          // Rebuild the subset in place.
          DecodedLeaf subset;
          subset.leaf = leaf.leaf;
          size_t value_cursor = 0;
          size_t sel_cursor = 0;
          for (size_t e = 0; e < leaf.def.size(); ++e) {
            bool has_value = leaf.def[e] == leaf.leaf.max_def;
            bool is_selected =
                sel_cursor < selected.size() &&
                selected[sel_cursor] == static_cast<int32_t>(e);
            if (is_selected) {
              ++sel_cursor;
              subset.def.push_back(leaf.def[e]);
              if (has_value) {
                switch (leaf.leaf.type->kind()) {
                  case TypeKind::kVarchar:
                    subset.strings.push_back(leaf.strings[value_cursor]);
                    break;
                  case TypeKind::kDouble:
                    subset.doubles.push_back(leaf.doubles[value_cursor]);
                    break;
                  case TypeKind::kBoolean:
                    subset.bools.push_back(leaf.bools[value_cursor]);
                    break;
                  default:
                    subset.ints.push_back(leaf.ints[value_cursor]);
                    break;
                }
              }
            }
            if (has_value) ++value_cursor;
          }
          leaf = std::move(subset);
        }
      }
    }

    // ---- Assemble output columns. -------------------------------------------
    size_t out_rows = lazy ? selected.size() : group.num_rows;
    std::vector<VectorPtr> columns;
    for (size_t c = 0; c < spec.columns.size(); ++c) {
      std::vector<const DecodedLeaf*> leaves;
      for (const std::string& path : column_leaf_paths[c]) {
        leaves.push_back(&decoded.at(path));
      }
      ASSIGN_OR_RETURN(VectorPtr column,
                       AssembleColumn(column_types[c], leaves, out_rows));
      columns.push_back(std::move(column));
    }
    Page page(std::move(columns), out_rows);
    if (!lazy && !all_selected) {
      page = page.SliceRows(selected);
    }
    stats_.rows_output += static_cast<int64_t>(page.num_rows());
    return std::optional<Page>(std::move(page));
  }
  return std::optional<Page>();
}

// ===========================================================================
// LegacyLakeFileReader
// ===========================================================================

namespace {

// Row-at-a-time record assembler: per-leaf entry/value cursors advanced one
// record at a time — "reads all Parquet data row by row using the open
// source Parquet library".
class RecordAssembler {
 public:
  explicit RecordAssembler(std::vector<DecodedLeaf> decoded)
      : decoded_(std::move(decoded)),
        entry_cursor_(decoded_.size(), 0),
        value_cursor_(decoded_.size(), 0) {}

  Result<Value> NextRecordColumn(const TypePtr& type, size_t* leaf_cursor) {
    return AssembleValue(type, 0, leaf_cursor, /*first_entry=*/true);
  }

 private:
  // Peeks current def of a leaf.
  uint8_t CurrentDef(size_t leaf) const {
    return decoded_[leaf].def[entry_cursor_[leaf]];
  }

  // Consumes one entry from every leaf in [first, last).
  Result<Value> TakeScalar(size_t leaf, int base_def) {
    const DecodedLeaf& d = decoded_[leaf];
    uint8_t def = d.def[entry_cursor_[leaf]];
    ++entry_cursor_[leaf];
    if (def < d.leaf.max_def) return Value::Null();
    size_t v = value_cursor_[leaf]++;
    (void)base_def;
    switch (d.leaf.type->kind()) {
      case TypeKind::kVarchar:
        return Value::String(d.strings[v]);
      case TypeKind::kDouble:
        return Value::Double(d.doubles[v]);
      case TypeKind::kBoolean:
        return Value::Bool(d.bools[v] != 0);
      default:
        return Value::Int(d.ints[v]);
    }
  }

  // Consumes one entry per leaf of the subtree rooted at `type`, building a
  // Value (or NULL). `first_entry` true means rep has already been aligned.
  Result<Value> AssembleValue(const TypePtr& type, int base_def,
                              size_t* leaf_cursor, bool first_entry) {
    switch (type->kind()) {
      case TypeKind::kRow: {
        size_t probe = *leaf_cursor;
        bool is_null = CurrentDef(probe) <= base_def;
        Value::RowData fields;
        for (size_t f = 0; f < type->NumChildren(); ++f) {
          ASSIGN_OR_RETURN(Value v, AssembleValue(type->child(f), base_def + 1,
                                                  leaf_cursor, first_entry));
          fields.push_back(std::move(v));
        }
        if (is_null) return Value::Null();
        return Value::Row(std::move(fields));
      }
      case TypeKind::kArray: {
        size_t probe = *leaf_cursor;
        uint8_t d0 = CurrentDef(probe);
        if (d0 <= base_def) {
          ASSIGN_OR_RETURN(Value ignored,
                           AssembleValue(type->element(), base_def + 2,
                                         leaf_cursor, first_entry));
          (void)ignored;
          return Value::Null();
        }
        if (d0 == base_def + 1) {
          ASSIGN_OR_RETURN(Value ignored,
                           AssembleValue(type->element(), base_def + 2,
                                         leaf_cursor, first_entry));
          (void)ignored;
          return Value::Array({});
        }
        Value::RowData elements;
        size_t saved = *leaf_cursor;
        while (true) {
          *leaf_cursor = saved;
          ASSIGN_OR_RETURN(Value elem, AssembleValue(type->element(),
                                                     base_def + 2, leaf_cursor,
                                                     false));
          elements.push_back(std::move(elem));
          // Continue while the next entry of the probe leaf repeats (rep==1).
          const DecodedLeaf& pd = decoded_[probe];
          if (entry_cursor_[probe] >= pd.def.size() ||
              pd.rep[entry_cursor_[probe]] == 0) {
            break;
          }
        }
        return Value::Array(std::move(elements));
      }
      case TypeKind::kMap: {
        size_t probe = *leaf_cursor;
        uint8_t d0 = CurrentDef(probe);
        if (d0 <= base_def + 1) {
          ASSIGN_OR_RETURN(Value k, AssembleValue(type->map_key(), base_def + 2,
                                                  leaf_cursor, first_entry));
          ASSIGN_OR_RETURN(Value v, AssembleValue(type->map_value(),
                                                  base_def + 2, leaf_cursor,
                                                  first_entry));
          (void)k;
          (void)v;
          return d0 <= base_def ? Value::Null() : Value::Map({});
        }
        Value::MapData entries;
        size_t saved = *leaf_cursor;
        while (true) {
          *leaf_cursor = saved;
          ASSIGN_OR_RETURN(Value k, AssembleValue(type->map_key(), base_def + 2,
                                                  leaf_cursor, false));
          ASSIGN_OR_RETURN(Value v, AssembleValue(type->map_value(),
                                                  base_def + 2, leaf_cursor,
                                                  false));
          entries.emplace_back(std::move(k), std::move(v));
          const DecodedLeaf& pd = decoded_[probe];
          if (entry_cursor_[probe] >= pd.def.size() ||
              pd.rep[entry_cursor_[probe]] == 0) {
            break;
          }
        }
        return Value::Map(std::move(entries));
      }
      default: {
        size_t leaf = (*leaf_cursor)++;
        return TakeScalar(leaf, base_def);
      }
    }
  }

  std::vector<DecodedLeaf> decoded_;
  std::vector<size_t> entry_cursor_;
  std::vector<size_t> value_cursor_;
};

}  // namespace

Result<std::unique_ptr<LegacyLakeFileReader>> LegacyLakeFileReader::Open(
    std::shared_ptr<RandomAccessFile> file,
    std::shared_ptr<const FileFooter> footer) {
  if (footer == nullptr) {
    ASSIGN_OR_RETURN(FileFooter parsed, ReadFooter(file.get()));
    footer = std::make_shared<const FileFooter>(std::move(parsed));
  }
  auto reader = std::unique_ptr<LegacyLakeFileReader>(
      new LegacyLakeFileReader(std::move(file), std::move(footer)));
  reader->stats_.row_groups_total =
      static_cast<int64_t>(reader->footer_->row_groups.size());
  return reader;
}

Result<std::optional<Page>> LegacyLakeFileReader::NextBatch(
    const std::vector<std::string>& columns) {
  if (next_group_ >= footer_->row_groups.size()) return std::optional<Page>();
  const RowGroupMeta& group = footer_->row_groups[next_group_];
  ++next_group_;
  ++stats_.row_groups_scanned;

  std::map<std::string, const ColumnChunkMeta*> chunk_by_path;
  for (const ColumnChunkMeta& chunk : group.columns) {
    chunk_by_path[chunk.leaf_path] = &chunk;
  }

  // Step 1: read ALL leaves of every requested column from disk (no nested
  // pruning, no skipping), decoding value-at-a-time (non-vectorized).
  std::vector<TypePtr> column_types;
  std::vector<DecodedLeaf> flat_decoded;
  for (const std::string& column : columns) {
    auto field = footer_->schema->FindField(column);
    if (!field.has_value()) {
      return Status::NotFound("no column '" + column + "' in file schema");
    }
    TypePtr type = footer_->schema->child(*field);
    ASSIGN_OR_RETURN(std::vector<Leaf> leaves, EnumerateFieldLeaves(column, type));
    for (const Leaf& leaf : leaves) {
      auto chunk_it = chunk_by_path.find(leaf.path);
      if (chunk_it == chunk_by_path.end()) {
        return Status::Corruption("missing chunk for leaf " + leaf.path);
      }
      ASSIGN_OR_RETURN(ChunkPages pages,
                       ReadChunk(file_.get(), leaf, *chunk_it->second,
                                 footer_->compression, &stats_));
      ASSIGN_OR_RETURN(DecodedLeaf decoded,
                       DecodeLeafChunk(leaf, pages, /*vectorized=*/false,
                                       nullptr, &stats_));
      flat_decoded.push_back(std::move(decoded));
    }
    column_types.push_back(std::move(type));
  }

  // Step 2: transform row-based records into columnar blocks.
  RecordAssembler assembler(std::move(flat_decoded));
  std::vector<VectorBuilder> builders;
  builders.reserve(column_types.size());
  for (const TypePtr& type : column_types) builders.emplace_back(type);
  for (uint64_t r = 0; r < group.num_rows; ++r) {
    size_t leaf_cursor = 0;
    for (size_t c = 0; c < column_types.size(); ++c) {
      ASSIGN_OR_RETURN(Value v,
                       assembler.NextRecordColumn(column_types[c], &leaf_cursor));
      RETURN_IF_ERROR(builders[c].Append(v));
    }
  }
  std::vector<VectorPtr> vectors;
  vectors.reserve(builders.size());
  for (VectorBuilder& b : builders) vectors.push_back(b.Build());
  stats_.rows_output += static_cast<int64_t>(group.num_rows);
  return std::optional<Page>(Page(std::move(vectors), group.num_rows));
}

}  // namespace lakefile
}  // namespace presto
