#include "presto/lakefile/reader.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "presto/common/fault_injection.h"
#include "presto/common/trace.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace lakefile {

namespace {

// ===========================================================================
// Low-level decoding
// ===========================================================================

// Vectorized level decode: whole RLE runs at a time (memset-style fills).
Status DecodeLevelsVectorized(ByteReader* reader, size_t count,
                              std::vector<uint8_t>* out) {
  out->resize(count);
  size_t filled = 0;
  while (filled < count) {
    ASSIGN_OR_RETURN(uint64_t run, reader->ReadVarint());
    ASSIGN_OR_RETURN(uint8_t value, reader->ReadU8());
    if (filled + run > count) return Status::Corruption("level run overflow");
    std::memset(out->data() + filled, value, run);
    filled += run;
  }
  return Status::OK();
}

// Per-entry level decode: re-enters the RLE state machine for every single
// entry (the per-triplet overhead the vectorized reader removes).
Status DecodeLevelsScalar(ByteReader* reader, size_t count,
                          std::vector<uint8_t>* out) {
  out->resize(count);
  uint64_t run_remaining = 0;
  uint8_t run_value = 0;
  for (size_t i = 0; i < count; ++i) {
    if (run_remaining == 0) {
      ASSIGN_OR_RETURN(run_remaining, reader->ReadVarint());
      ASSIGN_OR_RETURN(run_value, reader->ReadU8());
      if (run_remaining == 0) return Status::Corruption("empty level run");
    }
    (*out)[i] = run_value;
    --run_remaining;
  }
  if (run_remaining != 0) return Status::Corruption("level run underflow");
  return Status::OK();
}

Status DecodeLevels(ByteReader* reader, size_t count, bool vectorized,
                    std::vector<uint8_t>* out) {
  return vectorized ? DecodeLevelsVectorized(reader, count, out)
                    : DecodeLevelsScalar(reader, count, out);
}

// Decoded dictionary page of one column chunk (pages share it).
struct Dictionary {
  bool present = false;
  std::vector<int64_t> ints;
  std::vector<std::string> strings;

  size_t cardinality() const {
    return std::max(ints.size(), strings.size());
  }
};

// One raw data page: header plus decompressed body (rep | def | values).
struct RawPage {
  PageHeader header;
  std::vector<uint8_t> body;
};

Result<std::vector<uint8_t>> ReadRegion(RandomAccessFile* file, uint64_t offset,
                                        size_t n, ReaderStats* stats) {
  std::vector<uint8_t> bytes(n);
  // Scan I/O is blocked time: attribute it like exchange/spill waits so
  // EXPLAIN ANALYZE and traces show where a scan-bound query sits.
  BlockedTimer timer(BlockedKind::kScanIo);
  size_t done = 0;
  while (done < n) {
    ASSIGN_OR_RETURN(size_t got,
                     file->Read(offset + done, n - done, bytes.data() + done));
    if (got == 0) return Status::Corruption("unexpected EOF in lakefile");
    done += got;
  }
  stats->bytes_read += static_cast<int64_t>(n);
  return bytes;
}

Result<std::pair<PageHeader, std::vector<uint8_t>>> ParsePage(
    ByteReader* reader, CompressionKind compression) {
  ASSIGN_OR_RETURN(PageHeader header, DeserializePageHeader(reader));
  if (header.compressed_bytes > reader->remaining()) {
    return Status::Corruption("page body exceeds chunk bounds");
  }
  ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                   Decompress(compression, reader->current(),
                              header.compressed_bytes));
  RETURN_IF_ERROR(reader->Skip(header.compressed_bytes));
  if (body.size() !=
      static_cast<size_t>(header.rep_bytes) + header.def_bytes + header.value_bytes) {
    return Status::Corruption("page body size mismatch");
  }
  return std::make_pair(header, std::move(body));
}

// Reads the dictionary page of a chunk when present (dictionary pushdown
// probe, code-bitmap filtering, and value materialization all share it).
Result<Dictionary> MaybeReadDictionary(RandomAccessFile* file, const Leaf& leaf,
                                       const ColumnChunkMeta& meta,
                                       CompressionKind compression,
                                       ReaderStats* stats) {
  Dictionary dict;
  if (meta.encoding != PageEncoding::kDictionary) return dict;
  ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                   ReadRegion(file, meta.dictionary_offset,
                              meta.dictionary_bytes, stats));
  ByteReader reader(raw.data(), raw.size());
  ASSIGN_OR_RETURN(auto page, ParsePage(&reader, compression));
  dict.present = true;
  ByteReader values(page.second.data(), page.second.size());
  if (leaf.type->kind() == TypeKind::kVarchar) {
    dict.strings.reserve(page.first.num_entries);
    for (uint32_t i = 0; i < page.first.num_entries; ++i) {
      ASSIGN_OR_RETURN(std::string s, values.ReadString());
      dict.strings.push_back(std::move(s));
    }
  } else {
    dict.ints.resize(page.first.num_entries);
    RETURN_IF_ERROR(values.ReadRaw(dict.ints.data(),
                                   page.first.num_entries * sizeof(int64_t)));
  }
  return dict;
}

// ===========================================================================
// Stage 1 — PageReader: iterates one chunk's data pages, range-reading and
// decompressing only the pages the caller asks for. v1 chunks (no footer
// page list) synthesize a single page covering the whole chunk, so the
// page-granular pipeline handles both format versions uniformly.
// ===========================================================================

class PageReader {
 public:
  PageReader(RandomAccessFile* file, const ColumnChunkMeta& meta,
             uint64_t group_rows, CompressionKind compression,
             ReaderStats* stats)
      : file_(file), meta_(meta), compression_(compression), stats_(stats) {
    if (!meta.pages.empty()) {
      pages_ = meta.pages;
    } else {
      DataPageMeta page;
      page.offset = meta.dictionary_bytes;  // data follows the dict page
      page.total_bytes = meta.total_bytes - meta.dictionary_bytes;
      page.num_entries = meta.num_entries;
      page.num_rows = group_rows;
      page.first_row = 0;
      page.null_count = meta.null_count;
      page.has_stats = meta.has_stats;
      page.min = meta.min;
      page.max = meta.max;
      pages_.push_back(std::move(page));
    }
  }

  size_t num_pages() const { return pages_.size(); }
  const DataPageMeta& page_meta(size_t i) const { return pages_[i]; }

  /// Reads and decompresses page `i`. Fault point `lakefile.page.read`
  /// mirrors connector.split.read: an armed injector turns page reads into
  /// classified I/O errors so chaos tests can prove a failed page never
  /// produces wrong results.
  Result<RawPage> Read(size_t i) {
    RETURN_IF_ERROR(FaultInjector::Global().Hit("lakefile.page.read"));
    const DataPageMeta& pm = pages_[i];
    ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                     ReadRegion(file_, meta_.offset + pm.offset, pm.total_bytes,
                                stats_));
    ByteReader reader(raw.data(), raw.size());
    ASSIGN_OR_RETURN(auto parsed, ParsePage(&reader, compression_));
    if (parsed.first.num_entries != pm.num_entries) {
      return Status::Corruption("page entry count mismatch in " +
                                meta_.leaf_path);
    }
    ++stats_->pages_read;
    return RawPage{parsed.first, std::move(parsed.second)};
  }

 private:
  RandomAccessFile* file_;
  const ColumnChunkMeta& meta_;
  CompressionKind compression_;
  ReaderStats* stats_;
  std::vector<DataPageMeta> pages_;
};

// ===========================================================================
// Stage 2 — LevelDecoder: rep/def levels of one page.
// ===========================================================================

struct PageLevels {
  std::vector<uint8_t> rep;  // empty for unrepeated leaves
  std::vector<uint8_t> def;
};

Result<PageLevels> DecodePageLevels(const Leaf& leaf, const RawPage& page,
                                    bool vectorized) {
  PageLevels levels;
  const PageHeader& header = page.header;
  ByteReader rep_reader(page.body.data(), header.rep_bytes);
  ByteReader def_reader(page.body.data() + header.rep_bytes, header.def_bytes);
  if (leaf.max_rep > 0) {
    RETURN_IF_ERROR(
        DecodeLevels(&rep_reader, header.num_entries, vectorized, &levels.rep));
  }
  RETURN_IF_ERROR(
      DecodeLevels(&def_reader, header.num_entries, vectorized, &levels.def));
  return levels;
}

// ===========================================================================
// Stage 3 — TypedDecoder: value decode of one page, appended into a
// DecodedLeaf. `selected_entries` (page-relative, sorted) materializes only
// those entries (late materialization); skipped values are never copied.
// ===========================================================================

// Decodes a dictionary-coded page's varint codes (one per valued entry)
// without materializing any value — predicate evaluation on codes.
Result<std::vector<uint32_t>> DecodePageCodes(const RawPage& page,
                                              const PageLevels& levels,
                                              const Leaf& leaf) {
  const PageHeader& header = page.header;
  ByteReader value_reader(
      page.body.data() + header.rep_bytes + header.def_bytes,
      header.value_bytes);
  std::vector<uint32_t> codes;
  for (size_t e = 0; e < levels.def.size(); ++e) {
    if (levels.def[e] != leaf.max_def) continue;
    ASSIGN_OR_RETURN(uint64_t code, value_reader.ReadVarint());
    codes.push_back(static_cast<uint32_t>(code));
  }
  return codes;
}

Status DecodePageValues(const Leaf& leaf, const Dictionary& dict,
                        const RawPage& page, const PageLevels& levels,
                        bool vectorized,
                        const std::vector<int32_t>* selected_entries,
                        DecodedLeaf* out, ReaderStats* stats) {
  const PageHeader& header = page.header;
  const size_t count = header.num_entries;
  ByteReader value_reader(
      page.body.data() + header.rep_bytes + header.def_bytes,
      header.value_bytes);

  // Value presence per entry.
  auto has_value = [&](size_t e) { return levels.def[e] == leaf.max_def; };

  // Entry subset view (page-relative indices).
  const bool subset = selected_entries != nullptr;

  auto for_each_entry = [&](auto&& on_entry) -> Status {
    size_t sel_cursor = 0;
    for (size_t e = 0; e < count; ++e) {
      bool selected = true;
      if (subset) {
        selected = sel_cursor < selected_entries->size() &&
                   (*selected_entries)[sel_cursor] == static_cast<int32_t>(e);
        if (selected) ++sel_cursor;
      }
      RETURN_IF_ERROR(on_entry(e, selected));
    }
    return Status::OK();
  };

  auto append_levels = [&](size_t e) {
    out->def.push_back(levels.def[e]);
    if (leaf.max_rep > 0) out->rep.push_back(levels.rep[e]);
  };

  // -- Dictionary-encoded values ------------------------------------------
  if (dict.present) {
    RETURN_IF_ERROR(for_each_entry([&](size_t e, bool selected) -> Status {
      uint64_t index = 0;
      if (has_value(e)) {
        ASSIGN_OR_RETURN(index, value_reader.ReadVarint());
      }
      if (!selected) return Status::OK();
      append_levels(e);
      if (has_value(e)) {
        if (leaf.type->kind() == TypeKind::kVarchar) {
          if (index >= dict.strings.size()) {
            return Status::Corruption("dictionary index out of range");
          }
          out->strings.push_back(dict.strings[index]);
        } else {
          if (index >= dict.ints.size()) {
            return Status::Corruption("dictionary index out of range");
          }
          out->ints.push_back(dict.ints[index]);
        }
        ++stats->values_decoded;
      }
      return Status::OK();
    }));
    return Status::OK();
  }

  // -- PLAIN values ----------------------------------------------------------
  switch (leaf.type->kind()) {
    case TypeKind::kVarchar: {
      return for_each_entry([&](size_t e, bool selected) -> Status {
        if (!has_value(e)) {
          if (selected) append_levels(e);
          return Status::OK();
        }
        ASSIGN_OR_RETURN(uint64_t len, value_reader.ReadVarint());
        if (selected) {
          append_levels(e);
          std::string s(len, '\0');
          RETURN_IF_ERROR(value_reader.ReadRaw(s.data(), len));
          out->strings.push_back(std::move(s));
          ++stats->values_decoded;
        } else {
          RETURN_IF_ERROR(value_reader.Skip(len));  // lazy: never copied
        }
        return Status::OK();
      });
    }
    case TypeKind::kBoolean: {
      return for_each_entry([&](size_t e, bool selected) -> Status {
        if (!has_value(e)) {
          if (selected) append_levels(e);
          return Status::OK();
        }
        ASSIGN_OR_RETURN(uint8_t b, value_reader.ReadU8());
        if (selected) {
          append_levels(e);
          out->bools.push_back(b);
          ++stats->values_decoded;
        }
        return Status::OK();
      });
    }
    case TypeKind::kDouble:
    default: {
      const bool is_double = leaf.type->kind() == TypeKind::kDouble;
      size_t width = 8;
      size_t total_values = header.value_bytes / width;
      if (!subset && vectorized && count == total_values) {
        // Fast path: dense column, bulk copy straight out of the page.
        out->def.insert(out->def.end(), levels.def.begin(), levels.def.end());
        out->rep.insert(out->rep.end(), levels.rep.begin(), levels.rep.end());
        if (is_double) {
          size_t base = out->doubles.size();
          out->doubles.resize(base + total_values);
          RETURN_IF_ERROR(value_reader.ReadRaw(out->doubles.data() + base,
                                               total_values * width));
        } else {
          size_t base = out->ints.size();
          out->ints.resize(base + total_values);
          RETURN_IF_ERROR(value_reader.ReadRaw(out->ints.data() + base,
                                               total_values * width));
        }
        stats->values_decoded += static_cast<int64_t>(total_values);
        return Status::OK();
      }
      // General path: fixed-width values allow O(1) skips.
      size_t value_index = 0;
      return for_each_entry([&](size_t e, bool selected) -> Status {
        if (!has_value(e)) {
          if (selected) append_levels(e);
          return Status::OK();
        }
        size_t my_index = value_index++;
        if (!selected) return Status::OK();
        append_levels(e);
        RETURN_IF_ERROR(value_reader.Seek(my_index * width));
        if (is_double) {
          ASSIGN_OR_RETURN(double v, value_reader.ReadDouble());
          out->doubles.push_back(v);
        } else {
          ASSIGN_OR_RETURN(int64_t v, value_reader.ReadI64());
          out->ints.push_back(v);
        }
        ++stats->values_decoded;
        return Status::OK();
      });
    }
  }
}

// ===========================================================================
// Predicates
// ===========================================================================

bool CompareMatches(LeafPredicate::Op op, int cmp) {
  switch (op) {
    case LeafPredicate::Op::kEq:
      return cmp == 0;
    case LeafPredicate::Op::kNe:
      return cmp != 0;
    case LeafPredicate::Op::kLt:
      return cmp < 0;
    case LeafPredicate::Op::kLe:
      return cmp <= 0;
    case LeafPredicate::Op::kGt:
      return cmp > 0;
    case LeafPredicate::Op::kGe:
      return cmp >= 0;
    case LeafPredicate::Op::kIn:
      return cmp == 0;
  }
  return false;
}

/// Can any value in [min, max] satisfy the predicate? Shared by row-group
/// (chunk stats) and page (per-page stats) skipping.
bool RangeMayMatch(bool has_stats, const Value& min, const Value& max,
                   const LeafPredicate& pred) {
  if (!has_stats) return true;
  switch (pred.op) {
    case LeafPredicate::Op::kEq:
      return pred.values[0].Compare(min) >= 0 &&
             pred.values[0].Compare(max) <= 0;
    case LeafPredicate::Op::kIn: {
      for (const Value& v : pred.values) {
        if (v.Compare(min) >= 0 && v.Compare(max) <= 0) return true;
      }
      return false;
    }
    case LeafPredicate::Op::kNe:
      // Only skippable when every value equals the operand.
      return !(min.Compare(max) == 0 && min.Compare(pred.values[0]) == 0);
    case LeafPredicate::Op::kLt:
      return min.Compare(pred.values[0]) < 0;
    case LeafPredicate::Op::kLe:
      return min.Compare(pred.values[0]) <= 0;
    case LeafPredicate::Op::kGt:
      return max.Compare(pred.values[0]) > 0;
    case LeafPredicate::Op::kGe:
      return max.Compare(pred.values[0]) >= 0;
  }
  return true;
}

bool StatsMayMatch(const ColumnChunkMeta& meta, const LeafPredicate& pred) {
  return RangeMayMatch(meta.has_stats, meta.min, meta.max, pred);
}

bool PageMayMatch(const DataPageMeta& page, const LeafPredicate& pred) {
  // An all-NULL page can never satisfy a conjunct (NULL never matches),
  // so it is skippable even without min/max stats.
  if (page.null_count == static_cast<int64_t>(page.num_entries)) return false;
  return RangeMayMatch(page.has_stats, page.min, page.max, pred);
}

/// Does any dictionary value satisfy an equality/IN predicate?
bool DictionaryMayMatch(const Dictionary& dict, const Leaf& leaf,
                        const LeafPredicate& pred) {
  if (pred.op != LeafPredicate::Op::kEq && pred.op != LeafPredicate::Op::kIn) {
    return true;
  }
  if (leaf.type->kind() == TypeKind::kVarchar) {
    for (const std::string& v : dict.strings) {
      for (const Value& operand : pred.values) {
        if (operand.is_string() && operand.string_value() == v) return true;
      }
    }
    return false;
  }
  for (int64_t v : dict.ints) {
    for (const Value& operand : pred.values) {
      if (operand.is_int() && operand.int_value() == v) return true;
    }
  }
  return false;
}

/// Evaluates one conjunct over a decoded (maxrep==0) leaf; clears non-matching
/// bits in `mask`.
void ApplyPredicate(const DecodedLeaf& leaf, const LeafPredicate& pred,
                    std::vector<uint8_t>* mask) {
  const int max_def = leaf.leaf.max_def;
  size_t value_cursor = 0;
  for (size_t e = 0; e < leaf.def.size(); ++e) {
    bool has_value = leaf.def[e] == max_def;
    if (!has_value) {
      (*mask)[e] = 0;  // NULL never matches
      continue;
    }
    size_t v = value_cursor++;
    if ((*mask)[e] == 0) continue;
    bool matches = false;
    switch (leaf.leaf.type->kind()) {
      case TypeKind::kVarchar: {
        const std::string& value = leaf.strings[v];
        for (const Value& operand : pred.values) {
          int cmp = value.compare(operand.string_value());
          if (CompareMatches(pred.op, cmp)) {
            matches = true;
            break;
          }
        }
        break;
      }
      case TypeKind::kDouble: {
        double value = leaf.doubles[v];
        for (const Value& operand : pred.values) {
          double o = operand.AsDouble();
          int cmp = value < o ? -1 : (value > o ? 1 : 0);
          if (CompareMatches(pred.op, cmp)) {
            matches = true;
            break;
          }
        }
        break;
      }
      case TypeKind::kBoolean: {
        bool value = leaf.bools[v] != 0;
        for (const Value& operand : pred.values) {
          int cmp = static_cast<int>(value) - static_cast<int>(operand.bool_value());
          if (CompareMatches(pred.op, cmp)) {
            matches = true;
            break;
          }
        }
        break;
      }
      default: {
        int64_t value = leaf.ints[v];
        for (const Value& operand : pred.values) {
          int64_t o = operand.is_int() ? operand.int_value()
                                       : static_cast<int64_t>(operand.AsDouble());
          int cmp = value < o ? -1 : (value > o ? 1 : 0);
          if (CompareMatches(pred.op, cmp)) {
            matches = true;
            break;
          }
        }
        break;
      }
    }
    if (!matches) (*mask)[e] = 0;
  }
  // A fully-consumed cursor is not required: trailing entries without values
  // were already masked out above.
}

/// Translates a predicate into a per-dictionary-code match bitmap: the
/// conjunct is evaluated once per distinct value instead of once per row, and
/// rows are then filtered by testing their codes — no value materialization.
/// Implemented by running ApplyPredicate over the dictionary itself (each
/// code is one "row" of a synthetic dense leaf).
std::vector<uint8_t> BuildCodeBitmap(const Leaf& leaf, const Dictionary& dict,
                                     const LeafPredicate& pred) {
  DecodedLeaf dl;
  dl.leaf = leaf;
  size_t cardinality = dict.cardinality();
  dl.def.assign(cardinality, static_cast<uint8_t>(leaf.max_def));
  if (leaf.type->kind() == TypeKind::kVarchar) {
    dl.strings = dict.strings;
  } else {
    dl.ints = dict.ints;
  }
  std::vector<uint8_t> bitmap(cardinality, 1);
  ApplyPredicate(dl, pred, &bitmap);
  return bitmap;
}

// ===========================================================================
// Pruned type construction
// ===========================================================================

bool AnyLeafUnder(const std::set<std::string>& required, const std::string& prefix) {
  auto it = required.lower_bound(prefix);
  if (it == required.end()) return false;
  return *it == prefix || it->rfind(prefix + ".", 0) == 0;
}

Result<TypePtr> PruneType(const std::string& prefix, const TypePtr& type,
                          const std::set<std::string>& required) {
  switch (type->kind()) {
    case TypeKind::kRow: {
      std::vector<std::string> names;
      std::vector<TypePtr> children;
      for (size_t i = 0; i < type->NumChildren(); ++i) {
        std::string child_prefix = prefix + "." + type->field_name(i);
        if (!AnyLeafUnder(required, child_prefix)) continue;
        ASSIGN_OR_RETURN(TypePtr child,
                         PruneType(child_prefix, type->child(i), required));
        names.push_back(type->field_name(i));
        children.push_back(std::move(child));
      }
      if (children.empty()) {
        return Status::InvalidArgument("no required leaves under " + prefix);
      }
      return Type::Row(std::move(names), std::move(children));
    }
    // Containers are kept whole once any leaf under them is required.
    case TypeKind::kArray:
    case TypeKind::kMap:
    default:
      return type;
  }
}

}  // namespace

Result<TypePtr> PruneColumnType(const std::string& column, const TypePtr& type,
                                const std::vector<std::string>& required_leaves) {
  if (required_leaves.empty() || type->kind() != TypeKind::kRow) return type;
  std::set<std::string> required(required_leaves.begin(), required_leaves.end());
  if (!AnyLeafUnder(required, column)) return type;
  return PruneType(column, type, required);
}

// ===========================================================================
// Footer reading
// ===========================================================================

Result<FileFooter> ReadFooter(RandomAccessFile* file) {
  ASSIGN_OR_RETURN(uint64_t size, file->Size());
  size_t trailer = sizeof(uint32_t) + kMagicLen;
  if (size < trailer + kMagicLen) {
    return Status::Corruption("file too small to be a lakefile");
  }
  uint8_t tail[sizeof(uint32_t) + kMagicLen];
  ASSIGN_OR_RETURN(size_t got, file->Read(size - trailer, trailer, tail));
  if (got != trailer) return Status::Corruption("short read of lakefile trailer");
  if (std::memcmp(tail + sizeof(uint32_t), kMagic, kMagicLen) != 0) {
    return Status::Corruption("bad lakefile magic");
  }
  uint32_t footer_len;
  std::memcpy(&footer_len, tail, sizeof(uint32_t));
  if (footer_len + trailer + kMagicLen > size) {
    return Status::Corruption("bad lakefile footer length");
  }
  std::vector<uint8_t> footer_bytes(footer_len);
  ASSIGN_OR_RETURN(size_t footer_got, file->Read(size - trailer - footer_len,
                                                 footer_len, footer_bytes.data()));
  if (footer_got != footer_len) return Status::Corruption("short footer read");
  return DeserializeFooter(footer_bytes.data(), footer_bytes.size());
}

// ===========================================================================
// NativeLakeFileReader
// ===========================================================================

Result<std::unique_ptr<NativeLakeFileReader>> NativeLakeFileReader::Open(
    std::shared_ptr<RandomAccessFile> file, ReaderOptions options,
    std::shared_ptr<const FileFooter> footer) {
  if (footer == nullptr) {
    ASSIGN_OR_RETURN(FileFooter parsed, ReadFooter(file.get()));
    footer = std::make_shared<const FileFooter>(std::move(parsed));
  }
  auto reader = std::unique_ptr<NativeLakeFileReader>(
      new NativeLakeFileReader(std::move(file), std::move(footer), options));
  reader->stats_.row_groups_total =
      static_cast<int64_t>(reader->footer_->row_groups.size());
  return reader;
}

Result<TypePtr> NativeLakeFileReader::OutputColumnType(
    const ScanSpec& spec, const std::string& column) const {
  auto field = footer_->schema->FindField(column);
  if (!field.has_value()) {
    return Status::NotFound("no column '" + column + "' in file schema");
  }
  const TypePtr& full = footer_->schema->child(*field);
  if (!options_.nested_column_pruning || spec.required_leaves.empty()) {
    return full;
  }
  std::set<std::string> required(spec.required_leaves.begin(),
                                 spec.required_leaves.end());
  if (!AnyLeafUnder(required, column)) return full;
  if (full->kind() != TypeKind::kRow) return full;
  return PruneType(column, full, required);
}

Result<std::optional<Page>> NativeLakeFileReader::NextBatch(const ScanSpec& spec) {
  while (next_group_ < footer_->row_groups.size()) {
    const RowGroupMeta& group = footer_->row_groups[next_group_];
    ++next_group_;

    // ---- Resolve which leaves to read. -------------------------------------
    // chunk lookup by leaf path
    std::map<std::string, const ColumnChunkMeta*> chunk_by_path;
    for (const ColumnChunkMeta& chunk : group.columns) {
      chunk_by_path[chunk.leaf_path] = &chunk;
    }
    ASSIGN_OR_RETURN(std::vector<Leaf> all_leaves,
                     EnumerateLeaves(*footer_->schema));
    std::map<std::string, const Leaf*> leaf_by_path;
    for (const Leaf& leaf : all_leaves) leaf_by_path[leaf.path] = &leaf;

    // Projected leaves per output column (file order within each column).
    std::set<std::string> required(spec.required_leaves.begin(),
                                   spec.required_leaves.end());
    bool prune = options_.nested_column_pruning && !required.empty();
    std::vector<TypePtr> column_types;
    std::vector<std::vector<std::string>> column_leaf_paths;
    for (const std::string& column : spec.columns) {
      auto field = footer_->schema->FindField(column);
      if (!field.has_value()) {
        return Status::NotFound("no column '" + column + "' in file schema");
      }
      TypePtr out_type = footer_->schema->child(*field);
      if (prune && out_type->kind() == TypeKind::kRow &&
          AnyLeafUnder(required, column)) {
        ASSIGN_OR_RETURN(out_type, PruneType(column, out_type, required));
      }
      ASSIGN_OR_RETURN(std::vector<Leaf> leaves,
                       EnumerateFieldLeaves(column, out_type));
      std::vector<std::string> paths;
      for (const Leaf& leaf : leaves) paths.push_back(leaf.path);
      column_types.push_back(std::move(out_type));
      column_leaf_paths.push_back(std::move(paths));
    }

    // ---- Predicate pushdown: min/max stats. --------------------------------
    bool skipped = false;
    if (options_.predicate_pushdown) {
      for (const LeafPredicate& pred : spec.predicates) {
        auto chunk = chunk_by_path.find(pred.column);
        if (chunk == chunk_by_path.end()) {
          return Status::InvalidArgument("predicate on unknown leaf " +
                                         pred.column);
        }
        if (!StatsMayMatch(*chunk->second, pred)) {
          ++stats_.row_groups_skipped_stats;
          skipped = true;
          break;
        }
      }
    }
    if (skipped) continue;

    // ---- Per-group column state: one PageReader and (optional) decoded
    // dictionary per leaf chunk touched by the filter or projection stage. ---
    std::map<std::string, std::unique_ptr<PageReader>> page_readers;
    std::map<std::string, Dictionary> dictionaries;
    auto reader_for = [&](const std::string& path) -> PageReader* {
      auto it = page_readers.find(path);
      if (it == page_readers.end()) {
        it = page_readers
                 .emplace(path, std::make_unique<PageReader>(
                                    file_.get(), *chunk_by_path.at(path),
                                    group.num_rows, footer_->compression,
                                    &stats_))
                 .first;
        stats_.pages_total += static_cast<int64_t>(it->second->num_pages());
      }
      return it->second.get();
    };
    auto dictionary_for =
        [&](const std::string& path) -> Result<const Dictionary*> {
      auto it = dictionaries.find(path);
      if (it == dictionaries.end()) {
        ASSIGN_OR_RETURN(
            Dictionary dict,
            MaybeReadDictionary(file_.get(), *leaf_by_path.at(path),
                                *chunk_by_path.at(path), footer_->compression,
                                &stats_));
        it = dictionaries.emplace(path, std::move(dict)).first;
      }
      return &it->second;
    };

    // ---- Dictionary pushdown. -----------------------------------------------
    if (options_.dictionary_pushdown) {
      for (const LeafPredicate& pred : spec.predicates) {
        const ColumnChunkMeta& chunk = *chunk_by_path.at(pred.column);
        if (chunk.encoding != PageEncoding::kDictionary) continue;
        auto leaf_it = leaf_by_path.find(pred.column);
        if (leaf_it == leaf_by_path.end()) {
          return Status::InvalidArgument("predicate on unknown leaf " +
                                         pred.column);
        }
        ASSIGN_OR_RETURN(const Dictionary* dict, dictionary_for(pred.column));
        if (!DictionaryMayMatch(*dict, *leaf_it->second, pred)) {
          ++stats_.row_groups_skipped_dictionary;
          skipped = true;
          break;
        }
      }
    }
    if (skipped) continue;

    ++stats_.row_groups_scanned;

    // ---- Stage 1: filter columns, page by page. -----------------------------
    // Pages whose per-page stats cannot match zero their row range without
    // being read; dictionary-coded pages are filtered on codes via a
    // per-conjunct code bitmap (no value materialization); plain pages
    // materialize page-locally and evaluate normally. The result is the
    // row-group selection vector driving late materialization below.
    std::vector<uint8_t> mask(group.num_rows, 1);
    std::vector<std::pair<std::string, std::vector<const LeafPredicate*>>>
        preds_by_path;
    for (const LeafPredicate& pred : spec.predicates) {
      auto leaf_it = leaf_by_path.find(pred.column);
      if (leaf_it == leaf_by_path.end() || leaf_it->second->max_rep != 0) {
        return Status::InvalidArgument("predicate leaf must be non-repeated: " +
                                       pred.column);
      }
      auto it = std::find_if(
          preds_by_path.begin(), preds_by_path.end(),
          [&](const auto& p) { return p.first == pred.column; });
      if (it == preds_by_path.end()) {
        preds_by_path.push_back({pred.column, {&pred}});
      } else {
        it->second.push_back(&pred);
      }
    }

    for (const auto& [path, preds] : preds_by_path) {
      const Leaf& leaf = *leaf_by_path.at(path);
      PageReader* pages = reader_for(path);
      ASSIGN_OR_RETURN(const Dictionary* dict, dictionary_for(path));
      std::vector<std::vector<uint8_t>> code_bitmaps;
      if (dict->present) {
        for (const LeafPredicate* pred : preds) {
          code_bitmaps.push_back(BuildCodeBitmap(leaf, *dict, *pred));
        }
      }
      for (size_t i = 0; i < pages->num_pages(); ++i) {
        const DataPageMeta& pm = pages->page_meta(i);
        const size_t row0 = pm.first_row;
        const size_t nrows = pm.num_rows;
        // An earlier filter column already killed every row in this page.
        bool any_alive = false;
        for (size_t r = 0; r < nrows && !any_alive; ++r) {
          any_alive = mask[row0 + r] != 0;
        }
        if (!any_alive) {
          ++stats_.pages_skipped_lazy;
          continue;
        }
        if (options_.page_skipping) {
          bool may_match = true;
          for (const LeafPredicate* pred : preds) {
            if (!PageMayMatch(pm, *pred)) {
              may_match = false;
              break;
            }
          }
          if (!may_match) {
            std::fill(mask.begin() + row0, mask.begin() + row0 + nrows, 0);
            ++stats_.pages_skipped_stats;
            continue;
          }
        }
        ASSIGN_OR_RETURN(RawPage raw, pages->Read(i));
        ASSIGN_OR_RETURN(PageLevels levels,
                         DecodePageLevels(leaf, raw, options_.vectorized));
        if (dict->present) {
          // Evaluate on dictionary codes: no value is materialized.
          ASSIGN_OR_RETURN(std::vector<uint32_t> codes,
                           DecodePageCodes(raw, levels, leaf));
          size_t value_cursor = 0;
          for (size_t r = 0; r < nrows; ++r) {
            bool has_value = levels.def[r] == leaf.max_def;
            uint32_t code = 0;
            if (has_value) {
              if (value_cursor >= codes.size()) {
                return Status::Corruption("dictionary code underflow in " +
                                          path);
              }
              code = codes[value_cursor++];
            }
            uint8_t& m = mask[row0 + r];
            if (m == 0) continue;
            if (!has_value) {
              m = 0;  // NULL never matches a pushed conjunct
              continue;
            }
            for (const std::vector<uint8_t>& bitmap : code_bitmaps) {
              if (code >= bitmap.size()) {
                return Status::Corruption("dictionary code out of range in " +
                                          path);
              }
              ++stats_.dict_code_filter_hits;
              if (bitmap[code] == 0) {
                m = 0;
                break;
              }
            }
          }
        } else {
          DecodedLeaf page_leaf;
          page_leaf.leaf = leaf;
          RETURN_IF_ERROR(DecodePageValues(leaf, *dict, raw, levels,
                                           options_.vectorized, nullptr,
                                           &page_leaf, &stats_));
          std::vector<uint8_t> page_mask(mask.begin() + row0,
                                         mask.begin() + row0 + nrows);
          for (const LeafPredicate* pred : preds) {
            ApplyPredicate(page_leaf, *pred, &page_mask);
          }
          std::copy(page_mask.begin(), page_mask.end(), mask.begin() + row0);
        }
      }
    }

    std::vector<int32_t> selected;
    if (spec.predicates.empty()) {
      selected.resize(group.num_rows);
      for (size_t i = 0; i < group.num_rows; ++i) {
        selected[i] = static_cast<int32_t>(i);
      }
    } else {
      for (size_t i = 0; i < group.num_rows; ++i) {
        if (mask[i] != 0) selected.push_back(static_cast<int32_t>(i));
      }
    }
    if (selected.empty()) {
      if (options_.lazy_reads) {
        stats_.rows_pruned_late += static_cast<int64_t>(group.num_rows);
      }
      continue;
    }
    const bool all_selected = selected.size() == group.num_rows;

    // Late-materialization strategy: below ~7/8 selectivity decode only the
    // selected rows of projected columns ("lazy"); at or above it, decoding
    // densely and emitting a zero-copy selection-vector wrap is cheaper than
    // per-row gathering, so surviving rows ride a dictionary-index wrap.
    bool lazy = options_.lazy_reads && !all_selected;
    const bool wrap = lazy && selected.size() * 8 >= group.num_rows * 7;
    if (wrap) lazy = false;
    if (lazy) {
      stats_.rows_pruned_late +=
          static_cast<int64_t>(group.num_rows - selected.size());
    }

    // ---- Stage 2: projected leaves — only surviving pages, selected rows. ---
    // Note: selected row indices equal entry indices only for maxrep==0
    // leaves; repeated leaves expand to entry ranges via their rep levels.
    std::map<std::string, DecodedLeaf> decoded;
    auto decode_projected = [&](const std::string& path) -> Status {
      if (decoded.count(path) > 0) return Status::OK();
      auto leaf_it = leaf_by_path.find(path);
      auto chunk_it = chunk_by_path.find(path);
      if (leaf_it == leaf_by_path.end() || chunk_it == chunk_by_path.end()) {
        return Status::NotFound("leaf not present in file: " + path);
      }
      const Leaf& leaf = *leaf_it->second;
      PageReader* pages = reader_for(path);
      ASSIGN_OR_RETURN(const Dictionary* dict, dictionary_for(path));
      DecodedLeaf out;
      out.leaf = leaf;
      for (size_t i = 0; i < pages->num_pages(); ++i) {
        const DataPageMeta& pm = pages->page_meta(i);
        std::vector<int32_t> page_rows;  // page-relative selected rows
        if (lazy) {
          auto begin = std::lower_bound(selected.begin(), selected.end(),
                                        static_cast<int32_t>(pm.first_row));
          auto end =
              std::lower_bound(selected.begin(), selected.end(),
                               static_cast<int32_t>(pm.first_row + pm.num_rows));
          if (begin == end) {
            // No selected row falls in this page: never read it.
            ++stats_.pages_skipped_lazy;
            continue;
          }
          page_rows.reserve(static_cast<size_t>(end - begin));
          for (auto it = begin; it != end; ++it) {
            page_rows.push_back(*it - static_cast<int32_t>(pm.first_row));
          }
        }
        ASSIGN_OR_RETURN(RawPage raw, pages->Read(i));
        ASSIGN_OR_RETURN(PageLevels levels,
                         DecodePageLevels(leaf, raw, options_.vectorized));
        const std::vector<int32_t>* selection = nullptr;
        std::vector<int32_t> entry_selection;
        if (lazy) {
          if (leaf.max_rep == 0) {
            selection = &page_rows;  // entry index == page-relative row
          } else {
            // Expand page-relative rows to entry ranges via rep levels.
            std::vector<int32_t> starts;
            for (size_t e = 0; e < levels.rep.size(); ++e) {
              if (levels.rep[e] == 0) starts.push_back(static_cast<int32_t>(e));
            }
            for (int32_t row : page_rows) {
              int32_t begin_e = starts[row];
              int32_t end_e = row + 1 < static_cast<int32_t>(starts.size())
                                  ? starts[row + 1]
                                  : static_cast<int32_t>(levels.rep.size());
              for (int32_t e = begin_e; e < end_e; ++e) {
                entry_selection.push_back(e);
              }
            }
            selection = &entry_selection;
          }
        }
        RETURN_IF_ERROR(DecodePageValues(leaf, *dict, raw, levels,
                                         options_.vectorized, selection, &out,
                                         &stats_));
      }
      decoded.emplace(path, std::move(out));
      return Status::OK();
    };

    for (const auto& paths : column_leaf_paths) {
      for (const std::string& path : paths) {
        RETURN_IF_ERROR(decode_projected(path));
      }
    }

    // ---- Assemble output columns. -------------------------------------------
    size_t out_rows = lazy ? selected.size() : group.num_rows;
    std::vector<VectorPtr> columns;
    for (size_t c = 0; c < spec.columns.size(); ++c) {
      std::vector<const DecodedLeaf*> leaves;
      for (const std::string& path : column_leaf_paths[c]) {
        leaves.push_back(&decoded.at(path));
      }
      ASSIGN_OR_RETURN(VectorPtr column,
                       AssembleColumn(column_types[c], leaves, out_rows));
      columns.push_back(std::move(column));
    }
    Page page(std::move(columns), out_rows);
    if (!lazy && !all_selected) {
      // High selectivity: zero-copy selection-vector wrap. With lazy reads
      // disabled entirely, fall back to the materializing row slice.
      page = wrap ? page.WrapRows(selected) : page.SliceRows(selected);
    }
    stats_.rows_output += static_cast<int64_t>(page.num_rows());
    return std::optional<Page>(std::move(page));
  }
  return std::optional<Page>();
}

// ===========================================================================
// LegacyLakeFileReader
// ===========================================================================

namespace {

// Row-at-a-time record assembler: per-leaf entry/value cursors advanced one
// record at a time — "reads all Parquet data row by row using the open
// source Parquet library".
class RecordAssembler {
 public:
  explicit RecordAssembler(std::vector<DecodedLeaf> decoded)
      : decoded_(std::move(decoded)),
        entry_cursor_(decoded_.size(), 0),
        value_cursor_(decoded_.size(), 0) {}

  Result<Value> NextRecordColumn(const TypePtr& type, size_t* leaf_cursor) {
    return AssembleValue(type, 0, leaf_cursor, /*first_entry=*/true);
  }

 private:
  // Peeks current def of a leaf.
  uint8_t CurrentDef(size_t leaf) const {
    return decoded_[leaf].def[entry_cursor_[leaf]];
  }

  // Consumes one entry from every leaf in [first, last).
  Result<Value> TakeScalar(size_t leaf, int base_def) {
    const DecodedLeaf& d = decoded_[leaf];
    uint8_t def = d.def[entry_cursor_[leaf]];
    ++entry_cursor_[leaf];
    if (def < d.leaf.max_def) return Value::Null();
    size_t v = value_cursor_[leaf]++;
    (void)base_def;
    switch (d.leaf.type->kind()) {
      case TypeKind::kVarchar:
        return Value::String(d.strings[v]);
      case TypeKind::kDouble:
        return Value::Double(d.doubles[v]);
      case TypeKind::kBoolean:
        return Value::Bool(d.bools[v] != 0);
      default:
        return Value::Int(d.ints[v]);
    }
  }

  // Consumes one entry per leaf of the subtree rooted at `type`, building a
  // Value (or NULL). `first_entry` true means rep has already been aligned.
  Result<Value> AssembleValue(const TypePtr& type, int base_def,
                              size_t* leaf_cursor, bool first_entry) {
    switch (type->kind()) {
      case TypeKind::kRow: {
        size_t probe = *leaf_cursor;
        bool is_null = CurrentDef(probe) <= base_def;
        Value::RowData fields;
        for (size_t f = 0; f < type->NumChildren(); ++f) {
          ASSIGN_OR_RETURN(Value v, AssembleValue(type->child(f), base_def + 1,
                                                  leaf_cursor, first_entry));
          fields.push_back(std::move(v));
        }
        if (is_null) return Value::Null();
        return Value::Row(std::move(fields));
      }
      case TypeKind::kArray: {
        size_t probe = *leaf_cursor;
        uint8_t d0 = CurrentDef(probe);
        if (d0 <= base_def) {
          ASSIGN_OR_RETURN(Value ignored,
                           AssembleValue(type->element(), base_def + 2,
                                         leaf_cursor, first_entry));
          (void)ignored;
          return Value::Null();
        }
        if (d0 == base_def + 1) {
          ASSIGN_OR_RETURN(Value ignored,
                           AssembleValue(type->element(), base_def + 2,
                                         leaf_cursor, first_entry));
          (void)ignored;
          return Value::Array({});
        }
        Value::RowData elements;
        size_t saved = *leaf_cursor;
        while (true) {
          *leaf_cursor = saved;
          ASSIGN_OR_RETURN(Value elem, AssembleValue(type->element(),
                                                     base_def + 2, leaf_cursor,
                                                     false));
          elements.push_back(std::move(elem));
          // Continue while the next entry of the probe leaf repeats (rep==1).
          const DecodedLeaf& pd = decoded_[probe];
          if (entry_cursor_[probe] >= pd.def.size() ||
              pd.rep[entry_cursor_[probe]] == 0) {
            break;
          }
        }
        return Value::Array(std::move(elements));
      }
      case TypeKind::kMap: {
        size_t probe = *leaf_cursor;
        uint8_t d0 = CurrentDef(probe);
        if (d0 <= base_def + 1) {
          ASSIGN_OR_RETURN(Value k, AssembleValue(type->map_key(), base_def + 2,
                                                  leaf_cursor, first_entry));
          ASSIGN_OR_RETURN(Value v, AssembleValue(type->map_value(),
                                                  base_def + 2, leaf_cursor,
                                                  first_entry));
          (void)k;
          (void)v;
          return d0 <= base_def ? Value::Null() : Value::Map({});
        }
        Value::MapData entries;
        size_t saved = *leaf_cursor;
        while (true) {
          *leaf_cursor = saved;
          ASSIGN_OR_RETURN(Value k, AssembleValue(type->map_key(), base_def + 2,
                                                  leaf_cursor, false));
          ASSIGN_OR_RETURN(Value v, AssembleValue(type->map_value(),
                                                  base_def + 2, leaf_cursor,
                                                  false));
          entries.emplace_back(std::move(k), std::move(v));
          const DecodedLeaf& pd = decoded_[probe];
          if (entry_cursor_[probe] >= pd.def.size() ||
              pd.rep[entry_cursor_[probe]] == 0) {
            break;
          }
        }
        return Value::Map(std::move(entries));
      }
      default: {
        size_t leaf = (*leaf_cursor)++;
        return TakeScalar(leaf, base_def);
      }
    }
  }

  std::vector<DecodedLeaf> decoded_;
  std::vector<size_t> entry_cursor_;
  std::vector<size_t> value_cursor_;
};

}  // namespace

Result<std::unique_ptr<LegacyLakeFileReader>> LegacyLakeFileReader::Open(
    std::shared_ptr<RandomAccessFile> file,
    std::shared_ptr<const FileFooter> footer) {
  if (footer == nullptr) {
    ASSIGN_OR_RETURN(FileFooter parsed, ReadFooter(file.get()));
    footer = std::make_shared<const FileFooter>(std::move(parsed));
  }
  auto reader = std::unique_ptr<LegacyLakeFileReader>(
      new LegacyLakeFileReader(std::move(file), std::move(footer)));
  reader->stats_.row_groups_total =
      static_cast<int64_t>(reader->footer_->row_groups.size());
  return reader;
}

Result<std::optional<Page>> LegacyLakeFileReader::NextBatch(
    const std::vector<std::string>& columns) {
  if (next_group_ >= footer_->row_groups.size()) return std::optional<Page>();
  const RowGroupMeta& group = footer_->row_groups[next_group_];
  ++next_group_;
  ++stats_.row_groups_scanned;

  std::map<std::string, const ColumnChunkMeta*> chunk_by_path;
  for (const ColumnChunkMeta& chunk : group.columns) {
    chunk_by_path[chunk.leaf_path] = &chunk;
  }

  // Step 1: read ALL leaves of every requested column from disk (no nested
  // pruning, no skipping), decoding value-at-a-time (non-vectorized).
  std::vector<TypePtr> column_types;
  std::vector<DecodedLeaf> flat_decoded;
  for (const std::string& column : columns) {
    auto field = footer_->schema->FindField(column);
    if (!field.has_value()) {
      return Status::NotFound("no column '" + column + "' in file schema");
    }
    TypePtr type = footer_->schema->child(*field);
    ASSIGN_OR_RETURN(std::vector<Leaf> leaves, EnumerateFieldLeaves(column, type));
    for (const Leaf& leaf : leaves) {
      auto chunk_it = chunk_by_path.find(leaf.path);
      if (chunk_it == chunk_by_path.end()) {
        return Status::Corruption("missing chunk for leaf " + leaf.path);
      }
      const ColumnChunkMeta& chunk = *chunk_it->second;
      ASSIGN_OR_RETURN(Dictionary dict,
                       MaybeReadDictionary(file_.get(), leaf, chunk,
                                           footer_->compression, &stats_));
      PageReader pages(file_.get(), chunk, group.num_rows, footer_->compression,
                       &stats_);
      stats_.pages_total += static_cast<int64_t>(pages.num_pages());
      DecodedLeaf decoded;
      decoded.leaf = leaf;
      for (size_t i = 0; i < pages.num_pages(); ++i) {
        ASSIGN_OR_RETURN(RawPage raw, pages.Read(i));
        ASSIGN_OR_RETURN(PageLevels levels,
                         DecodePageLevels(leaf, raw, /*vectorized=*/false));
        RETURN_IF_ERROR(DecodePageValues(leaf, dict, raw, levels,
                                         /*vectorized=*/false, nullptr,
                                         &decoded, &stats_));
      }
      flat_decoded.push_back(std::move(decoded));
    }
    column_types.push_back(std::move(type));
  }

  // Step 2: transform row-based records into columnar blocks.
  RecordAssembler assembler(std::move(flat_decoded));
  std::vector<VectorBuilder> builders;
  builders.reserve(column_types.size());
  for (const TypePtr& type : column_types) builders.emplace_back(type);
  for (uint64_t r = 0; r < group.num_rows; ++r) {
    size_t leaf_cursor = 0;
    for (size_t c = 0; c < column_types.size(); ++c) {
      ASSIGN_OR_RETURN(Value v,
                       assembler.NextRecordColumn(column_types[c], &leaf_cursor));
      RETURN_IF_ERROR(builders[c].Append(v));
    }
  }
  std::vector<VectorPtr> vectors;
  vectors.reserve(builders.size());
  for (VectorBuilder& b : builders) vectors.push_back(b.Build());
  stats_.rows_output += static_cast<int64_t>(group.num_rows);
  return std::optional<Page>(Page(std::move(vectors), group.num_rows));
}

}  // namespace lakefile
}  // namespace presto
