#ifndef PRESTO_LAKEFILE_SHRED_H_
#define PRESTO_LAKEFILE_SHRED_H_

#include <string>
#include <vector>

#include "presto/types/type.h"
#include "presto/types/value.h"
#include "presto/vector/vector.h"

namespace presto {
namespace lakefile {

/// A leaf column of the shredded (Dremel-style) schema. Definition-level
/// budget per path node: scalar leaf and struct contribute 1 level each;
/// ARRAY/MAP contribute 2 (null vs present, empty vs has-entries). At most
/// one repeated (ARRAY/MAP) node per path is supported — nested repetition
/// is rejected at write time.
///
/// Examples (top-level paths):
///   BIGINT  x                 -> leaf "x",            max_def 1, max_rep 0
///   ROW b(city_id BIGINT)     -> leaf "b.city_id",    max_def 2, max_rep 0
///   ARRAY(VARCHAR) tags       -> leaf "tags.element", max_def 3, max_rep 1
///   MAP(VARCHAR,DOUBLE) m     -> leaves "m.key" and "m.value", each
///                                max_def 3, max_rep 1 (sharing rep/def shape)
struct Leaf {
  std::string path;
  TypePtr type;  // scalar leaf type
  int max_def = 0;
  int max_rep = 0;
};

/// Enumerates the leaves of a ROW schema in depth-first order.
Result<std::vector<Leaf>> EnumerateLeaves(const Type& schema);

/// Enumerates the leaves belonging to one top-level field.
Result<std::vector<Leaf>> EnumerateFieldLeaves(const std::string& field_name,
                                               const TypePtr& field_type);

/// Accumulates one leaf column's shredded entries before page encoding.
/// Values are stored in the slot matching the leaf's scalar kind; rep/def
/// hold one byte per entry.
struct LeafBuffer {
  std::vector<uint8_t> rep;
  std::vector<uint8_t> def;
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<uint8_t> bools;
  std::vector<std::string> strings;

  size_t num_entries() const { return def.size(); }
  size_t num_values(const Leaf& leaf) const;
  void Clear();
};

/// Columnar shredder used by the NATIVE writer: walks vectors directly,
/// emitting values, repetition values, and definition values without ever
/// materializing a row.
Status ShredVector(const Leaf* leaves, size_t num_leaves, const TypePtr& type,
                   const VectorPtr& vector, LeafBuffer* buffers);

/// Row-at-a-time shredder used by the LEGACY writer baseline: consumes one
/// boxed record (Value) and walks its tree, appending one value at a time —
/// the extra row reconstruction the native writer removes.
Status ShredRecord(const Leaf* leaves, size_t num_leaves, const TypePtr& type,
                   const Value& record, LeafBuffer* buffers);

/// Decoded leaf column (output of page decoding, input of assembly).
struct DecodedLeaf {
  Leaf leaf;
  std::vector<uint8_t> rep;
  std::vector<uint8_t> def;
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<uint8_t> bools;
  std::vector<std::string> strings;
};

/// Reassembles one top-level column vector from its decoded leaves.
/// `type` may be a pruned subset of the file's field type (nested column
/// pruning): leaves must be provided in EnumerateFieldLeaves(type) order.
Result<VectorPtr> AssembleColumn(const TypePtr& type,
                                 const std::vector<const DecodedLeaf*>& leaves,
                                 size_t num_rows);

/// Counts top-level rows in a decoded leaf (entries with rep==0).
size_t CountRows(const DecodedLeaf& leaf);

}  // namespace lakefile
}  // namespace presto

#endif  // PRESTO_LAKEFILE_SHRED_H_
