#include "presto/druid/druid_store.h"

#include <algorithm>
#include <unordered_map>

#include "presto/common/hash.h"

namespace presto {
namespace druid {

namespace {

struct RollupKey {
  int64_t bucket;
  std::vector<std::string> dims;

  bool operator==(const RollupKey& other) const {
    return bucket == other.bucket && dims == other.dims;
  }
};

struct RollupKeyHash {
  size_t operator()(const RollupKey& key) const {
    uint64_t h = HashMix64(static_cast<uint64_t>(key.bucket));
    for (const std::string& d : key.dims) h = HashCombine(h, HashString(d));
    return static_cast<size_t>(h);
  }
};

int64_t FloorBucket(int64_t ts, int64_t granularity) {
  int64_t b = ts / granularity;
  if (ts < 0 && ts % granularity != 0) --b;
  return b * granularity;
}

}  // namespace

Status DruidStore::CreateDatasource(const std::string& name,
                                    DatasourceSchema schema) {
  if (schema.granularity_millis <= 0) {
    return Status::InvalidArgument("granularity must be positive");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (datasources_.count(name) > 0) {
    return Status::AlreadyExists("datasource exists: " + name);
  }
  datasources_[name] = Datasource{std::move(schema), {}};
  return Status::OK();
}

Status DruidStore::Ingest(const std::string& name,
                          const std::vector<DruidRow>& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasources_.find(name);
  if (it == datasources_.end()) {
    return Status::NotFound("no such datasource: " + name);
  }
  const DatasourceSchema& schema = it->second.schema;

  // Rollup: collapse events sharing (time bucket, dims).
  struct Accum {
    std::vector<double> sums;
    int64_t count = 0;
  };
  std::unordered_map<RollupKey, Accum, RollupKeyHash> rollup;
  for (const DruidRow& row : rows) {
    if (row.dimensions.size() != schema.dimensions.size() ||
        row.metrics.size() != schema.metrics.size()) {
      return Status::InvalidArgument("row shape does not match schema");
    }
    RollupKey key{FloorBucket(row.timestamp, schema.granularity_millis),
                  row.dimensions};
    Accum& acc = rollup[key];
    if (acc.sums.empty()) acc.sums.resize(schema.metrics.size(), 0);
    for (size_t m = 0; m < row.metrics.size(); ++m) {
      acc.sums[m] += row.metrics[m];
    }
    ++acc.count;
  }
  metrics_.Increment("druid.ingest.events", static_cast<int64_t>(rows.size()));
  metrics_.Increment("druid.ingest.rows_after_rollup", static_cast<int64_t>(rollup.size()));

  // Deterministic segment order: sort rolled-up rows by (time, dims).
  std::vector<std::pair<RollupKey, Accum>> sorted(
      std::make_move_iterator(rollup.begin()), std::make_move_iterator(rollup.end()));
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.first.bucket != b.first.bucket) return a.first.bucket < b.first.bucket;
    return a.first.dims < b.first.dims;
  });

  auto segment = std::make_shared<Segment>();
  size_t n = sorted.size();
  segment->num_rows = n;
  segment->time.reserve(n);
  segment->dim_codes.assign(schema.dimensions.size(), {});
  segment->dim_dicts.assign(schema.dimensions.size(), {});
  segment->dim_inverted.assign(schema.dimensions.size(), {});
  segment->metric_values.assign(schema.metrics.size(), {});
  segment->rollup_counts.reserve(n);

  // Build sorted dictionaries per dimension.
  for (size_t d = 0; d < schema.dimensions.size(); ++d) {
    std::vector<std::string> values;
    values.reserve(n);
    for (const auto& [key, acc] : sorted) values.push_back(key.dims[d]);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    segment->dim_dicts[d] = std::move(values);
    segment->dim_inverted[d].assign(segment->dim_dicts[d].size(), {});
    segment->dim_codes[d].reserve(n);
  }

  for (size_t r = 0; r < n; ++r) {
    const auto& [key, acc] = sorted[r];
    segment->time.push_back(key.bucket);
    for (size_t d = 0; d < schema.dimensions.size(); ++d) {
      const auto& dict = segment->dim_dicts[d];
      int32_t code = static_cast<int32_t>(
          std::lower_bound(dict.begin(), dict.end(), key.dims[d]) - dict.begin());
      segment->dim_codes[d].push_back(code);
      segment->dim_inverted[d][code].push_back(static_cast<int32_t>(r));
    }
    for (size_t m = 0; m < schema.metrics.size(); ++m) {
      segment->metric_values[m].push_back(acc.sums[m]);
    }
    segment->rollup_counts.push_back(acc.count);
  }
  if (n > 0) {
    segment->min_time = segment->time.front();
    segment->max_time = segment->time.back();
  }
  it->second.segments.push_back(std::move(segment));
  return Status::OK();
}

Result<DatasourceSchema> DruidStore::GetSchema(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = datasources_.find(name);
  if (it == datasources_.end()) {
    return Status::NotFound("no such datasource: " + name);
  }
  return it->second.schema;
}

std::vector<std::string> DruidStore::ListDatasources() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, ds] : datasources_) out.push_back(name);
  return out;
}

Result<TypePtr> DruidStore::TableType(const std::string& name) const {
  ASSIGN_OR_RETURN(DatasourceSchema schema, GetSchema(name));
  std::vector<std::string> names = {"__time"};
  std::vector<TypePtr> types = {Type::Timestamp()};
  for (const std::string& d : schema.dimensions) {
    names.push_back(d);
    types.push_back(Type::Varchar());
  }
  for (const std::string& m : schema.metrics) {
    names.push_back(m);
    types.push_back(Type::Double());
  }
  names.push_back("rollup_count");
  types.push_back(Type::Bigint());
  return Type::Row(std::move(names), std::move(types));
}

Result<DruidResult> DruidStore::Execute(const DruidQuery& query) {
  std::vector<std::shared_ptr<const Segment>> segments;
  DatasourceSchema schema;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = datasources_.find(query.datasource);
    if (it == datasources_.end()) {
      return Status::NotFound("no such datasource: " + query.datasource);
    }
    schema = it->second.schema;
    segments = it->second.segments;
    metrics_.Increment("druid.query.calls");
  }

  auto dim_index = [&](const std::string& name) -> Result<size_t> {
    for (size_t d = 0; d < schema.dimensions.size(); ++d) {
      if (schema.dimensions[d] == name) return d;
    }
    return Status::NotFound("no such dimension: " + name);
  };
  auto metric_index = [&](const std::string& name) -> Result<size_t> {
    for (size_t m = 0; m < schema.metrics.size(); ++m) {
      if (schema.metrics[m] == name) return m;
    }
    return Status::NotFound("no such metric: " + name);
  };

  DruidResult result;
  bool is_scan = query.aggregations.empty();

  // Output shape.
  if (is_scan) {
    std::vector<std::string> columns = query.scan_columns;
    if (columns.empty()) {
      columns.push_back("__time");
      for (const auto& d : schema.dimensions) columns.push_back(d);
      for (const auto& m : schema.metrics) columns.push_back(m);
      columns.push_back("rollup_count");
    }
    for (const std::string& c : columns) {
      result.column_names.push_back(c);
      if (c == "__time") {
        result.column_types.push_back(Type::Timestamp());
      } else if (c == "rollup_count") {
        result.column_types.push_back(Type::Bigint());
      } else if (auto d = dim_index(c); d.ok()) {
        result.column_types.push_back(Type::Varchar());
      } else if (auto m = metric_index(c); m.ok()) {
        result.column_types.push_back(Type::Double());
      } else {
        return Status::NotFound("no such column: " + c);
      }
    }
  } else {
    for (const std::string& d : query.dimensions) {
      RETURN_IF_ERROR(dim_index(d).status());
      result.column_names.push_back(d);
      result.column_types.push_back(Type::Varchar());
    }
    for (const DruidAggregation& agg : query.aggregations) {
      result.column_names.push_back(agg.output_name);
      if (agg.kind == AggKind::kCount) {
        result.column_types.push_back(Type::Bigint());
      } else {
        RETURN_IF_ERROR(metric_index(agg.metric).status());
        result.column_types.push_back(Type::Double());
      }
    }
  }

  // Group-by state across segments.
  struct GroupState {
    std::vector<Value> keys;
    std::vector<double> doubles;  // per agg
    std::vector<int64_t> counts;
    std::vector<bool> seen;
  };
  std::unordered_map<uint64_t, std::vector<GroupState>> groups;
  auto group_for = [&](std::vector<Value> keys) -> GroupState& {
    uint64_t h = 0;
    for (const Value& k : keys) h = HashCombine(h, k.Hash());
    auto& bucket = groups[h];
    for (GroupState& g : bucket) {
      bool same = true;
      for (size_t i = 0; i < keys.size(); ++i) {
        if (!g.keys[i].Equals(keys[i])) {
          same = false;
          break;
        }
      }
      if (same) return g;
    }
    GroupState g;
    g.keys = std::move(keys);
    g.doubles.assign(query.aggregations.size(), 0);
    g.counts.assign(query.aggregations.size(), 0);
    g.seen.assign(query.aggregations.size(), false);
    bucket.push_back(std::move(g));
    return bucket.back();
  };

  for (const auto& segment : segments) {
    if (segment->num_rows == 0) continue;
    // Segment-level time pruning.
    if (segment->max_time < query.interval.start ||
        segment->min_time >= query.interval.end) {
      continue;
    }
    // Candidate rows via bitmap/inverted-index intersection.
    std::vector<int32_t> candidates;
    bool have_candidates = false;
    for (const DimensionFilter& filter : query.filters) {
      ASSIGN_OR_RETURN(size_t d, dim_index(filter.dimension));
      const auto& dict = segment->dim_dicts[d];
      std::vector<int32_t> rows_for_filter;
      for (const std::string& value : filter.values) {
        auto it = std::lower_bound(dict.begin(), dict.end(), value);
        if (it == dict.end() || *it != value) continue;
        const auto& list =
            segment->dim_inverted[d][static_cast<size_t>(it - dict.begin())];
        // Merge-union (lists are sorted).
        std::vector<int32_t> merged;
        std::set_union(rows_for_filter.begin(), rows_for_filter.end(),
                       list.begin(), list.end(), std::back_inserter(merged));
        rows_for_filter = std::move(merged);
      }
      if (!have_candidates) {
        candidates = std::move(rows_for_filter);
        have_candidates = true;
      } else {
        std::vector<int32_t> intersected;
        std::set_intersection(candidates.begin(), candidates.end(),
                              rows_for_filter.begin(), rows_for_filter.end(),
                              std::back_inserter(intersected));
        candidates = std::move(intersected);
      }
      if (candidates.empty()) break;
    }
    if (!have_candidates) {
      candidates.resize(segment->num_rows);
      for (size_t r = 0; r < segment->num_rows; ++r) {
        candidates[r] = static_cast<int32_t>(r);
      }
    }

    bool need_time_check = query.interval.start > segment->min_time ||
                           query.interval.end <= segment->max_time;

    for (int32_t r : candidates) {
      if (need_time_check && (segment->time[r] < query.interval.start ||
                              segment->time[r] >= query.interval.end)) {
        continue;
      }
      ++result.rows_scanned;
      if (is_scan) {
        std::vector<Value> row;
        row.reserve(result.column_names.size());
        for (const std::string& c : result.column_names) {
          if (c == "__time") {
            row.push_back(Value::Int(segment->time[r]));
          } else if (c == "rollup_count") {
            row.push_back(Value::Int(segment->rollup_counts[r]));
          } else if (auto d = dim_index(c); d.ok()) {
            row.push_back(Value::String(
                segment->dim_dicts[*d][segment->dim_codes[*d][r]]));
          } else {
            ASSIGN_OR_RETURN(size_t m, metric_index(c));
            row.push_back(Value::Double(segment->metric_values[m][r]));
          }
        }
        result.rows.push_back(std::move(row));
        if (query.limit >= 0 &&
            static_cast<int64_t>(result.rows.size()) >= query.limit) {
          return result;
        }
        continue;
      }
      // Aggregation path.
      std::vector<Value> keys;
      keys.reserve(query.dimensions.size());
      for (const std::string& dim : query.dimensions) {
        ASSIGN_OR_RETURN(size_t d, dim_index(dim));
        keys.push_back(
            Value::String(segment->dim_dicts[d][segment->dim_codes[d][r]]));
      }
      GroupState& g = group_for(std::move(keys));
      for (size_t a = 0; a < query.aggregations.size(); ++a) {
        const DruidAggregation& agg = query.aggregations[a];
        switch (agg.kind) {
          case AggKind::kCount:
            g.counts[a] += 1;  // rolled-up rows
            break;
          case AggKind::kSum: {
            ASSIGN_OR_RETURN(size_t m, metric_index(agg.metric));
            g.doubles[a] += segment->metric_values[m][r];
            break;
          }
          case AggKind::kMin: {
            ASSIGN_OR_RETURN(size_t m, metric_index(agg.metric));
            double v = segment->metric_values[m][r];
            g.doubles[a] = g.seen[a] ? std::min(g.doubles[a], v) : v;
            break;
          }
          case AggKind::kMax: {
            ASSIGN_OR_RETURN(size_t m, metric_index(agg.metric));
            double v = segment->metric_values[m][r];
            g.doubles[a] = g.seen[a] ? std::max(g.doubles[a], v) : v;
            break;
          }
        }
        g.seen[a] = true;
      }
    }
  }

  if (!is_scan) {
    for (auto& [hash, bucket] : groups) {
      for (GroupState& g : bucket) {
        std::vector<Value> row = std::move(g.keys);
        for (size_t a = 0; a < query.aggregations.size(); ++a) {
          if (query.aggregations[a].kind == AggKind::kCount) {
            row.push_back(Value::Int(g.counts[a]));
          } else {
            row.push_back(g.seen[a] ? Value::Double(g.doubles[a]) : Value::Null());
          }
        }
        result.rows.push_back(std::move(row));
      }
    }
    // Deterministic order + limit.
    std::sort(result.rows.begin(), result.rows.end(),
              [](const std::vector<Value>& a, const std::vector<Value>& b) {
                for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
                  int c = a[i].Compare(b[i]);
                  if (c != 0) return c < 0;
                }
                return false;
              });
    if (query.limit >= 0 &&
        static_cast<int64_t>(result.rows.size()) > query.limit) {
      result.rows.resize(query.limit);
    }
  }
  return result;
}

}  // namespace druid
}  // namespace presto
