#ifndef PRESTO_DRUID_DRUID_STORE_H_
#define PRESTO_DRUID_DRUID_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "presto/common/metrics.h"
#include "presto/common/status.h"
#include "presto/types/type.h"
#include "presto/types/value.h"

namespace presto {
namespace druid {

/// Mini real-time OLAP store standing in for Apache Druid (see DESIGN.md):
/// columnar segments, dictionary-encoded string dimensions with bitmap
/// inverted indexes, ingest-time rollup (pre-aggregation), and native
/// groupBy/timeseries/scan queries with sub-millisecond latency on indexed
/// filters. These are exactly the structures ("in memory bitmap indices,
/// inverted indices, pre-aggregations or dictionaries") that make
/// aggregation pushdown through the Presto-Druid connector profitable.

/// Schema of a datasource: a time column, string dimensions, and numeric
/// metrics that are summed on rollup.
struct DatasourceSchema {
  std::vector<std::string> dimensions;
  std::vector<std::string> metrics;  // all DOUBLE, summed on rollup
  /// Rollup time bucket in milliseconds (e.g. 3600'000 = hourly).
  int64_t granularity_millis = 3600000;
};

/// One event to ingest.
struct DruidRow {
  int64_t timestamp = 0;                // millis
  std::vector<std::string> dimensions;  // parallel to schema.dimensions
  std::vector<double> metrics;          // parallel to schema.metrics
};

struct TimeInterval {
  int64_t start = INT64_MIN;
  int64_t end = INT64_MAX;  // exclusive
};

/// Dimension filter with IN semantics (single value = equality).
struct DimensionFilter {
  std::string dimension;
  std::vector<std::string> values;
};

enum class AggKind { kCount, kSum, kMin, kMax };

struct DruidAggregation {
  std::string output_name;
  AggKind kind = AggKind::kCount;
  std::string metric;  // ignored for kCount
};

/// Native query: SCAN when `aggregations` is empty, otherwise
/// timeseries (no dimensions) or groupBy.
struct DruidQuery {
  std::string datasource;
  TimeInterval interval;
  std::vector<DimensionFilter> filters;
  std::vector<std::string> dimensions;      // group-by dimensions
  std::vector<DruidAggregation> aggregations;
  std::vector<std::string> scan_columns;    // SCAN only; empty = all columns
  int64_t limit = -1;                       // -1 = unlimited
};

struct DruidResult {
  std::vector<std::string> column_names;
  std::vector<TypePtr> column_types;
  std::vector<std::vector<Value>> rows;
  /// Rolled-up rows visited while answering (work metric for benches).
  int64_t rows_scanned = 0;
};

/// The store: datasources made of immutable columnar segments.
class DruidStore {
 public:
  Status CreateDatasource(const std::string& name, DatasourceSchema schema);

  /// Ingests a batch as one segment, applying rollup: events sharing
  /// (time bucket, dimensions) collapse into one row with summed metrics
  /// and an event count.
  Status Ingest(const std::string& name, const std::vector<DruidRow>& rows);

  Result<DruidResult> Execute(const DruidQuery& query);

  Result<DatasourceSchema> GetSchema(const std::string& name) const;
  std::vector<std::string> ListDatasources() const;

  /// Columns exposed to SQL layers: __time, dimensions..., metrics...,
  /// and the rollup event count as "rollup_count".
  Result<TypePtr> TableType(const std::string& name) const;

  MetricsRegistry& metrics() { return metrics_; }

 private:
  // Immutable columnar segment with per-dimension dictionaries + inverted
  // indexes (row-id lists per dictionary code).
  struct Segment {
    size_t num_rows = 0;
    std::vector<int64_t> time;
    // Per dimension: codes per row, sorted dictionary, inverted index.
    std::vector<std::vector<int32_t>> dim_codes;
    std::vector<std::vector<std::string>> dim_dicts;
    std::vector<std::vector<std::vector<int32_t>>> dim_inverted;
    // Per metric: rolled-up sums.
    std::vector<std::vector<double>> metric_values;
    std::vector<int64_t> rollup_counts;
    int64_t min_time = 0;
    int64_t max_time = 0;
  };

  struct Datasource {
    DatasourceSchema schema;
    std::vector<std::shared_ptr<const Segment>> segments;
  };

  mutable std::mutex mu_;
  std::map<std::string, Datasource> datasources_;
  MetricsRegistry metrics_;
};

}  // namespace druid
}  // namespace presto

#endif  // PRESTO_DRUID_DRUID_STORE_H_
