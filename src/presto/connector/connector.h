#ifndef PRESTO_CONNECTOR_CONNECTOR_H_
#define PRESTO_CONNECTOR_CONNECTOR_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "presto/connector/pushdown.h"
#include "presto/types/type.h"
#include "presto/vector/page.h"

namespace presto {

/// One unit of work against the underlying data — "ConnectorSplit, which
/// defines one processing unit, or one shard of underlying data". Subclassed
/// per connector (a file + row-group range, a Druid query slice, ...).
class ConnectorSplit {
 public:
  virtual ~ConnectorSplit() = default;
  virtual std::string ToString() const = 0;
};

using SplitPtr = std::shared_ptr<ConnectorSplit>;

/// Work counters of one scan source, in file-format-neutral terms. File
/// connectors map their reader stats here; the scan operator folds them into
/// OperatorStats (EXPLAIN ANALYZE) and lakefile.* metrics counters.
struct ScanSourceStats {
  int64_t row_groups_total = 0;
  int64_t row_groups_skipped = 0;    // via chunk stats or dictionary probe
  int64_t pages_total = 0;           // data pages of all chunks examined
  int64_t pages_read = 0;            // pages actually read and decompressed
  int64_t pages_skipped_stats = 0;   // skipped via per-page min/max / nulls
  int64_t pages_skipped_lazy = 0;    // skipped because no selected row needs them
  int64_t rows_pruned_late = 0;      // rows excluded from late materialization
  int64_t dict_code_filter_hits = 0; // predicate rows answered on dict codes
  int64_t bytes_read = 0;

  void Accumulate(const ScanSourceStats& d) {
    row_groups_total += d.row_groups_total;
    row_groups_skipped += d.row_groups_skipped;
    pages_total += d.pages_total;
    pages_read += d.pages_read;
    pages_skipped_stats += d.pages_skipped_stats;
    pages_skipped_lazy += d.pages_skipped_lazy;
    rows_pruned_late += d.rows_pruned_late;
    dict_code_filter_hits += d.dict_code_filter_hits;
    bytes_read += d.bytes_read;
  }

  ScanSourceStats Delta(const ScanSourceStats& since) const {
    ScanSourceStats d;
    d.row_groups_total = row_groups_total - since.row_groups_total;
    d.row_groups_skipped = row_groups_skipped - since.row_groups_skipped;
    d.pages_total = pages_total - since.pages_total;
    d.pages_read = pages_read - since.pages_read;
    d.pages_skipped_stats = pages_skipped_stats - since.pages_skipped_stats;
    d.pages_skipped_lazy = pages_skipped_lazy - since.pages_skipped_lazy;
    d.rows_pruned_late = rows_pruned_late - since.rows_pruned_late;
    d.dict_code_filter_hits = dict_code_filter_hits - since.dict_code_filter_hits;
    d.bytes_read = bytes_read - since.bytes_read;
    return d;
  }
};

/// Streams pages of one split into the engine — the role of
/// ConnectorRecordSetProvider/ConnectorPageSource: "upon getting data streams
/// from underlying systems, how Presto parses and transforms them".
class ConnectorPageSource {
 public:
  virtual ~ConnectorPageSource() = default;

  /// Next page of data, or nullopt when the split is exhausted.
  virtual Result<std::optional<Page>> NextPage() = 0;

  /// Cumulative scan-side work counters of this source so far. Sources that
  /// do not track them return zeros.
  virtual ScanSourceStats scan_stats() const { return {}; }
};

/// A connector: metadata + split manager + page-source factory, the trio the
/// paper lists as ConnectorMetadata / ConnectorSplitManager /
/// ConnectorRecordSetProvider (Section IV).
class Connector {
 public:
  virtual ~Connector() = default;

  virtual std::string name() const = 0;

  // -- ConnectorMetadata ------------------------------------------------------
  virtual std::vector<std::string> ListSchemas() = 0;
  virtual std::vector<std::string> ListTables(const std::string& schema) = 0;
  /// ROW type describing the table's columns.
  virtual Result<TypePtr> GetTableSchema(const std::string& schema,
                                         const std::string& table) = 0;

  // -- Pushdown negotiation -----------------------------------------------------
  /// Given the engine's desired pushdown, returns what this connector will
  /// actually absorb (connector-specific optimizer rule). Conjuncts and
  /// aggregations the connector cannot handle must be left out of the
  /// accepted pushdown; the planner keeps them in the engine plan.
  virtual Result<AcceptedPushdown> NegotiatePushdown(
      const std::string& schema, const std::string& table,
      const PushdownRequest& desired) = 0;

  // -- ConnectorSplitManager ------------------------------------------------------
  /// "How Presto divides the underlying data into splits and processes them
  /// in parallel."
  virtual Result<std::vector<SplitPtr>> CreateSplits(
      const std::string& schema, const std::string& table,
      const AcceptedPushdown& pushdown, size_t target_splits) = 0;

  // -- Page sources -----------------------------------------------------------------
  virtual Result<std::unique_ptr<ConnectorPageSource>> CreatePageSource(
      const SplitPtr& split, const AcceptedPushdown& pushdown) = 0;
};

using ConnectorPtr = std::shared_ptr<Connector>;

/// catalog -> connector mapping: "to get a unified view of all data, Presto
/// connector introduces catalog.schema.table for each table".
class CatalogRegistry {
 public:
  Status RegisterCatalog(const std::string& catalog, ConnectorPtr connector);
  Result<Connector*> GetConnector(const std::string& catalog) const;
  std::vector<std::string> ListCatalogs() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, ConnectorPtr> catalogs_;
};

}  // namespace presto

#endif  // PRESTO_CONNECTOR_CONNECTOR_H_
