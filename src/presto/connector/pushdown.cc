#include "presto/connector/pushdown.h"

namespace presto {

std::string SimplePredicate::ToString() const {
  static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">=", "IN"};
  std::string out = column;
  out += " ";
  out += kOps[static_cast<int>(op)];
  out += " ";
  if (op == Op::kIn) out += "(";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += values[i].ToString();
  }
  if (op == Op::kIn) out += ")";
  return out;
}

std::optional<std::string> ExpressionToColumnPath(const RowExpression& expr) {
  if (expr.expression_kind() == ExpressionKind::kVariableReference) {
    return static_cast<const VariableReferenceExpression&>(expr).name();
  }
  if (expr.expression_kind() == ExpressionKind::kSpecialForm) {
    const auto& form = static_cast<const SpecialFormExpression&>(expr);
    if (form.form() == SpecialFormKind::kDereference) {
      auto base = ExpressionToColumnPath(*form.arguments()[0]);
      if (!base.has_value()) return std::nullopt;
      const TypePtr& base_type = form.arguments()[0]->type();
      return *base + "." + base_type->field_name(form.field_index());
    }
  }
  return std::nullopt;
}

namespace {

std::optional<SimplePredicate::Op> ComparisonOp(const std::string& name) {
  if (name == "eq") return SimplePredicate::Op::kEq;
  if (name == "neq") return SimplePredicate::Op::kNe;
  if (name == "lt") return SimplePredicate::Op::kLt;
  if (name == "lte") return SimplePredicate::Op::kLe;
  if (name == "gt") return SimplePredicate::Op::kGt;
  if (name == "gte") return SimplePredicate::Op::kGe;
  return std::nullopt;
}

SimplePredicate::Op FlipOp(SimplePredicate::Op op) {
  switch (op) {
    case SimplePredicate::Op::kLt:
      return SimplePredicate::Op::kGt;
    case SimplePredicate::Op::kLe:
      return SimplePredicate::Op::kGe;
    case SimplePredicate::Op::kGt:
      return SimplePredicate::Op::kLt;
    case SimplePredicate::Op::kGe:
      return SimplePredicate::Op::kLe;
    default:
      return op;
  }
}

std::optional<Value> LiteralValue(const RowExpression& expr) {
  if (expr.expression_kind() != ExpressionKind::kConstant) return std::nullopt;
  return static_cast<const ConstantExpression&>(expr).value();
}

}  // namespace

std::optional<SimplePredicate> NormalizeConjunct(const RowExpression& expr) {
  // col IN (literals)
  if (expr.expression_kind() == ExpressionKind::kSpecialForm) {
    const auto& form = static_cast<const SpecialFormExpression&>(expr);
    if (form.form() != SpecialFormKind::kIn) return std::nullopt;
    auto path = ExpressionToColumnPath(*form.arguments()[0]);
    if (!path.has_value()) return std::nullopt;
    SimplePredicate pred;
    pred.column = *path;
    pred.op = SimplePredicate::Op::kIn;
    for (size_t i = 1; i < form.arguments().size(); ++i) {
      auto literal = LiteralValue(*form.arguments()[i]);
      if (!literal.has_value() || literal->is_null()) return std::nullopt;
      pred.values.push_back(std::move(*literal));
    }
    return pred;
  }
  if (expr.expression_kind() != ExpressionKind::kCall) return std::nullopt;
  const auto& call = static_cast<const CallExpression&>(expr);
  auto op = ComparisonOp(call.function_name());
  if (!op.has_value() || call.arguments().size() != 2) return std::nullopt;

  auto left_path = ExpressionToColumnPath(*call.arguments()[0]);
  auto right_literal = LiteralValue(*call.arguments()[1]);
  if (left_path.has_value() && right_literal.has_value() &&
      !right_literal->is_null()) {
    return SimplePredicate{*left_path, *op, {std::move(*right_literal)}};
  }
  auto right_path = ExpressionToColumnPath(*call.arguments()[1]);
  auto left_literal = LiteralValue(*call.arguments()[0]);
  if (right_path.has_value() && left_literal.has_value() &&
      !left_literal->is_null()) {
    return SimplePredicate{*right_path, FlipOp(*op), {std::move(*left_literal)}};
  }
  return std::nullopt;
}

void FlattenConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->expression_kind() == ExpressionKind::kSpecialForm) {
    const auto& form = static_cast<const SpecialFormExpression&>(*expr);
    if (form.form() == SpecialFormKind::kAnd) {
      for (const ExprPtr& arg : form.arguments()) {
        FlattenConjuncts(arg, out);
      }
      return;
    }
  }
  out->push_back(expr);
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  if (conjuncts.size() == 1) return conjuncts[0];
  return SpecialFormExpression::Make(SpecialFormKind::kAnd, Type::Boolean(),
                                     std::move(conjuncts));
}

}  // namespace presto
