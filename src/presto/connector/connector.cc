#include "presto/connector/connector.h"

namespace presto {

Status CatalogRegistry::RegisterCatalog(const std::string& catalog,
                                        ConnectorPtr connector) {
  if (connector == nullptr) {
    return Status::InvalidArgument("connector must not be null");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (catalogs_.count(catalog) > 0) {
    return Status::AlreadyExists("catalog already registered: " + catalog);
  }
  catalogs_[catalog] = std::move(connector);
  return Status::OK();
}

Result<Connector*> CatalogRegistry::GetConnector(const std::string& catalog) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = catalogs_.find(catalog);
  if (it == catalogs_.end()) {
    return Status::NotFound("no such catalog: " + catalog);
  }
  return it->second.get();
}

std::vector<std::string> CatalogRegistry::ListCatalogs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, connector] : catalogs_) out.push_back(name);
  return out;
}

}  // namespace presto
