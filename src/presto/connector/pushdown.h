#ifndef PRESTO_CONNECTOR_PUSHDOWN_H_
#define PRESTO_CONNECTOR_PUSHDOWN_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "presto/expr/expression.h"
#include "presto/types/value.h"

namespace presto {

/// Normalized single-column conjunct a connector can absorb: column (or
/// dotted nested leaf path) OP literal(s). The planner converts pushable
/// RowExpression conjuncts into this form; anything that does not normalize
/// stays in the engine as a residual filter.
///
/// This is the one predicate struct shared across layers: the lakefile
/// reader aliases it as lakefile::LeafPredicate, so a conjunct accepted by a
/// connector flows into the file reader without translation.
struct SimplePredicate {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kIn };
  std::string column;  // may be a dotted nested path, e.g. "base.city_id"
  Op op = Op::kEq;
  std::vector<Value> values;

  std::string ToString() const;
};

/// One aggregation the engine would like the connector to compute
/// (Section IV.B). Connector-side results are treated as PARTIAL aggregates:
/// the engine still runs the final step, so multi-split sources stay correct.
struct PushedAggregation {
  std::string output_name;
  std::string function;  // "count", "sum", "min", "max"
  std::string argument;  // input column; empty for count(*)
};

/// What the engine would like pushed into the connector.
struct PushdownRequest {
  /// Projected columns in output order (projection pushdown).
  std::vector<std::string> columns;
  /// Nested leaf paths actually referenced (nested column pruning); empty
  /// means whole columns.
  std::vector<std::string> required_leaves;
  /// Conjuncts of the WHERE clause in normalized form.
  std::vector<SimplePredicate> predicates;
  /// Row limit, -1 if none (limit pushdown).
  int64_t limit = -1;
  /// Aggregation pushdown: GROUP BY columns + aggregate functions.
  std::vector<std::string> group_by;
  std::vector<PushedAggregation> aggregations;
};

/// What the connector agreed to execute. `predicate_indices` lists which of
/// the requested predicates were absorbed (the rest remain residual);
/// `aggregations_pushed` set means the source emits
/// group_by + aggregation columns instead of raw table columns.
struct AcceptedPushdown {
  PushdownRequest request;             // the absorbed subset
  std::vector<size_t> predicate_indices;
  bool limit_pushed = false;
  bool aggregations_pushed = false;
  /// True when the connector guarantees every absorbed predicate is
  /// *enforced* — emitted rows are exactly the matching rows, not a
  /// best-effort pruned superset. Only then may the planner drop the
  /// absorbed conjuncts from the engine-side residual filter; otherwise the
  /// pushed predicates act as pruning hints and the filter re-checks them.
  bool predicates_enforced = false;
  /// ROW type of pages the source will produce (projection applied; when
  /// aggregations_pushed: group keys followed by partial aggregate columns).
  TypePtr output_schema;
};

/// Tries to normalize an expression conjunct into a SimplePredicate. The
/// expression must be `col op literal`, `literal op col`, `col IN
/// (literals)`, where col is a VariableReference possibly wrapped in
/// DEREFERENCE chains (yielding a dotted path).
std::optional<SimplePredicate> NormalizeConjunct(const RowExpression& expr);

/// Splits an AND tree into conjuncts.
void FlattenConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

/// Rebuilds an AND tree from conjuncts (nullptr if empty).
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

/// If `expr` is a variable or a DEREFERENCE chain over a variable, returns
/// the dotted path ("base.city_id"); otherwise nullopt.
std::optional<std::string> ExpressionToColumnPath(const RowExpression& expr);

}  // namespace presto

#endif  // PRESTO_CONNECTOR_PUSHDOWN_H_
