#ifndef PRESTO_EXPR_EXPRESSION_H_
#define PRESTO_EXPR_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "presto/types/type.h"
#include "presto/types/value.h"

namespace presto {

/// RowExpression subtypes, exactly the paper's Table I. RowExpression
/// replaced Presto's AST-based expression representation: it is completely
/// self-contained (function resolution is stored in the expression as a
/// serializable FunctionHandle) and can be shared across systems — this is
/// what makes connector pushdown of arbitrary sub-expressions possible.
enum class ExpressionKind {
  kConstant,            // literal values such as (1L, BIGINT)
  kVariableReference,   // reference to an input column / previous output field
  kCall,                // function calls: arithmetic, casts, UDFs
  kSpecialForm,         // built-ins with special evaluation: IN, IF, AND, ...
  kLambdaDefinition,    // anonymous functions, e.g. (x, y) -> x + y
};

/// Special built-in function calls whose evaluation rules (short circuit,
/// null handling, field access) differ from plain calls.
enum class SpecialFormKind {
  kAnd,
  kOr,
  kNot,
  kIn,
  kIf,
  kIsNull,
  kCoalesce,
  kDereference,  // struct field access: base.city_id
  kCast,
};

const char* SpecialFormKindToString(SpecialFormKind kind);

class RowExpression;
using ExprPtr = std::shared_ptr<const RowExpression>;

/// Fully resolved reference to a function: name plus argument and return
/// types. Serializable, so an expression containing it can be consistently
/// re-interpreted by a connector without re-running function resolution.
struct FunctionHandle {
  std::string name;
  std::vector<TypePtr> argument_types;
  TypePtr return_type;

  std::string ToString() const;
};

/// Base class of the self-contained expression tree.
class RowExpression {
 public:
  virtual ~RowExpression() = default;

  RowExpression(const RowExpression&) = delete;
  RowExpression& operator=(const RowExpression&) = delete;

  ExpressionKind expression_kind() const { return kind_; }
  const TypePtr& type() const { return type_; }

  virtual std::string ToString() const = 0;

 protected:
  RowExpression(ExpressionKind kind, TypePtr type)
      : kind_(kind), type_(std::move(type)) {}

 private:
  ExpressionKind kind_;
  TypePtr type_;
};

/// Literal values such as (1L, BIGINT), ('string', VARCHAR).
class ConstantExpression final : public RowExpression {
 public:
  ConstantExpression(Value value, TypePtr type)
      : RowExpression(ExpressionKind::kConstant, std::move(type)),
        value_(std::move(value)) {}

  const Value& value() const { return value_; }
  std::string ToString() const override { return value_.ToString(); }

  static ExprPtr Make(Value value, TypePtr type) {
    return std::make_shared<ConstantExpression>(std::move(value), std::move(type));
  }
  static ExprPtr MakeBigint(int64_t v) { return Make(Value::Int(v), Type::Bigint()); }
  static ExprPtr MakeDouble(double v) { return Make(Value::Double(v), Type::Double()); }
  static ExprPtr MakeVarchar(std::string v) {
    return Make(Value::String(std::move(v)), Type::Varchar());
  }
  static ExprPtr MakeBool(bool v) { return Make(Value::Bool(v), Type::Boolean()); }
  static ExprPtr MakeNull(TypePtr type) { return Make(Value::Null(), std::move(type)); }

 private:
  Value value_;
};

/// Reference to an input column (or a field of the output of the previous
/// relational expression), identified by name.
class VariableReferenceExpression final : public RowExpression {
 public:
  VariableReferenceExpression(std::string name, TypePtr type)
      : RowExpression(ExpressionKind::kVariableReference, std::move(type)),
        name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  std::string ToString() const override { return name_; }

  static std::shared_ptr<const VariableReferenceExpression> Make(
      std::string name, TypePtr type) {
    return std::make_shared<VariableReferenceExpression>(std::move(name),
                                                         std::move(type));
  }

 private:
  std::string name_;
};

using VariablePtr = std::shared_ptr<const VariableReferenceExpression>;

/// Function calls: all arithmetic operations, casts, UDFs. Carries a
/// FunctionHandle so resolution travels with the expression.
class CallExpression final : public RowExpression {
 public:
  CallExpression(FunctionHandle handle, std::vector<ExprPtr> arguments)
      : RowExpression(ExpressionKind::kCall, handle.return_type),
        handle_(std::move(handle)),
        arguments_(std::move(arguments)) {}

  const FunctionHandle& handle() const { return handle_; }
  const std::string& function_name() const { return handle_.name; }
  const std::vector<ExprPtr>& arguments() const { return arguments_; }

  std::string ToString() const override;

  static ExprPtr Make(FunctionHandle handle, std::vector<ExprPtr> arguments) {
    return std::make_shared<CallExpression>(std::move(handle), std::move(arguments));
  }

 private:
  FunctionHandle handle_;
  std::vector<ExprPtr> arguments_;
};

/// Special built-in function calls: IN, IF, IS_NULL, AND, DEREFERENCE, etc.
class SpecialFormExpression final : public RowExpression {
 public:
  SpecialFormExpression(SpecialFormKind form, TypePtr type,
                        std::vector<ExprPtr> arguments, size_t field_index = 0)
      : RowExpression(ExpressionKind::kSpecialForm, std::move(type)),
        form_(form),
        arguments_(std::move(arguments)),
        field_index_(field_index) {}

  SpecialFormKind form() const { return form_; }
  const std::vector<ExprPtr>& arguments() const { return arguments_; }

  /// For kDereference: index of the accessed field within the base ROW type.
  size_t field_index() const { return field_index_; }

  std::string ToString() const override;

  static ExprPtr Make(SpecialFormKind form, TypePtr type,
                      std::vector<ExprPtr> arguments, size_t field_index = 0) {
    return std::make_shared<SpecialFormExpression>(form, std::move(type),
                                                   std::move(arguments), field_index);
  }

  /// Builds base.field, resolving the field index from the base ROW type.
  static Result<ExprPtr> MakeDereference(ExprPtr base, const std::string& field);

 private:
  SpecialFormKind form_;
  std::vector<ExprPtr> arguments_;
  size_t field_index_;
};

/// Definition of anonymous (lambda) functions, e.g.
/// (x BIGINT, y BIGINT) -> x + y. Used as arguments to higher-order
/// functions like transform() and filter().
class LambdaDefinitionExpression final : public RowExpression {
 public:
  LambdaDefinitionExpression(std::vector<std::string> argument_names,
                             std::vector<TypePtr> argument_types, ExprPtr body)
      : RowExpression(ExpressionKind::kLambdaDefinition, body->type()),
        argument_names_(std::move(argument_names)),
        argument_types_(std::move(argument_types)),
        body_(std::move(body)) {}

  const std::vector<std::string>& argument_names() const { return argument_names_; }
  const std::vector<TypePtr>& argument_types() const { return argument_types_; }
  const ExprPtr& body() const { return body_; }

  std::string ToString() const override;

  static ExprPtr Make(std::vector<std::string> argument_names,
                      std::vector<TypePtr> argument_types, ExprPtr body) {
    return std::make_shared<LambdaDefinitionExpression>(
        std::move(argument_names), std::move(argument_types), std::move(body));
  }

 private:
  std::vector<std::string> argument_names_;
  std::vector<TypePtr> argument_types_;
  ExprPtr body_;
};

/// Collects the names of all VariableReferenceExpressions in the tree
/// (excluding lambda-bound names).
void CollectReferencedVariables(const RowExpression& expr,
                                std::vector<std::string>* out);

/// True if the expression references the given variable name.
bool ReferencesVariable(const RowExpression& expr, const std::string& name);

}  // namespace presto

#endif  // PRESTO_EXPR_EXPRESSION_H_
