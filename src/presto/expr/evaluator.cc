#include "presto/expr/evaluator.h"

#include <algorithm>

#include "presto/vector/vector_builder.h"

namespace presto {

namespace {

// Three-valued logic cell: 0=false, 1=true, 2=null.
constexpr uint8_t kFalse = 0;
constexpr uint8_t kTrue = 1;
constexpr uint8_t kNull = 2;

uint8_t BoolCell(const Vector& v, size_t row) {
  if (v.IsNull(row)) return kNull;
  return static_cast<const BoolVector&>(v).ValueAt(row) != 0 ? kTrue : kFalse;
}

VectorPtr MakeBoolVectorWithNulls(std::vector<uint8_t> cells) {
  size_t n = cells.size();
  std::vector<uint8_t> values(n), nulls(n, 0);
  bool any_null = false;
  for (size_t i = 0; i < n; ++i) {
    if (cells[i] == kNull) {
      nulls[i] = 1;
      any_null = true;
    } else {
      values[i] = cells[i];
    }
  }
  if (!any_null) nulls.clear();
  return std::make_shared<BoolVector>(Type::Boolean(), std::move(values),
                                      std::move(nulls));
}

// Applies an additional null mask on top of a vector (used for default null
// behaviour of scalar functions and for DEREFERENCE base nulls).
Result<VectorPtr> ApplyNullMask(const VectorPtr& vector,
                                const std::vector<uint8_t>& mask) {
  bool any = std::any_of(mask.begin(), mask.end(), [](uint8_t m) { return m != 0; });
  if (!any) return vector;
  VectorBuilder builder(vector->type());
  for (size_t i = 0; i < vector->size(); ++i) {
    if (mask[i] != 0 || vector->IsNull(i)) {
      builder.AppendNull();
    } else {
      RETURN_IF_ERROR(builder.Append(vector->GetValue(i)));
    }
  }
  return builder.Build();
}

class EvalContext {
 public:
  EvalContext(const Page& page, const std::map<std::string, int>& layout,
              const FunctionRegistry* registry)
      : page_(page), layout_(layout), registry_(registry) {}

  Result<VectorPtr> Eval(const RowExpression& expr) {
    switch (expr.expression_kind()) {
      case ExpressionKind::kConstant: {
        const auto& c = static_cast<const ConstantExpression&>(expr);
        return MakeConstantVector(c.value(), c.type(), page_.num_rows());
      }
      case ExpressionKind::kVariableReference: {
        const auto& var = static_cast<const VariableReferenceExpression&>(expr);
        auto it = layout_.find(var.name());
        if (it == layout_.end()) {
          return Status::Internal("variable not in layout: " + var.name());
        }
        return Vector::Flatten(page_.column(it->second));
      }
      case ExpressionKind::kCall:
        return EvalCall(static_cast<const CallExpression&>(expr));
      case ExpressionKind::kSpecialForm:
        return EvalSpecialForm(static_cast<const SpecialFormExpression&>(expr));
      case ExpressionKind::kLambdaDefinition:
        return Status::UserError(
            "lambda must appear as an argument of a higher-order function");
    }
    return Status::Internal("unknown expression kind");
  }

 private:
  Result<VectorPtr> EvalCall(const CallExpression& call) {
    const std::string& name = call.function_name();
    if (name == "transform" || name == "filter") {
      return EvalHigherOrder(call);
    }
    std::vector<VectorPtr> args;
    args.reserve(call.arguments().size());
    for (const ExprPtr& arg : call.arguments()) {
      ASSIGN_OR_RETURN(VectorPtr v, Eval(*arg));
      args.push_back(std::move(v));
    }
    ASSIGN_OR_RETURN(ScalarFunction fn, registry_->FindScalar(call.handle()));
    if (!fn.default_null_behavior) {
      return fn.impl(args, page_.num_rows());
    }
    // Default null behaviour: null out rows where any argument is null.
    std::vector<uint8_t> mask(page_.num_rows(), 0);
    for (const VectorPtr& arg : args) {
      for (size_t i = 0; i < page_.num_rows(); ++i) {
        if (arg->IsNull(i)) mask[i] = 1;
      }
    }
    ASSIGN_OR_RETURN(VectorPtr result, fn.impl(args, page_.num_rows()));
    return ApplyNullMask(result, mask);
  }

  Result<VectorPtr> EvalHigherOrder(const CallExpression& call) {
    if (call.arguments().size() != 2 ||
        call.arguments()[1]->expression_kind() != ExpressionKind::kLambdaDefinition) {
      return Status::UserError(call.function_name() +
                               " expects (array, lambda) arguments");
    }
    ASSIGN_OR_RETURN(VectorPtr array_any, Eval(*call.arguments()[0]));
    if (array_any->type()->kind() != TypeKind::kArray) {
      return Status::UserError(call.function_name() + " expects an ARRAY");
    }
    const auto* array = static_cast<const ArrayVector*>(array_any.get());
    const auto& lambda = static_cast<const LambdaDefinitionExpression&>(
        *call.arguments()[1]);
    if (lambda.argument_names().size() != 1) {
      return Status::UserError("lambda must take exactly one argument");
    }
    ASSIGN_OR_RETURN(VectorPtr elements, Vector::Flatten(array->elements()));
    // Evaluate the lambda body over the elements vector.
    Page element_page({elements});
    std::map<std::string, int> element_layout{{lambda.argument_names()[0], 0}};
    EvalContext body_context(element_page, element_layout, registry_);
    ASSIGN_OR_RETURN(VectorPtr body_result, body_context.Eval(*lambda.body()));

    size_t n = array->size();
    if (call.function_name() == "transform") {
      std::vector<int32_t> offsets(n), lengths(n);
      std::vector<uint8_t> nulls(n, 0);
      bool any_null = false;
      for (size_t i = 0; i < n; ++i) {
        offsets[i] = array->OffsetAt(i);
        lengths[i] = array->LengthAt(i);
        if (array->IsNull(i)) {
          nulls[i] = 1;
          any_null = true;
        }
      }
      if (!any_null) nulls.clear();
      return VectorPtr(std::make_shared<ArrayVector>(
          Type::Array(body_result->type()), std::move(offsets), std::move(lengths),
          std::move(body_result), std::move(nulls)));
    }
    // filter: keep elements whose predicate is true.
    std::vector<int32_t> kept_rows, offsets(n), lengths(n);
    std::vector<uint8_t> nulls(n, 0);
    bool any_null = false;
    for (size_t i = 0; i < n; ++i) {
      offsets[i] = static_cast<int32_t>(kept_rows.size());
      int32_t kept = 0;
      if (array->IsNull(i)) {
        nulls[i] = 1;
        any_null = true;
      } else {
        for (int32_t j = 0; j < array->LengthAt(i); ++j) {
          int32_t row = array->OffsetAt(i) + j;
          if (BoolCell(*body_result, row) == kTrue) {
            kept_rows.push_back(row);
            ++kept;
          }
        }
      }
      lengths[i] = kept;
    }
    if (!any_null) nulls.clear();
    return VectorPtr(std::make_shared<ArrayVector>(
        array_any->type(), std::move(offsets), std::move(lengths),
        elements->Slice(kept_rows), std::move(nulls)));
  }

  Result<VectorPtr> EvalSpecialForm(const SpecialFormExpression& form) {
    size_t n = page_.num_rows();
    switch (form.form()) {
      case SpecialFormKind::kAnd:
      case SpecialFormKind::kOr: {
        bool is_and = form.form() == SpecialFormKind::kAnd;
        std::vector<uint8_t> acc(n, is_and ? kTrue : kFalse);
        for (const ExprPtr& arg : form.arguments()) {
          ASSIGN_OR_RETURN(VectorPtr v, Eval(*arg));
          for (size_t i = 0; i < n; ++i) {
            uint8_t cell = BoolCell(*v, i);
            if (is_and) {
              // false dominates, then null.
              if (acc[i] == kFalse || cell == kFalse) {
                acc[i] = kFalse;
              } else if (acc[i] == kNull || cell == kNull) {
                acc[i] = kNull;
              }
            } else {
              if (acc[i] == kTrue || cell == kTrue) {
                acc[i] = kTrue;
              } else if (acc[i] == kNull || cell == kNull) {
                acc[i] = kNull;
              }
            }
          }
        }
        return MakeBoolVectorWithNulls(std::move(acc));
      }
      case SpecialFormKind::kNot: {
        ASSIGN_OR_RETURN(VectorPtr v, Eval(*form.arguments()[0]));
        std::vector<uint8_t> cells(n);
        for (size_t i = 0; i < n; ++i) {
          uint8_t cell = BoolCell(*v, i);
          cells[i] = cell == kNull ? kNull : (cell == kTrue ? kFalse : kTrue);
        }
        return MakeBoolVectorWithNulls(std::move(cells));
      }
      case SpecialFormKind::kIsNull: {
        ASSIGN_OR_RETURN(VectorPtr v, Eval(*form.arguments()[0]));
        std::vector<uint8_t> values(n);
        for (size_t i = 0; i < n; ++i) values[i] = v->IsNull(i) ? 1 : 0;
        return MakeBooleanVector(std::move(values));
      }
      case SpecialFormKind::kIn: {
        ASSIGN_OR_RETURN(VectorPtr needle, Eval(*form.arguments()[0]));
        std::vector<VectorPtr> candidates;
        for (size_t a = 1; a < form.arguments().size(); ++a) {
          ASSIGN_OR_RETURN(VectorPtr c, Eval(*form.arguments()[a]));
          candidates.push_back(std::move(c));
        }
        std::vector<uint8_t> cells(n, kFalse);
        for (size_t i = 0; i < n; ++i) {
          if (needle->IsNull(i)) {
            cells[i] = kNull;
            continue;
          }
          for (const VectorPtr& c : candidates) {
            if (!c->IsNull(i) && needle->CompareAt(i, *c, i) == 0) {
              cells[i] = kTrue;
              break;
            }
          }
        }
        return MakeBoolVectorWithNulls(std::move(cells));
      }
      case SpecialFormKind::kIf: {
        ASSIGN_OR_RETURN(VectorPtr cond, Eval(*form.arguments()[0]));
        ASSIGN_OR_RETURN(VectorPtr then_v, Eval(*form.arguments()[1]));
        ASSIGN_OR_RETURN(VectorPtr else_v, Eval(*form.arguments()[2]));
        VectorBuilder builder(form.type());
        for (size_t i = 0; i < n; ++i) {
          const VectorPtr& pick = BoolCell(*cond, i) == kTrue ? then_v : else_v;
          RETURN_IF_ERROR(builder.Append(pick->GetValue(i)));
        }
        return builder.Build();
      }
      case SpecialFormKind::kCoalesce: {
        std::vector<VectorPtr> args;
        for (const ExprPtr& arg : form.arguments()) {
          ASSIGN_OR_RETURN(VectorPtr v, Eval(*arg));
          args.push_back(std::move(v));
        }
        VectorBuilder builder(form.type());
        for (size_t i = 0; i < n; ++i) {
          bool done = false;
          for (const VectorPtr& arg : args) {
            if (!arg->IsNull(i)) {
              RETURN_IF_ERROR(builder.Append(arg->GetValue(i)));
              done = true;
              break;
            }
          }
          if (!done) builder.AppendNull();
        }
        return builder.Build();
      }
      case SpecialFormKind::kDereference: {
        ASSIGN_OR_RETURN(VectorPtr base_any, Eval(*form.arguments()[0]));
        if (base_any->type()->kind() != TypeKind::kRow) {
          return Status::Internal("DEREFERENCE base is not a ROW");
        }
        const auto* base = static_cast<const RowVector*>(base_any.get());
        ASSIGN_OR_RETURN(VectorPtr child,
                         Vector::Flatten(base->child(form.field_index())));
        // Rows where the struct itself is null yield null fields.
        std::vector<uint8_t> mask(n, 0);
        bool any = false;
        for (size_t i = 0; i < n; ++i) {
          if (base->IsNull(i)) {
            mask[i] = 1;
            any = true;
          }
        }
        if (!any) return child;
        return ApplyNullMask(child, mask);
      }
      case SpecialFormKind::kCast: {
        ASSIGN_OR_RETURN(VectorPtr input, Eval(*form.arguments()[0]));
        return EvalCast(*input, form.type());
      }
    }
    return Status::Internal("unknown special form");
  }

  Result<VectorPtr> EvalCast(const Vector& input, const TypePtr& target) {
    size_t n = input.size();
    VectorBuilder builder(target);
    for (size_t i = 0; i < n; ++i) {
      if (input.IsNull(i)) {
        builder.AppendNull();
        continue;
      }
      Value v = input.GetValue(i);
      switch (target->kind()) {
        case TypeKind::kBigint:
        case TypeKind::kInteger:
        case TypeKind::kTimestamp:
          if (v.is_int()) {
            builder.AppendBigint(v.int_value());
          } else if (v.is_double()) {
            builder.AppendBigint(static_cast<int64_t>(v.double_value()));
          } else if (v.is_bool()) {
            builder.AppendBigint(v.bool_value() ? 1 : 0);
          } else if (v.is_string()) {
            char* end = nullptr;
            const std::string& s = v.string_value();
            long long parsed = std::strtoll(s.c_str(), &end, 10);
            if (end == s.c_str() + s.size() && !s.empty()) {
              builder.AppendBigint(parsed);
            } else {
              builder.AppendNull();  // unparseable cast yields NULL
            }
          } else {
            return Status::UserError("cannot cast to " + target->ToString());
          }
          break;
        case TypeKind::kDouble:
          if (v.is_int() || v.is_double()) {
            builder.AppendDouble(v.AsDouble());
          } else if (v.is_string()) {
            char* end = nullptr;
            const std::string& s = v.string_value();
            double parsed = std::strtod(s.c_str(), &end);
            if (end == s.c_str() + s.size() && !s.empty()) {
              builder.AppendDouble(parsed);
            } else {
              builder.AppendNull();
            }
          } else {
            return Status::UserError("cannot cast to DOUBLE");
          }
          break;
        case TypeKind::kVarchar:
          if (v.is_string()) {
            builder.AppendString(v.string_value());
          } else if (v.is_int()) {
            builder.AppendString(std::to_string(v.int_value()));
          } else if (v.is_double()) {
            builder.AppendString(std::to_string(v.double_value()));
          } else if (v.is_bool()) {
            builder.AppendString(v.bool_value() ? "true" : "false");
          } else {
            return Status::UserError("cannot cast to VARCHAR");
          }
          break;
        case TypeKind::kBoolean:
          if (v.is_bool()) {
            builder.AppendBool(v.bool_value());
          } else if (v.is_int()) {
            builder.AppendBool(v.int_value() != 0);
          } else {
            return Status::UserError("cannot cast to BOOLEAN");
          }
          break;
        default:
          return Status::UserError("unsupported cast target: " + target->ToString());
      }
    }
    return builder.Build();
  }

  const Page& page_;
  const std::map<std::string, int>& layout_;
  const FunctionRegistry* registry_;
};

}  // namespace

Result<VectorPtr> MakeConstantVector(const Value& value, const TypePtr& type,
                                     size_t n) {
  VectorBuilder builder(type);
  for (size_t i = 0; i < n; ++i) {
    RETURN_IF_ERROR(builder.Append(value));
  }
  return builder.Build();
}

Result<VectorPtr> Evaluator::Eval(const Page& input) const {
  EvalContext context(input, layout_, registry_);
  return context.Eval(*expr_);
}

Result<VectorPtr> Evaluator::EvalExpression(const RowExpression& expr,
                                            const Page& input,
                                            const std::map<std::string, int>& layout,
                                            const FunctionRegistry* registry) {
  EvalContext context(input, layout, registry);
  return context.Eval(expr);
}

Result<std::vector<int32_t>> EvalPredicate(
    const RowExpression& predicate, const Page& input,
    const std::map<std::string, int>& layout, const FunctionRegistry* registry) {
  if (predicate.type()->kind() != TypeKind::kBoolean) {
    return Status::UserError("predicate must be BOOLEAN, got " +
                             predicate.type()->ToString());
  }
  ASSIGN_OR_RETURN(VectorPtr result,
                   Evaluator::EvalExpression(predicate, input, layout, registry));
  std::vector<int32_t> rows;
  for (size_t i = 0; i < result->size(); ++i) {
    if (!result->IsNull(i) &&
        static_cast<const BoolVector&>(*result).ValueAt(i) != 0) {
      rows.push_back(static_cast<int32_t>(i));
    }
  }
  return rows;
}

}  // namespace presto
