#ifndef PRESTO_EXPR_EVALUATOR_H_
#define PRESTO_EXPR_EVALUATOR_H_

#include <map>
#include <string>

#include "presto/expr/expression.h"
#include "presto/expr/function_registry.h"
#include "presto/vector/page.h"

namespace presto {

/// Vectorized evaluator for RowExpressions over Pages. The layout maps
/// variable names to input column channels. Lambdas appearing as arguments
/// of the higher-order functions transform() and filter() are evaluated over
/// the element vectors of their array argument.
class Evaluator {
 public:
  Evaluator(ExprPtr expr, std::map<std::string, int> layout,
            const FunctionRegistry* registry = &FunctionRegistry::Default())
      : expr_(std::move(expr)), layout_(std::move(layout)), registry_(registry) {}

  const ExprPtr& expression() const { return expr_; }

  /// Evaluates the expression over all rows of the page.
  Result<VectorPtr> Eval(const Page& input) const;

  /// Evaluates an arbitrary expression against a page with the given layout
  /// (one-shot convenience).
  static Result<VectorPtr> EvalExpression(
      const RowExpression& expr, const Page& input,
      const std::map<std::string, int>& layout,
      const FunctionRegistry* registry = &FunctionRegistry::Default());

 private:
  ExprPtr expr_;
  std::map<std::string, int> layout_;
  const FunctionRegistry* registry_;
};

/// Builds a flat vector holding `n` copies of `value`.
Result<VectorPtr> MakeConstantVector(const Value& value, const TypePtr& type,
                                     size_t n);

/// Evaluates a boolean predicate and returns the indices of rows where it is
/// true (NULL counts as false, per SQL WHERE semantics).
Result<std::vector<int32_t>> EvalPredicate(
    const RowExpression& predicate, const Page& input,
    const std::map<std::string, int>& layout,
    const FunctionRegistry* registry = &FunctionRegistry::Default());

}  // namespace presto

#endif  // PRESTO_EXPR_EVALUATOR_H_
