#include "presto/expr/serialization.h"

namespace presto {

namespace {

// Value payload tags.
constexpr uint8_t kValNull = 0;
constexpr uint8_t kValBool = 1;
constexpr uint8_t kValInt = 2;
constexpr uint8_t kValDouble = 3;
constexpr uint8_t kValString = 4;
constexpr uint8_t kValRow = 5;
constexpr uint8_t kValArray = 6;
constexpr uint8_t kValMap = 7;

void SerializeType(const TypePtr& type, ByteBuffer* out) {
  out->PutString(type->ToString());
}

Result<TypePtr> DeserializeType(ByteReader* reader) {
  ASSIGN_OR_RETURN(std::string text, reader->ReadString());
  return Type::Parse(text);
}

void SerializeHandle(const FunctionHandle& handle, ByteBuffer* out) {
  out->PutString(handle.name);
  out->PutVarint(handle.argument_types.size());
  for (const TypePtr& t : handle.argument_types) SerializeType(t, out);
  SerializeType(handle.return_type, out);
}

Result<FunctionHandle> DeserializeHandle(ByteReader* reader) {
  FunctionHandle handle;
  ASSIGN_OR_RETURN(handle.name, reader->ReadString());
  ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
  for (uint64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(TypePtr t, DeserializeType(reader));
    handle.argument_types.push_back(std::move(t));
  }
  ASSIGN_OR_RETURN(handle.return_type, DeserializeType(reader));
  return handle;
}

}  // namespace

void SerializeValue(const Value& value, ByteBuffer* out) {
  if (value.is_null()) {
    out->PutU8(kValNull);
  } else if (value.is_bool()) {
    out->PutU8(kValBool);
    out->PutU8(value.bool_value() ? 1 : 0);
  } else if (value.is_int()) {
    out->PutU8(kValInt);
    out->PutSignedVarint(value.int_value());
  } else if (value.is_double()) {
    out->PutU8(kValDouble);
    out->PutDouble(value.double_value());
  } else if (value.is_string()) {
    out->PutU8(kValString);
    out->PutString(value.string_value());
  } else if (value.is_row() || value.is_array()) {
    out->PutU8(value.is_row() ? kValRow : kValArray);
    out->PutVarint(value.children().size());
    for (const Value& child : value.children()) SerializeValue(child, out);
  } else {
    out->PutU8(kValMap);
    out->PutVarint(value.map_entries().size());
    for (const auto& [k, v] : value.map_entries()) {
      SerializeValue(k, out);
      SerializeValue(v, out);
    }
  }
}

Result<Value> DeserializeValue(ByteReader* reader) {
  ASSIGN_OR_RETURN(uint8_t tag, reader->ReadU8());
  switch (tag) {
    case kValNull:
      return Value::Null();
    case kValBool: {
      ASSIGN_OR_RETURN(uint8_t b, reader->ReadU8());
      return Value::Bool(b != 0);
    }
    case kValInt: {
      ASSIGN_OR_RETURN(int64_t v, reader->ReadSignedVarint());
      return Value::Int(v);
    }
    case kValDouble: {
      ASSIGN_OR_RETURN(double v, reader->ReadDouble());
      return Value::Double(v);
    }
    case kValString: {
      ASSIGN_OR_RETURN(std::string v, reader->ReadString());
      return Value::String(std::move(v));
    }
    case kValRow:
    case kValArray: {
      ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
      Value::RowData children;
      children.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(Value child, DeserializeValue(reader));
        children.push_back(std::move(child));
      }
      return tag == kValRow ? Value::Row(std::move(children))
                            : Value::Array(std::move(children));
    }
    case kValMap: {
      ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
      Value::MapData entries;
      entries.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(Value k, DeserializeValue(reader));
        ASSIGN_OR_RETURN(Value v, DeserializeValue(reader));
        entries.emplace_back(std::move(k), std::move(v));
      }
      return Value::Map(std::move(entries));
    }
    default:
      return Status::Corruption("unknown value tag");
  }
}

void SerializeExpression(const RowExpression& expr, ByteBuffer* out) {
  out->PutU8(static_cast<uint8_t>(expr.expression_kind()));
  switch (expr.expression_kind()) {
    case ExpressionKind::kConstant: {
      const auto& c = static_cast<const ConstantExpression&>(expr);
      SerializeType(c.type(), out);
      SerializeValue(c.value(), out);
      return;
    }
    case ExpressionKind::kVariableReference: {
      const auto& var = static_cast<const VariableReferenceExpression&>(expr);
      out->PutString(var.name());
      SerializeType(var.type(), out);
      return;
    }
    case ExpressionKind::kCall: {
      const auto& call = static_cast<const CallExpression&>(expr);
      SerializeHandle(call.handle(), out);
      out->PutVarint(call.arguments().size());
      for (const ExprPtr& arg : call.arguments()) {
        SerializeExpression(*arg, out);
      }
      return;
    }
    case ExpressionKind::kSpecialForm: {
      const auto& form = static_cast<const SpecialFormExpression&>(expr);
      out->PutU8(static_cast<uint8_t>(form.form()));
      SerializeType(form.type(), out);
      out->PutVarint(form.field_index());
      out->PutVarint(form.arguments().size());
      for (const ExprPtr& arg : form.arguments()) {
        SerializeExpression(*arg, out);
      }
      return;
    }
    case ExpressionKind::kLambdaDefinition: {
      const auto& lambda = static_cast<const LambdaDefinitionExpression&>(expr);
      out->PutVarint(lambda.argument_names().size());
      for (size_t i = 0; i < lambda.argument_names().size(); ++i) {
        out->PutString(lambda.argument_names()[i]);
        SerializeType(lambda.argument_types()[i], out);
      }
      SerializeExpression(*lambda.body(), out);
      return;
    }
  }
}

Result<ExprPtr> DeserializeExpression(ByteReader* reader) {
  ASSIGN_OR_RETURN(uint8_t kind_tag, reader->ReadU8());
  switch (static_cast<ExpressionKind>(kind_tag)) {
    case ExpressionKind::kConstant: {
      ASSIGN_OR_RETURN(TypePtr type, DeserializeType(reader));
      ASSIGN_OR_RETURN(Value value, DeserializeValue(reader));
      return ConstantExpression::Make(std::move(value), std::move(type));
    }
    case ExpressionKind::kVariableReference: {
      ASSIGN_OR_RETURN(std::string name, reader->ReadString());
      ASSIGN_OR_RETURN(TypePtr type, DeserializeType(reader));
      return ExprPtr(VariableReferenceExpression::Make(std::move(name),
                                                       std::move(type)));
    }
    case ExpressionKind::kCall: {
      ASSIGN_OR_RETURN(FunctionHandle handle, DeserializeHandle(reader));
      ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
      std::vector<ExprPtr> args;
      args.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(ExprPtr arg, DeserializeExpression(reader));
        args.push_back(std::move(arg));
      }
      return CallExpression::Make(std::move(handle), std::move(args));
    }
    case ExpressionKind::kSpecialForm: {
      ASSIGN_OR_RETURN(uint8_t form_tag, reader->ReadU8());
      ASSIGN_OR_RETURN(TypePtr type, DeserializeType(reader));
      ASSIGN_OR_RETURN(uint64_t field_index, reader->ReadVarint());
      ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
      std::vector<ExprPtr> args;
      args.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(ExprPtr arg, DeserializeExpression(reader));
        args.push_back(std::move(arg));
      }
      return SpecialFormExpression::Make(static_cast<SpecialFormKind>(form_tag),
                                         std::move(type), std::move(args),
                                         field_index);
    }
    case ExpressionKind::kLambdaDefinition: {
      ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
      std::vector<std::string> names;
      std::vector<TypePtr> types;
      for (uint64_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(std::string name, reader->ReadString());
        ASSIGN_OR_RETURN(TypePtr type, DeserializeType(reader));
        names.push_back(std::move(name));
        types.push_back(std::move(type));
      }
      ASSIGN_OR_RETURN(ExprPtr body, DeserializeExpression(reader));
      return LambdaDefinitionExpression::Make(std::move(names), std::move(types),
                                              std::move(body));
    }
  }
  return Status::Corruption("unknown expression kind tag");
}

Result<ExprPtr> CopyExpressionViaSerialization(const RowExpression& expr) {
  ByteBuffer buffer;
  SerializeExpression(expr, &buffer);
  ByteReader reader(buffer.bytes());
  return DeserializeExpression(&reader);
}

}  // namespace presto
