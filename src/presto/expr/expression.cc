#include "presto/expr/expression.h"

#include <algorithm>

namespace presto {

const char* SpecialFormKindToString(SpecialFormKind kind) {
  switch (kind) {
    case SpecialFormKind::kAnd:
      return "AND";
    case SpecialFormKind::kOr:
      return "OR";
    case SpecialFormKind::kNot:
      return "NOT";
    case SpecialFormKind::kIn:
      return "IN";
    case SpecialFormKind::kIf:
      return "IF";
    case SpecialFormKind::kIsNull:
      return "IS_NULL";
    case SpecialFormKind::kCoalesce:
      return "COALESCE";
    case SpecialFormKind::kDereference:
      return "DEREFERENCE";
    case SpecialFormKind::kCast:
      return "CAST";
  }
  return "UNKNOWN";
}

std::string FunctionHandle::ToString() const {
  std::string out = name + "(";
  for (size_t i = 0; i < argument_types.size(); ++i) {
    if (i > 0) out += ", ";
    out += argument_types[i]->ToString();
  }
  out += "):" + return_type->ToString();
  return out;
}

std::string CallExpression::ToString() const {
  std::string out = handle_.name + "(";
  for (size_t i = 0; i < arguments_.size(); ++i) {
    if (i > 0) out += ", ";
    out += arguments_[i]->ToString();
  }
  out += ")";
  return out;
}

std::string SpecialFormExpression::ToString() const {
  switch (form_) {
    case SpecialFormKind::kAnd:
    case SpecialFormKind::kOr: {
      std::string op = form_ == SpecialFormKind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < arguments_.size(); ++i) {
        if (i > 0) out += op;
        out += arguments_[i]->ToString();
      }
      out += ")";
      return out;
    }
    case SpecialFormKind::kDereference:
      return arguments_[0]->ToString() + "." +
             arguments_[0]->type()->field_name(field_index_);
    case SpecialFormKind::kCast:
      return "CAST(" + arguments_[0]->ToString() + " AS " + type()->ToString() + ")";
    case SpecialFormKind::kIsNull:
      return "(" + arguments_[0]->ToString() + " IS NULL)";
    case SpecialFormKind::kIn: {
      std::string out = "(" + arguments_[0]->ToString() + " IN (";
      for (size_t i = 1; i < arguments_.size(); ++i) {
        if (i > 1) out += ", ";
        out += arguments_[i]->ToString();
      }
      out += "))";
      return out;
    }
    default: {
      std::string out = SpecialFormKindToString(form_);
      out += "(";
      for (size_t i = 0; i < arguments_.size(); ++i) {
        if (i > 0) out += ", ";
        out += arguments_[i]->ToString();
      }
      out += ")";
      return out;
    }
  }
}

Result<ExprPtr> SpecialFormExpression::MakeDereference(ExprPtr base,
                                                       const std::string& field) {
  if (base->type()->kind() != TypeKind::kRow) {
    return Status::UserError("cannot dereference non-ROW type " +
                             base->type()->ToString());
  }
  auto index = base->type()->FindField(field);
  if (!index.has_value()) {
    return Status::UserError("no field '" + field + "' in " +
                             base->type()->ToString());
  }
  TypePtr field_type = base->type()->child(*index);
  return Make(SpecialFormKind::kDereference, std::move(field_type),
              {std::move(base)}, *index);
}

std::string LambdaDefinitionExpression::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < argument_names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += argument_names_[i];
    out += " ";
    out += argument_types_[i]->ToString();
  }
  out += ") -> " + body_->ToString();
  return out;
}

namespace {

void CollectImpl(const RowExpression& expr, std::vector<std::string>* out,
                 std::vector<std::string>* bound) {
  switch (expr.expression_kind()) {
    case ExpressionKind::kConstant:
      return;
    case ExpressionKind::kVariableReference: {
      const auto& var = static_cast<const VariableReferenceExpression&>(expr);
      if (std::find(bound->begin(), bound->end(), var.name()) == bound->end()) {
        out->push_back(var.name());
      }
      return;
    }
    case ExpressionKind::kCall: {
      const auto& call = static_cast<const CallExpression&>(expr);
      for (const ExprPtr& arg : call.arguments()) CollectImpl(*arg, out, bound);
      return;
    }
    case ExpressionKind::kSpecialForm: {
      const auto& form = static_cast<const SpecialFormExpression&>(expr);
      for (const ExprPtr& arg : form.arguments()) CollectImpl(*arg, out, bound);
      return;
    }
    case ExpressionKind::kLambdaDefinition: {
      const auto& lambda = static_cast<const LambdaDefinitionExpression&>(expr);
      size_t before = bound->size();
      for (const std::string& name : lambda.argument_names()) {
        bound->push_back(name);
      }
      CollectImpl(*lambda.body(), out, bound);
      bound->resize(before);
      return;
    }
  }
}

}  // namespace

void CollectReferencedVariables(const RowExpression& expr,
                                std::vector<std::string>* out) {
  std::vector<std::string> bound;
  CollectImpl(expr, out, &bound);
}

bool ReferencesVariable(const RowExpression& expr, const std::string& name) {
  std::vector<std::string> vars;
  CollectReferencedVariables(expr, &vars);
  return std::find(vars.begin(), vars.end(), name) != vars.end();
}

}  // namespace presto
