#ifndef PRESTO_EXPR_SERIALIZATION_H_
#define PRESTO_EXPR_SERIALIZATION_H_

#include "presto/common/bytes.h"
#include "presto/expr/expression.h"

namespace presto {

/// Binary serialization of RowExpressions. This is the property the paper
/// calls out: unlike the old AST representation, a RowExpression is fully
/// self-contained (types and FunctionHandles travel inside it), so the
/// coordinator can ship pushed-down sub-expressions to connectors — and, in
/// a real deployment, across process boundaries — without any re-resolution.
void SerializeExpression(const RowExpression& expr, ByteBuffer* out);
Result<ExprPtr> DeserializeExpression(ByteReader* reader);

/// Value serialization used by constants and by exchange/spill paths.
void SerializeValue(const Value& value, ByteBuffer* out);
Result<Value> DeserializeValue(ByteReader* reader);

/// Round-trip convenience: serialize then deserialize (used in tests and by
/// connectors that want a defensive private copy of a pushed-down filter).
Result<ExprPtr> CopyExpressionViaSerialization(const RowExpression& expr);

}  // namespace presto

#endif  // PRESTO_EXPR_SERIALIZATION_H_
