#include <cmath>
#include <set>

#include "presto/expr/function_registry.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

// ---------------------------------------------------------------------------
// Scalar helpers. The evaluator flattens arguments and (for functions with
// default null behaviour) masks null rows afterwards, so implementations can
// compute over raw values.
// ---------------------------------------------------------------------------

template <typename T>
const FlatVector<T>* AsFlat(const VectorPtr& v) {
  return static_cast<const FlatVector<T>*>(v.get());
}

template <typename In, typename Out, typename F>
Result<VectorPtr> BinaryOp(const TypePtr& out_type,
                           const std::vector<VectorPtr>& args, size_t n, F f) {
  const auto* a = AsFlat<In>(args[0]);
  const auto* b = AsFlat<In>(args[1]);
  std::vector<Out> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = f(a->ValueAt(i), b->ValueAt(i));
  return VectorPtr(std::make_shared<FlatVector<Out>>(out_type, std::move(out),
                                                     std::vector<uint8_t>{}));
}

template <typename In, typename Out, typename F>
Result<VectorPtr> UnaryOp(const TypePtr& out_type,
                          const std::vector<VectorPtr>& args, size_t n, F f) {
  const auto* a = AsFlat<In>(args[0]);
  std::vector<Out> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = f(a->ValueAt(i));
  return VectorPtr(std::make_shared<FlatVector<Out>>(out_type, std::move(out),
                                                     std::vector<uint8_t>{}));
}

// Comparison over any vector encoding via CompareAt (used for BOOLEAN and as
// a generic fallback).
template <typename F>
Result<VectorPtr> CompareOp(const std::vector<VectorPtr>& args, size_t n, F f) {
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = f(args[0]->CompareAt(i, *args[1], i)) ? 1 : 0;
  }
  return MakeBooleanVector(std::move(out));
}

void RegisterArithmetic(FunctionRegistry* r) {
  const TypePtr& b = Type::Bigint();
  const TypePtr& d = Type::Double();

  auto reg = [&](const std::string& name, const TypePtr& t, auto int_fn, auto dbl_fn) {
    (void)r->RegisterScalar(name, {b, b}, b,
                            [int_fn](const std::vector<VectorPtr>& args, size_t n) {
                              return BinaryOp<int64_t, int64_t>(Type::Bigint(), args, n, int_fn);
                            });
    (void)r->RegisterScalar(name, {d, d}, d,
                            [dbl_fn](const std::vector<VectorPtr>& args, size_t n) {
                              return BinaryOp<double, double>(Type::Double(), args, n, dbl_fn);
                            });
    (void)t;
  };
  reg("plus", b, [](int64_t x, int64_t y) { return x + y; },
      [](double x, double y) { return x + y; });
  reg("minus", b, [](int64_t x, int64_t y) { return x - y; },
      [](double x, double y) { return x - y; });
  reg("multiply", b, [](int64_t x, int64_t y) { return x * y; },
      [](double x, double y) { return x * y; });

  // Integer division/modulus by zero yields NULL (we are exception-free;
  // Presto raises DIVISION_BY_ZERO — noted in DESIGN.md).
  (void)r->RegisterScalar(
      "divide", {b, b}, b,
      [](const std::vector<VectorPtr>& args, size_t n) -> Result<VectorPtr> {
        const auto* x = AsFlat<int64_t>(args[0]);
        const auto* y = AsFlat<int64_t>(args[1]);
        std::vector<int64_t> out(n);
        std::vector<uint8_t> nulls(n, 0);
        bool any_null = false;
        for (size_t i = 0; i < n; ++i) {
          if (x->IsNull(i) || y->IsNull(i) || y->ValueAt(i) == 0) {
            nulls[i] = 1;
            any_null = true;
          } else {
            out[i] = x->ValueAt(i) / y->ValueAt(i);
          }
        }
        if (!any_null) nulls.clear();
        return VectorPtr(std::make_shared<Int64Vector>(
            Type::Bigint(), std::move(out), std::move(nulls)));
      },
      /*default_null_behavior=*/false);
  (void)r->RegisterScalar("divide", {d, d}, d,
                          [](const std::vector<VectorPtr>& args, size_t n) {
                            return BinaryOp<double, double>(
                                Type::Double(), args, n,
                                [](double x, double y) { return x / y; });
                          });
  (void)r->RegisterScalar(
      "modulus", {b, b}, b,
      [](const std::vector<VectorPtr>& args, size_t n) -> Result<VectorPtr> {
        const auto* x = AsFlat<int64_t>(args[0]);
        const auto* y = AsFlat<int64_t>(args[1]);
        std::vector<int64_t> out(n);
        std::vector<uint8_t> nulls(n, 0);
        bool any_null = false;
        for (size_t i = 0; i < n; ++i) {
          if (x->IsNull(i) || y->IsNull(i) || y->ValueAt(i) == 0) {
            nulls[i] = 1;
            any_null = true;
          } else {
            out[i] = x->ValueAt(i) % y->ValueAt(i);
          }
        }
        if (!any_null) nulls.clear();
        return VectorPtr(std::make_shared<Int64Vector>(
            Type::Bigint(), std::move(out), std::move(nulls)));
      },
      /*default_null_behavior=*/false);

  (void)r->RegisterScalar("negate", {b}, b,
                          [](const std::vector<VectorPtr>& args, size_t n) {
                            return UnaryOp<int64_t, int64_t>(
                                Type::Bigint(), args, n,
                                [](int64_t x) { return -x; });
                          });
  (void)r->RegisterScalar("negate", {d}, d,
                          [](const std::vector<VectorPtr>& args, size_t n) {
                            return UnaryOp<double, double>(
                                Type::Double(), args, n,
                                [](double x) { return -x; });
                          });
}

template <typename T>
void RegisterComparisonsFor(FunctionRegistry* r, const TypePtr& left,
                            const TypePtr& right) {
  auto reg = [&](const std::string& name, auto cmp) {
    (void)r->RegisterScalar(
        name, {left, right}, Type::Boolean(),
        [cmp](const std::vector<VectorPtr>& args, size_t n) {
          const auto* a = AsFlat<T>(args[0]);
          const auto* b = AsFlat<T>(args[1]);
          std::vector<uint8_t> out(n);
          for (size_t i = 0; i < n; ++i) {
            out[i] = cmp(a->ValueAt(i), b->ValueAt(i)) ? 1 : 0;
          }
          return Result<VectorPtr>(MakeBooleanVector(std::move(out)));
        });
  };
  reg("eq", [](const T& a, const T& b) { return a == b; });
  reg("neq", [](const T& a, const T& b) { return a != b; });
  reg("lt", [](const T& a, const T& b) { return a < b; });
  reg("lte", [](const T& a, const T& b) { return a <= b; });
  reg("gt", [](const T& a, const T& b) { return a > b; });
  reg("gte", [](const T& a, const T& b) { return a >= b; });
}

void RegisterComparisons(FunctionRegistry* r) {
  RegisterComparisonsFor<int64_t>(r, Type::Bigint(), Type::Bigint());
  RegisterComparisonsFor<double>(r, Type::Double(), Type::Double());
  RegisterComparisonsFor<std::string>(r, Type::Varchar(), Type::Varchar());
  RegisterComparisonsFor<int64_t>(r, Type::Timestamp(), Type::Timestamp());
  // Timestamps are epoch millis: comparisons against integer literals are
  // common (WHERE __time >= 3600000) and share the int64 representation.
  RegisterComparisonsFor<int64_t>(r, Type::Timestamp(), Type::Bigint());
  RegisterComparisonsFor<int64_t>(r, Type::Bigint(), Type::Timestamp());
  // BOOLEAN comparisons via generic CompareAt.
  const TypePtr& bl = Type::Boolean();
  (void)r->RegisterScalar("eq", {bl, bl}, bl,
                          [](const std::vector<VectorPtr>& args, size_t n) {
                            return CompareOp(args, n, [](int c) { return c == 0; });
                          });
  (void)r->RegisterScalar("neq", {bl, bl}, bl,
                          [](const std::vector<VectorPtr>& args, size_t n) {
                            return CompareOp(args, n, [](int c) { return c != 0; });
                          });
}

// SQL LIKE with % and _ wildcards; no escape support.
bool LikeMatch(const std::string& text, const std::string& pattern) {
  size_t ti = 0, pi = 0;
  size_t star_ti = std::string::npos, star_pi = std::string::npos;
  while (ti < text.size()) {
    if (pi < pattern.size() && (pattern[pi] == '_' || pattern[pi] == text[ti])) {
      ++ti;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_pi = pi++;
      star_ti = ti;
    } else if (star_pi != std::string::npos) {
      pi = star_pi + 1;
      ti = ++star_ti;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  return pi == pattern.size();
}

void RegisterStrings(FunctionRegistry* r) {
  const TypePtr& v = Type::Varchar();
  const TypePtr& b = Type::Bigint();

  (void)r->RegisterScalar("length", {v}, b,
                          [](const std::vector<VectorPtr>& args, size_t n) {
                            return UnaryOp<std::string, int64_t>(
                                Type::Bigint(), args, n, [](const std::string& s) {
                                  return static_cast<int64_t>(s.size());
                                });
                          });
  (void)r->RegisterScalar("lower", {v}, v,
                          [](const std::vector<VectorPtr>& args, size_t n) {
                            return UnaryOp<std::string, std::string>(
                                Type::Varchar(), args, n, [](std::string s) {
                                  for (char& c : s) c = static_cast<char>(std::tolower(c));
                                  return s;
                                });
                          });
  (void)r->RegisterScalar("upper", {v}, v,
                          [](const std::vector<VectorPtr>& args, size_t n) {
                            return UnaryOp<std::string, std::string>(
                                Type::Varchar(), args, n, [](std::string s) {
                                  for (char& c : s) c = static_cast<char>(std::toupper(c));
                                  return s;
                                });
                          });
  (void)r->RegisterScalar("concat", {v, v}, v,
                          [](const std::vector<VectorPtr>& args, size_t n) {
                            return BinaryOp<std::string, std::string>(
                                Type::Varchar(), args, n,
                                [](const std::string& a, const std::string& bb) {
                                  return a + bb;
                                });
                          });
  (void)r->RegisterScalar(
      "substr", {v, b, b}, v,
      [](const std::vector<VectorPtr>& args, size_t n) -> Result<VectorPtr> {
        const auto* s = AsFlat<std::string>(args[0]);
        const auto* start = AsFlat<int64_t>(args[1]);
        const auto* len = AsFlat<int64_t>(args[2]);
        std::vector<std::string> out(n);
        for (size_t i = 0; i < n; ++i) {
          const std::string& str = s->ValueAt(i);
          int64_t from = start->ValueAt(i);  // SQL: 1-based
          int64_t count = len->ValueAt(i);
          if (from < 1 || count < 0 ||
              from > static_cast<int64_t>(str.size())) {
            out[i] = "";
          } else {
            out[i] = str.substr(static_cast<size_t>(from - 1),
                                static_cast<size_t>(count));
          }
        }
        return VectorPtr(std::make_shared<StringVector>(
            Type::Varchar(), std::move(out), std::vector<uint8_t>{}));
      });
  (void)r->RegisterScalar("like", {v, v}, Type::Boolean(),
                          [](const std::vector<VectorPtr>& args, size_t n) {
                            const auto* s = AsFlat<std::string>(args[0]);
                            const auto* p = AsFlat<std::string>(args[1]);
                            std::vector<uint8_t> out(n);
                            for (size_t i = 0; i < n; ++i) {
                              out[i] = LikeMatch(s->ValueAt(i), p->ValueAt(i)) ? 1 : 0;
                            }
                            return Result<VectorPtr>(MakeBooleanVector(std::move(out)));
                          });
  (void)r->RegisterScalar("starts_with", {v, v}, Type::Boolean(),
                          [](const std::vector<VectorPtr>& args, size_t n) {
                            return BinaryOp<std::string, uint8_t>(
                                Type::Boolean(), args, n,
                                [](const std::string& a, const std::string& p) {
                                  return static_cast<uint8_t>(a.rfind(p, 0) == 0);
                                });
                          });
}

void RegisterMath(FunctionRegistry* r) {
  const TypePtr& b = Type::Bigint();
  const TypePtr& d = Type::Double();
  (void)r->RegisterScalar("abs", {b}, b,
                          [](const std::vector<VectorPtr>& args, size_t n) {
                            return UnaryOp<int64_t, int64_t>(
                                Type::Bigint(), args, n,
                                [](int64_t x) { return x < 0 ? -x : x; });
                          });
  (void)r->RegisterScalar("abs", {d}, d,
                          [](const std::vector<VectorPtr>& args, size_t n) {
                            return UnaryOp<double, double>(
                                Type::Double(), args, n,
                                [](double x) { return std::fabs(x); });
                          });
  auto reg1 = [&](const std::string& name, double (*fn)(double)) {
    (void)r->RegisterScalar(name, {d}, d,
                            [fn](const std::vector<VectorPtr>& args, size_t n) {
                              return UnaryOp<double, double>(Type::Double(), args, n, fn);
                            });
  };
  reg1("floor", std::floor);
  reg1("ceil", std::ceil);
  reg1("round", std::round);
  reg1("sqrt", std::sqrt);
  reg1("ln", std::log);
  reg1("exp", std::exp);
}

Result<TypePtr> ArrayOrMapArg(const std::vector<TypePtr>& args, size_t arity) {
  if (args.size() != arity || args.empty()) {
    return Status::UserError("wrong argument count");
  }
  if (args[0]->kind() != TypeKind::kArray && args[0]->kind() != TypeKind::kMap) {
    return Status::UserError("expected ARRAY or MAP argument");
  }
  return args[0];
}

void RegisterCollections(FunctionRegistry* r) {
  (void)r->RegisterGenericScalar(
      "cardinality",
      [](const std::vector<TypePtr>& args) -> Result<TypePtr> {
        RETURN_IF_ERROR(ArrayOrMapArg(args, 1).status());
        return Type::Bigint();
      },
      [](const std::vector<VectorPtr>& args, size_t n) -> Result<VectorPtr> {
        std::vector<int64_t> out(n);
        if (args[0]->type()->kind() == TypeKind::kArray) {
          const auto* arr = static_cast<const ArrayVector*>(args[0].get());
          for (size_t i = 0; i < n; ++i) out[i] = arr->LengthAt(i);
        } else {
          const auto* map = static_cast<const MapVector*>(args[0].get());
          for (size_t i = 0; i < n; ++i) out[i] = map->LengthAt(i);
        }
        return MakeBigintVector(std::move(out));
      });

  (void)r->RegisterGenericScalar(
      "contains",
      [](const std::vector<TypePtr>& args) -> Result<TypePtr> {
        if (args.size() != 2 || args[0]->kind() != TypeKind::kArray) {
          return Status::UserError("contains(ARRAY(T), T) expected");
        }
        if (!args[0]->element()->Equals(*args[1])) {
          return Status::UserError("contains element type mismatch");
        }
        return Type::Boolean();
      },
      [](const std::vector<VectorPtr>& args, size_t n) -> Result<VectorPtr> {
        const auto* arr = static_cast<const ArrayVector*>(args[0].get());
        const Vector& needle = *args[1];
        std::vector<uint8_t> out(n, 0);
        for (size_t i = 0; i < n; ++i) {
          for (int32_t j = 0; j < arr->LengthAt(i); ++j) {
            if (arr->elements()->CompareAt(arr->OffsetAt(i) + j, needle, i) == 0) {
              out[i] = 1;
              break;
            }
          }
        }
        return VectorPtr(MakeBooleanVector(std::move(out)));
      });

  (void)r->RegisterGenericScalar(
      "element_at",
      [](const std::vector<TypePtr>& args) -> Result<TypePtr> {
        if (args.size() != 2) return Status::UserError("element_at takes 2 args");
        if (args[0]->kind() == TypeKind::kArray) {
          if (args[1]->kind() != TypeKind::kBigint &&
              args[1]->kind() != TypeKind::kInteger) {
            return Status::UserError("array index must be integer");
          }
          return args[0]->element();
        }
        if (args[0]->kind() == TypeKind::kMap) {
          if (!args[0]->map_key()->Equals(*args[1])) {
            return Status::UserError("map key type mismatch");
          }
          return args[0]->map_value();
        }
        return Status::UserError("element_at expects ARRAY or MAP");
      },
      [](const std::vector<VectorPtr>& args, size_t n) -> Result<VectorPtr> {
        if (args[0]->type()->kind() == TypeKind::kArray) {
          const auto* arr = static_cast<const ArrayVector*>(args[0].get());
          const auto* idx = AsFlat<int64_t>(args[1]);
          VectorBuilder builder(arr->type()->element());
          for (size_t i = 0; i < n; ++i) {
            int64_t index = idx->ValueAt(i);  // 1-based per Presto semantics
            if (arr->IsNull(i) || index < 1 || index > arr->LengthAt(i)) {
              builder.AppendNull();
            } else {
              RETURN_IF_ERROR(builder.Append(
                  arr->elements()->GetValue(arr->OffsetAt(i) + index - 1)));
            }
          }
          return builder.Build();
        }
        const auto* map = static_cast<const MapVector*>(args[0].get());
        VectorBuilder builder(map->type()->map_value());
        for (size_t i = 0; i < n; ++i) {
          bool found = false;
          if (!map->IsNull(i)) {
            for (int32_t j = 0; j < map->LengthAt(i); ++j) {
              if (map->keys()->CompareAt(map->OffsetAt(i) + j, *args[1], i) == 0) {
                RETURN_IF_ERROR(
                    builder.Append(map->values()->GetValue(map->OffsetAt(i) + j)));
                found = true;
                break;
              }
            }
          }
          if (!found) builder.AppendNull();
        }
        return builder.Build();
      },
      /*default_null_behavior=*/false);
}

// ---------------------------------------------------------------------------
// Aggregates.
// ---------------------------------------------------------------------------

class CountAccumulator final : public Accumulator {
 public:
  void Add(const std::vector<VectorPtr>& args, size_t row) override {
    if (args.empty() || !args[0]->IsNull(row)) ++count_;
  }
  void MergeIntermediate(const Value& v) override {
    if (!v.is_null()) count_ += v.int_value();
  }
  Value Intermediate() const override { return Value::Int(count_); }
  Value Final() const override { return Value::Int(count_); }

 private:
  int64_t count_ = 0;
};

class CountIfAccumulator final : public Accumulator {
 public:
  void Add(const std::vector<VectorPtr>& args, size_t row) override {
    if (!args[0]->IsNull(row) && args[0]->GetValue(row).bool_value()) ++count_;
  }
  void MergeIntermediate(const Value& v) override {
    if (!v.is_null()) count_ += v.int_value();
  }
  Value Intermediate() const override { return Value::Int(count_); }
  Value Final() const override { return Value::Int(count_); }

 private:
  int64_t count_ = 0;
};

template <bool kIsDouble>
class SumAccumulator final : public Accumulator {
 public:
  void Add(const std::vector<VectorPtr>& args, size_t row) override {
    if (args[0]->IsNull(row)) return;
    has_input_ = true;
    if constexpr (kIsDouble) {
      sum_d_ += static_cast<const DoubleVector*>(args[0].get())->ValueAt(row);
    } else {
      sum_i_ += static_cast<const Int64Vector*>(args[0].get())->ValueAt(row);
    }
  }
  void MergeIntermediate(const Value& v) override {
    if (v.is_null()) return;
    has_input_ = true;
    if constexpr (kIsDouble) {
      sum_d_ += v.double_value();
    } else {
      sum_i_ += v.int_value();
    }
  }
  Value Intermediate() const override { return Final(); }
  Value Final() const override {
    if (!has_input_) return Value::Null();
    if constexpr (kIsDouble) {
      return Value::Double(sum_d_);
    } else {
      return Value::Int(sum_i_);
    }
  }

 private:
  int64_t sum_i_ = 0;
  double sum_d_ = 0;
  bool has_input_ = false;
};

class AvgAccumulator final : public Accumulator {
 public:
  void Add(const std::vector<VectorPtr>& args, size_t row) override {
    if (args[0]->IsNull(row)) return;
    sum_ += args[0]->GetValue(row).AsDouble();
    ++count_;
  }
  void MergeIntermediate(const Value& v) override {
    if (v.is_null()) return;
    sum_ += v.children()[0].double_value();
    count_ += v.children()[1].int_value();
  }
  Value Intermediate() const override {
    return Value::Row({Value::Double(sum_), Value::Int(count_)});
  }
  Value Final() const override {
    if (count_ == 0) return Value::Null();
    return Value::Double(sum_ / static_cast<double>(count_));
  }

 private:
  double sum_ = 0;
  int64_t count_ = 0;
};

template <bool kIsMin>
class MinMaxAccumulator final : public Accumulator {
 public:
  void Add(const std::vector<VectorPtr>& args, size_t row) override {
    if (args[0]->IsNull(row)) return;
    Update(args[0]->GetValue(row));
  }
  void MergeIntermediate(const Value& v) override {
    if (!v.is_null()) Update(v);
  }
  Value Intermediate() const override { return best_; }
  Value Final() const override { return best_; }

 private:
  void Update(const Value& v) {
    if (best_.is_null() || (kIsMin ? v.Compare(best_) < 0 : v.Compare(best_) > 0)) {
      best_ = v;
    }
  }
  Value best_;
};

/// Exact distinct count: values collected in an ordered set; the
/// intermediate state is an ARRAY of the distinct values so partial results
/// can merge across exchanges. count(DISTINCT x) maps here.
class CountDistinctAccumulator final : public Accumulator {
 public:
  void Add(const std::vector<VectorPtr>& args, size_t row) override {
    if (args[0]->IsNull(row)) return;
    Insert(args[0]->GetValue(row));
  }
  void MergeIntermediate(const Value& v) override {
    if (v.is_null()) return;
    for (const Value& element : v.children()) Insert(element);
  }
  Value Intermediate() const override {
    return Value::Array(Value::RowData(values_.begin(), values_.end()));
  }
  Value Final() const override {
    return Value::Int(static_cast<int64_t>(values_.size()));
  }

 private:
  struct Less {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) < 0;
    }
  };
  void Insert(const Value& v) { values_.insert(v); }
  std::set<Value, Less> values_;
};

/// HyperLogLog with 1024 registers (~3% standard error), matching Presto's
/// approx_distinct default accuracy class. Intermediate state is the raw
/// register bytes in a VARCHAR value.
class ApproxDistinctAccumulator final : public Accumulator {
 public:
  static constexpr int kBuckets = 1024;  // 2^10
  static constexpr int kBucketBits = 10;

  ApproxDistinctAccumulator() : registers_(kBuckets, 0) {}

  void Add(const std::vector<VectorPtr>& args, size_t row) override {
    if (args[0]->IsNull(row)) return;
    AddHash(args[0]->HashAt(row));
  }
  void MergeIntermediate(const Value& v) override {
    if (v.is_null()) return;
    const std::string& other = v.string_value();
    for (int i = 0; i < kBuckets && i < static_cast<int>(other.size()); ++i) {
      registers_[i] = std::max<uint8_t>(registers_[i],
                                        static_cast<uint8_t>(other[i]));
    }
  }
  Value Intermediate() const override {
    return Value::String(std::string(registers_.begin(), registers_.end()));
  }
  Value Final() const override {
    double alpha = 0.7213 / (1.0 + 1.079 / kBuckets);
    double sum = 0;
    int zeros = 0;
    for (uint8_t reg : registers_) {
      sum += std::ldexp(1.0, -reg);
      if (reg == 0) ++zeros;
    }
    double estimate = alpha * kBuckets * kBuckets / sum;
    if (estimate <= 2.5 * kBuckets && zeros > 0) {
      estimate = kBuckets * std::log(static_cast<double>(kBuckets) / zeros);
    }
    return Value::Int(static_cast<int64_t>(estimate + 0.5));
  }

 private:
  void AddHash(uint64_t h) {
    uint32_t bucket = static_cast<uint32_t>(h >> (64 - kBucketBits));
    uint64_t rest = h << kBucketBits;
    uint8_t rank = rest == 0 ? 64 - kBucketBits + 1
                             : static_cast<uint8_t>(__builtin_clzll(rest) + 1);
    registers_[bucket] = std::max(registers_[bucket], rank);
  }

  std::vector<uint8_t> registers_;
};

void RegisterAggregates(FunctionRegistry* r) {
  const TypePtr& b = Type::Bigint();
  const TypePtr& d = Type::Double();
  const TypePtr& v = Type::Varchar();
  const TypePtr& bl = Type::Boolean();

  auto make = [](auto* tag) {
    using T = std::remove_pointer_t<decltype(tag)>;
    return [] { return std::unique_ptr<Accumulator>(new T()); };
  };

  (void)r->RegisterAggregate("count", {}, b, b, make((CountAccumulator*)nullptr));
  for (const TypePtr& t : {b, d, v, bl}) {
    (void)r->RegisterAggregate("count", {t}, b, b, make((CountAccumulator*)nullptr));
  }
  (void)r->RegisterAggregate("count_if", {bl}, b, b,
                             make((CountIfAccumulator*)nullptr));
  (void)r->RegisterAggregate("sum", {b}, b, b,
                             make((SumAccumulator<false>*)nullptr));
  (void)r->RegisterAggregate("sum", {d}, d, d,
                             make((SumAccumulator<true>*)nullptr));
  TypePtr avg_inter = Type::Row({"sum", "count"}, {d, b});
  (void)r->RegisterAggregate("avg", {b}, d, avg_inter,
                             make((AvgAccumulator*)nullptr));
  (void)r->RegisterAggregate("avg", {d}, d, avg_inter,
                             make((AvgAccumulator*)nullptr));
  for (const TypePtr& t : {b, d, v}) {
    (void)r->RegisterAggregate("min", {t}, t, t,
                               make((MinMaxAccumulator<true>*)nullptr));
    (void)r->RegisterAggregate("max", {t}, t, t,
                               make((MinMaxAccumulator<false>*)nullptr));
  }
  for (const TypePtr& t : {b, v, d}) {
    (void)r->RegisterAggregate("approx_distinct", {t}, b, v,
                               make((ApproxDistinctAccumulator*)nullptr));
    (void)r->RegisterAggregate("count_distinct", {t}, b, Type::Array(t),
                               make((CountDistinctAccumulator*)nullptr));
  }
}

}  // namespace

void RegisterBuiltinFunctions(FunctionRegistry* registry) {
  RegisterArithmetic(registry);
  RegisterComparisons(registry);
  RegisterStrings(registry);
  RegisterMath(registry);
  RegisterCollections(registry);
  RegisterAggregates(registry);
}

}  // namespace presto
