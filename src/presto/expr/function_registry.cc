#include "presto/expr/function_registry.h"

namespace presto {

namespace {

// Implicit numeric widening lattice: INTEGER -> BIGINT -> DOUBLE.
bool CanCoerce(const Type& from, const Type& to) {
  if (from.Equals(to)) return true;
  if (from.kind() == TypeKind::kInteger &&
      (to.kind() == TypeKind::kBigint || to.kind() == TypeKind::kDouble)) {
    return true;
  }
  if (from.kind() == TypeKind::kBigint && to.kind() == TypeKind::kDouble) {
    return true;
  }
  return false;
}

}  // namespace

bool FunctionRegistry::SignatureMatches(const std::vector<TypePtr>& declared,
                                        const std::vector<TypePtr>& actual,
                                        bool exact) {
  if (declared.size() != actual.size()) return false;
  for (size_t i = 0; i < declared.size(); ++i) {
    if (exact) {
      if (!declared[i]->Equals(*actual[i])) return false;
    } else {
      if (!CanCoerce(*actual[i], *declared[i])) return false;
    }
  }
  return true;
}

Status FunctionRegistry::RegisterScalar(const std::string& name,
                                        std::vector<TypePtr> arg_types,
                                        TypePtr return_type,
                                        ScalarFunctionImpl impl,
                                        bool default_null_behavior) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ScalarFunction& existing : scalars_[name]) {
    if (SignatureMatches(existing.handle.argument_types, arg_types, /*exact=*/true)) {
      return Status::AlreadyExists("scalar function already registered: " + name);
    }
  }
  scalars_[name].push_back(ScalarFunction{
      FunctionHandle{name, std::move(arg_types), std::move(return_type)},
      std::move(impl), default_null_behavior});
  return Status::OK();
}

Status FunctionRegistry::RegisterAggregate(
    const std::string& name, std::vector<TypePtr> arg_types, TypePtr return_type,
    TypePtr intermediate_type,
    std::function<std::unique_ptr<Accumulator>()> factory) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const AggregateFunction& existing : aggregates_[name]) {
    if (SignatureMatches(existing.handle.argument_types, arg_types, /*exact=*/true)) {
      return Status::AlreadyExists("aggregate already registered: " + name);
    }
  }
  aggregates_[name].push_back(AggregateFunction{
      FunctionHandle{name, std::move(arg_types), std::move(return_type)},
      std::move(intermediate_type), std::move(factory)});
  return Status::OK();
}

Status FunctionRegistry::RegisterGenericScalar(const std::string& name,
                                               GenericResolver resolver,
                                               ScalarFunctionImpl impl,
                                               bool default_null_behavior) {
  std::lock_guard<std::mutex> lock(mu_);
  if (generic_scalars_.count(name) > 0) {
    return Status::AlreadyExists("generic scalar already registered: " + name);
  }
  generic_scalars_[name] = GenericScalar{std::move(resolver), std::move(impl),
                                         default_null_behavior};
  return Status::OK();
}

Result<FunctionHandle> FunctionRegistry::ResolveScalar(
    const std::string& name, const std::vector<TypePtr>& arg_types) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = scalars_.find(name);
  if (it != scalars_.end()) {
    for (const ScalarFunction& fn : it->second) {
      if (SignatureMatches(fn.handle.argument_types, arg_types, /*exact=*/true)) {
        return fn.handle;
      }
    }
    const ScalarFunction* coercible = nullptr;
    bool ambiguous = false;
    for (const ScalarFunction& fn : it->second) {
      if (SignatureMatches(fn.handle.argument_types, arg_types, /*exact=*/false)) {
        if (coercible != nullptr) ambiguous = true;
        coercible = &fn;
      }
    }
    if (ambiguous) {
      return Status::UserError("ambiguous call to function " + name);
    }
    if (coercible != nullptr) return coercible->handle;
  }
  auto generic = generic_scalars_.find(name);
  if (generic != generic_scalars_.end()) {
    ASSIGN_OR_RETURN(TypePtr return_type, generic->second.resolver(arg_types));
    return FunctionHandle{name, arg_types, std::move(return_type)};
  }
  std::string types;
  for (const TypePtr& t : arg_types) {
    if (!types.empty()) types += ", ";
    types += t->ToString();
  }
  return Status::UserError("no matching signature for " + name + "(" + types + ")");
}

Result<FunctionHandle> FunctionRegistry::ResolveAggregate(
    const std::string& name, const std::vector<TypePtr>& arg_types) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = aggregates_.find(name);
  if (it == aggregates_.end()) {
    return Status::UserError("unknown aggregate function: " + name);
  }
  for (const AggregateFunction& fn : it->second) {
    if (SignatureMatches(fn.handle.argument_types, arg_types, /*exact=*/true)) {
      return fn.handle;
    }
  }
  const AggregateFunction* coercible = nullptr;
  for (const AggregateFunction& fn : it->second) {
    if (SignatureMatches(fn.handle.argument_types, arg_types, /*exact=*/false)) {
      if (coercible != nullptr) {
        return Status::UserError("ambiguous call to aggregate " + name);
      }
      coercible = &fn;
    }
  }
  if (coercible == nullptr) {
    return Status::UserError("no matching signature for aggregate " + name);
  }
  return coercible->handle;
}

Result<ScalarFunction> FunctionRegistry::FindScalar(
    const FunctionHandle& handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = scalars_.find(handle.name);
  if (it != scalars_.end()) {
    for (const ScalarFunction& fn : it->second) {
      if (SignatureMatches(fn.handle.argument_types, handle.argument_types,
                           /*exact=*/true)) {
        return fn;
      }
    }
  }
  auto generic = generic_scalars_.find(handle.name);
  if (generic != generic_scalars_.end()) {
    return ScalarFunction{handle, generic->second.impl,
                          generic->second.default_null_behavior};
  }
  return Status::NotFound("no scalar function matching handle " + handle.ToString());
}

Result<const AggregateFunction*> FunctionRegistry::FindAggregate(
    const FunctionHandle& handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = aggregates_.find(handle.name);
  if (it == aggregates_.end()) {
    return Status::NotFound("no aggregate named " + handle.name);
  }
  for (const AggregateFunction& fn : it->second) {
    if (SignatureMatches(fn.handle.argument_types, handle.argument_types,
                         /*exact=*/true)) {
      return &fn;
    }
  }
  return Status::NotFound("no aggregate matching handle " + handle.ToString());
}

bool FunctionRegistry::IsAggregateName(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return aggregates_.count(name) > 0;
}

FunctionRegistry& FunctionRegistry::Default() {
  static FunctionRegistry& registry = *[] {
    auto* r = new FunctionRegistry();
    RegisterBuiltinFunctions(r);
    return r;
  }();
  return registry;
}

}  // namespace presto
