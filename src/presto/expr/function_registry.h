#ifndef PRESTO_EXPR_FUNCTION_REGISTRY_H_
#define PRESTO_EXPR_FUNCTION_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "presto/expr/expression.h"
#include "presto/vector/vector.h"

namespace presto {

/// A vectorized scalar function implementation: consumes flattened argument
/// vectors (all of length `num_rows`) and produces a result vector of the
/// same length. Implementations handle NULLs themselves unless registered
/// with default null behaviour (any-null-in → null-out), which the evaluator
/// then enforces.
using ScalarFunctionImpl = std::function<Result<VectorPtr>(
    const std::vector<VectorPtr>& args, size_t num_rows)>;

struct ScalarFunction {
  FunctionHandle handle;
  ScalarFunctionImpl impl;
  /// If true the evaluator nulls out result rows where any argument is null
  /// and the implementation may ignore null flags.
  bool default_null_behavior = true;
};

/// Per-group state of an aggregate function. The distributed engine runs
/// aggregations in two steps (partial on the scanning stage, final after the
/// exchange), so accumulators expose a serializable intermediate Value.
class Accumulator {
 public:
  virtual ~Accumulator() = default;

  /// Folds in one input row (args are the evaluated argument vectors).
  virtual void Add(const std::vector<VectorPtr>& args, size_t row) = 0;

  /// Folds in an intermediate value produced by Intermediate().
  virtual void MergeIntermediate(const Value& intermediate) = 0;

  /// Serializable partial-aggregation state.
  virtual Value Intermediate() const = 0;

  /// Final result value.
  virtual Value Final() const = 0;
};

struct AggregateFunction {
  FunctionHandle handle;       // name, input types, final return type
  TypePtr intermediate_type;   // type of Intermediate()
  std::function<std::unique_ptr<Accumulator>()> factory;
};

/// Registry of scalar and aggregate functions. Function resolution performed
/// at analysis time produces FunctionHandles stored inside RowExpressions,
/// so execution (and connectors receiving pushed-down expressions) never
/// re-resolve by name.
class FunctionRegistry {
 public:
  Status RegisterScalar(const std::string& name, std::vector<TypePtr> arg_types,
                        TypePtr return_type, ScalarFunctionImpl impl,
                        bool default_null_behavior = true);

  Status RegisterAggregate(
      const std::string& name, std::vector<TypePtr> arg_types,
      TypePtr return_type, TypePtr intermediate_type,
      std::function<std::unique_ptr<Accumulator>()> factory);

  /// Registers a type-parametric scalar (e.g. cardinality over any ARRAY).
  /// The resolver computes the return type from the actual argument types or
  /// returns an error when they do not apply.
  using GenericResolver =
      std::function<Result<TypePtr>(const std::vector<TypePtr>& arg_types)>;
  Status RegisterGenericScalar(const std::string& name, GenericResolver resolver,
                               ScalarFunctionImpl impl,
                               bool default_null_behavior = true);

  /// Resolves a scalar call by name and argument types. Exact signature
  /// match wins; otherwise a unique candidate reachable by implicit numeric
  /// widening (INTEGER→BIGINT→DOUBLE) is chosen; otherwise a generic
  /// resolver is applied. The returned handle lists the *declared* parameter
  /// types; the analyzer inserts CASTs where the actual argument types
  /// differ.
  Result<FunctionHandle> ResolveScalar(const std::string& name,
                                       const std::vector<TypePtr>& arg_types) const;

  Result<FunctionHandle> ResolveAggregate(
      const std::string& name, const std::vector<TypePtr>& arg_types) const;

  /// Looks up the implementation for a resolved handle (copies are cheap:
  /// shared std::function state).
  Result<ScalarFunction> FindScalar(const FunctionHandle& handle) const;
  Result<const AggregateFunction*> FindAggregate(const FunctionHandle& handle) const;

  bool IsAggregateName(const std::string& name) const;

  /// Process-wide registry pre-populated with the SQL builtins. Plugins
  /// (e.g. the geospatial plugin) register additional functions here.
  static FunctionRegistry& Default();

 private:
  static bool SignatureMatches(const std::vector<TypePtr>& declared,
                               const std::vector<TypePtr>& actual, bool exact);

  struct GenericScalar {
    GenericResolver resolver;
    ScalarFunctionImpl impl;
    bool default_null_behavior;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::vector<ScalarFunction>> scalars_;
  std::map<std::string, GenericScalar> generic_scalars_;
  std::map<std::string, std::vector<AggregateFunction>> aggregates_;
};

/// Registers arithmetic, comparison, string, array/map, and misc builtins.
void RegisterBuiltinFunctions(FunctionRegistry* registry);

}  // namespace presto

#endif  // PRESTO_EXPR_FUNCTION_REGISTRY_H_
