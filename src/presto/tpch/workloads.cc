#include "presto/tpch/workloads.h"

#include "presto/vector/vector_builder.h"

namespace presto {
namespace workloads {

namespace {

const char* kReturnFlags[] = {"R", "A", "N"};
const char* kLineStatus[] = {"O", "F"};
const char* kShipInstruct[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                            "FOB"};
const char* kStatuses[] = {"completed", "canceled", "driver_canceled",
                           "rider_canceled", "open"};
const char* kTags[] = {"pool", "xl", "black", "eats", "airport", "scheduled"};
const char* kMetricKeys[] = {"surge", "wait_minutes", "distance_km",
                             "duration_minutes", "rating"};

std::string DateString(Random* rng) {
  int year = 1992 + static_cast<int>(rng->NextBelow(7));
  int month = 1 + static_cast<int>(rng->NextBelow(12));
  int day = 1 + static_cast<int>(rng->NextBelow(28));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

}  // namespace

TypePtr LineitemType() {
  return Type::Row(
      {"orderkey", "partkey", "suppkey", "linenumber", "quantity",
       "extendedprice", "discount", "tax", "returnflag", "linestatus",
       "shipdate", "commitdate", "receiptdate", "shipinstruct", "shipmode",
       "comment"},
      {Type::Bigint(), Type::Bigint(), Type::Bigint(), Type::Bigint(),
       Type::Double(), Type::Double(), Type::Double(), Type::Double(),
       Type::Varchar(), Type::Varchar(), Type::Varchar(), Type::Varchar(),
       Type::Varchar(), Type::Varchar(), Type::Varchar(), Type::Varchar()});
}

Page GenerateLineitem(size_t num_rows, uint64_t seed) {
  Random rng(seed);
  TypePtr type = LineitemType();
  std::vector<VectorBuilder> builders;
  for (size_t c = 0; c < type->NumChildren(); ++c) {
    builders.emplace_back(type->child(c));
  }
  for (size_t r = 0; r < num_rows; ++r) {
    builders[0].AppendBigint(static_cast<int64_t>(r / 4 + 1));        // orderkey
    builders[1].AppendBigint(rng.NextInRange(1, 200000));             // partkey
    builders[2].AppendBigint(rng.NextInRange(1, 10000));              // suppkey
    builders[3].AppendBigint(static_cast<int64_t>(r % 4 + 1));        // linenumber
    builders[4].AppendDouble(static_cast<double>(rng.NextInRange(1, 50)));
    builders[5].AppendDouble(900.0 + rng.NextDouble() * 104000.0);    // extprice
    builders[6].AppendDouble(rng.NextBelow(11) / 100.0);              // discount
    builders[7].AppendDouble(rng.NextBelow(9) / 100.0);               // tax
    builders[8].AppendString(kReturnFlags[rng.NextBelow(3)]);
    builders[9].AppendString(kLineStatus[rng.NextBelow(2)]);
    builders[10].AppendString(DateString(&rng));
    builders[11].AppendString(DateString(&rng));
    builders[12].AppendString(DateString(&rng));
    builders[13].AppendString(kShipInstruct[rng.NextBelow(4)]);
    builders[14].AppendString(kShipModes[rng.NextBelow(7)]);
    builders[15].AppendString(rng.NextString(10 + rng.NextBelow(34)));  // comment
  }
  std::vector<VectorPtr> columns;
  for (auto& b : builders) columns.push_back(b.Build());
  return Page(std::move(columns), num_rows);
}

TypePtr TripsType() {
  TypePtr loc = Type::Row({"lng", "lat"}, {Type::Double(), Type::Double()});
  TypePtr base = Type::Row(
      {"driver_uuid", "client_uuid", "city_id", "vehicle_id", "status", "fare",
       "loc"},
      {Type::Varchar(), Type::Varchar(), Type::Bigint(), Type::Varchar(),
       Type::Varchar(), Type::Double(), loc});
  return Type::Row({"datestr", "id", "base", "tags", "metrics"},
                   {Type::Varchar(), Type::Bigint(), base,
                    Type::Array(Type::Varchar()),
                    Type::Map(Type::Varchar(), Type::Double())});
}

Page GenerateTrips(const TripsOptions& options) {
  Random rng(options.seed);
  TypePtr type = TripsType();
  VectorBuilder datestr(type->child(0));
  VectorBuilder id(type->child(1));
  VectorBuilder base(type->child(2));
  VectorBuilder tags(type->child(3));
  VectorBuilder metrics(type->child(4));

  for (size_t r = 0; r < options.num_rows; ++r) {
    datestr.AppendString(options.datestr);
    id.AppendBigint(options.first_id + static_cast<int64_t>(r));
    if (rng.NextBool(options.null_fraction)) {
      base.AppendNull();
    } else {
      int64_t driver = rng.NextBelow(options.num_drivers);
      double lng = -122.5 + rng.NextDouble();
      double lat = 37.2 + rng.NextDouble();
      Value loc = Value::Row({Value::Double(lng), Value::Double(lat)});
      Value fare = rng.NextBool(options.null_fraction)
                       ? Value::Null()
                       : Value::Double(2.5 + rng.NextDouble() * 80.0);
      int64_t city = options.city_cluster_run > 0
                         ? static_cast<int64_t>(r / options.city_cluster_run) %
                               options.num_cities
                         : static_cast<int64_t>(rng.NextBelow(options.num_cities));
      (void)base.Append(Value::Row(
          {Value::String("driver-" + std::to_string(driver)),
           Value::String("client-" + std::to_string(rng.NextBelow(100000))),
           Value::Int(city),
           Value::String("vehicle-" + std::to_string(rng.NextBelow(20000))),
           Value::String(kStatuses[rng.NextBelow(5)]), fare, loc}));
    }
    if (rng.NextBool(options.null_fraction)) {
      tags.AppendNull();
    } else {
      Value::RowData elements;
      size_t n = rng.NextBelow(4);
      for (size_t i = 0; i < n; ++i) {
        elements.push_back(Value::String(kTags[rng.NextBelow(6)]));
      }
      (void)tags.Append(Value::Array(std::move(elements)));
    }
    if (rng.NextBool(options.null_fraction)) {
      metrics.AppendNull();
    } else {
      Value::MapData entries;
      size_t n = 1 + rng.NextBelow(4);
      for (size_t i = 0; i < n; ++i) {
        entries.emplace_back(Value::String(kMetricKeys[rng.NextBelow(5)]),
                             Value::Double(rng.NextDouble() * 30.0));
      }
      (void)metrics.Append(Value::Map(std::move(entries)));
    }
  }
  return Page({datestr.Build(), id.Build(), base.Build(), tags.Build(),
               metrics.Build()});
}

std::vector<WriterDataset> WriterBenchDatasets(size_t rows, uint64_t seed) {
  Random rng(seed);
  std::vector<WriterDataset> out;

  auto add = [&](const std::string& name, const TypePtr& column_type,
                 auto&& fill) {
    TypePtr schema = Type::Row({"c0"}, {column_type});
    VectorBuilder builder(column_type);
    fill(builder);
    out.push_back(WriterDataset{name, schema, Page({builder.Build()})});
  };

  // 1. All LineItem columns (multi-column, handled specially).
  out.push_back(
      WriterDataset{"All LineItem columns", LineitemType(), GenerateLineitem(rows, seed)});

  // 2/3. Bigint sequential / random.
  add("Bigint Sequential", Type::Bigint(), [&](VectorBuilder& b) {
    for (size_t i = 0; i < rows; ++i) b.AppendBigint(static_cast<int64_t>(i));
  });
  add("Bigint Random", Type::Bigint(), [&](VectorBuilder& b) {
    for (size_t i = 0; i < rows; ++i) {
      b.AppendBigint(static_cast<int64_t>(rng.Next()));
    }
  });

  // 4/5/6. Varchars: small, large, dictionary-friendly.
  add("Small Varchar", Type::Varchar(), [&](VectorBuilder& b) {
    for (size_t i = 0; i < rows; ++i) b.AppendString(rng.NextString(8));
  });
  add("Large Varchar", Type::Varchar(), [&](VectorBuilder& b) {
    for (size_t i = 0; i < rows; ++i) b.AppendString(rng.NextString(120));
  });
  add("Varchar Dictionary", Type::Varchar(), [&](VectorBuilder& b) {
    for (size_t i = 0; i < rows; ++i) {
      b.AppendString("status-" + std::to_string(rng.NextBelow(16)));
    }
  });

  // 7-10. Maps.
  TypePtr map_vd = Type::Map(Type::Varchar(), Type::Double());
  add("Map Varchar To Double", map_vd, [&](VectorBuilder& b) {
    for (size_t i = 0; i < rows; ++i) {
      Value::MapData entries;
      for (size_t e = 0; e < 3; ++e) {
        entries.emplace_back(Value::String(rng.NextString(6)),
                             Value::Double(rng.NextDouble()));
      }
      (void)b.Append(Value::Map(std::move(entries)));
    }
  });
  add("Large Map Varchar To Double", map_vd, [&](VectorBuilder& b) {
    for (size_t i = 0; i < rows; ++i) {
      Value::MapData entries;
      for (size_t e = 0; e < 20; ++e) {
        entries.emplace_back(Value::String(rng.NextString(12)),
                             Value::Double(rng.NextDouble()));
      }
      (void)b.Append(Value::Map(std::move(entries)));
    }
  });
  TypePtr map_id = Type::Map(Type::Bigint(), Type::Double());
  add("Map Int To Double", map_id, [&](VectorBuilder& b) {
    for (size_t i = 0; i < rows; ++i) {
      Value::MapData entries;
      for (size_t e = 0; e < 3; ++e) {
        entries.emplace_back(Value::Int(rng.NextInRange(0, 1000)),
                             Value::Double(rng.NextDouble()));
      }
      (void)b.Append(Value::Map(std::move(entries)));
    }
  });
  add("Large Map Int To Double", map_id, [&](VectorBuilder& b) {
    for (size_t i = 0; i < rows; ++i) {
      Value::MapData entries;
      for (size_t e = 0; e < 20; ++e) {
        entries.emplace_back(Value::Int(rng.NextInRange(0, 100000)),
                             Value::Double(rng.NextDouble()));
      }
      (void)b.Append(Value::Map(std::move(entries)));
    }
  });

  // 11. Array Varchar.
  add("Array Varchar", Type::Array(Type::Varchar()), [&](VectorBuilder& b) {
    for (size_t i = 0; i < rows; ++i) {
      Value::RowData elements;
      for (size_t e = 0; e < 4; ++e) {
        elements.push_back(Value::String(rng.NextString(10)));
      }
      (void)b.Append(Value::Array(std::move(elements)));
    }
  });

  return out;
}

}  // namespace workloads
}  // namespace presto
