#ifndef PRESTO_TPCH_WORKLOADS_H_
#define PRESTO_TPCH_WORKLOADS_H_

#include <string>
#include <vector>

#include "presto/common/random.h"
#include "presto/vector/page.h"

namespace presto {
namespace workloads {

/// TPC-H-style LINEITEM generator (all 16 columns), used by the writer
/// throughput benchmark's "All LineItem columns" dataset and by examples.
TypePtr LineitemType();
Page GenerateLineitem(size_t num_rows, uint64_t seed = 1);

/// Uber-style nested trip records (paper Section V): a wide `base` struct
/// with a further-nested location struct, plus tags and metrics — the
/// shape the new Parquet reader was built for.
///
///   trips(
///     datestr VARCHAR,               -- partition-style date
///     id BIGINT,
///     base ROW(driver_uuid VARCHAR, client_uuid VARCHAR, city_id BIGINT,
///              vehicle_id VARCHAR, status VARCHAR, fare DOUBLE,
///              loc ROW(lng DOUBLE, lat DOUBLE)),
///     tags ARRAY(VARCHAR),
///     metrics MAP(VARCHAR, DOUBLE))
struct TripsOptions {
  size_t num_rows = 10000;
  int64_t num_cities = 200;
  int64_t num_drivers = 5000;
  double null_fraction = 0.02;
  std::string datestr = "2017-03-02";
  uint64_t seed = 7;
  /// Rows per city run. Production ingest clusters trips by city; clustered
  /// city ids give row groups tight min/max city ranges, which is what makes
  /// predicate pushdown skip row groups on needle-in-a-haystack queries.
  /// 0 = fully random city ids.
  size_t city_cluster_run = 0;
  /// Starting value for the id column (ids are sequential).
  int64_t first_id = 0;
};

TypePtr TripsType();
Page GenerateTrips(const TripsOptions& options);

/// The twelve datasets of the writer-throughput figures (18/19/20). Each is
/// a single-column table whose name matches the paper's x-axis label.
struct WriterDataset {
  std::string name;   // e.g. "Bigint Random", "Map Varchar To Double"
  TypePtr schema;     // single-column ROW
  Page page;
};

std::vector<WriterDataset> WriterBenchDatasets(size_t rows_per_dataset,
                                               uint64_t seed = 3);

}  // namespace workloads
}  // namespace presto

#endif  // PRESTO_TPCH_WORKLOADS_H_
