#ifndef PRESTO_VECTOR_VECTOR_H_
#define PRESTO_VECTOR_VECTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "presto/common/hash.h"
#include "presto/common/status.h"
#include "presto/types/type.h"
#include "presto/types/value.h"

namespace presto {

class Vector;
using VectorPtr = std::shared_ptr<Vector>;

/// Physical encodings of an in-memory column. "Presto is a vectorized
/// engine, which processes a bunch of in-memory encoded column values
/// vectorized, instead of row by row" (Section III).
enum class VectorEncoding {
  kFlat,        // contiguous values + null flags
  kDictionary,  // int32 indices into a base vector
  kLazy,        // loads on demand (lazy reads, Section V.H)
};

/// A column of `size()` rows. The engine passes Pages (bundles of equally
/// sized vectors) between operators.
class Vector {
 public:
  virtual ~Vector() = default;

  Vector(const Vector&) = delete;
  Vector& operator=(const Vector&) = delete;

  const TypePtr& type() const { return type_; }
  size_t size() const { return size_; }
  virtual VectorEncoding encoding() const = 0;

  virtual bool IsNull(size_t row) const = 0;

  /// Boxes row `row` as a Value. This is the slow row-by-row path — used by
  /// result output, tests, and deliberately by the "old reader"/"old writer"
  /// baselines.
  virtual Value GetValue(size_t row) const = 0;

  /// Hash of row `row`, consistent with CompareAt equality.
  virtual uint64_t HashAt(size_t row) const { return GetValue(row).Hash(); }

  /// Batch hashing: hashes every row into `out` (size() entries). When
  /// `combine` is set, out[i] = HashCombine(out[i], hash(i)) — used to fold
  /// multi-column keys without a per-row virtual call per column. Flat and
  /// dictionary vectors override this with tight loops; the base
  /// implementation falls back to HashAt.
  virtual void HashBatch(uint64_t* out, bool combine) const;

  /// Three-way comparison between this[row] and other[other_row].
  virtual int CompareAt(size_t row, const Vector& other,
                        size_t other_row) const {
    return GetValue(row).Compare(other.GetValue(other_row));
  }

  /// Gathers the given rows into a new vector (indices must be < size()).
  virtual VectorPtr Slice(const std::vector<int32_t>& rows) const = 0;

  /// Approximate in-memory payload size, used for operator byte counters
  /// (OperatorStats::output_bytes). Unloaded lazy vectors report 0 — bytes
  /// count only once something materializes.
  virtual int64_t EstimateBytes() const;

  /// Returns an equivalent kFlat vector, resolving dictionary indirection
  /// and loading lazy vectors. Flat vectors return themselves.
  static Result<VectorPtr> Flatten(const VectorPtr& vector);

  std::string ToString(size_t max_rows = 16) const;

 protected:
  Vector(TypePtr type, size_t size) : type_(std::move(type)), size_(size) {}

  TypePtr type_;
  size_t size_;
};

/// Flat scalar vector. T is one of: uint8_t (BOOLEAN), int64_t (INTEGER /
/// BIGINT / TIMESTAMP), double, std::string.
template <typename T>
class FlatVector final : public Vector {
 public:
  FlatVector(TypePtr type, std::vector<T> values, std::vector<uint8_t> nulls)
      : Vector(std::move(type), values.size()),
        values_(std::move(values)),
        nulls_(std::move(nulls)) {}

  VectorEncoding encoding() const override { return VectorEncoding::kFlat; }

  bool IsNull(size_t row) const override {
    return !nulls_.empty() && nulls_[row] != 0;
  }

  const T& ValueAt(size_t row) const { return values_[row]; }
  const std::vector<T>& values() const { return values_; }
  std::vector<T>& mutable_values() { return values_; }
  bool has_nulls() const { return !nulls_.empty(); }
  /// Raw null flags for kernel loops; nullptr when there are no nulls.
  const uint8_t* raw_nulls() const {
    return nulls_.empty() ? nullptr : nulls_.data();
  }

  Value GetValue(size_t row) const override;
  uint64_t HashAt(size_t row) const override;
  void HashBatch(uint64_t* out, bool combine) const override;
  int CompareAt(size_t row, const Vector& other, size_t other_row) const override;
  VectorPtr Slice(const std::vector<int32_t>& rows) const override;
  int64_t EstimateBytes() const override;

 private:
  std::vector<T> values_;
  std::vector<uint8_t> nulls_;  // empty means "no nulls"
};

using BoolVector = FlatVector<uint8_t>;
using Int64Vector = FlatVector<int64_t>;
using DoubleVector = FlatVector<double>;
using StringVector = FlatVector<std::string>;

/// Struct-of-vectors for ROW typed columns: one child vector per field, all
/// with the same size, plus top-level nulls.
class RowVector final : public Vector {
 public:
  RowVector(TypePtr type, size_t size, std::vector<VectorPtr> children,
            std::vector<uint8_t> nulls = {})
      : Vector(std::move(type), size),
        children_(std::move(children)),
        nulls_(std::move(nulls)) {}

  VectorEncoding encoding() const override { return VectorEncoding::kFlat; }

  bool IsNull(size_t row) const override {
    return !nulls_.empty() && nulls_[row] != 0;
  }

  size_t NumChildren() const { return children_.size(); }
  const VectorPtr& child(size_t i) const { return children_[i]; }
  const std::vector<VectorPtr>& children() const { return children_; }

  Value GetValue(size_t row) const override;
  VectorPtr Slice(const std::vector<int32_t>& rows) const override;
  int64_t EstimateBytes() const override;

 private:
  std::vector<VectorPtr> children_;
  std::vector<uint8_t> nulls_;
};

/// ARRAY column: per-row [offset, offset+length) ranges into an elements
/// vector.
class ArrayVector final : public Vector {
 public:
  ArrayVector(TypePtr type, std::vector<int32_t> offsets,
              std::vector<int32_t> lengths, VectorPtr elements,
              std::vector<uint8_t> nulls = {})
      : Vector(std::move(type), offsets.size()),
        offsets_(std::move(offsets)),
        lengths_(std::move(lengths)),
        elements_(std::move(elements)),
        nulls_(std::move(nulls)) {}

  VectorEncoding encoding() const override { return VectorEncoding::kFlat; }

  bool IsNull(size_t row) const override {
    return !nulls_.empty() && nulls_[row] != 0;
  }

  int32_t OffsetAt(size_t row) const { return offsets_[row]; }
  int32_t LengthAt(size_t row) const { return lengths_[row]; }
  const VectorPtr& elements() const { return elements_; }

  Value GetValue(size_t row) const override;
  VectorPtr Slice(const std::vector<int32_t>& rows) const override;
  int64_t EstimateBytes() const override;

 private:
  std::vector<int32_t> offsets_;
  std::vector<int32_t> lengths_;
  VectorPtr elements_;
  std::vector<uint8_t> nulls_;
};

/// MAP column: per-row ranges into parallel keys/values vectors.
class MapVector final : public Vector {
 public:
  MapVector(TypePtr type, std::vector<int32_t> offsets,
            std::vector<int32_t> lengths, VectorPtr keys, VectorPtr values,
            std::vector<uint8_t> nulls = {})
      : Vector(std::move(type), offsets.size()),
        offsets_(std::move(offsets)),
        lengths_(std::move(lengths)),
        keys_(std::move(keys)),
        values_(std::move(values)),
        nulls_(std::move(nulls)) {}

  VectorEncoding encoding() const override { return VectorEncoding::kFlat; }

  bool IsNull(size_t row) const override {
    return !nulls_.empty() && nulls_[row] != 0;
  }

  int32_t OffsetAt(size_t row) const { return offsets_[row]; }
  int32_t LengthAt(size_t row) const { return lengths_[row]; }
  const VectorPtr& keys() const { return keys_; }
  const VectorPtr& values() const { return values_; }

  Value GetValue(size_t row) const override;
  VectorPtr Slice(const std::vector<int32_t>& rows) const override;
  int64_t EstimateBytes() const override;

 private:
  std::vector<int32_t> offsets_;
  std::vector<int32_t> lengths_;
  VectorPtr keys_;
  VectorPtr values_;
  std::vector<uint8_t> nulls_;
};

/// Dictionary-encoded vector: row i is base[indices[i]]. Produced by the
/// native reader for dictionary-encoded column chunks (Section V.G) so the
/// engine can probe/aggregate without eagerly materializing strings.
class DictionaryVector final : public Vector {
 public:
  DictionaryVector(VectorPtr base, std::vector<int32_t> indices,
                   std::vector<uint8_t> nulls = {})
      : Vector(base->type(), indices.size()),
        base_(std::move(base)),
        indices_(std::move(indices)),
        nulls_(std::move(nulls)) {}

  VectorEncoding encoding() const override { return VectorEncoding::kDictionary; }

  bool IsNull(size_t row) const override {
    if (!nulls_.empty() && nulls_[row] != 0) return true;
    return base_->IsNull(indices_[row]);
  }

  const VectorPtr& base() const { return base_; }
  int32_t IndexAt(size_t row) const { return indices_[row]; }
  const std::vector<int32_t>& indices() const { return indices_; }
  /// Dictionary-level null flags (base nulls are separate); nullptr when the
  /// dictionary itself adds no nulls.
  const uint8_t* raw_nulls() const {
    return nulls_.empty() ? nullptr : nulls_.data();
  }

  Value GetValue(size_t row) const override {
    if (IsNull(row)) return Value::Null();
    return base_->GetValue(indices_[row]);
  }

  uint64_t HashAt(size_t row) const override {
    if (IsNull(row)) return Value::Null().Hash();
    return base_->HashAt(indices_[row]);
  }

  void HashBatch(uint64_t* out, bool combine) const override;
  int CompareAt(size_t row, const Vector& other, size_t other_row) const override;
  VectorPtr Slice(const std::vector<int32_t>& rows) const override;
  int64_t EstimateBytes() const override;

 private:
  VectorPtr base_;
  std::vector<int32_t> indices_;
  std::vector<uint8_t> nulls_;
};

/// A vector whose contents are produced on first use. Lazy reads (Section
/// V.H): the scan hands out LazyVectors for projected columns; if a
/// downstream filter drops the whole batch, the column bytes are never
/// decoded. LoadForRows lets a filter materialize only the surviving rows
/// (result is positionally aligned with `rows`).
class LazyVector final : public Vector {
 public:
  /// Loader receives the rows to materialize (sorted, unique) and returns a
  /// vector with one entry per requested row.
  using Loader = std::function<Result<VectorPtr>(const std::vector<int32_t>& rows)>;

  LazyVector(TypePtr type, size_t size, Loader loader)
      : Vector(std::move(type), size), loader_(std::move(loader)) {}

  VectorEncoding encoding() const override { return VectorEncoding::kLazy; }

  bool IsLoaded() const { return loaded_ != nullptr; }

  /// Materializes all rows (cached).
  Result<VectorPtr> Load() const;

  /// Materializes only the given rows; does not cache.
  Result<VectorPtr> LoadForRows(const std::vector<int32_t>& rows) const;

  // Lazy vectors must be loaded before row access; these abort via value()
  // on error to honour the Vector interface (callers flatten first).
  bool IsNull(size_t row) const override;
  Value GetValue(size_t row) const override;
  VectorPtr Slice(const std::vector<int32_t>& rows) const override;
  int64_t EstimateBytes() const override;

 private:
  Loader loader_;
  mutable VectorPtr loaded_;
};

// -- Convenience constructors -------------------------------------------------

/// Builds a flat BIGINT vector with no nulls.
VectorPtr MakeBigintVector(std::vector<int64_t> values);
/// Builds a flat DOUBLE vector with no nulls.
VectorPtr MakeDoubleVector(std::vector<double> values);
/// Builds a flat VARCHAR vector with no nulls.
VectorPtr MakeVarcharVector(std::vector<std::string> values);
/// Builds a flat BOOLEAN vector with no nulls.
VectorPtr MakeBooleanVector(std::vector<uint8_t> values);
/// Builds a flat all-NULL vector of the given scalar or nested type.
Result<VectorPtr> MakeAllNullVector(const TypePtr& type, size_t size);

}  // namespace presto

#endif  // PRESTO_VECTOR_VECTOR_H_
