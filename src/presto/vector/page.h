#ifndef PRESTO_VECTOR_PAGE_H_
#define PRESTO_VECTOR_PAGE_H_

#include <string>
#include <utility>
#include <vector>

#include "presto/vector/vector.h"

namespace presto {

/// The unit of data flow between operators and across (simulated) exchanges:
/// a bundle of equally sized vectors. "Hadoop data and MySQL data are
/// streamed in Presto pages into the Presto engine" (Section IV.A).
class Page {
 public:
  Page() = default;

  explicit Page(std::vector<VectorPtr> columns)
      : columns_(std::move(columns)),
        num_rows_(columns_.empty() ? 0 : columns_[0]->size()) {}

  Page(std::vector<VectorPtr> columns, size_t num_rows)
      : columns_(std::move(columns)), num_rows_(num_rows) {}

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  const VectorPtr& column(size_t i) const { return columns_[i]; }
  const std::vector<VectorPtr>& columns() const { return columns_; }
  std::vector<VectorPtr>& mutable_columns() { return columns_; }

  /// Gathers the given rows from every column (materializing copy).
  Page SliceRows(const std::vector<int32_t>& rows) const {
    std::vector<VectorPtr> out;
    out.reserve(columns_.size());
    for (const VectorPtr& col : columns_) out.push_back(col->Slice(rows));
    return Page(std::move(out), rows.size());
  }

  /// Selection-vector variant of SliceRows: wraps each column in a
  /// DictionaryVector over the shared base instead of copying values, so a
  /// filter/join can pass surviving rows downstream zero-copy. Dictionary
  /// columns compose their indices (Slice on a dictionary is already an
  /// index gather) and lazy columns load only the selected rows.
  Page WrapRows(const std::vector<int32_t>& rows) const {
    std::vector<VectorPtr> out;
    out.reserve(columns_.size());
    for (const VectorPtr& col : columns_) {
      if (col->encoding() == VectorEncoding::kFlat) {
        out.push_back(std::make_shared<DictionaryVector>(col, rows));
      } else {
        out.push_back(col->Slice(rows));
      }
    }
    return Page(std::move(out), rows.size());
  }

  /// Approximate payload bytes across all columns (operator byte stats).
  int64_t EstimateBytes() const {
    int64_t bytes = 0;
    for (const VectorPtr& col : columns_) bytes += col->EstimateBytes();
    return bytes;
  }

  /// Boxes one row (slow path; output/testing only).
  std::vector<Value> GetRow(size_t row) const {
    std::vector<Value> out;
    out.reserve(columns_.size());
    for (const VectorPtr& col : columns_) out.push_back(col->GetValue(row));
    return out;
  }

  std::string ToString(size_t max_rows = 16) const {
    std::string out;
    size_t n = std::min(num_rows_, max_rows);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < columns_.size(); ++c) {
        out += c == 0 ? "" : " | ";
        out += columns_[c]->GetValue(r).ToString();
      }
      out += "\n";
    }
    if (n < num_rows_) out += "…\n";
    return out;
  }

 private:
  std::vector<VectorPtr> columns_;
  size_t num_rows_ = 0;
};

}  // namespace presto

#endif  // PRESTO_VECTOR_PAGE_H_
