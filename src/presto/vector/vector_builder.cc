#include "presto/vector/vector_builder.h"

namespace presto {

VectorBuilder::VectorBuilder(TypePtr type) : type_(std::move(type)) {
  switch (type_->kind()) {
    case TypeKind::kRow:
      for (size_t i = 0; i < type_->NumChildren(); ++i) {
        children_.push_back(std::make_unique<VectorBuilder>(type_->child(i)));
      }
      break;
    case TypeKind::kArray:
      children_.push_back(std::make_unique<VectorBuilder>(type_->element()));
      break;
    case TypeKind::kMap:
      children_.push_back(std::make_unique<VectorBuilder>(type_->map_key()));
      children_.push_back(std::make_unique<VectorBuilder>(type_->map_value()));
      break;
    default:
      break;
  }
}

void VectorBuilder::AppendNull() {
  nulls_.resize(size_, 0);
  nulls_.push_back(1);
  has_nulls_ = true;
  ++size_;
  switch (type_->kind()) {
    case TypeKind::kBoolean:
      bools_.push_back(0);
      break;
    case TypeKind::kInteger:
    case TypeKind::kBigint:
    case TypeKind::kTimestamp:
      ints_.push_back(0);
      break;
    case TypeKind::kDouble:
      doubles_.push_back(0);
      break;
    case TypeKind::kVarchar:
      strings_.emplace_back();
      break;
    case TypeKind::kRow:
      // Children stay size-aligned with the parent.
      for (auto& child : children_) child->AppendNull();
      break;
    case TypeKind::kArray:
    case TypeKind::kMap:
      offsets_.push_back(static_cast<int32_t>(children_[0]->size()));
      lengths_.push_back(0);
      break;
  }
}

Status VectorBuilder::Append(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_->kind()) {
    case TypeKind::kBoolean:
      if (!value.is_bool()) return Status::InvalidArgument("expected BOOLEAN value");
      AppendBool(value.bool_value());
      return Status::OK();
    case TypeKind::kInteger:
    case TypeKind::kBigint:
    case TypeKind::kTimestamp:
      if (!value.is_int()) return Status::InvalidArgument("expected integer value");
      AppendBigint(value.int_value());
      return Status::OK();
    case TypeKind::kDouble:
      if (!value.is_int() && !value.is_double()) {
        return Status::InvalidArgument("expected numeric value");
      }
      AppendDouble(value.AsDouble());
      return Status::OK();
    case TypeKind::kVarchar:
      if (!value.is_string()) return Status::InvalidArgument("expected VARCHAR value");
      AppendString(value.string_value());
      return Status::OK();
    case TypeKind::kRow: {
      if (!value.is_row()) return Status::InvalidArgument("expected ROW value");
      if (value.children().size() != children_.size()) {
        return Status::InvalidArgument("ROW field count mismatch");
      }
      for (size_t i = 0; i < children_.size(); ++i) {
        RETURN_IF_ERROR(children_[i]->Append(value.children()[i]));
      }
      if (has_nulls_) nulls_.push_back(0);
      ++size_;
      return Status::OK();
    }
    case TypeKind::kArray: {
      if (!value.is_array()) return Status::InvalidArgument("expected ARRAY value");
      offsets_.push_back(static_cast<int32_t>(children_[0]->size()));
      lengths_.push_back(static_cast<int32_t>(value.children().size()));
      for (const Value& elem : value.children()) {
        RETURN_IF_ERROR(children_[0]->Append(elem));
      }
      if (has_nulls_) nulls_.push_back(0);
      ++size_;
      return Status::OK();
    }
    case TypeKind::kMap: {
      if (!value.is_map()) return Status::InvalidArgument("expected MAP value");
      offsets_.push_back(static_cast<int32_t>(children_[0]->size()));
      lengths_.push_back(static_cast<int32_t>(value.map_entries().size()));
      for (const auto& [k, v] : value.map_entries()) {
        RETURN_IF_ERROR(children_[0]->Append(k));
        RETURN_IF_ERROR(children_[1]->Append(v));
      }
      if (has_nulls_) nulls_.push_back(0);
      ++size_;
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

void VectorBuilder::AppendBigint(int64_t v) {
  ints_.push_back(v);
  if (has_nulls_) nulls_.push_back(0);
  ++size_;
}

void VectorBuilder::AppendDouble(double v) {
  doubles_.push_back(v);
  if (has_nulls_) nulls_.push_back(0);
  ++size_;
}

void VectorBuilder::AppendBool(bool v) {
  bools_.push_back(v ? 1 : 0);
  if (has_nulls_) nulls_.push_back(0);
  ++size_;
}

void VectorBuilder::AppendString(std::string v) {
  strings_.push_back(std::move(v));
  if (has_nulls_) nulls_.push_back(0);
  ++size_;
}

VectorPtr VectorBuilder::Build() {
  std::vector<uint8_t> nulls = has_nulls_ ? std::move(nulls_) : std::vector<uint8_t>{};
  VectorPtr out;
  switch (type_->kind()) {
    case TypeKind::kBoolean:
      out = std::make_shared<BoolVector>(type_, std::move(bools_), std::move(nulls));
      break;
    case TypeKind::kInteger:
    case TypeKind::kBigint:
    case TypeKind::kTimestamp:
      out = std::make_shared<Int64Vector>(type_, std::move(ints_), std::move(nulls));
      break;
    case TypeKind::kDouble:
      out = std::make_shared<DoubleVector>(type_, std::move(doubles_), std::move(nulls));
      break;
    case TypeKind::kVarchar:
      out = std::make_shared<StringVector>(type_, std::move(strings_), std::move(nulls));
      break;
    case TypeKind::kRow: {
      std::vector<VectorPtr> children;
      children.reserve(children_.size());
      for (auto& child : children_) children.push_back(child->Build());
      out = std::make_shared<RowVector>(type_, size_, std::move(children),
                                        std::move(nulls));
      break;
    }
    case TypeKind::kArray:
      out = std::make_shared<ArrayVector>(type_, std::move(offsets_),
                                          std::move(lengths_),
                                          children_[0]->Build(), std::move(nulls));
      break;
    case TypeKind::kMap:
      out = std::make_shared<MapVector>(type_, std::move(offsets_),
                                        std::move(lengths_), children_[0]->Build(),
                                        children_[1]->Build(), std::move(nulls));
      break;
  }
  // Reset for reuse.
  size_ = 0;
  has_nulls_ = false;
  nulls_.clear();
  bools_.clear();
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  offsets_.clear();
  lengths_.clear();
  return out;
}

}  // namespace presto
