#ifndef PRESTO_VECTOR_VECTOR_BUILDER_H_
#define PRESTO_VECTOR_VECTOR_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "presto/vector/vector.h"

namespace presto {

/// Appends values (including nested ROW/ARRAY/MAP values) of a fixed type and
/// produces a flat Vector. Used by the row-based legacy reader baseline, the
/// mini row stores, aggregation output, and tests.
class VectorBuilder {
 public:
  explicit VectorBuilder(TypePtr type);

  const TypePtr& type() const { return type_; }
  size_t size() const { return size_; }

  void AppendNull();

  /// Appends a boxed value; the value's shape must match the builder's type
  /// (NULL is always accepted).
  Status Append(const Value& value);

  /// Move-aware append: string payloads are stolen instead of copied.
  Status Append(Value&& value) {
    if (value.is_string() && type_->kind() == TypeKind::kVarchar) {
      AppendString(std::move(value).TakeString());
      return Status::OK();
    }
    return Append(static_cast<const Value&>(value));
  }

  // Typed fast paths (scalar builders only; no type checks).
  void AppendBigint(int64_t v);
  void AppendDouble(double v);
  void AppendBool(bool v);
  void AppendString(std::string v);

  /// Finishes and returns the vector; the builder is reset and reusable.
  VectorPtr Build();

 private:
  TypePtr type_;
  size_t size_ = 0;
  bool has_nulls_ = false;
  std::vector<uint8_t> nulls_;

  // Scalar storage (only the one matching type_ is used).
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;

  // Nested storage: ROW uses one child builder per field; ARRAY uses
  // children_[0] for elements; MAP uses children_[0]=keys, children_[1]=values.
  std::vector<std::unique_ptr<VectorBuilder>> children_;
  std::vector<int32_t> offsets_;
  std::vector<int32_t> lengths_;
};

}  // namespace presto

#endif  // PRESTO_VECTOR_VECTOR_BUILDER_H_
