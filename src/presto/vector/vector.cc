#include "presto/vector/vector.h"

#include <cstdlib>
#include <cstring>

#include "presto/vector/vector_builder.h"

namespace presto {

namespace {

[[noreturn]] void FatalVectorError(const char* what) {
  std::fprintf(stderr, "fatal vector error: %s\n", what);
  std::abort();
}

std::vector<uint8_t> GatherNulls(const std::vector<int32_t>& rows,
                                 const Vector& v) {
  std::vector<uint8_t> nulls;
  bool any = false;
  nulls.resize(rows.size(), 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (v.IsNull(rows[i])) {
      nulls[i] = 1;
      any = true;
    }
  }
  if (!any) nulls.clear();
  return nulls;
}

}  // namespace

void Vector::HashBatch(uint64_t* out, bool combine) const {
  for (size_t i = 0; i < size_; ++i) {
    uint64_t h = HashAt(i);
    out[i] = combine ? HashCombine(out[i], h) : h;
  }
}

int64_t Vector::EstimateBytes() const {
  // Conservative default for encodings without a tighter override.
  return static_cast<int64_t>(size_) * 8;
}

// -- FlatVector ---------------------------------------------------------------

template <>
Value FlatVector<uint8_t>::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  return Value::Bool(values_[row] != 0);
}

template <>
Value FlatVector<int64_t>::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  return Value::Int(values_[row]);
}

template <>
Value FlatVector<double>::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  return Value::Double(values_[row]);
}

template <>
Value FlatVector<std::string>::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  return Value::String(values_[row]);
}

template <typename T>
uint64_t FlatVector<T>::HashAt(size_t row) const {
  if (IsNull(row)) return 0x5c5c5c5c5c5c5c5cULL;
  if constexpr (std::is_same_v<T, std::string>) {
    return HashString(values_[row]);
  } else if constexpr (std::is_same_v<T, double>) {
    double d = values_[row] == 0.0 ? 0.0 : values_[row];
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(d));
    return HashMix64(bits);
  } else if constexpr (std::is_same_v<T, uint8_t>) {
    return HashMix64(values_[row] != 0 ? 1 : 2);
  } else {
    return HashMix64(static_cast<uint64_t>(values_[row]));
  }
}

template <typename T>
void FlatVector<T>::HashBatch(uint64_t* out, bool combine) const {
  // Single virtual call per column; the row loop below compiles to a tight
  // type-specialized kernel with no dispatch.
  for (size_t i = 0; i < size_; ++i) {
    uint64_t h = HashAt(i);  // non-virtual: resolved statically in this TU
    out[i] = combine ? HashCombine(out[i], h) : h;
  }
}

template <typename T>
int FlatVector<T>::CompareAt(size_t row, const Vector& other,
                             size_t other_row) const {
  bool null_a = IsNull(row);
  bool null_b = other.IsNull(other_row);
  if (null_a || null_b) {
    if (null_a && null_b) return 0;
    return null_a ? -1 : 1;
  }
  if (const auto* flat = dynamic_cast<const FlatVector<T>*>(&other)) {
    const T& a = values_[row];
    const T& b = flat->values_[other_row];
    if constexpr (std::is_same_v<T, std::string>) {
      return a.compare(b);
    } else {
      if (a < b) return -1;
      if (b < a) return 1;
      return 0;
    }
  }
  return GetValue(row).Compare(other.GetValue(other_row));
}

template <typename T>
VectorPtr FlatVector<T>::Slice(const std::vector<int32_t>& rows) const {
  std::vector<T> values;
  values.reserve(rows.size());
  for (int32_t r : rows) values.push_back(values_[r]);
  return std::make_shared<FlatVector<T>>(type_, std::move(values),
                                         GatherNulls(rows, *this));
}

template <typename T>
int64_t FlatVector<T>::EstimateBytes() const {
  int64_t bytes = static_cast<int64_t>(nulls_.size());
  if constexpr (std::is_same_v<T, std::string>) {
    for (const std::string& s : values_) {
      bytes += static_cast<int64_t>(s.size()) + sizeof(std::string);
    }
  } else {
    bytes += static_cast<int64_t>(values_.size()) * sizeof(T);
  }
  return bytes;
}

template class FlatVector<uint8_t>;
template class FlatVector<int64_t>;
template class FlatVector<double>;
template class FlatVector<std::string>;

// -- RowVector ----------------------------------------------------------------

Value RowVector::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  Value::RowData fields;
  fields.reserve(children_.size());
  for (const VectorPtr& child : children_) {
    fields.push_back(child->GetValue(row));
  }
  return Value::Row(std::move(fields));
}

VectorPtr RowVector::Slice(const std::vector<int32_t>& rows) const {
  std::vector<VectorPtr> children;
  children.reserve(children_.size());
  for (const VectorPtr& child : children_) {
    children.push_back(child->Slice(rows));
  }
  return std::make_shared<RowVector>(type_, rows.size(), std::move(children),
                                     GatherNulls(rows, *this));
}

int64_t RowVector::EstimateBytes() const {
  int64_t bytes = static_cast<int64_t>(nulls_.size());
  for (const VectorPtr& child : children_) bytes += child->EstimateBytes();
  return bytes;
}

// -- ArrayVector --------------------------------------------------------------

Value ArrayVector::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  Value::RowData elems;
  elems.reserve(lengths_[row]);
  for (int32_t i = 0; i < lengths_[row]; ++i) {
    elems.push_back(elements_->GetValue(offsets_[row] + i));
  }
  return Value::Array(std::move(elems));
}

VectorPtr ArrayVector::Slice(const std::vector<int32_t>& rows) const {
  std::vector<int32_t> offsets, lengths, element_rows;
  offsets.reserve(rows.size());
  lengths.reserve(rows.size());
  int32_t next = 0;
  for (int32_t r : rows) {
    offsets.push_back(next);
    lengths.push_back(lengths_[r]);
    next += lengths_[r];
    for (int32_t i = 0; i < lengths_[r]; ++i) {
      element_rows.push_back(offsets_[r] + i);
    }
  }
  return std::make_shared<ArrayVector>(type_, std::move(offsets),
                                       std::move(lengths),
                                       elements_->Slice(element_rows),
                                       GatherNulls(rows, *this));
}

int64_t ArrayVector::EstimateBytes() const {
  return static_cast<int64_t>(nulls_.size()) +
         static_cast<int64_t>(offsets_.size() + lengths_.size()) *
             sizeof(int32_t) +
         elements_->EstimateBytes();
}

// -- MapVector ----------------------------------------------------------------

Value MapVector::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  Value::MapData entries;
  entries.reserve(lengths_[row]);
  for (int32_t i = 0; i < lengths_[row]; ++i) {
    entries.emplace_back(keys_->GetValue(offsets_[row] + i),
                         values_->GetValue(offsets_[row] + i));
  }
  return Value::Map(std::move(entries));
}

VectorPtr MapVector::Slice(const std::vector<int32_t>& rows) const {
  std::vector<int32_t> offsets, lengths, entry_rows;
  offsets.reserve(rows.size());
  lengths.reserve(rows.size());
  int32_t next = 0;
  for (int32_t r : rows) {
    offsets.push_back(next);
    lengths.push_back(lengths_[r]);
    next += lengths_[r];
    for (int32_t i = 0; i < lengths_[r]; ++i) {
      entry_rows.push_back(offsets_[r] + i);
    }
  }
  return std::make_shared<MapVector>(
      type_, std::move(offsets), std::move(lengths), keys_->Slice(entry_rows),
      values_->Slice(entry_rows), GatherNulls(rows, *this));
}

int64_t MapVector::EstimateBytes() const {
  return static_cast<int64_t>(nulls_.size()) +
         static_cast<int64_t>(offsets_.size() + lengths_.size()) *
             sizeof(int32_t) +
         keys_->EstimateBytes() + values_->EstimateBytes();
}

// -- DictionaryVector ---------------------------------------------------------

void DictionaryVector::HashBatch(uint64_t* out, bool combine) const {
  // Hash each distinct base value once, then gather through the indices —
  // the dictionary-encoding payoff the engine's kernels rely on.
  std::vector<uint64_t> base_hashes(base_->size());
  if (!base_hashes.empty()) base_->HashBatch(base_hashes.data(), false);
  const uint64_t null_hash = Value::Null().Hash();
  for (size_t i = 0; i < size_; ++i) {
    uint64_t h = IsNull(i) ? null_hash : base_hashes[indices_[i]];
    out[i] = combine ? HashCombine(out[i], h) : h;
  }
}

int DictionaryVector::CompareAt(size_t row, const Vector& other,
                                size_t other_row) const {
  bool null_a = IsNull(row);
  bool null_b = other.IsNull(other_row);
  if (null_a || null_b) {
    if (null_a && null_b) return 0;
    return null_a ? -1 : 1;
  }
  return base_->CompareAt(indices_[row], other, other_row);
}

VectorPtr DictionaryVector::Slice(const std::vector<int32_t>& rows) const {
  std::vector<int32_t> indices;
  indices.reserve(rows.size());
  for (int32_t r : rows) indices.push_back(IsNull(r) ? 0 : indices_[r]);
  return std::make_shared<DictionaryVector>(base_, std::move(indices),
                                            GatherNulls(rows, *this));
}

int64_t DictionaryVector::EstimateBytes() const {
  return static_cast<int64_t>(nulls_.size()) +
         static_cast<int64_t>(indices_.size()) * sizeof(int32_t) +
         base_->EstimateBytes();
}

// -- LazyVector ---------------------------------------------------------------

Result<VectorPtr> LazyVector::Load() const {
  if (loaded_ != nullptr) return loaded_;
  std::vector<int32_t> all(size_);
  for (size_t i = 0; i < size_; ++i) all[i] = static_cast<int32_t>(i);
  ASSIGN_OR_RETURN(loaded_, loader_(all));
  return loaded_;
}

Result<VectorPtr> LazyVector::LoadForRows(const std::vector<int32_t>& rows) const {
  if (loaded_ != nullptr) return loaded_->Slice(rows);
  return loader_(rows);
}

bool LazyVector::IsNull(size_t row) const {
  auto loaded = Load();
  if (!loaded.ok()) FatalVectorError("lazy vector load failed in IsNull");
  return loaded.value()->IsNull(row);
}

Value LazyVector::GetValue(size_t row) const {
  auto loaded = Load();
  if (!loaded.ok()) FatalVectorError("lazy vector load failed in GetValue");
  return loaded.value()->GetValue(row);
}

VectorPtr LazyVector::Slice(const std::vector<int32_t>& rows) const {
  auto sliced = LoadForRows(rows);
  if (!sliced.ok()) FatalVectorError("lazy vector load failed in Slice");
  return sliced.value();
}

int64_t LazyVector::EstimateBytes() const {
  // Unloaded lazy columns have no materialized payload yet; counting them
  // would charge bytes the lazy-read optimization specifically avoids.
  return loaded_ == nullptr ? 0 : loaded_->EstimateBytes();
}

// -- Flatten ------------------------------------------------------------------

Result<VectorPtr> Vector::Flatten(const VectorPtr& vector) {
  switch (vector->encoding()) {
    case VectorEncoding::kFlat:
      return vector;
    case VectorEncoding::kLazy: {
      const auto* lazy = static_cast<const LazyVector*>(vector.get());
      ASSIGN_OR_RETURN(VectorPtr loaded, lazy->Load());
      return Flatten(loaded);
    }
    case VectorEncoding::kDictionary: {
      const auto* dict = static_cast<const DictionaryVector*>(vector.get());
      ASSIGN_OR_RETURN(VectorPtr base, Flatten(dict->base()));
      // Gather base rows; null rows of the dictionary map to base row 0 and
      // are re-marked null afterwards.
      std::vector<int32_t> rows(dict->size());
      std::vector<int32_t> null_rows;
      for (size_t i = 0; i < dict->size(); ++i) {
        if (dict->IsNull(i)) {
          rows[i] = 0;
          null_rows.push_back(static_cast<int32_t>(i));
        } else {
          rows[i] = dict->IndexAt(i);
        }
      }
      if (base->size() == 0 && !rows.empty()) {
        return MakeAllNullVector(vector->type(), dict->size());
      }
      VectorPtr flat = base->Slice(rows);
      if (null_rows.empty()) return flat;
      // Re-apply nulls by rebuilding through a builder (rare path).
      VectorBuilder builder(vector->type());
      size_t next_null = 0;
      for (size_t i = 0; i < flat->size(); ++i) {
        if (next_null < null_rows.size() &&
            null_rows[next_null] == static_cast<int32_t>(i)) {
          builder.AppendNull();
          ++next_null;
        } else {
          RETURN_IF_ERROR(builder.Append(flat->GetValue(i)));
        }
      }
      return builder.Build();
    }
  }
  return Status::Internal("unknown vector encoding");
}

std::string Vector::ToString(size_t max_rows) const {
  std::string out = "[";
  size_t n = std::min(size_, max_rows);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += GetValue(i).ToString();
  }
  if (n < size_) out += ", …";
  out += "]";
  return out;
}

// -- Convenience constructors -------------------------------------------------

VectorPtr MakeBigintVector(std::vector<int64_t> values) {
  return std::make_shared<Int64Vector>(Type::Bigint(), std::move(values),
                                       std::vector<uint8_t>{});
}

VectorPtr MakeDoubleVector(std::vector<double> values) {
  return std::make_shared<DoubleVector>(Type::Double(), std::move(values),
                                        std::vector<uint8_t>{});
}

VectorPtr MakeVarcharVector(std::vector<std::string> values) {
  return std::make_shared<StringVector>(Type::Varchar(), std::move(values),
                                        std::vector<uint8_t>{});
}

VectorPtr MakeBooleanVector(std::vector<uint8_t> values) {
  return std::make_shared<BoolVector>(Type::Boolean(), std::move(values),
                                      std::vector<uint8_t>{});
}

Result<VectorPtr> MakeAllNullVector(const TypePtr& type, size_t size) {
  VectorBuilder builder(type);
  for (size_t i = 0; i < size; ++i) builder.AppendNull();
  return builder.Build();
}

}  // namespace presto
