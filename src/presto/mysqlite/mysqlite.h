#ifndef PRESTO_MYSQLITE_MYSQLITE_H_
#define PRESTO_MYSQLITE_MYSQLITE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "presto/common/metrics.h"
#include "presto/common/status.h"
#include "presto/types/type.h"
#include "presto/types/value.h"

namespace presto {
namespace mysqlite {

/// Comparison operators supported by server-side scans.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kIn };

/// A conjunct of a pushed-down WHERE clause: `column op value(s)`.
struct ColumnPredicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  std::vector<Value> values;  // 1 value, or N for kIn

  bool Matches(const Value& v) const;
};

/// Server-side scan request: projection, filter, and limit — the three
/// pushdowns every Presto connector implements (Section IV.A).
struct ScanRequest {
  std::vector<std::string> columns;          // empty = all columns
  std::vector<ColumnPredicate> predicates;   // ANDed
  int64_t limit = -1;                        // -1 = unlimited
};

struct ScanResult {
  std::vector<std::string> column_names;
  std::vector<TypePtr> column_types;
  std::vector<std::vector<Value>> rows;
  int64_t rows_scanned = 0;  // rows examined server-side
};

/// Tiny transactional row store standing in for MySQL: typed tables under
/// schemas, row-at-a-time insert/update/delete, and a scan API with
/// server-side filter/projection/limit. Used both as a connector target and
/// as the backing store of the Presto gateway's user/group->cluster routing
/// table (Section VIII).
class MySqlLite {
 public:
  Status CreateTable(const std::string& schema, const std::string& table,
                     TypePtr row_type);
  Status DropTable(const std::string& schema, const std::string& table);

  Status Insert(const std::string& schema, const std::string& table,
                std::vector<std::vector<Value>> rows);

  /// UPDATE ... SET column=value WHERE predicates. Returns rows changed.
  Result<int64_t> Update(const std::string& schema, const std::string& table,
                         const std::vector<ColumnPredicate>& predicates,
                         const std::map<std::string, Value>& assignments);

  /// DELETE FROM ... WHERE predicates. Returns rows deleted.
  Result<int64_t> Delete(const std::string& schema, const std::string& table,
                         const std::vector<ColumnPredicate>& predicates);

  Result<ScanResult> Scan(const std::string& schema, const std::string& table,
                          const ScanRequest& request) const;

  Result<TypePtr> TableType(const std::string& schema,
                            const std::string& table) const;
  std::vector<std::string> ListTables(const std::string& schema) const;
  std::vector<std::string> ListSchemas() const;

  MetricsRegistry& metrics() { return metrics_; }

 private:
  struct Table {
    TypePtr row_type;
    std::vector<std::vector<Value>> rows;
  };

  Result<const Table*> FindTableLocked(const std::string& schema,
                                       const std::string& table) const;
  Result<Table*> FindTableLocked(const std::string& schema,
                                 const std::string& table);

  mutable std::mutex mu_;
  std::map<std::string, std::map<std::string, Table>> schemas_;
  mutable MetricsRegistry metrics_;
};

}  // namespace mysqlite
}  // namespace presto

#endif  // PRESTO_MYSQLITE_MYSQLITE_H_
