#include "presto/mysqlite/mysqlite.h"

#include <algorithm>

namespace presto {
namespace mysqlite {

bool ColumnPredicate::Matches(const Value& v) const {
  if (v.is_null()) return false;  // SQL: NULL never matches a comparison
  switch (op) {
    case CompareOp::kEq:
      return v.Compare(values[0]) == 0;
    case CompareOp::kNe:
      return v.Compare(values[0]) != 0;
    case CompareOp::kLt:
      return v.Compare(values[0]) < 0;
    case CompareOp::kLe:
      return v.Compare(values[0]) <= 0;
    case CompareOp::kGt:
      return v.Compare(values[0]) > 0;
    case CompareOp::kGe:
      return v.Compare(values[0]) >= 0;
    case CompareOp::kIn:
      for (const Value& candidate : values) {
        if (v.Compare(candidate) == 0) return true;
      }
      return false;
  }
  return false;
}

Result<const MySqlLite::Table*> MySqlLite::FindTableLocked(
    const std::string& schema, const std::string& table) const {
  auto s = schemas_.find(schema);
  if (s == schemas_.end()) return Status::NotFound("no such schema: " + schema);
  auto t = s->second.find(table);
  if (t == s->second.end()) {
    return Status::NotFound("no such table: " + schema + "." + table);
  }
  return &t->second;
}

Result<MySqlLite::Table*> MySqlLite::FindTableLocked(const std::string& schema,
                                                     const std::string& table) {
  auto s = schemas_.find(schema);
  if (s == schemas_.end()) return Status::NotFound("no such schema: " + schema);
  auto t = s->second.find(table);
  if (t == s->second.end()) {
    return Status::NotFound("no such table: " + schema + "." + table);
  }
  return &t->second;
}

Status MySqlLite::CreateTable(const std::string& schema, const std::string& table,
                              TypePtr row_type) {
  if (row_type == nullptr || row_type->kind() != TypeKind::kRow) {
    return Status::InvalidArgument("table type must be a ROW type");
  }
  for (const TypePtr& child : row_type->children()) {
    if (!child->IsScalar()) {
      return Status::InvalidArgument("mysqlite supports scalar columns only");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (schemas_[schema].count(table) > 0) {
    return Status::AlreadyExists("table exists: " + schema + "." + table);
  }
  schemas_[schema][table] = Table{std::move(row_type), {}};
  return Status::OK();
}

Status MySqlLite::DropTable(const std::string& schema, const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  auto s = schemas_.find(schema);
  if (s == schemas_.end() || s->second.erase(table) == 0) {
    return Status::NotFound("no such table: " + schema + "." + table);
  }
  return Status::OK();
}

Status MySqlLite::Insert(const std::string& schema, const std::string& table,
                         std::vector<std::vector<Value>> rows) {
  std::lock_guard<std::mutex> lock(mu_);
  ASSIGN_OR_RETURN(Table * t, FindTableLocked(schema, table));
  for (auto& row : rows) {
    if (row.size() != t->row_type->NumChildren()) {
      return Status::InvalidArgument("row width does not match table");
    }
    t->rows.push_back(std::move(row));
  }
  metrics_.Increment("mysql.rows.inserted", static_cast<int64_t>(rows.size()));
  return Status::OK();
}

namespace {

Result<size_t> ColumnIndex(const TypePtr& row_type, const std::string& name) {
  auto idx = row_type->FindField(name);
  if (!idx.has_value()) return Status::NotFound("no such column: " + name);
  return *idx;
}

Result<bool> RowMatches(const TypePtr& row_type, const std::vector<Value>& row,
                        const std::vector<ColumnPredicate>& predicates) {
  for (const ColumnPredicate& pred : predicates) {
    ASSIGN_OR_RETURN(size_t c, ColumnIndex(row_type, pred.column));
    if (!pred.Matches(row[c])) return false;
  }
  return true;
}

}  // namespace

Result<int64_t> MySqlLite::Update(const std::string& schema,
                                  const std::string& table,
                                  const std::vector<ColumnPredicate>& predicates,
                                  const std::map<std::string, Value>& assignments) {
  std::lock_guard<std::mutex> lock(mu_);
  ASSIGN_OR_RETURN(Table * t, FindTableLocked(schema, table));
  int64_t changed = 0;
  for (auto& row : t->rows) {
    ASSIGN_OR_RETURN(bool matches, RowMatches(t->row_type, row, predicates));
    if (!matches) continue;
    for (const auto& [column, value] : assignments) {
      ASSIGN_OR_RETURN(size_t c, ColumnIndex(t->row_type, column));
      row[c] = value;
    }
    ++changed;
  }
  metrics_.Increment("mysql.rows.updated", changed);
  return changed;
}

Result<int64_t> MySqlLite::Delete(const std::string& schema,
                                  const std::string& table,
                                  const std::vector<ColumnPredicate>& predicates) {
  std::lock_guard<std::mutex> lock(mu_);
  ASSIGN_OR_RETURN(Table * t, FindTableLocked(schema, table));
  int64_t before = static_cast<int64_t>(t->rows.size());
  std::vector<std::vector<Value>> kept;
  for (auto& row : t->rows) {
    ASSIGN_OR_RETURN(bool matches, RowMatches(t->row_type, row, predicates));
    if (!matches) kept.push_back(std::move(row));
  }
  t->rows = std::move(kept);
  int64_t deleted = before - static_cast<int64_t>(t->rows.size());
  metrics_.Increment("mysql.rows.deleted", deleted);
  return deleted;
}

Result<ScanResult> MySqlLite::Scan(const std::string& schema,
                                   const std::string& table,
                                   const ScanRequest& request) const {
  std::lock_guard<std::mutex> lock(mu_);
  ASSIGN_OR_RETURN(const Table* t, FindTableLocked(schema, table));
  metrics_.Increment("mysql.table.scans");

  ScanResult result;
  std::vector<size_t> projection;
  if (request.columns.empty()) {
    for (size_t c = 0; c < t->row_type->NumChildren(); ++c) {
      projection.push_back(c);
    }
  } else {
    for (const std::string& name : request.columns) {
      ASSIGN_OR_RETURN(size_t c, ColumnIndex(t->row_type, name));
      projection.push_back(c);
    }
  }
  for (size_t c : projection) {
    result.column_names.push_back(t->row_type->field_name(c));
    result.column_types.push_back(t->row_type->child(c));
  }

  for (const auto& row : t->rows) {
    ++result.rows_scanned;
    ASSIGN_OR_RETURN(bool matches, RowMatches(t->row_type, row, request.predicates));
    if (!matches) continue;
    std::vector<Value> projected;
    projected.reserve(projection.size());
    for (size_t c : projection) projected.push_back(row[c]);
    result.rows.push_back(std::move(projected));
    if (request.limit >= 0 &&
        static_cast<int64_t>(result.rows.size()) >= request.limit) {
      break;
    }
  }
  metrics_.Increment("mysql.rows.returned",
                     static_cast<int64_t>(result.rows.size()));
  return result;
}

Result<TypePtr> MySqlLite::TableType(const std::string& schema,
                                     const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  ASSIGN_OR_RETURN(const Table* t, FindTableLocked(schema, table));
  return t->row_type;
}

std::vector<std::string> MySqlLite::ListTables(const std::string& schema) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  auto s = schemas_.find(schema);
  if (s == schemas_.end()) return out;
  for (const auto& [name, table] : s->second) out.push_back(name);
  return out;
}

std::vector<std::string> MySqlLite::ListSchemas() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, tables] : schemas_) out.push_back(name);
  return out;
}

}  // namespace mysqlite
}  // namespace presto
