#include "presto/common/thread_pool.h"

namespace presto {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

WorkStealingPool::WorkStealingPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  queues_.resize(num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() { Shutdown(); }

bool WorkStealingPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++pending_;
  }
  work_cv_.notify_one();
  return true;
}

bool WorkStealingPool::PopTask(size_t self, std::function<void()>* task) {
  // Own deque first (front: oldest local work), then steal from the back of
  // the longest sibling deque.
  if (self < queues_.size() && !queues_[self].empty()) {
    *task = std::move(queues_[self].front());
    queues_[self].pop_front();
    return true;
  }
  size_t victim = queues_.size();
  size_t longest = 0;
  for (size_t i = 0; i < queues_.size(); ++i) {
    if (i != self && queues_[i].size() > longest) {
      longest = queues_[i].size();
      victim = i;
    }
  }
  if (victim == queues_.size()) return false;
  *task = std::move(queues_[victim].back());
  queues_[victim].pop_back();
  ++steals_;
  return true;
}

bool WorkStealingPool::TryRunOne() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!PopTask(queues_.size(), &task)) return false;
    ++active_;
  }
  task();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
    if (--pending_ == 0) idle_cv_.notify_all();
  }
  return true;
}

void WorkStealingPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void WorkStealingPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

int64_t WorkStealingPool::steals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steals_;
}

void WorkStealingPool::WorkerLoop(size_t self) {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (true) {
        if (PopTask(self, &task)) break;
        if (shutdown_) return;  // every deque drained
        work_cv_.wait(lock);
      }
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutdown_ is set and there is no more work.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace presto
