#ifndef PRESTO_COMMON_CLOCK_H_
#define PRESTO_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#ifdef __linux__
#include <ctime>
#endif

namespace presto {

/// Monotonic wall-clock reading used for real-time deadlines (query
/// timeouts). Distinct from the virtual Clock: a query deadline must fire
/// even when nothing advances simulated time — that wedged state is exactly
/// what the deadline exists to break.
inline int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock stopwatch for benchmarks.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Per-thread CPU-time stopwatch for operator stats: measures time the
/// calling thread actually spent on-core, so a task that blocks on an
/// exchange buffer accrues wall time but not CPU time. Falls back to the
/// wall clock on platforms without CLOCK_THREAD_CPUTIME_ID.
class CpuStopwatch {
 public:
  CpuStopwatch() : start_(NowNanos()) {}

  void Reset() { start_ = NowNanos(); }

  int64_t ElapsedNanos() const { return NowNanos() - start_; }

  static int64_t NowNanos() {
#ifdef __linux__
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
    }
#endif
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  int64_t start_;
};

/// Abstract time source. Latency models (simulated HDFS NameNode RPCs,
/// simulated S3 requests, shutdown grace periods) charge time against a Clock
/// so benches can run in virtual time instead of sleeping.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in nanoseconds since an arbitrary epoch.
  virtual int64_t NowNanos() const = 0;

  /// Advances time by (or sleeps for) the given duration.
  virtual void AdvanceNanos(int64_t nanos) = 0;

  void AdvanceMillis(int64_t millis) { AdvanceNanos(millis * 1000000); }
};

/// Real wall-clock time; AdvanceNanos sleeps.
class SystemClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void AdvanceNanos(int64_t nanos) override {
    std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  }
};

/// Virtual time that only moves when advanced. Thread-safe.
class SimulatedClock : public Clock {
 public:
  int64_t NowNanos() const override {
    return now_.load(std::memory_order_relaxed);
  }

  void AdvanceNanos(int64_t nanos) override {
    now_.fetch_add(nanos, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_{0};
};

}  // namespace presto

#endif  // PRESTO_COMMON_CLOCK_H_
