#ifndef PRESTO_COMMON_TRACE_H_
#define PRESTO_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "presto/common/clock.h"
#include "presto/common/status.h"

namespace presto {

// ---------------------------------------------------------------------------
// Blocked-time attribution
// ---------------------------------------------------------------------------
//
// Every thread owns one always-on cell of blocked-time counters. Deep layers
// (exchange waits, spill I/O, memory-arbiter waits, admission queueing) bump
// the cell of whatever thread they block; the non-virtual Operator::Next()
// wrapper snapshots the cell around NextInternal() and folds the delta into
// that operator's OperatorStats. Like wall/cpu time the attribution is
// cumulative: a parent operator's breakdown includes time spent in children
// pulled on the same thread. Work fanned out to pool threads (morsel chains)
// is carried back into the submitting thread's cell by RunParallel so the
// same cumulative rule holds across threads.
//
// The cell is plain (non-atomic) state: only its owning thread writes it.

enum class BlockedKind : int {
  kExchangeWait = 0,  // blocked producing into / consuming from an exchange
  kSpillIo = 1,       // spill run write/read/merge I/O
  kMemoryWait = 2,    // waiting on the memory arbiter for a reservation
  kQueued = 3,        // admission-queue wait (query level only)
  kScanIo = 4,        // scan-side file reads (lakefile page/dictionary/footer)
};
inline constexpr int kNumBlockedKinds = 5;

struct BlockedCounters {
  int64_t nanos[kNumBlockedKinds] = {};
  int64_t spill_write_bytes = 0;
  int64_t spill_read_bytes = 0;

  BlockedCounters Delta(const BlockedCounters& since) const {
    BlockedCounters d;
    for (int i = 0; i < kNumBlockedKinds; ++i) {
      d.nanos[i] = nanos[i] - since.nanos[i];
    }
    d.spill_write_bytes = spill_write_bytes - since.spill_write_bytes;
    d.spill_read_bytes = spill_read_bytes - since.spill_read_bytes;
    return d;
  }

  void Accumulate(const BlockedCounters& d) {
    for (int i = 0; i < kNumBlockedKinds; ++i) nanos[i] += d.nanos[i];
    spill_write_bytes += d.spill_write_bytes;
    spill_read_bytes += d.spill_read_bytes;
  }
};

/// The calling thread's blocked-time cell.
BlockedCounters& ThreadBlockedCounters();

/// RAII: times one blocking section into the calling thread's cell.
/// Construct only once it is known the caller will actually block — the
/// non-blocking fast paths should never pay the clock reads.
class BlockedTimer {
 public:
  explicit BlockedTimer(BlockedKind kind)
      : kind_(kind), start_nanos_(SteadyNowNanos()) {}
  ~BlockedTimer() { ThreadBlockedCounters().nanos[static_cast<int>(kind_)] += ElapsedNanos(); }
  int64_t ElapsedNanos() const { return SteadyNowNanos() - start_nanos_; }

  BlockedTimer(const BlockedTimer&) = delete;
  BlockedTimer& operator=(const BlockedTimer&) = delete;

 private:
  BlockedKind kind_;
  int64_t start_nanos_;
};

inline void AddThreadSpillWriteBytes(int64_t bytes) {
  ThreadBlockedCounters().spill_write_bytes += bytes;
}
inline void AddThreadSpillReadBytes(int64_t bytes) {
  ThreadBlockedCounters().spill_read_bytes += bytes;
}

// ---------------------------------------------------------------------------
// Span recording
// ---------------------------------------------------------------------------

enum class TraceKind : int {
  kQuery = 0,
  kAdmission = 1,     // admission-queue wait
  kStage = 2,
  kTask = 3,          // one task attempt (name carries the attempt number)
  kRetryBackoff = 4,  // backoff sleep between leaf-task attempts
  kChain = 5,         // one morsel chain consumed by an operator
  kOperator = 6,
  kExchangeWait = 7,  // one blocking exchange produce/consume wait
  kSpillWrite = 8,
  kSpillRead = 9,
  kMemoryWait = 10,   // one arbiter wait loop
  kScanDecode = 11,   // one scan NextBatch: page reads + decode of one batch
  kSpoolWrite = 12,   // one page appended to an exchange spool
  kSpoolRead = 13,    // one page (or partition open) replayed from a spool
  kSpeculation = 14,  // a duplicate attempt launched for a straggling task
};

const char* TraceKindName(TraceKind kind);

struct TraceSpan {
  int64_t id = 0;         // 1-based; 0 means "no span"
  int64_t parent_id = 0;  // 0 for the root (query) span
  TraceKind kind = TraceKind::kQuery;
  std::string name;
  int64_t start_nanos = 0;  // steady clock
  int64_t end_nanos = 0;    // 0 while open
  int64_t tid = 0;          // small per-recorder thread index
  std::map<std::string, int64_t> args;
};

/// Per-query span sink. One recorder lives for the duration of a traced
/// query; every thread that touches the query appends to it. Storage is
/// sharded by span id so concurrent operator chains do not contend on one
/// mutex, and capped so a runaway plan cannot grow without bound (BeginSpan
/// returns 0 past the cap and all 0-id operations are no-ops).
class TraceRecorder {
 public:
  explicit TraceRecorder(int64_t max_spans = 1 << 16)
      : max_spans_(max_spans), start_nanos_(SteadyNowNanos()) {}

  /// Opens a span; returns its id (0 if the recorder is full).
  int64_t BeginSpan(TraceKind kind, const std::string& name,
                    int64_t parent_id);

  /// Closes a span. No-op for id 0 or an already-closed span.
  void EndSpan(int64_t id);

  /// Attaches/overwrites one integer argument on an open or closed span.
  void SetArg(int64_t id, const std::string& key, int64_t value);

  /// Closes the span and attaches all args in one lock acquisition.
  void EndSpanWithArgs(int64_t id,
                       const std::vector<std::pair<std::string, int64_t>>& args);

  /// Steady-clock nanos of recorder creation — the trace's time origin.
  int64_t start_nanos() const { return start_nanos_; }

  int64_t dropped_spans() const {
    return dropped_spans_.load(std::memory_order_relaxed);
  }

  /// All spans recorded so far, sorted by id. Open spans are returned with
  /// end_nanos == 0; callers rendering them should treat that as "still
  /// running at snapshot time".
  std::vector<TraceSpan> Snapshot() const;

  /// Renders the snapshot as Chrome trace-event JSON ("X" complete events,
  /// microsecond timestamps relative to the trace origin) loadable in
  /// chrome://tracing and Perfetto. `pid` labels the process column with
  /// the query id; `trace_id` is echoed into otherData.
  std::string ToChromeTraceJson(int64_t pid, const std::string& trace_id) const;

 private:
  static constexpr int kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::deque<TraceSpan> spans;
    std::map<int64_t, size_t> index;  // span id -> position in `spans`
  };
  Shard& ShardFor(int64_t id) { return shards_[id % kShards]; }
  const Shard& ShardFor(int64_t id) const { return shards_[id % kShards]; }
  int64_t TidFor(std::thread::id id);

  const int64_t max_spans_;
  const int64_t start_nanos_;
  std::atomic<int64_t> next_id_{1};
  std::atomic<int64_t> dropped_spans_{0};
  Shard shards_[kShards];
  mutable std::mutex tid_mu_;
  std::map<std::thread::id, int64_t> tids_;
};

// ---------------------------------------------------------------------------
// Thread-local trace context
// ---------------------------------------------------------------------------
//
// Instrumented code finds "the current recorder and enclosing span" through
// a thread-local context rather than plumbing both through every call. The
// coordinator installs the context on the thread running a task body; scopes
// nest (operator spans swap themselves in during NextInternal) and restore
// on destruction. A null recorder means tracing is off for this thread.

struct TraceContext {
  TraceRecorder* recorder = nullptr;
  int64_t span_id = 0;  // enclosing span; parent for new spans
};

TraceContext& ThreadTraceContext();

/// RAII: installs {recorder, span} as the thread's context, restoring the
/// previous context on destruction.
class TraceContextScope {
 public:
  TraceContextScope(TraceRecorder* recorder, int64_t span_id)
      : saved_(ThreadTraceContext()) {
    ThreadTraceContext() = TraceContext{recorder, span_id};
  }
  ~TraceContextScope() { ThreadTraceContext() = saved_; }

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// RAII: records one kind-specific span (exchange wait, spill I/O, memory
/// wait) under the thread's current context, if tracing is on. Cheap when
/// off: a thread-local load and a null check.
class TraceEventScope {
 public:
  TraceEventScope(TraceKind kind, const char* name) {
    TraceContext& ctx = ThreadTraceContext();
    if (ctx.recorder != nullptr) {
      recorder_ = ctx.recorder;
      id_ = recorder_->BeginSpan(kind, name, ctx.span_id);
    }
  }
  ~TraceEventScope() {
    if (recorder_ != nullptr) recorder_->EndSpan(id_);
  }

  void SetArg(const std::string& key, int64_t value) {
    if (recorder_ != nullptr) recorder_->SetArg(id_, key, value);
  }

  TraceEventScope(const TraceEventScope&) = delete;
  TraceEventScope& operator=(const TraceEventScope&) = delete;

 private:
  TraceRecorder* recorder_ = nullptr;
  int64_t id_ = 0;
};

// ---------------------------------------------------------------------------
// Chrome trace JSON validation
// ---------------------------------------------------------------------------

struct ChromeTraceEvent {
  std::string name;
  std::string cat;
  std::string ph;
  int64_t ts_micros = 0;
  int64_t dur_micros = 0;
  int64_t pid = 0;
  int64_t tid = 0;
  std::map<std::string, int64_t> args;
};

struct ChromeTrace {
  std::vector<ChromeTraceEvent> events;
  std::string trace_id;
};

/// Minimal validating parser for the JSON ToChromeTraceJson() emits (strict
/// JSON subset: objects, arrays, strings, integer numbers). Used by tests
/// and scripts/check.sh to prove dumps round-trip.
Result<ChromeTrace> ParseChromeTraceJson(const std::string& json);

}  // namespace presto

#endif  // PRESTO_COMMON_TRACE_H_
