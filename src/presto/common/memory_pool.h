#ifndef PRESTO_COMMON_MEMORY_POOL_H_
#define PRESTO_COMMON_MEMORY_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "presto/common/metrics.h"
#include "presto/common/status.h"

namespace presto {

/// Hierarchical memory accounting. A pool tree mirrors the execution tree —
/// worker -> query -> task -> operator — and every allocation-ish event
/// (hash-table growth, sort buffers, exchange queues, cache entries)
/// reserves estimated bytes from its leaf pool. A reservation propagates to
/// every ancestor and is checked against each level's capacity, so both
/// per-query caps (session property query_max_memory) and the per-worker cap
/// are enforced at reservation time, before the memory is actually used.
///
/// This is accounting, not allocation: operators still use ordinary
/// containers and report their EstimateBytes()-style footprint. The tree is
/// lock-free — reserved bytes and peaks are per-pool atomics, and a failed
/// reservation unwinds the partial walk — so reservation on the hot path is
/// one relaxed CAS per tree level.
///
/// Lifetime: children hold a shared_ptr to their parent, so a leaf pool held
/// by an operator keeps the whole chain alive. Destroying a pool with a
/// residual reservation (failure-path backstop; RAII releases normally)
/// returns the residue to its ancestors.
///
/// Counters (root's registry, may be null): memory.reserved.bytes is the
/// cumulative bytes ever reserved anywhere in the tree (monotonic; current
/// usage is reserved() on the root), memory.revoked.bytes is bumped by
/// operators when revocation (spill) releases memory.
class MemoryPool : public std::enable_shared_from_this<MemoryPool> {
 public:
  static constexpr int64_t kUnlimited = 0;

  /// Creates a root (worker-level) pool. `capacity_bytes` of kUnlimited
  /// disables the cap at this level.
  static std::shared_ptr<MemoryPool> CreateRoot(
      std::string name, int64_t capacity_bytes = kUnlimited,
      MetricsRegistry* metrics = nullptr);

  /// Creates a child pool; reservations against the child count against this
  /// pool (and its ancestors) too.
  std::shared_ptr<MemoryPool> AddChild(std::string name,
                                       int64_t capacity_bytes = kUnlimited);

  ~MemoryPool();

  /// Reserves `bytes` against this pool and every ancestor. On failure
  /// nothing is reserved and the returned kResourceExhausted names the
  /// exhausted pool; if `failed_pool` is non-null it is set to that pool so
  /// callers can tell a query-cap failure (spill / fail the query) from a
  /// worker-cap failure (invoke the low-memory killer).
  Status Reserve(int64_t bytes, const MemoryPool** failed_pool = nullptr);

  /// Returns `bytes` previously reserved through this pool.
  void Release(int64_t bytes);

  const std::string& name() const { return name_; }
  int64_t capacity_bytes() const { return capacity_bytes_; }
  /// Bytes currently reserved through this pool (including descendants).
  int64_t reserved_bytes() const {
    return reserved_.load(std::memory_order_relaxed);
  }
  /// High-water mark of reserved_bytes().
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  MemoryPool* parent() const { return parent_.get(); }

 private:
  MemoryPool(std::string name, int64_t capacity_bytes,
             std::shared_ptr<MemoryPool> parent, MetricsRegistry* metrics);

  void UpdatePeak(int64_t reserved_now);

  const std::string name_;
  const int64_t capacity_bytes_;  // kUnlimited = no cap at this level
  const std::shared_ptr<MemoryPool> parent_;
  std::atomic<int64_t> reserved_{0};
  std::atomic<int64_t> peak_{0};
  MetricsRegistry::Counter* reserved_counter_ = nullptr;  // root only
};

/// Tracks one logical consumer's reservation against a pool and releases it
/// on destruction. SetBytes() moves the reservation to a new absolute
/// footprint (reserving the delta or releasing the surplus), which matches
/// how operators re-estimate after each consumed page.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  explicit MemoryReservation(std::shared_ptr<MemoryPool> pool)
      : pool_(std::move(pool)) {}

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  ~MemoryReservation() { Clear(); }

  /// Adjusts the reservation to `bytes` total. Shrinking always succeeds;
  /// growing may fail with kResourceExhausted, leaving the old reservation
  /// in place.
  Status SetBytes(int64_t bytes, const MemoryPool** failed_pool = nullptr) {
    if (!pool_) return Status::OK();
    if (bytes < 0) bytes = 0;
    if (bytes > bytes_) {
      Status st = pool_->Reserve(bytes - bytes_, failed_pool);
      if (!st.ok()) return st;
    } else if (bytes < bytes_) {
      pool_->Release(bytes_ - bytes);
    }
    bytes_ = bytes;
    return Status::OK();
  }

  /// Releases the whole reservation (idempotent).
  void Clear() {
    if (pool_ && bytes_ > 0) pool_->Release(bytes_);
    bytes_ = 0;
  }

  int64_t bytes() const { return bytes_; }
  MemoryPool* pool() const { return pool_.get(); }

 private:
  std::shared_ptr<MemoryPool> pool_;
  int64_t bytes_ = 0;
};

/// Worker-level memory arbitration hook. When an operator's reservation
/// fails at the *worker* cap (not its query cap) even after revoking itself,
/// it asks the arbiter to free memory; the coordinator implements this as
/// the low-memory killer (cancel the largest-reservation query). Returns
/// true if memory was (or is being) freed and the caller should retry the
/// reservation.
class MemoryArbiter {
 public:
  virtual ~MemoryArbiter() = default;
  virtual bool OnMemoryPressure(int64_t requesting_query_id,
                                int64_t bytes_requested) = 0;
};

/// Process-wide pool that metadata caches (footer / file-list / file-handle)
/// charge their entries to, so cache memory is visible alongside query
/// memory. Uncapped by default; individual caches enforce their own byte
/// capacities via weighted LRU eviction.
std::shared_ptr<MemoryPool> ProcessCachePool();

}  // namespace presto

#endif  // PRESTO_COMMON_MEMORY_POOL_H_
