#ifndef PRESTO_COMMON_FAULT_INJECTION_H_
#define PRESTO_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "presto/common/random.h"
#include "presto/common/status.h"

namespace presto {

/// Deterministic, seedable fault injector threaded through the I/O and
/// execution layers (S3 object store, simulated HDFS, connector split
/// readers, the exchange, worker task bodies, gateway submission). Faults
/// become a first-class, testable input: the chaos differential test arms a
/// schedule, runs the query corpus, and asserts results are either identical
/// to the fault-free run or fail with a classified, non-corrupt error.
///
/// Three fault kinds per named point:
///  - probabilistic: each call fails with probability p, drawn from a PRNG
///    derived from (seed, point name) so schedules replay exactly;
///  - scripted: an explicit list of 1-based call indices that fail (precise
///    regression tests: "the 3rd split open fails");
///  - crash-style: from the Nth call onward every call fails — the point
///    never recovers, modeling a died process rather than a flaky request.
///
/// The injector is a process-wide singleton so fault points do not thread a
/// handle through every constructor. The disabled fast path is one relaxed
/// atomic load; tests that arm faults must disarm them (Reset) before
/// returning. Thread-safe.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Disarms every point and clears call counters. Leaves the seed alone.
  void Reset();

  /// Seeds the per-point PRNGs (and resets armed points/counters so a chaos
  /// iteration starts from a clean slate).
  void Seed(uint64_t seed);
  uint64_t seed() const { return seed_; }

  /// Arms `point` to fail each call with probability `p`.
  void ArmProbabilistic(const std::string& point, double p,
                        StatusCode code = StatusCode::kUnavailable);

  /// Arms `point` to fail exactly the listed 1-based call indices.
  void ArmScripted(const std::string& point, std::vector<int64_t> failing_calls,
                   StatusCode code = StatusCode::kUnavailable);

  /// Arms `point` to fail every call from the `after_calls + 1`-th onward
  /// (crash-style: the point goes down and stays down).
  void ArmCrash(const std::string& point, int64_t after_calls,
                StatusCode code = StatusCode::kUnavailable);

  /// Fault point: returns OK or the injected error, advancing the point's
  /// call counter. The disabled path (no point armed anywhere) is one
  /// relaxed atomic load and no allocation.
  Status Hit(const std::string& point);

  /// Boolean fault point for triggers that are not status-shaped (e.g.
  /// "kill this worker now"). True when the point fires.
  bool ShouldTrigger(const std::string& point) { return !Hit(point).ok(); }

  /// Times `point` was evaluated / times it actually injected a fault.
  int64_t CallCount(const std::string& point) const;
  int64_t InjectedCount(const std::string& point) const;
  /// Faults injected across all points.
  int64_t TotalInjected() const;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  FaultInjector() = default;

  enum class Kind { kProbabilistic, kScripted, kCrash };
  struct Point {
    Kind kind = Kind::kProbabilistic;
    double probability = 0;
    std::vector<int64_t> failing_calls;  // scripted, 1-based, sorted
    int64_t crash_after = 0;
    StatusCode code = StatusCode::kUnavailable;
    Random rng{0};
    int64_t calls = 0;
    int64_t injected = 0;
  };

  // Counters survive for unarmed points too, so tests can assert a fault
  // point was exercised without arming it.
  struct Stats {
    int64_t calls = 0;
  };

  std::atomic<bool> enabled_{false};
  uint64_t seed_ = 42;
  mutable std::mutex mu_;
  std::map<std::string, Point> points_;
};

/// True for errors worth retrying: transient unavailability (S3 5xx, a died
/// worker, a latched exchange) and I/O errors. Everything else — user errors,
/// corruption, resource exhaustion, internal invariants — is terminal.
inline bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kIoError;
}

}  // namespace presto

#endif  // PRESTO_COMMON_FAULT_INJECTION_H_
