#ifndef PRESTO_COMMON_THREAD_POOL_H_
#define PRESTO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace presto {

/// Fixed-size worker pool used for task execution inside simulated workers
/// and for parallel split processing. Tasks are std::function<void()>;
/// exceptions must not escape tasks (the library is exception-free).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void WaitIdle();

  /// Stops accepting tasks, drains the queue, joins all threads.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

/// Work-stealing pool for morsel-driven execution. Each pool thread owns a
/// deque; Submit spreads tasks round-robin across the deques, a thread pops
/// its own deque from the front and steals from the back of a sibling's when
/// its own runs dry. External threads participate through TryRunOne (the
/// morsel executor's calling thread drains its share of the work instead of
/// blocking), so query progress never depends on a pool thread being free —
/// helpers are an assist, not a requirement.
///
/// Tasks are morsel-sized (tens of thousands of rows, ~milliseconds), so the
/// queues are guarded by one mutex: the lock is touched once per morsel, far
/// off the hot path, and keeps the stealing protocol trivially race-free.
class WorkStealingPool {
 public:
  explicit WorkStealingPool(size_t num_threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueues a task on the next deque (round-robin). Returns false if the
  /// pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Runs one queued task on the calling thread if any is immediately
  /// available (steals from the back of the fullest deque). Returns false
  /// when every deque is empty.
  bool TryRunOne();

  /// Blocks until every submitted task has finished running.
  void WaitIdle();

  /// Stops accepting tasks, drains the queues, joins all threads.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

  /// Tasks executed by a thread other than the one whose deque they were
  /// placed on (includes TryRunOne assists). Load-balancing observability.
  int64_t steals() const;

 private:
  void WorkerLoop(size_t self);
  /// Pops a task: `self`'s own deque front first, then the back of the
  /// longest sibling deque. `self` == num_threads() for external callers.
  bool PopTask(size_t self, std::function<void()>* task);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> threads_;
  size_t next_queue_ = 0;  // round-robin Submit placement
  size_t active_ = 0;
  size_t pending_ = 0;  // queued + active (WaitIdle waits for 0)
  int64_t steals_ = 0;
  bool shutdown_ = false;
};

}  // namespace presto

#endif  // PRESTO_COMMON_THREAD_POOL_H_
