#ifndef PRESTO_COMMON_THREAD_POOL_H_
#define PRESTO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace presto {

/// Fixed-size worker pool used for task execution inside simulated workers
/// and for parallel split processing. Tasks are std::function<void()>;
/// exceptions must not escape tasks (the library is exception-free).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void WaitIdle();

  /// Stops accepting tasks, drains the queue, joins all threads.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace presto

#endif  // PRESTO_COMMON_THREAD_POOL_H_
