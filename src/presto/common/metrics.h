#ifndef PRESTO_COMMON_METRICS_H_
#define PRESTO_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace presto {

/// Thread-safe named counters. Filesystems, caches, and connectors record
/// call counts (listFiles, getFileInfo, bytes read, cache hits/misses) here;
/// the cache and S3 benches report the paper's reduction percentages from
/// these counters.
class MetricsRegistry {
 public:
  void Increment(const std::string& name, int64_t delta = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
  }

  int64_t Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
  }

  std::map<std::string, int64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
};

}  // namespace presto

#endif  // PRESTO_COMMON_METRICS_H_
