#ifndef PRESTO_COMMON_METRICS_H_
#define PRESTO_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace presto {

/// Thread-safe named counters. Filesystems, caches, connectors, workers, and
/// the per-query execution layer record call counts (fs.dir.list,
/// s3.get_object.calls, cache.footer.hits, exec.agg.hash_probes, ...) here;
/// benches and the observability layer report the paper's reduction
/// percentages from these counters.
///
/// Counter names follow a `subsystem.object.verb` scheme; the catalog lives
/// in DESIGN.md ("Observability" section).
///
/// Hot-path design: the registry hands out stable `Counter*` pointers that
/// callers cache once (at operator/connector construction) and then bump with
/// a single relaxed atomic add — no lock, no map lookup per event. The
/// name-keyed `Increment()` convenience still exists for cold paths; it pays
/// one sharded lock + hash lookup. Values survive `Reset()` registration-wise
/// (counters are zeroed, pointers stay valid).
class MetricsRegistry {
 public:
  /// One monotonically increasing counter. Padded to a cache line so
  /// pre-registered hot counters bumped from different threads don't
  /// false-share.
  class alignas(64) Counter {
   public:
    void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
    int64_t Get() const { return value_.load(std::memory_order_relaxed); }
    void Reset() { value_.store(0, std::memory_order_relaxed); }

   private:
    std::atomic<int64_t> value_{0};
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name`, creating it if needed. The pointer is
  /// stable for the registry's lifetime — cache it and call Add() directly on
  /// hot paths.
  Counter* FindOrRegister(const std::string& name);

  /// Cold-path convenience: one lookup + add.
  void Increment(const std::string& name, int64_t delta = 1) {
    FindOrRegister(name)->Add(delta);
  }

  int64_t Get(const std::string& name) const;

  /// Zeroes every counter. Registrations (and cached Counter pointers)
  /// remain valid.
  void Reset();

  std::map<std::string, int64_t> Snapshot() const;

  /// Renders every counter in Prometheus text exposition format, one
  /// `# TYPE` line plus one sample per counter. `prefix` is prepended to
  /// each metric name before sanitization (e.g. "hdfs." -> hdfs_fs_dir_list).
  std::string RenderText(const std::string& prefix = "") const;

  /// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; every other
  /// character (the dots of subsystem.object.verb, dashes in cluster names)
  /// becomes '_'.
  static std::string SanitizeName(const std::string& name);

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Counter*> index;
    std::deque<Counter> storage;  // deque: stable addresses on growth
  };

  static constexpr size_t kNumShards = 16;

  Shard& ShardFor(const std::string& name) {
    return shards_[std::hash<std::string>{}(name) % kNumShards];
  }
  const Shard& ShardFor(const std::string& name) const {
    return shards_[std::hash<std::string>{}(name) % kNumShards];
  }

  std::array<Shard, kNumShards> shards_;
};

/// Aggregates several registries (plus computed gauges) into one Prometheus
/// text exposition — the coordinator's /metrics endpoint equivalent. Sources
/// with the same resulting metric name are summed (e.g. per-worker task
/// counters roll up across the fleet).
class MetricsExposition {
 public:
  /// Adds every counter of `registry`, names prefixed with `prefix`. The
  /// registry must outlive RenderText(). Not owned.
  void AddRegistry(const std::string& prefix, const MetricsRegistry* registry);

  /// Adds a single computed gauge sampled at render time.
  void AddGauge(const std::string& name, std::function<int64_t()> fn);

  std::string RenderText() const;

 private:
  std::vector<std::pair<std::string, const MetricsRegistry*>> registries_;
  std::vector<std::pair<std::string, std::function<int64_t()>>> gauges_;
};

}  // namespace presto

#endif  // PRESTO_COMMON_METRICS_H_
