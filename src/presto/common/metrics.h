#ifndef PRESTO_COMMON_METRICS_H_
#define PRESTO_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace presto {

/// Thread-safe named counters. Filesystems, caches, connectors, workers, and
/// the per-query execution layer record call counts (fs.dir.list,
/// s3.get_object.calls, cache.footer.hits, exec.agg.hash_probes, ...) here;
/// benches and the observability layer report the paper's reduction
/// percentages from these counters.
///
/// Counter names follow a `subsystem.object.verb` scheme; the catalog lives
/// in DESIGN.md ("Observability" section).
///
/// Hot-path design: the registry hands out stable `Counter*` pointers that
/// callers cache once (at operator/connector construction) and then bump with
/// a single relaxed atomic add — no lock, no map lookup per event. The
/// name-keyed `Increment()` convenience still exists for cold paths; it pays
/// one sharded lock + hash lookup. Values survive `Reset()` registration-wise
/// (counters are zeroed, pointers stay valid).
class MetricsRegistry {
 public:
  /// One monotonically increasing counter. Padded to a cache line so
  /// pre-registered hot counters bumped from different threads don't
  /// false-share.
  class alignas(64) Counter {
   public:
    void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
    int64_t Get() const { return value_.load(std::memory_order_relaxed); }
    void Reset() { value_.store(0, std::memory_order_relaxed); }

   private:
    std::atomic<int64_t> value_{0};
  };

  /// One log2-bucketed latency/size histogram. Bucket i holds samples whose
  /// value needs i significant bits (0, 1, 2-3, 4-7, ... 2^62-...), so
  /// Record() is a shift-free bit_width plus one relaxed atomic add — cheap
  /// enough for per-query and per-operator latency recording. Percentile()
  /// answers with the bucket's inclusive upper bound (2^i - 1), i.e. within
  /// 2x of the true quantile, which is the resolution tail-latency SLOs need.
  class alignas(64) Histogram {
   public:
    static constexpr int kNumBuckets = 64;

    /// Bucket index for a value: 0 for v <= 0, otherwise bit_width(v).
    static int BucketFor(int64_t value) {
      if (value <= 0) return 0;
      int width = 0;
      uint64_t v = static_cast<uint64_t>(value);
      while (v != 0) {
        ++width;
        v >>= 1;
      }
      return width < kNumBuckets ? width : kNumBuckets - 1;
    }

    /// Inclusive upper bound of bucket i.
    static int64_t BucketUpperBound(int i) {
      if (i <= 0) return 0;
      if (i >= 63) return INT64_MAX;
      return (int64_t{1} << i) - 1;
    }

    void Record(int64_t value) {
      buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
      sum_.fetch_add(value > 0 ? value : 0, std::memory_order_relaxed);
    }

    int64_t Count() const { return count_.load(std::memory_order_relaxed); }
    int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

    void Reset() {
      for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
      count_.store(0, std::memory_order_relaxed);
      sum_.store(0, std::memory_order_relaxed);
    }

   private:
    friend class MetricsRegistry;
    std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
    std::atomic<int64_t> count_{0};
    std::atomic<int64_t> sum_{0};
  };

  /// Point-in-time histogram state. Carries the raw buckets (not just
  /// quantiles) so the exposition can merge same-named histograms across
  /// registries before computing quantiles.
  struct HistogramSnapshot {
    std::array<int64_t, Histogram::kNumBuckets> buckets{};
    int64_t count = 0;
    int64_t sum = 0;

    void Merge(const HistogramSnapshot& other) {
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        buckets[i] += other.buckets[i];
      }
      count += other.count;
      sum += other.sum;
    }

    /// Value at quantile q in [0, 1]: the upper bound of the bucket holding
    /// the ceil(q * count)-th sample. 0 for an empty histogram.
    int64_t Percentile(double q) const;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name`, creating it if needed. The pointer is
  /// stable for the registry's lifetime — cache it and call Add() directly on
  /// hot paths.
  Counter* FindOrRegister(const std::string& name);

  /// Cold-path convenience: one lookup + add.
  void Increment(const std::string& name, int64_t delta = 1) {
    FindOrRegister(name)->Add(delta);
  }

  int64_t Get(const std::string& name) const;

  /// Returns the histogram named `name`, creating it if needed. Same
  /// stable-pointer contract as FindOrRegister. Histograms and counters live
  /// in separate namespaces (the same name may exist as both, though the
  /// catalog avoids it).
  Histogram* FindOrRegisterHistogram(const std::string& name);

  /// Cold-path convenience: one lookup + record.
  void RecordHistogram(const std::string& name, int64_t value) {
    FindOrRegisterHistogram(name)->Record(value);
  }

  /// Zeroes every counter and histogram. Registrations (and cached
  /// Counter/Histogram pointers) remain valid.
  void Reset();

  std::map<std::string, int64_t> Snapshot() const;
  std::map<std::string, HistogramSnapshot> SnapshotHistograms() const;

  /// Renders every counter and histogram in Prometheus text exposition
  /// format, merged in sorted metric-name order so output is deterministic
  /// and test-diffable. Counters render as one `# TYPE` line plus one
  /// sample; histograms render as summaries (quantile-labeled samples plus
  /// _sum and _count). `prefix` is prepended to each metric name before
  /// sanitization (e.g. "hdfs." -> hdfs_fs_dir_list).
  std::string RenderText(const std::string& prefix = "") const;

  /// Renders one merged counter map + histogram map in sorted name order.
  /// Shared by RenderText and MetricsExposition. Keys must be sanitized.
  static std::string RenderMerged(
      const std::map<std::string, int64_t>& counters,
      const std::map<std::string, HistogramSnapshot>& histograms);

  /// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; every other
  /// character (the dots of subsystem.object.verb, dashes in cluster names)
  /// becomes '_'.
  static std::string SanitizeName(const std::string& name);

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Counter*> index;
    std::deque<Counter> storage;  // deque: stable addresses on growth
    std::unordered_map<std::string, Histogram*> hist_index;
    std::deque<Histogram> hist_storage;
  };

  static constexpr size_t kNumShards = 16;

  Shard& ShardFor(const std::string& name) {
    return shards_[std::hash<std::string>{}(name) % kNumShards];
  }
  const Shard& ShardFor(const std::string& name) const {
    return shards_[std::hash<std::string>{}(name) % kNumShards];
  }

  std::array<Shard, kNumShards> shards_;
};

/// Aggregates several registries (plus computed gauges) into one Prometheus
/// text exposition — the coordinator's /metrics endpoint equivalent. Sources
/// with the same resulting metric name are summed (e.g. per-worker task
/// counters roll up across the fleet).
class MetricsExposition {
 public:
  /// Adds every counter of `registry`, names prefixed with `prefix`. The
  /// registry must outlive RenderText(). Not owned.
  void AddRegistry(const std::string& prefix, const MetricsRegistry* registry);

  /// Adds a single computed gauge sampled at render time.
  void AddGauge(const std::string& name, std::function<int64_t()> fn);

  std::string RenderText() const;

 private:
  std::vector<std::pair<std::string, const MetricsRegistry*>> registries_;
  std::vector<std::pair<std::string, std::function<int64_t()>>> gauges_;
};

}  // namespace presto

#endif  // PRESTO_COMMON_METRICS_H_
