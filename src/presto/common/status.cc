#include "presto/common/status.h"

namespace presto {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kSyntaxError:
      return "SYNTAX_ERROR";
    case StatusCode::kSchemaViolation:
      return "SCHEMA_VIOLATION";
    case StatusCode::kUserError:
      return "USER_ERROR";
    case StatusCode::kRejected:
      return "REJECTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace presto
