#include "presto/common/memory_pool.h"

#include <vector>

namespace presto {

std::shared_ptr<MemoryPool> MemoryPool::CreateRoot(std::string name,
                                                   int64_t capacity_bytes,
                                                   MetricsRegistry* metrics) {
  return std::shared_ptr<MemoryPool>(
      new MemoryPool(std::move(name), capacity_bytes, nullptr, metrics));
}

std::shared_ptr<MemoryPool> MemoryPool::AddChild(std::string name,
                                                 int64_t capacity_bytes) {
  return std::shared_ptr<MemoryPool>(new MemoryPool(
      std::move(name), capacity_bytes, shared_from_this(), nullptr));
}

MemoryPool::MemoryPool(std::string name, int64_t capacity_bytes,
                       std::shared_ptr<MemoryPool> parent,
                       MetricsRegistry* metrics)
    : name_(std::move(name)),
      capacity_bytes_(capacity_bytes),
      parent_(std::move(parent)) {
  if (metrics != nullptr) {
    reserved_counter_ = metrics->FindOrRegister("memory.reserved.bytes");
  }
}

MemoryPool::~MemoryPool() {
  // Backstop for failure paths that dropped a pool without releasing: hand
  // the residue back to the ancestors so the worker pool doesn't leak
  // phantom reservation. (RAII via MemoryReservation releases before this.)
  int64_t residue = reserved_.load(std::memory_order_relaxed);
  if (residue > 0 && parent_ != nullptr) parent_->Release(residue);
}

void MemoryPool::UpdatePeak(int64_t reserved_now) {
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (reserved_now > peak &&
         !peak_.compare_exchange_weak(peak, reserved_now,
                                      std::memory_order_relaxed)) {
  }
}

Status MemoryPool::Reserve(int64_t bytes, const MemoryPool** failed_pool) {
  if (bytes <= 0) return Status::OK();
  // Walk leaf -> root, reserving at each level; on a cap violation unwind
  // the levels already charged so a failed reservation is a no-op.
  std::vector<MemoryPool*> charged;
  for (MemoryPool* p = this; p != nullptr; p = p->parent_.get()) {
    int64_t cur = p->reserved_.load(std::memory_order_relaxed);
    while (true) {
      if (p->capacity_bytes_ != kUnlimited && cur + bytes > p->capacity_bytes_) {
        for (MemoryPool* c : charged) {
          c->reserved_.fetch_sub(bytes, std::memory_order_relaxed);
        }
        if (failed_pool != nullptr) *failed_pool = p;
        return Status::ResourceExhausted(
            "memory pool '" + p->name_ + "' exceeded: requested " +
            std::to_string(bytes) + " bytes, reserved " + std::to_string(cur) +
            " of " + std::to_string(p->capacity_bytes_));
      }
      if (p->reserved_.compare_exchange_weak(cur, cur + bytes,
                                             std::memory_order_relaxed)) {
        break;
      }
    }
    p->UpdatePeak(cur + bytes);
    charged.push_back(p);
    if (p->reserved_counter_ != nullptr) p->reserved_counter_->Add(bytes);
  }
  return Status::OK();
}

void MemoryPool::Release(int64_t bytes) {
  if (bytes <= 0) return;
  for (MemoryPool* p = this; p != nullptr; p = p->parent_.get()) {
    p->reserved_.fetch_sub(bytes, std::memory_order_relaxed);
  }
}

std::shared_ptr<MemoryPool> ProcessCachePool() {
  static std::shared_ptr<MemoryPool> pool =
      MemoryPool::CreateRoot("cache", MemoryPool::kUnlimited);
  return pool;
}

}  // namespace presto
