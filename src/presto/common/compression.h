#ifndef PRESTO_COMMON_COMPRESSION_H_
#define PRESTO_COMMON_COMPRESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "presto/common/status.h"

namespace presto {

/// Compression codecs for lakefile pages. The paper evaluates the native
/// Parquet writer under Snappy, Gzip, and no compression (Figures 18-20).
/// We cannot ship the real snappy/zlib, so the repo implements two real LZ77
/// compressors with the same speed/ratio ordering:
///   kSnappy — fast greedy LZ with a small hash table (speed-oriented),
///   kGzip   — chained-hash lazy-matching LZ with a large window
///             (ratio-oriented, measurably slower).
/// See DESIGN.md "Substitutions".
enum class CompressionKind : uint8_t {
  kNone = 0,
  kSnappy = 1,
  kGzip = 2,
};

const char* CompressionKindToString(CompressionKind kind);
Result<CompressionKind> CompressionKindFromString(const std::string& name);

/// Compresses `input` into a self-describing frame (uncompressed size +
/// payload). Always succeeds; incompressible input degrades to a stored
/// block with ~1/64 overhead.
std::vector<uint8_t> Compress(CompressionKind kind, const uint8_t* input,
                              size_t size);

/// Decompresses a frame produced by Compress with the same kind.
Result<std::vector<uint8_t>> Decompress(CompressionKind kind,
                                        const uint8_t* input, size_t size);

}  // namespace presto

#endif  // PRESTO_COMMON_COMPRESSION_H_
