#ifndef PRESTO_COMMON_RANDOM_H_
#define PRESTO_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace presto {

/// Deterministic xorshift128+ PRNG. Workload generators use this so that
/// tests and benches are reproducible across runs and platforms (std::mt19937
/// distributions are not portable across standard libraries).
class Random {
 public:
  explicit Random(uint64_t seed = 42) {
    s0_ = seed * 0x9e3779b97f4a7c15ULL + 1;
    s1_ = (seed ^ 0xdeadbeefcafebabeULL) * 0xbf58476d1ce4e5b9ULL + 1;
    // Warm up so nearby seeds diverge.
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) / 9007199254740992.0;  // 2^53
  }

  /// True with probability p.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length) {
    std::string s(length, 'a');
    for (size_t i = 0; i < length; ++i) {
      s[i] = static_cast<char>('a' + NextBelow(26));
    }
    return s;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace presto

#endif  // PRESTO_COMMON_RANDOM_H_
