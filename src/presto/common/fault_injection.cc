#include "presto/common/fault_injection.h"

#include <algorithm>

namespace presto {

namespace {

// FNV-1a over the point name: mixed with the seed it gives every point its
// own deterministic PRNG stream, so arming point B does not perturb the
// fault schedule point A already replays.
uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  points_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

void FaultInjector::ArmProbabilistic(const std::string& point, double p,
                                     StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& entry = points_[point];
  entry.kind = Kind::kProbabilistic;
  entry.probability = p;
  entry.code = code;
  entry.rng = Random(seed_ ^ HashName(point));
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmScripted(const std::string& point,
                                std::vector<int64_t> failing_calls,
                                StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& entry = points_[point];
  entry.kind = Kind::kScripted;
  std::sort(failing_calls.begin(), failing_calls.end());
  entry.failing_calls = std::move(failing_calls);
  entry.code = code;
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmCrash(const std::string& point, int64_t after_calls,
                             StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& entry = points_[point];
  entry.kind = Kind::kCrash;
  entry.crash_after = after_calls;
  entry.code = code;
  enabled_.store(true, std::memory_order_relaxed);
}

Status FaultInjector::Hit(const std::string& point) {
  if (!enabled_.load(std::memory_order_relaxed)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return Status::OK();
  Point& entry = it->second;
  ++entry.calls;
  bool fire = false;
  switch (entry.kind) {
    case Kind::kProbabilistic:
      fire = entry.rng.NextBool(entry.probability);
      break;
    case Kind::kScripted:
      fire = std::binary_search(entry.failing_calls.begin(),
                                entry.failing_calls.end(), entry.calls);
      break;
    case Kind::kCrash:
      fire = entry.calls > entry.crash_after;
      break;
  }
  if (!fire) return Status::OK();
  ++entry.injected;
  return Status(entry.code, "injected fault at " + point + " (call " +
                                std::to_string(entry.calls) + ")");
}

int64_t FaultInjector::CallCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.calls;
}

int64_t FaultInjector::InjectedCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.injected;
}

int64_t FaultInjector::TotalInjected() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [name, entry] : points_) total += entry.injected;
  return total;
}

}  // namespace presto
