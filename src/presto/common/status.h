#ifndef PRESTO_COMMON_STATUS_H_
#define PRESTO_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace presto {

/// Error categories used across the engine. Modeled after the Status idiom
/// used by storage engines (RocksDB/LevelDB): the library never throws;
/// every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIoError,
  kCorruption,
  kResourceExhausted,
  kUnavailable,       // transient failure; retry may succeed (e.g. S3 5xx)
  kSyntaxError,       // SQL lexer/parser errors
  kSchemaViolation,   // schema-evolution rule violations
  kUserError,         // semantic analysis errors surfaced to the query author
  kRejected,          // load shed: the cluster refused to even queue the work
};

/// Returns a human-readable name for a status code, e.g. "IO_ERROR".
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. An OK status carries no
/// allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status SyntaxError(std::string msg) {
    return Status(StatusCode::kSyntaxError, std::move(msg));
  }
  static Status SchemaViolation(std::string msg) {
    return Status(StatusCode::kSchemaViolation, std::move(msg));
  }
  static Status UserError(std::string msg) {
    return Status(StatusCode::kUserError, std::move(msg));
  }
  static Status Rejected(std::string msg) {
    return Status(StatusCode::kRejected, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// error result aborts, so callers must check ok() (or use the
/// ASSIGN_OR_RETURN macro).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value and from an error Status keeps call
  /// sites terse: `return 42;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : value_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace presto

/// Propagates a non-OK Status to the caller.
#define RETURN_IF_ERROR(expr)                 \
  do {                                        \
    ::presto::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

#define PRESTO_CONCAT_IMPL(a, b) a##b
#define PRESTO_CONCAT(a, b) PRESTO_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise moves the value into `lhs` (which may be a declaration).
#define ASSIGN_OR_RETURN(lhs, expr)                                     \
  auto PRESTO_CONCAT(_res_, __LINE__) = (expr);                         \
  if (!PRESTO_CONCAT(_res_, __LINE__).ok())                             \
    return PRESTO_CONCAT(_res_, __LINE__).status();                     \
  lhs = std::move(PRESTO_CONCAT(_res_, __LINE__)).value()

#endif  // PRESTO_COMMON_STATUS_H_
