#include "presto/common/trace.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace presto {

BlockedCounters& ThreadBlockedCounters() {
  thread_local BlockedCounters cell;
  return cell;
}

TraceContext& ThreadTraceContext() {
  thread_local TraceContext ctx;
  return ctx;
}

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kQuery:
      return "query";
    case TraceKind::kAdmission:
      return "admission";
    case TraceKind::kStage:
      return "stage";
    case TraceKind::kTask:
      return "task";
    case TraceKind::kRetryBackoff:
      return "retry_backoff";
    case TraceKind::kChain:
      return "chain";
    case TraceKind::kOperator:
      return "operator";
    case TraceKind::kExchangeWait:
      return "exchange_wait";
    case TraceKind::kSpillWrite:
      return "spill_write";
    case TraceKind::kSpillRead:
      return "spill_read";
    case TraceKind::kMemoryWait:
      return "memory_wait";
    case TraceKind::kScanDecode:
      return "scan_decode";
    case TraceKind::kSpoolWrite:
      return "spool_write";
    case TraceKind::kSpoolRead:
      return "spool_read";
    case TraceKind::kSpeculation:
      return "speculation";
  }
  return "unknown";
}

int64_t TraceRecorder::TidFor(std::thread::id id) {
  std::lock_guard<std::mutex> lock(tid_mu_);
  auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  int64_t tid = static_cast<int64_t>(tids_.size()) + 1;
  tids_.emplace(id, tid);
  return tid;
}

int64_t TraceRecorder::BeginSpan(TraceKind kind, const std::string& name,
                                 int64_t parent_id) {
  int64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (id > max_spans_) {
    dropped_spans_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  TraceSpan span;
  span.id = id;
  span.parent_id = parent_id;
  span.kind = kind;
  span.name = name;
  span.start_nanos = SteadyNowNanos();
  span.tid = TidFor(std::this_thread::get_id());
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.index[id] = shard.spans.size();
  shard.spans.push_back(std::move(span));
  return id;
}

void TraceRecorder::EndSpan(int64_t id) {
  if (id == 0) return;
  int64_t now = SteadyNowNanos();
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) return;
  TraceSpan& span = shard.spans[it->second];
  if (span.end_nanos == 0) span.end_nanos = now;
}

void TraceRecorder::SetArg(int64_t id, const std::string& key, int64_t value) {
  if (id == 0) return;
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) return;
  shard.spans[it->second].args[key] = value;
}

void TraceRecorder::EndSpanWithArgs(
    int64_t id, const std::vector<std::pair<std::string, int64_t>>& args) {
  if (id == 0) return;
  int64_t now = SteadyNowNanos();
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) return;
  TraceSpan& span = shard.spans[it->second];
  if (span.end_nanos == 0) span.end_nanos = now;
  for (const auto& [key, value] : args) span.args[key] = value;
}

std::vector<TraceSpan> TraceRecorder::Snapshot() const {
  std::vector<TraceSpan> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.insert(out.end(), shard.spans.begin(), shard.spans.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) { return a.id < b.id; });
  return out;
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string TraceRecorder::ToChromeTraceJson(int64_t pid,
                                             const std::string& trace_id) const {
  int64_t now = SteadyNowNanos();
  std::vector<TraceSpan> spans = Snapshot();
  std::string out;
  out.reserve(spans.size() * 160 + 128);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : spans) {
    if (!first) out += ",";
    first = false;
    int64_t end = span.end_nanos == 0 ? now : span.end_nanos;
    int64_t ts = (span.start_nanos - start_nanos_) / 1000;
    int64_t dur = (end - span.start_nanos) / 1000;
    out += "{\"name\":";
    AppendJsonString(&out, span.name);
    out += ",\"cat\":";
    AppendJsonString(&out, TraceKindName(span.kind));
    out += ",\"ph\":\"X\",\"ts\":" + std::to_string(ts);
    out += ",\"dur\":" + std::to_string(dur);
    out += ",\"pid\":" + std::to_string(pid);
    out += ",\"tid\":" + std::to_string(span.tid);
    out += ",\"args\":{";
    bool first_arg = true;
    // Span identity rides in args so tools (and our round-trip tests) can
    // rebuild the tree from the flat event list.
    out += "\"span_id\":" + std::to_string(span.id);
    out += ",\"parent_id\":" + std::to_string(span.parent_id);
    first_arg = false;
    for (const auto& [key, value] : span.args) {
      if (!first_arg) out += ",";
      first_arg = false;
      AppendJsonString(&out, key);
      out += ":" + std::to_string(value);
    }
    out += "}}";
  }
  out += "],\"otherData\":{\"trace_id\":";
  AppendJsonString(&out, trace_id);
  out += ",\"dropped_spans\":" + std::to_string(dropped_spans()) + "}}";
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (strict subset: what ToChromeTraceJson emits)
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject } kind =
      kNull;
  bool b = false;
  int64_t i = 0;
  double d = 0;
  std::string s;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::Corruption("trailing bytes after JSON value at offset " +
                                std::to_string(pos_));
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::Corruption(std::string("expected '") + c + "' at offset " +
                                std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Status::Corruption("unexpected end of JSON");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      JsonValue v;
      v.kind = JsonValue::kBool;
      v.b = true;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      JsonValue v;
      v.kind = JsonValue::kBool;
      v.b = false;
      return v;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue();
    }
    return Status::Corruption("unrecognized JSON token at offset " +
                              std::to_string(pos_));
  }

  Result<JsonValue> ParseObject() {
    RETURN_IF_ERROR(Expect('{'));
    JsonValue v;
    v.kind = JsonValue::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      ASSIGN_OR_RETURN(JsonValue key, ParseString());
      RETURN_IF_ERROR(Expect(':'));
      ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      v.object.emplace_back(std::move(key.s), std::move(value));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        SkipSpace();
        continue;
      }
      RETURN_IF_ERROR(Expect('}'));
      return v;
    }
  }

  Result<JsonValue> ParseArray() {
    RETURN_IF_ERROR(Expect('['));
    JsonValue v;
    v.kind = JsonValue::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      ASSIGN_OR_RETURN(JsonValue elem, ParseValue());
      v.array.push_back(std::move(elem));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      RETURN_IF_ERROR(Expect(']'));
      return v;
    }
  }

  Result<JsonValue> ParseString() {
    RETURN_IF_ERROR(Expect('"'));
    JsonValue v;
    v.kind = JsonValue::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            v.s.push_back('"');
            break;
          case '\\':
            v.s.push_back('\\');
            break;
          case '/':
            v.s.push_back('/');
            break;
          case 'n':
            v.s.push_back('\n');
            break;
          case 't':
            v.s.push_back('\t');
            break;
          case 'r':
            v.s.push_back('\r');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::Corruption("truncated \\u escape");
            }
            int code = 0;
            for (int k = 0; k < 4; ++k) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += h - '0';
              } else if (h >= 'a' && h <= 'f') {
                code += h - 'a' + 10;
              } else if (h >= 'A' && h <= 'F') {
                code += h - 'A' + 10;
              } else {
                return Status::Corruption("bad \\u escape digit");
              }
            }
            // Our writer only escapes control characters, so the code point
            // always fits one byte.
            v.s.push_back(static_cast<char>(code));
            break;
          }
          default:
            return Status::Corruption(std::string("bad escape '\\") + esc +
                                      "'");
        }
      } else {
        v.s.push_back(c);
      }
    }
    return Status::Corruption("unterminated JSON string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string token = text_.substr(start, pos_ - start);
    JsonValue v;
    try {
      if (is_double) {
        v.kind = JsonValue::kDouble;
        v.d = std::stod(token);
      } else {
        v.kind = JsonValue::kInt;
        v.i = std::stoll(token);
      }
    } catch (...) {
      return Status::Corruption("bad JSON number '" + token + "'");
    }
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

int64_t AsInt(const JsonValue& v) {
  return v.kind == JsonValue::kDouble ? static_cast<int64_t>(v.d) : v.i;
}

}  // namespace

Result<ChromeTrace> ParseChromeTraceJson(const std::string& json) {
  JsonParser parser(json);
  ASSIGN_OR_RETURN(JsonValue root, parser.Parse());
  if (root.kind != JsonValue::kObject) {
    return Status::Corruption("trace root is not a JSON object");
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::kArray) {
    return Status::Corruption("missing traceEvents array");
  }
  ChromeTrace trace;
  for (const JsonValue& ev : events->array) {
    if (ev.kind != JsonValue::kObject) {
      return Status::Corruption("trace event is not an object");
    }
    ChromeTraceEvent out;
    for (const auto& [key, value] : ev.object) {
      if (key == "name") {
        out.name = value.s;
      } else if (key == "cat") {
        out.cat = value.s;
      } else if (key == "ph") {
        out.ph = value.s;
      } else if (key == "ts") {
        out.ts_micros = AsInt(value);
      } else if (key == "dur") {
        out.dur_micros = AsInt(value);
      } else if (key == "pid") {
        out.pid = AsInt(value);
      } else if (key == "tid") {
        out.tid = AsInt(value);
      } else if (key == "args") {
        if (value.kind != JsonValue::kObject) {
          return Status::Corruption("event args is not an object");
        }
        for (const auto& [ak, av] : value.object) {
          out.args[ak] = AsInt(av);
        }
      }
    }
    if (out.ph != "X") {
      return Status::Corruption("unexpected event phase '" + out.ph + "'");
    }
    if (out.name.empty()) return Status::Corruption("event missing name");
    trace.events.push_back(std::move(out));
  }
  const JsonValue* other = root.Find("otherData");
  if (other != nullptr && other->kind == JsonValue::kObject) {
    const JsonValue* tid = other->Find("trace_id");
    if (tid != nullptr) trace.trace_id = tid->s;
  }
  return trace;
}

}  // namespace presto
