#ifndef PRESTO_COMMON_BYTES_H_
#define PRESTO_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "presto/common/status.h"

namespace presto {

/// Append-only binary buffer used by file-format encoders and the exchange
/// serializer. Little-endian fixed-width writes plus LEB128 varints.
class ByteBuffer {
 public:
  ByteBuffer() = default;

  void Clear() { data_.clear(); }
  size_t size() const { return data_.size(); }
  const uint8_t* data() const { return data_.data(); }
  std::vector<uint8_t>& bytes() { return data_; }
  const std::vector<uint8_t>& bytes() const { return data_; }

  void Reserve(size_t n) { data_.reserve(n); }

  void PutU8(uint8_t v) { data_.push_back(v); }

  template <typename T>
  void PutFixed(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    size_t old = data_.size();
    data_.resize(old + sizeof(T));
    std::memcpy(data_.data() + old, &v, sizeof(T));
  }

  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI64(int64_t v) { PutFixed(v); }
  void PutDouble(double v) { PutFixed(v); }

  /// Unsigned LEB128.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      data_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    data_.push_back(static_cast<uint8_t>(v));
  }

  /// ZigZag-encoded signed varint.
  void PutSignedVarint(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }

  /// Length-prefixed string.
  void PutString(const std::string& s) {
    PutVarint(s.size());
    PutRaw(s.data(), s.size());
  }

  void PutRaw(const void* p, size_t n) {
    size_t old = data_.size();
    data_.resize(old + n);
    std::memcpy(data_.data() + old, p, n);
  }

 private:
  std::vector<uint8_t> data_;
};

/// Bounds-checked sequential reader over a byte span. All reads return a
/// Status/Result so corrupt files surface as kCorruption, never UB.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}

  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ >= size_; }

  Status Skip(size_t n) {
    if (n > remaining()) return Status::Corruption("skip past end of buffer");
    pos_ += n;
    return Status::OK();
  }

  Status Seek(size_t pos) {
    if (pos > size_) return Status::Corruption("seek past end of buffer");
    pos_ = pos;
    return Status::OK();
  }

  Result<uint8_t> ReadU8() {
    if (remaining() < 1) return Status::Corruption("read past end of buffer");
    return data_[pos_++];
  }

  template <typename T>
  Result<T> ReadFixed() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) {
      return Status::Corruption("read past end of buffer");
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  Result<uint32_t> ReadU32() { return ReadFixed<uint32_t>(); }
  Result<uint64_t> ReadU64() { return ReadFixed<uint64_t>(); }
  Result<int64_t> ReadI64() { return ReadFixed<int64_t>(); }
  Result<double> ReadDouble() { return ReadFixed<double>(); }

  Result<uint64_t> ReadVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (AtEnd()) return Status::Corruption("truncated varint");
      uint8_t b = data_[pos_++];
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
      if (shift >= 64) return Status::Corruption("varint too long");
    }
    return v;
  }

  Result<int64_t> ReadSignedVarint() {
    ASSIGN_OR_RETURN(uint64_t z, ReadVarint());
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  Result<std::string> ReadString() {
    ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
    if (n > remaining()) return Status::Corruption("truncated string");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  Status ReadRaw(void* out, size_t n) {
    if (n > remaining()) return Status::Corruption("truncated raw read");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  const uint8_t* current() const { return data_ + pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace presto

#endif  // PRESTO_COMMON_BYTES_H_
