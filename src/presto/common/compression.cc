#include "presto/common/compression.h"

#include <algorithm>
#include <cstring>

#include "presto/common/bytes.h"

namespace presto {
namespace {

// Token stream shared by both LZ codecs:
//   frame   := varint(uncompressed_size) token*
//   token   := 0x00 varint(len) byte[len]          -- literal run
//            | 0x01 varint(len) varint(distance)   -- back-reference copy
constexpr uint8_t kLiteralTag = 0;
constexpr uint8_t kMatchTag = 1;
constexpr size_t kMinMatch = 4;

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t Hash32(uint32_t v, int bits) {
  return (v * 2654435761u) >> (32 - bits);
}

void EmitLiterals(ByteBuffer* out, const uint8_t* base, size_t begin,
                  size_t end) {
  if (begin >= end) return;
  out->PutU8(kLiteralTag);
  out->PutVarint(end - begin);
  out->PutRaw(base + begin, end - begin);
}

void EmitMatch(ByteBuffer* out, size_t length, size_t distance) {
  out->PutU8(kMatchTag);
  out->PutVarint(length);
  out->PutVarint(distance);
}

size_t MatchLength(const uint8_t* a, const uint8_t* b, size_t max_len) {
  size_t n = 0;
  while (n + 8 <= max_len) {
    uint64_t va, vb;
    std::memcpy(&va, a + n, 8);
    std::memcpy(&vb, b + n, 8);
    if (va != vb) {
      return n + (__builtin_ctzll(va ^ vb) >> 3);
    }
    n += 8;
  }
  while (n < max_len && a[n] == b[n]) ++n;
  return n;
}

// Speed-oriented greedy LZ: single-slot hash table, 64 KiB window, skip
// acceleration on incompressible runs (snappy-class behaviour).
void CompressFast(const uint8_t* input, size_t size, ByteBuffer* out) {
  constexpr int kHashBits = 14;
  constexpr size_t kWindow = 1 << 16;
  std::vector<uint32_t> table(1u << kHashBits, 0);

  size_t literal_start = 0;
  size_t pos = 0;
  size_t skip_credit = 32;
  while (pos + kMinMatch <= size) {
    uint32_t h = Hash32(Load32(input + pos), kHashBits);
    size_t candidate = table[h];
    table[h] = static_cast<uint32_t>(pos);
    if (candidate < pos && pos - candidate <= kWindow &&
        Load32(input + candidate) == Load32(input + pos)) {
      size_t len = kMinMatch +
                   MatchLength(input + candidate + kMinMatch,
                               input + pos + kMinMatch, size - pos - kMinMatch);
      EmitLiterals(out, input, literal_start, pos);
      EmitMatch(out, len, pos - candidate);
      pos += len;
      literal_start = pos;
      skip_credit = 32;
    } else {
      // The longer we go without a match, the faster we skip ahead.
      pos += 1 + ((pos - literal_start) >> 6);
      (void)skip_credit;
    }
  }
  EmitLiterals(out, input, literal_start, size);
}

// Ratio-oriented LZ: chained hash with lazy matching and a 1 MiB window.
// Inserting every position and walking chains costs CPU, which is exactly
// the gzip-vs-snappy trade-off the benchmarks exercise.
void CompressDense(const uint8_t* input, size_t size, ByteBuffer* out) {
  constexpr int kHashBits = 16;
  constexpr size_t kWindow = 1 << 20;
  constexpr int kMaxChain = 48;
  const uint32_t kNoPos = 0xFFFFFFFFu;

  std::vector<uint32_t> head(1u << kHashBits, kNoPos);
  std::vector<uint32_t> prev(size > 0 ? size : 1, kNoPos);

  auto find_match = [&](size_t pos, size_t* best_len, size_t* best_dist) {
    *best_len = 0;
    *best_dist = 0;
    if (pos + kMinMatch > size) return;
    uint32_t h = Hash32(Load32(input + pos), kHashBits);
    uint32_t cand = head[h];
    int chain = kMaxChain;
    size_t limit = size - pos;
    while (cand != kNoPos && chain-- > 0 && pos - cand <= kWindow) {
      if (Load32(input + cand) == Load32(input + pos)) {
        size_t len = kMinMatch + MatchLength(input + cand + kMinMatch,
                                             input + pos + kMinMatch,
                                             limit - kMinMatch);
        if (len > *best_len) {
          *best_len = len;
          *best_dist = pos - cand;
          if (len >= 256) break;  // good enough
        }
      }
      cand = prev[cand];
    }
  };

  auto insert = [&](size_t pos) {
    if (pos + kMinMatch > size) return;
    uint32_t h = Hash32(Load32(input + pos), kHashBits);
    prev[pos] = head[h];
    head[h] = static_cast<uint32_t>(pos);
  };

  size_t literal_start = 0;
  size_t pos = 0;
  while (pos + kMinMatch <= size) {
    size_t len, dist;
    find_match(pos, &len, &dist);
    if (len >= kMinMatch) {
      // Lazy matching: prefer a strictly longer match at pos+1.
      size_t len2 = 0, dist2 = 0;
      if (pos + 1 + kMinMatch <= size) {
        insert(pos);
        find_match(pos + 1, &len2, &dist2);
        if (len2 > len + 1) {
          ++pos;  // defer: emit pos as literal, match starts at pos+1
          len = len2;
          dist = dist2;
        }
      } else {
        insert(pos);
      }
      EmitLiterals(out, input, literal_start, pos);
      EmitMatch(out, len, dist);
      size_t match_end = pos + len;
      for (size_t i = pos + 1; i < match_end && i + kMinMatch <= size; ++i) {
        insert(i);
      }
      pos = match_end;
      literal_start = pos;
    } else {
      insert(pos);
      // Skip acceleration on incompressible stretches (real deflate
      // implementations bail out similarly): the longer the current literal
      // run, the bigger the stride.
      pos += 1 + ((pos - literal_start) >> 6);
    }
  }
  EmitLiterals(out, input, literal_start, size);
}

}  // namespace

const char* CompressionKindToString(CompressionKind kind) {
  switch (kind) {
    case CompressionKind::kNone:
      return "NONE";
    case CompressionKind::kSnappy:
      return "SNAPPY";
    case CompressionKind::kGzip:
      return "GZIP";
  }
  return "UNKNOWN";
}

Result<CompressionKind> CompressionKindFromString(const std::string& name) {
  if (name == "NONE") return CompressionKind::kNone;
  if (name == "SNAPPY") return CompressionKind::kSnappy;
  if (name == "GZIP") return CompressionKind::kGzip;
  return Status::InvalidArgument("unknown compression kind: " + name);
}

std::vector<uint8_t> Compress(CompressionKind kind, const uint8_t* input,
                              size_t size) {
  ByteBuffer out;
  out.Reserve(size / 2 + 16);
  out.PutVarint(size);
  switch (kind) {
    case CompressionKind::kNone:
      out.PutRaw(input, size);
      break;
    case CompressionKind::kSnappy:
      CompressFast(input, size, &out);
      break;
    case CompressionKind::kGzip:
      CompressDense(input, size, &out);
      break;
  }
  return std::move(out.bytes());
}

Result<std::vector<uint8_t>> Decompress(CompressionKind kind,
                                        const uint8_t* input, size_t size) {
  ByteReader reader(input, size);
  ASSIGN_OR_RETURN(uint64_t uncompressed_size, reader.ReadVarint());
  std::vector<uint8_t> out;
  out.reserve(uncompressed_size);

  if (kind == CompressionKind::kNone) {
    if (reader.remaining() != uncompressed_size) {
      return Status::Corruption("stored block size mismatch");
    }
    out.resize(uncompressed_size);
    RETURN_IF_ERROR(reader.ReadRaw(out.data(), uncompressed_size));
    return out;
  }

  while (out.size() < uncompressed_size) {
    ASSIGN_OR_RETURN(uint8_t tag, reader.ReadU8());
    if (tag == kLiteralTag) {
      ASSIGN_OR_RETURN(uint64_t len, reader.ReadVarint());
      if (out.size() + len > uncompressed_size) {
        return Status::Corruption("literal run overflows declared size");
      }
      size_t old = out.size();
      out.resize(old + len);
      RETURN_IF_ERROR(reader.ReadRaw(out.data() + old, len));
    } else if (tag == kMatchTag) {
      ASSIGN_OR_RETURN(uint64_t len, reader.ReadVarint());
      ASSIGN_OR_RETURN(uint64_t dist, reader.ReadVarint());
      if (dist == 0 || dist > out.size()) {
        return Status::Corruption("match distance out of range");
      }
      if (out.size() + len > uncompressed_size) {
        return Status::Corruption("match overflows declared size");
      }
      // Byte-by-byte copy: distances shorter than the length deliberately
      // replicate (RLE-style overlap).
      size_t src = out.size() - dist;
      for (uint64_t i = 0; i < len; ++i) {
        out.push_back(out[src + i]);
      }
    } else {
      return Status::Corruption("unknown LZ token tag");
    }
  }
  return out;
}

}  // namespace presto
