#ifndef PRESTO_COMMON_HASH_H_
#define PRESTO_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace presto {

/// 64-bit finalization mix from MurmurHash3; good avalanche for integer keys
/// used by hash joins, aggregations, and dictionary probes.
inline uint64_t HashMix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// FNV-1a over raw bytes; used for string keys.
inline uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 14695981039346656037ULL ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return HashMix64(h);
}

inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

/// Combines two hashes (boost::hash_combine-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace presto

#endif  // PRESTO_COMMON_HASH_H_
