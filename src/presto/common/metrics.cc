#include "presto/common/metrics.h"

namespace presto {

MetricsRegistry::Counter* MetricsRegistry::FindOrRegister(
    const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(name);
  if (it != shard.index.end()) return it->second;
  shard.storage.emplace_back();
  Counter* counter = &shard.storage.back();
  shard.index.emplace(name, counter);
  return counter;
}

int64_t MetricsRegistry::Get(const std::string& name) const {
  const Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(name);
  return it == shard.index.end() ? 0 : it->second->Get();
}

void MetricsRegistry::Reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (Counter& counter : shard.storage) counter.Reset();
  }
}

std::map<std::string, int64_t> MetricsRegistry::Snapshot() const {
  std::map<std::string, int64_t> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, counter] : shard.index) {
      out[name] = counter->Get();
    }
  }
  return out;
}

std::string MetricsRegistry::SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (i > 0 && c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

std::string MetricsRegistry::RenderText(const std::string& prefix) const {
  std::string out;
  // Snapshot gives deterministic (sorted) order.
  for (const auto& [name, value] : Snapshot()) {
    std::string metric = SanitizeName(prefix + name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  return out;
}

void MetricsExposition::AddRegistry(const std::string& prefix,
                                    const MetricsRegistry* registry) {
  registries_.emplace_back(prefix, registry);
}

void MetricsExposition::AddGauge(const std::string& name,
                                 std::function<int64_t()> fn) {
  gauges_.emplace_back(name, std::move(fn));
}

std::string MetricsExposition::RenderText() const {
  // Merge all sources by sanitized name so identically named counters from
  // different registries (e.g. one per worker) roll up into one sample.
  std::map<std::string, int64_t> counters;
  for (const auto& [prefix, registry] : registries_) {
    for (const auto& [name, value] : registry->Snapshot()) {
      counters[MetricsRegistry::SanitizeName(prefix + name)] += value;
    }
  }
  std::string out;
  for (const auto& [metric, value] : counters) {
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, fn] : gauges_) {
    std::string metric = MetricsRegistry::SanitizeName(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + std::to_string(fn()) + "\n";
  }
  return out;
}

}  // namespace presto
