#include "presto/common/metrics.h"

#include <cstdio>

namespace presto {

MetricsRegistry::Counter* MetricsRegistry::FindOrRegister(
    const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(name);
  if (it != shard.index.end()) return it->second;
  shard.storage.emplace_back();
  Counter* counter = &shard.storage.back();
  shard.index.emplace(name, counter);
  return counter;
}

int64_t MetricsRegistry::Get(const std::string& name) const {
  const Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(name);
  return it == shard.index.end() ? 0 : it->second->Get();
}

MetricsRegistry::Histogram* MetricsRegistry::FindOrRegisterHistogram(
    const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.hist_index.find(name);
  if (it != shard.hist_index.end()) return it->second;
  shard.hist_storage.emplace_back();
  Histogram* histogram = &shard.hist_storage.back();
  shard.hist_index.emplace(name, histogram);
  return histogram;
}

void MetricsRegistry::Reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (Counter& counter : shard.storage) counter.Reset();
    for (Histogram& histogram : shard.hist_storage) histogram.Reset();
  }
}

std::map<std::string, int64_t> MetricsRegistry::Snapshot() const {
  std::map<std::string, int64_t> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, counter] : shard.index) {
      out[name] = counter->Get();
    }
  }
  return out;
}

std::map<std::string, MetricsRegistry::HistogramSnapshot>
MetricsRegistry::SnapshotHistograms() const {
  std::map<std::string, HistogramSnapshot> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, histogram] : shard.hist_index) {
      HistogramSnapshot snap;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        snap.buckets[i] =
            histogram->buckets_[i].load(std::memory_order_relaxed);
      }
      snap.count = histogram->Count();
      snap.sum = histogram->Sum();
      out[name] = snap;
    }
  }
  return out;
}

int64_t MetricsRegistry::HistogramSnapshot::Percentile(double q) const {
  if (count <= 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  int64_t seen = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return Histogram::BucketUpperBound(i);
  }
  return Histogram::BucketUpperBound(Histogram::kNumBuckets - 1);
}

std::string MetricsRegistry::SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (i > 0 && c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

std::string MetricsRegistry::RenderMerged(
    const std::map<std::string, int64_t>& counters,
    const std::map<std::string, HistogramSnapshot>& histograms) {
  // Two-pointer walk over the sorted maps so the merged exposition is in
  // strict metric-name order regardless of metric type — deterministic and
  // test-diffable.
  std::string out;
  auto ci = counters.begin();
  auto hi = histograms.begin();
  auto render_counter = [&out](const std::string& metric, int64_t value) {
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  };
  auto render_histogram = [&out](const std::string& metric,
                                 const HistogramSnapshot& snap) {
    out += "# TYPE " + metric + " summary\n";
    for (double q : {0.5, 0.95, 0.99}) {
      char label[32];
      std::snprintf(label, sizeof(label), "{quantile=\"%g\"}", q);
      out += metric + label + " " + std::to_string(snap.Percentile(q)) + "\n";
    }
    out += metric + "_sum " + std::to_string(snap.sum) + "\n";
    out += metric + "_count " + std::to_string(snap.count) + "\n";
  };
  while (ci != counters.end() || hi != histograms.end()) {
    if (hi == histograms.end() ||
        (ci != counters.end() && ci->first <= hi->first)) {
      render_counter(ci->first, ci->second);
      ++ci;
    } else {
      render_histogram(hi->first, hi->second);
      ++hi;
    }
  }
  return out;
}

std::string MetricsRegistry::RenderText(const std::string& prefix) const {
  // Snapshots give deterministic (sorted) order; re-key with the sanitized
  // prefixed names (still sorted maps) and render merged.
  std::map<std::string, int64_t> counters;
  for (const auto& [name, value] : Snapshot()) {
    counters[SanitizeName(prefix + name)] += value;
  }
  std::map<std::string, HistogramSnapshot> histograms;
  for (const auto& [name, snap] : SnapshotHistograms()) {
    histograms[SanitizeName(prefix + name)].Merge(snap);
  }
  return RenderMerged(counters, histograms);
}

void MetricsExposition::AddRegistry(const std::string& prefix,
                                    const MetricsRegistry* registry) {
  registries_.emplace_back(prefix, registry);
}

void MetricsExposition::AddGauge(const std::string& name,
                                 std::function<int64_t()> fn) {
  gauges_.emplace_back(name, std::move(fn));
}

std::string MetricsExposition::RenderText() const {
  // Merge all sources by sanitized name so identically named counters from
  // different registries (e.g. one per worker) roll up into one sample, and
  // same-named histograms merge bucket-wise before quantiles are computed.
  std::map<std::string, int64_t> counters;
  std::map<std::string, MetricsRegistry::HistogramSnapshot> histograms;
  for (const auto& [prefix, registry] : registries_) {
    for (const auto& [name, value] : registry->Snapshot()) {
      counters[MetricsRegistry::SanitizeName(prefix + name)] += value;
    }
    for (const auto& [name, snap] : registry->SnapshotHistograms()) {
      histograms[MetricsRegistry::SanitizeName(prefix + name)].Merge(snap);
    }
  }
  std::string out = MetricsRegistry::RenderMerged(counters, histograms);
  for (const auto& [name, fn] : gauges_) {
    std::string metric = MetricsRegistry::SanitizeName(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + std::to_string(fn()) + "\n";
  }
  return out;
}

}  // namespace presto
