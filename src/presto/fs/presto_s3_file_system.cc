#include "presto/fs/presto_s3_file_system.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "presto/common/fault_injection.h"
#include "presto/common/random.h"

namespace presto {

namespace {

Status BackoffRetry(Clock* clock, const PrestoS3Options& options,
                    MetricsRegistry* metrics,
                    const std::function<Status()>& op) {
  // Decorrelated jitter ("Exponential Backoff And Jitter", AWS architecture
  // blog): each delay is uniform in [base, 3 * previous], clamped to
  // max_backoff_nanos. Jitter de-synchronizes the herd of readers that a
  // throttling window creates — with plain doubling they all come back at
  // the same instant and re-trip the 503. The RNG seed is fixed so backoff
  // schedules replay exactly in simulated time.
  Random rng(0x533352455452ULL /* "S3RETR" */);
  int64_t previous_delay = options.base_backoff_nanos;
  int64_t total_backoff = 0;
  Status last;
  for (int attempt = 0; attempt <= options.max_retries; ++attempt) {
    last = op();
    if (last.ok() || !IsRetryableStatus(last)) return last;
    if (attempt == options.max_retries) break;
    int64_t ceiling = std::min(options.max_backoff_nanos,
                               std::max(options.base_backoff_nanos,
                                        previous_delay * 3));
    int64_t delay = rng.NextInRange(options.base_backoff_nanos, ceiling);
    if (total_backoff + delay > options.max_elapsed_nanos) break;
    metrics->Increment("s3.request.retried");
    metrics->Increment("s3fs.request.retries");
    metrics->Increment("s3fs.backoff.nanos", delay);
    clock->AdvanceNanos(delay);
    total_backoff += delay;
    previous_delay = delay;
  }
  metrics->Increment("s3.retry.exhausted");
  return Status::Unavailable(
      "S3 still unavailable after " + std::to_string(options.max_retries) +
      " retries (" + std::to_string(total_backoff / 1'000'000) +
      " ms backoff): " + last.message());
}

}  // namespace

// -- S3InputStream -------------------------------------------------------------

S3InputStream::S3InputStream(S3ObjectStore* store, Clock* clock, std::string key,
                             uint64_t size, const PrestoS3Options& options,
                             MetricsRegistry* metrics)
    : store_(store),
      clock_(clock),
      key_(std::move(key)),
      size_(size),
      options_(options),
      metrics_(metrics) {}

Status S3InputStream::Seek(uint64_t position) {
  if (position > size_) {
    return Status::OutOfRange("seek past end of object " + key_);
  }
  logical_pos_ = position;
  if (options_.lazy_seek) {
    // Lazy seek: remember the target; the stream reopen (a fresh range GET)
    // only happens if and when a read occurs outside the current buffer.
    return Status::OK();
  }
  // Eager seek: any reposition outside the buffered window reopens the HTTP
  // stream immediately — the cost lazy seek avoids.
  bool inside_buffer = position >= buffer_start_ &&
                       position < buffer_start_ + buffer_.size();
  if (!inside_buffer) {
    return ReopenAt(position, 1);
  }
  return Status::OK();
}

Result<size_t> S3InputStream::Read(uint8_t* out, size_t n) {
  if (n == 0 || logical_pos_ >= size_) return size_t{0};
  n = std::min<size_t>(n, size_ - logical_pos_);
  size_t produced = 0;
  while (produced < n) {
    bool inside_buffer = stream_open_ && logical_pos_ >= buffer_start_ &&
                         logical_pos_ < buffer_start_ + buffer_.size();
    if (!inside_buffer) {
      RETURN_IF_ERROR(ReopenAt(logical_pos_, n - produced));
    }
    size_t buffer_offset = logical_pos_ - buffer_start_;
    size_t take = std::min(n - produced, buffer_.size() - buffer_offset);
    std::memcpy(out + produced, buffer_.data() + buffer_offset, take);
    produced += take;
    logical_pos_ += take;
  }
  return produced;
}

Status S3InputStream::ReopenAt(uint64_t pos, size_t min_bytes) {
  metrics_->Increment("s3fs.stream.reopens");
  size_t fetch = std::max(min_bytes, options_.read_ahead_bytes);
  return BackoffRetry(clock_, options_, metrics_, [&]() -> Status {
    auto bytes = store_->GetRange(key_, pos, fetch);
    if (!bytes.ok()) return bytes.status();
    buffer_ = std::move(*bytes);
    buffer_start_ = pos;
    stream_open_ = true;
    return Status::OK();
  });
}

// -- Read adapter ---------------------------------------------------------------

namespace {

class S3RandomAccessFile final : public RandomAccessFile {
 public:
  S3RandomAccessFile(std::unique_ptr<S3InputStream> stream)
      : stream_(std::move(stream)) {}

  Result<size_t> Read(uint64_t offset, size_t n, uint8_t* out) override {
    RETURN_IF_ERROR(stream_->Seek(std::min<uint64_t>(offset, stream_->size())));
    return stream_->Read(out, n);
  }

  Result<uint64_t> Size() const override { return stream_->size(); }

 private:
  std::unique_ptr<S3InputStream> stream_;
};

}  // namespace

// -- Writable file ----------------------------------------------------------------

class S3WritableFile final : public WritableFile {
 public:
  S3WritableFile(PrestoS3FileSystem* fs, std::string key)
      : fs_(fs), key_(std::move(key)) {}

  ~S3WritableFile() override {
    if (!closed_) (void)Close();
  }

  Status Append(const uint8_t* data, size_t n) override {
    if (closed_) return Status::IoError("file already closed: " + key_);
    buffer_.insert(buffer_.end(), data, data + n);
    return Status::OK();
  }

  Status Close() override {
    if (closed_) return Status::OK();
    closed_ = true;
    const PrestoS3Options& opts = fs_->options_;
    if (buffer_.size() < opts.multipart_threshold) {
      return fs_->RetryWithBackoff([&]() -> Status {
        // PutObject consumes the buffer only on success path; copy to allow retry.
        return fs_->store_->PutObject(key_, buffer_);
      });
    }
    // Multipart upload: split into parts. Parts upload "in parallel" — in
    // virtual time we refund the overlapped fraction of the transfer after
    // issuing the parts sequentially.
    std::string upload_id;
    RETURN_IF_ERROR(fs_->RetryWithBackoff([&]() -> Status {
      auto id = fs_->store_->CreateMultipartUpload(key_);
      if (!id.ok()) return id.status();
      upload_id = *id;
      return Status::OK();
    }));
    int64_t start = fs_->clock_->NowNanos();
    int part_number = 0;
    for (size_t offset = 0; offset < buffer_.size(); offset += opts.part_size) {
      size_t len = std::min(opts.part_size, buffer_.size() - offset);
      std::vector<uint8_t> part(buffer_.begin() + offset,
                                buffer_.begin() + offset + len);
      ++part_number;
      Status st = fs_->RetryWithBackoff([&]() -> Status {
        return fs_->store_->UploadPart(upload_id, part_number, part);
      });
      if (!st.ok()) {
        (void)fs_->store_->AbortMultipartUpload(upload_id);
        return st;
      }
    }
    int parallelism = std::min<int>(opts.upload_parallelism, part_number);
    if (parallelism > 1) {
      int64_t elapsed = fs_->clock_->NowNanos() - start;
      int64_t refund = elapsed - elapsed / parallelism;
      if (refund > 0) fs_->clock_->AdvanceNanos(-refund);
      fs_->metrics().Increment("s3fs.multipart.parallel_refund_nanos", refund);
    }
    fs_->metrics().Increment("s3fs.multipart.uploads");
    return fs_->RetryWithBackoff([&]() -> Status {
      return fs_->store_->CompleteMultipartUpload(upload_id);
    });
  }

 private:
  PrestoS3FileSystem* fs_;
  std::string key_;
  std::vector<uint8_t> buffer_;
  bool closed_ = false;
};

// -- PrestoS3FileSystem ------------------------------------------------------------

Status PrestoS3FileSystem::RetryWithBackoff(const std::function<Status()>& op) {
  return BackoffRetry(clock_, options_, &metrics_, op);
}

Result<std::unique_ptr<S3InputStream>> PrestoS3FileSystem::OpenStream(
    const std::string& path) {
  FileInfo info;
  RETURN_IF_ERROR(RetryWithBackoff([&]() -> Status {
    auto head = store_->HeadObject(path);
    if (!head.ok()) return head.status();
    info = *head;
    return Status::OK();
  }));
  return std::make_unique<S3InputStream>(store_, clock_, path, info.size,
                                         options_, &metrics_);
}

Result<std::shared_ptr<RandomAccessFile>> PrestoS3FileSystem::OpenForRead(
    const std::string& path) {
  ASSIGN_OR_RETURN(std::unique_ptr<S3InputStream> stream, OpenStream(path));
  return std::shared_ptr<RandomAccessFile>(
      new S3RandomAccessFile(std::move(stream)));
}

Result<std::unique_ptr<WritableFile>> PrestoS3FileSystem::OpenForWrite(
    const std::string& path) {
  return std::unique_ptr<WritableFile>(new S3WritableFile(this, path));
}

Result<std::vector<FileInfo>> PrestoS3FileSystem::ListFiles(
    const std::string& directory) {
  metrics_.Increment("fs.dir.list");
  std::string prefix = directory;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<FileInfo> raw;
  RETURN_IF_ERROR(RetryWithBackoff([&]() -> Status {
    auto listed = store_->ListObjects(prefix);
    if (!listed.ok()) return listed.status();
    raw = *listed;
    return Status::OK();
  }));
  // S3 listings are flat; synthesize non-recursive directory entries.
  std::vector<FileInfo> out;
  std::vector<std::string> seen_dirs;
  for (const FileInfo& info : raw) {
    std::string rest = info.path.substr(prefix.size());
    size_t slash = rest.find('/');
    if (slash == std::string::npos) {
      out.push_back(info);
    } else {
      std::string dir = prefix + rest.substr(0, slash);
      if (std::find(seen_dirs.begin(), seen_dirs.end(), dir) == seen_dirs.end()) {
        seen_dirs.push_back(dir);
        out.push_back(FileInfo{dir, 0, true});
      }
    }
  }
  return out;
}

Result<FileInfo> PrestoS3FileSystem::GetFileInfo(const std::string& path) {
  metrics_.Increment("fs.file.stat");
  FileInfo info;
  Status st = RetryWithBackoff([&]() -> Status {
    auto head = store_->HeadObject(path);
    if (!head.ok()) return head.status();
    info = *head;
    return Status::OK();
  });
  if (st.ok()) return info;
  if (st.code() != StatusCode::kNotFound) return st;
  // Directory probe.
  auto listed = store_->ListObjects(path + "/");
  if (listed.ok() && !listed->empty()) return FileInfo{path, 0, true};
  return Status::NotFound("no such object: " + path);
}

Status PrestoS3FileSystem::DeleteFile(const std::string& path) {
  return RetryWithBackoff([&]() -> Status { return store_->DeleteObject(path); });
}

bool PrestoS3FileSystem::Exists(const std::string& path) {
  return GetFileInfo(path).ok();
}

}  // namespace presto
