#ifndef PRESTO_FS_FILE_SYSTEM_H_
#define PRESTO_FS_FILE_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "presto/common/metrics.h"
#include "presto/common/status.h"

namespace presto {

/// File metadata returned by ListFiles/GetFileInfo. getFileInfo calls against
/// remote storage are exactly what the worker-side file-handle cache
/// (Section VII.B) eliminates.
struct FileInfo {
  std::string path;
  uint64_t size = 0;
  bool is_directory = false;
};

/// Positional-read file handle.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset`; returns bytes read (short only at
  /// EOF).
  virtual Result<size_t> Read(uint64_t offset, size_t n, uint8_t* out) = 0;

  virtual Result<uint64_t> Size() const = 0;

  /// Reads the whole file (convenience for footers/tests).
  Result<std::vector<uint8_t>> ReadAll();
};

/// Append-only writable file handle.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const uint8_t* data, size_t n) = 0;
  virtual Status Close() = 0;

  Status Append(const std::vector<uint8_t>& bytes) {
    return Append(bytes.data(), bytes.size());
  }
};

/// Abstract filesystem. Implementations: in-memory, local POSIX, simulated
/// HDFS (NameNode latency + call counters), and PrestoS3FileSystem on top of
/// the simulated S3 object store.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual Result<std::shared_ptr<RandomAccessFile>> OpenForRead(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<WritableFile>> OpenForWrite(
      const std::string& path) = 0;

  /// Lists files directly under `directory` (non-recursive).
  virtual Result<std::vector<FileInfo>> ListFiles(const std::string& directory) = 0;

  virtual Result<FileInfo> GetFileInfo(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;

  /// Per-filesystem operation counters (listFiles, getFileInfo, bytes, ...).
  MetricsRegistry& metrics() { return metrics_; }

  /// Writes an entire buffer as a file (convenience).
  Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes);

 protected:
  MetricsRegistry metrics_;
};

}  // namespace presto

#endif  // PRESTO_FS_FILE_SYSTEM_H_
