#ifndef PRESTO_FS_SIMULATED_HDFS_H_
#define PRESTO_FS_SIMULATED_HDFS_H_

#include <memory>

#include "presto/common/clock.h"
#include "presto/fs/memory_file_system.h"

namespace presto {

/// NameNode RPC latency model. The paper reports that "single HDFS NameNode
/// listFiles performance degradation could hurt Presto performance badly"
/// (Sections VII, XII.D) — the degraded mode models a NameNode under RPC
/// queue pressure.
struct NameNodeLatency {
  int64_t list_files_nanos = 2'000'000;     // 2 ms per listFiles RPC
  int64_t get_file_info_nanos = 1'000'000;  // 1 ms per getFileInfo RPC
  int64_t degraded_multiplier = 50;         // listFiles stuck behind queue
};

/// Hadoop-Distributed-File-System stand-in: in-memory block storage plus a
/// metered NameNode. Every metadata call charges virtual time against the
/// injected Clock and bumps a counter, so the cache benches can report the
/// paper's "listFiles calls reduced to <40%" / "90% of getFileInfo calls
/// eliminated" numbers directly.
class SimulatedHdfs : public FileSystem {
 public:
  SimulatedHdfs(Clock* clock, NameNodeLatency latency = NameNodeLatency())
      : clock_(clock), latency_(latency) {}

  Result<std::shared_ptr<RandomAccessFile>> OpenForRead(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenForWrite(
      const std::string& path) override;
  Result<std::vector<FileInfo>> ListFiles(const std::string& directory) override;
  Result<FileInfo> GetFileInfo(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  bool Exists(const std::string& path) override;

  /// Toggles NameNode performance degradation (multiplies metadata latency).
  void SetDegraded(bool degraded) { degraded_ = degraded; }

  Clock* clock() { return clock_; }

 private:
  int64_t MetadataCharge(int64_t base) const {
    return degraded_ ? base * latency_.degraded_multiplier : base;
  }

  Clock* clock_;
  NameNodeLatency latency_;
  bool degraded_ = false;
  MemoryFileSystem storage_;
};

}  // namespace presto

#endif  // PRESTO_FS_SIMULATED_HDFS_H_
