#ifndef PRESTO_FS_MEMORY_FILE_SYSTEM_H_
#define PRESTO_FS_MEMORY_FILE_SYSTEM_H_

#include <map>
#include <mutex>

#include "presto/fs/file_system.h"

namespace presto {

/// Thread-safe in-memory filesystem. Paths are '/'-separated; directories
/// are implicit (a file "a/b/c" makes "a" and "a/b" listable). Used directly
/// by tests and as the storage behind SimulatedHdfs.
class MemoryFileSystem : public FileSystem {
 public:
  Result<std::shared_ptr<RandomAccessFile>> OpenForRead(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenForWrite(
      const std::string& path) override;
  Result<std::vector<FileInfo>> ListFiles(const std::string& directory) override;
  Result<FileInfo> GetFileInfo(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  bool Exists(const std::string& path) override;

  /// Total bytes across all files (memory accounting in tests).
  uint64_t TotalBytes() const;

 private:
  friend class MemoryWritableFile;

  void Store(const std::string& path, std::vector<uint8_t> bytes);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const std::vector<uint8_t>>> files_;
};

}  // namespace presto

#endif  // PRESTO_FS_MEMORY_FILE_SYSTEM_H_
