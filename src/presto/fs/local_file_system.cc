#include "presto/fs/local_file_system.h"

#include <cstdio>
#include <filesystem>

namespace presto {

namespace stdfs = std::filesystem;

namespace {

class LocalReadFile final : public RandomAccessFile {
 public:
  LocalReadFile(std::FILE* file, uint64_t size) : file_(file), size_(size) {}
  ~LocalReadFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Result<size_t> Read(uint64_t offset, size_t n, uint8_t* out) override {
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IoError("fseek failed");
    }
    return std::fread(out, 1, n, file_);
  }

  Result<uint64_t> Size() const override { return size_; }

 private:
  std::FILE* file_;
  uint64_t size_;
};

class LocalWriteFile final : public WritableFile {
 public:
  explicit LocalWriteFile(std::FILE* file) : file_(file) {}
  ~LocalWriteFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(const uint8_t* data, size_t n) override {
    if (file_ == nullptr) return Status::IoError("file closed");
    if (std::fwrite(data, 1, n, file_) != n) {
      return Status::IoError("short write");
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    int rc = std::fclose(file_);
    file_ = nullptr;
    return rc == 0 ? Status::OK() : Status::IoError("fclose failed");
  }

 private:
  std::FILE* file_;
};

}  // namespace

Result<std::shared_ptr<RandomAccessFile>> LocalFileSystem::OpenForRead(
    const std::string& path) {
  metrics_.Increment("fs.file.open_read");
  std::error_code ec;
  uint64_t size = stdfs::file_size(path, ec);
  if (ec) return Status::NotFound("no such file: " + path);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot open " + path);
  return std::shared_ptr<RandomAccessFile>(new LocalReadFile(file, size));
}

Result<std::unique_ptr<WritableFile>> LocalFileSystem::OpenForWrite(
    const std::string& path) {
  metrics_.Increment("fs.file.open_write");
  std::error_code ec;
  stdfs::path parent = stdfs::path(path).parent_path();
  if (!parent.empty()) stdfs::create_directories(parent, ec);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return Status::IoError("cannot create " + path);
  return std::unique_ptr<WritableFile>(new LocalWriteFile(file));
}

Result<std::vector<FileInfo>> LocalFileSystem::ListFiles(
    const std::string& directory) {
  metrics_.Increment("fs.dir.list");
  std::error_code ec;
  std::vector<FileInfo> out;
  for (const auto& entry : stdfs::directory_iterator(directory, ec)) {
    FileInfo info;
    info.path = entry.path().string();
    info.is_directory = entry.is_directory();
    if (!info.is_directory) {
      info.size = entry.file_size(ec);
    }
    out.push_back(std::move(info));
  }
  if (ec) return Status::IoError("cannot list " + directory + ": " + ec.message());
  return out;
}

Result<FileInfo> LocalFileSystem::GetFileInfo(const std::string& path) {
  metrics_.Increment("fs.file.stat");
  std::error_code ec;
  auto status = stdfs::status(path, ec);
  if (ec || status.type() == stdfs::file_type::not_found) {
    return Status::NotFound("no such file: " + path);
  }
  FileInfo info;
  info.path = path;
  info.is_directory = stdfs::is_directory(status);
  if (!info.is_directory) info.size = stdfs::file_size(path, ec);
  return info;
}

Status LocalFileSystem::DeleteFile(const std::string& path) {
  std::error_code ec;
  if (!stdfs::remove(path, ec) || ec) {
    return Status::NotFound("cannot delete " + path);
  }
  return Status::OK();
}

bool LocalFileSystem::Exists(const std::string& path) {
  std::error_code ec;
  return stdfs::exists(path, ec);
}

}  // namespace presto
