#include "presto/fs/memory_file_system.h"

#include <algorithm>
#include <cstring>

namespace presto {

namespace {

class MemoryReadFile final : public RandomAccessFile {
 public:
  explicit MemoryReadFile(std::shared_ptr<const std::vector<uint8_t>> data)
      : data_(std::move(data)) {}

  Result<size_t> Read(uint64_t offset, size_t n, uint8_t* out) override {
    if (offset >= data_->size()) return size_t{0};
    size_t take = std::min<size_t>(n, data_->size() - offset);
    std::memcpy(out, data_->data() + offset, take);
    return take;
  }

  Result<uint64_t> Size() const override { return data_->size(); }

 private:
  std::shared_ptr<const std::vector<uint8_t>> data_;
};

}  // namespace

class MemoryWritableFile final : public WritableFile {
 public:
  MemoryWritableFile(MemoryFileSystem* fs, std::string path)
      : fs_(fs), path_(std::move(path)) {}

  ~MemoryWritableFile() override {
    if (!closed_) (void)Close();
  }

  Status Append(const uint8_t* data, size_t n) override {
    if (closed_) return Status::IoError("file already closed: " + path_);
    buffer_.insert(buffer_.end(), data, data + n);
    return Status::OK();
  }

  Status Close() override {
    if (closed_) return Status::OK();
    closed_ = true;
    fs_->Store(path_, std::move(buffer_));
    return Status::OK();
  }

 private:
  MemoryFileSystem* fs_;
  std::string path_;
  std::vector<uint8_t> buffer_;
  bool closed_ = false;
};

Result<std::shared_ptr<RandomAccessFile>> MemoryFileSystem::OpenForRead(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  metrics_.Increment("fs.file.open_read");
  return std::shared_ptr<RandomAccessFile>(new MemoryReadFile(it->second));
}

Result<std::unique_ptr<WritableFile>> MemoryFileSystem::OpenForWrite(
    const std::string& path) {
  metrics_.Increment("fs.file.open_write");
  return std::unique_ptr<WritableFile>(new MemoryWritableFile(this, path));
}

Result<std::vector<FileInfo>> MemoryFileSystem::ListFiles(
    const std::string& directory) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.Increment("fs.dir.list");
  std::string prefix = directory;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<FileInfo> out;
  std::vector<std::string> seen_dirs;
  for (const auto& [path, data] : files_) {
    if (path.rfind(prefix, 0) != 0) continue;
    std::string rest = path.substr(prefix.size());
    size_t slash = rest.find('/');
    if (slash == std::string::npos) {
      out.push_back(FileInfo{path, data->size(), false});
    } else {
      std::string dir = prefix + rest.substr(0, slash);
      if (std::find(seen_dirs.begin(), seen_dirs.end(), dir) == seen_dirs.end()) {
        seen_dirs.push_back(dir);
        out.push_back(FileInfo{dir, 0, true});
      }
    }
  }
  return out;
}

Result<FileInfo> MemoryFileSystem::GetFileInfo(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.Increment("fs.file.stat");
  auto it = files_.find(path);
  if (it != files_.end()) {
    return FileInfo{path, it->second->size(), false};
  }
  // Directory?
  std::string prefix = path;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  for (const auto& [p, data] : files_) {
    if (p.rfind(prefix, 0) == 0) return FileInfo{path, 0, true};
  }
  return Status::NotFound("no such file or directory: " + path);
}

Status MemoryFileSystem::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::OK();
}

bool MemoryFileSystem::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.count(path) > 0) return true;
  std::string prefix = path;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  for (const auto& [p, data] : files_) {
    if (p.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

uint64_t MemoryFileSystem::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [p, data] : files_) total += data->size();
  return total;
}

void MemoryFileSystem::Store(const std::string& path, std::vector<uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] =
      std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
}

}  // namespace presto
