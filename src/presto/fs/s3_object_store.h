#ifndef PRESTO_FS_S3_OBJECT_STORE_H_
#define PRESTO_FS_S3_OBJECT_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "presto/common/clock.h"
#include "presto/common/metrics.h"
#include "presto/common/random.h"
#include "presto/common/status.h"
#include "presto/fs/file_system.h"

namespace presto {

/// Latency/fault model for the simulated object store. Requests charge
/// virtual time (first-byte latency + per-byte transfer) against the Clock
/// and can fail transiently ("503 SlowDown"), which exercises the
/// exponential-backoff path in PrestoS3FileSystem.
struct S3Config {
  int64_t first_byte_latency_nanos = 15'000'000;  // 15 ms per request
  int64_t per_byte_nanos = 10;                    // ~100 MB/s transfer
  double transient_failure_rate = 0.0;            // probability of 503 per request
  uint64_t failure_seed = 42;
};

/// Simulated Amazon-S3-class object store: GET / range-GET / PUT / HEAD /
/// LIST, multipart uploads, and an "S3 Select" projection/filter over CSV
/// objects (Section IX optimizations 3 and 4).
class S3ObjectStore {
 public:
  explicit S3ObjectStore(Clock* clock, S3Config config = S3Config())
      : clock_(clock), config_(config), failure_rng_(config.failure_seed) {}

  Status PutObject(const std::string& key, std::vector<uint8_t> bytes);
  Result<std::shared_ptr<const std::vector<uint8_t>>> GetObject(
      const std::string& key);
  /// Range GET: [offset, offset+n).
  Result<std::vector<uint8_t>> GetRange(const std::string& key, uint64_t offset,
                                        size_t n);
  Result<FileInfo> HeadObject(const std::string& key);
  Result<std::vector<FileInfo>> ListObjects(const std::string& prefix);
  Status DeleteObject(const std::string& key);

  // -- Multipart upload -------------------------------------------------------
  Result<std::string> CreateMultipartUpload(const std::string& key);
  Status UploadPart(const std::string& upload_id, int part_number,
                    std::vector<uint8_t> bytes);
  Status CompleteMultipartUpload(const std::string& upload_id);
  Status AbortMultipartUpload(const std::string& upload_id);

  // -- S3 Select ---------------------------------------------------------------
  /// Server-side projection (and optional column equality filter) over a CSV
  /// object. Only the selected columns of matching lines are transferred,
  /// which is the bandwidth saving that projection pushdown to S3 Select buys.
  Result<std::vector<uint8_t>> SelectCsv(
      const std::string& key, const std::vector<int>& columns,
      std::optional<std::pair<int, std::string>> equals_predicate);

  MetricsRegistry& metrics() { return metrics_; }
  void set_transient_failure_rate(double rate) {
    std::lock_guard<std::mutex> lock(mu_);
    config_.transient_failure_rate = rate;
  }

 private:
  struct MultipartUpload {
    std::string key;
    std::map<int, std::vector<uint8_t>> parts;
  };

  /// Charges request time and rolls the failure dice. Holds mu_.
  Status BeginRequestLocked(const char* op, size_t bytes);

  Clock* clock_;
  S3Config config_;
  Random failure_rng_;
  MetricsRegistry metrics_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const std::vector<uint8_t>>> objects_;
  std::map<std::string, MultipartUpload> uploads_;
  int64_t next_upload_id_ = 1;
};

}  // namespace presto

#endif  // PRESTO_FS_S3_OBJECT_STORE_H_
