#ifndef PRESTO_FS_PRESTO_S3_FILE_SYSTEM_H_
#define PRESTO_FS_PRESTO_S3_FILE_SYSTEM_H_

#include <functional>
#include <memory>
#include <string>

#include "presto/fs/s3_object_store.h"

namespace presto {

/// Tuning knobs mirroring the Section IX optimizations:
///  1. lazy seek      — defer the range-GET until a read actually happens,
///  2. exponential backoff — retry 503s with doubling delays,
///  3. S3 Select      — exposed on the object store (used by connectors),
///  4. multipart upload — large writes split into parallel part uploads.
struct PrestoS3Options {
  bool lazy_seek = true;
  size_t read_ahead_bytes = 256 * 1024;
  int max_retries = 6;
  int64_t base_backoff_nanos = 10'000'000;  // 10 ms floor per delay
  /// Per-delay ceiling for the decorrelated-jitter backoff: each delay is
  /// uniform in [base, 3 * previous], clamped here, so a long retry chain
  /// stops doubling instead of sleeping for minutes.
  int64_t max_backoff_nanos = 500'000'000;  // 500 ms
  /// Total backoff budget across one logical operation. Once cumulative
  /// sleep would cross this the retry loop gives up (s3.retry.exhausted)
  /// even if max_retries attempts remain.
  int64_t max_elapsed_nanos = 5'000'000'000;  // 5 s
  size_t multipart_threshold = 4 * 1024 * 1024;
  size_t part_size = 2 * 1024 * 1024;
  int upload_parallelism = 4;
};

/// Seekable input stream over an S3 object, modelling the HTTP-stream
/// behaviour PrestoS3FileSystem optimizes: reopening the stream at a new
/// offset costs one GET request; with lazy seek enabled, consecutive seeks
/// without reads collapse into at most one reopen, and seeks that land
/// inside the read-ahead buffer cost nothing.
class S3InputStream {
 public:
  S3InputStream(S3ObjectStore* store, Clock* clock, std::string key,
                uint64_t size, const PrestoS3Options& options,
                MetricsRegistry* metrics);

  Status Seek(uint64_t position);
  Result<size_t> Read(uint8_t* out, size_t n);
  uint64_t position() const { return logical_pos_; }
  uint64_t size() const { return size_; }

 private:
  /// Issues a (retried) range GET establishing a new stream at `pos`.
  Status ReopenAt(uint64_t pos, size_t min_bytes);

  S3ObjectStore* store_;
  Clock* clock_;
  std::string key_;
  uint64_t size_;
  PrestoS3Options options_;
  MetricsRegistry* metrics_;

  uint64_t logical_pos_ = 0;   // where the caller thinks we are
  uint64_t buffer_start_ = 0;  // offset of buffer_[0] in the object
  std::vector<uint8_t> buffer_;
  bool stream_open_ = false;
};

/// FileSystem facade over the simulated S3 object store ("provides File
/// System interface on top of AWS S3"). Handles retries with exponential
/// backoff and multipart uploads internally.
class PrestoS3FileSystem : public FileSystem {
 public:
  PrestoS3FileSystem(S3ObjectStore* store, Clock* clock,
                     PrestoS3Options options = PrestoS3Options())
      : store_(store), clock_(clock), options_(options) {}

  Result<std::shared_ptr<RandomAccessFile>> OpenForRead(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenForWrite(
      const std::string& path) override;
  Result<std::vector<FileInfo>> ListFiles(const std::string& directory) override;
  Result<FileInfo> GetFileInfo(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  bool Exists(const std::string& path) override;

  /// Opens the raw seekable stream (benchmarks exercise lazy seek directly).
  Result<std::unique_ptr<S3InputStream>> OpenStream(const std::string& path);

  S3ObjectStore* store() { return store_; }
  const PrestoS3Options& options() const { return options_; }

  /// Runs an S3 operation with exponential backoff on 503s.
  Status RetryWithBackoff(const std::function<Status()>& op);

 private:
  friend class S3WritableFile;

  S3ObjectStore* store_;
  Clock* clock_;
  PrestoS3Options options_;
};

}  // namespace presto

#endif  // PRESTO_FS_PRESTO_S3_FILE_SYSTEM_H_
