#ifndef PRESTO_FS_LOCAL_FILE_SYSTEM_H_
#define PRESTO_FS_LOCAL_FILE_SYSTEM_H_

#include "presto/fs/file_system.h"

namespace presto {

/// POSIX filesystem adapter. All paths are used verbatim; parent directories
/// are created on write. Used by examples that persist lakefiles to disk.
class LocalFileSystem : public FileSystem {
 public:
  Result<std::shared_ptr<RandomAccessFile>> OpenForRead(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenForWrite(
      const std::string& path) override;
  Result<std::vector<FileInfo>> ListFiles(const std::string& directory) override;
  Result<FileInfo> GetFileInfo(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;
  bool Exists(const std::string& path) override;
};

}  // namespace presto

#endif  // PRESTO_FS_LOCAL_FILE_SYSTEM_H_
