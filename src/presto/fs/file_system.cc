#include "presto/fs/file_system.h"

namespace presto {

Result<std::vector<uint8_t>> RandomAccessFile::ReadAll() {
  ASSIGN_OR_RETURN(uint64_t size, Size());
  std::vector<uint8_t> out(size);
  size_t done = 0;
  while (done < size) {
    ASSIGN_OR_RETURN(size_t n, Read(done, size - done, out.data() + done));
    if (n == 0) return Status::IoError("unexpected EOF");
    done += n;
  }
  return out;
}

Status FileSystem::WriteFile(const std::string& path,
                             const std::vector<uint8_t>& bytes) {
  ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file, OpenForWrite(path));
  RETURN_IF_ERROR(file->Append(bytes.data(), bytes.size()));
  return file->Close();
}

}  // namespace presto
