#include "presto/fs/simulated_hdfs.h"

#include "presto/common/fault_injection.h"

namespace presto {

Result<std::shared_ptr<RandomAccessFile>> SimulatedHdfs::OpenForRead(
    const std::string& path) {
  metrics_.Increment("fs.file.open_read");
  RETURN_IF_ERROR(FaultInjector::Global().Hit("hdfs.read.open"));
  return storage_.OpenForRead(path);
}

Result<std::unique_ptr<WritableFile>> SimulatedHdfs::OpenForWrite(
    const std::string& path) {
  metrics_.Increment("fs.file.open_write");
  return storage_.OpenForWrite(path);
}

Result<std::vector<FileInfo>> SimulatedHdfs::ListFiles(
    const std::string& directory) {
  metrics_.Increment("fs.dir.list");
  clock_->AdvanceNanos(MetadataCharge(latency_.list_files_nanos));
  RETURN_IF_ERROR(FaultInjector::Global().Hit("hdfs.namenode.list"));
  return storage_.ListFiles(directory);
}

Result<FileInfo> SimulatedHdfs::GetFileInfo(const std::string& path) {
  metrics_.Increment("fs.file.stat");
  clock_->AdvanceNanos(MetadataCharge(latency_.get_file_info_nanos));
  RETURN_IF_ERROR(FaultInjector::Global().Hit("hdfs.namenode.stat"));
  return storage_.GetFileInfo(path);
}

Status SimulatedHdfs::DeleteFile(const std::string& path) {
  return storage_.DeleteFile(path);
}

bool SimulatedHdfs::Exists(const std::string& path) {
  metrics_.Increment("fs.file.stat");
  clock_->AdvanceNanos(MetadataCharge(latency_.get_file_info_nanos));
  return storage_.Exists(path);
}

}  // namespace presto
