#include "presto/fs/s3_object_store.h"

#include <algorithm>
#include <cstring>

#include "presto/common/fault_injection.h"

namespace presto {

Status S3ObjectStore::BeginRequestLocked(const char* op, size_t bytes) {
  metrics_.Increment(std::string("s3.request.calls"));
  metrics_.Increment(std::string("s3.request.") + op);
  if (config_.transient_failure_rate > 0 &&
      failure_rng_.NextBool(config_.transient_failure_rate)) {
    metrics_.Increment("s3.request.throttled");
    // A failed request still costs the round trip.
    clock_->AdvanceNanos(config_.first_byte_latency_nanos);
    return Status::Unavailable("503 SlowDown: please reduce request rate");
  }
  // Chaos hook: the "s3.request" fault point injects transient failures on
  // top of (or instead of) the store's own throttle model.
  Status fault = FaultInjector::Global().Hit("s3.request");
  if (!fault.ok()) {
    metrics_.Increment("s3.request.throttled");
    clock_->AdvanceNanos(config_.first_byte_latency_nanos);
    return fault;
  }
  clock_->AdvanceNanos(config_.first_byte_latency_nanos +
                       static_cast<int64_t>(bytes) * config_.per_byte_nanos);
  return Status::OK();
}

Status S3ObjectStore::PutObject(const std::string& key,
                                std::vector<uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  RETURN_IF_ERROR(BeginRequestLocked("put", bytes.size()));
  metrics_.Increment("s3.object.bytes_written", static_cast<int64_t>(bytes.size()));
  objects_[key] =
      std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
  return Status::OK();
}

Result<std::shared_ptr<const std::vector<uint8_t>>> S3ObjectStore::GetObject(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("NoSuchKey: " + key);
  RETURN_IF_ERROR(BeginRequestLocked("get", it->second->size()));
  metrics_.Increment("s3.object.bytes_read", static_cast<int64_t>(it->second->size()));
  return it->second;
}

Result<std::vector<uint8_t>> S3ObjectStore::GetRange(const std::string& key,
                                                     uint64_t offset, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("NoSuchKey: " + key);
  const auto& data = *it->second;
  size_t take = offset >= data.size()
                    ? 0
                    : std::min<size_t>(n, data.size() - offset);
  RETURN_IF_ERROR(BeginRequestLocked("get", take));
  metrics_.Increment("s3.object.bytes_read", static_cast<int64_t>(take));
  std::vector<uint8_t> out(take);
  std::memcpy(out.data(), data.data() + offset, take);
  return out;
}

Result<FileInfo> S3ObjectStore::HeadObject(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  RETURN_IF_ERROR(BeginRequestLocked("head", 0));
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("NoSuchKey: " + key);
  return FileInfo{key, it->second->size(), false};
}

Result<std::vector<FileInfo>> S3ObjectStore::ListObjects(
    const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  RETURN_IF_ERROR(BeginRequestLocked("list", 0));
  std::vector<FileInfo> out;
  for (const auto& [key, data] : objects_) {
    if (key.rfind(prefix, 0) == 0) {
      out.push_back(FileInfo{key, data->size(), false});
    }
  }
  return out;
}

Status S3ObjectStore::DeleteObject(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  RETURN_IF_ERROR(BeginRequestLocked("delete", 0));
  objects_.erase(key);  // S3 delete is idempotent
  return Status::OK();
}

Result<std::string> S3ObjectStore::CreateMultipartUpload(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  RETURN_IF_ERROR(BeginRequestLocked("create_multipart", 0));
  std::string id = "upload-" + std::to_string(next_upload_id_++);
  uploads_[id] = MultipartUpload{key, {}};
  return id;
}

Status S3ObjectStore::UploadPart(const std::string& upload_id, int part_number,
                                 std::vector<uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = uploads_.find(upload_id);
  if (it == uploads_.end()) return Status::NotFound("NoSuchUpload: " + upload_id);
  RETURN_IF_ERROR(BeginRequestLocked("upload_part", bytes.size()));
  metrics_.Increment("s3.object.bytes_written", static_cast<int64_t>(bytes.size()));
  it->second.parts[part_number] = std::move(bytes);
  return Status::OK();
}

Status S3ObjectStore::CompleteMultipartUpload(const std::string& upload_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = uploads_.find(upload_id);
  if (it == uploads_.end()) return Status::NotFound("NoSuchUpload: " + upload_id);
  RETURN_IF_ERROR(BeginRequestLocked("complete_multipart", 0));
  std::vector<uint8_t> assembled;
  for (const auto& [number, part] : it->second.parts) {
    assembled.insert(assembled.end(), part.begin(), part.end());
  }
  objects_[it->second.key] =
      std::make_shared<const std::vector<uint8_t>>(std::move(assembled));
  uploads_.erase(it);
  return Status::OK();
}

Status S3ObjectStore::AbortMultipartUpload(const std::string& upload_id) {
  std::lock_guard<std::mutex> lock(mu_);
  uploads_.erase(upload_id);
  return Status::OK();
}

Result<std::vector<uint8_t>> S3ObjectStore::SelectCsv(
    const std::string& key, const std::vector<int>& columns,
    std::optional<std::pair<int, std::string>> equals_predicate) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("NoSuchKey: " + key);
  const auto& data = *it->second;

  // Server-side scan: split lines, project/filter columns.
  std::string out;
  std::string line;
  std::vector<std::string> fields;
  auto flush_line = [&] {
    fields.clear();
    size_t start = 0;
    while (start <= line.size()) {
      size_t comma = line.find(',', start);
      if (comma == std::string::npos) {
        fields.push_back(line.substr(start));
        break;
      }
      fields.push_back(line.substr(start, comma - start));
      start = comma + 1;
    }
    if (equals_predicate.has_value()) {
      int col = equals_predicate->first;
      if (col < 0 || col >= static_cast<int>(fields.size()) ||
          fields[col] != equals_predicate->second) {
        return;
      }
    }
    std::string projected;
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) projected += ',';
      int col = columns[i];
      if (col >= 0 && col < static_cast<int>(fields.size())) {
        projected += fields[col];
      }
    }
    out += projected;
    out += '\n';
  };
  for (uint8_t b : data) {
    if (b == '\n') {
      flush_line();
      line.clear();
    } else {
      line.push_back(static_cast<char>(b));
    }
  }
  if (!line.empty()) flush_line();

  // The server scans the full object, but only the projected bytes cross the
  // wire: charge transfer for `out`, not for `data`.
  RETURN_IF_ERROR(BeginRequestLocked("select", out.size()));
  metrics_.Increment("s3.object.bytes_read", static_cast<int64_t>(out.size()));
  metrics_.Increment("s3.select.bytes_scanned", static_cast<int64_t>(data.size()));
  return std::vector<uint8_t>(out.begin(), out.end());
}

}  // namespace presto
