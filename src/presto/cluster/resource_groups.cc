#include "presto/cluster/resource_groups.h"

#include <algorithm>
#include <chrono>

#include "presto/common/clock.h"

namespace presto {

ResourceGroupsOptions DefaultResourceGroupTree() {
  ResourceGroupsOptions options;
  options.enabled = true;
  options.total_concurrency = 12;
  options.default_group = "adhoc";
  ResourceGroupConfig interactive;
  interactive.name = "interactive";
  interactive.weight = 8;
  interactive.hard_concurrency = 8;
  interactive.max_queued = 64;
  interactive.memory_fraction = 0.5;
  interactive.degradable = false;
  ResourceGroupConfig batch;
  batch.name = "batch";
  batch.weight = 2;
  batch.hard_concurrency = 2;
  batch.max_queued = 16;
  batch.memory_fraction = 0.5;
  batch.queued_timeout_millis = 30'000;
  batch.degradable = true;
  ResourceGroupConfig adhoc;
  adhoc.name = "adhoc";
  adhoc.weight = 1;
  adhoc.hard_concurrency = 4;
  adhoc.max_queued = 32;
  adhoc.memory_fraction = 0.5;
  adhoc.queued_timeout_millis = 60'000;
  adhoc.degradable = true;
  options.groups = {interactive, batch, adhoc};
  return options;
}

namespace {

// Disabled mode: one unbounded FIFO group. Concurrency is effectively
// uncapped (the pre-resource-groups coordinator never limited running
// queries, only memory), and the queue depth defers to the session's
// query_queue_max override.
ResourceGroupsOptions SingleFifoGroup() {
  ResourceGroupsOptions options;
  options.enabled = false;
  options.total_concurrency = 1 << 30;
  options.default_group = "default";
  ResourceGroupConfig all;
  all.name = "default";
  all.weight = 1;
  all.hard_concurrency = 1 << 30;
  all.max_queued = 1 << 30;
  options.groups = {all};
  return options;
}

}  // namespace

ResourceGroupManager::ResourceGroupManager(ResourceGroupsOptions options,
                                           MetricsRegistry* metrics,
                                           std::function<bool()> memory_gate)
    : options_(options.enabled ? std::move(options) : SingleFifoGroup()),
      metrics_(metrics),
      memory_gate_(std::move(memory_gate)) {
  if (options_.groups.empty()) {
    options_.groups = DefaultResourceGroupTree().groups;
  }
  for (const ResourceGroupConfig& config : options_.groups) {
    Group& group = groups_[config.name];
    group.config = config;
    group.queued_counter =
        metrics_->FindOrRegister("group." + config.name + ".queued");
    group.admitted_counter =
        metrics_->FindOrRegister("group." + config.name + ".admitted");
    group.shed_counter =
        metrics_->FindOrRegister("group." + config.name + ".shed");
  }
  // DRR visits groups in configured order so weight ties break
  // deterministically.
  for (const ResourceGroupConfig& config : options_.groups) {
    drr_order_.push_back(&groups_[config.name]);
  }
  if (options_.default_group.empty() || Find(options_.default_group) == nullptr) {
    options_.default_group = options_.groups.front().name;
  }
}

const ResourceGroupConfig* ResourceGroupManager::Find(
    const std::string& name) const {
  auto it = groups_.find(name);
  return it == groups_.end() ? nullptr : &it->second.config;
}

const ResourceGroupConfig& ResourceGroupManager::Resolve(
    const Session& session) const {
  std::string wanted = session.Property("resource_group", "");
  if (const ResourceGroupConfig* config = Find(wanted)) return *config;
  if (const ResourceGroupConfig* config = Find(session.group)) return *config;
  return *Find(options_.default_group);
}

ResourceGroupManager::Group* ResourceGroupManager::FindGroupLocked(
    const std::string& name) {
  auto it = groups_.find(name);
  return it == groups_.end() ? nullptr : &it->second;
}

void ResourceGroupManager::PromoteLocked() {
  while (total_running_ < options_.total_concurrency && memory_gate_()) {
    std::vector<Group*> eligible;
    bool any_deficit = false;
    for (Group* group : drr_order_) {
      if (group->queue.empty()) continue;
      if (group->running >= group->config.hard_concurrency) continue;
      eligible.push_back(group);
      any_deficit = any_deficit || group->deficit > 0;
    }
    if (eligible.empty()) return;
    if (!any_deficit) {
      for (Group* group : eligible) group->deficit += group->config.weight;
    }
    Group* pick = eligible.front();
    for (Group* group : eligible) {
      if (group->deficit > pick->deficit) pick = group;
    }
    Waiter* waiter = pick->queue.front();
    pick->queue.pop_front();
    waiter->admitted = true;
    ++pick->running;
    ++total_running_;
    --pick->deficit;
    pick->admitted_counter->Add(1);
  }
}

Status ResourceGroupManager::TryAdmit(const std::string& group,
                                      int64_t query_id,
                                      int64_t session_queue_max,
                                      bool* queued) {
  *queued = false;
  std::lock_guard<std::mutex> lock(mu_);
  Group* g = FindGroupLocked(group);
  if (g == nullptr) {
    return Status::Internal("unknown resource group: " + group);
  }
  // Fast path: an empty queue, free quota everywhere, and an open memory
  // gate admit immediately. A non-empty queue forces new arrivals behind the
  // waiters — otherwise late arrivals would starve the queue forever.
  if (g->queue.empty() &&
      g->running < g->config.hard_concurrency &&
      total_running_ < options_.total_concurrency && memory_gate_()) {
    ++g->running;
    ++total_running_;
    g->admitted_counter->Add(1);
    // A zero-wait sample: immediate admissions count in the queue-wait
    // distribution too, so its percentiles describe all admissions.
    metrics_->RecordHistogram("group." + group + ".queue_wait.micros", 0);
    return Status::OK();
  }
  int64_t queue_cap = g->config.max_queued;
  if (session_queue_max >= 0) {
    queue_cap = std::min<int64_t>(queue_cap, session_queue_max);
  }
  if (static_cast<int64_t>(g->queue.size()) >= queue_cap) {
    g->shed_counter->Add(1);
    return Status::Rejected(
        "resource group '" + group + "' queue full: " +
        std::to_string(g->queue.size()) + " queries already queued (cap " +
        std::to_string(queue_cap) + "); load shed");
  }
  // Park here, not in Wait(): the query's DRR position is its arrival
  // order, and the depth cap above can never be overshot by arrivals racing
  // between TryAdmit and Wait.
  auto waiter = std::make_unique<Waiter>();
  waiter->query_id = query_id;
  waiter->enqueued_steady_nanos = SteadyNowNanos();
  g->queue.push_back(waiter.get());
  g->waiters[query_id] = std::move(waiter);
  g->queued_counter->Add(1);
  *queued = true;
  return Status::OK();
}

Status ResourceGroupManager::Wait(const std::string& group, int64_t query_id,
                                  int64_t deadline_steady_nanos) {
  const std::string wait_metric = "group." + group + ".queue_wait.micros";
  std::unique_lock<std::mutex> lock(mu_);
  Group* g = FindGroupLocked(group);
  if (g == nullptr) {
    return Status::Internal("unknown resource group: " + group);
  }
  auto it = g->waiters.find(query_id);
  if (it == g->waiters.end()) {
    return Status::Internal("Wait() without a queued TryAdmit: query " +
                            std::to_string(query_id));
  }
  Waiter* waiter = it->second.get();
  const int64_t group_timeout_nanos =
      g->config.queued_timeout_millis > 0
          ? g->config.queued_timeout_millis * 1'000'000
          : 0;
  // Poll as well as wait on the cv: worker memory is also released by
  // operators mid-query (pool atomics have no coordinator hook), so a 10ms
  // re-promotion keeps admission prompt without coupling pools to this lock.
  while (true) {
    PromoteLocked();
    if (waiter->admitted) {
      metrics_->RecordHistogram(
          wait_metric,
          (SteadyNowNanos() - waiter->enqueued_steady_nanos) / 1000);
      g->waiters.erase(query_id);  // promotion already popped the queue entry
      return Status::OK();
    }
    const int64_t now = SteadyNowNanos();
    const int64_t waited = now - waiter->enqueued_steady_nanos;
    Status exit = Status::OK();
    if (deadline_steady_nanos > 0 && now >= deadline_steady_nanos) {
      exit = Status::Unavailable(
          "query deadline exceeded (query_timeout_millis) while queued for "
          "admission");
    } else if (group_timeout_nanos > 0 && waited >= group_timeout_nanos) {
      g->shed_counter->Add(1);
      exit = Status::Rejected(
          "resource group '" + group + "' queued-time deadline exceeded (" +
          std::to_string(g->config.queued_timeout_millis) +
          "ms); load shed");
    }
    if (!exit.ok()) {
      // Safe: promotion happens only under mu_, held since the admitted
      // check above, so the waiter is still parked in the queue.
      g->queue.erase(std::find(g->queue.begin(), g->queue.end(), waiter));
      g->waiters.erase(query_id);
      metrics_->RecordHistogram(wait_metric, waited / 1000);
      return exit;
    }
    cv_.wait_for(lock, std::chrono::milliseconds(10));
  }
}

void ResourceGroupManager::Release(const std::string& group) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Group* g = FindGroupLocked(group);
    if (g == nullptr) return;
    --g->running;
    --total_running_;
    PromoteLocked();
  }
  cv_.notify_all();
}

void ResourceGroupManager::NotifyCapacity() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PromoteLocked();
  }
  cv_.notify_all();
}

int64_t ResourceGroupManager::running(const std::string& group) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.running;
}

int64_t ResourceGroupManager::queued(const std::string& group) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(group);
  return it == groups_.end() ? 0
                             : static_cast<int64_t>(it->second.queue.size());
}

int64_t ResourceGroupManager::total_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_running_;
}

std::vector<std::string> ResourceGroupManager::GroupNames() const {
  std::vector<std::string> out;
  for (const auto& [name, group] : groups_) out.push_back(name);
  return out;
}

}  // namespace presto
