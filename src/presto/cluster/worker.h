#ifndef PRESTO_CLUSTER_WORKER_H_
#define PRESTO_CLUSTER_WORKER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "presto/common/clock.h"
#include "presto/common/metrics.h"
#include "presto/common/status.h"
#include "presto/common/thread_pool.h"

namespace presto {

/// Worker lifecycle (Section IX): "upon receiving the command, the worker
/// will enter SHUTTING_DOWN state: sleep for shutdown.grace-period … the
/// coordinator is aware of the shutdown and stops sending tasks … the worker
/// will block until all active tasks are complete … sleep for the grace
/// period again … finally shut down."
///
/// kDead is the crash path (no grace, no drain): the process disappeared.
/// Tasks still running on a dead worker abort cooperatively at their next
/// page boundary; the coordinator's liveness check blacklists the worker and
/// re-dispatches its splits to healthy peers.
enum class WorkerState { kActive, kShuttingDown, kShutDown, kDead };

const char* WorkerStateToString(WorkerState state);

/// A simulated Presto worker: execution slots backed by a thread pool plus
/// the graceful-shutdown state machine.
class Worker {
 public:
  Worker(std::string id, size_t execution_slots,
         Clock* clock = nullptr /* defaults to an internal SystemClock */);
  ~Worker();

  const std::string& id() const { return id_; }
  WorkerState state() const { return state_.load(); }
  int active_tasks() const { return active_tasks_.load(); }
  int64_t tasks_completed() const { return tasks_completed_.load(); }

  /// Submits a task; returns false when the worker no longer accepts work
  /// (SHUTTING_DOWN or later).
  bool SubmitTask(std::function<void()> task);

  /// Submits an intermediate-stage task on a dedicated (detached) thread
  /// outside the execution-slot pool. Intermediate stages drain bounded
  /// exchanges fed by pool tasks; running them in pool slots could queue a
  /// consumer behind the very producers blocked waiting for it to drain — a
  /// deadlock. The task counts as active for the graceful-drain protocol,
  /// which is also what the destructor waits on. Returns false when the
  /// worker no longer accepts work.
  bool SubmitDedicatedTask(std::function<void()> task);

  /// Starts the graceful shutdown sequence asynchronously.
  void RequestGracefulShutdown(int64_t grace_period_nanos = 120'000'000'000 /* 2 min */);

  /// Status-returning variant for coordinator-driven shrink: kAlreadyExists
  /// when the worker is already draining or down, kUnavailable when it died.
  Status TryRequestGracefulShutdown(int64_t grace_period_nanos);

  /// Synchronous graceful drain: stop accepting new tasks, block until every
  /// in-flight task completes, then enter SHUT_DOWN. Unlike the async grace
  /// protocol above there is no grace-period sleep — the caller (the
  /// coordinator's graceful-shrink path) has already stopped routing tasks
  /// here by the time it calls this. kAlreadyExists when the worker is
  /// already draining or down, kUnavailable when it died.
  Status Drain();

  /// Test/operations hook: brings a killed worker back (kDead -> kActive),
  /// modeling a crashed node whose process restarted on the same host. The
  /// coordinator's blacklist probation decides when it gets traffic again.
  /// kInvalidArgument unless the worker is currently dead.
  Status Revive();

  /// Crash-style kill: the worker stops accepting tasks immediately and its
  /// running tasks observe kDead at their next page boundary and abort with
  /// kUnavailable. No grace period, no drain — this is a failure, not a
  /// shrink.
  void Kill();

  /// Liveness probe (the coordinator's heartbeat): true while the worker
  /// responds, false once it is dead. Counts probes for observability.
  bool Heartbeat();
  int64_t heartbeats_received() const { return heartbeats_.load(); }

  /// Blocks until the worker reaches SHUT_DOWN.
  void AwaitShutdown();

  /// Per-worker counters: worker.task.submitted/.completed and
  /// worker.task.busy_nanos (wall time spent inside task bodies).
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Worker-local helper pool for morsel-driven intra-task parallelism:
  /// replicated operator chains of one task borrow threads from here (the
  /// task's own thread always participates, so a busy pool only reduces
  /// parallelism, never progress). Shared by all tasks on this worker.
  WorkStealingPool* morsel_pool() { return morsel_pool_.get(); }

 private:
  void GracefulShutdownSequence(int64_t grace_period_nanos);

  std::string id_;
  std::unique_ptr<SystemClock> owned_clock_;
  Clock* clock_;
  ThreadPool pool_;
  std::unique_ptr<WorkStealingPool> morsel_pool_;
  std::atomic<WorkerState> state_{WorkerState::kActive};
  std::atomic<int> active_tasks_{0};
  std::atomic<int64_t> tasks_completed_{0};
  std::atomic<int64_t> heartbeats_{0};

  MetricsRegistry metrics_;
  MetricsRegistry::Counter* const tasks_submitted_counter_ =
      metrics_.FindOrRegister("worker.task.submitted");
  MetricsRegistry::Counter* const tasks_completed_counter_ =
      metrics_.FindOrRegister("worker.task.completed");
  MetricsRegistry::Counter* const busy_nanos_counter_ =
      metrics_.FindOrRegister("worker.task.busy_nanos");

  std::mutex mu_;
  std::condition_variable drained_cv_;
  std::condition_variable shutdown_cv_;
  std::mutex join_mu_;  // serializes joining shutdown_thread_
  std::thread shutdown_thread_;
};

}  // namespace presto

#endif  // PRESTO_CLUSTER_WORKER_H_
