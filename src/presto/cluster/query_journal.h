#ifndef PRESTO_CLUSTER_QUERY_JOURNAL_H_
#define PRESTO_CLUSTER_QUERY_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "presto/common/clock.h"

namespace presto {

/// Lifecycle events of a query, Presto event-listener style.
enum class QueryEventKind {
  kCreated,        // SQL received, query id assigned
  kPlanned,        // parse/analyze/optimize/fragment finished
  kScheduled,      // tasks dispatched to workers
  kStageFinished,  // every task of one fragment drained
  kCompleted,      // result returned to the client
  kFailed,         // query errored (carries partial counters)
  kSlowQuery,      // wall time crossed the slow_query_millis threshold
  kTaskRetried,        // a leaf task failed transiently and was re-dispatched
  kWorkerBlacklisted,  // liveness check found a dead worker; out of scheduling
  kRestarted,          // transient stage-level error; whole query re-run once
  kQueued,             // admission control held the query (worker memory high)
  kAdmitted,           // a previously queued query got its admission slot
  kKilledMemory,       // low-memory killer cancelled the largest query
  kOperatorSpilled,    // revocable operators wrote spill runs under pressure
  kShed,               // overload protection rejected the query (kRejected)
  kTimeoutQueued,      // query_timeout_millis expired while still queued
  kDegraded,           // memory pressure shrank the query's task_threads
  kStageRerun,         // lost intermediate task re-run against upstream spools
  kTaskSpeculated,     // duplicate attempt launched for a straggling task
  kWorkerDrained,      // graceful shrink: worker finished its tasks and left
  kWorkerReinstated,   // blacklisted worker passed probation; back in rotation
};

const char* QueryEventKindToString(QueryEventKind kind);

/// One structured journal entry. `counters` carries a metrics snapshot on
/// terminal events (completed/failed/slow-query) so failure diagnostics and
/// the slow-query log see partial execution stats even when no QueryResult
/// was returned.
struct QueryEvent {
  int64_t query_id = 0;
  QueryEventKind kind = QueryEventKind::kCreated;
  int64_t timestamp_nanos = 0;  // from the coordinator's Clock
  int64_t sequence = 0;         // global, strictly increasing
  /// Stable correlation id of the query (hex), stamped on every event of the
  /// query once the coordinator registers it via SetTraceId — joins the
  /// journal with trace dumps and client-side logs.
  std::string trace_id;
  /// Resource group the query was admitted under ("" before resolution or
  /// when the registration was pruned), stamped like trace_id via
  /// SetResourceGroup.
  std::string resource_group;
  std::string detail;
  std::map<std::string, int64_t> counters;

  std::string ToString() const;
};

/// Ring-buffered history of query events on the coordinator. Timestamps come
/// from the injected Clock (simulated in tests/benches) but are forced
/// strictly increasing: under a SimulatedClock that nobody advances, two
/// consecutive events still order as created < planned < ... < completed.
class QueryJournal {
 public:
  explicit QueryJournal(const Clock* clock, size_t capacity = 1024)
      : clock_(clock), capacity_(capacity == 0 ? 1 : capacity) {}

  void Record(int64_t query_id, QueryEventKind kind, std::string detail = "",
              std::map<std::string, int64_t> counters = {});

  /// Registers the query's trace id; every subsequent (and this query's
  /// future) event carries it. The mapping is bounded — oldest registrations
  /// are pruned past 1024 live queries.
  void SetTraceId(int64_t query_id, std::string trace_id);

  /// The registered trace id for a query ("" if unknown/pruned).
  std::string TraceIdFor(int64_t query_id) const;

  /// Registers the query's resource group; every subsequent event of the
  /// query carries it. Bounded like the trace-id map.
  void SetResourceGroup(int64_t query_id, std::string group);

  /// Copy of the retained events, oldest first.
  std::vector<QueryEvent> Events() const;

  /// Retained events of one query, oldest first.
  std::vector<QueryEvent> EventsForQuery(int64_t query_id) const;

  /// Total events ever recorded (not capped by the ring capacity).
  int64_t events_recorded() const;

  size_t capacity() const { return capacity_; }

 private:
  const Clock* clock_;
  const size_t capacity_;

  mutable std::mutex mu_;
  std::deque<QueryEvent> events_;
  std::map<int64_t, std::string> trace_ids_;  // query id -> trace id
  std::map<int64_t, std::string> groups_;     // query id -> resource group
  int64_t next_sequence_ = 0;
  int64_t last_timestamp_ = -1;
};

}  // namespace presto

#endif  // PRESTO_CLUSTER_QUERY_JOURNAL_H_
