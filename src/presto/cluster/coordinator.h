#ifndef PRESTO_CLUSTER_COORDINATOR_H_
#define PRESTO_CLUSTER_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "presto/cache/lru_cache.h"
#include "presto/common/memory_pool.h"
#include "presto/common/trace.h"
#include "presto/connector/connector.h"
#include "presto/cluster/query_journal.h"
#include "presto/cluster/resource_groups.h"
#include "presto/cluster/worker.h"
#include "presto/exec/query_stats.h"
#include "presto/fs/file_system.h"
#include "presto/fs/local_file_system.h"
#include "presto/planner/fragmenter.h"
#include "presto/planner/session.h"
#include "presto/vector/page.h"

namespace presto {

namespace sql {
struct Query;
}  // namespace sql

/// Process-wide real-time clock used when CoordinatorOptions does not inject
/// one (tests inject a SimulatedClock to get deterministic journal order).
const Clock* DefaultSystemClock();

/// Result of one query: pages plus metadata and basic stats.
struct QueryResult {
  /// Coordinator-assigned id; joins the result to its journal events.
  int64_t query_id = 0;
  std::vector<std::string> column_names;
  std::vector<TypePtr> column_types;
  std::vector<Page> pages;
  int64_t total_rows = 0;
  double wall_millis = 0;
  int num_fragments = 0;
  int num_tasks = 0;
  int num_splits = 0;
  /// Per-query execution counters aggregated across all tasks (groups
  /// created, hash-table probes, kernel vs fallback page counts, ...).
  std::map<std::string, int64_t> exec_metrics;
  /// Per-operator/per-stage stats tree merged across tasks. Populated unless
  /// the session property query_stats=false disables collection.
  QueryStats stats;
  /// Correlation id joining this result to its journal events and trace.
  std::string trace_id;
  /// Chrome trace-event JSON of the query's span tree (query -> stage ->
  /// task -> chain -> operator plus waits). Populated only when the session
  /// property query_trace=true; loadable in chrome://tracing / Perfetto.
  std::string trace_json;
  /// The raw recorded spans behind trace_json (same condition).
  std::vector<TraceSpan> trace_spans;

  /// Boxes one result row (r indexes across all pages).
  std::vector<Value> Row(size_t r) const;
  std::string ToString(size_t max_rows = 32) const;
};

struct CoordinatorOptions {
  /// Target split batches (tasks) per leaf fragment; capped by split count.
  size_t tasks_per_fragment = 4;
  /// Time source for query-event timestamps; nullptr = real wall clock.
  const Clock* clock = nullptr;
  /// Ring capacity of the query event journal.
  size_t journal_capacity = 1024;
  /// Capacity of the worker-level memory pool every query's reservations
  /// count against (this embedded cluster models one worker process).
  int64_t worker_memory_bytes = 8LL << 30;
  /// Admission control high-water mark as a fraction of worker_memory_bytes:
  /// new queries queue while reserved worker memory is at or above it.
  double admission_high_water = 0.85;
  /// Resource groups (multi-tenant admission). Disabled by default: one
  /// unbounded FIFO group gated only by the high-water mark — the
  /// pre-resource-groups behavior. Enable (e.g. DefaultResourceGroupTree())
  /// for per-group concurrency quotas, weighted-fair admission, queue-depth
  /// load shedding, and per-group memory caps.
  ResourceGroupsOptions resource_groups;
  /// Soft-degradation watermark as a fraction of worker_memory_bytes: above
  /// it, queries of degradable groups run with task_threads = 1 so batch
  /// narrows before the low-memory killer fires.
  double degrade_high_water = 0.7;
};

/// Single-coordinator query engine (Section III): parses incoming SQL into
/// an AST, analyzes it into a logical plan, runs the optimizer rounds,
/// fragments the physical plan, and schedules tasks on worker execution
/// slots. There is one coordinator per cluster; it is stateful.
///
/// Memory management: the coordinator owns the worker-level MemoryPool root.
/// Each query gets a child pool split into a "user" subtree (capped by the
/// session property query_max_memory; operators reserve there) and a
/// "system" subtree (exchange buffers). Under pressure it degrades in order:
/// revocable operators spill, new queries queue at the admission high-water
/// mark, and as the last resort the low-memory killer (MemoryArbiter)
/// cancels the query with the largest reservation.
class Coordinator : public MemoryArbiter {
 public:
  Coordinator(CatalogRegistry* catalogs,
              CoordinatorOptions options = CoordinatorOptions())
      : catalogs_(catalogs),
        options_(options),
        journal_(options.clock != nullptr ? options.clock : DefaultSystemClock(),
                 options.journal_capacity) {
    worker_pool_ = MemoryPool::CreateRoot("worker", options_.worker_memory_bytes,
                                          &metrics_);
    // Admission gate shared by every group: reserved worker memory must sit
    // below the high-water mark for any query to be admitted.
    const int64_t high_water = static_cast<int64_t>(
        static_cast<double>(options_.worker_memory_bytes) *
        options_.admission_high_water);
    groups_ = std::make_unique<ResourceGroupManager>(
        options_.resource_groups, &metrics_,
        [this, high_water] {
          return worker_pool_->reserved_bytes() < high_water;
        });
    if (groups_->enabled()) {
      // Per-group pool layer: worker -> group.<name> -> query.<id>. A
      // memory_fraction below 1 becomes a reservation-time cap, so one
      // tenant's queries spill (or fail) inside their own budget instead of
      // invoking the cross-tenant killer.
      for (const ResourceGroupConfig& group : groups_->options().groups) {
        int64_t cap = MemoryPool::kUnlimited;
        if (group.memory_fraction < 1.0) {
          cap = static_cast<int64_t>(
              static_cast<double>(options_.worker_memory_bytes) *
              group.memory_fraction);
        }
        group_pools_[group.name] =
            worker_pool_->AddChild("group." + group.name, cap);
      }
    }
    spill_fs_ = std::make_unique<LocalFileSystem>();
    fragment_cache_.SetMemoryPool(
        ProcessCachePool()->AddChild("cache.fragment_result"));
    // Helper pool for morsel-parallel root fragments, which run on the
    // coordinator thread and so cannot borrow a worker's pool.
    root_morsel_pool_ = std::make_unique<WorkStealingPool>(2);
  }

  // -- worker membership: elastic expansion / graceful shrink ----------------
  void AddWorker(std::shared_ptr<Worker> worker);
  /// Sends the shutdown command; the worker drains per the grace-period
  /// protocol and is dropped from scheduling immediately. kNotFound for an
  /// unknown worker id, kAlreadyExists when the worker is already draining or
  /// shut down, kUnavailable when it died.
  Status ShrinkWorker(const std::string& worker_id, int64_t grace_period_nanos);
  /// Synchronous graceful shrink: the worker stops accepting tasks, the call
  /// blocks until its in-flight tasks complete, and the worker leaves the
  /// fleet in SHUT_DOWN (journaled as worker_drained, counted in
  /// worker.drained). Unlike ShrinkWorker there is no grace-period protocol —
  /// the worker drops out of scheduling at the state flip, before the wait.
  Status DrainWorker(const std::string& worker_id);
  /// Probation sweep over blacklisted workers: heartbeat-probe each one and,
  /// after kProbationProbes consecutive successful probes, re-admit it to
  /// scheduling (journaled as worker_reinstated, counted in
  /// worker.reinstated). A failed probe resets the worker's streak. Returns
  /// the number of workers reinstated by this sweep. Callers (an operations
  /// loop, tests) invoke it periodically; it is cheap when the blacklist is
  /// empty.
  int ProbeBlacklistedWorkers();
  static constexpr int kProbationProbes = 3;
  /// Workers eligible for scheduling: ACTIVE state and not blacklisted. A
  /// revived (restarted) worker stays out of rotation until the probation
  /// sweep reinstates it.
  std::vector<std::shared_ptr<Worker>> ActiveWorkers() const;
  size_t num_workers() const;
  /// Worker ids the liveness check found dead and removed from scheduling.
  std::vector<std::string> BlacklistedWorkers() const;

  // -- queries -------------------------------------------------------------------
  /// Executes one statement. Plain queries return their result pages;
  /// EXPLAIN returns the fragmented plan as a one-row varchar result;
  /// EXPLAIN ANALYZE executes the query and returns the plan re-rendered
  /// with actual per-operator stats (rows, bytes, wall/CPU time).
  Result<QueryResult> ExecuteSql(const std::string& sql, const Session& session);
  /// EXPLAIN: the fragmented physical plan as text.
  Result<std::string> ExplainSql(const std::string& sql, const Session& session);

  CatalogRegistry* catalogs() { return catalogs_; }
  int64_t queries_completed() const { return queries_completed_; }
  int64_t queries_failed() const { return queries_failed_; }

  /// Structured lifecycle journal: created/planned/scheduled/stage-finished/
  /// completed/failed events with simulated-clock timestamps, ring-buffered.
  const QueryJournal& journal() const { return journal_; }

  /// Coordinator-level counters (coordinator.query.completed/.failed/.slow).
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Fragment result cache (Section VII mentions it among the RaptorX cache
  /// family): leaf-fragment outputs keyed by (fragment plan, splits). Opt-in
  /// via session property fragment_result_cache=true — results are reused
  /// only when the underlying data is immutable between runs, which the
  /// session owner asserts by enabling it.
  MetricsRegistry& fragment_cache_metrics() { return fragment_cache_.metrics(); }
  void InvalidateFragmentCache() { fragment_cache_.Clear(); }

  /// Worker-level memory pool root; query pools hang off it. Exposed so
  /// tests and benches can observe or pre-reserve worker memory.
  MemoryPool* worker_pool() { return worker_pool_.get(); }

  /// Weighted-fair admission across resource groups (tests and benches
  /// inspect per-group running/queued counts for reconciliation).
  ResourceGroupManager& resource_groups() { return *groups_; }

  /// The group's memory pool layer (worker -> group -> query), or null when
  /// resource groups are disabled / the group is unknown.
  MemoryPool* group_pool(const std::string& group) {
    auto it = group_pools_.find(group);
    return it == group_pools_.end() ? nullptr : it->second.get();
  }

  /// Low-memory killer (MemoryArbiter): invoked by an operator whose
  /// reservation failed at the worker cap even after self-revocation. Kills
  /// (sets the cancellation flag of) the active query with the largest
  /// reservation — at most one victim in flight at a time — and returns true
  /// when the caller should retry its reservation. Returns false when the
  /// caller itself is (or just became) the victim, or nothing can be freed.
  bool OnMemoryPressure(int64_t requesting_query_id,
                        int64_t bytes_requested) override;

 private:
  /// Per-query memory wiring threaded from ExecutePlan into the execution
  /// layers. Null when the session disabled accounting.
  struct QueryMemoryContext {
    std::shared_ptr<MemoryPool> query;   // worker [-> group] -> query.<id>
    std::shared_ptr<MemoryPool> user;    // capped at query_max_memory
    std::shared_ptr<MemoryPool> system;  // exchange buffers (uncapped)
    /// The group pool layer above the query pool (null when groups are
    /// disabled): a reservation failing here means the tenant outgrew its
    /// group cap — spill or fail within the tenant, never the killer.
    MemoryPool* group = nullptr;
    std::shared_ptr<std::atomic<bool>> killed;
    bool spill_enabled = true;
    std::string spill_dir;
  };

  /// Per-query tracing wiring (session property query_trace=true): the
  /// recorder every layer appends spans to, plus the ids of the spans the
  /// coordinator itself owns. Null/absent when tracing is off.
  struct TraceState {
    std::shared_ptr<TraceRecorder> recorder;
    int64_t query_span = 0;
    /// Fragment id -> stage span, created before task dispatch and ended at
    /// stage teardown. Read-only during execution (built up front).
    std::map<int, int64_t> stage_spans;
  };

  /// Admission control through the resource-group manager: immediate when
  /// the group has quota and the memory gate is open, else the query parks
  /// in its group's queue (journaling query_queued / query_admitted) until
  /// weighted-fair promotion grants a slot. Sheds with kRejected when the
  /// group queue is full or the group's queued-time deadline passes
  /// (journaling query_shed), and gives up at the query deadline
  /// (query_timeout_queued). `queued_nanos_out` (optional) receives the wall
  /// time spent waiting.
  Status AdmitQuery(int64_t query_id, const std::string& group,
                    int64_t query_queue_max, int64_t deadline_steady_nanos,
                    int64_t* queued_nanos_out = nullptr);
  Result<FragmentedPlan> PlanSql(const std::string& sql, const Session& session);
  Result<FragmentedPlan> PlanQuery(const sql::Query& query,
                                   const Session& session);
  /// Fault-tolerant entry point around ExecutePlanOnce: arms the query
  /// deadline (session query_timeout_millis), restarts the whole query once
  /// when a transient (kUnavailable/kIoError) error escapes leaf-task retry
  /// — intermediate-stage failures latch their exchange and fail fast, so
  /// the restart is the recovery path for them — and records the terminal
  /// failed/timeout events. Restart is armed only when the session enables
  /// recovery (query_max_task_retries > 0).
  Result<QueryResult> ExecutePlan(int64_t query_id, const FragmentedPlan& plan,
                                  const Session& session, Stopwatch watch,
                                  bool force_stats);
  /// Schedules and runs an already-fragmented plan; records scheduled /
  /// stage-finished / completed / slow-query journal events. Leaf tasks that
  /// fail with a retryable status are re-dispatched to healthy workers (up to
  /// query_max_task_retries times, capped exponential backoff with jitter),
  /// blacklisting workers that stopped answering heartbeats. Does NOT record
  /// kFailed — the ExecutePlan wrapper owns terminal failure accounting.
  Result<QueryResult> ExecutePlanOnce(int64_t query_id,
                                      const FragmentedPlan& plan,
                                      const Session& session, Stopwatch watch,
                                      bool force_stats,
                                      int64_t deadline_steady_nanos,
                                      MetricsRegistry* query_metrics,
                                      const QueryMemoryContext* memory,
                                      const ResourceGroupConfig* group,
                                      TraceState* trace);
  /// Bumps failure counters and journals a kFailed event carrying a snapshot
  /// of whatever per-query counters accumulated before the error, then
  /// passes the status through.
  Status RecordFailure(int64_t query_id, const Status& status,
                       const MetricsRegistry* query_metrics);

  CatalogRegistry* catalogs_;
  CoordinatorOptions options_;
  /// Byte-weighted: entries are charged their pages' estimated bytes.
  LruCache<std::vector<Page>> fragment_cache_{256 << 20,
                                              "cache.fragment_result"};

  QueryJournal journal_;
  std::unique_ptr<WorkStealingPool> root_morsel_pool_;
  MetricsRegistry metrics_;
  std::atomic<int64_t> next_query_id_{1};

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Worker>> workers_;
  std::set<std::string> blacklisted_;  // dead workers, by liveness check
  /// Consecutive successful probation probes per blacklisted worker id.
  std::map<std::string, int> probation_streak_;
  std::atomic<int64_t> queries_completed_{0};
  std::atomic<int64_t> queries_failed_{0};

  // -- memory management ------------------------------------------------------
  /// Root of the worker memory hierarchy (capacity worker_memory_bytes).
  std::shared_ptr<MemoryPool> worker_pool_;
  /// File system behind the spill area (fault-injection covered in tests).
  std::unique_ptr<FileSystem> spill_fs_;
  /// Per-group memory pool layer between the worker root and query pools
  /// (only when resource groups are enabled; capped groups enforce
  /// memory_fraction at reservation time).
  std::map<std::string, std::shared_ptr<MemoryPool>> group_pools_;
  /// Weighted-fair admission (always present; a single unbounded FIFO group
  /// when resource groups are disabled).
  std::unique_ptr<ResourceGroupManager> groups_;
  /// Guards the active-query registry below.
  mutable std::mutex active_mu_;
  struct ActiveQuery {
    std::shared_ptr<MemoryPool> pool;            // query.<id> subtree
    std::shared_ptr<std::atomic<bool>> killed;   // low-memory kill flag
    std::string group;                           // admission group name
  };
  std::map<int64_t, ActiveQuery> active_queries_;
};

}  // namespace presto

#endif  // PRESTO_CLUSTER_COORDINATOR_H_
