#ifndef PRESTO_CLUSTER_CLUSTER_H_
#define PRESTO_CLUSTER_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "presto/cluster/coordinator.h"
#include "presto/geo/geo_functions.h"

namespace presto {

/// Embedded single-process cluster: one coordinator plus N workers, the
/// standard entry point for examples and tests. Registers the geospatial
/// plugin functions on construction.
class PrestoCluster {
 public:
  explicit PrestoCluster(std::string name, size_t num_workers = 2,
                         size_t slots_per_worker = 2,
                         CoordinatorOptions options = CoordinatorOptions());

  const std::string& name() const { return name_; }
  CatalogRegistry& catalogs() { return catalogs_; }
  Coordinator& coordinator() { return coordinator_; }

  /// Elastic expansion: adds a worker at runtime ("new workers are
  /// automatically added to the existing cluster").
  std::string ExpandWorker(size_t slots = 2);

  /// Graceful shrink: drains one worker per the grace-period protocol and
  /// waits for it to reach SHUT_DOWN.
  Status ShrinkWorkerAndWait(const std::string& worker_id,
                             int64_t grace_period_nanos = 1'000'000);

  Result<QueryResult> Execute(const std::string& sql, const Session& session) {
    return coordinator_.ExecuteSql(sql, session);
  }
  Result<std::string> Explain(const std::string& sql, const Session& session) {
    return coordinator_.ExplainSql(sql, session);
  }

  /// Attaches an external counter registry (a filesystem, a connector, a
  /// cache) to this cluster's metrics exposition. Not owned; must outlive
  /// RenderMetricsText().
  void AddMetricsSource(const std::string& prefix,
                        const MetricsRegistry* registry) {
    extra_metrics_.emplace_back(prefix, registry);
  }

  /// Renders a cluster-wide Prometheus text exposition: coordinator query
  /// counters, fragment-cache counters, per-worker task counters (summed
  /// across the fleet), any attached subsystem registries, and liveness
  /// gauges (active workers, journal events).
  std::string RenderMetricsText();

 private:
  std::string name_;
  CatalogRegistry catalogs_;
  Coordinator coordinator_;
  std::vector<std::shared_ptr<Worker>> workers_;
  std::vector<std::pair<std::string, const MetricsRegistry*>> extra_metrics_;
  int next_worker_id_ = 0;
};

}  // namespace presto

#endif  // PRESTO_CLUSTER_CLUSTER_H_
