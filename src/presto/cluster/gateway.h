#ifndef PRESTO_CLUSTER_GATEWAY_H_
#define PRESTO_CLUSTER_GATEWAY_H_

#include <map>
#include <memory>
#include <string>

#include "presto/cluster/cluster.h"
#include "presto/common/metrics.h"
#include "presto/mysqlite/mysqlite.h"

namespace presto {

/// Presto gateway (Section VIII): "using HTTP Redirect, we developed a
/// presto gateway. The gateway will redirect incoming queries to specific
/// presto clusters, based on user name and group information. The user and
/// group to cluster mapping data is stored in MySQL. Presto administrators
/// could play with MySQL to dynamically redirect any traffic to any
/// cluster."
///
/// The routing table lives in the mini-MySQL store
/// (gateway.routing(principal VARCHAR, kind VARCHAR, cluster VARCHAR)).
/// Resolution order: exact user match, then group match, then the '*'
/// default. The gateway only redirects — queries execute on the target
/// cluster's own coordinator, so the gateway never becomes a bottleneck for
/// query execution (Section XII.B).
class PrestoGateway {
 public:
  explicit PrestoGateway(mysqlite::MySqlLite* routing_db);

  Status RegisterCluster(const std::string& name, PrestoCluster* cluster);

  /// Routing-table administration (writes to MySQL).
  Status SetUserRoute(const std::string& user, const std::string& cluster);
  Status SetGroupRoute(const std::string& group, const std::string& cluster);
  Status SetDefaultRoute(const std::string& cluster);
  Status RemoveRoutes(const std::string& principal);

  /// Resolves the redirect target for a session.
  Result<PrestoCluster*> Route(const Session& session);

  /// Convenience: route + execute (what a client library does after the
  /// redirect).
  Result<QueryResult> Submit(const std::string& sql, const Session& session);

  /// Maintenance drain: every route pointing at `from` is rewritten to
  /// `to`, so the cluster can be upgraded "with no downtime for end users".
  Status DrainClusterRoutes(const std::string& from, const std::string& to);

  MetricsRegistry& metrics() { return metrics_; }

 private:
  Status SetRoute(const std::string& kind, const std::string& principal,
                  const std::string& cluster);
  Result<std::string> LookupRoute(const std::string& kind,
                                  const std::string& principal);

  mysqlite::MySqlLite* db_;
  std::mutex mu_;
  std::map<std::string, PrestoCluster*> clusters_;
  MetricsRegistry metrics_;
};

}  // namespace presto

#endif  // PRESTO_CLUSTER_GATEWAY_H_
