#ifndef PRESTO_CLUSTER_GATEWAY_H_
#define PRESTO_CLUSTER_GATEWAY_H_

#include <map>
#include <memory>
#include <string>

#include "presto/cluster/cluster.h"
#include "presto/common/metrics.h"
#include "presto/mysqlite/mysqlite.h"

namespace presto {

/// Presto gateway (Section VIII): "using HTTP Redirect, we developed a
/// presto gateway. The gateway will redirect incoming queries to specific
/// presto clusters, based on user name and group information. The user and
/// group to cluster mapping data is stored in MySQL. Presto administrators
/// could play with MySQL to dynamically redirect any traffic to any
/// cluster."
///
/// The routing table lives in the mini-MySQL store
/// (gateway.routing(principal VARCHAR, kind VARCHAR, cluster VARCHAR)).
/// Resolution order: exact user match, then group match, then the '*'
/// default. The gateway only redirects — queries execute on the target
/// cluster's own coordinator, so the gateway never becomes a bottleneck for
/// query execution (Section XII.B).
///
/// Health-aware routing: `unhealthy_threshold` consecutive retryable
/// failures (kUnavailable/kIoError — coordinator down, substrate outage)
/// mark a cluster unhealthy and Route/Submit fail over to the remaining
/// healthy clusters; the first success on a sick cluster restores it.
/// Terminal errors (bad SQL, missing tables) are the user's fault, not the
/// cluster's, and never count against health.
class PrestoGateway {
 public:
  /// `overload_backoff_millis`: upper bound of the jittered sleep before
  /// retrying after an overload rejection (0 disables the backoff).
  explicit PrestoGateway(mysqlite::MySqlLite* routing_db,
                         int unhealthy_threshold = 3,
                         int64_t overload_backoff_millis = 5);

  Status RegisterCluster(const std::string& name, PrestoCluster* cluster);

  /// Routing-table administration (writes to MySQL).
  Status SetUserRoute(const std::string& user, const std::string& cluster);
  Status SetGroupRoute(const std::string& group, const std::string& cluster);
  Status SetDefaultRoute(const std::string& cluster);
  Status RemoveRoutes(const std::string& principal);

  /// Resolves the redirect target for a session. An unhealthy target fails
  /// over to a healthy registered cluster (gateway.route.failover);
  /// kUnavailable when every cluster is sick.
  Result<PrestoCluster*> Route(const Session& session);

  /// Route + execute (what a client library does after the redirect), with
  /// health bookkeeping: a retryable execution failure counts against the
  /// cluster and the query fails over to the remaining healthy clusters.
  /// kResourceExhausted (memory-killed) and kRejected (resource-group load
  /// shed) mean the cluster is overloaded, not sick: the query backs off
  /// with jitter and fails over to another healthy cluster without a health
  /// penalty (gateway.query.overload_failover, gateway.route.shed). Blind
  /// immediate failover on shed would just move the stampede — backoff
  /// absorbs it.
  Result<QueryResult> Submit(const std::string& sql, const Session& session);

  /// Maintenance drain: every route pointing at `from` is rewritten to
  /// `to`, so the cluster can be upgraded "with no downtime for end users".
  Status DrainClusterRoutes(const std::string& from, const std::string& to);

  /// Health bookkeeping, also callable by out-of-band probes: a retryable
  /// failure increments the consecutive-failure count (unhealthy at the
  /// threshold); a success restores the cluster immediately.
  void ReportClusterFailure(const std::string& name);
  void ReportClusterSuccess(const std::string& name);
  bool IsClusterHealthy(const std::string& name) const;

  MetricsRegistry& metrics() { return metrics_; }

 private:
  struct ClusterEntry {
    PrestoCluster* cluster = nullptr;
    int consecutive_failures = 0;
    bool healthy = true;
  };

  Status SetRoute(const std::string& kind, const std::string& principal,
                  const std::string& cluster);
  Result<std::string> LookupRoute(const std::string& kind,
                                  const std::string& principal);
  /// The routed target if healthy, else the first healthy cluster by name
  /// (deterministic failover order). Holds mu_.
  Result<std::pair<std::string, PrestoCluster*>> PickHealthyLocked(
      const std::string& target);

  mysqlite::MySqlLite* db_;
  const int unhealthy_threshold_;
  const int64_t overload_backoff_millis_;
  mutable std::mutex mu_;
  std::map<std::string, ClusterEntry> clusters_;
  MetricsRegistry metrics_;
};

}  // namespace presto

#endif  // PRESTO_CLUSTER_GATEWAY_H_
