#include "presto/cluster/coordinator.h"

#include <algorithm>
#include <cstdlib>

#include "presto/exec/operators.h"
#include "presto/planner/optimizer.h"
#include "presto/sql/analyzer.h"
#include "presto/sql/parser.h"

namespace presto {

std::vector<Value> QueryResult::Row(size_t r) const {
  for (const Page& page : pages) {
    if (r < page.num_rows()) return page.GetRow(r);
    r -= page.num_rows();
  }
  return {};
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (size_t c = 0; c < column_names.size(); ++c) {
    out += c == 0 ? "" : " | ";
    out += column_names[c];
  }
  out += "\n";
  size_t emitted = 0;
  for (const Page& page : pages) {
    for (size_t r = 0; r < page.num_rows() && emitted < max_rows; ++r, ++emitted) {
      for (size_t c = 0; c < page.num_columns(); ++c) {
        out += c == 0 ? "" : " | ";
        out += page.column(c)->GetValue(r).ToString();
      }
      out += "\n";
    }
  }
  if (emitted < static_cast<size_t>(total_rows)) {
    out += "… (" + std::to_string(total_rows) + " rows total)\n";
  }
  return out;
}

void Coordinator::AddWorker(std::shared_ptr<Worker> worker) {
  std::lock_guard<std::mutex> lock(mu_);
  workers_.push_back(std::move(worker));
}

Status Coordinator::ShrinkWorker(const std::string& worker_id,
                                 int64_t grace_period_nanos) {
  std::shared_ptr<Worker> target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& worker : workers_) {
      if (worker->id() == worker_id) {
        target = worker;
        break;
      }
    }
  }
  if (target == nullptr) {
    return Status::NotFound("no such worker: " + worker_id);
  }
  target->RequestGracefulShutdown(grace_period_nanos);
  return Status::OK();
}

std::vector<std::shared_ptr<Worker>> Coordinator::ActiveWorkers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Worker>> out;
  for (const auto& worker : workers_) {
    if (worker->state() == WorkerState::kActive) out.push_back(worker);
  }
  return out;
}

size_t Coordinator::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

namespace {

// Keeps exchange buffers alive until every producer task has fully exited:
// without this, the root fragment can observe "all producers done" and let
// the query tear down while a producer is still inside its final
// notify_all() — a use-after-free on the buffer's condition variable.
struct TaskLatch {
  std::mutex mu;
  std::condition_variable cv;
  int remaining = 0;

  void Done() {
    {
      std::lock_guard<std::mutex> lock(mu);
      --remaining;
    }
    cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return remaining <= 0; });
  }
};

TableScanNode* FindScan(const PlanNodePtr& node) {
  if (node->kind() == PlanNodeKind::kTableScan) {
    return static_cast<TableScanNode*>(node.get());
  }
  for (const PlanNodePtr& source : node->sources()) {
    if (TableScanNode* scan = FindScan(source)) return scan;
  }
  return nullptr;
}

}  // namespace

Result<FragmentedPlan> Coordinator::PlanSql(const std::string& sql,
                                            const Session& session) {
  ASSIGN_OR_RETURN(sql::Query query, sql::ParseQuery(sql));
  sql::Analyzer analyzer(catalogs_, &session);
  ASSIGN_OR_RETURN(PlanNodePtr plan, analyzer.Analyze(query));
  Optimizer optimizer(catalogs_, &session, &analyzer.ids());
  ASSIGN_OR_RETURN(plan, optimizer.Optimize(std::move(plan)));
  Fragmenter fragmenter(&analyzer.ids());
  return fragmenter.Fragment(std::move(plan));
}

Result<std::string> Coordinator::ExplainSql(const std::string& sql,
                                            const Session& session) {
  ASSIGN_OR_RETURN(FragmentedPlan plan, PlanSql(sql, session));
  return plan.ToString();
}

Result<QueryResult> Coordinator::ExecuteSql(const std::string& sql,
                                            const Session& session) {
  Stopwatch watch;
  auto fragmented = PlanSql(sql, session);
  if (!fragmented.ok()) {
    queries_failed_.fetch_add(1);
    return fragmented.status();
  }

  QueryResult result;
  result.num_fragments = static_cast<int>(fragmented->fragments.size());

  // -- Schedule leaf fragments. -------------------------------------------------
  std::vector<std::shared_ptr<Worker>> workers = ActiveWorkers();
  std::map<int, std::unique_ptr<ExchangeBuffer>> buffers;
  std::map<int, ExchangeBuffer*> exchange_refs;
  struct TaskSpec {
    const PlanFragment* fragment;
    std::vector<SplitPtr> splits;
    ExchangeBuffer* buffer;
  };
  std::vector<TaskSpec> tasks;

  for (const PlanFragment& fragment : fragmented->fragments) {
    if (!fragment.leaf) continue;
    TableScanNode* scan = FindScan(fragment.root);
    if (scan == nullptr) {
      queries_failed_.fetch_add(1);
      return Status::Internal("leaf fragment without a table scan");
    }
    auto connector = catalogs_->GetConnector(scan->catalog());
    if (!connector.ok()) {
      queries_failed_.fetch_add(1);
      return connector.status();
    }
    // Target parallelism is the same product used for the task count below:
    // every worker runs tasks_per_fragment tasks, and each task should get at
    // least one split. (Using max() here starved all but tasks_per_fragment
    // tasks of splits on multi-worker clusters.)
    size_t parallelism = std::max<size_t>(
        1, std::max<size_t>(workers.size(), 1) * options_.tasks_per_fragment);
    auto splits = (*connector)->CreateSplits(scan->table_schema_name(),
                                             scan->table_name(),
                                             *scan->accepted(), parallelism);
    if (!splits.ok()) {
      queries_failed_.fetch_add(1);
      return splits.status();
    }
    result.num_splits += static_cast<int>(splits->size());

    auto buffer = std::make_unique<ExchangeBuffer>();
    size_t num_tasks = std::min<size_t>(
        std::max<size_t>(1, splits->size()), parallelism);
    // Round-robin splits across tasks.
    std::vector<std::vector<SplitPtr>> batches(num_tasks);
    for (size_t i = 0; i < splits->size(); ++i) {
      batches[i % num_tasks].push_back((*splits)[i]);
    }
    buffer->SetProducerCount(static_cast<int>(num_tasks));
    for (size_t t = 0; t < num_tasks; ++t) {
      tasks.push_back(TaskSpec{&fragment, std::move(batches[t]), buffer.get()});
    }
    exchange_refs[fragment.id] = buffer.get();
    buffers[fragment.id] = std::move(buffer);
  }
  result.num_tasks = static_cast<int>(tasks.size());

  auto latch = std::make_shared<TaskLatch>();
  latch->remaining = static_cast<int>(tasks.size());

  bool use_fragment_cache =
      session.Property("fragment_result_cache", "false") == "true";
  // One registry per query, shared by every task (thread-safe); snapshotted
  // into the result after the root fragment drains.
  auto query_metrics = std::make_shared<MetricsRegistry>();
  ExecutionLimits limits;
  limits.metrics = query_metrics.get();
  {
    std::string max_build = session.Property("max_join_build_rows", "");
    if (!max_build.empty()) {
      limits.max_join_build_rows = std::strtoll(max_build.c_str(), nullptr, 10);
    }
    limits.vectorized_kernels =
        session.Property("vectorized_kernels", "true") != "false";
  }

  // Task body: build the fragment's operator tree over its splits and pump
  // pages into the exchange, consulting the fragment result cache first.
  auto run_task = [this, &exchange_refs, use_fragment_cache, limits](
                      const PlanFragment* fragment, std::vector<SplitPtr> splits,
                      ExchangeBuffer* buffer) {
    std::string cache_key;
    if (use_fragment_cache) {
      cache_key = fragment->root->ToString();
      for (const SplitPtr& split : splits) {
        cache_key += "\n";
        cache_key += split->ToString();
      }
      if (auto hit = fragment_cache_.Get(cache_key)) {
        for (const Page& page : **hit) {
          buffer->Push(page);  // pages share immutable vectors
        }
        buffer->ProducerDone();
        return;
      }
    }
    OperatorBuilder builder(catalogs_, &FunctionRegistry::Default(),
                            &exchange_refs, &splits, limits);
    auto op = builder.Build(fragment->root);
    if (!op.ok()) {
      buffer->Fail(op.status());
      buffer->ProducerDone();
      return;
    }
    std::vector<Page> produced;
    bool failed = false;
    while (true) {
      auto page = (*op)->Next();
      if (!page.ok()) {
        buffer->Fail(page.status());
        failed = true;
        break;
      }
      if (!page->has_value()) break;
      if (use_fragment_cache) produced.push_back(**page);
      buffer->Push(std::move(**page));
    }
    if (use_fragment_cache && !failed) {
      fragment_cache_.Put(cache_key,
                          std::make_shared<const std::vector<Page>>(
                              std::move(produced)));
    }
    buffer->ProducerDone();
  };

  // Dispatch: round-robin across active workers; with no workers, tasks run
  // inline on the coordinator (embedded mode).
  if (workers.empty()) {
    for (TaskSpec& task : tasks) {
      run_task(task.fragment, std::move(task.splits), task.buffer);
      latch->Done();
    }
  } else {
    size_t next_worker = 0;
    for (TaskSpec& task : tasks) {
      bool submitted = false;
      for (size_t attempt = 0; attempt < workers.size(); ++attempt) {
        auto& worker = workers[next_worker];
        next_worker = (next_worker + 1) % workers.size();
        if (worker->SubmitTask([run_task, latch, fragment = task.fragment,
                                splits = task.splits, buffer = task.buffer] {
              run_task(fragment, splits, buffer);
              latch->Done();
            })) {
          submitted = true;
          break;
        }
      }
      if (!submitted) {
        // Every worker is draining: run inline to guarantee no downtime.
        run_task(task.fragment, std::move(task.splits), task.buffer);
        latch->Done();
      }
    }
  }

  // -- Run the root fragment on the coordinator. -----------------------------------
  const PlanFragment& root = fragmented->fragments[0];
  OperatorBuilder builder(catalogs_, &FunctionRegistry::Default(), &exchange_refs,
                          nullptr, limits);
  auto root_op = builder.Build(root.root);
  if (!root_op.ok()) {
    latch->Wait();
    queries_failed_.fetch_add(1);
    return root_op.status();
  }
  while (true) {
    auto page = (*root_op)->Next();
    if (!page.ok()) {
      latch->Wait();
      queries_failed_.fetch_add(1);
      return page.status();
    }
    if (!page->has_value()) break;
    result.total_rows += static_cast<int64_t>((*page)->num_rows());
    result.pages.push_back(std::move(**page));
  }
  // All producer tasks must have fully exited before the buffers go away.
  latch->Wait();
  result.exec_metrics = query_metrics->Snapshot();

  // Output metadata.
  if (root.root->kind() == PlanNodeKind::kOutput) {
    const auto* output = static_cast<const OutputNode*>(root.root.get());
    result.column_names = output->column_names();
    for (const VariablePtr& v : output->OutputVariables()) {
      result.column_types.push_back(v->type());
    }
  }
  result.wall_millis = watch.ElapsedMillis();
  queries_completed_.fetch_add(1);
  return result;
}

}  // namespace presto
